(* Experiment harness for the reproduction of "The Weisfeiler-Leman
   Dimension of Conjunctive Queries" (PODS 2024).

   The paper is a theory paper with no empirical section; its
   "tables and figures" are theorems, worked examples, and
   constructions.  Each experiment below certifies one of them on
   concrete instances (ids T1-T14 match DESIGN.md / EXPERIMENTS.md),
   and the Bechamel timing series F1-F3 and ablations A1/A2 measure
   the algorithmic engines.

   Usage:
     dune exec bench/main.exe             # all tables + timing series
     dune exec bench/main.exe -- T1 T6    # selected experiments
     dune exec bench/main.exe -- tables   # T1-T14 only
     dune exec bench/main.exe -- timing   # F1-F3 and A1/A2 only
     dune exec bench/main.exe -- timing-smoke
                                          # one tiny instance per series,
                                            non-zero exit on failure (CI) *)

open Wlcq_core
module G = Wlcq_graph
module TW = Wlcq_treewidth
module Cfi = Wlcq_cfi.Cfi
module Bigint = Wlcq_util.Bigint
module Rat = Wlcq_util.Rat
module Prng = Wlcq_util.Prng
module Obs = Wlcq_obs.Obs
module Snapshot = Wlcq_obs.Snapshot
module Budget = Wlcq_robust.Budget
module Dispatch = Wlcq_dispatch.Dispatch
module Cache = Wlcq_cache.Cache

let parse s = (Parser.parse_exn s).Parser.query

let header id title =
  Printf.printf "\n=== %s: %s ===\n" id title

let verdict ok = if ok then "ok" else "FAIL"

(* lint: domain-local the harness records failures only from the main domain *)
let failures = ref 0

let record ok = if not ok then incr failures

(* Rows destined for BENCH_PR4.json: (series, instance, t_old_s, t_new_s),
   appended by [speedup_row] when a [?series] tag is given and written
   out by the F1b experiment. *)
(* lint: domain-local rows are appended only by the main domain's harness *)
let pr4_rows : (string * string * float * float) list ref = ref []

(* monotonic wall clock (the Bechamel series uses the same source);
   instrumentation is switched off around the measured closure so the
   enforced speedup bounds see the disabled-path overhead only *)
let wall_time f =
  let was = Obs.enabled () in
  Obs.set_enabled false;
  (* a clean major heap isolates the measurement from garbage left by
     whatever ran before it *)
  Gc.full_major ();
  let r, ns = Obs.time_ns f in
  Obs.set_enabled was;
  (r, Int64.to_float ns /. 1e9)

(* Best-of-3 wall clock: GC pauses and scheduler noise only ever add
   time, so the minimum is the robust estimator for short runs. *)
let wall_time_best f =
  let r, t0 = wall_time f in
  let t = ref t0 in
  for _ = 2 to 3 do
    let _, ti = wall_time f in
    if ti < !t then t := ti
  done;
  (r, !t)

let speedup_row ?(min_speedup = 0.0) ?series name k run_old run_new agree =
  let old_r, told = wall_time_best run_old in
  let new_r, tnew = wall_time_best run_new in
  let speedup = told /. Float.max tnew 1e-9 in
  let ok = agree old_r new_r && speedup >= min_speedup in
  record ok;
  (match series with
   | Some s -> pr4_rows := (s, name, told, tnew) :: !pr4_rows
   | None -> ());
  Printf.printf "%-22s %-3d %9.1f ms %9.1f ms %8.1fx %-7s\n" name k
    (told *. 1e3) (tnew *. 1e3) speedup (verdict ok)

(* ------------------------------------------------------------------ *)
(* T1: star queries — treewidth 1, sew = k (Section 1.1, Cor. 61/67)   *)
(* ------------------------------------------------------------------ *)

let t1 () =
  header "T1" "k-star queries: tw = 1 but sew = WL-dimension = k";
  Printf.printf "%-3s %-8s %-6s %-6s %-14s %-9s %-7s %-7s\n" "k" "tw(S_k)"
    "ew" "sew" "Gamma=K_{k+1}" "minimal" "WL-dim" "verdict";
  for k = 1 to 6 do
    let q = Star.query k in
    let tw = TW.Exact.treewidth q.Cq.graph in
    let ew = Extension.extension_width q in
    let sew = Extension.semantic_extension_width q in
    let clique = Star.gamma_is_clique k in
    let minimal = Minimize.is_counting_minimal q in
    let dim = Wl_dimension.dimension q in
    let ok = tw = 1 && ew = k && sew = k && clique && minimal && dim = k in
    record ok;
    Printf.printf "%-3d %-8d %-6d %-6d %-14b %-9b %-7d %-7s\n" k tw ew sew
      clique minimal dim (verdict ok)
  done

(* ------------------------------------------------------------------ *)
(* T2: tw(F_ℓ) saturates at ew (Lemmas 16/17, Corollary 18)            *)
(* ------------------------------------------------------------------ *)

let t2_queries =
  [
    ("edge", "(x1, x2) := E(x1, x2)");
    ("path2", "(x1, x2) := exists y . E(x1, y) & E(y, x2)");
    ("star2", "(x1, x2) := exists y . E(x1, y) & E(x2, y)");
    ("star3", "(x1, x2, x3) := exists y . E(x1,y) & E(x2,y) & E(x3,y)");
    ("star4",
     "(x1, x2, x3, x4) := exists y . E(x1,y) & E(x2,y) & E(x3,y) & E(x4,y)");
    ("two-comp",
     "(x1, x2, x3) := exists y1 y2 . E(x1, y1) & E(x2, y1) & E(x2, y2) & \
      E(x3, y2)");
    ("quant-path",
     "(x1, x2) := exists y1 y2 . E(x1, y1) & E(y1, y2) & E(y2, x2)");
  ]

let t2 () =
  header "T2" "tw(F_ell) <= ew with equality for large ell (Corollary 18)";
  Printf.printf "%-11s %-4s | %s | %-7s\n" "query" "ew"
    "tw(F_1) tw(F_2) tw(F_3) tw(F_4) tw(F_5) tw(F_6)" "verdict";
  List.iter
    (fun (name, s) ->
       let q = parse s in
       let ew = Extension.extension_width q in
       let tws =
         List.init 6 (fun i ->
             TW.Exact.treewidth (Extension.f_ell q (i + 1)).Extension.graph)
       in
       let bounded = List.for_all (fun t -> t <= ew) tws in
       let saturates = List.exists (fun t -> t = ew) tws in
       let monotone =
         let rec mono = function
           | a :: (b :: _ as rest) -> a <= b && mono rest
           | _ -> true
         in
         mono tws
       in
       let ok = bounded && saturates && monotone in
       record ok;
       Printf.printf "%-11s %-4d | %s | %-7s\n" name ew
         (String.concat " " (List.map (Printf.sprintf "%7d") tws))
         (verdict ok))
    t2_queries

(* ------------------------------------------------------------------ *)
(* T3: interpolation recovers |Ans| from hom counts (Lemma 22/Obs 23)  *)
(* ------------------------------------------------------------------ *)

let t3 () =
  header "T3" "answer counts via Vandermonde interpolation (Observation 23)";
  Printf.printf "%-11s %-14s %-8s %-14s %-7s\n" "query" "graph" "direct"
    "interpolated" "verdict";
  let rng = Prng.create 2024 in
  let graphs =
    [ ("C5", G.Builders.cycle 5); ("K4", G.Builders.clique 4);
      ("gnp(5,.5)", G.Gen.gnp rng 5 0.5); ("gnp(6,.4)", G.Gen.gnp rng 6 0.4) ]
  in
  List.iter
    (fun (qname, s) ->
       let q = parse s in
       List.iter
         (fun (gname, g) ->
            let direct = Cq.count_answers q g in
            let interp = Wl_dimension.answers_via_interpolation q g in
            let ok = Bigint.equal interp (Bigint.of_int direct) in
            record ok;
            Printf.printf "%-11s %-14s %-8d %-14s %-7s\n" qname gname direct
              (Bigint.to_string interp) (verdict ok))
         graphs)
    [ ("edge", "(x1, x2) := E(x1, x2)");
      ("pendant", "(x) := exists y . E(x, y)");
      ("star2", "(x1, x2) := exists y . E(x1, y) & E(x2, y)");
      ("quant-path",
       "(x1, x2) := exists y1 y2 . E(x1, y1) & E(y1, y2) & E(y2, x2)") ]

(* ------------------------------------------------------------------ *)
(* T4: CFI parity classes (Lemma 26)                                   *)
(* ------------------------------------------------------------------ *)

let t4 () =
  header "T4" "CFI parity: chi(F,W) ~ chi(F,W') iff |W| = |W'| mod 2";
  Printf.printf "%-10s %-8s %-10s %-12s %-12s %-7s\n" "base" "tw" "|chi|"
    "odd~odd" "even~odd" "verdict";
  let bases =
    [ ("C4", G.Builders.cycle 4); ("C5", G.Builders.cycle 5);
      ("K4", G.Builders.clique 4); ("grid2x3", G.Builders.grid 2 3);
      ("random", G.Gen.random_connected (Prng.create 5) 5 0.3) ]
  in
  List.iter
    (fun (name, base) ->
       let n = G.Graph.num_vertices base in
       let even = Cfi.even base in
       let same = Wlcq_cfi.Pairs.same_parity_isomorphic base 0 (n - 1) in
       let diff = Wlcq_cfi.Pairs.parity_classes_differ base in
       let ok = same && diff in
       record ok;
       Printf.printf "%-10s %-8d %-10d %-12b %-12b %-7s\n" name
         (TW.Exact.treewidth base) (Cfi.num_vertices even) same (not diff)
         (verdict ok))
    bases

(* ------------------------------------------------------------------ *)
(* T5: twisted CFI pairs are (t-1)-WL-equivalent (Lemmas 27/35)        *)
(* ------------------------------------------------------------------ *)

let t5 () =
  header "T5" "chi(F,0)/chi(F,{w}) equivalence below tw(F), separation at tw(F)";
  Printf.printf "%-10s %-4s %-16s %-16s %-7s\n" "base" "tw"
    "equiv at t-1" "separated at t" "verdict";
  let bases =
    [ ("C4", G.Builders.cycle 4, 2); ("C5", G.Builders.cycle 5, 2);
      ("C6", G.Builders.cycle 6, 2); ("K4", G.Builders.clique 4, 3) ]
  in
  List.iter
    (fun (name, base, t) ->
       let even, odd = Wlcq_cfi.Pairs.twisted_pair base in
       let ge = even.Cfi.graph and go = odd.Cfi.graph in
       let equiv = Wlcq_wl.Equivalence.equivalent (t - 1) ge go in
       let separated = not (Wlcq_wl.Equivalence.equivalent t ge go) in
       let ok = equiv && separated in
       record ok;
       Printf.printf "%-10s %-4d %-16b %-16b %-7s\n" name t equiv separated
         (verdict ok);
       (* Lemma 35: cloning preserves the equivalence *)
       let clone (chi : Cfi.t) =
         (Wlcq_cfi.Cloning.clone ~g:chi.Cfi.graph ~f:base
            ~c:chi.Cfi.projection [ (0, 2) ]).Wlcq_cfi.Cloning.graph
       in
       let equiv_cloned =
         Wlcq_wl.Equivalence.equivalent (t - 1) (clone even) (clone odd)
       in
       record equiv_cloned;
       Printf.printf "%-10s %-4s %-16b %-16s %-7s\n" (name ^ "+clone") ""
         equiv_cloned "(Lemma 35)" (verdict equiv_cloned))
    bases

(* ------------------------------------------------------------------ *)
(* T6: the Theorem 24 lower-bound pipeline                             *)
(* ------------------------------------------------------------------ *)

let t6_queries =
  [
    ("star2", "(x1, x2) := exists y . E(x1, y) & E(x2, y)", 2);
    ("star3", "(x1, x2, x3) := exists y . E(x1,y) & E(x2,y) & E(x3,y)", 3);
    ("quant-path",
     "(x1, x2) := exists y1 y2 . E(x1, y1) & E(y1, y2) & E(y2, x2)", 2);
    ("pendant-triangle",
     "(x1) := exists y1 y2 . E(x1, y1) & E(x1, y2) & E(y1, y2)", 2);
  ]

let t6 () =
  header "T6" "lower-bound witnesses: Ans^id gap + (k-1)-WL-equivalence";
  Printf.printf "%-17s %-4s %-5s %-7s %-9s %-9s %-10s %-10s %-7s\n" "query"
    "sew" "ell" "|chi|" "Ans^id_e" "Ans^id_o" "E=cpAns" "equiv k-1" "verdict";
  List.iter
    (fun (name, s, k) ->
       let q = parse s in
       let w = Wl_dimension.lower_bound_witness q in
       let e, o = Wl_dimension.ans_id_counts w in
       let se = Extendable.make w.Wl_dimension.core w.Wl_dimension.f
           w.Wl_dimension.even in
       let so = Extendable.make w.Wl_dimension.core w.Wl_dimension.f
           w.Wl_dimension.odd in
       let lemma55 =
         Extendable.count se = Extendable.count_cp_answers se
         && Extendable.count so = Extendable.count_cp_answers so
       in
       let equiv = Wl_dimension.witness_pair_equivalent w (k - 1) in
       let ok = e > o && lemma55 && equiv && Wl_dimension.dimension q = k in
       record ok;
       Printf.printf "%-17s %-4d %-5d %-7d %-9d %-9d %-10b %-10b %-7s\n" name
         k w.Wl_dimension.f.Extension.ell
         (Cfi.num_vertices w.Wl_dimension.even)
         e o lemma55 equiv (verdict ok))
    t6_queries;
  (* Lemma 40: upgrade to plain answer counts via cloning *)
  Printf.printf "\nseparating pairs (plain |Ans| differs, pair (k-1)-WL-equivalent):\n";
  Printf.printf "%-17s %-8s %-8s %-10s %-7s\n" "query" "|Ans|_e" "|Ans|_o"
    "equiv k-1" "verdict";
  List.iter
    (fun (name, s, k) ->
       let q = parse s in
       match Wl_dimension.separating_pair ~max_z:2 q with
       | None ->
         record false;
         Printf.printf "%-17s %-8s %-8s %-10s %-7s\n" name "-" "-" "-" "FAIL"
       | Some (g1, g2) ->
         let c1 = Cq.count_answers q g1 and c2 = Cq.count_answers q g2 in
         let equiv =
           if k <= 3 then Wlcq_wl.Equivalence.equivalent (k - 1) g1 g2
           else true
         in
         let ok = c1 <> c2 && equiv in
         record ok;
         Printf.printf "%-17s %-8d %-8d %-10b %-7s\n" name c1 c2 equiv
           (verdict ok))
    t6_queries

(* ------------------------------------------------------------------ *)
(* T7: Observation 62 — acyclic CQs cannot separate 2K3 from C6        *)
(* ------------------------------------------------------------------ *)

let t7 () =
  header "T7" "acyclic queries on 2K3 vs C6 (Observation 62)";
  let g1 = G.Builders.two_triangles () and g2 = G.Builders.cycle 6 in
  Printf.printf "1-WL-equivalent: %b; isomorphic: %b\n\n"
    (Wlcq_wl.Refinement.equivalent g1 g2)
    (G.Iso.isomorphic g1 g2);
  Printf.printf "%-64s %5s %5s %-7s\n" "query" "2K3" "C6" "verdict";
  let family =
    [ "(x) := exists y . E(x, y)";
      "(x1, x2) := E(x1, x2)";
      "(x1, x2) := exists y . E(x1, y) & E(y, x2)";
      "(x1, x2) := exists y . E(x1, y) & E(x2, y)";
      "(x1, x2, x3) := exists y . E(x1, y) & E(x2, y) & E(x3, y)";
      "(x1) := exists y1 y2 . E(x1, y1) & E(y1, y2)";
      "(x1, x2) := exists y1 y2 . E(x1, y1) & E(y1, y2) & E(y2, x2)";
      "(x1, x2, x3) := E(x1, x2) & E(x2, x3)";
      "(x1, x2, x3, x4) := exists y . E(x1,y) & E(x2,y) & E(x3,y) & E(x4,y)" ]
  in
  List.iter
    (fun s ->
       let q = parse s in
       let c1 = Cq.count_answers q g1 and c2 = Cq.count_answers q g2 in
       let ok = c1 = c2 && G.Traversal.is_forest q.Cq.graph in
       record ok;
       Printf.printf "%-64s %5d %5d %-7s\n" s c1 c2 (verdict ok))
    family;
  let triangle =
    parse "(x1) := exists y1 y2 . E(x1, y1) & E(x1, y2) & E(y1, y2)"
  in
  let c1 = Cq.count_answers triangle g1 and c2 = Cq.count_answers triangle g2 in
  record (c1 <> c2);
  Printf.printf "%-64s %5d %5d %-7s (control: cyclic query separates)\n"
    "triangle control" c1 c2 (verdict (c1 <> c2))

(* ------------------------------------------------------------------ *)
(* T8: dominating sets (Corollaries 6/68)                              *)
(* ------------------------------------------------------------------ *)

let t8 () =
  header "T8" "dominating sets: three counting routes + WL-dimension = k";
  Printf.printf "%-10s %-3s %-10s %-10s %-10s %-7s\n" "graph" "k" "direct"
    "stars" "quantum" "verdict";
  let graphs =
    [ ("C5", G.Builders.cycle 5); ("C6", G.Builders.cycle 6);
      ("Petersen", G.Builders.petersen ()); ("K4", G.Builders.clique 4);
      ("grid3x3", G.Builders.grid 3 3) ]
  in
  List.iter
    (fun (name, g) ->
       List.iter
         (fun k ->
            let a = Domset.count_direct k g in
            let b = Domset.count_via_stars k g in
            let c = Domset.count_via_quantum k g in
            let ok = Bigint.equal a b && Bigint.equal a c in
            record ok;
            Printf.printf "%-10s %-3d %-10s %-10s %-10s %-7s\n" name k
              (Bigint.to_string a) (Bigint.to_string b) (Bigint.to_string c)
              (verdict ok))
         [ 1; 2; 3 ])
    graphs;
  (* dimension certificate for k = 2:
     lower bound — the 1-WL-equivalent pair (2K3, C6) has different
     2-dominating-set counts;
     upper bound — a 2-WL-equivalent pair (the chi(K4) twist) agrees. *)
  Printf.printf "\nWL-dimension certificate for |Delta_2|:\n";
  let g1 = G.Builders.two_triangles () and g2 = G.Builders.cycle 6 in
  let d1 = Domset.count_direct 2 g1 and d2 = Domset.count_direct 2 g2 in
  let lower = not (Bigint.equal d1 d2) in
  record lower;
  Printf.printf
    "  1-WL-equivalent pair (2K3, C6): |Delta_2| = %s vs %s  -> dimension > 1 %s\n"
    (Bigint.to_string d1) (Bigint.to_string d2) (verdict lower);
  let even, odd = Wlcq_cfi.Pairs.twisted_pair (G.Builders.clique 4) in
  let e1 = Domset.count_direct 2 even.Cfi.graph in
  let e2 = Domset.count_direct 2 odd.Cfi.graph in
  let upper = Bigint.equal e1 e2 in
  record upper;
  Printf.printf
    "  2-WL-equivalent pair chi(K4): |Delta_2| = %s vs %s -> consistent with \
     dimension = 2 %s\n"
    (Bigint.to_string e1) (Bigint.to_string e2) (verdict upper);
  (* and for k = 3, on the classic strongly-regular pair: Shrikhande
     and the 4x4 rook's graph are 2-WL-equivalent, and 3-dominating-set
     counts tell them apart *)
  Printf.printf "\nWL-dimension certificate for |Delta_3| (SRG pair):\n";
  let r = G.Builders.rook () and s = G.Builders.shrikhande () in
  let equiv2 = Wlcq_wl.Equivalence.equivalent 2 r s in
  let dr = Domset.count_direct 3 r and ds = Domset.count_direct 3 s in
  let sep = not (Bigint.equal dr ds) in
  let star_agrees =
    Cq.count_answers (Star.query 2) r = Cq.count_answers (Star.query 2) s
  in
  let ok = equiv2 && sep && star_agrees in
  record ok;
  Printf.printf
    "  Shrikhande vs rook: 2-WL-equivalent %b; |Delta_3| = %s vs %s; \
     dim-2 star query agrees %b -> dimension of |Delta_3| > 2 %s\n"
    equiv2 (Bigint.to_string dr) (Bigint.to_string ds) star_agrees
    (verdict ok)

(* ------------------------------------------------------------------ *)
(* T9: quantum queries and UCQs (Definition 63, Corollary 5)           *)
(* ------------------------------------------------------------------ *)

let t9 () =
  header "T9" "quantum queries: UCQ expansions, hsew, Corollary 5";
  let edge = parse "(x1, x2) := E(x1, x2)" in
  let path2 = parse "(x1, x2) := exists y . E(x1, y) & E(y, x2)" in
  let star2 = parse "(x1, x2) := exists y . E(x1, y) & E(x2, y)" in
  let unions =
    [ ("edge|path2", [ edge; path2 ]); ("edge|star2", [ edge; star2 ]);
      ("path2|star2", [ path2; star2 ]);
      ("edge|path2|star2", [ edge; path2; star2 ]) ]
  in
  Printf.printf "%-18s %-7s %-10s %-10s %-6s %-7s\n" "union" "graph" "direct"
    "quantum" "hsew" "verdict";
  let graphs =
    [ ("C6", G.Builders.cycle 6); ("K4", G.Builders.clique 4);
      ("Pet.", G.Builders.petersen ()) ]
  in
  List.iter
    (fun (name, qs) ->
       let quantum = Quantum.of_union qs in
       let hsew = Quantum.hsew quantum in
       List.iter
         (fun (gname, g) ->
            let direct = Quantum.count_union_answers qs g in
            let value = Quantum.evaluate quantum g in
            let ok = Rat.equal value (Rat.of_int direct) in
            record ok;
            Printf.printf "%-18s %-7s %-10d %-10s %-6d %-7s\n" name gname
              direct (Rat.to_string value) hsew (verdict ok))
         graphs)
    unions;
  (* Corollary 5 witness: a quantum query with hsew = 2 distinguishes a
     1-WL-equivalent pair *)
  Printf.printf "\nCorollary 5 witness (hsew = 2 distinguishes a 1-WL pair):\n";
  let quantum = Quantum.of_union [ edge; star2 ] in
  match Wl_dimension.separating_pair ~max_z:2 star2 with
  | None -> record false; Printf.printf "  no pair found FAIL\n"
  | Some (g1, g2) ->
    let v1 = Quantum.evaluate quantum g1 and v2 = Quantum.evaluate quantum g2 in
    let equiv = Wlcq_wl.Equivalence.equivalent 1 g1 g2 in
    let ok = (not (Rat.equal v1 v2)) && equiv in
    record ok;
    Printf.printf
      "  1-WL-equivalent pair: evaluate = %s vs %s, distinguished: %b %s\n"
      (Rat.to_string v1) (Rat.to_string v2)
      (not (Rat.equal v1 v2))
      (verdict ok)

(* ------------------------------------------------------------------ *)
(* T10: knowledge graphs (Section 1.3 item C)                          *)
(* ------------------------------------------------------------------ *)

let t10 () =
  header "T10" "knowledge-graph extension: encoding compatibility + labels";
  let open Wlcq_kg in
  let enc g = Kgraph.of_graph g ~vertex_label:0 ~edge_label:0 in
  (* compatibility: plain results survive the encoding *)
  Printf.printf "%-8s %-14s %-10s %-10s %-7s\n" "query" "graph" "plain"
    "kg-encoded" "verdict";
  List.iter
    (fun k ->
       let q = Star.query k in
       let kq = Kcq.of_cq q in
       List.iter
         (fun (name, g) ->
            let plain = Cq.count_answers q g in
            let kg = Kcq.count_answers kq (enc g) in
            let ok = plain = kg in
            record ok;
            Printf.printf "%-8s %-14s %-10d %-10d %-7s\n"
              (Printf.sprintf "star%d" k) name plain kg (verdict ok))
         [ ("C5", G.Builders.cycle 5); ("Petersen", G.Builders.petersen ()) ])
    [ 1; 2 ];
  (* widths agree under encoding *)
  Printf.printf "\n%-8s %-8s %-8s %-7s\n" "query" "sew" "kg-sew" "verdict";
  List.iter
    (fun k ->
       let q = Star.query k in
       let a = Extension.semantic_extension_width q in
       let b = Kcq.semantic_extension_width (Kcq.of_cq q) in
       let ok = a = b in
       record ok;
       Printf.printf "%-8s %-8d %-8d %-7s\n" (Printf.sprintf "star%d" k) a b
         (verdict ok))
    [ 1; 2; 3 ];
  (* genuinely labelled phenomena *)
  Printf.printf "\nlabelled/directed phenomena:\n";
  let directed =
    (Kparser.parse_exn "(x) := exists y1 y2 . r(x, y1) & r(y1, y2)")
      .Kparser.query
  in
  let undirected =
    Kcq.of_cq
      (parse "(x) := exists y1 y2 . E(x, y1) & E(y1, y2)")
  in
  let ok1 = Kcq.is_counting_minimal directed in
  let ok2 = not (Kcq.is_counting_minimal undirected) in
  record ok1;
  record ok2;
  Printf.printf "  directed 2-tail minimal: %b %s / undirected folds: %b %s\n"
    ok1 (verdict ok1) ok2 (verdict ok2);
  let cyc =
    Kgraph.create ~n:3 ~vertex_labels:[| 0; 0; 0 |]
      ~edges:[ (0, 1, 0); (1, 2, 0); (2, 0, 0) ]
  in
  let acy =
    Kgraph.create ~n:3 ~vertex_labels:[| 0; 0; 0 |]
      ~edges:[ (0, 1, 0); (1, 2, 0); (0, 2, 0) ]
  in
  let ok3 = not (Kwl.equivalent 1 cyc acy) in
  record ok3;
  Printf.printf "  kg-1-WL separates orientations of the triangle: %b %s\n"
    ok3 (verdict ok3)

(* ------------------------------------------------------------------ *)
(* T11: GNN expressiveness (Section 1.2)                               *)
(* ------------------------------------------------------------------ *)

let t11 () =
  header "T11" "order-k GNNs count answers iff k >= sew (Prop. 3 + Thm 1)";
  Printf.printf "%-8s %-5s %-26s %-26s %-7s\n" "query" "sew"
    "order sew readout correct" "order sew-1 witness fails" "verdict";
  List.iter
    (fun (name, s) ->
       let q = parse s in
       let k = Wlcq_gnn.Gnn.sufficient_order q in
       let g = G.Builders.cycle 5 in
       let upper =
         match Wlcq_gnn.Gnn.answer_count_readout q (Wlcq_gnn.Gnn.make ~order:k g) with
         | Some v -> Bigint.equal v (Bigint.of_int (Cq.count_answers q g))
         | None -> false
       in
       let lower =
         if k = 1 then true (* no lower order exists *)
         else
           match Wlcq_gnn.Gnn.inexpressibility_witness q with
           | None -> false
           | Some (g1, g2) ->
             Wlcq_gnn.Gnn.indistinguishable ~order:(k - 1) g1 g2
             && Cq.count_answers q g1 <> Cq.count_answers q g2
       in
       let ok = upper && lower in
       record ok;
       Printf.printf "%-8s %-5d %-26b %-26b %-7s\n" name k upper lower
         (verdict ok))
    [ ("edge", "(x1, x2) := E(x1, x2)");
      ("star2", "(x1, x2) := exists y . E(x1, y) & E(x2, y)");
      ("star3", "(x1, x2, x3) := exists y . E(x1,y) & E(x2,y) & E(x3,y)") ]

(* ------------------------------------------------------------------ *)
(* T12: WL-dimension of the adjacency spectrum                         *)
(* ------------------------------------------------------------------ *)

let t12 () =
  header "T12"
    "the characteristic polynomial is a dimension-2 parameter";
  (* lower bound: a 1-WL-equivalent, non-cospectral pair *)
  let g1 = G.Builders.two_triangles () and g2 = G.Builders.cycle 6 in
  let lower =
    Wlcq_wl.Equivalence.equivalent 1 g1 g2
    && not (G.Spectral.cospectral g1 g2)
  in
  record lower;
  Printf.printf
    "  lower: 2K3 ~1 C6 but spectra differ -> dimension > 1        %s\n"
    (verdict lower);
  (* upper evidence: 2-WL-equivalent pairs are cospectral (closed
     walks are hom counts from cycles, treewidth 2) *)
  let even, odd = Wlcq_cfi.Pairs.twisted_pair (G.Builders.clique 4) in
  let pairs =
    [ ("chi(K4)", even.Cfi.graph, odd.Cfi.graph);
      ("shrikhande/rook", G.Builders.shrikhande (), G.Builders.rook ()) ]
  in
  List.iter
    (fun (name, a, b) ->
       let ok = G.Spectral.cospectral a b in
       record ok;
       Printf.printf
         "  upper: 2-WL-equivalent pair %-16s cospectral: %b  %s\n" name ok
         (verdict ok))
    pairs

(* ------------------------------------------------------------------ *)
(* T13: WL-dimension survey of standard graph parameters               *)
(* ------------------------------------------------------------------ *)

let t13 () =
  header "T13" "experimental WL-dimension lower bounds for graph parameters";
  Printf.printf "%-16s %-22s %-7s\n" "parameter" "dimension lower bound"
    "via pair";
  List.iter
    (fun p ->
       match Invariant.dimension_lower_bound p with
       | None ->
         Printf.printf "%-16s %-22s %-7s\n" p.Invariant.name
           ">= 1 (no separation)" "-"
       | Some (k, pair) ->
         Printf.printf "%-16s %-22s %-7s\n" p.Invariant.name
           (Printf.sprintf ">= %d" k) pair)
    (Invariant.standard_library ());
  (* hard expectations from the theory *)
  let expect name k =
    let p =
      match
        List.find_opt
          (fun p -> String.equal p.Invariant.name name)
          (Invariant.standard_library ())
      with
      | Some p -> p
      | None -> failwith ("Main.expect: unknown invariant " ^ name)
    in
    let ok = Option.is_none (Invariant.dimension_lower_bound p) && k = 1
             || (match Invariant.dimension_lower_bound p with
                 | Some (k', _) -> k' = k
                 | None -> false)
    in
    record ok;
    Printf.printf "  %-16s expected lower bound %d: %s\n" name k (verdict ok)
  in
  Printf.printf "\nchecks:\n";
  expect "num-edges" 1;       (* never separates: 1-WL determines it *)
  expect "max-degree" 1;
  expect "triangles" 2;       (* separates a 1-WL pair, no 2-WL pair *)
  expect "charpoly" 2;
  expect "domsets-2" 2;
  expect "domsets-3" 3;       (* separates the 2-WL-equivalent SRG pair *)
  expect "star2-answers" 2

(* ------------------------------------------------------------------ *)
(* T15: Corollary 2 — CQ-indistinguishability characterises k-WL       *)
(* ------------------------------------------------------------------ *)

let t15 () =
  header "T15"
    "Corollary 2: G ~k G' iff all connected CQs with sew <= k agree";
  (* a query library stratified by sew *)
  let library =
    [ ("edge", parse "(x1, x2) := E(x1, x2)", 1);
      ("pendant", parse "(x) := exists y . E(x, y)", 1);
      ("full-P3", Cq.make (G.Builders.path 3) [ 0; 1; 2 ], 1);
      ("star2", Star.query 2, 2);
      ("quant-path2", Gen_query.quantified_path 2, 2);
      ("full-C5", Cq.make (G.Builders.cycle 5) [ 0; 1; 2; 3; 4 ], 2);
      ("full-triangle", Cq.make (G.Builders.cycle 3) [ 0; 1; 2 ], 2) ]
  in
  let pairs = Invariant.witness_pairs () in
  (* forward direction: on a level-k pair, every query with sew <= k
     agrees *)
  Printf.printf "%-16s %-4s %-16s %-9s %-9s %-7s\n" "pair" "k" "query"
    "count1" "count2" "verdict";
  List.iter
    (fun (pname, k, g1, g2) ->
       List.iter
         (fun (qname, q, sew) ->
            if sew <= k then begin
              let c1 = Cq.count_answers q g1 and c2 = Cq.count_answers q g2 in
              let ok = c1 = c2 in
              record ok;
              Printf.printf "%-16s %-4d %-16s %-9d %-9d %-7s\n" pname k qname
                c1 c2 (verdict ok)
            end)
         library)
    pairs;
  (* converse direction: each pair is NOT (k+1)-indistinguishable —
     exhibit a full CQ of treewidth <= k+1 (hence sew <= k+1) with
     different counts, from the smallest distinguishing hom pattern *)
  Printf.printf "\nconverse (a sew <= k+1 query separates each pair):\n";
  List.iter
    (fun (pname, k, g1, g2) ->
       match
         Wlcq_wl.Hom_profile.first_difference ~max_size:4 ~tw_bound:(k + 1)
           g1 g2
       with
       | None ->
         record false;
         Printf.printf "  %-16s no separating pattern found FAIL\n" pname
       | Some (pattern, c1, c2) ->
         let q =
           Cq.make pattern
             (List.init (G.Graph.num_vertices pattern) (fun i -> i))
         in
         let sew = Extension.semantic_extension_width q in
         let ok = sew <= k + 1 && not (Bigint.equal c1 c2) in
         record ok;
         Printf.printf
           "  %-16s separated by a full CQ on %d vars with sew = %d  %s\n"
           pname
           (G.Graph.num_vertices pattern)
           sew (verdict ok))
    pairs

(* ------------------------------------------------------------------ *)
(* T14: batch Theorem 1 certificates                                   *)
(* ------------------------------------------------------------------ *)

let t14 () =
  header "T14" "machine-checked Theorem 1 certificates, batch mode";
  Printf.printf "%-44s %-5s %-12s %-8s %-7s\n" "query" "dim" "Ans^id gap"
    "valid" "verdict";
  let named =
    [ "(x1, x2) := E(x1, x2)";
      "(x1, x2) := exists y . E(x1, y) & E(x2, y)";
      "(x1, x2) := exists y1 y2 . E(x1, y1) & E(y1, y2) & E(y2, x2)";
      "(x1) := exists y1 y2 . E(x1, y1) & E(x1, y2) & E(y1, y2)";
      "(x1, x2, x3) := exists y . E(x1,y) & E(x2,y) & E(x3,y)" ]
  in
  let rng = Prng.create 4242 in
  let random =
    List.init 3 (fun _ ->
        Gen_query.random_connected rng ~num_vars:5 ~num_free:2 ~edge_prob:0.3)
  in
  List.iter
    (fun (label, q) ->
       let c = Certificate.certify q in
       let valid = Certificate.is_valid c in
       let gap =
         match c.Certificate.lower with
         | None -> "- (full)"
         | Some l ->
           Printf.sprintf "%d > %d" l.Certificate.ans_id_even
             l.Certificate.ans_id_odd
       in
       record valid;
       Printf.printf "%-44s %-5d %-12s %-8b %-7s\n" label
         c.Certificate.dimension gap valid (verdict valid))
    (List.map (fun s -> (s, parse s)) named
     @ List.mapi (fun i q -> (Printf.sprintf "random query #%d" (i + 1), q))
       random)

(* ------------------------------------------------------------------ *)
(* Timing series (Bechamel)                                            *)
(* ------------------------------------------------------------------ *)

let run_timing title tests =
  let open Bechamel in
  Printf.printf "\n--- %s ---\n" title;
  (* the Bechamel series time raw engines; with the content-addressed
     tier armed every post-warmup iteration would be a cache probe *)
  let saved = (Cache.stats ()).Cache.capacity_words in
  Cache.set_capacity_words 0;
  Fun.protect ~finally:(fun () -> Cache.set_capacity_words saved) @@ fun () ->
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:title tests) in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
         let ns =
           match Analyze.OLS.estimates ols with
           | Some (x :: _) -> x
           | _ -> nan
         in
         (name, ns) :: acc)
      results []
  in
  List.iter
    (fun (name, ns) ->
       if ns < 1000.0 then Printf.printf "%-52s %12.1f ns/run\n" name ns
       else if ns < 1_000_000.0 then
         Printf.printf "%-52s %12.2f us/run\n" name (ns /. 1e3)
       else Printf.printf "%-52s %12.2f ms/run\n" name (ns /. 1e6))
    (List.sort
       (fun (n1, v1) (n2, v2) ->
          let c = String.compare n1 n2 in
          if c <> 0 then c else Float.compare v1 v2)
       rows)

let f1 () =
  header "F1" "hom counting: brute force vs treewidth DP (engine of Obs. 23)";
  let h = G.Builders.path 4 in
  let rng = Prng.create 41 in
  let tests =
    List.concat_map
      (fun n ->
         let g = G.Gen.gnp rng n 0.3 in
         let d = TW.Exact.optimal_decomposition h in
         [ Bechamel.Test.make
             ~name:(Printf.sprintf "brute/P4->gnp%d" n)
             (Bechamel.Staged.stage (fun () ->
                  ignore (Wlcq_hom.Brute.count h g)));
           Bechamel.Test.make
             ~name:(Printf.sprintf "td-dp/P4->gnp%d" n)
             (Bechamel.Staged.stage (fun () ->
                  ignore (Wlcq_hom.Td_count.count_with_decomposition d h g)))
         ])
      [ 10; 20; 40 ]
  in
  run_timing "F1-hom-counting" tests

(* ------------------------------------------------------------------ *)
(* F1b: packed-key DP vs the list-keyed reference engines, plus the    *)
(* shared-decomposition batch entry point — the PR4 acceptance series. *)
(* Machine-readable timings for F1/F1b/F3/F3b land in BENCH_PR4.json.  *)
(* ------------------------------------------------------------------ *)

let write_bench_json ~pr file =
  let rows = List.rev !pr4_rows in
  let row (series, name, told, tnew) =
    Printf.sprintf
      "    {\"series\": \"%s\", \"instance\": \"%s\", \"t_old_s\": %.9f, \
       \"t_new_s\": %.9f, \"speedup\": %.3f}"
      series name told tnew
      (told /. Float.max tnew 1e-9)
  in
  let json =
    Printf.sprintf "{\n  \"pr\": %d,\n  \"rows\": [\n%s\n  ]\n}\n" pr
      (String.concat ",\n" (List.map row rows))
  in
  if not (Obs.json_parseable json) then
    failwith "Main.write_bench_json: generated bench JSON does not parse";
  let oc = open_out file in
  output_string oc json;
  close_out oc;
  Printf.printf "\nbench rows written to %s\n" file

let f1b () =
  header "F1b"
    "packed-key DP vs reference engines + batch API (PR4 acceptance)";
  pr4_rows := [];
  Printf.printf "%-22s %-3s %12s %12s %9s %-7s\n" "instance" "n" "old" "new"
    "speedup" "verdict";
  let reps = 40 in
  let repeat f () =
    let r = ref (f ()) in
    for _ = 2 to reps do
      r := f ()
    done;
    !r
  in
  let h = G.Builders.path 4 in
  (* F1 shape, recorded for the JSON table: brute vs the packed DP on
     the same instances as the Bechamel F1 series *)
  let rng = Prng.create 41 in
  List.iter
    (fun n ->
       let g = G.Gen.gnp rng n 0.3 in
       let d = TW.Exact.optimal_decomposition h in
       speedup_row ~series:"F1"
         (Printf.sprintf "brute-vs-dp/gnp%d" n)
         n
         (repeat (fun () -> Bigint.of_int (Wlcq_hom.Brute.count h g)))
         (repeat (fun () -> Wlcq_hom.Td_count.count_with_decomposition d h g))
         Bigint.equal)
    [ 10; 20; 40 ];
  (* F1b proper: the retired list-keyed engine vs the packed engine;
     the >= 3x bound is enforced on the largest F1 instance *)
  let rng = Prng.create 41 in
  List.iter
    (fun n ->
       let g = G.Gen.gnp rng n 0.3 in
       let d = TW.Exact.optimal_decomposition h in
       let min_speedup = if n = 40 then 3.0 else 0.0 in
       speedup_row ~min_speedup ~series:"F1b"
         (Printf.sprintf "ref-vs-packed/gnp%d" n)
         n
         (repeat (fun () ->
              Wlcq_hom.Td_count.count_with_decomposition_reference d h g))
         (repeat (fun () -> Wlcq_hom.Td_count.count_with_decomposition d h g))
         Bigint.equal)
    [ 10; 20; 40 ];
  (* F3 shape: answer enumeration vs the Corollary 4 DP (packed) *)
  let gq = G.Builders.grid 3 4 in
  let q3 = Gen_query.quantified_path 2 in
  speedup_row ~series:"F3" "enum-vs-fast/qpath2" 12
    (repeat (fun () -> Bigint.of_int (Cq.count_answers q3 gq)))
    (repeat (fun () -> Fast_count.count_answers q3 gq))
    Bigint.equal;
  (* F3b shape: the retired Fast_count enumeration vs the packed DP *)
  let full_path k = Cq.make (G.Builders.path k) (List.init k (fun i -> i)) in
  let q5 = full_path 5 in
  speedup_row ~series:"F3b" "fastref-vs-packed/path5" 12
    (repeat (fun () -> Fast_count.count_answers_reference q5 gq))
    (repeat (fun () -> Fast_count.count_answers q5 gq))
    Bigint.equal;
  (* batch acceptance: count_many on the T3 extension family must beat
     L independent count calls; the decomposition memo is cleared per
     repetition so both sides pay cold-cache decomposition costs *)
  let core =
    Minimize.counting_core (parse "(x1, x2) := exists y . E(x1, y) & E(x2, y)")
  in
  let gt = G.Gen.gnp (Prng.create 2024) 12 0.3 in
  let ell_max = G.Graph.num_vertices gt in
  let patterns =
    List.init ell_max (fun i -> (Extension.f_ell core (i + 1)).Extension.graph)
  in
  let list_agree a b = List.for_all2 Bigint.equal a b in
  speedup_row ~min_speedup:1.0 ~series:"F1b" "count_many-vs-L-counts" ell_max
    (repeat (fun () ->
         Cache.clear ();
         TW.Exact.clear_decomposition_memo ();
         List.map (fun p -> Wlcq_hom.Td_count.count p gt) patterns))
    (repeat (fun () ->
         Cache.clear ();
         TW.Exact.clear_decomposition_memo ();
         Wlcq_hom.Td_count.count_many patterns gt))
    list_agree;
  write_bench_json ~pr:4 "BENCH_PR4.json"

(* ------------------------------------------------------------------ *)
(* F5: adaptive dispatch — the PR6 acceptance series.  Every row runs  *)
(* the auto engine against the best old engine for that instance and   *)
(* enforces a universal >= 1.0x floor, so small-case speed can no      *)
(* longer be traded for large-case wins silently; the PR4 large-       *)
(* instance wins keep their own floors (>= 12x brute-vs-dp/gnp40,      *)
(* >= 3x ref-vs-packed/gnp40).  Rows land in BENCH_PR6.json.           *)
(* ------------------------------------------------------------------ *)

let f5 () =
  header "F5" "adaptive dispatch: auto >= 1.0x vs best-of-old on every row";
  Dispatch.set_engine Dispatch.Auto;
  pr4_rows := [];
  Printf.printf "%-22s %-3s %12s %12s %9s %-7s\n" "instance" "n" "old" "new"
    "speedup" "verdict";
  let reps = 40 in
  let repeat f () =
    let r = ref (f ()) in
    for _ = 2 to reps do
      r := f ()
    done;
    !r
  in
  let h = G.Builders.path 4 in
  (* brute vs the auto engine on the F1 instance ladder: the gnp10 row
     regressed to 0.977x under the always-packed PR4 engine and must
     come back over 1.0x now that dispatch picks a lean packed run *)
  let rng = Prng.create 41 in
  List.iter
    (fun n ->
       let g = G.Gen.gnp rng n 0.3 in
       let d = TW.Exact.optimal_decomposition h in
       let min_speedup = if n = 40 then 12.0 else 1.0 in
       speedup_row ~min_speedup ~series:"F5"
         (Printf.sprintf "brute-vs-dp/gnp%d" n)
         n
         (repeat (fun () -> Bigint.of_int (Wlcq_hom.Brute.count h g)))
         (repeat (fun () -> Wlcq_hom.Td_count.count_with_decomposition d h g))
         Bigint.equal)
    [ 10; 20; 40 ];
  (* list-keyed reference vs auto on the same ladder *)
  let rng = Prng.create 41 in
  List.iter
    (fun n ->
       let g = G.Gen.gnp rng n 0.3 in
       let d = TW.Exact.optimal_decomposition h in
       let min_speedup = if n = 40 then 3.0 else 1.0 in
       speedup_row ~min_speedup ~series:"F5"
         (Printf.sprintf "ref-vs-packed/gnp%d" n)
         n
         (repeat (fun () ->
              Wlcq_hom.Td_count.count_with_decomposition_reference d h g))
         (repeat (fun () -> Wlcq_hom.Td_count.count_with_decomposition d h g))
         Bigint.equal)
    [ 10; 20; 40 ];
  (* the other regressed row: answer enumeration vs auto, which now
     routes this tiny instance to the tabulating enumeration kernel *)
  let gq = G.Builders.grid 3 4 in
  let q3 = Gen_query.quantified_path 2 in
  speedup_row ~min_speedup:1.0 ~series:"F5" "enum-vs-fast/qpath2" 12
    (repeat (fun () -> Bigint.of_int (Cq.count_answers q3 gq)))
    (repeat (fun () -> Fast_count.count_answers q3 gq))
    Bigint.equal;
  (* a full-path query stays on the packed DP under auto *)
  let full_path k = Cq.make (G.Builders.path k) (List.init k (fun i -> i)) in
  let q5 = full_path 5 in
  speedup_row ~min_speedup:1.0 ~series:"F5" "fastref-vs-packed/path5" 12
    (repeat (fun () -> Fast_count.count_answers_reference q5 gq))
    (repeat (fun () -> Fast_count.count_answers q5 gq))
    Bigint.equal;
  (* k-WL: list-bucketed reference vs the probe-table engine *)
  let even, odd = Wlcq_cfi.Pairs.twisted_pair (G.Builders.cycle 6) in
  let ge = even.Cfi.graph and go = odd.Cfi.graph in
  speedup_row ~min_speedup:1.0 ~series:"F5" "kwlref-vs-packed/cfi-C6" 2
    (repeat (fun () -> Wlcq_wl.Kwl.equivalent_reference 2 ge go))
    (repeat (fun () -> Wlcq_wl.Kwl.equivalent 2 ge go))
    Bool.equal;
  (* batch API keeps its floor under dispatch *)
  let core =
    Minimize.counting_core (parse "(x1, x2) := exists y . E(x1, y) & E(x2, y)")
  in
  let gt = G.Gen.gnp (Prng.create 2024) 12 0.3 in
  let ell_max = G.Graph.num_vertices gt in
  let patterns =
    List.init ell_max (fun i -> (Extension.f_ell core (i + 1)).Extension.graph)
  in
  let list_agree a b = List.for_all2 Bigint.equal a b in
  speedup_row ~min_speedup:1.0 ~series:"F5" "count_many-vs-L-counts" ell_max
    (repeat (fun () ->
         Cache.clear ();
         TW.Exact.clear_decomposition_memo ();
         List.map (fun p -> Wlcq_hom.Td_count.count p gt) patterns))
    (repeat (fun () ->
         Cache.clear ();
         TW.Exact.clear_decomposition_memo ();
         Wlcq_hom.Td_count.count_many patterns gt))
    list_agree;
  write_bench_json ~pr:6 "BENCH_PR6.json"

(* ------------------------------------------------------------------ *)
(* F8: the content-addressed cache tier — the PR9 acceptance series.   *)
(* A Zipf-repeated workload whose every submission is a freshly        *)
(* permuted isomorphic copy is replayed cold (tier disabled) and warm  *)
(* (tier armed): the warm side must recognise the copies through       *)
(* canonical addressing and clear the enforced floors, and an armed    *)
(* zero-repeat workload must stay within 3% of the disabled path (the  *)
(* PR5/PR8 overhead discipline).  Rows land in BENCH_PR9.json.         *)
(* ------------------------------------------------------------------ *)

let f8 () =
  header "F8" "content-addressed cache: repeated workloads warm vs cold";
  Dispatch.set_engine Dispatch.Auto;
  pr4_rows := [];
  Printf.printf "%-22s %-3s %12s %12s %9s %-7s\n" "instance" "n" "cold" "warm"
    "speedup" "verdict";
  let rng = Prng.create 97 in
  (* Fisher-Yates: a fresh uniform relabelling per submission *)
  let rand_perm n =
    let p = Array.init n (fun i -> i) in
    for i = n - 1 downto 1 do
      let j = Prng.int rng (i + 1) in
      let t = p.(i) in
      p.(i) <- p.(j);
      p.(j) <- t
    done;
    p
  in
  let permuted g = G.Ops.relabel g (rand_perm (G.Graph.num_vertices g)) in
  (* Zipf pick over a pool: P(i) proportional to 1/(i+1) *)
  let zipf_pick pool =
    let k = Array.length pool in
    let total = ref 0.0 in
    for i = 0 to k - 1 do
      total := !total +. (1.0 /. float_of_int (i + 1))
    done;
    let x = ref (Prng.float rng *. !total) in
    let idx = ref (k - 1) in
    (try
       for i = 0 to k - 1 do
         x := !x -. (1.0 /. float_of_int (i + 1));
         if !x <= 0.0 then begin
           idx := i;
           raise Exit
         end
       done
     with Exit -> ());
    pool.(!idx)
  in
  let cold f () =
    Cache.set_capacity_mb 0;
    f ()
  and warm f () =
    Cache.set_capacity_mb 256;
    f ()
  in
  (* DP-table row: a Zipf-repeated pool of targets under a treewidth-2
     pattern.  The submission list is built once — 24 distinct permuted
     copies — and replayed per estimator rep, so the warm side measures
     steady-state recurrence (address-memo + tier hits); dense G(30,.25)
     sits above the canonicalisation gate, so these hits ride the
     structural address.  Recognition of *fresh* relabellings is pinned
     separately where the search cracks the instance: the n=13
     decomposition row below, the timing-smoke first-pass assertion at
     n=20, and the qcheck differentials in test_cache. *)
  let h5 = G.Builders.cycle 5 in
  let pool = Array.init 3 (fun i -> G.Gen.gnp (Prng.create (100 + i)) 30 0.25) in
  let submissions = List.init 24 (fun _ -> permuted (zipf_pick pool)) in
  let count_all () =
    List.map (fun g -> Wlcq_hom.Td_count.count h5 g) submissions
  in
  let list_agree a b = List.for_all2 Bigint.equal a b in
  speedup_row ~min_speedup:5.0 ~series:"F8" "dp-tables/zipf-gnp30" 30
    (cold count_all) (warm count_all) list_agree;
  (* decomposition row: permuted resubmissions through the exact
     solver; a hit comes back relabelled through the canonicalising
     permutation and must still be a valid decomposition of the
     submitted copy *)
  let dpool = Array.init 2 (fun i -> G.Gen.gnp (Prng.create (200 + i)) 13 0.35) in
  let dsubs = List.init 10 (fun _ -> permuted (zipf_pick dpool)) in
  let solve_all () =
    List.map
      (fun g ->
         let d = TW.Exact.optimal_decomposition g in
         assert (TW.Decomposition.is_valid_for d g);
         TW.Decomposition.width d)
      dsubs
  in
  let int_list_agree a b = List.for_all2 Int.equal a b in
  speedup_row ~min_speedup:2.0 ~series:"F8" "decompositions/gnp13" 13
    (cold solve_all) (warm solve_all) int_list_agree;
  (* k-WL verdict row: a CFI pair resubmitted under fresh relabellings;
     the verdict memo keys on the ordered pair of canonical digests, so
     every copy of the pair shares one entry *)
  let even, odd = Wlcq_cfi.Pairs.twisted_pair (G.Builders.cycle 6) in
  let ge = even.Cfi.graph and go = odd.Cfi.graph in
  let vsubs =
    List.init 4 (fun i ->
        if i = 0 then (ge, go) else (permuted ge, permuted go))
  in
  let verdicts () =
    List.map (fun (a, b) -> Wl_dimension.equivalent_cached 2 a b) vsubs
  in
  let bool_list_agree a b = List.for_all2 Bool.equal a b in
  speedup_row ~min_speedup:2.0 ~series:"F8" "kwl-verdicts/cfi-C6" 2
    (cold verdicts) (warm verdicts) bool_list_agree;
  (* armed-cache overhead: a zero-repeat workload (every instance
     distinct, nothing resubmitted) pays canonicalisation and the
     lookup machinery for nothing.  Paired off/on samples measured
     back to back, 2nd-smallest ratio of 11, 3% ceiling — the PR8
     armed-observability discipline. *)
  let max_armed_ratio = 1.03 in
  let ztw = List.init 3 (fun i -> G.Gen.gnp (Prng.create (300 + i)) 13 0.35) in
  let zdp = List.init 2 (fun i -> G.Gen.gnp (Prng.create (400 + i)) 36 0.25) in
  let zero_repeat () =
    ( List.map
        (fun g -> TW.Decomposition.width (TW.Exact.optimal_decomposition g))
        ztw,
      List.map (fun g -> Wlcq_hom.Td_count.count h5 g) zdp )
  in
  let mix_agree (w1, c1) (w2, c2) =
    List.for_all2 Int.equal w1 w2 && List.for_all2 Bigint.equal c1 c2
  in
  let was = Obs.enabled () in
  Obs.set_enabled false;
  let timed_with ~armed f =
    if armed then begin
      Cache.set_capacity_mb 256;
      (* the clear also resets the address memo, so every armed sample
         repays canonicalisation — honest zero-repeat traffic *)
      Cache.clear ()
    end
    else Cache.set_capacity_mb 0;
    Gc.full_major ();
    let r, ns = Obs.time_ns f in
    (r, Int64.to_float ns /. 1e9)
  in
  let pairs = 11 in
  let samples =
    Array.init pairs (fun _ ->
        let off_r, toff = timed_with ~armed:false zero_repeat in
        let on_r, ton = timed_with ~armed:true zero_repeat in
        (off_r, on_r, toff, ton))
  in
  Obs.set_enabled was;
  Array.sort
    (fun (_, _, o1, n1) (_, _, o2, n2) ->
       Float.compare (n1 /. o1) (n2 /. o2))
    samples;
  let off_r, on_r, toff, ton = samples.(1) in
  let ratio = ton /. Float.max toff 1e-9 in
  let ok = mix_agree off_r on_r && ratio <= max_armed_ratio in
  record ok;
  pr4_rows := ("F8-armed-cache", "zero-repeat-mix", toff, ton) :: !pr4_rows;
  Printf.printf "F8  armed cache %-18s off %8.2f ms on %8.2f ms %6.3fx %-7s\n"
    "zero-repeat-mix" (toff *. 1e3) (ton *. 1e3) ratio (verdict ok);
  Cache.set_capacity_mb 256;
  write_bench_json ~pr:9 "BENCH_PR9.json"

(* ------------------------------------------------------------------ *)
(* F9: the wlcq daemon under concurrent load — the PR10 acceptance     *)
(* series.  An in-process daemon serves a mixed                        *)
(* decide/count/count-batch/treewidth workload from concurrent client  *)
(* domains (p50/p99/throughput rows), a warm repeated count workload   *)
(* must beat spawning the one-shot CLI per request by >= 2x, and a     *)
(* burst against a one-worker, shallow-queue daemon must shed with    *)
(* retry-after hints rather than queue without bound.  Rows land in    *)
(* BENCH_PR10.json.                                                    *)
(* ------------------------------------------------------------------ *)

module Serve = Wlcq_serve.Server
module Sclient = Wlcq_serve.Client
module Wire = Wlcq_serve.Wire

let serve_socket tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "wlcq-bench-%s-%d.sock" tag (Unix.getpid ()))

(* run [f] against a live in-process daemon; always drains it *)
let with_daemon ~tag cfg_of f =
  let socket = serve_socket tag in
  if Sys.file_exists socket then Sys.remove socket;
  let t = Serve.create (cfg_of (Serve.default_config ~socket_path:socket)) in
  let ready = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Serve.run ~on_listening:(fun () -> Atomic.set ready true) t)
  in
  Fun.protect
    ~finally:(fun () ->
      Serve.shutdown t;
      Domain.join d;
      if Sys.file_exists socket then Sys.remove socket)
    (fun () ->
      while not (Atomic.get ready) do
        Unix.sleepf 0.002
      done;
      f ~socket)

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(min (n - 1) (p * n / 100))

let f9 () =
  header "F9" "wlcq serve: concurrent load, latency and backpressure";
  pr4_rows := [];
  let star2 = "(x1, x2) := exists y . E(x1, y) & E(x2, y)" in
  let edgeq = "(x1, x2) := E(x1, x2)" in
  let count_graph = "gnp:24,0.3,5" in
  let req id op = { Wire.id; deadline_ms = None; max_live_mb = None; op } in
  let expect_ok what = function
    | Ok v -> v
    | Error e -> failwith (Printf.sprintf "Main.f9: %s: %s" what e)
  in
  (* ground truth for the result checks, computed in-process *)
  let parse_q s = (Wlcq_core.Parser.parse_exn s).Wlcq_core.Parser.query in
  let parse_g s =
    match G.Spec.parse s with
    | Ok g -> g
    | Error e -> failwith ("Main.f9: " ^ e)
  in
  let star2_count =
    Cq.count_answers (parse_q star2) (parse_g count_graph)
  in
  let edge_count = Cq.count_answers (parse_q edgeq) (parse_g "cycle:8") in
  let star2_c8 = Cq.count_answers (parse_q star2) (parse_g "cycle:8") in
  (* ---- mixed concurrent load: p50 / p99 / throughput --------------- *)
  let clients = 3 and per_client = 60 in
  let mixed_ok = Atomic.make true in
  let latencies_of ~socket cid =
    let c = expect_ok "connect" (Sclient.connect ~socket ()) in
    Fun.protect ~finally:(fun () -> Sclient.close c) (fun () ->
        Array.init per_client (fun i ->
            let id = Printf.sprintf "c%d-%d" cid i in
            let op, check =
              match i mod 4 with
              | 0 ->
                ( Wire.Count { query = star2; graph = count_graph },
                  fun (r : Wire.response) ->
                    String.equal r.Wire.r_value (string_of_int star2_count) )
              | 1 ->
                ( Wire.Decide { k = 1; g1 = "cycle:6"; g2 = "twotriangles" },
                  fun r -> String.equal r.Wire.r_value "true" )
              | 2 ->
                ( Wire.Count_batch
                    { queries = [ edgeq; star2 ]; graph = "cycle:8" },
                  fun r ->
                    String.equal r.Wire.r_value
                      (Printf.sprintf "%d,%d" edge_count star2_c8) )
              | _ ->
                ( Wire.Treewidth { graph = "clique:6" },
                  fun r -> String.equal r.Wire.r_value "5" )
            in
            let t0 = Obs.now_ns () in
            let r = expect_ok "request" (Sclient.request c (req id op)) in
            let dt = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e9 in
            (match r.Wire.r_status with
             | Wire.Ok_ -> if not (check r) then Atomic.set mixed_ok false
             | _ -> Atomic.set mixed_ok false);
            dt))
  in
  let total_wall, all_lat =
    with_daemon ~tag:"f9-load"
      (fun c -> { c with Serve.workers = 2 })
      (fun ~socket ->
        (* one warm-up pass primes the content tier and the decomp memo *)
        ignore (latencies_of ~socket 999);
        let t0 = Obs.now_ns () in
        let doms =
          List.init clients (fun cid ->
              Domain.spawn (fun () -> latencies_of ~socket cid))
        in
        let lat = List.concat_map (fun d -> Array.to_list (Domain.join d)) doms in
        let wall = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e9 in
        (wall, Array.of_list lat))
  in
  Array.sort Float.compare all_lat;
  let n_req = Array.length all_lat in
  let p50 = percentile all_lat 50 and p99 = percentile all_lat 99 in
  let throughput = float_of_int n_req /. Float.max total_wall 1e-9 in
  let ok = Atomic.get mixed_ok && n_req = clients * per_client in
  record ok;
  pr4_rows := ("F9", "mixed-load/p50-vs-p99", p99, p50) :: !pr4_rows;
  Printf.printf
    "F9  mixed load: %d req / %d clients  p50 %.2f ms  p99 %.2f ms  %7.0f \
     req/s %s\n"
    n_req clients (p50 *. 1e3) (p99 *. 1e3) throughput (verdict ok);
  (* ---- warm daemon vs one-shot CLI: the >= 2x floor ----------------- *)
  let cli =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin/wlcq.exe"
  in
  if not (Sys.file_exists cli) then begin
    record false;
    Printf.printf "F9  one-shot CLI not found at %s FAIL\n" cli
  end
  else begin
    let min_speedup = 2.0 in
    let shots = 8 in
    let cli_cmd =
      Printf.sprintf "%s ans %s --graph %s >/dev/null 2>&1"
        (Filename.quote cli)
        (Filename.quote star2)
        count_graph
    in
    (* every CLI shot pays process start-up and a cold cache: that is
       the baseline the resident daemon exists to beat *)
    let t0 = Obs.now_ns () in
    for _ = 1 to shots do
      if Sys.command cli_cmd <> 0 then failwith "Main.f9: one-shot CLI failed"
    done;
    let t_cli =
      Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e9
      /. float_of_int shots
    in
    let t_daemon =
      with_daemon ~tag:"f9-oneshot"
        (fun c -> { c with Serve.workers = 1 })
        (fun ~socket ->
          let c = expect_ok "connect" (Sclient.connect ~socket ()) in
          Fun.protect ~finally:(fun () -> Sclient.close c) (fun () ->
              let shot i =
                let r =
                  expect_ok "request"
                    (Sclient.request c
                       (req (string_of_int i)
                          (Wire.Count { query = star2; graph = count_graph })))
                in
                if not (String.equal r.Wire.r_value (string_of_int star2_count))
                then failwith "Main.f9: daemon count disagrees with the engine"
              in
              shot 0 (* warm-up: primes the tier *);
              let t0 = Obs.now_ns () in
              for i = 1 to shots do
                shot i
              done;
              Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e9
              /. float_of_int shots))
    in
    let speedup = t_cli /. Float.max t_daemon 1e-9 in
    let ok = speedup >= min_speedup in
    record ok;
    pr4_rows :=
      ("F9", "oneshot-cli-vs-daemon/star2-count", t_cli, t_daemon)
      :: !pr4_rows;
    Printf.printf
      "F9  one-shot CLI %8.2f ms vs warm daemon %8.2f ms %8.1fx (floor \
       %.0fx) %s\n"
      (t_cli *. 1e3) (t_daemon *. 1e3) speedup min_speedup (verdict ok)
  end;
  (* ---- backpressure: a burst against a shallow queue must shed ------ *)
  let burst = 24 in
  let shed, answered, retry_ok =
    with_daemon ~tag:"f9-burst"
      (fun c ->
        {
          c with
          Serve.workers = 1;
          max_queue = 4;
          max_queue_per_client = 2;
        })
      (fun ~socket ->
        let c = expect_ok "connect" (Sclient.connect ~socket ()) in
        Fun.protect ~finally:(fun () -> Sclient.close c) (fun () ->
            for i = 1 to burst do
              expect_ok "send"
                (Sclient.send c
                   {
                     Wire.id = Printf.sprintf "b%d" i;
                     deadline_ms = Some 400.0;
                     max_live_mb = None;
                     op = Wire.Treewidth { graph = "gnp:36,0.35,9" };
                   })
            done;
            let shed = ref 0 and answered = ref 0 and retry_ok = ref true in
            for _ = 1 to burst do
              let r = expect_ok "receive" (Sclient.receive c) in
              match r.Wire.r_status with
              | Wire.Overloaded ->
                incr shed;
                if Option.is_none r.Wire.r_retry_after_ms then retry_ok := false
              | Wire.Ok_ | Wire.Degraded | Wire.Exhausted -> incr answered
              | Wire.Error_ | Wire.Draining -> retry_ok := false
            done;
            (!shed, !answered, !retry_ok)))
  in
  let ok = shed >= 1 && answered >= 1 && retry_ok in
  record ok;
  Printf.printf
    "F9  burst %d on q=4/w=1: shed %d (rate %.2f, retry-after on all) \
     answered %d %s\n"
    burst shed
    (float_of_int shed /. float_of_int burst)
    answered (verdict ok);
  write_bench_json ~pr:10 "BENCH_PR10.json"

(* ------------------------------------------------------------------ *)
(* calibrate: re-derive the dispatch calibration constants.  Times the *)
(* candidate engines across an instance ladder and prints the observed *)
(* crossover points in the calibration table's own format; paste the   *)
(* suggestions into Dispatch.default_calibration after a hardware      *)
(* change (see DESIGN.md, "Adaptive engine dispatch").                 *)
(* ------------------------------------------------------------------ *)

let calibrate () =
  header "calibrate" "measure engine crossovers for the dispatch cost model";
  let reps = 60 in
  let repeat f () =
    for _ = 1 to reps do
      f ()
    done
  in
  let timed e f =
    Dispatch.set_engine e;
    let _, t = wall_time_best (repeat f) in
    Dispatch.set_engine Dispatch.Auto;
    t
  in
  (* hom engines along a gnp ladder: the brute cutoff is the largest
     estimated brute cost at which enumeration still wins *)
  Printf.printf "%-18s %12s %12s %12s %8s\n" "hom instance" "brute_cost"
    "t_brute" "t_packed" "winner";
  let h = G.Builders.path 4 in
  let rng = Prng.create 41 in
  let brute_max = ref 0 in
  List.iter
    (fun n ->
       let g = G.Gen.gnp rng n 0.3 in
       let cost =
         Dispatch.brute_cost ~nh:(G.Graph.num_vertices h) ~ng:n
           ~mg:(G.Graph.num_edges g)
       in
       let tb = timed Dispatch.Brute (fun () -> ignore (Wlcq_hom.Td_count.count h g)) in
       let tp = timed Dispatch.Packed (fun () -> ignore (Wlcq_hom.Td_count.count h g)) in
       if tb < tp then brute_max := max !brute_max cost;
       Printf.printf "%-18s %12d %10.2f ms %10.2f ms %8s\n"
         (Printf.sprintf "P4->gnp%d" n)
         cost (tb *. 1e3) (tp *. 1e3)
         (if tb < tp then "brute" else "packed"))
    [ 4; 6; 8; 10; 14; 20; 28 ];
  (* answer engines along a grid ladder: the enumeration cutoff is the
     largest ng^|X| at which the tabulating kernel still wins *)
  Printf.printf "\n%-18s %12s %12s %12s %8s\n" "ans instance" "ng^|X|"
    "t_enum" "t_packed" "winner";
  let q = Gen_query.quantified_path 2 in
  let enum_max = ref 0 in
  List.iter
    (fun (r, c) ->
       let g = G.Builders.grid r c in
       let ng = G.Graph.num_vertices g in
       let space = Dispatch.sat_pow ng 2 in
       let te = timed Dispatch.Brute (fun () -> ignore (Fast_count.count_answers q g)) in
       let tp = timed Dispatch.Packed (fun () -> ignore (Fast_count.count_answers q g)) in
       if te < tp then enum_max := max !enum_max space;
       Printf.printf "%-18s %12d %10.2f ms %10.2f ms %8s\n"
         (Printf.sprintf "qpath2->grid%dx%d" r c)
         space (te *. 1e3) (tp *. 1e3)
         (if te < tp then "enum" else "packed"))
    [ (2, 3); (3, 3); (3, 4); (4, 5); (5, 6); (6, 8) ];
  let c = Dispatch.default_calibration in
  Printf.printf
    "\nsuggested calibration (measured crossovers, compiled-in defaults \
     in parentheses):\n";
  Printf.printf "  brute_hom_max    = %d  (%d)\n" !brute_max
    c.Dispatch.brute_hom_max;
  Printf.printf "  enum_answers_max = %d  (%d)\n" !enum_max
    c.Dispatch.enum_answers_max;
  Printf.printf
    "  prune_min_work / dp_parallel_min / wl_parallel_min / wl_chunk / \
     dense_key_bits: retime with F4/F2 workloads; current %d / %d / %d / \
     %d / %d\n"
    c.Dispatch.prune_min_work c.Dispatch.dp_parallel_min
    c.Dispatch.wl_parallel_min c.Dispatch.wl_chunk c.Dispatch.dense_key_bits


(* ------------------------------------------------------------------ *)
(* F4: budget-check overhead.  A live budget with an unreachable       *)
(* deadline threads every engine's tick/check sites without ever      *)
(* tripping; the acceptance bound is <= 3% over the unbudgeted run on  *)
(* the F1b DP workload and the F2 k-WL workload.                       *)
(* ------------------------------------------------------------------ *)

let f4 () =
  header "F4" "budget-check overhead: huge deadline vs no budget (<= 3%)";
  let max_ratio = 1.03 in
  Printf.printf "%-26s %12s %12s %8s %-7s\n" "instance" "no-budget"
    "budgeted" "ratio" "verdict";
  (* best-of-9: the enforced bound is tight, so lean harder than the
     best-of-3 speedup rows on the minimum-as-estimator *)
  let best_of f =
    let r, t0 = wall_time f in
    let t = ref t0 in
    for _ = 2 to 9 do
      let _, ti = wall_time f in
      if ti < !t then t := ti
    done;
    (r, !t)
  in
  let overhead_row name run_plain run_budgeted agree =
    let plain_r, tplain = best_of run_plain in
    let budget_r, tbudget = best_of run_budgeted in
    let ratio = tbudget /. Float.max tplain 1e-9 in
    let ok = agree plain_r budget_r && ratio <= max_ratio in
    record ok;
    Printf.printf "%-26s %9.2f ms %9.2f ms %7.3fx %-7s\n" name
      (tplain *. 1e3) (tbudget *. 1e3) ratio (verdict ok)
  in
  let huge () = Budget.create ~deadline_ms:3.6e6 () in
  (* F1b workload: the packed DP on the largest F1 instance *)
  let h = G.Builders.path 4 in
  (* same rng discipline as F1b: the 40-vertex instance is the third
     draw after the 10- and 20-vertex ones *)
  let rng = Prng.create 41 in
  ignore (G.Gen.gnp rng 10 0.3);
  ignore (G.Gen.gnp rng 20 0.3);
  let g = G.Gen.gnp rng 40 0.3 in
  let d = TW.Exact.optimal_decomposition h in
  let reps = 25 in
  let repeat f () =
    let r = ref (f ()) in
    for _ = 2 to reps do
      r := f ()
    done;
    !r
  in
  overhead_row "td-dp/gnp40"
    (repeat (fun () -> Wlcq_hom.Td_count.count_with_decomposition d h g))
    (repeat (fun () ->
         Wlcq_hom.Td_count.count_with_decomposition ~budget:(huge ()) d h g))
    Bigint.equal;
  (* F2 workload: 2-WL to the stable colouring on a mid-size graph *)
  let gw = G.Gen.gnp (Prng.create 43) 48 0.2 in
  overhead_row "kwl2/gnp48"
    (repeat (fun () -> (Wlcq_wl.Kwl.run 2 gw).Wlcq_wl.Kwl.num_colours))
    (repeat (fun () ->
         match Wlcq_wl.Kwl.run_budgeted ~budget:(huge ()) 2 gw with
         | `Exact r -> r.Wlcq_wl.Kwl.num_colours
         | `Degraded _ | `Exhausted _ -> -1))
    ( = )

let f2 () =
  header "F2" "k-WL runtime and rounds";
  (* rounds report *)
  Printf.printf "%-14s %-4s %-8s %-8s\n" "graph" "k" "rounds" "colours";
  List.iter
    (fun (name, g) ->
       let r1 = Wlcq_wl.Refinement.run g in
       Printf.printf "%-14s %-4d %-8d %-8d\n" name 1 r1.Wlcq_wl.Refinement.rounds
         r1.Wlcq_wl.Refinement.num_colours;
       let r2 = Wlcq_wl.Kwl.run 2 g in
       Printf.printf "%-14s %-4d %-8d %-8d\n" name 2 r2.Wlcq_wl.Kwl.rounds
         r2.Wlcq_wl.Kwl.num_colours)
    [ ("petersen", G.Builders.petersen ());
      ("grid4x4", G.Builders.grid 4 4);
      ("chi(C4)", (Cfi.even (G.Builders.cycle 4)).Cfi.graph) ];
  (* old-vs-new: the list-based reference engine against the hashed
     flat-buffer engine, forced single-thread, full runs to the stable
     partition.  Partition cardinality and round count must agree. *)
  Printf.printf
    "\nold-vs-new (single thread, full run to stabilisation, monotonic wall \
     time):\n";
  Printf.printf "%-22s %-3s %12s %12s %9s %-7s\n" "instance" "k" "old" "new"
    "speedup" "verdict";
  let single_agree (a : Wlcq_wl.Kwl.result) (b : Wlcq_wl.Kwl.result) =
    a.Wlcq_wl.Kwl.num_colours = b.Wlcq_wl.Kwl.num_colours
    && a.Wlcq_wl.Kwl.rounds = b.Wlcq_wl.Kwl.rounds
  in
  let pair_agree (a1, a2) (b1, b2) = single_agree a1 b1 && single_agree a2 b2 in
  let rng_su = Prng.create 77 in
  List.iter
    (fun (name, k, g) ->
       speedup_row name k
         (fun () -> Wlcq_wl.Kwl.run_reference k g)
         (fun () -> Wlcq_wl.Kwl.run ~domains:1 k g)
         single_agree)
    [ ("gnp12", 2, G.Gen.gnp rng_su 12 0.3);
      ("gnp20", 2, G.Gen.gnp rng_su 20 0.3);
      ("gnp10", 3, G.Gen.gnp rng_su 10 0.3) ];
  (* the acceptance instance: a 20-vertex CFI twisted pair at k = 3 *)
  let even, odd = Wlcq_cfi.Pairs.twisted_pair (G.Builders.cycle 10) in
  speedup_row ~min_speedup:5.0
    (Printf.sprintf "chi(C10) pair (n=%d)" (Cfi.num_vertices even))
    3
    (fun () -> Wlcq_wl.Kwl.run_pair_reference 3 even.Cfi.graph odd.Cfi.graph)
    (fun () -> Wlcq_wl.Kwl.run_pair ~domains:1 3 even.Cfi.graph odd.Cfi.graph)
    pair_agree;
  let rng = Prng.create 42 in
  let tests =
    List.concat_map
      (fun n ->
         let g = G.Gen.gnp rng n 0.3 in
         [ Bechamel.Test.make
             ~name:(Printf.sprintf "1-WL/gnp%d" n)
             (Bechamel.Staged.stage (fun () ->
                  ignore (Wlcq_wl.Refinement.run g)));
           Bechamel.Test.make
             ~name:(Printf.sprintf "2-WL/gnp%d" n)
             (Bechamel.Staged.stage (fun () ->
                  ignore (Wlcq_wl.Kwl.run ~domains:1 2 g)));
           Bechamel.Test.make
             ~name:(Printf.sprintf "2-WL-par/gnp%d" n)
             (Bechamel.Staged.stage (fun () ->
                  ignore (Wlcq_wl.Kwl.run 2 g))) ])
      [ 8; 16; 24; 32; 48 ]
    @ (let g = G.Gen.gnp rng 12 0.3 in
       [ Bechamel.Test.make ~name:"3-WL/gnp12"
           (Bechamel.Staged.stage (fun () ->
                ignore (Wlcq_wl.Kwl.run ~domains:1 3 g)));
         Bechamel.Test.make ~name:"3-WL-par/gnp12"
           (Bechamel.Staged.stage (fun () ->
                ignore (Wlcq_wl.Kwl.run 3 g))) ])
  in
  run_timing "F2-kWL" tests

let f3 () =
  header "F3"
    "answer counting cost: bounded-sew family vs star family (Cor. 4 shape)";
  let g = G.Builders.grid 3 4 in
  (* bounded family: quantified paths between two free endpoints,
     sew = 2 for every length *)
  let quant_path = Gen_query.quantified_path in
  Printf.printf "%-22s %-6s %-9s\n" "query" "sew" "|Ans| on grid3x4";
  List.iter
    (fun len ->
       let q = quant_path len in
       Printf.printf "%-22s %-6d %-9d\n"
         (Printf.sprintf "quant-path len %d" len)
         (Extension.semantic_extension_width q)
         (Cq.count_answers q g))
    [ 1; 2; 3; 4 ];
  List.iter
    (fun k ->
       let q = Star.query k in
       Printf.printf "%-22s %-6d %-9d\n"
         (Printf.sprintf "star %d" k)
         (Extension.semantic_extension_width q)
         (Cq.count_answers q g))
    [ 1; 2; 3; 4 ];
  let tests =
    List.map
      (fun len ->
         let q = quant_path len in
         Bechamel.Test.make
           ~name:(Printf.sprintf "bounded-sew/quant-path%d" len)
           (Bechamel.Staged.stage (fun () -> ignore (Cq.count_answers q g))))
      [ 1; 2; 3; 4 ]
    @ List.map
      (fun k ->
         let q = Star.query k in
         Bechamel.Test.make
           ~name:(Printf.sprintf "unbounded-sew/star%d" k)
           (Bechamel.Staged.stage (fun () -> ignore (Cq.count_answers q g))))
      [ 1; 2; 3; 4 ]
  in
  run_timing "F3-answer-counting" tests;
  (* the Corollary 4 tractable algorithm vs plain enumeration: full
     path queries have ew = 1, so Fast_count's n^{O(1)}·|query| beats
     the n^k enumeration as the number of free variables grows *)
  let full_path k = Cq.make (G.Builders.path k) (List.init k (fun i -> i)) in
  let tests =
    List.concat_map
      (fun k ->
         let q = full_path k in
         [ Bechamel.Test.make
             ~name:(Printf.sprintf "enumerate/path%d" k)
             (Bechamel.Staged.stage (fun () -> ignore (Cq.count_answers q g)));
           Bechamel.Test.make
             ~name:(Printf.sprintf "fast-dp/path%d" k)
             (Bechamel.Staged.stage (fun () ->
                  ignore (Fast_count.count_answers q g))) ])
      [ 2; 3; 4; 5 ]
  in
  run_timing "F3b-corollary4-algorithm" tests

(* ------------------------------------------------------------------ *)
(* Ablation: exact treewidth BB vs subset DP (DESIGN.md design choice) *)
(* ------------------------------------------------------------------ *)

let ablation () =
  header "A1" "ablation: branch-and-bound vs subset-DP exact treewidth";
  let rng = Prng.create 123 in
  let graphs =
    List.init 5 (fun i -> (Printf.sprintf "gnp10-%d" i, G.Gen.gnp rng 10 0.35))
  in
  Printf.printf "%-10s %-5s %-5s %-7s\n" "graph" "bb" "dp" "verdict";
  List.iter
    (fun (name, g) ->
       let a = TW.Exact.treewidth g and b = TW.Exact.treewidth_dp g in
       let ok = a = b in
       record ok;
       Printf.printf "%-10s %-5d %-5d %-7s\n" name a b (verdict ok))
    graphs;
  let tests =
    List.concat_map
      (fun (name, g) ->
         [ Bechamel.Test.make ~name:("bb/" ^ name)
             (Bechamel.Staged.stage (fun () -> ignore (TW.Exact.treewidth g)));
           Bechamel.Test.make ~name:("dp/" ^ name)
             (Bechamel.Staged.stage (fun () ->
                  ignore (TW.Exact.treewidth_dp g))) ])
      (match graphs with g0 :: _ -> [ g0 ] | [] -> [])
  in
  run_timing "A1-treewidth" tests;
  (* second ablation: the three homomorphism counters agree; the two
     decomposition DPs trade constant factors *)
  header "A2" "ablation: brute vs bag-DP vs nice-DP homomorphism counting";
  let h = G.Builders.cycle 5 in
  let g = G.Gen.gnp (Prng.create 321) 20 0.3 in
  let brute = Bigint.of_int (Wlcq_hom.Brute.count h g) in
  let td = Wlcq_hom.Td_count.count h g in
  let nice = Wlcq_hom.Nice_count.count h g in
  let ok = Bigint.equal brute td && Bigint.equal td nice in
  record ok;
  Printf.printf "Hom(C5, gnp20): brute=%s bag-dp=%s nice-dp=%s %s\n"
    (Bigint.to_string brute) (Bigint.to_string td) (Bigint.to_string nice)
    (verdict ok);
  let tests =
    [ Bechamel.Test.make ~name:"brute/C5->gnp20"
        (Bechamel.Staged.stage (fun () -> ignore (Wlcq_hom.Brute.count h g)));
      Bechamel.Test.make ~name:"bag-dp/C5->gnp20"
        (Bechamel.Staged.stage (fun () -> ignore (Wlcq_hom.Td_count.count h g)));
      Bechamel.Test.make ~name:"nice-dp/C5->gnp20"
        (Bechamel.Staged.stage (fun () ->
             ignore (Wlcq_hom.Nice_count.count h g))) ]
  in
  run_timing "A2-hom-counters" tests

(* ------------------------------------------------------------------ *)
(* timing-smoke: one tiny instance per timing series, for CI.  Runs in *)
(* well under a second and exits non-zero on any disagreement, so the  *)
(* bench executable itself is exercised by `dune runtest`.             *)
(* ------------------------------------------------------------------ *)

let timing_smoke () =
  header "timing-smoke" "one tiny instance per series (F1-F3, A1)";
  (* the smoke run doubles as the observability tripwire: record
     everything, including trace events, and assert on it below *)
  Obs.set_enabled true;
  Obs.set_tracing true;
  (* F1: the two hom-counting engines agree *)
  let h = G.Builders.path 4 in
  let g = G.Gen.gnp (Prng.create 7) 10 0.3 in
  let brute = Bigint.of_int (Wlcq_hom.Brute.count h g) in
  let td = Wlcq_hom.Td_count.count h g in
  let ok = Bigint.equal brute td in
  record ok;
  Printf.printf "F1  Hom(P4, gnp10): brute=%s td-dp=%s %s\n"
    (Bigint.to_string brute) (Bigint.to_string td) (verdict ok);
  (* F2: the hashed WL engines match the reference verdicts *)
  let even, odd = Wlcq_cfi.Pairs.twisted_pair (G.Builders.cycle 4) in
  let ge = even.Cfi.graph and go = odd.Cfi.graph in
  let ok =
    Wlcq_wl.Refinement.equivalent ge go
    && (not (Wlcq_wl.Kwl.equivalent 2 ge go))
    && Wlcq_wl.Kwl.equivalent 2 ge go
       = Wlcq_wl.Kwl.equivalent_reference 2 ge go
  in
  record ok;
  Printf.printf
    "F2  chi(C4) twist: 1-WL-equivalent, 2-WL-separated, engines agree %s\n"
    (verdict ok);
  (* F3: enumeration and the Corollary 4 DP agree *)
  let q = Gen_query.quantified_path 2 in
  let g3 = G.Builders.grid 3 3 in
  let direct = Cq.count_answers q g3 in
  let fast = Fast_count.count_answers q g3 in
  let ok = Bigint.equal fast (Bigint.of_int direct) in
  record ok;
  Printf.printf "F3  quant-path2 on grid3x3: direct=%d fast-dp=%s %s\n" direct
    (Bigint.to_string fast) (verdict ok);
  (* A1: the two exact treewidth algorithms agree *)
  let g = G.Gen.gnp (Prng.create 9) 8 0.35 in
  let a = TW.Exact.treewidth g and b = TW.Exact.treewidth_dp g in
  let ok = a = b in
  record ok;
  Printf.printf "A1  treewidth gnp8: bb=%d dp=%d %s\n" a b (verdict ok);
  (* F1b: packed engine vs reference on a target with an isolated
     vertex — the isolated vertex is outside the support of every
     pattern position, so candidate pruning is guaranteed to fire.
     Under auto these tiny instances route to the small-instance fast
     paths (the point of the dispatch layer), so the packed machinery
     and its tripwire counters below are driven by a forced run —
     forcing reproduces the full arc-consistency + packed-table
     pipeline regardless of instance size. *)
  let hp = G.Builders.path 4 in
  let gp =
    G.Ops.disjoint_union (G.Gen.gnp (Prng.create 11) 8 0.4) (G.Graph.empty 1)
  in
  Dispatch.set_engine Dispatch.Packed;
  let packed_forced = Wlcq_hom.Td_count.count hp gp in
  ignore (Fast_count.count_answers q g3);
  Dispatch.set_engine Dispatch.Auto;
  let ok =
    Bigint.equal packed_forced (Wlcq_hom.Td_count.count_reference hp gp)
    && Bigint.equal packed_forced (Wlcq_hom.Td_count.count hp gp)
  in
  record ok;
  Printf.printf
    "F1b forced-packed = reference = auto on gnp8 + isolated vertex %s\n"
    (verdict ok);
  (* exercise the remaining auto decision paths so every dispatch
     counter asserted below has moved: a brute-cost instance, and a
     forced reference run *)
  ignore (Wlcq_hom.Td_count.count (G.Builders.path 2) (G.Builders.path 3));
  Dispatch.set_engine Dispatch.Reference;
  ignore (Wlcq_hom.Td_count.count hp gp);
  Dispatch.set_engine Dispatch.Auto;
  (* ---- observability tripwires (see ISSUE 3 acceptance criteria) ---- *)
  (* a guaranteed full k-WL run so kwl.rounds is non-zero even if the
     equivalence checks above all diverged at the initial colouring *)
  ignore (Wlcq_wl.Kwl.run 2 (G.Builders.path 4));
  (* exercise the two memo caches twice each so their hit counters move *)
  ignore (Wl_dimension.equivalent_cached 2 ge go);
  ignore (Wl_dimension.equivalent_cached 2 ge go);
  ignore (Wlcq_wl.Hom_profile.patterns ~max_size:4 ~tw_bound:1);
  ignore (Wlcq_wl.Hom_profile.patterns ~max_size:4 ~tw_bound:1);
  let counter_nonzero name =
    match Obs.find_counter name with
    | Some c -> Obs.counter_value c > 0
    | None -> false
  in
  let registry_ok = not (List.is_empty (Obs.counters ())) in
  record registry_ok;
  Printf.printf "Obs registry non-empty: %d counters %s\n"
    (List.length (Obs.counters ()))
    (verdict registry_ok);
  List.iter
    (fun name ->
       let ok = counter_nonzero name in
       record ok;
       Printf.printf "Obs counter %-28s non-zero %s\n" name (verdict ok))
    [ "kwl.rounds"; "td_count.dp_entries"; "wl_dimension.cache_hits";
      "td_count.packed_keys"; "td_count.candidates_pruned";
      "fast_count.packed_keys";
      (* every dispatch decision path must have fired above: auto picks
         of brute / packed-lean / enum, forced picks of packed and
         reference, the candidate-pruning choice and a sequential DP *)
      "dispatch.chose_brute"; "dispatch.chose_packed";
      "dispatch.chose_reference"; "dispatch.chose_enum";
      "dispatch.chose_lean"; "dispatch.chose_prune"; "dispatch.chose_seq";
      "dispatch.forced" ];
  (* cache hit rates must be positive: a rate that drops to 0 (or a
     renamed counter, reported as None) means a memo regression *)
  List.iter
    (fun (label, hits, misses) ->
       let ok =
         match Obs.report_hit_rate ~hits ~misses with
         | Some r -> r > 0.0
         | None -> false
       in
       record ok;
       Printf.printf "Obs hit rate %-28s positive %s\n" label (verdict ok))
    [ ("wl_dimension.equivalent_cached", "wl_dimension.cache_hits",
       "wl_dimension.cache_misses");
      ("hom_profile.patterns", "hom_profile.cache_hits",
       "hom_profile.cache_misses") ];
  (* robustness tripwires: a hand-tripped budget must degrade the
     treewidth search (loose-bracket instance) and move the robust
     counters *)
  let b = Budget.create () in
  Budget.trip b Budget.Deadline;
  let g_loose = G.Gen.gnp (Prng.create 26) 9 0.5 in
  let ok =
    match TW.Exact.treewidth_budgeted ~budget:b g_loose with
    | `Degraded (w, _) -> w >= TW.Exact.treewidth g_loose
    | `Exact _ | `Exhausted _ -> false
  in
  record ok;
  Printf.printf "F4  tripped budget degrades the treewidth search %s\n"
    (verdict ok);
  List.iter
    (fun name ->
       let ok = counter_nonzero name in
       record ok;
       Printf.printf "Obs counter %-28s non-zero %s\n" name (verdict ok))
    [ "robust.budget.created"; "robust.fallback.tw_heuristic" ];
  (* dispatch mispredict tripwire: on each calibration instance the
     auto path must never pick an engine >= 2x slower than the best
     forced engine; a firing tripwire means the calibration constants
     have drifted from the hardware (re-derive with `calibrate`) *)
  let m_mispredict = Obs.counter "dispatch.mispredict" in
  let mis_reps = 30 in
  let mis_repeat f () =
    for _ = 1 to mis_reps do
      f ()
    done
  in
  let check_mispredict label f =
    let timed e =
      Dispatch.set_engine e;
      let _, t = wall_time_best (mis_repeat f) in
      Dispatch.set_engine Dispatch.Auto;
      t
    in
    let t_auto = timed Dispatch.Auto in
    let best = Float.min (timed Dispatch.Brute) (timed Dispatch.Packed) in
    if t_auto > 2.0 *. best then Obs.incr m_mispredict;
    Printf.printf "dispatch %-22s auto %8.2f ms best-forced %8.2f ms\n" label
      (t_auto *. 1e3) (best *. 1e3)
  in
  let hq = G.Builders.path 4 in
  let gq10 = G.Gen.gnp (Prng.create 7) 10 0.3 in
  check_mispredict "hom/P4->gnp10" (fun () ->
      ignore (Wlcq_hom.Td_count.count hq gq10));
  check_mispredict "ans/qpath2->grid3x3" (fun () ->
      ignore (Fast_count.count_answers q g3));
  let mis_ok =
    match Obs.find_counter "dispatch.mispredict" with
    | Some c -> Obs.counter_value c = 0
    | None -> false
  in
  record mis_ok;
  Printf.printf "Obs counter dispatch.mispredict      zero     %s\n"
    (verdict mis_ok);
  (* the trace exporter must produce one valid JSON array with events *)
  let tj = Obs.trace_json () in
  let trace_ok = Obs.json_parseable tj && String.length tj > 4 in
  record trace_ok;
  Printf.printf "Obs trace JSON parseable (%d bytes) %s\n" (String.length tj)
    (verdict trace_ok);
  (* ---- PR8 acceptance: armed-observability overhead + snapshots ---- *)
  (* Armed = metrics and the flight recorder on, tracing off; the 3%
     ceiling is over the fully disabled path on the F4 workloads.
     Unlike [wall_time], the armed side must keep Obs on around the
     measured closure. *)
  Obs.set_tracing false;
  pr4_rows := [];
  let max_armed_ratio = 1.03 in
  let timed_with ~armed f =
    Obs.set_enabled armed;
    Obs.set_journal armed;
    Gc.full_major ();
    let r, ns = Obs.time_ns f in
    Obs.set_enabled false;
    Obs.set_journal false;
    (r, Int64.to_float ns /. 1e9)
  in
  (* Low quantile of paired ratios: ambient load on this box drifts by
     more than the enforced 3% ceiling, so minima of separately
     measured off/on blocks can land in different load regimes, and
     even a median pair inherits whatever spike split it.  Each off/on
     pair is measured back to back (same regime for both sides of one
     ratio); a real multiplicative regression in the armed path lifts
     every pair's ratio, so the 2nd-smallest of 11 still catches it,
     while load spikes — which only ever inflate some pairs — land in
     the discarded tail. *)
  let armed_row name run agree =
    let pairs = 11 in
    let samples =
      Array.init pairs (fun _ ->
          let off_r, toff = timed_with ~armed:false run in
          let on_r, ton = timed_with ~armed:true run in
          (off_r, on_r, toff, ton))
    in
    Array.sort
      (fun (_, _, o1, n1) (_, _, o2, n2) ->
         Float.compare (n1 /. o1) (n2 /. o2))
      samples;
    let off_r, on_r, toff, ton = samples.(1) in
    let ratio = ton /. Float.max toff 1e-9 in
    let ok = agree off_r on_r && ratio <= max_armed_ratio in
    record ok;
    pr4_rows := ("F7-armed-obs", name, toff, ton) :: !pr4_rows;
    Printf.printf "F7  armed obs %-20s off %8.2f ms on %8.2f ms %6.3fx %-7s\n"
      name (toff *. 1e3) (ton *. 1e3) ratio (verdict ok)
  in
  let h4 = G.Builders.path 4 in
  let rng = Prng.create 41 in
  ignore (G.Gen.gnp rng 10 0.3);
  ignore (G.Gen.gnp rng 20 0.3);
  let g40 = G.Gen.gnp rng 40 0.3 in
  let d4 = TW.Exact.optimal_decomposition h4 in
  (* 64 reps per sample: each DP run is ~0.1 ms, and a sample much
     under ~8 ms leaves the enforced 3% ceiling inside timer noise *)
  let repeat64 f () =
    let r = ref (f ()) in
    for _ = 2 to 64 do
      r := f ()
    done;
    !r
  in
  armed_row "td-dp/gnp40"
    (repeat64 (fun () -> Wlcq_hom.Td_count.count_with_decomposition d4 h4 g40))
    Bigint.equal;
  let gw48 = G.Gen.gnp (Prng.create 43) 48 0.2 in
  armed_row "kwl2/gnp48"
    (fun () ->
       (* two runs per sample: a single ~10 ms shot leaves the min
          estimator exposed to one unlucky preemption *)
       ignore (Wlcq_wl.Kwl.run 2 gw48).Wlcq_wl.Kwl.num_colours;
       (Wlcq_wl.Kwl.run 2 gw48).Wlcq_wl.Kwl.num_colours)
    ( = );
  Obs.set_enabled true;
  (* per-entry wall-time histograms: drive two budgeted surfaces, then
     enforce count > 0 and 0 < p50 <= p99 on their entry histograms *)
  (match Wlcq_hom.Td_count.count_budgeted ~budget:Budget.unlimited h4 g40 with
   | `Exact _ -> ()
   | `Degraded _ | `Exhausted _ -> record false);
  ignore (Wlcq_wl.Kwl.run_many 2 [ G.Builders.path 4 ]);
  let hist_floor name =
    let ok =
      match Obs.find_distribution name with
      | None -> false
      | Some d ->
        (Obs.distribution_value d).Obs.d_count > 0
        && (match (Obs.quantile d 0.5, Obs.quantile d 0.99) with
            | Some p50, Some p99 -> p50 > 0 && p99 >= p50
            | _ -> false)
    in
    record ok;
    Printf.printf "Obs histogram %-32s floor %s\n" name (verdict ok)
  in
  hist_floor "entry.td_count.count.wall_ns";
  hist_floor "entry.kwl.run_many.wall_ns";
  hist_floor "kwl.round_ns";
  (* snapshot pipeline: render/parse round-trips, and diffing a
     snapshot against itself reports zero regressions *)
  let snap = Snapshot.capture () in
  let roundtrip_ok =
    match Snapshot.parse (Snapshot.render snap) with
    | Ok _ -> true
    | Error _ -> false
  in
  record roundtrip_ok;
  Printf.printf "Obs snapshot OpenMetrics round-trip %s\n"
    (verdict roundtrip_ok);
  let _report, regs = Snapshot.diff snap snap in
  let selfdiff_ok = List.is_empty regs in
  record selfdiff_ok;
  Printf.printf "Obs obs-diff self-comparison: %d regressions %s\n"
    (List.length regs) (verdict selfdiff_ok);
  (* the armed journal must have recorded parseable events *)
  let jl = Obs.journal_jsonl () in
  let journal_ok =
    String.length jl > 0
    && List.for_all
         (fun line -> String.equal line "" || Obs.json_parseable line)
         (String.split_on_char '\n' jl)
  in
  record journal_ok;
  Printf.printf "Obs journal JSONL parseable (%d bytes) %s\n"
    (String.length jl) (verdict journal_ok);
  write_bench_json ~pr:8 "BENCH_PR8.json";
  Obs.set_tracing true;
  (* ---- PR9 acceptance: the content-addressed cache tier ---- *)
  (* mini-F8: one repeated workload run twice — tier disabled, then
     armed.  Counter snapshots of the two runs feed the obs-diff
     regression tripwire (the armed run must never do more engine work
     than the cold one), and the armed run must show a healthy hit
     rate, including hits on permuted-isomorphic resubmissions. *)
  let c5 = G.Builders.cycle 5 in
  let base20 = G.Gen.gnp (Prng.create 51) 20 0.3 in
  let perm_rng = Prng.create 53 in
  let rand_perm n =
    let p = Array.init n (fun i -> i) in
    for i = n - 1 downto 1 do
      let j = Prng.int perm_rng (i + 1) in
      let t = p.(i) in
      p.(i) <- p.(j);
      p.(j) <- t
    done;
    p
  in
  let subs =
    base20 :: List.init 3 (fun _ -> G.Ops.relabel base20 (rand_perm 20))
  in
  let gd = G.Gen.gnp (Prng.create 57) 10 0.35 in
  let mini_f8 () =
    List.iter (fun g -> ignore (Wlcq_hom.Td_count.count c5 g)) subs;
    ignore (TW.Exact.optimal_decomposition gd);
    ignore (Wl_dimension.equivalent_cached 2 ge go)
  in
  let cval name =
    match Obs.find_counter name with
    | Some c -> Obs.counter_value c
    | None -> 0
  in
  Obs.reset ~keep_trace:true ();
  Cache.set_capacity_mb 0;
  mini_f8 ();
  let snap_off = Snapshot.capture () in
  Obs.reset ~keep_trace:true ();
  Cache.set_capacity_mb 256;
  Cache.clear ();
  mini_f8 ();
  (* the three extra submissions are permuted-isomorphic copies of the
     first: canonical addressing must turn them into hits on the very
     first pass *)
  let first_pass_hits = cval "cache.hit" in
  let perm_ok = first_pass_hits >= 3 in
  record perm_ok;
  Printf.printf "F8  permuted-isomorphic resubmission hits: %d (>= 3) %s\n"
    first_pass_hits (verdict perm_ok);
  mini_f8 ();
  let snap_on = Snapshot.capture () in
  let hits = cval "cache.hit" and misses = cval "cache.miss" in
  let rate =
    match Obs.report_hit_rate ~hits:"cache.hit" ~misses:"cache.miss" with
    | Some r -> r
    | None -> 0.0
  in
  let rate_ok = hits > 0 && misses > 0 && rate >= 0.5 in
  record rate_ok;
  Printf.printf "F8  cache hit rate %.2f (floor 0.50; %d hits, %d misses) %s\n"
    rate hits misses (verdict rate_ok);
  (* threshold 3.0, not the default 2.0: the histogram quantiles are
     bucketed, and one bucket of timing jitter on an identical
     computation is a 2x ratio; a real armed-path blowup clears 3x *)
  let _report, regs = Snapshot.diff ~threshold:3.0 snap_off snap_on in
  List.iter
    (fun r ->
       Printf.printf "  obs-diff regression: %s %s %.0f -> %.0f\n"
         r.Snapshot.r_metric r.Snapshot.r_what r.Snapshot.r_before
         r.Snapshot.r_after)
    regs;
  let diff_ok = List.is_empty regs in
  record diff_ok;
  Printf.printf "F8  obs-diff cold-vs-armed: %d regressions %s\n"
    (List.length regs) (verdict diff_ok);
  (* mini-F9: the daemon answers, contains a malformed request and
     drains cleanly — a per-runtest tripwire for the service tier (the
     full load/backpressure series is `main.exe F9`) *)
  let f9_ok =
    with_daemon ~tag:"smoke"
      (fun c -> { c with Serve.workers = 1 })
      (fun ~socket ->
        let req id op =
          { Wire.id; deadline_ms = None; max_live_mb = None; op }
        in
        match Sclient.connect ~socket () with
        | Error _ -> false
        | Ok c ->
          Fun.protect ~finally:(fun () -> Sclient.close c) (fun () ->
              let ok1 =
                match Sclient.request c (req "s1" Wire.Ping) with
                | Ok { Wire.r_status = Wire.Ok_; r_value; _ } ->
                  String.equal r_value "pong"
                | Ok _ | Error _ -> false
              in
              let ok2 =
                match
                  Sclient.request c
                    (req "s2" (Wire.Treewidth { graph = "nonsense:1" }))
                with
                | Ok { Wire.r_status = Wire.Error_; _ } -> true
                | Ok _ | Error _ -> false
              in
              let ok3 =
                match
                  Sclient.request c
                    (req "s3" (Wire.Treewidth { graph = "clique:4" }))
                with
                | Ok { Wire.r_status = Wire.Ok_; r_value; _ } ->
                  String.equal r_value "3"
                | Ok _ | Error _ -> false
              in
              ok1 && ok2 && ok3))
  in
  record f9_ok;
  Printf.printf
    "F9  daemon smoke: ping, contained error, treewidth, clean drain %s\n"
    (verdict f9_ok);
  (* lint wall-time tripwire: the whole-tree interprocedural lint runs
     on every `dune runtest`, so a pathological slowdown (say the call
     graph going quadratic) would tax every build.  The 2 s ceiling is
     ~8x the calibration-machine wall time — loose enough for CI noise,
     tight enough to catch a complexity regression. *)
  (* the runtest rule runs from bench/, `dune exec` from wherever the
     user stands — probe for the tree relative to both *)
  let dir_exists p = Sys.file_exists p && Sys.is_directory p in
  (* same root set as the `@lint` alias: suppression pragmas are
     use-checked (R0), so linting a subset of the tree would flag as
     unused any pragma whose trigger lives in the omitted roots *)
  let lint_roots =
    List.filter dir_exists
      (if dir_exists "../lib" then
         [ "../lib"; "../bin"; "../bench"; "../test"; "../tools" ]
       else [ "lib"; "bin"; "bench"; "test"; "tools" ])
  in
  let lint_result, lint_t =
    wall_time_best (fun () -> Lint_engine.Engine.run ~roots:lint_roots ())
  in
  let files = lint_result.Lint_engine.Engine.files_scanned in
  let lint_ok =
    files > 0
    && List.is_empty lint_result.Lint_engine.Engine.findings
    && lint_t < 2.0
  in
  record lint_ok;
  Printf.printf "F6  whole-tree lint: %d files in %.1f ms (ceiling 2000) %s\n"
    files (lint_t *. 1e3) (verdict lint_ok);
  Printf.printf "\nmetrics after smoke run:\n%s" (Obs.metrics_table ())

let all_experiments =
  [ ("T1", t1); ("T2", t2); ("T3", t3); ("T4", t4); ("T5", t5); ("T6", t6);
    ("T7", t7); ("T8", t8); ("T9", t9); ("T10", t10); ("T11", t11);
    ("T12", t12); ("T13", t13); ("T14", t14); ("T15", t15);
    ("F1", f1); ("F1b", f1b); ("F2", f2); ("F3", f3); ("F4", f4); ("F5", f5);
    ("F8", f8); ("F9", f9); ("A1", ablation); ("calibrate", calibrate);
    ("timing-smoke", timing_smoke) ]

let () =
  let args =
    Array.to_list (Array.sub Sys.argv 1 (Array.length Sys.argv - 1))
  in
  (* `--trace FILE` writes one Chrome trace_event JSON file covering
     the whole run; metrics reset per experiment, trace events don't *)
  let rec split_trace acc = function
    | [] -> (None, List.rev acc)
    | "--trace" :: file :: rest -> (Some file, List.rev_append acc rest)
    | [ "--trace" ] ->
      Printf.eprintf "error: --trace needs a FILE argument\n";
      exit 2
    | a :: rest -> split_trace (a :: acc) rest
  in
  let trace_file, args = split_trace [] args in
  Obs.set_enabled true;
  if Option.is_some trace_file then Obs.set_tracing true;
  let selected =
    match args with
    | [] -> List.map fst all_experiments
    | [ "tables" ] ->
      [ "T1"; "T2"; "T3"; "T4"; "T5"; "T6"; "T7"; "T8"; "T9"; "T10"; "T11";
        "T12"; "T13"; "T14"; "T15" ]
    | [ "timing" ] -> [ "F1"; "F1b"; "F2"; "F3"; "F4"; "A1" ]
    | ids -> ids
  in
  List.iter
    (fun id ->
       match List.assoc_opt id all_experiments with
       | Some f ->
         f ();
         Printf.printf "\n--- %s engine metrics ---\n%s" id
           (Obs.metrics_table ());
         Obs.reset ~keep_trace:true ()
       | None ->
         Printf.eprintf "unknown experiment %s (known: %s)\n" id
           (String.concat " " (List.map fst all_experiments));
         exit 2)
    selected;
  (match trace_file with
   | None -> ()
   | Some file ->
     let oc = open_out file in
     output_string oc (Obs.trace_json ());
     close_out oc;
     Printf.printf "\ntrace written to %s\n" file);
  Printf.printf "\n==============================================\n";
  if !failures = 0 then
    Printf.printf "all experiment checks passed\n"
  else begin
    Printf.printf "%d experiment check(s) FAILED\n" !failures;
    exit 1
  end
