(** Structured results for budgeted engine runs.

    Every [*_budgeted] entry point returns an [('a, 'p) t]:

    - [`Exact v] — the budget never tripped (or tripped after the
      answer was already complete); [v] is bit-for-bit what the
      unbudgeted engine returns;
    - [`Degraded (v, reason)] — the budget tripped but the engine fell
      back one rung down its degradation ladder and still produced a
      {e sound} value [v] (a flagged upper bound for treewidth, an
      exact count computed over a heuristic decomposition, a stable
      colour prefix for k-WL); [reason] records why and which fallback
      produced [v];
    - [`Exhausted p] — no sound complete value could be produced in
      budget; [p] is whatever certified partial information the engine
      salvaged (a count lower bound, a dimension interval, a trip
      reason).

    The constructors are polymorphic variants so engines can share
    them without depending on each other's payload types. *)

(** Why and how a value was degraded. *)
type reason = {
  cause : Budget.reason;
  fallback : string;
      (** which rung of the ladder produced the value, e.g.
          ["Heuristics.upper_bound"] *)
}

type ('a, 'p) t =
  [ `Exact of 'a | `Degraded of 'a * reason | `Exhausted of 'p ]

val exact : 'a -> ('a, 'p) t
val degraded : cause:Budget.reason -> fallback:string -> 'a -> ('a, 'p) t
val is_exact : ('a, 'p) t -> bool

(** [value o] is the sound value when one exists ([`Exact] or
    [`Degraded]). *)
val value : ('a, 'p) t -> 'a option

(** [value_exn o] is the sound value.
    @raise Invalid_argument on [`Exhausted]. *)
val value_exn : ('a, 'p) t -> 'a

(** [map f o] maps the sound value, leaving [`Exhausted] payloads
    untouched. *)
val map : ('a -> 'b) -> ('a, 'p) t -> ('b, 'p) t

val reason_to_string : reason -> string

(** [describe show_value show_partial o] renders an outcome for CLI
    output: ["exact <v>"], ["degraded(<cause>, via <fallback>) <v>"]
    or ["exhausted(<partial>)"]. *)
val describe : ('a -> string) -> ('p -> string) -> ('a, 'p) t -> string
