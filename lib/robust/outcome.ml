type reason = { cause : Budget.reason; fallback : string }

type ('a, 'p) t =
  [ `Exact of 'a | `Degraded of 'a * reason | `Exhausted of 'p ]

let exact v = `Exact v
let degraded ~cause ~fallback v = `Degraded (v, { cause; fallback })
let is_exact = function `Exact _ -> true | `Degraded _ | `Exhausted _ -> false

let value = function
  | `Exact v | `Degraded (v, _) -> Some v
  | `Exhausted _ -> None

let value_exn = function
  | `Exact v | `Degraded (v, _) -> v
  | `Exhausted _ -> invalid_arg "Outcome.value_exn: outcome is `Exhausted"

let map f = function
  | `Exact v -> `Exact (f v)
  | `Degraded (v, r) -> `Degraded (f v, r)
  | `Exhausted p -> `Exhausted p

let reason_to_string r =
  Printf.sprintf "%s, via %s" (Budget.reason_to_string r.cause) r.fallback

let describe show_value show_partial = function
  | `Exact v -> "exact " ^ show_value v
  | `Degraded (v, r) ->
      Printf.sprintf "degraded(%s) %s" (reason_to_string r) (show_value v)
  | `Exhausted p -> "exhausted(" ^ show_partial p ^ ")"
