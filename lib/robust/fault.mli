(** Deterministic, seeded fault injection for the robustness layer.

    The engines contain compiled-in hooks at budget deadline checks
    ({!Deadline_check}), [Domain.spawn] call sites ({!Domain_spawn})
    and flat DP table allocation ({!Dp_alloc}); the service tier
    ([Wlcq_serve]) adds socket/scheduler sites: failing an [accept]
    ({!Accept_fail}), treating a client read or write as stalled
    ({!Read_stall}/{!Write_stall}) and raising inside a worker domain
    ({!Worker_raise}).  When the layer is {e disarmed} — the default,
    and the only state production code ever runs in — every hook is a
    single [Atomic.get] and a branch.

    When armed with a seed, each site draws from its own deterministic
    counter-based stream (a splitmix-style hash of seed, site and draw
    index), so a fixed seed forces the exact same failures in the
    exact same places on every run.  This is how the test suite walks
    every edge of the degradation ladder without waiting for real
    deadlines or OOM.

    All state lives in [Atomic.t] cells; arming from the test driver
    while worker domains consult hooks is safe (streams stay
    deterministic as long as each site is drawn from one domain, which
    holds for the engines instrumented here: spawn and alloc sites are
    driver-only, and the deadline-check stream is drawn on the driver
    via {!Budget.poll}). *)

type site =
  | Deadline_check  (** a full budget poll (inside {!Budget.poll}) *)
  | Domain_spawn  (** just before a [Domain.spawn] in an engine *)
  | Dp_alloc  (** a [Dp_key] flat-table allocation *)
  | Accept_fail  (** a [Unix.accept] in the serve event loop *)
  | Read_stall  (** a client read treated as stalled by the daemon *)
  | Write_stall  (** a client write treated as timed out *)
  | Worker_raise  (** an artificial exception inside a worker domain *)

val site_to_string : site -> string

(** [site_of_string s] inverts {!site_to_string}; [None] on unknown
    names (used by the [--fault-sites] CLI flag). *)
val site_of_string : string -> site option

(** [arm ~seed ?rate ?sites ()] arms the layer.  [rate] is the
    per-draw failure probability in [\[0, 1\]] (default [1.0]: every
    draw at an armed site fails, which forces the fallback path on
    first contact).  [sites] restricts injection to the listed sites
    (default: all of them).  Resets all draw counters so runs are
    reproducible.
    @raise Invalid_argument when [rate] is outside [\[0, 1\]]. *)
val arm : seed:int -> ?rate:float -> ?sites:site list -> unit -> unit

(** [disarm ()] returns every hook to the single-load fast path. *)
val disarm : unit -> unit

val armed : unit -> bool

(** [should_fail site] is the compiled-in hook: [false] when disarmed
    or [site] is not armed; otherwise advances [site]'s draw counter
    and reports whether this draw fails.  Each injected failure bumps
    the [robust.fault.<site>] Wlcq_obs counter. *)
val should_fail : site -> bool

(** [injected site] is the number of failures injected at [site] since
    the last {!arm} (independent of Wlcq_obs enablement). *)
val injected : site -> int
