module Obs = Wlcq_obs.Obs

type reason = Deadline | Memory | Cancelled | Injected of string

let reason_to_string = function
  | Deadline -> "deadline"
  | Memory -> "memory"
  | Cancelled -> "cancelled"
  | Injected site -> "injected:" ^ site

exception Exhausted of reason

type token = { flag : bool Atomic.t }

let token () = { flag = Atomic.make false }
let cancel tk = Atomic.set tk.flag true
let cancelled tk = Atomic.get tk.flag

type t = {
  limited : bool;
  deadline_ns : int64;  (* Int64.max_int when no deadline *)
  max_heap_words : int;  (* max_int when no ceiling *)
  cancel : token option;
  tripped_cell : reason option Atomic.t;
  (* Coarse tick counter.  Deliberately a plain mutable field, not an
     Atomic: worker domains racing on it can only skew when the next
     full poll happens by a few iterations, never whether the budget
     trips — correctness lives in [tripped_cell]. *)
  (* lint: allow R3 benign racy tick counter, trip state is the Atomic next to it *)
  mutable ticks : int;
}

let tick_interval = 1024
let tick_mask = tick_interval - 1

let unlimited =
  {
    limited = false;
    deadline_ns = Int64.max_int;
    max_heap_words = max_int;
    cancel = None;
    tripped_cell = Atomic.make None;
    ticks = 0;
  }

let is_unlimited b = not b.limited

let m_polls = Obs.counter "robust.budget.polls"
let m_deadline = Obs.counter "robust.budget.deadline_hits"
let m_memory = Obs.counter "robust.budget.memory_hits"
let m_cancelled = Obs.counter "robust.budget.cancellations"
let m_injected = Obs.counter "robust.budget.injected_trips"
let m_created = Obs.counter "robust.budget.created"

let words_per_mb = 1024 * 1024 / (Sys.word_size / 8)

let create ?deadline_ms ?max_live_mb ?cancel () =
  let deadline_ns =
    match deadline_ms with
    | None -> Int64.max_int
    | Some ms ->
        if not (ms > 0.0) then
          invalid_arg "Budget.create: deadline_ms must be positive";
        Int64.add (Obs.now_ns ()) (Int64.of_float (ms *. 1e6))
  in
  let max_heap_words =
    match max_live_mb with
    | None -> max_int
    | Some mb ->
        if mb <= 0 then invalid_arg "Budget.create: max_live_mb must be positive";
        mb * words_per_mb
  in
  Obs.incr m_created;
  {
    limited = true;
    deadline_ns;
    max_heap_words;
    cancel;
    tripped_cell = Atomic.make None;
    ticks = 0;
  }

let tripped b = if b.limited then Atomic.get b.tripped_cell else None

let live b =
  (not b.limited)
  || (match Atomic.get b.tripped_cell with None -> true | Some _ -> false)

let trip b r =
  if b.limited then
    if Atomic.compare_and_set b.tripped_cell None (Some r) then begin
      Obs.incr
        (match r with
        | Deadline -> m_deadline
        | Memory -> m_memory
        | Cancelled -> m_cancelled
        | Injected _ -> m_injected);
      (* First writer on the latch leaves the postmortem trail: one
         journal event naming the engine scope it interrupted, then
         the automatic flight-recorder dump. *)
      Obs.journal ~severity:Obs.Error
        ~attrs:[ ("reason", reason_to_string r) ]
        "budget.trip";
      Obs.journal_dump ~trigger:("budget." ^ reason_to_string r) ()
    end

let poll b =
  if not b.limited then false
  else
    match Atomic.get b.tripped_cell with
    | Some _ -> true
    | None ->
        Obs.incr m_polls;
        if Fault.should_fail Fault.Deadline_check then begin
          trip b (Injected "deadline_check");
          true
        end
        else if
          b.deadline_ns <> Int64.max_int
          && Int64.compare (Obs.now_ns ()) b.deadline_ns >= 0
        then begin
          trip b Deadline;
          true
        end
        else if
          b.max_heap_words <> max_int
          && (Gc.quick_stat ()).Gc.heap_words > b.max_heap_words
        then begin
          trip b Memory;
          true
        end
        else
          match b.cancel with
          | Some tk when cancelled tk ->
              trip b Cancelled;
              true
          | _ -> false

let tick b =
  if b.limited then begin
    let n = b.ticks + 1 in
    b.ticks <- n;
    if n land tick_mask = 0 then ignore (poll b)
  end

let check b =
  if b.limited then begin
    ignore (poll b);
    match Atomic.get b.tripped_cell with
    | Some r -> raise (Exhausted r)
    | None -> ()
  end

let tick_check b =
  if b.limited then begin
    tick b;
    match Atomic.get b.tripped_cell with
    | Some r -> raise (Exhausted r)
    | None -> ()
  end

(* A continuation budget for the next rung of a degradation ladder:
   same limits and token, fresh trip latch and tick counter.  The trip
   *conditions* are re-evaluated from scratch — a passed deadline, a
   still-exceeded heap ceiling or a cancelled token re-trips at the
   fork's first poll — so forking only forgets the latch, never the
   budget.  Forking [unlimited] is [unlimited]. *)
let fork b =
  if not b.limited then b
  else
    {
      limited = true;
      deadline_ns = b.deadline_ns;
      max_heap_words = b.max_heap_words;
      cancel = b.cancel;
      tripped_cell = Atomic.make None;
      ticks = 0;
    }

let remaining_ns b =
  if b.deadline_ns = Int64.max_int then None
  else Some (Int64.sub b.deadline_ns (Obs.now_ns ()))
