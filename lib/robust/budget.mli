(** Execution budgets: wall-clock deadlines, cooperative cancellation
    and memory ceilings for the worst-case-exponential engines.

    Every core routine of this reproduction — branch-and-bound
    treewidth, the [n^k] k-WL engines, brute-force counting, CFI
    builds — is exponential in the worst case, and deciding the WL
    dimension itself is NP-hard (Lichter–Raßmann–Schweitzer 2024).  A
    {!t} bounds such a computation {e cooperatively}: the engines call
    {!tick} (cheap, amortised by an internal coarse tick counter) or
    {!check} (raising) at loop boundaries, and unwind with a sound
    partial or degraded answer when the budget trips.

    A budget trips for one of four {!reason}s: the monotonic-clock
    deadline passed, the sampled major-heap size exceeded the ceiling,
    the cancellation token was cancelled, or the {!Fault} layer
    injected a failure at a deadline-check site.

    The tripped state is an [Atomic.t], so worker domains may {!tick}
    a shared budget concurrently and the driver reads one consistent
    verdict.  The internal tick counter is deliberately racy (a missed
    or doubled tick only shifts the next poll by a few iterations).

    {!unlimited} is inert: every operation on it is a single branch,
    so threading [?budget] defaults through the engines costs nothing
    measurable (bench row F4 enforces ≤ 3%). *)

(** Why a budget tripped. *)
type reason =
  | Deadline  (** the wall-clock deadline passed (monotonic clock) *)
  | Memory  (** [Gc.quick_stat] major-heap words exceeded the ceiling *)
  | Cancelled  (** the cancellation token was cancelled *)
  | Injected of string  (** the {!Fault} layer forced this trip *)

val reason_to_string : reason -> string

(** Raised by {!check} (and by engines threading a budget) when the
    budget has tripped.  Budgeted entry points ([*_budgeted]) catch it
    and return an {!Outcome.t}; it escapes only from the raising
    [?budget] variants, which document it. *)
exception Exhausted of reason

(** {1 Cancellation tokens} *)

(** A cooperative cancellation token, safe to cancel from any domain
    (or from a signal handler). *)
type token

val token : unit -> token

(** [cancel tk] requests cancellation; idempotent. *)
val cancel : token -> unit

val cancelled : token -> bool

(** {1 Budgets} *)

type t

(** The inert budget: never trips, never consults the fault layer.
    All engine [?budget] parameters default to it. *)
val unlimited : t

val is_unlimited : t -> bool

(** [create ()] builds a live budget.  [deadline_ms] is relative to
    the call, on the monotonic clock.  [max_live_mb] bounds the major
    heap ([Gc.quick_stat].heap_words, the live-word proxy), in MiB.
    [cancel] attaches a cancellation token.  A live budget with no
    limit at all is still useful: it consults the {!Fault} layer, so
    the test suite can force every exhaustion path deterministically.
    @raise Invalid_argument on non-positive limits. *)
val create :
  ?deadline_ms:float -> ?max_live_mb:int -> ?cancel:token -> unit -> t

(** [tick b] is the hot-loop entry point: bumps the coarse tick
    counter and, every {!tick_interval} ticks, runs a full poll
    (clock, heap sample, token, fault hook).  Never raises; the trip
    is recorded in [b] for {!tripped} / {!check} to observe.  On
    {!unlimited} this is one branch. *)
val tick : t -> unit

(** [tick_check b] is {!tick} followed by {!check} — for driver-domain
    loops that want to unwind by exception.
    @raise Exhausted when the budget has tripped. *)
val tick_check : t -> unit

(** [poll b] runs a full poll immediately (bypassing the tick
    counter); returns [true] when the budget is (now) tripped. *)
val poll : t -> bool

(** [tripped b] is the recorded trip, if any: one atomic load. *)
val tripped : t -> reason option

(** [live b] is [tripped b = None], as a branch-cheap test for
    worker-domain loops that must wind down without raising. *)
val live : t -> bool

(** [check b] polls and raises when tripped.
    @raise Exhausted when the budget has tripped. *)
val check : t -> unit

(** [trip b r] records [r] as the trip reason (first writer wins).
    Worker domains use it to surface an {!Exhausted} caught on their
    side of a [Domain.spawn] to the driver. *)
val trip : t -> reason -> unit

(** Ticks between full polls (a power of two).  Exposed so tests can
    size their loops to guarantee a poll. *)
val tick_interval : int

(** [fork b] is a continuation budget for the next rung of a
    degradation ladder: the same limits and cancellation token, but a
    fresh trip latch.  The trip conditions are re-evaluated from
    scratch at the fork's first poll — a passed deadline, a
    still-exceeded heap ceiling or a cancelled token trips again
    immediately — so forking forgets only the latch (and any
    fault-injected trip), never the budget.  [fork unlimited] is
    [unlimited]. *)
val fork : t -> t

(** [remaining_ns b] is the time left before the deadline ([None] when
    the budget has no deadline). *)
val remaining_ns : t -> int64 option
