module Obs = Wlcq_obs.Obs

type site =
  | Deadline_check
  | Domain_spawn
  | Dp_alloc
  | Accept_fail
  | Read_stall
  | Write_stall
  | Worker_raise

let site_to_string = function
  | Deadline_check -> "deadline_check"
  | Domain_spawn -> "domain_spawn"
  | Dp_alloc -> "dp_alloc"
  | Accept_fail -> "accept_fail"
  | Read_stall -> "read_stall"
  | Write_stall -> "write_stall"
  | Worker_raise -> "worker_raise"

let site_index = function
  | Deadline_check -> 0
  | Domain_spawn -> 1
  | Dp_alloc -> 2
  | Accept_fail -> 3
  | Read_stall -> 4
  | Write_stall -> 5
  | Worker_raise -> 6

let num_sites = 7

let site_of_string = function
  | "deadline_check" -> Some Deadline_check
  | "domain_spawn" -> Some Domain_spawn
  | "dp_alloc" -> Some Dp_alloc
  | "accept_fail" -> Some Accept_fail
  | "read_stall" -> Some Read_stall
  | "write_stall" -> Some Write_stall
  | "worker_raise" -> Some Worker_raise
  | _ -> None

(* All layer state is atomic so hooks may be consulted from worker
   domains while the test driver arms/disarms. *)
let armed_flag = Atomic.make false
let seed_cell = Atomic.make 0

(* Failure probability as parts per 2^30, avoiding float state. *)
let rate_bits = Atomic.make (1 lsl 30)
let site_mask = Atomic.make 0
(* lint: domain-local fixed array of Atomic.t cells, never resized;
   all mutation goes through Atomic operations *)
let draw_counters = Array.init num_sites (fun _ -> Atomic.make 0)

(* lint: domain-local fixed array of Atomic.t cells, never resized;
   all mutation goes through Atomic operations *)
let injected_counters = Array.init num_sites (fun _ -> Atomic.make 0)

let m_injected =
  [|
    Obs.counter "robust.fault.deadline_check";
    Obs.counter "robust.fault.domain_spawn";
    Obs.counter "robust.fault.dp_alloc";
    Obs.counter "robust.fault.accept_fail";
    Obs.counter "robust.fault.read_stall";
    Obs.counter "robust.fault.write_stall";
    Obs.counter "robust.fault.worker_raise";
  |]

let arm ~seed ?(rate = 1.0) ?sites () =
  if not (rate >= 0.0 && rate <= 1.0) then
    invalid_arg "Fault.arm: rate must lie in [0, 1]";
  let mask =
    match sites with
    | None -> (1 lsl num_sites) - 1
    | Some l -> List.fold_left (fun m s -> m lor (1 lsl site_index s)) 0 l
  in
  Atomic.set seed_cell seed;
  Atomic.set rate_bits (int_of_float (rate *. float_of_int (1 lsl 30)));
  Atomic.set site_mask mask;
  Array.iter (fun c -> Atomic.set c 0) draw_counters;
  Array.iter (fun c -> Atomic.set c 0) injected_counters;
  Atomic.set armed_flag true

let disarm () = Atomic.set armed_flag false
let armed () = Atomic.get armed_flag

(* xorshift*-style finalizer on the native int (multiplier chosen to
   fit OCaml's 63-bit immediates); good avalanche is all we need for
   per-draw coin flips. *)
let mix x =
  let x = x lxor (x lsr 12) in
  let x = x lxor (x lsl 25) in
  let x = x lxor (x lsr 27) in
  let x = x * 0x2545f4914f6cdd1d in
  x lxor (x lsr 29)

let should_fail site =
  if not (Atomic.get armed_flag) then false
  else
    let i = site_index site in
    if Atomic.get site_mask land (1 lsl i) = 0 then false
    else
      let draw = Atomic.fetch_and_add draw_counters.(i) 1 in
      let h = mix (Atomic.get seed_cell lxor mix ((i * 0x1000003) + draw)) in
      let fail = h land ((1 lsl 30) - 1) < Atomic.get rate_bits in
      if fail then begin
        Atomic.incr injected_counters.(i);
        Obs.incr m_injected.(i);
        (* Injected failures dump the flight recorder just like real
           trips: the seeded fault suite asserts every forced
           degradation leaves a postmortem trail. *)
        Obs.journal ~severity:Obs.Warn
          ~attrs:[ ("site", site_to_string site) ]
          "fault.injected";
        Obs.journal_dump ~trigger:("fault." ^ site_to_string site) ()
      end;
      fail

let injected site = Atomic.get injected_counters.(site_index site)
