(** Domain-safe observability for the WL / hom-counting engines.

    Three facilities, all designed so that instrumented code stays
    clean under wlcq-lint's R3 domain-safety rule without pragmas:

    - a {e metrics registry} of named monotonic counters and value
      distributions.  Every cell is an [Atomic.t]; counters stripe
      their cells by domain id so concurrent increments from
      [Domain.spawn] workers never contend on one cache line, and
      reads aggregate the stripes.  No top-level [ref]/[Hashtbl] is
      involved anywhere, which is exactly what R3 bans;
    - a {e span API} ({!span}) with monotonic-clock timing and
      nesting (per-domain stacks via [Domain.DLS]).  Closed spans
      feed an aggregated per-path summary and, when {!tracing} is on,
      a Chrome [trace_event] JSON log ({!trace_json});
    - an {e enable flag}: the disabled path of every operation is a
      single [Atomic.get] + branch, and flipping {!compiled_in} to
      [false] lets the compiler fold the instrumentation out
      entirely.

    Registration ({!counter}, {!distribution}) is idempotent by name
    and safe from any domain.  Recording ({!incr}, {!add},
    {!observe}, {!span}) is safe from any domain.  {!reset} and the
    read APIs are meant for the driver domain between experiments,
    not for concurrent use with live workers. *)

(** {1 Enabling} *)

(** Static kill switch.  When [false], {!enabled} is constantly
    [false] and the instrumentation branches compile away.  Kept as a
    plain boolean constant so flipping it needs a one-character
    edit. *)
val compiled_in : bool

(** [set_enabled b] turns metric and span recording on or off
    (subject to {!compiled_in}).  Off by default. *)
val set_enabled : bool -> unit

(** [enabled ()] is the current recording state: one atomic load. *)
val enabled : unit -> bool

(** [set_tracing b] additionally records every closed span as a
    Chrome [trace_event] (requires {!enabled}).  Off by default. *)
val set_tracing : bool -> unit

(** [tracing ()] is the current trace-recording state. *)
val tracing : unit -> bool

(** {1 Counters} *)

(** A named monotonic counter, striped over per-domain atomic
    cells. *)
type counter

(** [counter name] registers (or retrieves) the counter [name].
    Idempotent: one counter object per name, shared by all
    callers. *)
val counter : string -> counter

(** [incr c] adds 1 when {!enabled}; a no-op otherwise. *)
val incr : counter -> unit

(** [add c n] adds [n] when {!enabled}; a no-op otherwise. *)
val add : counter -> int -> unit

(** [counter_value c] sums the stripes. *)
val counter_value : counter -> int

(** [find_counter name] looks a counter up without registering it. *)
val find_counter : string -> counter option

(** {1 Distributions} *)

(** A named value distribution: count / sum / min / max, striped like
    counters. *)
type distribution

type dist_summary = {
  d_count : int;
  d_sum : int;
  d_min : int;  (** [max_int] when empty *)
  d_max : int;  (** [min_int] when empty *)
}

(** [distribution name] registers (or retrieves) the distribution
    [name]. *)
val distribution : string -> distribution

(** [observe d v] records [v] when {!enabled}; a no-op otherwise. *)
val observe : distribution -> int -> unit

val distribution_value : distribution -> dist_summary

(** {1 Reading and resetting} *)

(** All registered counters with their aggregated values, sorted by
    name. *)
val counters : unit -> (string * int) list

(** All registered distributions with their summaries, sorted by
    name. *)
val distributions : unit -> (string * dist_summary) list

(** [reset ()] zeroes every counter and distribution, drops the span
    summaries and clears the trace log; registered metric handles
    stay valid.  [~keep_trace:true] preserves the trace log (used by
    the bench harness, which resets metrics per experiment but emits
    one trace for the whole run). *)
val reset : ?keep_trace:bool -> unit -> unit

(** {1 Clock} *)

(** [now_ns ()] is the monotonic clock, in nanoseconds.  Always live,
    independent of {!enabled}. *)
val now_ns : unit -> int64

(** [time_ns f] runs [f] and returns its result with the elapsed
    monotonic nanoseconds. *)
val time_ns : (unit -> 'a) -> 'a * int64

(** {1 Spans} *)

(** [span name f] times [f ()] on the monotonic clock and records it
    under the path [parent-path/name] (nesting is tracked per
    domain).  When disabled this is a single branch around [f ()].
    [attrs] are attached to the trace event ({!trace_json}) when
    tracing. *)
val span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

type span_summary = {
  s_path : string;  (** ["kwl.run/kwl.round"]-style nesting path *)
  s_count : int;
  s_total_ns : int;
  s_max_ns : int;
}

(** Aggregated closed spans, sorted by path (so parents precede their
    children). *)
val span_summaries : unit -> span_summary list

(** Plain-text hierarchical summary of {!span_summaries}: one line
    per path, indented by nesting depth. *)
val span_report : unit -> string

(** {1 Trace export} *)

(** [trace_json ()] renders every recorded span as a Chrome
    [trace_event] complete event ([ph = "X"]) in a JSON array, ready
    for [chrome://tracing] / Perfetto.  Timestamps are microseconds
    relative to process start; [tid] is the recording domain id. *)
val trace_json : unit -> string

(** [json_parseable s] checks that [s] is one syntactically valid
    JSON value (the whole string).  Used by the bench smoke test to
    guard the {!trace_json} output. *)
val json_parseable : string -> bool

(** {1 Reports} *)

(** [metrics_table ()] formats the non-zero counters, the
    distributions and the span summary as an aligned plain-text
    table (empty sections are omitted). *)
val metrics_table : unit -> string

(** [report_hit_rate ~hits ~misses] is [hits / (hits + misses)] read
    from the two named counters; [None] when either counter is
    unregistered or no events were recorded.  The bench smoke mode
    asserts cache hit rates through this. *)
val report_hit_rate : hits:string -> misses:string -> float option
