(** Domain-safe observability for the WL / hom-counting engines.

    Four facilities, all designed so that instrumented code stays
    clean under wlcq-lint's R3 domain-safety rule without pragmas:

    - a {e metrics registry} of named monotonic counters and value
      distributions.  Every cell is an [Atomic.t]; counters stripe
      their cells by domain id so concurrent increments from
      [Domain.spawn] workers never contend on one cache line, and
      reads aggregate the stripes.  Distributions additionally keep
      log2-bucketed histograms, so {!quantile} answers p50/p99
      queries with at most one bucket (a factor of 2) of error;
    - a {e span API} ({!span}) with monotonic-clock timing and
      nesting (per-domain stacks via [Domain.DLS]).  Closed spans
      feed an aggregated per-path summary, optionally capture
      [Gc.quick_stat] allocation deltas ({!set_alloc_profiling}) and,
      when {!tracing} is on, a Chrome [trace_event] JSON log
      ({!trace_json}).  {!folded} renders the summaries in
      collapsed-stack format for flamegraph tooling;
    - a {e flight recorder} ({!journal}): a bounded, domain-striped
      ring of structured events (timestamp, severity, domain,
      component, key=value attrs) with a one-load disabled path,
      exported as JSONL ({!journal_jsonl}) and dumped automatically
      by [lib/robust] when a budget trips or a fault fires
      ({!set_journal_dump});
    - {e enable flags}: the disabled path of every operation is a
      single [Atomic.get] + branch, and flipping {!compiled_in} to
      [false] lets the compiler fold the instrumentation out
      entirely.

    Registration ({!counter}, {!distribution}) is idempotent by name
    and safe from any domain.  Recording ({!incr}, {!add},
    {!observe}, {!span}, {!journal}) is safe from any domain.
    {!reset} and the read APIs are meant for the driver domain
    between experiments, not for concurrent use with live workers. *)

(** {1 Enabling} *)

(** Static kill switch.  When [false], {!enabled} is constantly
    [false] and the instrumentation branches compile away.  Kept as a
    plain boolean constant so flipping it needs a one-character
    edit. *)
val compiled_in : bool

(** [set_enabled b] turns metric and span recording on or off
    (subject to {!compiled_in}).  Off by default. *)
val set_enabled : bool -> unit

(** [enabled ()] is the current recording state: one atomic load. *)
val enabled : unit -> bool

(** [set_tracing b] additionally records every closed span as a
    Chrome [trace_event] (requires {!enabled}).  Off by default. *)
val set_tracing : bool -> unit

(** [tracing ()] is the current trace-recording state. *)
val tracing : unit -> bool

(** [set_journal b] arms the flight recorder.  Independent of
    {!enabled}, so a production run can keep the cheap journal armed
    with full metric recording off.  Off by default. *)
val set_journal : bool -> unit

(** [journal_on ()] is the current flight-recorder state. *)
val journal_on : unit -> bool

(** [set_alloc_profiling b] makes every closed {!span} attribute
    [Gc.quick_stat] minor/major/promoted word deltas to its path
    (requires {!enabled}).  Off by default. *)
val set_alloc_profiling : bool -> unit

(** [alloc_profiling ()] is the current allocation-profiling state. *)
val alloc_profiling : unit -> bool

(** {1 Counters} *)

(** A named monotonic counter, striped over per-domain atomic
    cells. *)
type counter

(** [counter name] registers (or retrieves) the counter [name].
    Idempotent: one counter object per name, shared by all
    callers. *)
val counter : string -> counter

(** [incr c] adds 1 when {!enabled}; a no-op otherwise. *)
val incr : counter -> unit

(** [add c n] adds [n] when {!enabled}; a no-op otherwise. *)
val add : counter -> int -> unit

(** [counter_value c] sums the stripes. *)
val counter_value : counter -> int

(** [find_counter name] looks a counter up without registering it. *)
val find_counter : string -> counter option

(** {1 Distributions} *)

(** A named value distribution: count / sum / min / max plus a
    log2-bucketed histogram, striped like counters. *)
type distribution

type dist_summary = {
  d_count : int;
  d_sum : int;
  d_min : int;  (** [max_int] when empty *)
  d_max : int;  (** [min_int] when empty *)
}

(** [distribution name] registers (or retrieves) the distribution
    [name]. *)
val distribution : string -> distribution

(** [observe d v] records [v] when {!enabled}; a no-op otherwise. *)
val observe : distribution -> int -> unit

val distribution_value : distribution -> dist_summary

(** [find_distribution name] looks a distribution up without
    registering it. *)
val find_distribution : string -> distribution option

(** {2 Histogram buckets}

    Bucket [0] holds every observed [v <= 0]; bucket [i >= 1] holds
    the values of bit length [i], i.e. [2^(i-1) <= v <= 2^i - 1].
    There are {!num_buckets} buckets, enough for the whole native-int
    range. *)

(** Number of histogram buckets (63). *)
val num_buckets : int

(** [bucket_of v] is the bucket index [v] lands in. *)
val bucket_of : int -> int

(** [bucket_upper i] is the largest value bucket [i] can hold
    ([0] for bucket 0, [max_int] for the last bucket). *)
val bucket_upper : int -> int

(** [distribution_buckets d] is the aggregated per-bucket counts,
    length {!num_buckets}. *)
val distribution_buckets : distribution -> int array

(** [quantile d q] estimates the [q]-quantile of the observed values
    from the histogram: the estimate [e] satisfies [t <= e < 2 * t]
    for a true positive quantile [t] (one log2 bucket of relative
    error), clamped to the observed maximum.  [None] when the
    distribution is empty.
    @raise Invalid_argument unless [0 <= q <= 1]. *)
val quantile : distribution -> float -> int option

(** {1 Reading and resetting} *)

(** All registered counters with their aggregated values, sorted by
    name. *)
val counters : unit -> (string * int) list

(** All registered distributions with their summaries, sorted by
    name. *)
val distributions : unit -> (string * dist_summary) list

(** [reset ()] zeroes every counter, distribution and histogram,
    drops the span summaries, clears the journal ring and clears the
    trace log; registered metric handles stay valid.
    [~keep_trace:true] preserves the trace log (used by the bench
    harness, which resets metrics per experiment but emits one trace
    for the whole run). *)
val reset : ?keep_trace:bool -> unit -> unit

(** {1 Clock} *)

(** [now_ns ()] is the monotonic clock, in nanoseconds.  Always live,
    independent of {!enabled}. *)
val now_ns : unit -> int64

(** [time_ns f] runs [f] and returns its result with the elapsed
    monotonic nanoseconds. *)
val time_ns : (unit -> 'a) -> 'a * int64

(** {1 Spans} *)

(** [span name f] times [f ()] on the monotonic clock and records it
    under the path [parent-path/name] (nesting is tracked per
    domain).  When disabled this is a single branch around [f ()].
    [attrs] are attached to the trace event ({!trace_json}) when
    tracing.  Under {!set_alloc_profiling} the span also records the
    calling domain's [Gc.quick_stat] word deltas. *)
val span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

type span_summary = {
  s_path : string;  (** ["kwl.run/kwl.round"]-style nesting path *)
  s_count : int;
  s_total_ns : int;
  s_max_ns : int;
  s_minor_words : int;  (** 0 unless {!alloc_profiling} was on *)
  s_major_words : int;
  s_promoted_words : int;
}

(** Aggregated closed spans, sorted by path (so parents precede their
    children). *)
val span_summaries : unit -> span_summary list

(** Plain-text hierarchical summary of {!span_summaries}: one line
    per path, indented by nesting depth; allocation columns appear
    when any span recorded nonzero word deltas. *)
val span_report : unit -> string

(** [folded ()] renders the span summaries in collapsed-stack
    ("folded") format: one [path;to;span self-weight] line per path,
    where the self weight is the span's total minus its direct
    children's.  [~weight:`Alloc_words] weights by allocated words
    (minor + major) instead of nanoseconds.  Feed the output to
    flamegraph.pl, inferno or speedscope. *)
val folded : ?weight:[ `Time_ns | `Alloc_words ] -> unit -> string

(** {1 Entry points and scopes} *)

(** [entry_point name f] wraps a [*_budgeted] engine surface: while
    [f] runs, [name] is the {!current_scope} of the calling domain
    (and the best-effort fallback scope for worker domains), so
    journal events default their component to the engine that was
    running.  On exit it feeds the wall time into the
    [entry.<name>.wall_ns] histogram.  When both {!enabled} and
    {!journal_on} are off this is a single branch around [f ()]. *)
val entry_point : string -> (unit -> 'a) -> 'a

(** [current_scope ()] is the innermost open {!entry_point} name of
    this domain, falling back to the last entry opened by any domain
    (worker domains inherit their spawner's engine that way), or [""]
    outside any entry. *)
val current_scope : unit -> string

(** {1 Flight recorder} *)

type severity = Debug | Info | Warn | Error

val severity_to_string : severity -> string

type journal_entry = {
  j_ts_ns : int64;  (** monotonic ns, relative to process start *)
  j_severity : severity;
  j_tid : int;  (** recording domain id *)
  j_component : string;  (** engine scope, see {!current_scope} *)
  j_msg : string;
  j_attrs : (string * string) list;
}

(** Ring capacity per stripe; the recorder keeps at most
    [num_stripes * journal_capacity] events and overwrites the
    oldest per stripe. *)
val journal_capacity : int

(** [journal msg] appends a structured event to the calling domain's
    ring when {!journal_on}; a single branch otherwise.  [component]
    defaults to {!current_scope}.  Events are published with one
    atomic store, so concurrent readers never observe a torn
    event. *)
val journal :
  ?severity:severity ->
  ?attrs:(string * string) list ->
  ?component:string ->
  string ->
  unit

(** All live journal events, sorted by timestamp then domain id. *)
val journal_entries : unit -> journal_entry list

(** [journal_jsonl ()] renders {!journal_entries} as JSON Lines: one
    strict-JSON object per line with [ts_ns], [sev], [tid], [comp],
    [msg] and [attrs] fields. *)
val journal_jsonl : unit -> string

(** [set_journal_dump (Some file)] arms automatic postmortem dumps:
    {!journal_dump} (called by [lib/robust] on budget trips and fault
    injections) rewrites [file] with the current JSONL journal.
    [None] (the default) disables dumping. *)
val set_journal_dump : string option -> unit

(** [journal_dump ~trigger ()] appends a [journal.dump] event naming
    [trigger] and rewrites the dump file with the full JSONL journal.
    A no-op when the journal is off or no dump path is set; write
    errors are swallowed (a postmortem must not break the degraded
    result it documents). *)
val journal_dump : trigger:string -> unit -> unit

(** {1 Trace export} *)

(** [trace_json ()] renders every recorded span as a Chrome
    [trace_event] complete event ([ph = "X"]) in a JSON array, ready
    for [chrome://tracing] / Perfetto.  Timestamps are microseconds
    relative to process start; [tid] is the recording domain id.
    Events are ordered by (timestamp, tid, name), so the output is
    deterministic across domain interleavings. *)
val trace_json : unit -> string

(** [json_parseable s] checks that [s] is one syntactically valid
    JSON value (the whole string).  An alias for
    [Wlcq_strictjson.Strict_json.parseable] — the same acceptor that
    gates wlcq-lint's --json output. *)
val json_parseable : string -> bool

(** {1 Reports} *)

(** [metrics_table ()] formats the non-zero counters, the
    distributions (with p50/p99 histogram estimates) and the span
    summary as an aligned plain-text table (empty sections are
    omitted). *)
val metrics_table : unit -> string

(** [report_hit_rate ~hits ~misses] is [hits / (hits + misses)] read
    from the two named counters; [None] when either counter is
    unregistered or no events were recorded.  The bench smoke mode
    asserts cache hit rates through this. *)
val report_hit_rate : hits:string -> misses:string -> float option
