(** Metric snapshots: OpenMetrics exposition, parsing and regression
    diffing.

    A snapshot is a point-in-time copy of the {!Obs} registry —
    counters plus bucketed histograms — rendered in the OpenMetrics
    text format ([# TYPE] lines, [_total] counters, [_bucket{le=...}]
    histogram series, a final [# EOF]).  {!parse} reads exactly what
    {!render} writes, so two runs' [--metrics-out] files can be
    diffed offline: {!diff} reports counter deltas and p50/p99
    quantile shifts, flagging thresholded regressions.  [wlcq
    obs-diff A B] and the bench harness's histogram-floor rows are
    built on this module. *)

(** A parsed histogram: total count, value sum, and cumulative
    [(upper_bound, count_le)] buckets in ascending order ([max_int]
    encodes the [+Inf] bound). *)
type hist = {
  h_count : int;
  h_sum : int;
  h_buckets : (int * int) list;
}

(** A snapshot: sanitized metric names (lowercase, [.] mapped to [_],
    ["wlcq_"]-prefixed) with counter values and histograms, each
    sorted by name. *)
type t = {
  s_counters : (string * int) list;
  s_hists : (string * hist) list;
}

(** [capture ()] snapshots the live {!Obs} registry: all non-zero
    counters and all non-empty distributions, plus the synthetic
    {!uptime_metric} counter (nanoseconds since this process loaded
    the library) used by {!diff}[ ~rate:true]. *)
val capture : unit -> t

(** Name of the synthetic uptime counter ["wlcq_process_uptime_ns"].
    Always present in a {!capture}d snapshot and never flagged as a
    regression by {!diff} — wall time always grows. *)
val uptime_metric : string

(** [sanitize name] is the OpenMetrics-safe metric name used in
    snapshots: ["wlcq_"] + [name] with every character outside
    [A-Za-z0-9_:] replaced by [_]. *)
val sanitize : string -> string

(** [render s] is the OpenMetrics text exposition of [s], ending in
    [# EOF]. *)
val render : t -> string

(** [parse text] reads a {!render}-produced exposition back.
    [Error msg] pinpoints the first offending line. *)
val parse : string -> (t, string) result

(** [hist_quantile h q] is the [q]-quantile estimate of a parsed
    histogram (the smallest bucket upper bound covering rank
    [ceil (q * count)]); [None] when empty. *)
val hist_quantile : hist -> float -> int option

(** One thresholded regression verdict from {!diff}. *)
type regression = {
  r_metric : string;
  r_what : string;  (** ["count"], ["rate"], ["p50"] or ["p99"] *)
  r_before : float;
  r_after : float;
  r_ratio : float;
}

(** [diff before after] compares two snapshots.  Returns a
    human-readable report of every counter delta and histogram
    quantile shift, plus the list of regressions: metrics whose
    counter value or p50/p99 estimate grew by at least [threshold]
    (default 2.0) relative to [before], above a small noise floor
    (counter deltas of fewer than 8 events and histograms with fewer
    than 2 samples are never flagged).  Two identical snapshots
    produce zero regressions.

    With [~rate:true], counters are first divided by each snapshot's
    {!uptime_metric} value, so two snapshots taken from two
    still-running daemons with different uptimes compare events per
    second rather than absolute totals ([r_what] is ["rate"]).  When
    either snapshot lacks the uptime counter the diff falls back to
    absolute mode and says so in the report.  {!uptime_metric} itself
    is reported but never flagged. *)
val diff : ?threshold:float -> ?rate:bool -> t -> t -> string * regression list
