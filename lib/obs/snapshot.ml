(* OpenMetrics snapshots of the Obs registry, and regression diffing
   between two of them.  The renderer and the parser are kept
   deliberately symmetric: [parse] accepts exactly the exposition
   subset [render] emits (# TYPE counter/histogram, _total, _bucket
   with le labels, _sum, _count, # EOF), so snapshot files written by
   [--metrics-out] round-trip and [wlcq obs-diff] never needs a
   third-party parser. *)

type hist = {
  h_count : int;
  h_sum : int;
  h_buckets : (int * int) list;
}

type t = {
  s_counters : (string * int) list;
  s_hists : (string * hist) list;
}

(* ------------------------------------------------------------------ *)
(* Capture                                                             *)
(* ------------------------------------------------------------------ *)

(* Process start, for the synthetic uptime counter below.  Immutable:
   stamped once at module initialisation. *)
let t0_ns = Obs.now_ns ()

let uptime_metric = "wlcq_process_uptime_ns"

let sanitize name =
  let b = Bytes.create (String.length name) in
  String.iteri
    (fun i c ->
       Bytes.set b i
         (match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
          | _ -> '_'))
    name;
  "wlcq_" ^ Bytes.to_string b

let capture () =
  let counters =
    List.filter_map
      (fun (name, v) -> if v <> 0 then Some (sanitize name, v) else None)
      (Obs.counters ())
  in
  (* Synthetic monotonic counter so two snapshots of still-running
     daemons can be rate-normalised offline ([diff ~rate:true]).  It
     is never flagged as a regression — wall time always grows. *)
  let counters =
    (uptime_metric, Int64.to_int (Int64.sub (Obs.now_ns ()) t0_ns))
    :: counters
  in
  let hists =
    List.filter_map
      (fun (name, (s : Obs.dist_summary)) ->
         if s.Obs.d_count = 0 then None
         else
           match Obs.find_distribution name with
           | None -> None
           | Some d ->
             let buckets = Obs.distribution_buckets d in
             let cumulative = ref 0 in
             let finite_rev = ref [] in
             Array.iteri
               (fun i n ->
                  if i < Obs.num_buckets - 1 && n > 0 then begin
                    cumulative := !cumulative + n;
                    finite_rev := (Obs.bucket_upper i, !cumulative) :: !finite_rev
                  end)
               buckets;
             Some
               ( sanitize name,
                 {
                   h_count = s.Obs.d_count;
                   h_sum = s.Obs.d_sum;
                   h_buckets =
                     List.rev ((max_int, s.Obs.d_count) :: !finite_rev);
                 } ))
      (Obs.distributions ())
  in
  let by_name (a, _) (b, _) = String.compare a b in
  { s_counters = List.sort by_name counters;
    s_hists = List.sort by_name hists }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let le_label ub = if ub = max_int then "+Inf" else string_of_int ub

let render snap =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
       Buffer.add_string buf ("# TYPE " ^ name ^ " counter\n");
       Buffer.add_string buf (Printf.sprintf "%s_total %d\n" name v))
    snap.s_counters;
  List.iter
    (fun (name, h) ->
       Buffer.add_string buf ("# TYPE " ^ name ^ " histogram\n");
       List.iter
         (fun (ub, c) ->
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name (le_label ub) c))
         h.h_buckets;
       Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" name h.h_sum);
       Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name h.h_count))
    snap.s_hists;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let strip_suffix ~suffix s =
  if String.length s >= String.length suffix
     && String.equal suffix
          (String.sub s
             (String.length s - String.length suffix)
             (String.length suffix))
  then Some (String.sub s 0 (String.length s - String.length suffix))
  else None

let split_value line =
  match String.rindex_opt line ' ' with
  | None -> None
  | Some i -> (
    let name = String.sub line 0 i in
    let v = String.sub line (i + 1) (String.length line - i - 1) in
    match int_of_string_opt v with
    | Some n -> Some (name, n)
    | None -> None)

let parse_le series =
  (* "<name>_bucket{le=\"...\"}" -> (name, upper_bound) *)
  match String.index_opt series '{' with
  | None -> None
  | Some i -> (
    match strip_suffix ~suffix:"_bucket" (String.sub series 0 i) with
    | None -> None
    | Some name ->
      let label = String.sub series i (String.length series - i) in
      let prefix = "{le=\"" and suffix = "\"}" in
      if
        String.length label > String.length prefix + String.length suffix
        && String.equal prefix (String.sub label 0 (String.length prefix))
        && String.equal suffix
             (String.sub label
                (String.length label - String.length suffix)
                (String.length suffix))
      then
        let le =
          String.sub label (String.length prefix)
            (String.length label - String.length prefix
             - String.length suffix)
        in
        if String.equal le "+Inf" then Some (name, max_int)
        else
          match int_of_string_opt le with
          | Some ub -> Some (name, ub)
          | None -> None
      else None)

type partial_hist = {
  (* lint: domain-local parser scratch, created and consumed inside a
     single [parse] call; never escapes to another domain *)
  mutable p_buckets : (int * int) list;  (* reverse order *)
  (* lint: domain-local same ownership as [p_buckets] *)
  mutable p_sum : int option;
  (* lint: domain-local same ownership as [p_buckets] *)
  mutable p_count : int option;
}

let parse text =
  let lines = String.split_on_char '\n' text in
  let counters = ref [] in
  let hists = ref [] in
  let error = ref None in
  let fail lineno msg =
    if Option.is_none !error then
      error := Some (Printf.sprintf "line %d: %s" lineno msg)
  in
  (* current histogram being accumulated, if any *)
  let current : (string * partial_hist) option ref = ref None in
  let finish_current lineno =
    match !current with
    | None -> ()
    | Some (name, p) -> (
      current := None;
      match (p.p_sum, p.p_count) with
      | Some s, Some c ->
        hists :=
          (name, { h_count = c; h_sum = s; h_buckets = List.rev p.p_buckets })
          :: !hists
      | _ -> fail lineno ("histogram " ^ name ^ " missing _sum or _count"))
  in
  let expecting_counter = ref None in
  let seen_eof = ref false in
  List.iteri
    (fun i line ->
       let lineno = i + 1 in
       if Option.is_some !error || !seen_eof then begin
         if Option.is_none !error && not (String.equal (String.trim line) "")
         then fail lineno "content after # EOF"
       end
       else if String.equal line "" then ()
       else if String.equal line "# EOF" then begin
         (match !expecting_counter with
          | Some n -> fail lineno ("counter " ^ n ^ " missing its _total line")
          | None -> ());
         finish_current lineno;
         seen_eof := true
       end
       else if String.length line > 7 && String.equal (String.sub line 0 7) "# TYPE "
       then begin
         (match !expecting_counter with
          | Some n -> fail lineno ("counter " ^ n ^ " missing its _total line")
          | None -> ());
         finish_current lineno;
         match String.split_on_char ' ' (String.sub line 7 (String.length line - 7))
         with
         | [ name; "counter" ] -> expecting_counter := Some name
         | [ name; "histogram" ] ->
           current :=
             Some (name, { p_buckets = []; p_sum = None; p_count = None })
         | _ -> fail lineno "malformed # TYPE line"
       end
       else
         match !expecting_counter with
         | Some name -> (
           expecting_counter := None;
           match split_value line with
           | Some (series, v)
             when (match strip_suffix ~suffix:"_total" series with
                   | Some n -> String.equal n name
                   | None -> false) ->
             counters := (name, v) :: !counters
           | _ -> fail lineno ("expected " ^ name ^ "_total <value>"))
         | None -> (
           match !current with
           | None -> fail lineno "sample outside any # TYPE block"
           | Some (name, p) -> (
             match split_value line with
             | None -> fail lineno "malformed sample line"
             | Some (series, v) -> (
               match parse_le series with
               | Some (n, ub) when String.equal n name ->
                 p.p_buckets <- (ub, v) :: p.p_buckets
               | Some _ -> fail lineno "bucket for a different metric"
               | None -> (
                 match strip_suffix ~suffix:"_sum" series with
                 | Some n when String.equal n name -> p.p_sum <- Some v
                 | _ -> (
                   match strip_suffix ~suffix:"_count" series with
                   | Some n when String.equal n name -> p.p_count <- Some v
                   | _ -> fail lineno ("unexpected sample " ^ series)))))))
    lines;
  match !error with
  | Some e -> Error e
  | None ->
    if not !seen_eof then Error "missing # EOF terminator"
    else
      let by_name (a, _) (b, _) = String.compare a b in
      Ok
        { s_counters = List.sort by_name !counters;
          s_hists = List.sort by_name !hists }

(* ------------------------------------------------------------------ *)
(* Quantiles and diffing                                               *)
(* ------------------------------------------------------------------ *)

let hist_quantile h q =
  if h.h_count <= 0 then None
  else begin
    let rank =
      max 1 (int_of_float (Float.ceil (q *. float_of_int h.h_count)))
    in
    let rec walk = function
      | [] -> None
      | (ub, cum) :: rest -> if cum >= rank then Some ub else walk rest
    in
    walk h.h_buckets
  end

type regression = {
  r_metric : string;
  r_what : string;
  r_before : float;
  r_after : float;
  r_ratio : float;
}

let find name l = List.find_opt (fun (n, _) -> String.equal n name) l

let union_names a b =
  List.sort_uniq String.compare (List.map fst a @ List.map fst b)

(* Noise floors: counter deltas below [min_counter_delta] events and
   histograms with fewer than [min_samples] observations never
   produce a verdict, whatever the ratio. *)
let min_counter_delta = 8
let min_samples = 2

let uptime_of snap =
  match find uptime_metric snap.s_counters with
  | Some (_, ns) when ns > 0 -> Some (float_of_int ns /. 1e9)
  | _ -> None

let diff ?(threshold = 2.0) ?(rate = false) before after =
  let buf = Buffer.create 1024 in
  let regressions = ref [] in
  let flag metric what b a =
    if b > 0.0 && a >= threshold *. b then
      regressions :=
        { r_metric = metric; r_what = what; r_before = b; r_after = a;
          r_ratio = a /. b }
        :: !regressions
  in
  (* Rate normalisation: when both snapshots carry the synthetic
     uptime counter, [~rate:true] compares counters as events per
     second instead of absolute totals, so two still-running daemons
     with different uptimes can be diffed meaningfully. *)
  let uptimes =
    if rate then
      match (uptime_of before, uptime_of after) with
      | Some ub, Some ua -> Some (ub, ua)
      | _ -> None
    else None
  in
  (match (rate, uptimes) with
   | true, None ->
     Buffer.add_string buf
       "note: --rate requested but a snapshot lacks wlcq_process_uptime_ns; \
        falling back to absolute counters\n"
   | _ -> ());
  List.iter
    (fun name ->
       match (find name before.s_counters, find name after.s_counters) with
       | None, None -> ()
       | Some (_, b), Some (_, a) ->
         (match uptimes with
          | Some (ub, ua) ->
            Buffer.add_string buf
              (Printf.sprintf "counter %s %d -> %d (%.3f/s -> %.3f/s)\n" name
                 b a
                 (float_of_int b /. ub)
                 (float_of_int a /. ua))
          | None ->
            Buffer.add_string buf
              (Printf.sprintf "counter %s %d -> %d (%+d)\n" name b a (a - b)));
         (* wall time always grows: never a verdict in itself *)
         if not (String.equal name uptime_metric) then begin
           match uptimes with
           | Some (ub, ua) ->
             if a >= min_counter_delta then
               flag name "rate" (float_of_int b /. ub) (float_of_int a /. ua)
           | None ->
             if a - b >= min_counter_delta then
               flag name "count" (float_of_int b) (float_of_int a)
         end
       | None, Some (_, a) ->
         Buffer.add_string buf
           (Printf.sprintf "counter %s (new) -> %d\n" name a)
       | Some (_, b), None ->
         Buffer.add_string buf
           (Printf.sprintf "counter %s %d -> (gone)\n" name b))
    (union_names before.s_counters after.s_counters);
  List.iter
    (fun name ->
       match (find name before.s_hists, find name after.s_hists) with
       | None, None -> ()
       | Some (_, b), Some (_, a) ->
         let q h p =
           match hist_quantile h p with Some v -> v | None -> 0
         in
         let bp50 = q b 0.5 and ap50 = q a 0.5 in
         let bp99 = q b 0.99 and ap99 = q a 0.99 in
         Buffer.add_string buf
           (Printf.sprintf
              "hist %s count %d -> %d  p50 %d -> %d  p99 %d -> %d\n" name
              b.h_count a.h_count bp50 ap50 bp99 ap99);
         if b.h_count >= min_samples && a.h_count >= min_samples then begin
           flag name "p50" (float_of_int bp50) (float_of_int ap50);
           flag name "p99" (float_of_int bp99) (float_of_int ap99)
         end
       | None, Some (_, a) ->
         Buffer.add_string buf
           (Printf.sprintf "hist %s (new) count %d\n" name a.h_count)
       | Some (_, b), None ->
         Buffer.add_string buf
           (Printf.sprintf "hist %s count %d -> (gone)\n" name b.h_count))
    (union_names before.s_hists after.s_hists);
  let regressions =
    List.sort
      (fun a b ->
         match String.compare a.r_metric b.r_metric with
         | 0 -> String.compare a.r_what b.r_what
         | c -> c)
      !regressions
  in
  List.iter
    (fun r ->
       Buffer.add_string buf
         (Printf.sprintf "regression %s %s %.0f -> %.0f (x%.2f >= x%.2f)\n"
            r.r_metric r.r_what r.r_before r.r_after r.r_ratio threshold))
    regressions;
  (Buffer.contents buf, regressions)
