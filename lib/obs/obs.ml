(* Domain-safe metrics, spans, tracing and the flight recorder.
   Design constraint: every piece of global state in this module is
   either an [Atomic.t] (the flags, the registries, every metric
   cell, every journal slot) or per-domain ([Domain.DLS] span and
   scope stacks), so the whole library — and every module that
   merely *uses* it — passes wlcq-lint's R3 rule with exactly one
   audited suppression (the fixed array of per-stripe journal
   rings).  Registries are immutable lists swapped in with a CAS
   loop; metric cells are striped by domain id so worker domains do
   not contend on one cache line. *)

module Strict_json = Wlcq_strictjson.Strict_json

(* ------------------------------------------------------------------ *)
(* Enable flags                                                        *)
(* ------------------------------------------------------------------ *)

(* Flip to [false] to compile the instrumentation out: [enabled]
   becomes the constant [false] and every guarded branch folds away. *)
let compiled_in = true

let enabled_flag = Atomic.make false
let tracing_flag = Atomic.make false
let journal_flag = Atomic.make false
let alloc_flag = Atomic.make false

let enabled () = compiled_in && Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag (compiled_in && b)
let tracing () = compiled_in && Atomic.get tracing_flag
let set_tracing b = Atomic.set tracing_flag (compiled_in && b)
let journal_on () = compiled_in && Atomic.get journal_flag
let set_journal b = Atomic.set journal_flag (compiled_in && b)
let alloc_profiling () = compiled_in && Atomic.get alloc_flag
let set_alloc_profiling b = Atomic.set alloc_flag (compiled_in && b)

(* ------------------------------------------------------------------ *)
(* Striped atomic cells                                                *)
(* ------------------------------------------------------------------ *)

(* Power of two so the stripe index is a mask of the domain id. *)
let num_stripes = 16

let stripe () = (Domain.self () :> int) land (num_stripes - 1)

let sum_cells cells =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 cells

let zero_cells cells = Array.iter (fun c -> Atomic.set c 0) cells

(* lint: allow R7 lock-free CAS retry, bounded by contending domains *)
let rec atomic_min cell v =
  let cur = Atomic.get cell in
  if v < cur && not (Atomic.compare_and_set cell cur v) then atomic_min cell v

(* lint: allow R7 lock-free CAS retry, bounded by contending domains *)
let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then atomic_max cell v

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

type counter = { c_name : string; c_cells : int Atomic.t array }

let counter_registry : counter list Atomic.t = Atomic.make []

let find_counter name =
  List.find_opt
    (fun c -> String.equal c.c_name name)
    (Atomic.get counter_registry)

let rec counter name =
  match find_counter name with
  | Some c -> c
  | None ->
    let c =
      { c_name = name;
        c_cells = Array.init num_stripes (fun _ -> Atomic.make 0) }
    in
    let old = Atomic.get counter_registry in
    if
      List.exists (fun c' -> String.equal c'.c_name name) old
      || not (Atomic.compare_and_set counter_registry old (c :: old))
    then counter name (* lost the race: re-find the winner *)
    else c

let add c n =
  if enabled () then ignore (Atomic.fetch_and_add c.c_cells.(stripe ()) n)

let incr c = add c 1

let counter_value c = sum_cells c.c_cells

(* ------------------------------------------------------------------ *)
(* Distributions with log2-bucketed histograms                         *)
(* ------------------------------------------------------------------ *)

(* Bucket i >= 1 holds the values whose bit length is i, i.e.
   2^(i-1) <= v <= 2^i - 1; bucket 0 holds every v <= 0.  With OCaml's
   63-bit immediates the largest positive bit length is 62, so 63
   buckets cover the whole int range and a quantile read off a bucket
   upper bound over-estimates the true order statistic by less than
   one bucket width (a factor of 2). *)
let num_buckets = 63

(* Branch-chain bit length: no loop, so the observe path stays cheap
   and trivially poll-free. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    if !x lsr 32 <> 0 then begin b := !b + 32; x := !x lsr 32 end;
    if !x lsr 16 <> 0 then begin b := !b + 16; x := !x lsr 16 end;
    if !x lsr 8 <> 0 then begin b := !b + 8; x := !x lsr 8 end;
    if !x lsr 4 <> 0 then begin b := !b + 4; x := !x lsr 4 end;
    if !x lsr 2 <> 0 then begin b := !b + 2; x := !x lsr 2 end;
    if !x lsr 1 <> 0 then begin b := !b + 1 end;
    !b + 1
  end

let bucket_upper i =
  if i <= 0 then 0
  else if i >= num_buckets - 1 then max_int
  else (1 lsl i) - 1

type dist_cell = {
  dc_count : int Atomic.t;
  dc_sum : int Atomic.t;
  dc_min : int Atomic.t;
  dc_max : int Atomic.t;
  dc_buckets : int Atomic.t array;  (* length num_buckets *)
}

type distribution = { d_name : string; d_cells : dist_cell array }

type dist_summary = {
  d_count : int;
  d_sum : int;
  d_min : int;
  d_max : int;
}

let dist_registry : distribution list Atomic.t = Atomic.make []

let find_distribution name =
  List.find_opt
    (fun d -> String.equal d.d_name name)
    (Atomic.get dist_registry)

let fresh_dist_cell () =
  {
    dc_count = Atomic.make 0;
    dc_sum = Atomic.make 0;
    dc_min = Atomic.make max_int;
    dc_max = Atomic.make min_int;
    dc_buckets = Array.init num_buckets (fun _ -> Atomic.make 0);
  }

(* lint: allow R7 lock-free registry insert, retried only on a racing
   registration by another domain *)
let rec distribution name =
  match find_distribution name with
  | Some d -> d
  | None ->
    let d =
      { d_name = name;
        d_cells = Array.init num_stripes (fun _ -> fresh_dist_cell ()) }
    in
    let old = Atomic.get dist_registry in
    if
      List.exists (fun d' -> String.equal d'.d_name name) old
      || not (Atomic.compare_and_set dist_registry old (d :: old))
    then distribution name
    else d

let observe d v =
  if enabled () then begin
    let cell = d.d_cells.(stripe ()) in
    ignore (Atomic.fetch_and_add cell.dc_count 1);
    ignore (Atomic.fetch_and_add cell.dc_sum v);
    atomic_min cell.dc_min v;
    atomic_max cell.dc_max v;
    ignore (Atomic.fetch_and_add cell.dc_buckets.(bucket_of v) 1)
  end

let distribution_value d =
  Array.fold_left
    (fun acc cell ->
       {
         d_count = acc.d_count + Atomic.get cell.dc_count;
         d_sum = acc.d_sum + Atomic.get cell.dc_sum;
         d_min = min acc.d_min (Atomic.get cell.dc_min);
         d_max = max acc.d_max (Atomic.get cell.dc_max);
       })
    { d_count = 0; d_sum = 0; d_min = max_int; d_max = min_int }
    d.d_cells

let distribution_buckets d =
  let out = Array.make num_buckets 0 in
  Array.iter
    (fun cell ->
       Array.iteri
         (fun i b -> out.(i) <- out.(i) + Atomic.get b)
         cell.dc_buckets)
    d.d_cells;
  out

let quantile d q =
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Obs.quantile: q must lie in [0, 1]";
  let buckets = distribution_buckets d in
  let total = Array.fold_left ( + ) 0 buckets in
  if total = 0 then None
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int total))) in
    let observed_max = (distribution_value d).d_max in
    let rec walk i seen =
      if i >= num_buckets then Some observed_max
      else
        let seen = seen + buckets.(i) in
        if seen >= rank then Some (min (bucket_upper i) observed_max)
        else walk (i + 1) seen
    in
    walk 0 0
  end

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let now_ns () = Monotonic_clock.now ()

let epoch_ns = Monotonic_clock.now ()

let time_ns f =
  let t0 = now_ns () in
  let r = f () in
  (r, Int64.sub (now_ns ()) t0)

(* ------------------------------------------------------------------ *)
(* Scopes: which engine entry point is this domain running for?        *)
(* ------------------------------------------------------------------ *)

(* The driver domain keeps a precise per-domain stack (nested
   budgeted entries see the innermost name); worker domains spawned
   mid-entry fall back to the last entry any domain opened.  The
   fallback is deliberately best-effort — it exists so a budget
   tripping on a worker still journals the engine it was serving. *)
let scope_stack : string list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let last_scope = Atomic.make ""

let current_scope () =
  match Domain.DLS.get scope_stack with
  | s :: _ -> s
  | [] -> Atomic.get last_scope

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type span_stat = {
  ss_path : string;
  ss_count : int Atomic.t;
  ss_total : int Atomic.t;
  ss_max : int Atomic.t;
  ss_minor : int Atomic.t;  (* Gc minor words allocated under the span *)
  ss_major : int Atomic.t;  (* Gc major words allocated under the span *)
  ss_promoted : int Atomic.t;
}

type span_summary = {
  s_path : string;
  s_count : int;
  s_total_ns : int;
  s_max_ns : int;
  s_minor_words : int;
  s_major_words : int;
  s_promoted_words : int;
}

let span_stats : span_stat list Atomic.t = Atomic.make []

let find_span_stat path =
  List.find_opt
    (fun s -> String.equal s.ss_path path)
    (Atomic.get span_stats)

(* lint: allow R7 lock-free CAS retry, bounded by contending domains *)
let rec span_stat path =
  match find_span_stat path with
  | Some s -> s
  | None ->
    let s =
      {
        ss_path = path;
        ss_count = Atomic.make 0;
        ss_total = Atomic.make 0;
        ss_max = Atomic.make 0;
        ss_minor = Atomic.make 0;
        ss_major = Atomic.make 0;
        ss_promoted = Atomic.make 0;
      }
    in
    let old = Atomic.get span_stats in
    if
      List.exists (fun s' -> String.equal s'.ss_path path) old
      || not (Atomic.compare_and_set span_stats old (s :: old))
    then span_stat path
    else s

(* Per-domain stack of open span paths: nesting without shared state. *)
let span_stack : string list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

type event = {
  ev_name : string;
  ev_ts : int64;  (* absolute monotonic ns *)
  ev_dur : int64;
  ev_tid : int;
  ev_attrs : (string * string) list;
}

let events : event list Atomic.t = Atomic.make []

(* lint: allow R7 lock-free CAS retry, bounded by contending domains *)
let rec push_event e =
  let old = Atomic.get events in
  if not (Atomic.compare_and_set events old (e :: old)) then push_event e

(* [Gc.quick_stat] reads the calling domain's allocation counters
   without walking the heap, so sampling it per span is cheap.  The
   words are per-domain cumulative floats; the span attributes the
   delta across its body. *)
let alloc_words () =
  let st = Gc.quick_stat () in
  ( int_of_float st.Gc.minor_words,
    int_of_float st.Gc.major_words,
    int_of_float st.Gc.promoted_words )

let record_span path dur_ns =
  let s = span_stat path in
  let dur = Int64.to_int dur_ns in
  ignore (Atomic.fetch_and_add s.ss_count 1);
  ignore (Atomic.fetch_and_add s.ss_total dur);
  atomic_max s.ss_max dur;
  s

let span ?(attrs = []) name f =
  if not (enabled ()) then f ()
  else begin
    let stack = Domain.DLS.get span_stack in
    let path =
      match stack with [] -> name | parent :: _ -> parent ^ "/" ^ name
    in
    Domain.DLS.set span_stack (path :: stack);
    let alloc = alloc_profiling () in
    let a_minor, a_major, a_promoted =
      if alloc then alloc_words () else (0, 0, 0)
    in
    let t0 = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Int64.sub (now_ns ()) t0 in
        Domain.DLS.set span_stack stack;
        let s = record_span path dur in
        if alloc then begin
          let b_minor, b_major, b_promoted = alloc_words () in
          ignore (Atomic.fetch_and_add s.ss_minor (b_minor - a_minor));
          ignore (Atomic.fetch_and_add s.ss_major (b_major - a_major));
          ignore (Atomic.fetch_and_add s.ss_promoted (b_promoted - a_promoted))
        end;
        if tracing () then
          push_event
            {
              ev_name = name;
              ev_ts = t0;
              ev_dur = dur;
              ev_tid = (Domain.self () :> int);
              ev_attrs = attrs;
            })
      f
  end

let span_summaries () =
  List.sort
    (fun a b -> String.compare a.s_path b.s_path)
    (List.filter_map
       (fun s ->
          let count = Atomic.get s.ss_count in
          if count = 0 then None
          else
            Some
              {
                s_path = s.ss_path;
                s_count = count;
                s_total_ns = Atomic.get s.ss_total;
                s_max_ns = Atomic.get s.ss_max;
                s_minor_words = Atomic.get s.ss_minor;
                s_major_words = Atomic.get s.ss_major;
                s_promoted_words = Atomic.get s.ss_promoted;
              })
       (Atomic.get span_stats))

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(* Every [*_budgeted] engine surface runs under [entry_point]: it
   names the scope for the flight recorder (so a budget tripping
   anywhere below journals which engine it interrupted) and feeds the
   per-entry wall-time histogram [entry.<name>.wall_ns]. *)
let entry_point name f =
  if not (enabled () || journal_on ()) then f ()
  else begin
    let stack = Domain.DLS.get scope_stack in
    Domain.DLS.set scope_stack (name :: stack);
    Atomic.set last_scope name;
    let t0 = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        Domain.DLS.set scope_stack stack;
        (match stack with
         | parent :: _ -> Atomic.set last_scope parent
         | [] -> ());
        if enabled () then
          observe
            (distribution ("entry." ^ name ^ ".wall_ns"))
            (Int64.to_int (Int64.sub (now_ns ()) t0)))
      f
  end

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

type severity = Debug | Info | Warn | Error

let severity_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

type journal_entry = {
  j_ts_ns : int64;  (* monotonic, relative to process start *)
  j_severity : severity;
  j_tid : int;
  j_component : string;
  j_msg : string;
  j_attrs : (string * string) list;
}

(* One bounded ring per stripe: a fetch-and-add write cursor and a
   fixed array of slots.  A write builds an immutable entry and
   publishes it with one [Atomic.set], so readers never see a torn
   event — at worst a wrapped ring has dropped the oldest ones, which
   is the point of a flight recorder. *)
let journal_capacity = 256

type journal_stripe = {
  js_next : int Atomic.t;
  js_slots : journal_entry option Atomic.t array;
}

(* lint: domain-local fixed array of per-stripe rings, never resized;
   the write cursor and every slot are Atomic.t cells, so all
   mutation is atomic and entries are published whole *)
let journal_stripes =
  Array.init num_stripes (fun _ ->
      {
        js_next = Atomic.make 0;
        js_slots = Array.init journal_capacity (fun _ -> Atomic.make None);
      })

let journal ?(severity = Info) ?(attrs = []) ?component msg =
  if journal_on () then begin
    let comp =
      match component with Some c -> c | None -> current_scope ()
    in
    let st = journal_stripes.(stripe ()) in
    let i = Atomic.fetch_and_add st.js_next 1 in
    Atomic.set
      st.js_slots.(i mod journal_capacity)
      (Some
         {
           j_ts_ns = Int64.sub (now_ns ()) epoch_ns;
           j_severity = severity;
           j_tid = (Domain.self () :> int);
           j_component = comp;
           j_msg = msg;
           j_attrs = attrs;
         })
  end

let journal_entries () =
  let collected =
    Array.fold_left
      (fun acc st ->
         Array.fold_left
           (fun acc slot ->
              match Atomic.get slot with
              | None -> acc
              | Some e -> e :: acc)
           acc st.js_slots)
      [] journal_stripes
  in
  List.sort
    (fun a b ->
       match Int64.compare a.j_ts_ns b.j_ts_ns with
       | 0 -> Int.compare a.j_tid b.j_tid
       | c -> c)
    collected

let add_journal_line buf e =
  Buffer.add_string buf "{\"ts_ns\":";
  Buffer.add_string buf (Int64.to_string e.j_ts_ns);
  Buffer.add_string buf ",\"sev\":";
  Strict_json.add_string buf (severity_to_string e.j_severity);
  Buffer.add_string buf ",\"tid\":";
  Buffer.add_string buf (string_of_int e.j_tid);
  Buffer.add_string buf ",\"comp\":";
  Strict_json.add_string buf e.j_component;
  Buffer.add_string buf ",\"msg\":";
  Strict_json.add_string buf e.j_msg;
  Buffer.add_string buf ",\"attrs\":{";
  List.iteri
    (fun i (k, v) ->
       if i > 0 then Buffer.add_char buf ',';
       Strict_json.add_string buf k;
       Buffer.add_char buf ':';
       Strict_json.add_string buf v)
    e.j_attrs;
  Buffer.add_string buf "}}\n"

let journal_jsonl () =
  let buf = Buffer.create 4096 in
  List.iter (add_journal_line buf) (journal_entries ());
  Buffer.contents buf

(* Autodump: lib/robust calls [journal_dump ~trigger] when a budget
   trips or a fault fires, so every degraded/exhausted outcome leaves
   a postmortem JSONL trail without the caller asking for one. *)
let journal_dump_path : string option Atomic.t = Atomic.make None

let set_journal_dump path = Atomic.set journal_dump_path path

let journal_dump ~trigger () =
  if journal_on () then
    match Atomic.get journal_dump_path with
    | None -> ()
    | Some file -> (
      journal ~severity:Error
        ~attrs:[ ("trigger", trigger) ]
        "journal.dump";
      (* A dump fires on already-degraded paths: an unwritable dump
         file must not turn a sound degraded answer into a crash. *)
      match
        let oc = open_out file in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (journal_jsonl ()))
      with
      | () -> ()
      | exception Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Reading and resetting                                               *)
(* ------------------------------------------------------------------ *)

let counters () =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (List.map
       (fun c -> (c.c_name, counter_value c))
       (Atomic.get counter_registry))

let distributions () =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (List.map
       (fun d -> (d.d_name, distribution_value d))
       (Atomic.get dist_registry))

let reset ?(keep_trace = false) () =
  List.iter (fun c -> zero_cells c.c_cells) (Atomic.get counter_registry);
  List.iter
    (fun d ->
       Array.iter
         (fun cell ->
            Atomic.set cell.dc_count 0;
            Atomic.set cell.dc_sum 0;
            Atomic.set cell.dc_min max_int;
            Atomic.set cell.dc_max min_int;
            zero_cells cell.dc_buckets)
         d.d_cells)
    (Atomic.get dist_registry);
  Atomic.set span_stats [];
  Array.iter
    (fun st ->
       Atomic.set st.js_next 0;
       Array.iter (fun slot -> Atomic.set slot None) st.js_slots)
    journal_stripes;
  if not keep_trace then Atomic.set events []

(* ------------------------------------------------------------------ *)
(* Trace export (Chrome trace_event JSON)                              *)
(* ------------------------------------------------------------------ *)

let add_json_string = Strict_json.add_string

(* Microseconds relative to process start, with sub-us precision kept
   as a decimal fraction (trace_event timestamps are us floats). *)
let add_us buf ns =
  let rel = Int64.sub ns epoch_ns in
  Buffer.add_string buf
    (Printf.sprintf "%Ld.%03Ld" (Int64.div rel 1000L)
       (Int64.rem (Int64.abs rel) 1000L))

let add_event buf e =
  Buffer.add_string buf "{\"name\":";
  add_json_string buf e.ev_name;
  Buffer.add_string buf ",\"cat\":\"wlcq\",\"ph\":\"X\",\"ts\":";
  add_us buf e.ev_ts;
  Buffer.add_string buf ",\"dur\":";
  Buffer.add_string buf
    (Printf.sprintf "%Ld.%03Ld" (Int64.div e.ev_dur 1000L)
       (Int64.rem e.ev_dur 1000L));
  Buffer.add_string buf ",\"pid\":1,\"tid\":";
  Buffer.add_string buf (string_of_int e.ev_tid);
  Buffer.add_string buf ",\"args\":{";
  List.iteri
    (fun i (k, v) ->
       if i > 0 then Buffer.add_char buf ',';
       add_json_string buf k;
       Buffer.add_char buf ':';
       add_json_string buf v)
    e.ev_attrs;
  Buffer.add_string buf "}}"

(* Deterministic order across domains: timestamp, then recording
   domain, then name — two runs that do the same work in a different
   domain interleaving (forced-par vs forced-seq) export events in
   the same order, so traces diff structurally. *)
let trace_json () =
  let evs =
    List.sort
      (fun a b ->
         match Int64.compare a.ev_ts b.ev_ts with
         | 0 -> (
           match Int.compare a.ev_tid b.ev_tid with
           | 0 -> String.compare a.ev_name b.ev_name
           | c -> c)
         | c -> c)
      (Atomic.get events)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i e ->
       if i > 0 then Buffer.add_string buf ",\n";
       add_event buf e)
    evs;
  Buffer.add_string buf "]\n";
  Buffer.contents buf

(* The strict acceptor lives in [Wlcq_strictjson.Strict_json] so
   wlcq-lint's --json mode validates against the same grammar; this
   alias keeps the historical Obs entry point. *)
let json_parseable = Strict_json.parseable

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

let span_report () =
  let sums = span_summaries () in
  let with_alloc =
    List.exists
      (fun s ->
         s.s_minor_words <> 0 || s.s_major_words <> 0
         || s.s_promoted_words <> 0)
      sums
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun s ->
       let depth =
         String.fold_left
           (fun acc c -> if Char.equal c '/' then acc + 1 else acc)
           0 s.s_path
       in
       let label =
         match String.rindex_opt s.s_path '/' with
         | None -> s.s_path
         | Some i ->
           String.sub s.s_path (i + 1) (String.length s.s_path - i - 1)
       in
       Buffer.add_string buf
         (Printf.sprintf "%-44s %8d %12.3f ms %10.3f ms"
            (String.make (2 * depth) ' ' ^ label)
            s.s_count
            (float_of_int s.s_total_ns /. 1e6)
            (float_of_int s.s_max_ns /. 1e6));
       if with_alloc then
         Buffer.add_string buf
           (Printf.sprintf " %10dw %10dw %8dw" s.s_minor_words
              s.s_major_words s.s_promoted_words);
       Buffer.add_char buf '\n')
    sums;
  Buffer.contents buf

(* Collapsed-stack (folded) export: one line per span path with its
   *self* weight — total minus the direct children — so the output
   feeds flamegraph.pl / speedscope / inferno directly. *)
let folded ?(weight = `Time_ns) () =
  let sums = span_summaries () in
  let w s =
    match weight with
    | `Time_ns -> s.s_total_ns
    | `Alloc_words -> s.s_minor_words + s.s_major_words
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun s ->
       let prefix = s.s_path ^ "/" in
       let children =
         List.fold_left
           (fun acc c ->
              if
                String.length c.s_path > String.length prefix
                && String.starts_with ~prefix c.s_path
                && Option.is_none
                     (String.index_from_opt c.s_path (String.length prefix)
                        '/')
              then acc + w c
              else acc)
           0 sums
       in
       let self = max 0 (w s - children) in
       if self > 0 then begin
         Buffer.add_string buf
           (String.map (fun c -> if Char.equal c '/' then ';' else c) s.s_path);
         Buffer.add_char buf ' ';
         Buffer.add_string buf (string_of_int self);
         Buffer.add_char buf '\n'
       end)
    sums;
  Buffer.contents buf

let metrics_table () =
  let buf = Buffer.create 1024 in
  let live_counters =
    List.filter (fun (_, v) -> v <> 0) (counters ())
  in
  if not (List.is_empty live_counters) then begin
    Buffer.add_string buf
      (Printf.sprintf "%-44s %12s\n" "counter" "value");
    List.iter
      (fun (name, v) ->
         Buffer.add_string buf (Printf.sprintf "%-44s %12d\n" name v))
      live_counters
  end;
  let live_dists =
    List.filter (fun (_, s) -> s.d_count > 0) (distributions ())
  in
  if not (List.is_empty live_dists) then begin
    Buffer.add_string buf
      (Printf.sprintf "%-44s %8s %12s %8s %8s %8s %8s\n" "distribution"
         "count" "sum" "min" "max" "p50" "p99");
    List.iter
      (fun (name, s) ->
         let quant q =
           match find_distribution name with
           | None -> "-"
           | Some d -> (
             match quantile d q with
             | None -> "-"
             | Some v -> string_of_int v)
         in
         Buffer.add_string buf
           (Printf.sprintf "%-44s %8d %12d %8d %8d %8s %8s\n" name s.d_count
              s.d_sum s.d_min s.d_max (quant 0.5) (quant 0.99)))
      live_dists
  end;
  let spans = span_report () in
  if not (String.equal spans "") then begin
    Buffer.add_string buf
      (Printf.sprintf "%-44s %8s %15s %13s\n" "span" "count" "total" "max");
    Buffer.add_string buf spans
  end;
  if Buffer.length buf = 0 then Buffer.add_string buf "(no metrics recorded)\n";
  Buffer.contents buf

let report_hit_rate ~hits ~misses =
  match (find_counter hits, find_counter misses) with
  | Some h, Some m ->
    let th = counter_value h and tm = counter_value m in
    if th + tm = 0 then None
    else Some (float_of_int th /. float_of_int (th + tm))
  | _ -> None
