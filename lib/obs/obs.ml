(* Domain-safe metrics, spans and tracing.  Design constraint: every
   piece of global state in this module is either an [Atomic.t] (the
   flags, the registries, every metric cell) or per-domain
   ([Domain.DLS] span stacks), so the whole library — and every module
   that merely *uses* it — passes wlcq-lint's R3 rule without
   suppressions.  Registries are immutable lists swapped in with a
   CAS loop; metric cells are striped by domain id so worker domains
   do not contend on one cache line. *)

(* ------------------------------------------------------------------ *)
(* Enable flags                                                        *)
(* ------------------------------------------------------------------ *)

(* Flip to [false] to compile the instrumentation out: [enabled]
   becomes the constant [false] and every guarded branch folds away. *)
let compiled_in = true

let enabled_flag = Atomic.make false
let tracing_flag = Atomic.make false

let enabled () = compiled_in && Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag (compiled_in && b)
let tracing () = compiled_in && Atomic.get tracing_flag
let set_tracing b = Atomic.set tracing_flag (compiled_in && b)

(* ------------------------------------------------------------------ *)
(* Striped atomic cells                                                *)
(* ------------------------------------------------------------------ *)

(* Power of two so the stripe index is a mask of the domain id. *)
let num_stripes = 16

let stripe () = (Domain.self () :> int) land (num_stripes - 1)

let sum_cells cells =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 cells

let zero_cells cells = Array.iter (fun c -> Atomic.set c 0) cells

let rec atomic_min cell v =
  let cur = Atomic.get cell in
  if v < cur && not (Atomic.compare_and_set cell cur v) then atomic_min cell v

(* lint: allow R7 lock-free CAS retry, bounded by contending domains *)
let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then atomic_max cell v

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

type counter = { c_name : string; c_cells : int Atomic.t array }

let counter_registry : counter list Atomic.t = Atomic.make []

let find_counter name =
  List.find_opt
    (fun c -> String.equal c.c_name name)
    (Atomic.get counter_registry)

let rec counter name =
  match find_counter name with
  | Some c -> c
  | None ->
    let c =
      { c_name = name;
        c_cells = Array.init num_stripes (fun _ -> Atomic.make 0) }
    in
    let old = Atomic.get counter_registry in
    if
      List.exists (fun c' -> String.equal c'.c_name name) old
      || not (Atomic.compare_and_set counter_registry old (c :: old))
    then counter name (* lost the race: re-find the winner *)
    else c

let add c n =
  if enabled () then ignore (Atomic.fetch_and_add c.c_cells.(stripe ()) n)

let incr c = add c 1

let counter_value c = sum_cells c.c_cells

(* ------------------------------------------------------------------ *)
(* Distributions                                                       *)
(* ------------------------------------------------------------------ *)

type dist_cell = {
  dc_count : int Atomic.t;
  dc_sum : int Atomic.t;
  dc_min : int Atomic.t;
  dc_max : int Atomic.t;
}

type distribution = { d_name : string; d_cells : dist_cell array }

type dist_summary = {
  d_count : int;
  d_sum : int;
  d_min : int;
  d_max : int;
}

let dist_registry : distribution list Atomic.t = Atomic.make []

let find_distribution name =
  List.find_opt
    (fun d -> String.equal d.d_name name)
    (Atomic.get dist_registry)

let fresh_dist_cell () =
  {
    dc_count = Atomic.make 0;
    dc_sum = Atomic.make 0;
    dc_min = Atomic.make max_int;
    dc_max = Atomic.make min_int;
  }

let rec distribution name =
  match find_distribution name with
  | Some d -> d
  | None ->
    let d =
      { d_name = name;
        d_cells = Array.init num_stripes (fun _ -> fresh_dist_cell ()) }
    in
    let old = Atomic.get dist_registry in
    if
      List.exists (fun d' -> String.equal d'.d_name name) old
      || not (Atomic.compare_and_set dist_registry old (d :: old))
    then distribution name
    else d

let observe d v =
  if enabled () then begin
    let cell = d.d_cells.(stripe ()) in
    ignore (Atomic.fetch_and_add cell.dc_count 1);
    ignore (Atomic.fetch_and_add cell.dc_sum v);
    atomic_min cell.dc_min v;
    atomic_max cell.dc_max v
  end

let distribution_value d =
  Array.fold_left
    (fun acc cell ->
       {
         d_count = acc.d_count + Atomic.get cell.dc_count;
         d_sum = acc.d_sum + Atomic.get cell.dc_sum;
         d_min = min acc.d_min (Atomic.get cell.dc_min);
         d_max = max acc.d_max (Atomic.get cell.dc_max);
       })
    { d_count = 0; d_sum = 0; d_min = max_int; d_max = min_int }
    d.d_cells

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let now_ns () = Monotonic_clock.now ()

let epoch_ns = Monotonic_clock.now ()

let time_ns f =
  let t0 = now_ns () in
  let r = f () in
  (r, Int64.sub (now_ns ()) t0)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type span_stat = {
  ss_path : string;
  ss_count : int Atomic.t;
  ss_total : int Atomic.t;
  ss_max : int Atomic.t;
}

type span_summary = {
  s_path : string;
  s_count : int;
  s_total_ns : int;
  s_max_ns : int;
}

let span_stats : span_stat list Atomic.t = Atomic.make []

let find_span_stat path =
  List.find_opt
    (fun s -> String.equal s.ss_path path)
    (Atomic.get span_stats)

(* lint: allow R7 lock-free CAS retry, bounded by contending domains *)
let rec span_stat path =
  match find_span_stat path with
  | Some s -> s
  | None ->
    let s =
      {
        ss_path = path;
        ss_count = Atomic.make 0;
        ss_total = Atomic.make 0;
        ss_max = Atomic.make 0;
      }
    in
    let old = Atomic.get span_stats in
    if
      List.exists (fun s' -> String.equal s'.ss_path path) old
      || not (Atomic.compare_and_set span_stats old (s :: old))
    then span_stat path
    else s

(* Per-domain stack of open span paths: nesting without shared state. *)
let span_stack : string list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

type event = {
  ev_name : string;
  ev_ts : int64;  (* absolute monotonic ns *)
  ev_dur : int64;
  ev_tid : int;
  ev_attrs : (string * string) list;
}

let events : event list Atomic.t = Atomic.make []

(* lint: allow R7 lock-free CAS retry, bounded by contending domains *)
let rec push_event e =
  let old = Atomic.get events in
  if not (Atomic.compare_and_set events old (e :: old)) then push_event e

let record_span path dur_ns =
  let s = span_stat path in
  let dur = Int64.to_int dur_ns in
  ignore (Atomic.fetch_and_add s.ss_count 1);
  ignore (Atomic.fetch_and_add s.ss_total dur);
  atomic_max s.ss_max dur

let span ?(attrs = []) name f =
  if not (enabled ()) then f ()
  else begin
    let stack = Domain.DLS.get span_stack in
    let path =
      match stack with [] -> name | parent :: _ -> parent ^ "/" ^ name
    in
    Domain.DLS.set span_stack (path :: stack);
    let t0 = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Int64.sub (now_ns ()) t0 in
        Domain.DLS.set span_stack stack;
        record_span path dur;
        if tracing () then
          push_event
            {
              ev_name = name;
              ev_ts = t0;
              ev_dur = dur;
              ev_tid = (Domain.self () :> int);
              ev_attrs = attrs;
            })
      f
  end

let span_summaries () =
  List.sort
    (fun a b -> String.compare a.s_path b.s_path)
    (List.filter_map
       (fun s ->
          let count = Atomic.get s.ss_count in
          if count = 0 then None
          else
            Some
              {
                s_path = s.ss_path;
                s_count = count;
                s_total_ns = Atomic.get s.ss_total;
                s_max_ns = Atomic.get s.ss_max;
              })
       (Atomic.get span_stats))

(* ------------------------------------------------------------------ *)
(* Reading and resetting                                               *)
(* ------------------------------------------------------------------ *)

let counters () =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (List.map
       (fun c -> (c.c_name, counter_value c))
       (Atomic.get counter_registry))

let distributions () =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (List.map
       (fun d -> (d.d_name, distribution_value d))
       (Atomic.get dist_registry))

let reset ?(keep_trace = false) () =
  List.iter (fun c -> zero_cells c.c_cells) (Atomic.get counter_registry);
  List.iter
    (fun d ->
       Array.iter
         (fun cell ->
            Atomic.set cell.dc_count 0;
            Atomic.set cell.dc_sum 0;
            Atomic.set cell.dc_min max_int;
            Atomic.set cell.dc_max min_int)
         d.d_cells)
    (Atomic.get dist_registry);
  Atomic.set span_stats [];
  if not keep_trace then Atomic.set events []

(* ------------------------------------------------------------------ *)
(* Trace export (Chrome trace_event JSON)                              *)
(* ------------------------------------------------------------------ *)

let json_escape buf s =
  String.iter
    (fun ch ->
       match ch with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s

let add_json_string buf s =
  Buffer.add_char buf '"';
  json_escape buf s;
  Buffer.add_char buf '"'

(* Microseconds relative to process start, with sub-us precision kept
   as a decimal fraction (trace_event timestamps are us floats). *)
let add_us buf ns =
  let rel = Int64.sub ns epoch_ns in
  Buffer.add_string buf
    (Printf.sprintf "%Ld.%03Ld" (Int64.div rel 1000L)
       (Int64.rem (Int64.abs rel) 1000L))

let add_event buf e =
  Buffer.add_string buf "{\"name\":";
  add_json_string buf e.ev_name;
  Buffer.add_string buf ",\"cat\":\"wlcq\",\"ph\":\"X\",\"ts\":";
  add_us buf e.ev_ts;
  Buffer.add_string buf ",\"dur\":";
  Buffer.add_string buf
    (Printf.sprintf "%Ld.%03Ld" (Int64.div e.ev_dur 1000L)
       (Int64.rem e.ev_dur 1000L));
  Buffer.add_string buf ",\"pid\":1,\"tid\":";
  Buffer.add_string buf (string_of_int e.ev_tid);
  Buffer.add_string buf ",\"args\":{";
  List.iteri
    (fun i (k, v) ->
       if i > 0 then Buffer.add_char buf ',';
       add_json_string buf k;
       Buffer.add_char buf ':';
       add_json_string buf v)
    e.ev_attrs;
  Buffer.add_string buf "}}"

let trace_json () =
  let evs =
    List.sort
      (fun a b -> Int64.compare a.ev_ts b.ev_ts)
      (Atomic.get events)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i e ->
       if i > 0 then Buffer.add_string buf ",\n";
       add_event buf e)
    evs;
  Buffer.add_string buf "]\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Minimal JSON validity checker                                       *)
(* ------------------------------------------------------------------ *)

(* A strict recursive-descent acceptor for one JSON value.  Only used
   to sanity-check our own exporter (and by the bench smoke test), so
   it favours simplicity: exact RFC 8259 grammar, no extensions. *)
let json_parseable s =
  let n = String.length s in
  let exception Bad in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = Stdlib.incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when Char.equal c c' -> advance ()
    | _ -> raise Bad
  in
  let literal word =
    String.iter (fun c -> expect c) word
  in
  let rec value () =
    skip_ws ();
    (match peek () with
     | Some '{' -> obj ()
     | Some '[' -> arr ()
     | Some '"' -> string_lit ()
     | Some 't' -> literal "true"
     | Some 'f' -> literal "false"
     | Some 'n' -> literal "null"
     | Some ('-' | '0' .. '9') -> number ()
     | _ -> raise Bad);
    skip_ws ()
  and obj () =
    expect '{';
    skip_ws ();
    (match peek () with
     | Some '}' -> advance ()
     | _ ->
       let rec members () =
         skip_ws ();
         string_lit ();
         skip_ws ();
         expect ':';
         value ();
         match peek () with
         | Some ',' -> advance (); members ()
         | _ -> expect '}'
       in
       members ())
  and arr () =
    expect '[';
    skip_ws ();
    (match peek () with
     | Some ']' -> advance ()
     | _ ->
       let rec elements () =
         value ();
         match peek () with
         | Some ',' -> advance (); elements ()
         | _ -> expect ']'
       in
       elements ())
  and string_lit () =
    expect '"';
    let rec go () =
      if !pos >= n then raise Bad
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
           | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
             advance ()
           | Some 'u' ->
             advance ();
             for _ = 1 to 4 do
               (match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> raise Bad)
             done
           | _ -> raise Bad);
          go ()
        | c when Char.code c < 0x20 -> raise Bad
        | _ -> advance (); go ()
    in
    go ()
  and number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let seen = ref false in
      while
        match peek () with
        | Some '0' .. '9' -> true
        | _ -> false
      do
        seen := true;
        advance ()
      done;
      if not !seen then raise Bad
    in
    digits ();
    (match peek () with
     | Some '.' -> advance (); digits ()
     | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  match value () with
  | () -> !pos = n || (skip_ws (); !pos = n)
  | exception Bad -> false

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

let span_report () =
  let buf = Buffer.create 256 in
  List.iter
    (fun s ->
       let depth =
         String.fold_left
           (fun acc c -> if Char.equal c '/' then acc + 1 else acc)
           0 s.s_path
       in
       let label =
         match String.rindex_opt s.s_path '/' with
         | None -> s.s_path
         | Some i ->
           String.sub s.s_path (i + 1) (String.length s.s_path - i - 1)
       in
       Buffer.add_string buf
         (Printf.sprintf "%-44s %8d %12.3f ms %10.3f ms\n"
            (String.make (2 * depth) ' ' ^ label)
            s.s_count
            (float_of_int s.s_total_ns /. 1e6)
            (float_of_int s.s_max_ns /. 1e6)))
    (span_summaries ());
  Buffer.contents buf

let metrics_table () =
  let buf = Buffer.create 1024 in
  let live_counters =
    List.filter (fun (_, v) -> v <> 0) (counters ())
  in
  if not (List.is_empty live_counters) then begin
    Buffer.add_string buf
      (Printf.sprintf "%-44s %12s\n" "counter" "value");
    List.iter
      (fun (name, v) ->
         Buffer.add_string buf (Printf.sprintf "%-44s %12d\n" name v))
      live_counters
  end;
  let live_dists =
    List.filter (fun (_, s) -> s.d_count > 0) (distributions ())
  in
  if not (List.is_empty live_dists) then begin
    Buffer.add_string buf
      (Printf.sprintf "%-44s %8s %12s %8s %8s\n" "distribution" "count"
         "sum" "min" "max");
    List.iter
      (fun (name, s) ->
         Buffer.add_string buf
           (Printf.sprintf "%-44s %8d %12d %8d %8d\n" name s.d_count s.d_sum
              s.d_min s.d_max))
      live_dists
  end;
  let spans = span_report () in
  if not (String.equal spans "") then begin
    Buffer.add_string buf
      (Printf.sprintf "%-44s %8s %15s %13s\n" "span" "count" "total" "max");
    Buffer.add_string buf spans
  end;
  if Buffer.length buf = 0 then Buffer.add_string buf "(no metrics recorded)\n";
  Buffer.contents buf

let report_hit_rate ~hits ~misses =
  match (find_counter hits, find_counter misses) with
  | Some h, Some m ->
    let th = counter_value h and tm = counter_value m in
    if th + tm = 0 then None
    else Some (float_of_int th /. float_of_int (th + tm))
  | _ -> None
