(** Counting minimisation (Definition 9, Lemma 44).

    Two queries are counting equivalent when they have the same number
    of answers in every graph; each equivalence class has a unique (up
    to isomorphism) minimal representative, the {e counting core}.

    The core is computed by repeatedly shrinking with endomorphisms:
    whenever [H] admits an endomorphism [h] that maps [X] bijectively
    onto [X] and whose image is a proper subset of [V(H)], the query
    retracts onto the induced subgraph on the image of a suitable power
    of [h] (the power fixing [X] pointwise), which preserves the set of
    answers in every graph.  At the fixed point no such endomorphism
    exists, which is exactly the counting-minimality criterion behind
    Lemma 44.  For full queries ([X = V(H)]) every such endomorphism is
    an automorphism, so full queries are always minimal (Section 5). *)

module Budget = Wlcq_robust.Budget

(** [counting_core q] is the counting-minimal representative of [q]'s
    counting-equivalence class (free variables keep their relative
    order; vertex labels are compacted).  The endomorphism search is
    budgeted through {!Wlcq_hom.Brute.iter}.
    @raise Budget.Exhausted when [budget] trips mid-search. *)
val counting_core : ?budget:Budget.t -> Cq.t -> Cq.t

(** [is_counting_minimal q] holds when no proper shrinking
    endomorphism exists. *)
val is_counting_minimal : Cq.t -> bool

(** [shrinking_endomorphism q] is a witness endomorphism (as an array
    over [V(H)]) that fixes [X] pointwise and has a proper image, if
    one exists.
    @raise Budget.Exhausted when [budget] trips mid-search. *)
val shrinking_endomorphism : ?budget:Budget.t -> Cq.t -> int array option
