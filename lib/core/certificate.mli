(** End-to-end Theorem 1 certificates.

    [certify q] assembles, for a connected query with a free variable,
    the complete evidence chain of the paper:

    - the counting core and the claimed dimension [k = sew];
    - {b upper bound}: on a sample graph, the Lemma 22 / Observation 23
      interpolation recomputes the answer count from homomorphism
      counts of the treewidth-[≤ k] graphs [F_ℓ] — demonstrating that
      [|Ans|] is a function of data any [k]-WL-invariant oracle
      provides;
    - {b lower bound} (non-full cores): the Section 4 witness — the
      twisted CFI pair with its [Ans^id] gap (Lemma 57), the Lemma 55
      equality [𝓔 = cpAns], the [(k−1)]-WL-equivalence of the pair
      (Lemma 35), and a cloned plain-answer separating pair
      (Lemma 40).

    Every field is re-checked by {!is_valid}; {!pp} renders the
    certificate for human consumption (the CLI's [wlcq certify]). *)

open Wlcq_graph

type lower_bound = {
  f_treewidth : int;  (** [tw(F_ℓ)], must equal the dimension *)
  ell : int;  (** the odd saturating ℓ *)
  ans_id_even : int;
  ans_id_odd : int;  (** Lemma 57: strictly smaller *)
  extendable_matches : bool;  (** Lemma 55 on both twists *)
  pair_equivalent : bool option;
      (** [χ(F,∅) ≅_{k−1} χ(F,{x₁})]; [None] when the check was
          skipped (dimension too large for the k-WL oracle budget) *)
  separating : (Graph.t * Graph.t * int * int) option;
      (** cloned pair and its two answer counts (Lemma 40) *)
}

type t = {
  query : Cq.t;
  core : Cq.t;
  dimension : int;
  sample : Graph.t;
  sample_direct : int;
  sample_interpolated : Wlcq_util.Bigint.t;  (** upper-bound demo *)
  lower : lower_bound option;  (** [None] for full-query cores *)
}

(** [certify ?sample ?max_equivalence_check q] builds the certificate.
    [sample] defaults to a small cycle sized so the interpolation
    system stays modest (the system has [|V(sample)|^|Y|] unknowns; an
    explicitly supplied over-large sample raises through the
    interpolation guard).  The [(k−1)]-WL-equivalence check runs only
    when [k − 1 ≤ max_equivalence_check] (default 2, since k-WL is
    Θ(n^{k+1})).
    @raise Invalid_argument for disconnected or boolean queries. *)
val certify : ?sample:Graph.t -> ?max_equivalence_check:int -> Cq.t -> t

(** [is_valid c] re-checks every claim in the certificate. *)
val is_valid : t -> bool

val pp : Format.formatter -> t -> unit
