open Wlcq_graph
module Bitset = Wlcq_util.Bitset
module Budget = Wlcq_robust.Budget

exception Found of int array

(* Search for an endomorphism of H that maps X bijectively onto X and
   whose image misses at least one vertex.  Free variables are
   restricted to land in X; bijectivity and image size are checked on
   each enumerated endomorphism. *)
let shrinking_raw ?budget q =
  let h = q.Cq.graph in
  let n = Graph.num_vertices h in
  let free = q.Cq.free in
  let candidates v =
    if Bitset.mem free v then Bitset.copy free else Bitset.full n
  in
  try
    Wlcq_hom.Brute.iter ?budget ~candidates h h (fun endo ->
        let image = Bitset.create n in
        Array.iter (fun v -> Bitset.set image v) endo;
        if Bitset.cardinal image < n then begin
          (* check that X maps bijectively onto X *)
          let ximg = Bitset.create n in
          let bijective = ref true in
          Bitset.iter
            (fun x ->
               if Bitset.mem ximg endo.(x) then bijective := false
               else Bitset.set ximg endo.(x))
            free;
          if !bijective && Bitset.equal ximg free then
            raise (Found (Array.copy endo))
        end);
    None
  with Found endo -> Some endo

(* Raise the endomorphism to the power that fixes X pointwise (the
   order of the permutation it induces on X); the image can only
   shrink, so the result still has a proper image. *)
let fix_free_pointwise ?(budget = Budget.unlimited) q endo =
  let compose f g = Array.init (Array.length g) (fun v -> f.(g.(v))) in
  let identity_on_free h = Bitset.for_all (fun x -> h.(x) = x) q.Cq.free in
  (* the iteration count is the order of the permutation [endo]
     induces on X — up to exponential in |X| — so poll each step *)
  let rec go h =
    Budget.tick_check budget;
    if identity_on_free h then h else go (compose endo h)
  in
  go endo

let shrinking_endomorphism ?budget q =
  Option.map (fix_free_pointwise ?budget q) (shrinking_raw ?budget q)

let is_counting_minimal q = Option.is_none (shrinking_raw q)

let rec counting_core ?budget q =
  match shrinking_endomorphism ?budget q with
  | None -> q
  | Some endo ->
    let h = q.Cq.graph in
    let n = Graph.num_vertices h in
    let image = Bitset.create n in
    Array.iter (fun v -> Bitset.set image v) endo;
    let members = Bitset.to_list image in
    let sub, back = Ops.induced h members in
    (* back maps new labels to old; invert to relocate X *)
    let new_of_old = Hashtbl.create n in
    Array.iteri (fun i v -> Hashtbl.replace new_of_old v i) back;
    let relocate v =
      (* total: [endo] fixes X pointwise, so every free variable is in
         the image and hence in [back] *)
      match Hashtbl.find_opt new_of_old v with
      | Some i -> i
      | None -> assert false
    in
    let new_free = List.map relocate (Bitset.to_list q.Cq.free) in
    counting_core ?budget (Cq.make sub new_free)
