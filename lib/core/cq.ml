open Wlcq_graph
module Bitset = Wlcq_util.Bitset
module Combinat = Wlcq_util.Combinat
module Obs = Wlcq_obs.Obs
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome

let m_ans_partial = Obs.counter "robust.fallback.ans_partial"

type t = { graph : Graph.t; free : Bitset.t }

let make h xs =
  let n = Graph.num_vertices h in
  let free = Bitset.create n in
  List.iter
    (fun x ->
       if x < 0 || x >= n then invalid_arg "Cq.make: free variable out of range";
       if Bitset.mem free x then invalid_arg "Cq.make: duplicate free variable";
       Bitset.set free x)
    xs;
  { graph = h; free }

let free_vars q = Array.of_list (Bitset.to_list q.free)
let quantified_vars q = Array.of_list (Bitset.to_list (Bitset.complement q.free))
let num_free q = Bitset.cardinal q.free
let is_full q = num_free q = Graph.num_vertices q.graph
let is_boolean q = num_free q = 0
let is_connected q = Traversal.is_connected q.graph

let pins_of q a =
  let xs = free_vars q in
  Array.to_list (Array.mapi (fun i x -> (x, a.(i))) xs)

let is_answer q g a =
  Wlcq_hom.Brute.exists ~pins:(pins_of q a) q.graph g

(* Iterate candidate assignments for the free variables; [restrict]
   optionally prunes the candidate vertices per free-variable
   position. *)
let iter_assignments ?restrict q g f =
  let k = num_free q in
  let ng = Graph.num_vertices g in
  match restrict with
  | None -> Combinat.iter_tuples ng k f
  | Some allowed ->
    let choices = Array.init k allowed in
    let a = Array.make k 0 in
    let rec go i =
      if i = k then f a
      else
        List.iter
          (fun v ->
             a.(i) <- v;
             go (i + 1))
          choices.(i)
    in
    go 0

let iter_answers ?(budget = Budget.unlimited) q g f =
  if is_boolean q then begin
    Budget.check budget;
    if Wlcq_hom.Brute.exists q.graph g then f [||]
  end
  else
    iter_assignments q g (fun a ->
        (* one tick per candidate assignment: each is a pattern-sized
           existence search, so the granularity is bounded *)
        Budget.tick_check budget;
        if is_answer q g a then f a)

let count_answers ?budget q g =
  let n = ref 0 in
  iter_answers ?budget q g (fun _ -> incr n);
  !n

(* answers are enumerated in a fixed order, so the partial count at
   the trip is a sound lower bound on |Ans(q, g)| *)
(* lint: allow R8 Invalid_argument is Brute's pin-range validation
   reporting a caller bug, deliberately outside the Outcome envelope *)
let count_answers_budgeted ~budget q g =
  Obs.entry_point "cq.count_answers" @@ fun () ->
  let n = ref 0 in
  match iter_answers ~budget q g (fun _ -> incr n) with
  | () -> `Exact !n
  | exception Budget.Exhausted r ->
    Obs.incr m_ans_partial;
    Obs.journal ~severity:Obs.Warn
      ~attrs:
        [ ("reason", Budget.reason_to_string r);
          ("partial", string_of_int !n) ]
      "cq.ans_partial";
    `Exhausted (!n, r)

let answers q g =
  let acc = ref [] in
  iter_answers q g (fun a -> acc := Array.copy a :: !acc);
  List.rev !acc

let count_answers_injective ?budget q g =
  let n = ref 0 in
  iter_answers ?budget q g (fun a ->
      let distinct = List.sort_uniq Int.compare (Array.to_list a) in
      if List.length distinct = Array.length a then incr n);
  !n

let colour_classes g c =
  let classes = Hashtbl.create 16 in
  Array.iteri
    (fun v colour ->
       Hashtbl.replace classes colour
         (v :: Option.value ~default:[] (Hashtbl.find_opt classes colour)))
    c;
  ignore g;
  fun colour -> Option.value ~default:[] (Hashtbl.find_opt classes colour)

let count_answers_tau q g ~c ~tau =
  if Array.length c <> Graph.num_vertices g then
    invalid_arg "Cq.count_answers_tau: colouring size mismatch";
  if Array.length tau <> num_free q then
    invalid_arg "Cq.count_answers_tau: tau must cover the free variables";
  let class_of = colour_classes g c in
  let n = ref 0 in
  iter_assignments ~restrict:(fun i -> class_of tau.(i)) q g (fun a ->
      if is_answer q g a then incr n);
  !n

let count_cp_answers q g ~c =
  if not (Wlcq_hom.Colored.is_colouring g q.graph c) then
    invalid_arg "Cq.count_cp_answers: c is not an H-colouring of G";
  let ng = Graph.num_vertices g in
  let class_of =
    let classes = Hashtbl.create 16 in
    Array.iteri
      (fun v colour ->
         let s =
           match Hashtbl.find_opt classes colour with
           | Some s -> s
           | None ->
             let s = Bitset.create ng in
             Hashtbl.replace classes colour s;
             s
         in
         Bitset.set s v)
      c;
    fun colour ->
      Option.value ~default:(Bitset.create ng) (Hashtbl.find_opt classes colour)
  in
  let xs = free_vars q in
  let extendable a =
    Wlcq_hom.Brute.exists ~pins:(pins_of q a) ~candidates:class_of q.graph g
  in
  let count = ref 0 in
  iter_assignments
    ~restrict:(fun i -> Bitset.to_list (class_of xs.(i)))
    q g
    (fun a -> if extendable a then incr count);
  !count

let colours_of q =
  Array.init (Graph.num_vertices q.graph) (fun v ->
      if Bitset.mem q.free v then 1 else 0)

let isomorphic q1 q2 =
  Graph.num_vertices q1.graph = Graph.num_vertices q2.graph
  && num_free q1 = num_free q2
  && Option.is_some
       (Iso.find_isomorphism_respecting q1.graph (colours_of q1) q2.graph
          (colours_of q2))

let partial_automorphisms q =
  let xs = free_vars q in
  let pos = Hashtbl.create 8 in
  Array.iteri (fun i x -> Hashtbl.replace pos x i) xs;
  let restrictions =
    List.filter_map
      (fun auto ->
         let preserves =
           Array.for_all (fun x -> Hashtbl.mem pos auto.(x)) xs
         in
         if preserves then
           Some (Array.map (fun x -> Hashtbl.find pos auto.(x)) xs)
         else None)
      (Iso.automorphisms q.graph)
  in
  List.sort_uniq Wlcq_util.Ordering.int_array restrictions

let relabel q p =
  let graph = Ops.relabel q.graph p in
  let free = Bitset.to_list q.free in
  make graph (List.map (fun x -> p.(x)) free)

let normal_form ?limit q =
  let c = Iso.canonical_form ~init:(colours_of q) ?limit q.graph in
  let free = List.map (fun x -> c.Iso.perm.(x)) (Bitset.to_list q.free) in
  (make c.Iso.canon free, c.Iso.perm, c.Iso.digest)

let pp ppf q =
  Format.fprintf ppf "(%a, X=%a)" Graph.pp q.graph Bitset.pp q.free

let to_string q = Format.asprintf "%a" pp q
