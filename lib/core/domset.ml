open Wlcq_graph
module Bitset = Wlcq_util.Bitset
module Budget = Wlcq_robust.Budget
module Bigint = Wlcq_util.Bigint
module Rat = Wlcq_util.Rat

let is_dominating g d =
  let n = Graph.num_vertices g in
  let covered = Bitset.create n in
  List.iter
    (fun v ->
       Bitset.set covered v;
       Graph.iter_neighbours g v (fun w -> Bitset.set covered w))
    d;
  Bitset.cardinal covered = n

let count_direct ?(budget = Budget.unlimited) k g =
  let n = Graph.num_vertices g in
  let count = ref 0 in
  Wlcq_util.Combinat.iter_subsets_of_size k n (fun subset ->
      (* one tick per candidate subset: each domination test is O(n·k) *)
      Budget.tick_check budget;
      if is_dominating g (Array.to_list subset) then incr count);
  Bigint.of_int !count

(* |Δ_k(G)| = C(n,k) − Inj((S_k,X_k), Ḡ)/k!  (proof of Corollary 68) *)
let via_injective_count inj_count k g =
  let n = Graph.num_vertices g in
  let complement = Ops.complement g in
  let inj = inj_count k complement in
  let per_subset, rem = Bigint.divmod inj (Bigint.factorial k) in
  if not (Bigint.is_zero rem) then
    failwith "Domset.via_injective_count: injective answer count not divisible by k!";
  Bigint.sub (Bigint.binomial n k) per_subset

let count_via_stars ?budget k g =
  via_injective_count
    (fun k g ->
       Bigint.of_int (Cq.count_answers_injective ?budget (Star.query k) g))
    k g

let count_via_quantum k g =
  via_injective_count
    (fun k g ->
       let v = Quantum.evaluate (Quantum.injective_star k) g in
       match Rat.to_bigint_opt v with
       | Some b -> b
       | None -> failwith "Domset.count_via_quantum: non-integer quantum evaluation")
    k g
