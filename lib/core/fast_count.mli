(** Polynomial-time answer counting for bounded extension width — the
    algorithmic content of the positive side of Corollary 4.

    The classification of Chen–Durand–Mengel and Dell–Roth–Wellnitz
    (quoted in the proof of Corollary 4) makes [#CQ] tractable exactly
    when the treewidth of the query {e and} of its contract are
    bounded — equivalently, when the extension width is bounded.  The
    algorithm implemented here is the standard witness of tractability:

    + for each connected component [C_i] of [H[Y]] with attachment set
      [δ_i = N(C_i) ∩ X], tabulate the predicate
      [P_i(σ) = "σ : δ_i → V(G) extends to a homomorphism of the
      component"] — at most [|V(G)|^{|δ_i|}] entries, and
      [|δ_i| ≤ ew + 1] because [δ_i] is a clique of [Γ(H,X)];
    + count the assignments [a : X → V(G)] that are homomorphisms on
      [H[X]] and satisfy every [P_i], by dynamic programming over a
      tree decomposition of the contract [Γ(H,X)[X]] (each [δ_i] is a
      clique there, hence fits in a bag).

    The total cost is [|V(G)|^{O(ew)}] — polynomial for fixed
    extension width, in contrast to the [|V(G)|^{|X|}] enumeration of
    {!Cq.count_answers}.  Both are cross-validated in the test suite
    and compared in bench series F3. *)

open Wlcq_graph

(** [count_answers q g] is [|Ans(q, g)|] as a {!Wlcq_util.Bigint}
    (unlike enumeration, the DP can exceed native range).

    Runs on packed-key tables ([Wlcq_hom.Dp_key]) with the
    {!Wlcq_util.Count} int63 fast path; the bag enumeration is
    restricted to per-position candidate sets (target support, unary
    component predicates, arc consistency over the [H[X]] edges) with
    constraints checked as soon as their scope is assigned, and each
    constraint lives in the smallest bag covering its scope. *)
val count_answers : Cq.t -> Graph.t -> Wlcq_util.Bigint.t

(** The original engine (full tuple enumeration, first-covering-bag
    constraint assignment), kept verbatim as a differential-testing
    oracle. *)
val count_answers_reference : Cq.t -> Graph.t -> Wlcq_util.Bigint.t
