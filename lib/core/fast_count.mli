(** Polynomial-time answer counting for bounded extension width — the
    algorithmic content of the positive side of Corollary 4.

    The classification of Chen–Durand–Mengel and Dell–Roth–Wellnitz
    (quoted in the proof of Corollary 4) makes [#CQ] tractable exactly
    when the treewidth of the query {e and} of its contract are
    bounded — equivalently, when the extension width is bounded.  The
    algorithm implemented here is the standard witness of tractability:

    + for each connected component [C_i] of [H[Y]] with attachment set
      [δ_i = N(C_i) ∩ X], tabulate the predicate
      [P_i(σ) = "σ : δ_i → V(G) extends to a homomorphism of the
      component"] — at most [|V(G)|^{|δ_i|}] entries, and
      [|δ_i| ≤ ew + 1] because [δ_i] is a clique of [Γ(H,X)];
    + count the assignments [a : X → V(G)] that are homomorphisms on
      [H[X]] and satisfy every [P_i], by dynamic programming over a
      tree decomposition of the contract [Γ(H,X)[X]] (each [δ_i] is a
      clique there, hence fits in a bag).

    The total cost is [|V(G)|^{O(ew)}] — polynomial for fixed
    extension width, in contrast to the [|V(G)|^{|X|}] enumeration of
    {!Cq.count_answers}.  Both are cross-validated in the test suite
    and compared in bench series F3. *)

open Wlcq_graph
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome

(** [count_answers q g] is [|Ans(q, g)|] as a {!Wlcq_util.Bigint}
    (unlike enumeration, the DP can exceed native range).

    Runs on packed-key tables ([Wlcq_hom.Dp_key]) with the
    {!Wlcq_util.Count} int63 fast path; the bag enumeration is
    restricted to per-position candidate sets (target support, unary
    component predicates, arc consistency over the [H[X]] edges) with
    constraints checked as soon as their scope is assigned, and each
    constraint lives in the smallest bag covering its scope.
    [budget] is ticked per bag-enumeration node.
    @raise Budget.Exhausted when [budget] trips. *)
val count_answers : ?budget:Budget.t -> Cq.t -> Graph.t -> Wlcq_util.Bigint.t

(** Non-raising variant: the DP's intermediate tables admit no sound
    partial reading, so exhaustion carries no partial count.  Bumps
    [robust.fallback.fast_exhausted]. *)
val count_answers_budgeted :
  budget:Budget.t -> Cq.t -> Graph.t ->
  (Wlcq_util.Bigint.t, Budget.reason) Outcome.t

(** The original engine (full tuple enumeration, first-covering-bag
    constraint assignment), kept verbatim as a differential-testing
    oracle.  [budget] is polled per enumerated tuple;
    {!Budget.Exhausted} escapes when it trips (the budgeted entry
    catches it). *)
val count_answers_reference :
  ?budget:Budget.t -> Cq.t -> Graph.t -> Wlcq_util.Bigint.t
