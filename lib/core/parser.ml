type parsed = { query : Cq.t; names : string array }

type token =
  | Ident of string
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Amp
  | Bar
  | Define  (* ":=" *)

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) (Lparen :: acc)
      | ')' -> go (i + 1) (Rparen :: acc)
      | ',' -> go (i + 1) (Comma :: acc)
      | '.' -> go (i + 1) (Dot :: acc)
      | '&' -> go (i + 1) (Amp :: acc)
      | '|' -> go (i + 1) (Bar :: acc)
      | ':' ->
        if i + 1 < n && s.[i + 1] = '=' then go (i + 2) (Define :: acc)
        else Error (Printf.sprintf "unexpected ':' at position %d" i)
      | c when (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' ->
        let j = ref i in
        while
          !j < n
          && (let c = s.[!j] in
              (c >= 'a' && c <= 'z')
              || (c >= 'A' && c <= 'Z')
              || (c >= '0' && c <= '9')
              || c = '_' || c = '\'')
        do
          incr j
        done;
        go !j (Ident (String.sub s i (!j - i)) :: acc)
      | c -> Error (Printf.sprintf "unexpected character %C at position %d" c i)
  in
  go 0 []

let ( let* ) = Result.bind

(* head: '(' [ident (',' ident)*] ')' ':=' *)
let parse_head tokens =
  match tokens with
  | Lparen :: rest ->
    let rec idents acc = function
      | Rparen :: Define :: rest -> Ok (List.rev acc, rest)
      | Ident x :: Comma :: rest -> idents (x :: acc) rest
      | Ident x :: Rparen :: Define :: rest -> Ok (List.rev (x :: acc), rest)
      | _ -> Error "malformed head: expected '(x1, ..., xk) :='"
    in
    idents [] rest
  | _ -> Error "query must start with a head '(x1, ..., xk) :='"

let parse_exists tokens =
  match tokens with
  | Ident "exists" :: rest ->
    let rec idents acc = function
      | Dot :: rest -> Ok (List.rev acc, rest)
      | Ident x :: rest when not (String.equal x "E") -> idents (x :: acc) rest
      | _ -> Error "malformed quantifier: expected 'exists y1 y2 ... .'"
    in
    (match rest with
     | Ident x :: _ when not (String.equal x "E") -> idents [] rest
     | _ -> Error "'exists' must be followed by at least one variable")
  | _ -> Ok ([], tokens)

let parse_atoms tokens =
  let atom = function
    | Ident "E" :: Lparen :: Ident a :: Comma :: Ident b :: Rparen :: rest ->
      Ok ((a, b), rest)
    | _ -> Error "malformed atom: expected 'E(u, v)'"
  in
  let* first, rest = atom tokens in
  let rec more acc = function
    | Amp :: rest ->
      let* a, rest = atom rest in
      more (a :: acc) rest
    | [] -> Ok (List.rev acc)
    | _ -> Error "trailing tokens after atoms"
  in
  more [ first ] rest

(* Split a token stream at top-level '|' separators. *)
let split_bars tokens =
  let rec go current acc = function
    | [] -> List.rev (List.rev current :: acc)
    | Bar :: rest -> go [] (List.rev current :: acc) rest
    | t :: rest -> go (t :: current) acc rest
  in
  go [] [] tokens

(* Build a query from declared names and atoms. *)
let build free_names exist_names atoms =
  (* assign ids: free first, then existential *)
  let ids = Hashtbl.create 16 in
  let names = free_names @ exist_names in
  let* () =
    List.fold_left
      (fun acc name ->
         let* () = acc in
         if Hashtbl.mem ids name then
           Error (Printf.sprintf "variable %s declared twice" name)
         else begin
           Hashtbl.replace ids name (Hashtbl.length ids);
           Ok ()
         end)
      (Ok ()) names
  in
  let* edges =
    List.fold_left
      (fun acc (a, b) ->
         let* edges = acc in
         match (Hashtbl.find_opt ids a, Hashtbl.find_opt ids b) with
         | None, _ -> Error (Printf.sprintf "undeclared variable %s" a)
         | _, None -> Error (Printf.sprintf "undeclared variable %s" b)
         | Some u, Some v ->
           if u = v then
             Error
               (Printf.sprintf
                  "atom E(%s, %s) is a self-loop: unsatisfiable on simple \
                   graphs"
                  a b)
           else Ok ((u, v) :: edges))
      (Ok []) atoms
  in
  let n = List.length names in
  let graph = Wlcq_graph.Graph.create n edges in
  let free = List.init (List.length free_names) (fun i -> i) in
  Ok { query = Cq.make graph free; names = Array.of_list names }

let parse s =
  let* tokens = tokenize s in
  let* free_names, rest = parse_head tokens in
  let* exist_names, rest = parse_exists rest in
  let* atoms = parse_atoms rest in
  build free_names exist_names atoms

let parse_union s =
  let* tokens = tokenize s in
  let* free_names, rest = parse_head tokens in
  let parts = split_bars rest in
  List.fold_left
    (fun acc part ->
       let* parsed = acc in
       let* exist_names, rest = parse_exists part in
       let* atoms = parse_atoms rest in
       let* p = build free_names exist_names atoms in
       Ok (p :: parsed))
    (Ok []) parts
  |> Result.map List.rev

let parse_union_exn s =
  match parse_union s with
  | Ok ps -> ps
  | Error msg -> invalid_arg ("Parser.parse_union: " ^ msg)

let parse_exn s =
  match parse s with
  | Ok p -> p
  | Error msg -> invalid_arg ("Parser.parse: " ^ msg)

let default_names q =
  let n = Wlcq_graph.Graph.num_vertices q.Cq.graph in
  let names = Array.make n "" in
  Array.iteri
    (fun i x -> names.(x) <- Printf.sprintf "x%d" (i + 1))
    (Cq.free_vars q);
  Array.iteri
    (fun i y -> names.(y) <- Printf.sprintf "y%d" (i + 1))
    (Cq.quantified_vars q);
  names

let to_formula ?names q =
  let names = match names with Some a -> a | None -> default_names q in
  let buf = Buffer.create 64 in
  let xs = Cq.free_vars q and ys = Cq.quantified_vars q in
  Buffer.add_char buf '(';
  Array.iteri
    (fun i x ->
       if i > 0 then Buffer.add_string buf ", ";
       Buffer.add_string buf names.(x))
    xs;
  Buffer.add_string buf ") := ";
  if Array.length ys > 0 then begin
    Buffer.add_string buf "exists";
    Array.iter
      (fun y ->
         Buffer.add_char buf ' ';
         Buffer.add_string buf names.(y))
      ys;
    Buffer.add_string buf " . "
  end;
  let edges = Wlcq_graph.Graph.edges q.Cq.graph in
  if List.is_empty edges then Buffer.add_string buf "(* no atoms *)"
  else
    List.iteri
      (fun i (u, v) ->
         if i > 0 then Buffer.add_string buf " & ";
         Buffer.add_string buf (Printf.sprintf "E(%s, %s)" names.(u) names.(v)))
      edges;
  Buffer.contents buf
