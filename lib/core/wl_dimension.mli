(** The WL-dimension of conjunctive queries — Theorem 1 and its
    certified witnesses.

    Theorem 1: for a connected query [(H, X)] with [X ≠ ∅], the
    WL-dimension of [G ↦ |Ans((H,X),G)|] equals the semantic extension
    width [sew(H, X)].  {!dimension} evaluates the right-hand side;
    the rest of this module produces and checks the {e evidence} the
    proof is made of:

    - {!answers_via_interpolation} implements the upper bound
      (Lemma 22 / Observation 23): answer counts are a function of the
      homomorphism counts [|Hom(F_ℓ, ·)|] from graphs of treewidth at
      most [ew], recovered by solving an exact Vandermonde system;
    - {!lower_bound_witness} implements the lower bound (Section 4):
      it builds [F = F_ℓ(core)] with [tw(F) = ew] and the twisted CFI
      pair [χ(F, ∅) / χ(F, {x₁})], on which the colour-prescribed
      answer counts provably differ (Lemma 57) while the graphs are
      [(ew−1)]-WL-equivalent (Lemma 35);
    - {!separating_pair} upgrades the witness to a pair of plain
      graphs with different total answer counts (via the colour-block
      cloning of Lemma 40). *)

open Wlcq_graph
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome

(** [dimension q] is the WL-dimension of [q].  For connected queries
    with [X ≠ ∅] this is [sew q] (Theorem 1).  The extensions
    discussed in Section 1.3 are also implemented: for [X = ∅] it is
    the treewidth of the homomorphic core (item B), and for
    disconnected queries the maximum over connected components
    (item A). *)
val dimension : Cq.t -> int

(** [dimension_budgeted ~budget q]: [`Exact d] when every treewidth
    search and endomorphism enumeration finished in budget; otherwise
    [`Exhausted ((lo, hi), r)] with a {e certified} interval
    containing the dimension — [lo = 0] and [hi] from
    {!dimension_upper_bound}.  Never [`Degraded]: an uncertain
    dimension is an interval, not a flagged point value.  Bumps
    [robust.fallback.dim_interval]. *)
val dimension_budgeted :
  budget:Budget.t -> Cq.t ->
  (int, (int * int) * Budget.reason) Outcome.t

(** [dimension_upper_bound q] is a certified upper bound on
    [dimension q]: the recursion of {!dimension} with the polynomial
    {!Wlcq_treewidth.Heuristics} treewidth bracket in place of exact
    treewidth and no core minimisation (both can only lower the
    value). *)
val dimension_upper_bound : Cq.t -> int

type witness = {
  core : Cq.t;  (** the counting-minimal representative *)
  f : Extension.f_ell;  (** [F_ℓ(core)] with [tw = ew(core)], [ℓ] odd *)
  x1 : int;  (** the twisted vertex: a free variable adjacent to [Y] *)
  even : Wlcq_cfi.Cfi.t;  (** [χ(F, ∅)] *)
  odd : Wlcq_cfi.Cfi.t;  (** [χ(F, {x₁})] *)
  colouring_even : int array;  (** [c = γ ∘ π₁] on [χ(F, ∅)] *)
  colouring_odd : int array;  (** [c = γ ∘ π₁] on [χ(F, {x₁})] *)
}

(** [lower_bound_witness q] builds the Section-4 witness for a
    connected query whose counting core has at least one quantified
    variable and [X ≠ ∅].  [budget] is threaded through the core
    minimisation, the saturating-ℓ treewidth searches and both CFI
    builds.
    @raise Invalid_argument otherwise (full queries are covered by
    Neuen's theorem and need no [F_ℓ] construction).
    @raise Budget.Exhausted when [budget] trips. *)
val lower_bound_witness : ?budget:Budget.t -> Cq.t -> witness

(** [ans_id_counts w] is [(|Ans^id| on χ(F,∅), |Ans^id| on χ(F,{x₁}))]
    — Lemma 57 asserts the first is strictly larger. *)
val ans_id_counts : witness -> int * int

(** [cp_ans_counts w] is the same with colour-prescribed answers
    (equal to [ans_id_counts] for counting-minimal queries by
    Lemma 50). *)
val cp_ans_counts : witness -> int * int

(** [witness_pair_equivalent w k] checks [χ(F,∅) ≅_k χ(F,{x₁})] with
    the k-WL oracle (Lemma 35 guarantees this for
    [k = tw(F) − 1]). *)
val witness_pair_equivalent : witness -> int -> bool

(** [equivalent_cached k g1 g2] is {!Wlcq_wl.Equivalence.equivalent}
    behind a process-wide memo table keyed on [(k, pair)] (order
    insensitive).  The lower-bound pipeline re-asks the oracle about
    the same CFI pairs many times; the memo makes repeats free. *)
val equivalent_cached : int -> Graph.t -> Graph.t -> bool

(** [separating_pair ?max_z q] is a pair of graphs [(G, G')] with
    [G ≅_{sew−1} G'] and [|Ans(q,G)| ≠ |Ans(q,G')|], obtained from the
    witness by colour-block cloning with multiplicities up to [max_z]
    (Lemma 40); [None] if no multiplicity vector up to the bound
    separates (the theorem guarantees one exists at some bound). *)
val separating_pair : ?max_z:int -> Cq.t -> (Graph.t * Graph.t) option

(** [answers_via_interpolation q g] computes [|Ans(q, g)|] from the
    homomorphism counts [|Hom(F_ℓ(core), g)|], [ℓ = 1 .. n̂], by exact
    Vandermonde interpolation (Lemma 22 / Observation 23), where
    [n̂ = |V(g)|^{|Y(core)|}].  [budget] is threaded into the core
    minimisation and the batch homomorphism counts.
    @raise Invalid_argument when [n̂] exceeds [max_system] (default
    64).
    @raise Budget.Exhausted when [budget] trips. *)
val answers_via_interpolation :
  ?budget:Budget.t -> ?max_system:int -> Cq.t -> Graph.t ->
  Wlcq_util.Bigint.t
