open Wlcq_graph
module Bitset = Wlcq_util.Bitset

type skeleton = {
  arity : int;
  constraints : (int * int * int) list;
  faithful : bool;
}

let skeleton q =
  let h = q.Cq.graph in
  if not (Cq.is_connected q) then
    invalid_arg "Acyclic.skeleton: query must be connected";
  if not (Traversal.is_forest h) then
    invalid_arg "Acyclic.skeleton: query must be acyclic";
  if Cq.num_free q = 0 then
    invalid_arg "Acyclic.skeleton: query must have a free variable";
  let xs = Cq.free_vars q in
  let pos = Hashtbl.create 8 in
  Array.iteri (fun p x -> Hashtbl.replace pos x p) xs;
  (* direct edges between free variables *)
  let direct = ref [] in
  Graph.iter_edges h (fun u v ->
      match (Hashtbl.find_opt pos u, Hashtbl.find_opt pos v) with
      | Some a, Some b -> direct := (min a b, max a b, 0) :: !direct
      | _ -> ());
  (* quantified components: a component adjacent to exactly two free
     variables contributes a weighted edge (the unique path through
     it); more than two breaks faithfulness *)
  let faithful = ref true in
  let contracted = ref [] in
  List.iter
    (fun (members, attached) ->
       match attached with
       | [] | [ _ ] -> () (* dangling: vacuous over min-degree-1 graphs *)
       | [ a; b ] ->
         (* length of the unique a-b path inside the component *)
         let vertices = a :: b :: members in
         let sub, back = Ops.induced h vertices in
         let sub_pos = Hashtbl.create 8 in
         Array.iteri (fun i v -> Hashtbl.replace sub_pos v i) back;
         let d =
           Traversal.distance sub (Hashtbl.find sub_pos a)
             (Hashtbl.find sub_pos b)
         in
         assert (d >= 2);
         let pa = Hashtbl.find pos a and pb = Hashtbl.find pos b in
         contracted := (min pa pb, max pa pb, d - 1) :: !contracted
       | _ -> faithful := false)
    (Extension.quantified_components q);
  {
    arity = Array.length xs;
    constraints = List.rev !direct @ List.rev !contracted;
    faithful = !faithful;
  }

(* boolean matrices B.(len) with B.(len).(u).(v) = exists walk of
   length exactly len *)
let walk_tables g max_len =
  let n = Graph.num_vertices g in
  let id = Array.init n (fun u -> Array.init n (fun v -> u = v)) in
  let adj = Array.init n (fun u -> Array.init n (Graph.adjacent g u)) in
  let mul a b =
    Array.init n (fun i ->
        Array.init n (fun j ->
            let rec any k =
              k < n && ((a.(i).(k) && b.(k).(j)) || any (k + 1))
            in
            any 0))
  in
  let tables = Array.make (max_len + 1) id in
  for len = 1 to max_len do
    tables.(len) <- mul tables.(len - 1) adj
  done;
  tables

let walk_exists g u v len =
  if len < 0 then invalid_arg "Acyclic.walk_exists: negative length";
  (walk_tables g len).(len).(u).(v)

let count_answers_walks q g =
  let s = skeleton q in
  if not s.faithful then
    invalid_arg
      "Acyclic.count_answers_walks: a quantified component touches three or \
       more free variables; the walk semantics is not faithful (see the \
       reproduction note)";
  let n = Graph.num_vertices g in
  let isolated = ref false in
  for v = 0 to n - 1 do
    if Graph.degree g v = 0 then isolated := true
  done;
  if !isolated then
    invalid_arg "Acyclic.count_answers_walks: data graph has isolated vertices";
  let max_len =
    List.fold_left (fun acc (_, _, w) -> max acc (w + 1)) 0 s.constraints
  in
  let tables = walk_tables g max_len in
  let count = ref 0 in
  Wlcq_util.Combinat.iter_tuples n s.arity (fun phi ->
      if
        List.for_all
          (fun (a, b, w) -> tables.(w + 1).(phi.(a)).(phi.(b)))
          s.constraints
      then incr count);
  !count
