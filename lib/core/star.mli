(** The k-star query [(S_k, X_k)] (Definition 66) — the paper's running
    example.

    [S_k] has free variables [x_1, …, x_k] all adjacent to a single
    quantified centre [y]; answers in [G] are the k-tuples of vertices
    with a common neighbour.  Although [S_k] is acyclic (treewidth 1),
    [Γ(S_k, X_k) = K_{k+1}], so [sew(S_k, X_k) = k] — the separation
    between treewidth and WL-dimension that motivates the paper
    (Section 1.1, Corollaries 61 and 67). *)

open Wlcq_graph

(** [query k] is [(S_k, X_k)]: vertices [0..k-1] free, vertex [k] the
    quantified centre. *)
val query : int -> Cq.t

(** [gamma_is_clique k] checks that [Γ(S_k, X_k) ≅ K_{k+1}]. *)
val gamma_is_clique : int -> bool

(** [count_common_neighbour_tuples g k] counts k-tuples of vertices of
    [g] sharing a common neighbour, by direct enumeration — the
    semantic definition of [|Ans((S_k,X_k), g)|], used to
    cross-validate the generic answer counter. *)
val count_common_neighbour_tuples : Graph.t -> int -> int
