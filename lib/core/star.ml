open Wlcq_graph
module Bitset = Wlcq_util.Bitset

let query k =
  if k < 1 then invalid_arg "Star.query: k must be positive";
  let graph = Graph.create (k + 1) (List.init k (fun i -> (i, k))) in
  Cq.make graph (List.init k (fun i -> i))

let gamma_is_clique k =
  let gamma = Extension.gamma_graph (query k) in
  Iso.isomorphic gamma (Builders.clique (k + 1))

let count_common_neighbour_tuples g k =
  let n = Graph.num_vertices g in
  let count = ref 0 in
  Wlcq_util.Combinat.iter_tuples n k (fun t ->
      (* a common neighbour of all components of the tuple *)
      let common =
        Array.fold_left
          (fun acc v -> Bitset.inter acc (Graph.neighbours g v))
          (Bitset.full n) t
      in
      if not (Bitset.is_empty common) then incr count);
  !count
