(** Seeded random conjunctive-query generation — workload generators
    for benchmarks and property tests.

    All generators take a {!Wlcq_util.Prng} so that experiment
    workloads are reproducible from their seeds. *)

(** [random_connected rng ~num_vars ~num_free ~edge_prob] draws a
    connected query graph (random spanning tree + extra edges) and
    marks a uniformly random subset of [num_free] variables as free.
    @raise Invalid_argument when [num_free > num_vars] or
    [num_vars < 1]. *)
val random_connected :
  Wlcq_util.Prng.t -> num_vars:int -> num_free:int -> edge_prob:float -> Cq.t

(** [random_star_like rng ~num_free ~centres] draws a generalised star
    query: [num_free] free variables, [centres] quantified centres,
    each free variable attached to a non-empty random subset of the
    centres, centres connected in a path.  These queries interpolate
    between low and high extension width. *)
val random_star_like :
  Wlcq_util.Prng.t -> num_free:int -> centres:int -> Cq.t

(** [quantified_path len] is the bounded-sew family used by bench F3:
    free endpoints joined by a path of [len] quantified variables. *)
val quantified_path : int -> Cq.t
