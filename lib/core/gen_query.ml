module Prng = Wlcq_util.Prng
module Graph = Wlcq_graph.Graph

let random_connected rng ~num_vars ~num_free ~edge_prob =
  if num_vars < 1 then invalid_arg "Gen_query.random_connected: need at least one variable";
  if num_free > num_vars || num_free < 0 then
    invalid_arg "Gen_query.random_connected: bad free-variable count";
  let h = Wlcq_graph.Gen.random_connected rng num_vars edge_prob in
  let vs = Array.init num_vars (fun i -> i) in
  Prng.shuffle rng vs;
  Cq.make h (Array.to_list (Array.sub vs 0 num_free))

let random_star_like rng ~num_free ~centres =
  if num_free < 1 || centres < 1 then
    invalid_arg "Gen_query.random_star_like: need free variables and centres";
  (* vertices: free 0..num_free-1, centres after *)
  let centre j = num_free + j in
  let edges = ref [] in
  (* path over the centres keeps the query connected *)
  for j = 0 to centres - 2 do (* lint: hot-alloc generator: these cells are the output edge list *)
    edges := (centre j, centre (j + 1)) :: !edges
  done;
  for x = 0 to num_free - 1 do
    (* a non-empty random subset of centres *)
    let attached = ref [] in
    for j = 0 to centres - 1 do
      if Prng.bool rng then attached := j :: !attached
    done;
    let attached =
      match !attached with [] -> [ Prng.int rng centres ] | l -> l
    in
    (* lint: hot-alloc generator: these cells are the output edge list *)
    List.iter (fun j -> edges := (x, centre j) :: !edges) attached
  done;
  let h = Graph.create (num_free + centres) !edges in
  Cq.make h (List.init num_free (fun i -> i))

let quantified_path len =
  if len < 1 then invalid_arg "Gen_query.quantified_path: len must be >= 1";
  (* vertices: x1 = 0, x2 = 1, quantified 2 .. len+1 *)
  let edges =
    ((0, 2) :: List.init (len - 1) (fun i -> (2 + i, 3 + i)))
    @ [ (len + 1, 1) ]
  in
  Cq.make (Graph.create (len + 2) edges) [ 0; 1 ]
