(** Extension width and semantic extension width — the paper's width
    measures (Definitions 11–13) and the [F_ℓ] cloning construction.

    - [Γ(H,X)] adds an edge between free variables [u ≠ v] whenever
      some connected component of [H[Y]] is adjacent to both;
    - [ew(H,X) = tw(Γ(H,X))];
    - [sew(H,X)] is the extension width of the counting core;
    - [F_ℓ(H,X)] clones the quantified part [ℓ] times (Definition 13),
      and [ew(H,X) = max_ℓ tw(F_ℓ(H,X))] (Corollary 18). *)

open Wlcq_graph
module Budget = Wlcq_robust.Budget

(** [quantified_components q] lists the connected components of
    [H[Y]]: each entry is [(members, attached)] where [members] are the
    component's vertices and [attached] the free variables adjacent to
    it in [H] (both sorted). *)
val quantified_components : Cq.t -> (int list * int list) list

(** [gamma_graph q] is [Γ(H, X)] (Definition 11). *)
val gamma_graph : Cq.t -> Graph.t

(** [contract q] is the contract [Γ(H,X)[X]] used by the complexity
    classification (Corollary 4), with vertices relabelled to
    [0 .. |X|-1] in free-variable order. *)
val contract : Cq.t -> Graph.t

(** [extension_width q] is [ew(H, X) = tw(Γ(H, X))].  The exact width
    measures reject degraded treewidth bounds: when [budget] trips the
    treewidth search, this {e raises} rather than returning a wrong
    width.
    @raise Budget.Exhausted when [budget] trips. *)
val extension_width : ?budget:Budget.t -> Cq.t -> int

(** [semantic_extension_width q] is [sew(H, X)]: the extension width of
    the counting core (Definition 12).
    @raise Budget.Exhausted when [budget] trips (in the endomorphism
    search or either treewidth computation). *)
val semantic_extension_width : ?budget:Budget.t -> Cq.t -> int

(** [extension_width_upper_bound q] is a certified upper bound on
    [ew(H, X)] — hence on [sew(H, X)], since the core is a retract —
    from the polynomial {!Wlcq_treewidth.Heuristics} bracket.  The
    [`Exhausted] rung of [Wl_dimension.dimension_budgeted] is built on
    this. *)
val extension_width_upper_bound : Cq.t -> int

(** [quantified_star_size q] is the Durand–Mengel star-size invariant:
    the maximum, over connected components [C] of [H[Y]], of the number
    of free variables adjacent to [C] ([0] for full queries). *)
val quantified_star_size : Cq.t -> int

(** The [ℓ]-copy graph [F_ℓ(H, X)] together with the homomorphism
    [γ : F_ℓ → H] of Definition 14 and the copy structure needed by
    the CFI experiments. *)
type f_ell = {
  graph : Graph.t;  (** [F_ℓ(H, X)] *)
  gamma : int array;  (** γ: vertex of [F_ℓ] → variable of [H] *)
  copy : int array;  (** copy index: [0] for free variables, [1..ℓ]
                         for clones of quantified variables *)
  ell : int;
}

(** [f_ell q ell] is [F_ℓ(H, X)].
    @raise Invalid_argument when [ell < 1]. *)
val f_ell : Cq.t -> int -> f_ell

(** [gamma_is_homomorphism fe q] checks Observation 15. *)
val gamma_is_homomorphism : f_ell -> Cq.t -> bool

(** [ew_via_f_ell q ~max_ell] is [max { tw(F_ℓ) | 1 ≤ ℓ ≤ max_ell }] —
    equals [ew q] for large enough [max_ell] (Corollary 18). *)
val ew_via_f_ell : Cq.t -> max_ell:int -> int

(** [minimal_saturating_ell q] is the least [ℓ] with
    [tw(F_ℓ(H,X)) = ew(H,X)] (the witness constructions want the
    smallest, and odd, such [ℓ]).
    @raise Budget.Exhausted when [budget] trips. *)
val minimal_saturating_ell : ?budget:Budget.t -> Cq.t -> int
