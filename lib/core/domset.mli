(** Counting dominating sets (Corollary 6 / Corollary 68).

    A size-k dominating set of [G] is a k-subset [D ⊆ V(G)] such that
    every vertex is in [D] or adjacent to a member of [D].  The paper
    shows the graph parameter [G ↦ |Δ_k(G)|] has WL-dimension exactly
    [k], by expressing it through injective star answers on the
    complement:

    [|Δ_k(G)| = C(n, k) − Inj((S_k, X_k), Ḡ) / k!]

    Three independent implementations are provided and cross-checked in
    the experiments: direct enumeration, the star-reduction above with
    injective answers counted directly, and the same reduction with
    injective answers expanded into the quantum query of Corollary 68. *)

open Wlcq_graph
module Budget = Wlcq_robust.Budget

(** [count_direct k g] enumerates k-subsets and tests domination.
    [budget] is ticked once per candidate subset.
    @raise Budget.Exhausted when [budget] trips. *)
val count_direct : ?budget:Budget.t -> int -> Graph.t -> Wlcq_util.Bigint.t

(** [count_via_stars k g] uses the complement/star reduction with
    direct injective-answer counting.
    @raise Budget.Exhausted when [budget] trips. *)
val count_via_stars :
  ?budget:Budget.t -> int -> Graph.t -> Wlcq_util.Bigint.t

(** [count_via_quantum k g] uses the complement/star reduction with
    the quantum-query expansion {!Quantum.injective_star}. *)
val count_via_quantum : int -> Graph.t -> Wlcq_util.Bigint.t

(** [is_dominating g d] tests whether the vertex set [d] dominates
    [g]. *)
val is_dominating : Graph.t -> int list -> bool
