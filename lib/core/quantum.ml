open Wlcq_graph
module Rat = Wlcq_util.Rat

type term = { coeff : Rat.t; query : Cq.t }
type t = term list

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
  go m 0

let validate q =
  if not (Cq.is_connected q) then
    Error "quantum constituents must be connected"
  else if Cq.is_boolean q then
    Error "quantum constituents must have at least one free variable"
  else Ok ()

let make entries =
  let rec insert acc (coeff, query) =
    match acc with
    | [] -> [ { coeff; query } ]
    | t :: rest ->
      if Cq.isomorphic t.query query then
        { t with coeff = Rat.add t.coeff coeff } :: rest
      else t :: insert rest (coeff, query)
  in
  let rec go acc = function
    | [] ->
      Ok (List.filter (fun t -> not (Rat.is_zero t.coeff)) (List.rev acc))
    | (coeff, query) :: rest ->
      let core = Minimize.counting_core query in
      (match validate core with
       | Error e -> Error e
       | Ok () -> go (insert acc (coeff, core)) rest)
  in
  go [] entries

let make_exn entries =
  match make entries with
  | Ok q -> q
  | Error e -> invalid_arg ("Quantum.make: " ^ e)

let terms q = q

let evaluate q g =
  List.fold_left
    (fun acc t ->
       Rat.add acc
         (Rat.mul t.coeff (Rat.of_int (Cq.count_answers t.query g))))
    Rat.zero q

let hsew q =
  List.fold_left
    (fun acc t -> max acc (Extension.semantic_extension_width t.query))
    0 q

let wl_dimension = hsew

let conjoin q1 q2 =
  let k = Cq.num_free q1 in
  if Cq.num_free q2 <> k then
    invalid_arg "Quantum.conjoin: arity mismatch";
  let xs1 = Cq.free_vars q1 and xs2 = Cq.free_vars q2 in
  let ys1 = Cq.quantified_vars q1 and ys2 = Cq.quantified_vars q2 in
  let l1 = Array.length ys1 and l2 = Array.length ys2 in
  (* layout: free 0..k-1, then Y(q1), then Y(q2) *)
  let map1 = Hashtbl.create 16 and map2 = Hashtbl.create 16 in
  Array.iteri (fun p x -> Hashtbl.replace map1 x p) xs1;
  Array.iteri (fun p x -> Hashtbl.replace map2 x p) xs2;
  Array.iteri (fun j y -> Hashtbl.replace map1 y (k + j)) ys1;
  Array.iteri (fun j y -> Hashtbl.replace map2 y (k + l1 + j)) ys2;
  let edges = ref [] in
  Graph.iter_edges q1.Cq.graph (fun u v ->
      edges := (Hashtbl.find map1 u, Hashtbl.find map1 v) :: !edges);
  Graph.iter_edges q2.Cq.graph (fun u v ->
      edges := (Hashtbl.find map2 u, Hashtbl.find map2 v) :: !edges);
  let graph = Graph.create (k + l1 + l2) !edges in
  Cq.make graph (List.init k (fun i -> i))

let of_union qs =
  let k =
    match qs with
    | [] -> invalid_arg "Quantum.of_union: empty union"
    | q0 :: _ -> Cq.num_free q0
  in
  List.iter
    (fun q ->
       if Cq.num_free q <> k then
         invalid_arg "Quantum.of_union: arity mismatch")
    qs;
  if k = 0 then invalid_arg "Quantum.of_union: queries must have free variables";
  let qs = Array.of_list qs in
  let m = Array.length qs in
  let entries = ref [] in
  (* inclusion–exclusion over non-empty subsets *)
  for mask = 1 to (1 lsl m) - 1 do
    let chosen = ref [] in
    for i = m - 1 downto 0 do
      if (mask lsr i) land 1 = 1 then chosen := qs.(i) :: !chosen
    done;
    let conj =
      match !chosen with
      | [] -> assert false
      | first :: rest -> List.fold_left conjoin first rest
    in
    let sign = if popcount mask mod 2 = 1 then Rat.one else Rat.neg Rat.one in
    (* lint: hot-alloc inclusion–exclusion constructor: the (sign, conj) terms are the output *)
    entries := (sign, conj) :: !entries
  done;
  make_exn (List.rev !entries)

let count_union_answers qs g =
  match qs with
  | [] -> invalid_arg "Quantum.count_union_answers: empty union"
  | first :: _ ->
    let k = Cq.num_free first in
    let n = Graph.num_vertices g in
    let count = ref 0 in
    Wlcq_util.Combinat.iter_tuples n k (fun a ->
        if List.exists (fun q -> Cq.is_answer q g a) qs then incr count);
    !count

(* Signed Stirling numbers of the first kind:
   s(n, m) = s(n-1, m-1) - (n-1)·s(n-1, m). *)
let stirling_first k =
  let s = Array.make_matrix (k + 1) (k + 1) Rat.zero in
  s.(0).(0) <- Rat.one;
  for n = 1 to k do
    for m = 1 to n do
      s.(n).(m) <-
        Rat.sub s.(n - 1).(m - 1) (Rat.mul (Rat.of_int (n - 1)) s.(n - 1).(m))
    done
  done;
  s.(k)

let injective_star k =
  if k < 1 then invalid_arg "Quantum.injective_star: k must be positive";
  let coeffs = stirling_first k in
  make_exn (List.init k (fun i -> (coeffs.(i + 1), Star.query (i + 1))))

(* Möbius function of the partition lattice: Π_B (-1)^(|B|-1)(|B|-1)! *)
let moebius blocks =
  List.fold_left
    (fun acc block ->
       let b = List.length block in
       let sign = if (b - 1) mod 2 = 0 then 1 else -1 in
       let fact =
         List.fold_left ( * ) 1 (List.init (max 0 (b - 1)) (fun i -> i + 1))
       in
       acc * sign * fact)
    1 blocks

(* Identify free variables according to a partition of positions;
   None when the identification creates a self-loop atom. *)
let quotient_by_free_partition q partition =
  let h = q.Cq.graph in
  let n = Graph.num_vertices h in
  let xs = Cq.free_vars q in
  let cls = Array.make n (-1) in
  List.iteri
    (fun block_id block ->
       List.iter (fun p -> cls.(xs.(p)) <- block_id) block)
    partition;
  let blocks = List.length partition in
  let next = ref blocks in
  Array.iteri
    (fun v c ->
       if c < 0 then begin
         cls.(v) <- !next;
         incr next
       end)
    cls;
  match Ops.quotient h cls with
  | quotiented -> Some (Cq.make quotiented (List.init blocks (fun i -> i)))
  | exception Invalid_argument _ -> None

let injective_expansion q =
  if not (Cq.is_connected q) then
    invalid_arg "Quantum.injective_expansion: query must be connected";
  let k = Cq.num_free q in
  if k = 0 then
    invalid_arg "Quantum.injective_expansion: query must have free variables";
  let entries =
    List.filter_map
      (fun partition ->
         match quotient_by_free_partition q partition with
         | None -> None
         | Some quotiented ->
           Some (Rat.of_int (moebius partition), quotiented))
      (Wlcq_util.Combinat.partitions (List.init k (fun i -> i)))
  in
  make_exn entries

let with_free_negations q pairs =
  let k = Cq.num_free q in
  let xs = Cq.free_vars q in
  List.iter
    (fun (a, b) ->
       if a < 0 || a >= k || b < 0 || b >= k then
         invalid_arg "Quantum.with_free_negations: position out of range";
       if a = b then
         invalid_arg "Quantum.with_free_negations: diagonal pair")
    pairs;
  let pairs = Array.of_list pairs in
  let m = Array.length pairs in
  let entries = ref [] in
  for mask = 0 to (1 lsl m) - 1 do
    let extra = ref [] in
    Array.iteri
      (fun i (a, b) -> (* lint: hot-alloc constructor: one edge list per subset of negated pairs, consumed by the query it defines *)
         if (mask lsr i) land 1 = 1 then extra := (xs.(a), xs.(b)) :: !extra)
      pairs;
    let sign = if popcount mask mod 2 = 0 then Rat.one else Rat.neg Rat.one in
    let graph = Ops.add_edges q.Cq.graph !extra in
    let query = Cq.make graph (Array.to_list xs) in (* lint: hot-alloc constructor: each subset's (sign, query) term is the output *)
    entries := (sign, query) :: !entries
  done;
  make_exn (List.rev !entries)

let count_answers_with_negations q pairs g =
  let count = ref 0 in
  Cq.iter_answers q g (fun a ->
      if
        List.for_all
          (fun (i, j) -> not (Graph.adjacent g a.(i) a.(j)))
          pairs
      then incr count);
  !count

let lower_bound_witness ?(max_tensor_size = 3) q =
  (* constituent attaining hsew *)
  let k = hsew q in
  match List.find_opt (fun t -> Extension.semantic_extension_width t.query = k) q with
  | None -> None
  | Some top ->
    (match Wl_dimension.separating_pair ~max_z:2 top.query with
     | exception Invalid_argument _ -> None
     | None -> None
     | Some (g, g') ->
       let separated a b = not (Rat.equal (evaluate q a) (evaluate q b)) in
       if separated g g' then Some (g, g')
       else begin
         (* tensor with small graphs H, as in the Corollary 5 proof *)
         let result = ref None in
         (try
            for n = 1 to max_tensor_size do
              let pairs = ref [] in
              for u = 0 to n - 1 do
                (* lint: hot-alloc vertex pairs of one tensor factor, n ≤ max_tensor_size *)
                for v = u + 1 to n - 1 do pairs := (u, v) :: !pairs done
              done;
              (* lint: hot-alloc flattened once per tensor size, not per mask *)
              let pairs = Array.of_list !pairs in
              let m = Array.length pairs in
              for mask = 0 to (1 lsl m) - 1 do
                let edges = ref [] in
                Array.iteri
                  (* lint: hot-alloc witness search over tensor masks: the
                     graphs built from each edge list dominate these cells *)
                  (fun i e ->
                     if (mask lsr i) land 1 = 1 then edges := e :: !edges)
                  pairs;
                let h = Graph.create n !edges in
                let a = Ops.tensor_product g h in
                let b = Ops.tensor_product g' h in
                if separated a b then begin
                  (* lint: hot-alloc witness found: allocated once on exit *)
                  result := Some (a, b);
                  raise Exit
                end
              done
            done
          with Exit -> ());
         !result
       end)

let pp ppf q =
  let first = ref true in
  List.iter
    (fun t ->
       if not !first then Format.fprintf ppf " + ";
       first := false;
       Format.fprintf ppf "%a·%a" Rat.pp t.coeff Cq.pp t.query)
    q;
  if !first then Format.fprintf ppf "0"
