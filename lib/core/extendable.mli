(** Extendable assignments [𝓔(X, F, W)] (Definition 51) — the
    parity-combinatorial core of the lower bound.

    For a counting-minimal connected query, an odd [ℓ], [F = F_ℓ(H,X)]
    and a twist [W ⊆ X], an assignment [φ : X → V(χ(F,W))] with
    [c(φ(x_p)) = x_p] (so [φ(x_p) = (x_p, S_p)]) is {e extendable}
    when

    - (E1) for every edge [{x_a, x_b}] of [H[X]]:
      [x_a ∈ S_b ⟺ x_b ∈ S_a], and
    - (E2) for every connected component [C_i] of [H[Y]] there is a
      copy [j ∈ [ℓ]] with [Σ_p |S_p ∩ V_i^j|] even.

    Lemma 55 shows [𝓔(X, F, W) = cpAns((H,X), (χ(F,W), c))], and
    Lemma 52 shows [|𝓔(X, F, ∅)| > |𝓔(X, F, {x₁})|] — together these
    give the strict answer-count gap of Lemma 57.  This module
    evaluates both sides independently so the experiments can certify
    the equality and the strict inequality. *)

(** A prepared setting tying together the query core, [F_ℓ], and one
    CFI graph over it. *)
type t

(** [make core f chi] prepares the setting.  [core] must be the
    counting-minimal query that [f] was built from, and [chi] a CFI
    graph over [f.graph] whose twist is a subset of the free-variable
    vertices. *)
val make : Cq.t -> Extension.f_ell -> Wlcq_cfi.Cfi.t -> t

(** [is_extendable t phi] checks (E1) and (E2) for an assignment given
    as an array of CFI-vertex indices, parallel to the free variables.
    The assignment must already satisfy [c(φ(x_p)) = x_p].
    @raise Invalid_argument when some [φ(x_p)] does not project to
    [x_p]. *)
val is_extendable : t -> int array -> bool

(** [count t] is [|𝓔(X, F, W)|], by enumeration over the CFI fibres of
    the free variables. *)
val count : t -> int

(** [count_cp_answers t] is [|cpAns((H,X), (χ(F,W), c))|] computed via
    the generic answer-counting machinery — Lemma 55 asserts it equals
    [count t]. *)
val count_cp_answers : t -> int

(** [class_counts t] is the partition of [𝓔(X, F, W)] from the proof
    of Lemma 52: element [i] of the returned array ([1 ≤ i ≤ m], one
    per quantified component) counts [𝓔(X, F, W, i)] — the extendable
    assignments whose first witness of (E2) with copy index [j > 1]
    happens at component [i] — and element [0] counts the remainder
    [𝓔(X, F, W, 0)].  The proof's three claims become checkable
    numerics: [|𝓔(∅, i)| = |𝓔({x₁}, i)|] for [i ≥ 1] (Claim 1, via a
    path-switching bijection), [|𝓔(∅, 0)| > 0] (Claim 2) and
    [|𝓔({x₁}, 0)| = 0] (Claim 3). *)
val class_counts : t -> int array
