open Wlcq_graph
module Bigint = Wlcq_util.Bigint

type t = { name : string; value : Graph.t -> string }

let of_int name f = { name; value = (fun g -> string_of_int (f g)) }
let of_bigint name f = { name; value = (fun g -> Bigint.to_string (f g)) }

let of_query name q =
  { name; value = (fun g -> string_of_int (Cq.count_answers q g)) }

let witness_pairs () =
  let cfi base =
    let even, odd = Wlcq_cfi.Pairs.twisted_pair base in
    (even.Wlcq_cfi.Cfi.graph, odd.Wlcq_cfi.Cfi.graph)
  in
  let c4e, c4o = cfi (Builders.cycle 4) in
  let k4e, k4o = cfi (Builders.clique 4) in
  [
    ("2K3/C6", 1, Builders.two_triangles (), Builders.cycle 6);
    ("chi(C4)", 1, c4e, c4o);
    ("chi(K4)", 2, k4e, k4o);
    ("shrikhande/rook", 2, Builders.shrikhande (), Builders.rook ());
  ]

let dimension_lower_bound p =
  List.fold_left
    (fun acc (name, k, g1, g2) ->
       if p.value g1 <> p.value g2 then
         match acc with
         | Some (best, _) when best >= k + 1 -> acc
         | _ -> Some (k + 1, name)
       else acc)
    None (witness_pairs ())

let invariant_on_pairs p ~dim =
  List.for_all
    (fun (_, k, g1, g2) -> k < dim || p.value g1 = p.value g2)
    (witness_pairs ())

let standard_library () =
  [
    of_int "num-vertices" Graph.num_vertices;
    of_int "num-edges" Graph.num_edges;
    of_int "max-degree" Graph.max_degree;
    of_int "degeneracy" (fun g -> snd (Traversal.degeneracy_order g));
    of_int "girth" (fun g ->
        match Traversal.girth g with Some v -> v | None -> -1);
    of_int "triangles" (fun g ->
        Wlcq_hom.Inj.count_subgraph_copies (Builders.clique 3) g);
    of_bigint "charpoly-c0" (fun g ->
        (Spectral.characteristic_polynomial g).(0));
    { name = "charpoly";
      value =
        (fun g ->
           String.concat ","
             (Array.to_list
                (Array.map Bigint.to_string
                   (Spectral.characteristic_polynomial g)))) };
    of_bigint "domsets-2" (Domset.count_direct 2);
    of_bigint "domsets-3" (Domset.count_direct 3);
    of_query "star2-answers" (Star.query 2);
    of_query "star3-answers" (Star.query 3);
  ]
