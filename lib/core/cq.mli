(** Conjunctive queries over graphs (Definitions 7–9).

    Following the paper, a conjunctive query is a pair [(H, X)]: a
    graph [H] whose vertices are the variables, with [X ⊆ V(H)] the
    free variables and [Y = V(H) \ X] the existentially quantified
    ones.  An answer in a data graph [G] is an assignment
    [a : X → V(G)] that extends to a homomorphism [H → G]
    (Definition 8).

    Assignments are represented as integer arrays parallel to
    {!free_vars} (which lists [X] in increasing vertex order). *)

open Wlcq_graph
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome

type t = private {
  graph : Graph.t;  (** the query graph [H] *)
  free : Wlcq_util.Bitset.t;  (** the free variables [X] *)
}

(** [make h xs] is the query [(h, xs)].
    @raise Invalid_argument when [xs] contains duplicates or
    out-of-range vertices. *)
val make : Graph.t -> int list -> t

(** [free_vars q] is [X] in increasing order. *)
val free_vars : t -> int array

(** [quantified_vars q] is [Y = V(H) \ X] in increasing order. *)
val quantified_vars : t -> int array

(** [num_free q] is [|X|]. *)
val num_free : t -> int

(** [is_full q] holds when [X = V(H)] (no quantified variables). *)
val is_full : t -> bool

(** [is_boolean q] holds when [X = ∅]. *)
val is_boolean : t -> bool

(** [is_connected q] tests connectivity of [H] (Definition 7). *)
val is_connected : t -> bool

(** [is_answer q g a] tests whether the assignment [a] (parallel to
    [free_vars q]) extends to a homomorphism. *)
val is_answer : t -> Graph.t -> int array -> bool

(** [count_answers q g] is [|Ans(q, g)|].  [budget] is ticked once per
    candidate assignment.
    @raise Budget.Exhausted when [budget] trips. *)
val count_answers : ?budget:Budget.t -> t -> Graph.t -> int

(** Non-raising variant: [`Exhausted (partial, r)] carries the answers
    counted before the trip — enumeration order is fixed, so a sound
    lower bound on [|Ans(q, g)|].  Bumps
    [robust.fallback.ans_partial]. *)
val count_answers_budgeted :
  budget:Budget.t -> t -> Graph.t -> (int, int * Budget.reason) Outcome.t

(** [iter_answers q g f] applies [f] to every answer; the array is
    reused between calls.
    @raise Budget.Exhausted when [budget] trips. *)
val iter_answers :
  ?budget:Budget.t -> t -> Graph.t -> (int array -> unit) -> unit

(** [answers q g] lists all answers. *)
val answers : t -> Graph.t -> int array list

(** [count_answers_injective q g] counts the injective answers
    [Inj(q, g)] of Corollary 68 (the assignment must be injective; the
    extension to [Y] is unconstrained).
    @raise Budget.Exhausted when [budget] trips. *)
val count_answers_injective : ?budget:Budget.t -> t -> Graph.t -> int

(** [count_answers_tau q g ~c ~tau] is [|Ans^τ(q, (g, c))|] of
    Definition 36: answers [a] with [c(a(x)) = tau(x)] for each free
    variable — [c] is an [H]-colouring of [g] and [tau] maps free-var
    positions to vertices of [H]. *)
val count_answers_tau : t -> Graph.t -> c:int array -> tau:int array -> int

(** [count_cp_answers q g ~c] is [|cpAns(q, (g, c))|] of Definition 48:
    answers extendable to a {e colour-prescribed} homomorphism
    ([c(h(v)) = v] for all variables [v], free and quantified). *)
val count_cp_answers : t -> Graph.t -> c:int array -> int

(** [isomorphic q1 q2] tests query isomorphism: a graph isomorphism
    mapping free variables onto free variables (Section 2.1). *)
val isomorphic : t -> t -> bool

(** [partial_automorphisms q] is [Aut(H, X)] of Definition 42: the
    restrictions to [X] of automorphisms of [H] that preserve [X]
    setwise, as arrays over free-variable positions (position [i]
    holds the position of the image of the [i]-th free variable). *)
val partial_automorphisms : t -> int array list

(** [relabel q p] renames the variables by the permutation [p]. *)
val relabel : t -> Wlcq_util.Perm.t -> t

(** [normal_form q] is the canonical representative of [q]'s
    isomorphism class (free variables respected, Definition 9):
    [(nf, p, digest)] with [nf = relabel q p] the canonically labelled
    query and [digest] a stable content address — isomorphic queries
    get identical [nf] and [digest].  [limit] bounds the underlying
    individualization–refinement search
    ({!Wlcq_graph.Iso.canonical_form}). *)
val normal_form : ?limit:int -> t -> t * Wlcq_util.Perm.t * string

(** [pp] prints as [(graph(...), X={...})]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
