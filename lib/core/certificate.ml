open Wlcq_graph
module Bigint = Wlcq_util.Bigint

type lower_bound = {
  f_treewidth : int;
  ell : int;
  ans_id_even : int;
  ans_id_odd : int;
  extendable_matches : bool;
  pair_equivalent : bool option;
  separating : (Graph.t * Graph.t * int * int) option;
}

type t = {
  query : Cq.t;
  core : Cq.t;
  dimension : int;
  sample : Graph.t;
  sample_direct : int;
  sample_interpolated : Bigint.t;
  lower : lower_bound option;
}

(* The interpolation system has |V(sample)|^|Y| unknowns; pick the
   largest sample (among small cycles / K2) keeping it modest. *)
let default_sample core =
  let y = Array.length (Cq.quantified_vars core) in
  let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
  let rec pick n = if n <= 3 then n else if pow n y <= 32 then n else pick (n - 1) in
  let n = if y = 0 then 5 else pick 5 in
  if pow n y > 32 || n < 3 then Builders.clique 2 else Builders.cycle n

let certify ?sample ?(max_equivalence_check = 2) q =
  if not (Cq.is_connected q) then
    invalid_arg "Certificate.certify: query must be connected";
  if Cq.is_boolean q then
    invalid_arg "Certificate.certify: query must have a free variable";
  let core = Minimize.counting_core q in
  let sample =
    match sample with Some g -> g | None -> default_sample core
  in
  let dimension = Extension.extension_width core in
  let sample_direct = Cq.count_answers q sample in
  let sample_interpolated = Wl_dimension.answers_via_interpolation q sample in
  let lower =
    if Cq.is_full core then None
    else begin
      let w = Wl_dimension.lower_bound_witness q in
      let ans_id_even, ans_id_odd = Wl_dimension.ans_id_counts w in
      let check_twist chi =
        let s = Extendable.make w.Wl_dimension.core w.Wl_dimension.f chi in
        Extendable.count s = Extendable.count_cp_answers s
      in
      let extendable_matches =
        check_twist w.Wl_dimension.even && check_twist w.Wl_dimension.odd
      in
      let pair_equivalent =
        if dimension - 1 >= 1 && dimension - 1 <= max_equivalence_check then
          Some (Wl_dimension.witness_pair_equivalent w (dimension - 1))
        else None
      in
      let separating =
        match Wl_dimension.separating_pair ~max_z:2 q with
        | None -> None
        | Some (g1, g2) ->
          Some (g1, g2, Cq.count_answers q g1, Cq.count_answers q g2)
      in
      Some
        {
          f_treewidth =
            Wlcq_treewidth.Exact.treewidth w.Wl_dimension.f.Extension.graph;
          ell = w.Wl_dimension.f.Extension.ell;
          ans_id_even;
          ans_id_odd;
          extendable_matches;
          pair_equivalent;
          separating;
        }
    end
  in
  { query = q; core; dimension; sample; sample_direct; sample_interpolated;
    lower }

let is_valid c =
  Minimize.is_counting_minimal c.core
  && c.dimension = Extension.extension_width c.core
  && c.dimension = Wl_dimension.dimension c.query
  && Bigint.equal c.sample_interpolated (Bigint.of_int c.sample_direct)
  && c.sample_direct = Cq.count_answers c.query c.sample
  &&
  match c.lower with
  | None -> Cq.is_full c.core
  | Some l ->
    l.f_treewidth = c.dimension
    && l.ell mod 2 = 1
    && l.ans_id_even > l.ans_id_odd
    && l.extendable_matches
    && (match l.pair_equivalent with Some false -> false | None | Some true -> true)
    && (match l.separating with
        | None -> true
        | Some (g1, g2, c1, c2) ->
          c1 <> c2
          && c1 = Cq.count_answers c.query g1
          && c2 = Cq.count_answers c.query g2)

let pp ppf c =
  let f = Format.fprintf in
  f ppf "query:           %s@." (Parser.to_formula c.query);
  f ppf "counting core:   %s@." (Parser.to_formula c.core);
  f ppf "WL-dimension:    %d  (Theorem 1: sew of the core)@." c.dimension;
  f ppf "@.upper bound (Lemma 22 / Observation 23):@.";
  f ppf "  on %a:@." Graph.pp c.sample;
  f ppf "  direct count %d = interpolated %s from |Hom(F_ell, .)| counts@."
    c.sample_direct
    (Bigint.to_string c.sample_interpolated);
  match c.lower with
  | None ->
    f ppf "@.lower bound: core is a full query — covered by Neuen's@.";
    f ppf "theorem (dimension = treewidth), no F_ell construction needed@."
  | Some l ->
    f ppf "@.lower bound (Section 4):@.";
    f ppf "  F = F_%d(core), tw(F) = %d@." l.ell l.f_treewidth;
    f ppf "  Ans^id on chi(F, {}) / chi(F, {x1}): %d > %d  (Lemma 57)@."
      l.ans_id_even l.ans_id_odd;
    f ppf "  extendable sets = cpAns on both twists: %b  (Lemma 55)@."
      l.extendable_matches;
    (match l.pair_equivalent with
     | Some b -> f ppf "  chi pair (k-1)-WL-equivalent: %b  (Lemma 35)@." b
     | None -> f ppf "  chi pair (k-1)-WL-equivalence: skipped (k too large)@.");
    (match l.separating with
     | Some (g1, _, c1, c2) ->
       f ppf "  separating pair via cloning (Lemma 40): |Ans| = %d vs %d@."
         c1 c2;
       f ppf "  (graphs on %d vertices; export with wlcq witness --emit-g6)@."
         (Graph.num_vertices g1)
     | None -> f ppf "  no separating pair found within the z-bound@.")
