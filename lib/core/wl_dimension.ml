open Wlcq_graph
module Bitset = Wlcq_util.Bitset
module Bigint = Wlcq_util.Bigint
module Rat = Wlcq_util.Rat
module Cfi = Wlcq_cfi.Cfi
module Cloning = Wlcq_cfi.Cloning
module Obs = Wlcq_obs.Obs
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome

let m_cache_hits = Obs.counter "wl_dimension.cache_hits"
let m_cache_misses = Obs.counter "wl_dimension.cache_misses"
let m_interval = Obs.counter "robust.fallback.dim_interval"

(* ------------------------------------------------------------------ *)
(* Theorem 1 (with the Section 1.3 extensions for empty X and          *)
(* disconnected queries)                                               *)
(* ------------------------------------------------------------------ *)

let components_as_queries q =
  let h = q.Cq.graph in
  List.map
    (fun members ->
       let sub, back = Ops.induced h members in
       let free =
         List.filteri
           (fun i _ -> Bitset.mem q.Cq.free back.(i))
           (List.init (List.length members) (fun i -> i))
       in
       Cq.make sub free)
    (Traversal.component_members h)

let rec dimension_exact ~budget q =
  let h = q.Cq.graph in
  if Graph.num_vertices h = 0 then 0
  else if not (Cq.is_connected q) then
    (* (A): maximum over connected components *)
    List.fold_left
      (fun acc sq -> max acc (dimension_exact ~budget sq))
      0 (components_as_queries q)
  else if Cq.is_boolean q then
    (* (B): counting answers = deciding hom existence; the dimension is
       the treewidth of the homomorphic core.  A degraded treewidth
       bound is not the dimension, so it re-raises. *)
    match
      Wlcq_treewidth.Exact.treewidth_budgeted ~budget
        (Minimize.counting_core ~budget q).Cq.graph
    with
    | `Exact w -> w
    | `Degraded (_, r) -> raise (Budget.Exhausted r.Outcome.cause)
    | `Exhausted _ -> assert false
  else Extension.semantic_extension_width ~budget q

let dimension q = dimension_exact ~budget:Budget.unlimited q

(* Certified upper bound, mirroring the recursion of [dimension] with
   the polynomial {!Wlcq_treewidth.Heuristics} bracket in place of
   exact treewidth and no core minimisation (both only lower the
   value).  Always cheap, never budgeted. *)
(* lint: allow R7 degraded fallback that runs after the budget has
   tripped — polling here would raise Exhausted immediately *)
let rec dimension_upper_bound q =
  let h = q.Cq.graph in
  if Graph.num_vertices h = 0 then 0
  else if not (Cq.is_connected q) then
    List.fold_left
      (fun acc sq -> max acc (dimension_upper_bound sq))
      0 (components_as_queries q)
  else if Cq.is_boolean q then Wlcq_treewidth.Heuristics.upper_bound h
  else Extension.extension_width_upper_bound q

(* lint: allow R8 Invalid_argument is Cq.make validation on the
   component split — an internal invariant, not a budget outcome *)
let dimension_budgeted ~budget q =
  Obs.entry_point "wl_dimension.dimension" @@ fun () ->
  match dimension_exact ~budget q with
  | d -> `Exact d
  | exception Budget.Exhausted r ->
    Obs.incr m_interval;
    let ub = dimension_upper_bound q in
    Obs.journal ~severity:Obs.Warn
      ~attrs:
        [ ("reason", Budget.reason_to_string r);
          ("upper_bound", string_of_int ub) ]
      "wl_dimension.interval";
    `Exhausted ((0, ub), r)

(* ------------------------------------------------------------------ *)
(* Lower-bound witness (Section 4)                                     *)
(* ------------------------------------------------------------------ *)

type witness = {
  core : Cq.t;
  f : Extension.f_ell;
  x1 : int;
  even : Cfi.t;
  odd : Cfi.t;
  colouring_even : int array;
  colouring_odd : int array;
}

let lower_bound_witness ?budget q =
  let core = Minimize.counting_core ?budget q in
  if not (Cq.is_connected core) then
    invalid_arg "Wl_dimension.lower_bound_witness: query must be connected";
  if Cq.is_boolean core then
    invalid_arg "Wl_dimension.lower_bound_witness: query has no free variables";
  if Cq.is_full core then
    invalid_arg
      "Wl_dimension.lower_bound_witness: core is a full query (covered by \
       Neuen's theorem; no F_ell construction needed)";
  (* smallest odd ℓ with tw(F_ℓ) = ew(core); treewidth is monotone in ℓ
     and capped at ew (Lemma 16), so bumping to the next odd value is
     safe *)
  let ell0 = Extension.minimal_saturating_ell ?budget core in
  let ell = if ell0 mod 2 = 1 then ell0 else ell0 + 1 in
  let f = Extension.f_ell core ell in
  (* x₁: a free variable adjacent to a quantified one; its F-vertex is
     its position among the free variables (Extension.f_ell places the
     free variables first) *)
  let xs = Cq.free_vars core in
  let x1 =
    let h = core.Cq.graph in
    let adjacent_to_y p =
      List.exists
        (fun w -> not (Bitset.mem core.Cq.free w))
        (Graph.neighbours_list h xs.(p))
    in
    let rec find p =
      if p >= Array.length xs then
        invalid_arg
          "Wl_dimension.lower_bound_witness: no free variable adjacent to a \
           quantified one (impossible for connected non-full queries)"
      else if adjacent_to_y p then p
      else find (p + 1)
    in
    find 0
  in
  let even =
    Cfi.build ?budget f.Extension.graph
      (Bitset.create (Graph.num_vertices f.Extension.graph))
  in
  let odd =
    Cfi.build ?budget f.Extension.graph
      (Bitset.singleton (Graph.num_vertices f.Extension.graph) x1)
  in
  let colouring (chi : Cfi.t) =
    Array.map (fun v -> f.Extension.gamma.(v)) chi.Cfi.projection
  in
  {
    core;
    f;
    x1;
    even;
    odd;
    colouring_even = colouring even;
    colouring_odd = colouring odd;
  }

let identity_tau w = Cq.free_vars w.core

let ans_id_counts w =
  let tau = identity_tau w in
  ( Cq.count_answers_tau w.core w.even.Cfi.graph ~c:w.colouring_even ~tau,
    Cq.count_answers_tau w.core w.odd.Cfi.graph ~c:w.colouring_odd ~tau )

let cp_ans_counts w =
  ( Cq.count_cp_answers w.core w.even.Cfi.graph ~c:w.colouring_even,
    Cq.count_cp_answers w.core w.odd.Cfi.graph ~c:w.colouring_odd )

(* The k-WL oracle is called repeatedly on the same CFI pairs (per
   candidate k by the callers, and per query sharing a core by the
   bench tables), and a k-WL run is by far the costliest step of the
   pipeline — memoise verdicts per (k, pair) in the shared
   content-addressed tier.  The verdict is isomorphism-invariant, so
   keying on canonical digests lets relabelled copies of a pair share
   one entry; the two addresses are ordered so both argument orders do
   too. *)
let equivalent_store =
  Wlcq_cache.Cache.store ~name:"wl_dimension.equivalent"
    ~words:(fun (_ : bool) -> 1)
    ()

let equivalent_cached k g1 g2 =
  if not (Wlcq_cache.Cache.enabled ()) then
    Wlcq_wl.Equivalence.equivalent k g1 g2
  else begin
    let a1, _ = Wlcq_cache.Cache.address g1 in
    let a2, _ = Wlcq_cache.Cache.address g2 in
    let a1, a2 = if String.compare a1 a2 <= 0 then (a1, a2) else (a2, a1) in
    let key = string_of_int k ^ "|" ^ a1 ^ "|" ^ a2 in
    match Wlcq_cache.Cache.find equivalent_store key with
    | Some v ->
      Obs.incr m_cache_hits;
      v
    | None ->
      Obs.incr m_cache_misses;
      let v = Wlcq_wl.Equivalence.equivalent k g1 g2 in
      Wlcq_cache.Cache.add equivalent_store key v;
      v
  end

let witness_pair_equivalent w k =
  equivalent_cached k w.even.Cfi.graph w.odd.Cfi.graph

let separating_pair ?(max_z = 3) q =
  let w = lower_bound_witness q in
  let k = Cq.num_free w.core in
  let clone_both spec =
    let build (chi : Cfi.t) =
      Cloning.clone ~g:chi.Cfi.graph ~f:w.f.Extension.graph
        ~c:chi.Cfi.projection spec
    in
    (build w.even, build w.odd)
  in
  let result = ref None in
  (try
     Wlcq_util.Combinat.iter_tuples max_z k (fun t ->
         let spec = Array.to_list (Array.mapi (fun p z -> (p, z + 1)) t) in
         let ge, go = clone_both spec in
         let ce = Cq.count_answers w.core ge.Cloning.graph in
         let co = Cq.count_answers w.core go.Cloning.graph in
         if ce <> co then begin
           result := Some (ge.Cloning.graph, go.Cloning.graph);
           raise Exit
         end)
   with Exit -> ());
  !result

(* ------------------------------------------------------------------ *)
(* Upper bound: interpolation (Lemma 22 / Observation 23)              *)
(* ------------------------------------------------------------------ *)

let answers_via_interpolation ?budget ?(max_system = 64) q g =
  let core = Minimize.counting_core ?budget q in
  if Cq.is_full core then
    (* no quantified variables: answers are homomorphisms *)
    Wlcq_hom.Td_count.count ?budget core.Cq.graph g
  else begin
    let y_count = Array.length (Cq.quantified_vars core) in
    let n = Graph.num_vertices g in
    if n = 0 then Bigint.zero
    else begin
      (* n̂ = |Ω| = number of functions Y → V(G) *)
      let n_hat =
        let rec pow acc i = if i = 0 then acc else pow (acc * n) (i - 1) in
        pow 1 y_count
      in
      if n_hat > max_system then
        invalid_arg
          (Printf.sprintf
             "Wl_dimension.answers_via_interpolation: system size %d exceeds \
              the limit %d"
             n_hat max_system);
      (* |Hom(F_ℓ, G)| = Σ_{i=1}^{n̂} a_i · i^ℓ where a_i sums the
         answer classes whose extension set has size i, and
         |Ans| = Σ_i a_i (proof of Lemma 22).  The extension family
         F_1 ⊆ … ⊆ F_n̂ shares one decomposition and one candidate
         structure through the batch entry point. *)
      let patterns =
        List.init n_hat (fun i ->
            (Extension.f_ell core (i + 1)).Extension.graph)
      in
      let rhs = Array.of_list (Wlcq_hom.Td_count.count_many ?budget patterns g) in
      let nodes = Array.init n_hat (fun i -> Bigint.of_int (i + 1)) in
      let coeffs = Wlcq_util.Linalg.vandermonde_solve nodes rhs in
      let total = Array.fold_left Rat.add Rat.zero coeffs in
      match Rat.to_bigint_opt total with
      | Some v -> v
      | None ->
        failwith
          "Wl_dimension.answers_via_interpolation: non-integer total \
           (interpolation bug)"
    end
  end
