type t = Cq.t list

let make qs =
  match qs with
  | [] -> invalid_arg "Ucq.make: empty union"
  | first :: _ ->
    let k = Cq.num_free first in
    if k = 0 then invalid_arg "Ucq.make: disjuncts need free variables";
    List.iter
      (fun q ->
         if Cq.num_free q <> k then invalid_arg "Ucq.make: arity mismatch";
         if not (Cq.is_connected q) then
           invalid_arg "Ucq.make: disjuncts must be connected")
      qs;
    qs

let of_string s =
  match Parser.parse_union s with
  | Error e -> Error e
  | Ok parsed ->
    (try Ok (make (List.map (fun p -> p.Parser.query) parsed))
     with Invalid_argument e -> Error e)

let disjuncts u = u

let count_answers u g = Quantum.count_union_answers u g

let to_quantum u = Quantum.of_union u

let wl_dimension u = Quantum.hsew (to_quantum u)
