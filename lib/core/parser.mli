(** A textual surface syntax for conjunctive queries.

    Queries are written in the paper's style, e.g. the 2-star
    [φ(x1, x2) = ∃y : E(x1,y) ∧ E(x2,y)] becomes

    {v (x1, x2) := exists y . E(x1, y) & E(x2, y) v}

    Grammar (whitespace-insensitive):
    {v
    query  ::= '(' [idents] ')' ':=' [ 'exists' ident+ '.' ] atoms
    atoms  ::= atom ('&' atom)*
    atom   ::= 'E' '(' ident ',' ident ')'
    idents ::= ident (',' ident)*
    v}

    Free variables are listed in the head; every other variable must be
    declared after [exists].  Since the data model is simple graphs,
    atoms [E(z, z)] are rejected (they are unsatisfiable and the paper
    excludes self-loops).  Duplicate atoms are merged. *)

type parsed = {
  query : Cq.t;
  names : string array;  (** variable name of each vertex of [H] *)
}

(** [parse s] parses a query, assigning vertex ids to free variables
    first (in head order) and then to existential variables (in
    declaration order). *)
val parse : string -> (parsed, string) result

(** [parse_exn s] is [parse], raising [Invalid_argument] on errors. *)
val parse_exn : string -> parsed

(** [parse_union s] parses a union of conjunctive queries sharing one
    head, with disjuncts separated by ['|'] and independently scoped
    existential variables, e.g.

    {v (x1, x2) := E(x1, x2) | exists y . E(x1, y) & E(y, x2) v}

    Returns one parsed query per disjunct (all with the head's free
    variables). *)
val parse_union : string -> (parsed list, string) result

(** [parse_union_exn s] raises [Invalid_argument] on errors. *)
val parse_union_exn : string -> parsed list

(** [to_formula ?names q] renders a query back to the surface syntax.
    Default names are [x1, x2, …] for free and [y1, y2, …] for
    quantified variables. *)
val to_formula : ?names:string array -> Cq.t -> string
