open Wlcq_graph
module Bitset = Wlcq_util.Bitset
module Cfi = Wlcq_cfi.Cfi

type t = {
  core : Cq.t;
  f : Extension.f_ell;
  chi : Cfi.t;
  fibres : int list array;
      (* per free position p: CFI vertices projecting to F-vertex p *)
  copy_blocks : Bitset.t array array;
      (* copy_blocks.(i).(j-1) = V_i^j as a set of F-vertices *)
}

let make core f chi =
  if not (Graph.equal chi.Cfi.base f.Extension.graph) then
    invalid_arg "Extendable.make: CFI graph is not over F";
  let k = Cq.num_free core in
  Bitset.iter
    (fun v ->
       if v >= k then
         invalid_arg "Extendable.make: twist must be a set of free variables")
    chi.Cfi.twist;
  let fibres = Array.make k [] in
  Array.iteri
    (fun i w -> if w < k then fibres.(w) <- i :: fibres.(w))
    chi.Cfi.projection;
  (* components C_1..C_m of H[Y], then their per-copy vertex sets in F *)
  let h = core.Cq.graph in
  let ys = Array.to_list (Cq.quantified_vars core) in
  let comps =
    if List.is_empty ys then []
    else begin
      let sub, back = Ops.induced h ys in
      List.map
        (List.map (fun v -> back.(v)))
        (Traversal.component_members sub)
    end
  in
  let nf = Graph.num_vertices f.Extension.graph in
  let copy_blocks =
    Array.of_list
      (List.map
         (fun members ->
            Array.init f.Extension.ell (fun j ->
                let s = Bitset.create nf in
                for v = 0 to nf - 1 do
                  if f.Extension.copy.(v) = j + 1
                     && List.mem f.Extension.gamma.(v) members
                  then Bitset.set s v
                done;
                s))
         comps)
  in
  { core; f; chi; fibres; copy_blocks }

let subsets_of t phi =
  Array.mapi
    (fun p v ->
       if t.chi.Cfi.projection.(v) <> p then
         invalid_arg
           "Extendable.subsets_of: assignment does not project to the free \
            variables";
       t.chi.Cfi.subset.(v))
    phi

let is_extendable t phi =
  let s = subsets_of t phi in
  let k = Array.length s in
  let xs = Cq.free_vars t.core in
  let pos = Hashtbl.create 8 in
  Array.iteri (fun p x -> Hashtbl.replace pos x p) xs;
  (* (E1) over the edges of H[X]; the F-vertex of free position p is p *)
  let e1 = ref true in
  Graph.iter_edges t.core.Cq.graph (fun u v ->
      match (Hashtbl.find_opt pos u, Hashtbl.find_opt pos v) with
      | Some a, Some b ->
        if Bitset.mem s.(b) a <> Bitset.mem s.(a) b then e1 := false
      | _ -> ());
  !e1
  && Array.for_all
    (fun blocks ->
       Array.exists
         (fun block ->
            let total = ref 0 in
            for p = 0 to k - 1 do
              total := !total + Bitset.cardinal (Bitset.inter s.(p) block)
            done;
            !total mod 2 = 0)
         blocks)
    t.copy_blocks

let count t =
  let k = Cq.num_free t.core in
  let phi = Array.make k 0 in
  let total = ref 0 in
  let rec go p =
    if p = k then begin
      if is_extendable t phi then incr total
    end
    else
      List.iter
        (fun v ->
           phi.(p) <- v;
           go (p + 1))
        t.fibres.(p)
  in
  go 0;
  !total

(* The Lemma 52 partition: the class of an extendable assignment is
   the least component index i whose (E2) condition is witnessed by a
   copy j > 1, or 0 when every component's only even copy is j = 1. *)
let class_of t phi =
  let s = subsets_of t phi in
  let k = Array.length s in
  let witnessed_above_one blocks =
    let found = ref false in
    Array.iteri
      (fun j block ->
         if j >= 1 then begin
           let total = ref 0 in
           for p = 0 to k - 1 do
             total := !total + Bitset.cardinal (Bitset.inter s.(p) block)
           done;
           if !total mod 2 = 0 then found := true
         end)
      blocks;
    !found
  in
  let m = Array.length t.copy_blocks in
  let rec go i =
    if i >= m then 0
    else if witnessed_above_one t.copy_blocks.(i) then i + 1
    else go (i + 1)
  in
  go 0

let class_counts t =
  let m = Array.length t.copy_blocks in
  let counts = Array.make (m + 1) 0 in
  let k = Cq.num_free t.core in
  let phi = Array.make k 0 in
  let rec go p =
    if p = k then begin
      if is_extendable t phi then begin
        let c = class_of t phi in
        counts.(c) <- counts.(c) + 1
      end
    end
    else
      List.iter
        (fun v ->
           phi.(p) <- v;
           go (p + 1))
        t.fibres.(p)
  in
  go 0;
  counts

let count_cp_answers t =
  let c =
    Array.map (fun v -> t.f.Extension.gamma.(v)) t.chi.Cfi.projection
  in
  Cq.count_cp_answers t.core t.chi.Cfi.graph ~c
