(** The weighted-skeleton semantics of acyclic queries — the machinery
    of Observation 62's proof.

    For a connected acyclic query [(H, X)], the proof of Observation 62
    contracts each quantified path between two free variables into a
    weighted edge ([w] = number of internal quantified vertices) and
    reads answers as maps [φ : X → V(G)] such that every weighted edge
    [{x₁, x₂}] admits a walk of length [w + 1] between the images —
    valid over graphs without isolated vertices (dangling quantified
    subtrees are then vacuous: every vertex of positive degree starts
    walks of all lengths).

    {b Reproduction note.}  The proof calls the contracted object a
    tree, but for star-like queries it is not: a quantified component
    adjacent to three or more free variables (e.g. the k-star for
    [k ≥ 3]) contracts to a clique, and its "common neighbour"
    constraint is strictly stronger than the pairwise walk
    constraints.  The walk semantics is therefore faithful exactly
    when every quantified component is adjacent to at most two free
    variables — {!skeleton} reports this — while Observation 62's
    {e statement} holds for all acyclic queries (experiment T7 checks
    stars up to k = 4 on [2K₃]/[C₆] directly). *)

open Wlcq_graph

type skeleton = {
  arity : int;  (** number of free variables *)
  constraints : (int * int * int) list;
      (** [(a, b, w)]: free positions joined by a quantified path with
          [w] internal vertices ([w = 0] for direct [H[X]] edges);
          multi-edges between the same pair are kept *)
  faithful : bool;
      (** true when every quantified component touches ≤ 2 free
          variables, so the walk semantics below is exact *)
}

(** [skeleton q] contracts a connected acyclic query.
    @raise Invalid_argument when [q] is not connected/acyclic or has
    no free variable. *)
val skeleton : Cq.t -> skeleton

(** [count_answers_walks q g] counts answers through the walk
    semantics.  Requires a faithful skeleton and a data graph without
    isolated vertices.
    @raise Invalid_argument otherwise. *)
val count_answers_walks : Cq.t -> Graph.t -> int

(** [walk_exists g u v len] tests for a (not necessarily simple) walk
    of length exactly [len] from [u] to [v]. *)
val walk_exists : Graph.t -> int -> int -> int -> bool
