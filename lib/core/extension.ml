open Wlcq_graph
module Bitset = Wlcq_util.Bitset
module Budget = Wlcq_robust.Budget

(* Exact treewidth under a budget: a [`Degraded] heuristic bound is
   useless to the *exact* width measures below, so it re-raises — the
   callers ([Wl_dimension.dimension_budgeted]) catch and fall back to
   their own certified intervals. *)
let exact_tw ~budget g =
  match Wlcq_treewidth.Exact.treewidth_budgeted ~budget g with
  | `Exact w -> w
  | `Degraded (_, r) -> raise (Budget.Exhausted r.Wlcq_robust.Outcome.cause)
  | `Exhausted _ -> assert false (* treewidth_budgeted never exhausts *)

(* Connected components of H[Y], each paired with the set of free
   variables adjacent to it in H. *)
let quantified_components q =
  let h = q.Cq.graph in
  let ys = Array.to_list (Cq.quantified_vars q) in
  if List.is_empty ys then []
  else begin
    let sub, back = Ops.induced h ys in
    let comps = Traversal.component_members sub in
    List.map
      (fun comp ->
         let members = List.map (fun v -> back.(v)) comp in
         let attached =
           List.sort_uniq Int.compare
             (List.concat_map
                (fun y ->
                   List.filter
                     (fun w -> Bitset.mem q.Cq.free w)
                     (Graph.neighbours_list h y))
                members)
         in
         (members, attached))
      comps
  end

let gamma_graph q =
  let h = q.Cq.graph in
  let extra =
    List.concat_map
      (fun (_, attached) ->
         (* lint: allow R7 quadratic pair enumeration over the attached
            vertices of one quantified component — pattern-sized *)
         let rec pairs = function
           | [] -> []
           | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
         in
         pairs attached)
      (quantified_components q)
  in
  Ops.add_edges h extra

let contract q =
  let gamma = gamma_graph q in
  let xs = Array.to_list (Cq.free_vars q) in
  fst (Ops.induced gamma xs)

let extension_width ?(budget = Budget.unlimited) q =
  exact_tw ~budget (gamma_graph q)

let semantic_extension_width ?(budget = Budget.unlimited) q =
  extension_width ~budget (Minimize.counting_core ~budget q)

(* Heuristic upper bound on [ew(H, X)]: tw is bracketed above by the
   min-degree/min-fill orders, and [sew <= ew] (the core retracts H).
   Polynomial, so it needs no budget of its own. *)
let extension_width_upper_bound q =
  Wlcq_treewidth.Heuristics.upper_bound (gamma_graph q)

let quantified_star_size q =
  List.fold_left
    (fun acc (_, attached) -> max acc (List.length attached))
    0 (quantified_components q)

type f_ell = {
  graph : Graph.t;
  gamma : int array;
  copy : int array;
  ell : int;
}

let f_ell q ell =
  if ell < 1 then invalid_arg "Extension.f_ell: ell must be positive";
  let h = q.Cq.graph in
  let xs = Cq.free_vars q in
  let ys = Cq.quantified_vars q in
  let k = Array.length xs and l = Array.length ys in
  (* vertex layout: free variables first (in order), then for each copy
     index i in 1..ell the block of quantified variables *)
  let count = k + (ell * l) in
  let gamma = Array.make count 0 in
  let copy = Array.make count 0 in
  Array.iteri (fun i x -> gamma.(i) <- x) xs;
  for i = 1 to ell do
    Array.iteri
      (fun j y -> (* lint: hot-alloc F_ell constructor: labels every vertex of the output graph once *)
         let v = k + ((i - 1) * l) + j in
         gamma.(v) <- y;
         copy.(v) <- i)
      ys
  done;
  (* positions: free variable x -> its index; quantified y in copy i *)
  let xpos = Hashtbl.create 8 and ypos = Hashtbl.create 8 in
  Array.iteri (fun i x -> Hashtbl.replace xpos x i) xs;
  Array.iteri (fun j y -> Hashtbl.replace ypos y j) ys;
  let yvertex y i = k + ((i - 1) * l) + Hashtbl.find ypos y in
  let edges = ref [] in
  Graph.iter_edges h (fun u v ->
      let fu = Bitset.mem q.Cq.free u and fv = Bitset.mem q.Cq.free v in
      match (fu, fv) with
      | true, true ->
        edges := (Hashtbl.find xpos u, Hashtbl.find xpos v) :: !edges
      | true, false ->
        for i = 1 to ell do (* lint: hot-alloc F_ell constructor: these cells are the output edge list *)
          edges := (Hashtbl.find xpos u, yvertex v i) :: !edges
        done
      | false, true ->
        for i = 1 to ell do (* lint: hot-alloc F_ell constructor: these cells are the output edge list *)
          edges := (yvertex u i, Hashtbl.find xpos v) :: !edges
        done
      | false, false ->
        for i = 1 to ell do (* lint: hot-alloc F_ell constructor: these cells are the output edge list *)
          edges := (yvertex u i, yvertex v i) :: !edges
        done);
  { graph = Graph.create count !edges; gamma; copy; ell }

let gamma_is_homomorphism fe q =
  let ok = ref true in
  Graph.iter_edges fe.graph (fun u v ->
      if not (Graph.adjacent q.Cq.graph fe.gamma.(u) fe.gamma.(v)) then
        ok := false);
  !ok

let ew_via_f_ell q ~max_ell =
  let best = ref min_int in
  for ell = 1 to max_ell do
    best := max !best (Wlcq_treewidth.Exact.treewidth (f_ell q ell).graph)
  done;
  !best

let minimal_saturating_ell ?(budget = Budget.unlimited) q =
  let target = extension_width ~budget q in
  let rec go ell =
    if exact_tw ~budget (f_ell q ell).graph = target then ell
    else go (ell + 1)
  in
  go 1
