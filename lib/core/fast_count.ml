open Wlcq_graph
module Bitset = Wlcq_util.Bitset
module Bigint = Wlcq_util.Bigint
module Combinat = Wlcq_util.Combinat
module Count = Wlcq_util.Count
module Tbl = Wlcq_util.Ordering.Int_list_tbl
module Int_tbl = Wlcq_util.Ordering.Int_tbl
module Arr_tbl = Wlcq_util.Ordering.Int_array_tbl
module Dp_key = Wlcq_hom.Dp_key
module Obs = Wlcq_obs.Obs
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome
module Dispatch = Wlcq_dispatch.Dispatch

let m_runs = Obs.counter "fast_count.runs"
let m_exhausted = Obs.counter "robust.fallback.fast_exhausted"
let m_entries = Obs.counter "fast_count.dp_entries"
let m_memo_hits = Obs.counter "fast_count.memo_hits"
let m_memo_misses = Obs.counter "fast_count.memo_misses"
let m_packed_keys = Obs.counter "fast_count.packed_keys"
let m_hashed_keys = Obs.counter "fast_count.hashed_keys"
let m_small_values = Obs.counter "fast_count.int63_values"
let m_big_values = Obs.counter "fast_count.bigint_promotions"
let m_cand_total = Obs.counter "fast_count.candidates_total"
let m_cand_pruned = Obs.counter "fast_count.candidates_pruned"

(* A constraint over free-variable positions: a scope and a
   satisfaction check on the images of the scope (parallel arrays). *)
type constraint_ = { scope : int list; holds : int array -> bool }

(* ------------------------------------------------------------------ *)
(* Reference engine: int-list keys, Bigint arithmetic, full            *)
(* Combinat.iter_tuples bag enumeration, first-covering-bag constraint *)
(* assignment.  Kept verbatim as the differential-testing oracle for   *)
(* the packed engine below — do not optimise.                          *)
(* ------------------------------------------------------------------ *)

let count_answers_reference ?(budget = Budget.unlimited) q g =
  let h = q.Cq.graph in
  let n = Graph.num_vertices g in
  let xs = Cq.free_vars q in
  let k = Array.length xs in
  let pos_of = Hashtbl.create 8 in
  Array.iteri (fun p x -> Hashtbl.replace pos_of x p) xs;
  let components = Extension.quantified_components q in
  (* Components with no attachment contribute a global boolean factor:
     some homomorphism must exist for them at all. *)
  let boolean_ok =
    List.for_all
      (fun (members, attached) ->
         not (List.is_empty attached)
         || begin
           let sub, _ = Ops.induced h members in
           Wlcq_hom.Brute.exists ~budget sub g
         end)
      components
  in
  if not boolean_ok then Bigint.zero
  else if k = 0 then
    if Wlcq_hom.Brute.exists ~budget h g then Bigint.one else Bigint.zero
  else Obs.span "fast_count.run_reference" @@ fun () ->
    let on = Obs.enabled () in
    if on then Obs.incr m_runs;
    (* Predicate P_i for each attached component, memoised over the
       assignments of its attachment set. *)
    let component_constraints =
      List.filter_map
        (fun (members, attached) ->
           if List.is_empty attached then None
           else begin
             let vertices = List.sort_uniq Int.compare (members @ attached) in
             let sub, back = Ops.induced h vertices in
             let sub_pos = Hashtbl.create 8 in
             Array.iteri (fun i v -> Hashtbl.replace sub_pos v i) back;
             let sub_pos_of v =
               (* total: [sub_pos] indexes every vertex of [vertices],
                  and [attached] is a subset by construction *)
               match Hashtbl.find_opt sub_pos v with
               | Some i -> i
               | None -> assert false
             in
             let attach_sub = List.map sub_pos_of attached in
             let memo : bool Tbl.t = Tbl.create 64 in
             let holds images =
               let key = Array.to_list images in
               match Tbl.find_opt memo key with
               | Some b ->
                 if on then Obs.incr m_memo_hits;
                 b
               | None ->
                 if on then Obs.incr m_memo_misses;
                 let pins =
                   List.map2 (fun sv img -> (sv, img)) attach_sub key
                 in
                 let b = Wlcq_hom.Brute.exists ~budget ~pins sub g in
                 Tbl.replace memo key b;
                 b
             in
             let x_pos_of v =
               (* total: attachment sets are subsets of X, and [pos_of]
                  indexes every free variable *)
               match Hashtbl.find_opt pos_of v with
               | Some p -> p
               | None -> assert false
             in
             Some { scope = List.map x_pos_of attached; holds }
           end)
        components
    in
    (* Edge constraints from H[X]. *)
    let edge_constraints = ref [] in
    Graph.iter_edges h (fun u v ->
        match (Hashtbl.find_opt pos_of u, Hashtbl.find_opt pos_of v) with
        | Some a, Some b ->
          edge_constraints :=
            { scope = [ min a b; max a b ];
              holds = (fun images -> Graph.adjacent g images.(0) images.(1)) }
            :: !edge_constraints
        | _ -> ());
    let constraints = component_constraints @ !edge_constraints in
    (* DP over a tree decomposition of the contract Γ(H,X)[X] (over
       position space).  Each δ_i is a clique there and hence contained
       in some bag; edges of H[X] likewise. *)
    let contract = Extension.contract q in
    let d = Wlcq_treewidth.Exact.optimal_decomposition contract in
    let nodes = Graph.num_vertices d.Wlcq_treewidth.Decomposition.tree in
    let bags = d.Wlcq_treewidth.Decomposition.bags in
    let bag_list t = Bitset.to_list bags.(t) in
    (* [positions_in bag_arr sub] maps each position of [sub] to its
       index in [bag_arr] — restrictions become O(|sub|) array reads
       instead of O(|bag|²) assoc scans. *)
    let inv = Array.make k (-1) in
    let positions_in bag_arr sub =
      Array.iteri (fun i p -> inv.(p) <- i) bag_arr;
      let pos = Array.of_list (List.map (fun p -> inv.(p)) sub) in
      Array.iter (fun p -> inv.(p) <- -1) bag_arr;
      pos
    in
    let restrict_images images pos =
      Array.fold_right (fun p acc -> images.(p) :: acc) pos []
    in
    (* Assign each constraint to the first bag containing its scope,
       together with the scope's positions inside that bag. *)
    let assigned = Array.make nodes [] in
    List.iter
      (fun c ->
         let rec find t =
           if t >= nodes then
             failwith
               "Fast_count.count_answers: constraint scope not covered by \
                any bag (decomposition bug)"
           else if List.for_all (fun p -> Bitset.mem bags.(t) p) c.scope then
             assigned.(t) <-
               (c, positions_in (Array.of_list (bag_list t)) c.scope)
               :: assigned.(t)
           else find (t + 1)
         in
         find 0)
      constraints;
    (* Root the tree at 0, children before parents. *)
    let parent = Array.make nodes (-1) in
    let order = ref [] in
    let seen = Array.make nodes false in
    let queue = Queue.create () in
    seen.(0) <- true;
    Queue.add 0 queue;
    while not (Queue.is_empty queue) do
      let t = Queue.take queue in
      order := t :: !order;
      Graph.iter_neighbours d.Wlcq_treewidth.Decomposition.tree t (fun s -> (* lint: hot-alloc tree rooting: one closure per decomposition node, before the DP *)
          if not seen.(s) then begin
            seen.(s) <- true;
            parent.(s) <- t;
            Queue.add s queue
          end)
    done;
    let children = Array.make nodes [] in
    Array.iteri
      (fun s p -> if p >= 0 then children.(p) <- s :: children.(p))
      parent;
    let tables : Bigint.t Tbl.t array =
      Array.init nodes (fun _ -> Tbl.create 64)
    in
    List.iter
      (fun t ->
         let bag = bag_list t in
         let bag_arr = Array.of_list bag in
         let grouped =
           List.map
             (fun s ->
                let shared =
                  Bitset.to_list (Bitset.inter bags.(t) bags.(s))
                in
                let sbag_arr = Array.of_list (bag_list s) in
                let spos_child = positions_in sbag_arr shared in
                let proj : Bigint.t Tbl.t =
                  Tbl.create 64
                in
                Tbl.iter
                  (fun key v ->
                     let karr = Array.of_list key in
                     let r = restrict_images karr spos_child in
                     let prev =
                       Option.value ~default:Bigint.zero
                         (Tbl.find_opt proj r)
                     in
                     Tbl.replace proj r (Bigint.add prev v))
                  tables.(s);
                (positions_in bag_arr shared, proj))
             children.(t)
         in
         Combinat.iter_tuples n (Array.length bag_arr) (fun images ->
             (* the n^|bag| enumeration is the unbounded dimension of
                the oracle: poll it so a tripped deadline can stop the
                differential run *)
             Budget.tick_check budget;
             let satisfied =
               List.for_all
                 (fun (c, scope_pos) ->
                    c.holds (Array.map (Array.get images) scope_pos))
                 assigned.(t)
             in
             if satisfied then begin
               let value =
                 List.fold_left
                   (fun acc (spos, proj) ->
                      if Bigint.is_zero acc then acc
                      else
                        match
                          Tbl.find_opt proj (restrict_images images spos)
                        with
                        | None -> Bigint.zero
                        | Some v -> Bigint.mul acc v)
                   Bigint.one grouped
               in
               if not (Bigint.is_zero value) then
                 Tbl.replace tables.(t) (Array.to_list images) value
             end);
         if on then Obs.add m_entries (Tbl.length tables.(t)))
      !order;
    Tbl.fold (fun _ v acc -> Bigint.add acc v) tables.(0) Bigint.zero

(* ------------------------------------------------------------------ *)
(* Packed engine: Dp_key tables, Count arithmetic, per-position        *)
(* candidate sets with constraint-scheduled backtracking instead of    *)
(* full tuple enumeration, smallest-covering-bag constraint            *)
(* assignment.  Sequential by design: the component predicate memos    *)
(* are shared closures and not safe to call from worker domains.       *)
(* ------------------------------------------------------------------ *)

(* Target vertices of positive degree — a free variable with any
   incident pattern edge can only map there. *)
let target_support g =
  let s = Bitset.create (Graph.num_vertices g) in
  Graph.iter_edges g (fun u v ->
      Bitset.set s u;
      Bitset.set s v);
  s

(* ------------------------------------------------------------------ *)
(* Enumeration kernel for small instances.                             *)
(*                                                                     *)
(* When ng^|X| and every component tabulation ng^(|C|+|δ|) are tiny,   *)
(* the contract/decomposition/Dp_key machinery of the packed engine    *)
(* below costs more than the whole count.  This kernel tabulates each  *)
(* attached component's satisfiable δ-assignments into a flat byte     *)
(* table with ONE homomorphism enumeration per component, then counts  *)
(* free assignments by direct backtracking with early edge pruning —   *)
(* no decomposition, no packed tables, no arc consistency.             *)
(* ------------------------------------------------------------------ *)

let count_answers_enum ~budget q g components =
  let h = q.Cq.graph in
  let n = Graph.num_vertices g in
  let xs = Cq.free_vars q in
  let k = Array.length xs in
  let pos_of = Int_tbl.create 8 in
  Array.iteri (fun p x -> Int_tbl.replace pos_of x p) xs;
  Obs.span "fast_count.run_enum" @@ fun () ->
    if Obs.enabled () then Obs.incr m_runs;
    (* per attached component: scope positions in X plus a membership
       check on their images.  Small components are tabulated by one
       Brute.iter sweep; components past the tabulation limit (only
       reachable under a forced engine) fall back to a memoised pinned
       existence query, so forcing stays correct on any instance. *)
    let comp_checks =
      List.filter_map
        (fun (members, attached) ->
           if List.is_empty attached then None
           else begin
             let vertices = List.sort_uniq Int.compare (members @ attached) in
             let sub, back = Ops.induced h vertices in
             let sub_pos = Int_tbl.create 8 in
             Array.iteri (fun i v -> Int_tbl.replace sub_pos v i) back;
             let attach_sub =
               Array.of_list (List.map (Int_tbl.find sub_pos) attached)
             in
             let da = Array.length attach_sub in
             let scope =
               Array.of_list (List.map (Int_tbl.find pos_of) attached)
             in
             let lim = (Dispatch.calibration ()).Dispatch.enum_answers_max in
             let full = Dispatch.sat_pow n (Array.length back) in
             let holds =
               if full <= lim then begin
                 let size = Dispatch.sat_pow n da in
                 let tbl = Bytes.make size '\000' in
                 Wlcq_hom.Brute.iter ~budget sub g (fun m ->
                     let code = ref 0 in
                     for i = 0 to da - 1 do
                       code := (!code * n) + m.(attach_sub.(i))
                     done;
                     (* lint: allow R2 code < n^da = |tbl| by construction *)
                     Bytes.unsafe_set tbl !code '\001');
                 fun images ->
                   let code = ref 0 in
                   for i = 0 to da - 1 do
                     code := (!code * n) + images.(scope.(i))
                   done;
                   (* lint: allow R2 code < n^da = |tbl| by construction *)
                   Bytes.unsafe_get tbl !code = '\001'
               end
               else begin
                 let memo : bool Arr_tbl.t = Arr_tbl.create 64 in
                 let key = Array.make da 0 in
                 fun images ->
                   for i = 0 to da - 1 do
                     key.(i) <- images.(scope.(i))
                   done;
                   match Arr_tbl.find_opt memo key with
                   | Some b -> b
                   | None ->
                     let pins =
                       List.mapi (fun i sv -> (sv, key.(i)))
                         (Array.to_list attach_sub)
                     in
                     let b = Wlcq_hom.Brute.exists ~budget ~pins sub g in
                     Arr_tbl.replace memo (Array.copy key) b;
                     b
               end
             in
             let last = Array.fold_left max 0 scope in
             Some (last, holds)
           end)
        components
    in
    (* H[X] edge checks fire as soon as their later endpoint is
       assigned; component checks as soon as their whole scope is. *)
    let edges_at = Array.make k [] in
    Graph.iter_edges h (fun u v ->
        match (Int_tbl.find_opt pos_of u, Int_tbl.find_opt pos_of v) with
        | Some a, Some b ->
          let lo = min a b and hi = max a b in
          edges_at.(hi) <- lo :: edges_at.(hi)
        | _ -> ());
    let checks_at = Array.make k [] in
    List.iter
      (fun (last, holds) -> checks_at.(last) <- holds :: checks_at.(last))
      comp_checks;
    let images = Array.make k 0 in
    let total = ref 0 in
    let rec go i =
      if i = k then incr total
      else begin
        Budget.tick_check budget;
        for v = 0 to n - 1 do
          images.(i) <- v;
          if
            (* enumeration engine: dispatch caps total work at
               enum_answers_max, so the per-step closures below are inside
               the cost the model already charged *)
            List.for_all (fun j -> Graph.adjacent g images.(j) v) edges_at.(i) (* lint: hot-alloc dispatch-capped enumeration, see above *)
            && List.for_all (fun holds -> holds images) checks_at.(i)
          then go (i + 1)
        done
      end
    in
    go 0;
    Bigint.of_int !total

(* ------------------------------------------------------------------ *)
(* Packed engine proper (see header above).                            *)
(* ------------------------------------------------------------------ *)

let count_answers_packed ~budget q g components =
  let h = q.Cq.graph in
  let n = Graph.num_vertices g in
  let xs = Cq.free_vars q in
  let k = Array.length xs in
  let pos_of = Int_tbl.create 8 in
  Array.iteri (fun p x -> Int_tbl.replace pos_of x p) xs;
  Obs.span "fast_count.run" @@ fun () ->
    let on = Obs.enabled () in
    if on then Obs.incr m_runs;
    (* Predicate P_i per attached component, memoised on the images of
       its attachment set (array-keyed, structural equality). *)
    let component_constraints =
      List.filter_map
        (fun (members, attached) ->
           if List.is_empty attached then None
           else begin
             let vertices = List.sort_uniq Int.compare (members @ attached) in
             let sub, back = Ops.induced h vertices in
             let sub_pos = Int_tbl.create 8 in
             Array.iteri (fun i v -> Int_tbl.replace sub_pos v i) back;
             let attach_sub = List.map (Int_tbl.find sub_pos) attached in
             let memo : bool Arr_tbl.t = Arr_tbl.create 64 in
             let holds images =
               match Arr_tbl.find_opt memo images with
               | Some b ->
                 if on then Obs.incr m_memo_hits;
                 b
               | None ->
                 if on then Obs.incr m_memo_misses;
                 let pins =
                   List.map2
                     (fun sv img -> (sv, img))
                     attach_sub (Array.to_list images)
                 in
                 let b = Wlcq_hom.Brute.exists ~budget ~pins sub g in
                 Arr_tbl.replace memo (Array.copy images) b;
                 b
             in
             Some { scope = List.map (Int_tbl.find pos_of) attached; holds }
           end)
        components
    in
    (* Edge constraints from H[X]; also collect the position pairs for
       the arc-consistency sweep below. *)
    let edge_constraints = ref [] in
    let free_edges = ref [] in
    Graph.iter_edges h (fun u v ->
        match (Int_tbl.find_opt pos_of u, Int_tbl.find_opt pos_of v) with
        | Some a, Some b ->
          free_edges := (a, b) :: !free_edges;
          edge_constraints :=
            { scope = [ min a b; max a b ];
              holds = (fun images -> Graph.adjacent g images.(0) images.(1)) }
            :: !edge_constraints
        | _ -> ());
    let constraints = component_constraints @ !edge_constraints in
    (* Per-position candidate sets: target support for positions with
       incident pattern edges, filtered by unary component predicates,
       then arc consistency over the H[X] edges.  Each step only
       removes target vertices that cannot appear in any answer, so
       restricting the bag enumeration below is sound. *)
    let gsupport = target_support g in
    let cand =
      Array.init k (fun p ->
          if Graph.degree h xs.(p) > 0 then Bitset.copy gsupport
          else Bitset.full n)
    in
    List.iter
      (fun c ->
         match c.scope with
         | [ p ] ->
           let keep = Bitset.create n in
           Bitset.iter (fun v -> if c.holds [| v |] then Bitset.set keep v)
             cand.(p);
           cand.(p) <- keep
         | _ -> ())
      component_constraints;
    let changed = ref true in
    (* hoisted out of the fixpoint: [refine] captures only the stable
       [cand]/[changed], so allocating it per pass was pure churn (R9) *)
    let refine a b =
      let nb = ref (Bitset.create n) in
      Bitset.iter
        (fun w -> nb := Bitset.union !nb (Graph.neighbours g w))
        cand.(b);
      let next = Bitset.inter cand.(a) !nb in
      if not (Bitset.equal next cand.(a)) then begin
        cand.(a) <- next;
        changed := true
      end
    in
    let refine_edge (a, b) =
      refine a b;
      refine b a
    in
    while !changed do
      changed := false;
      List.iter refine_edge !free_edges
    done;
    if on then begin
      let kept = Array.fold_left (fun acc b -> acc + Bitset.cardinal b) 0 cand in
      Obs.add m_cand_total (k * n);
      Obs.add m_cand_pruned ((k * n) - kept)
    end;
    (* DP over a tree decomposition of the contract Γ(H,X)[X] (over
       position space).  Each δ_i is a clique there and hence contained
       in some bag; edges of H[X] likewise. *)
    let contract = Extension.contract q in
    let d = Wlcq_treewidth.Exact.optimal_decomposition contract in
    let nodes = Graph.num_vertices d.Wlcq_treewidth.Decomposition.tree in
    let bags = d.Wlcq_treewidth.Decomposition.bags in
    let bag_list t = Bitset.to_list bags.(t) in
    let inv = Array.make k (-1) in
    let positions_in bag_arr sub =
      Array.iteri (fun i p -> inv.(p) <- i) bag_arr;
      let pos = Array.of_list (List.map (fun p -> inv.(p)) sub) in
      Array.iter (fun p -> inv.(p) <- -1) bag_arr;
      pos
    in
    (* Assign each constraint to the smallest bag covering its scope
       (lowest node index on ties), so predicates are checked against
       as few enumerated positions as possible. *)
    let assigned = Array.make nodes [] in
    List.iter
      (fun c ->
         let best = ref (-1) in
         let best_card = ref max_int in
         for t = 0 to nodes - 1 do
           if
             Bitset.cardinal bags.(t) < !best_card
             (* lint: hot-alloc setup: one probe per (check, bag) pair, runs once before the DP *)
             && List.for_all (fun p -> Bitset.mem bags.(t) p) c.scope
           then begin
             best := t;
             best_card := Bitset.cardinal bags.(t)
           end
         done;
         if !best < 0 then
           failwith
             "Fast_count.count_answers: constraint scope not covered by any \
              bag (decomposition bug)";
         assigned.(!best) <-
           (c, positions_in (Array.of_list (bag_list !best)) c.scope)
           :: assigned.(!best))
      constraints;
    let rooted = Wlcq_treewidth.Decomposition.rooted d in
    let codec = Dp_key.codec ~n in
    let tables =
      Array.init nodes (fun t ->
          Dp_key.table codec ~arity:(Bitset.cardinal bags.(t)))
    in
    (* the DP is sequential by design (shared predicate memos), so the
       budget may unwind by exception; tables go back to the pool
       either way *)
    Fun.protect ~finally:(fun () -> Array.iter Dp_key.release tables)
    @@ fun () ->
    Array.iter
      (fun t ->
         Budget.check budget;
         let bag_arr = Array.of_list (bag_list t) in
         let arity = Array.length bag_arr in
         let grouped =
           Array.to_list
             (Array.map
                (fun s ->
                   let shared = Bitset.to_list (Bitset.inter bags.(t) bags.(s)) in
                   let sbag_arr = Array.of_list (bag_list s) in
                   let proj =
                     Dp_key.project codec tables.(s)
                       (positions_in sbag_arr shared)
                   in
                   (positions_in bag_arr shared, proj))
                rooted.Wlcq_treewidth.Decomposition.children.(t))
         in
         (* Constraints fire as soon as the last position of their
            scope is assigned, pruning the enumeration early. *)
         let scheduled = Array.make (max 1 arity) [] in
         List.iter
           (fun (c, spos) ->
              let last = Array.fold_left max 0 spos in
              scheduled.(last) <- (c, spos) :: scheduled.(last))
           assigned.(t);
         let images = Array.make (max 1 arity) 0 in
         let rec go i =
           Budget.tick_check budget;
           if i = arity then begin
             let value = ref Count.one in
             let ok = ref true in
             List.iter
               (fun (spos, proj) ->
                  if !ok then begin
                    let v = Dp_key.find codec proj images spos in
                    if Count.is_zero v then ok := false
                    else value := Count.mul !value v
                  end)
               grouped;
             if !ok then
               Dp_key.bump codec tables.(t)
                 (if arity = 0 then [||] else images)
                 !value
           end
           else
             Bitset.iter
               (fun v ->
                  images.(i) <- v;
                  if
                    List.for_all
                      (fun (c, spos) ->
                         c.holds (Array.map (Array.get images) spos))
                      scheduled.(i)
                  then go (i + 1))
               cand.(bag_arr.(i))
         in
         go 0;
         (* projections are consumed only by this node's enumeration *)
         List.iter (fun (_, proj) -> Dp_key.release proj) grouped)
      rooted.Wlcq_treewidth.Decomposition.postorder;
    if on then begin
      (* one flush per run, as in Td_count: per-value atomic incrs (or
         a boxing [iter_values] traversal) bust the armed-observability
         overhead bound *)
      let entries = ref 0 and packed = ref 0 and hashed = ref 0 in
      let bigs = ref 0 in
      Array.iter
        (fun tbl ->
           let len = Dp_key.length tbl in
           entries := !entries + len;
           if Dp_key.is_packed tbl then packed := !packed + len
           else hashed := !hashed + len;
           bigs := !bigs + Dp_key.count_big tbl)
        tables;
      Obs.add m_entries !entries;
      Obs.add m_packed_keys !packed;
      Obs.add m_hashed_keys !hashed;
      Obs.add m_small_values (!entries - !bigs);
      Obs.add m_big_values !bigs
    end;
    Count.to_bigint
      (Dp_key.total tables.(rooted.Wlcq_treewidth.Decomposition.root))

(* ------------------------------------------------------------------ *)
(* Entry point: shared trivial cases, then engine dispatch.            *)
(* ------------------------------------------------------------------ *)

let count_answers ?(budget = Budget.unlimited) q g =
  let h = q.Cq.graph in
  let n = Graph.num_vertices g in
  let k = Array.length (Cq.free_vars q) in
  let components = Extension.quantified_components q in
  (* Components with no attachment contribute a global boolean factor:
     some homomorphism must exist for them at all. *)
  let boolean_ok =
    List.for_all
      (fun (members, attached) ->
         not (List.is_empty attached)
         || begin
           let sub, _ = Ops.induced h members in
           Wlcq_hom.Brute.exists ~budget sub g
         end)
      components
  in
  if not boolean_ok then Bigint.zero
  else if k = 0 then
    if Wlcq_hom.Brute.exists ~budget h g then Bigint.one else Bigint.zero
  else begin
    let max_comp =
      List.fold_left
        (fun acc (members, attached) ->
           if List.is_empty attached then acc
           else max acc (List.length members + List.length attached))
        0 components
    in
    match Dispatch.choose_answers ~nx:k ~max_comp ~ng:n with
    | Dispatch.Ans_enum -> count_answers_enum ~budget q g components
    | Dispatch.Ans_reference -> count_answers_reference ~budget q g
    | Dispatch.Ans_packed -> count_answers_packed ~budget q g components
  end

(* like [Brute.count_budgeted] in shape, but the DP's intermediate
   tables admit no sound partial reading, so exhaustion carries no
   partial count *)
(* lint: allow R8 the reachable Failure and Invalid_argument raises are
   internal-invariant checks (decomposition coverage, DP key arity):
   programming errors, not budget outcomes *)
let count_answers_budgeted ~budget q g =
  Obs.entry_point "fast_count.count_answers" @@ fun () ->
  match count_answers ~budget q g with
  | v -> `Exact v
  | exception Budget.Exhausted r ->
    Obs.incr m_exhausted;
    Obs.journal ~severity:Obs.Warn
      ~attrs:[ ("reason", Budget.reason_to_string r) ]
      "fast_count.exhausted";
    `Exhausted r
