open Wlcq_graph
module Bitset = Wlcq_util.Bitset
module Bigint = Wlcq_util.Bigint
module Combinat = Wlcq_util.Combinat
module Tbl = Wlcq_util.Ordering.Int_list_tbl
module Obs = Wlcq_obs.Obs

let m_runs = Obs.counter "fast_count.runs"
let m_entries = Obs.counter "fast_count.dp_entries"
let m_memo_hits = Obs.counter "fast_count.memo_hits"
let m_memo_misses = Obs.counter "fast_count.memo_misses"

(* A constraint over free-variable positions: a sorted scope and a
   satisfaction check on the images of the scope (parallel arrays). *)
type constraint_ = { scope : int list; holds : int array -> bool }

let count_answers q g =
  let h = q.Cq.graph in
  let n = Graph.num_vertices g in
  let xs = Cq.free_vars q in
  let k = Array.length xs in
  let pos_of = Hashtbl.create 8 in
  Array.iteri (fun p x -> Hashtbl.replace pos_of x p) xs;
  let components = Extension.quantified_components q in
  (* Components with no attachment contribute a global boolean factor:
     some homomorphism must exist for them at all. *)
  let boolean_ok =
    List.for_all
      (fun (members, attached) ->
         not (List.is_empty attached)
         || begin
           let sub, _ = Ops.induced h members in
           Wlcq_hom.Brute.exists sub g
         end)
      components
  in
  if not boolean_ok then Bigint.zero
  else if k = 0 then
    if Wlcq_hom.Brute.exists h g then Bigint.one else Bigint.zero
  else Obs.span "fast_count.run" @@ fun () ->
    let on = Obs.enabled () in
    if on then Obs.incr m_runs;
    (* Predicate P_i for each attached component, memoised over the
       assignments of its attachment set. *)
    let component_constraints =
      List.filter_map
        (fun (members, attached) ->
           if List.is_empty attached then None
           else begin
             let vertices = List.sort_uniq Int.compare (members @ attached) in
             let sub, back = Ops.induced h vertices in
             let sub_pos = Hashtbl.create 8 in
             Array.iteri (fun i v -> Hashtbl.replace sub_pos v i) back;
             let attach_sub =
               List.map (Hashtbl.find sub_pos) attached
             in
             let memo : bool Tbl.t = Tbl.create 64 in
             let holds images =
               let key = Array.to_list images in
               match Tbl.find_opt memo key with
               | Some b ->
                 if on then Obs.incr m_memo_hits;
                 b
               | None ->
                 if on then Obs.incr m_memo_misses;
                 let pins =
                   List.map2 (fun sv img -> (sv, img)) attach_sub key
                 in
                 let b = Wlcq_hom.Brute.exists ~pins sub g in
                 Tbl.replace memo key b;
                 b
             in
             Some { scope = List.map (Hashtbl.find pos_of) attached; holds }
           end)
        components
    in
    (* Edge constraints from H[X]. *)
    let edge_constraints = ref [] in
    Graph.iter_edges h (fun u v ->
        match (Hashtbl.find_opt pos_of u, Hashtbl.find_opt pos_of v) with
        | Some a, Some b ->
          edge_constraints :=
            { scope = [ min a b; max a b ];
              holds = (fun images -> Graph.adjacent g images.(0) images.(1)) }
            :: !edge_constraints
        | _ -> ());
    let constraints = component_constraints @ !edge_constraints in
    (* DP over a tree decomposition of the contract Γ(H,X)[X] (over
       position space).  Each δ_i is a clique there and hence contained
       in some bag; edges of H[X] likewise. *)
    let contract = Extension.contract q in
    let d = Wlcq_treewidth.Exact.optimal_decomposition contract in
    let nodes = Graph.num_vertices d.Wlcq_treewidth.Decomposition.tree in
    let bags = d.Wlcq_treewidth.Decomposition.bags in
    let bag_list t = Bitset.to_list bags.(t) in
    (* [positions_in bag_arr sub] maps each position of [sub] to its
       index in [bag_arr] — restrictions become O(|sub|) array reads
       instead of O(|bag|²) assoc scans. *)
    let inv = Array.make k (-1) in
    let positions_in bag_arr sub =
      Array.iteri (fun i p -> inv.(p) <- i) bag_arr;
      let pos = Array.of_list (List.map (fun p -> inv.(p)) sub) in
      Array.iter (fun p -> inv.(p) <- -1) bag_arr;
      pos
    in
    let restrict_images images pos =
      Array.fold_right (fun p acc -> images.(p) :: acc) pos []
    in
    (* Assign each constraint to the first bag containing its scope,
       together with the scope's positions inside that bag. *)
    let assigned = Array.make nodes [] in
    List.iter
      (fun c ->
         let rec find t =
           if t >= nodes then
             failwith
               "Fast_count.count_answers: constraint scope not covered by \
                any bag (decomposition bug)"
           else if List.for_all (fun p -> Bitset.mem bags.(t) p) c.scope then
             assigned.(t) <-
               (c, positions_in (Array.of_list (bag_list t)) c.scope)
               :: assigned.(t)
           else find (t + 1)
         in
         find 0)
      constraints;
    (* Root the tree at 0, children before parents. *)
    let parent = Array.make nodes (-1) in
    let order = ref [] in
    let seen = Array.make nodes false in
    let queue = Queue.create () in
    seen.(0) <- true;
    Queue.add 0 queue;
    while not (Queue.is_empty queue) do
      let t = Queue.take queue in
      order := t :: !order;
      Graph.iter_neighbours d.Wlcq_treewidth.Decomposition.tree t (fun s ->
          if not seen.(s) then begin
            seen.(s) <- true;
            parent.(s) <- t;
            Queue.add s queue
          end)
    done;
    let children = Array.make nodes [] in
    Array.iteri
      (fun s p -> if p >= 0 then children.(p) <- s :: children.(p))
      parent;
    let tables : Bigint.t Tbl.t array =
      Array.init nodes (fun _ -> Tbl.create 64)
    in
    List.iter
      (fun t ->
         let bag = bag_list t in
         let bag_arr = Array.of_list bag in
         let grouped =
           List.map
             (fun s ->
                let shared =
                  Bitset.to_list (Bitset.inter bags.(t) bags.(s))
                in
                let sbag_arr = Array.of_list (bag_list s) in
                let spos_child = positions_in sbag_arr shared in
                let proj : Bigint.t Tbl.t =
                  Tbl.create 64
                in
                Tbl.iter
                  (fun key v ->
                     let karr = Array.of_list key in
                     let r = restrict_images karr spos_child in
                     let prev =
                       Option.value ~default:Bigint.zero
                         (Tbl.find_opt proj r)
                     in
                     Tbl.replace proj r (Bigint.add prev v))
                  tables.(s);
                (positions_in bag_arr shared, proj))
             children.(t)
         in
         Combinat.iter_tuples n (Array.length bag_arr) (fun images ->
             let satisfied =
               List.for_all
                 (fun (c, scope_pos) ->
                    c.holds (Array.map (Array.get images) scope_pos))
                 assigned.(t)
             in
             if satisfied then begin
               let value =
                 List.fold_left
                   (fun acc (spos, proj) ->
                      if Bigint.is_zero acc then acc
                      else
                        match
                          Tbl.find_opt proj (restrict_images images spos)
                        with
                        | None -> Bigint.zero
                        | Some v -> Bigint.mul acc v)
                   Bigint.one grouped
               in
               if not (Bigint.is_zero value) then
                 Tbl.replace tables.(t) (Array.to_list images) value
             end);
         if on then Obs.add m_entries (Tbl.length tables.(t)))
      !order;
    Tbl.fold (fun _ v acc -> Bigint.add acc v) tables.(0) Bigint.zero
