(** Graph parameters and experimental WL-dimension bounds.

    The paper studies the WL-dimension of one family of graph
    parameters (answer counts of conjunctive queries); this module
    packages arbitrary graph parameters as first-class values and
    estimates dimension {e lower} bounds the way the paper's proofs
    do: exhibit a pair of k-WL-equivalent graphs the parameter tells
    apart, concluding dimension ≥ k + 1.  The built-in pair library
    contains the witnesses constructed elsewhere in this repository
    (2K₃/C₆, twisted CFI pairs, the Shrikhande/rook SRG pair).

    Upper bounds cannot be certified by finitely many pairs; the
    companion check {!invariant_on_pairs} reports consistency with a
    conjectured dimension on the library. *)

open Wlcq_graph

type t = {
  name : string;
  value : Graph.t -> string;
      (** canonical printed value — equality of strings is equality of
          the parameter *)
}

(** [of_int name f] / [of_bigint name f] wrap numeric parameters. *)
val of_int : string -> (Graph.t -> int) -> t

val of_bigint : string -> (Graph.t -> Wlcq_util.Bigint.t) -> t

(** [of_query q] is the paper's parameter [G ↦ |Ans(q, G)|]. *)
val of_query : string -> Cq.t -> t

(** [witness_pairs ()] is the library of non-isomorphic k-WL-equivalent
    pairs, as [(name, k, g1, g2)] — [g1 ≅_k g2] is guaranteed (and
    re-checked in the test suite). *)
val witness_pairs : unit -> (string * int * Graph.t * Graph.t) list

(** [dimension_lower_bound p] is [Some (k + 1, pair_name)] for the
    largest [k] such that [p] distinguishes some [k]-equivalent pair
    in the library, or [None] when [p] agrees on all pairs. *)
val dimension_lower_bound : t -> (int * string) option

(** [invariant_on_pairs p ~dim] checks that [p] agrees on every
    library pair with equivalence level [>= dim] — a necessary
    condition for [p] to have WL-dimension [<= dim]. *)
val invariant_on_pairs : t -> dim:int -> bool

(** A small built-in library of parameters used by experiment T13. *)
val standard_library : unit -> t list
