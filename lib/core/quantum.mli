(** Quantum queries — finite linear combinations of conjunctive
    queries (Definition 63) — and their WL-dimension (Corollary 5).

    A quantum query [Q = Σ c_i · (H_i, X_i)] has pairwise
    non-isomorphic, connected, counting-minimal constituents with
    non-zero rational coefficients and at least one free variable
    each.  Unions of conjunctive queries (and CQs with disequalities /
    negations on free variables) have unique quantum representations;
    {!of_union} implements the UCQ case by inclusion–exclusion, and
    {!injective_star} the Corollary-68 expansion of injective star
    answers. *)

open Wlcq_graph
module Rat = Wlcq_util.Rat

type term = { coeff : Rat.t; query : Cq.t }
type t = private term list

(** [make terms] normalises and validates: queries are replaced by
    their counting cores, isomorphic constituents are merged by adding
    coefficients, zero terms are dropped.  Errors when a constituent is
    disconnected or has no free variable. *)
val make : (Rat.t * Cq.t) list -> (t, string) result

(** [make_exn terms] is {!make}, raising [Invalid_argument]. *)
val make_exn : (Rat.t * Cq.t) list -> t

(** [terms q] lists the constituents. *)
val terms : t -> term list

(** [evaluate q g] is [|Ans(Q, g)| = Σ c_i · |Ans((H_i,X_i), g)|]. *)
val evaluate : t -> Graph.t -> Rat.t

(** [hsew q] is the hereditary semantic extension width: the maximum
    [sew] of a constituent (Definition 64). *)
val hsew : t -> int

(** [wl_dimension q] is the WL-dimension of [G ↦ |Ans(Q,G)|], equal to
    [hsew q] by Corollary 5. *)
val wl_dimension : t -> int

(** [of_union qs] is the quantum representation of the union
    [φ_1 ∨ … ∨ φ_m]: an answer of the union is an assignment that is
    an answer of at least one [φ_i].  All queries must have the same
    number of free variables (identified positionally), each must be
    connected with at least one free variable.
    @raise Invalid_argument on arity mismatch or empty input. *)
val of_union : Cq.t list -> t

(** [count_union_answers qs g] counts the union's answers directly (by
    enumeration), for cross-validation against
    [evaluate (of_union qs) g]. *)
val count_union_answers : Cq.t list -> Graph.t -> int

(** [conjoin q1 q2] is the conjunction: the two queries glued on their
    free variables (positionally).  Exposed for tests. *)
val conjoin : Cq.t -> Cq.t -> Cq.t

(** [injective_star k] is the Corollary-68 quantum query with
    [|Ans| = Inj((S_k, X_k), ·)]: constituents [(S_i, X_i)] with the
    signed-Stirling coefficients [s(k, i)]. *)
val injective_star : int -> t

(** [injective_expansion q] is the quantum query whose evaluation is
    the number of {e injective} answers of [q] (a conjunctive query
    with disequalities [x_i ≠ x_j] between all free variables, §5.3):
    Möbius inversion over the partition lattice of the free variables,
    with identified queries [q/ρ] as constituents (identifications
    creating self-loop atoms contribute nothing and are dropped).
    [q] must be connected with [X ≠ ∅].  Generalises
    {!injective_star}. *)
val injective_expansion : Cq.t -> t

(** [with_free_negations q pairs] is the quantum query whose
    evaluation counts the answers of [q] additionally satisfying
    [¬E(x_a, x_b)] for each pair of free-variable {e positions} in
    [pairs] (negations over free variables, §5.3), by
    inclusion–exclusion over the negated atoms.
    @raise Invalid_argument when a position is out of range or a pair
    is diagonal. *)
val with_free_negations : Cq.t -> (int * int) list -> t

(** [count_answers_with_negations q pairs g] counts the same set
    directly (enumeration), for cross-validation. *)
val count_answers_with_negations :
  Cq.t -> (int * int) list -> Wlcq_graph.Graph.t -> int

(** [lower_bound_witness ?max_tensor_size q] constructs the
    Corollary 5 lower bound: a pair of graphs that are
    [(hsew(q) − 1)]-WL-equivalent yet evaluate differently under [q].
    Following the proof, it takes the Theorem 1 separating pair
    [(G, G')] of an [hsew]-attaining constituent and searches small
    graphs [H] (at most [max_tensor_size] vertices, default 3) until
    the tensor products [G ⊗ H] and [G' ⊗ H] are separated by [q];
    [H = K₁'s one-vertex reflexive-free tensor is skipped in favour of
    the original pair first.  Returns [None] when the bounded search
    fails or the constituent has a full-query core. *)
val lower_bound_witness :
  ?max_tensor_size:int -> t -> (Wlcq_graph.Graph.t * Wlcq_graph.Graph.t) option

(** [pp] prints as [3·q1 - 1/2·q2]. *)
val pp : Format.formatter -> t -> unit
