(** Unions of conjunctive queries as first-class objects (§1.2, §5.3).

    A UCQ [φ₁ ∨ … ∨ φ_m] over a common head has as answers the
    assignments that answer at least one disjunct.  Its number of
    answers has a unique quantum-query representation
    ({!Quantum.of_union}), so by Corollary 5 its WL-dimension is the
    [hsew] of that quantum query. *)

open Wlcq_graph

type t = private Cq.t list

(** [make qs] validates a union: non-empty, equal positive arities,
    connected disjuncts.
    @raise Invalid_argument otherwise. *)
val make : Cq.t list -> t

(** [of_string s] parses the ['|']-separated surface syntax
    ({!Parser.parse_union}). *)
val of_string : string -> (t, string) result

val disjuncts : t -> Cq.t list

(** [count_answers u g] counts the union's answers by enumeration. *)
val count_answers : t -> Graph.t -> int

(** [to_quantum u] is the inclusion–exclusion quantum representation. *)
val to_quantum : t -> Quantum.t

(** [wl_dimension u] is the WL-dimension of [G ↦ |Ans(u, G)|]: the
    [hsew] of the quantum representation (Corollary 5). *)
val wl_dimension : t -> int
