(** Flat sparse DP tables keyed by packed bag assignments.

    Shared machinery for the counting DPs ({!Td_count}, {!Nice_count}
    and [Wlcq_core.Fast_count]).  A bag assignment — an [int array] of
    target vertices, one per (sorted) bag vertex — packs little-endian
    into a single immediate int whenever [arity * ceil(log2 n) <= 62]
    (the base-n encoding of the k-WL engine); restriction onto a subset
    of positions is then shift-and-mask with no allocation.  Larger
    bags fall back to [int array]-keyed hashtables with structural
    per-element equality, so results never depend on hash quality. *)

module Count = Wlcq_util.Count

type codec = { bits : int; mask : int }

(** [codec ~n] fixes the field width for target graphs on [n] vertices:
    [bits = max 1 (ceil (log2 n))]. *)
val codec : n:int -> codec

(** [packs c ~arity] — does an [arity]-vertex bag pack into one int? *)
val packs : codec -> arity:int -> bool

(** [pack c img] is the little-endian packed key of assignment [img].
    Requires [packs c ~arity:(Array.length img)]. *)
val pack : codec -> int array -> int

(** [unpack c key ~arity dst] writes the [arity] coordinates of [key]
    into [dst.(0..arity-1)]. *)
val unpack : codec -> int -> arity:int -> int array -> unit

(** [restrict_packed c key pos] is the packed key of the restriction of
    [key] onto positions [pos] — pure shift-and-mask. *)
val restrict_packed : codec -> int -> int array -> int

(** Dense payload: a flat unboxed int array indexed by the packed key
    itself ([0] = absent, positive = int63-fast-path count, [-1] =
    promoted into the [big] side table), plus the spine of occupied
    keys (reverse insertion order) so iteration and projection cost
    O(entries) rather than O(keyspace).  The hot array holds no
    pointers, so the GC never scans it. *)
type dense = {
  data : int array;
  mutable keys : int list;
  mutable n_keys : int;  (* O(1) population, [List.length keys] *)
  mutable big : Count.t Wlcq_util.Ordering.Int_tbl.t option;
}

(** A DP table in dense, packed-sparse, or hashed key mode.  [Dense]
    is used whenever the whole keyspace has at most [2^16] entries,
    making bump and lookup single array accesses. *)
type table =
  | Dense of dense
  | Packed of Count.t Wlcq_util.Ordering.Int_tbl.t
  | Hashed of Count.t Wlcq_util.Ordering.Int_array_tbl.t

(** [table c ~arity] creates an empty table in the mode dictated by
    [packs c ~arity] and the keyspace size. *)
val table : codec -> arity:int -> table

val is_packed : table -> bool
val length : table -> int

(** [bump c tbl images v] adds [v] to the entry for assignment
    [images] (inserting if absent).  [images] may be a reused scratch
    array — the hashed mode copies it on fresh inserts. *)
val bump : codec -> table -> int array -> Count.t -> unit

(** [find c tbl images pos] looks up the restriction of [images] onto
    positions [pos]; absent entries count as zero. *)
val find : codec -> table -> int array -> int array -> Count.t

(** [project c tbl pos] groups [tbl] by restriction onto positions
    [pos] (within the table's own bag), summing counts.  A hashed
    table's projection may come back packed when its arity allows. *)
val project : codec -> table -> int array -> table

(** [iter_values f tbl] applies [f] to every stored count (used for
    the promotion metrics flush). *)
val iter_values : (Count.t -> unit) -> table -> unit

(** [count_big tbl] is the number of stored counts that have left the
    int63 fast path.  O(1) on dense tables; one unboxed traversal on
    the others — cheap enough for armed-observability metric flushes. *)
val count_big : table -> int

(** [iter_decoded c tbl ~arity scratch f] calls [f scratch v] for every
    entry with the key decoded into [scratch] (length >= [arity]).
    [f] must not retain or mutate [scratch]. *)
val iter_decoded :
  codec -> table -> arity:int -> int array -> (int array -> Count.t -> unit) -> unit

(** [total tbl] sums all stored counts. *)
val total : table -> Count.t

(** [release tbl] recycles a dense table's backing array into a
    domain-local pool (clearing it in O(entries)); no-op on the other
    modes.  [tbl] must not be used afterwards, and must not be
    released twice.  Fresh dense keyspaces are major-heap allocations
    whose GC cost dominates small DP runs — engines should release
    every table they create once its counts have been consumed. *)
val release : table -> unit
