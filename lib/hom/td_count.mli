(** Homomorphism counting by dynamic programming over a tree
    decomposition of the pattern.

    This is the classical [O(|V(G)|^{w+1})] algorithm (w = width of the
    decomposition of [H]) that makes homomorphism counts from
    bounded-treewidth graphs tractable.  It is the computational engine
    behind the paper's upper bound: Observation 23 computes
    [|Ans((H,X),G)|] from the counts [|Hom(F_ℓ, G)|], and the graphs
    [F_ℓ] have treewidth at most [ew(H,X)] (Lemma 16), so each count is
    produced by this module in polynomial time for fixed width.

    Counts are returned as {!Wlcq_util.Bigint} values: unlike
    enumeration, the DP multiplies sub-counts and can exceed the native
    integer range. *)

open Wlcq_graph

(** [count h g] is [|Hom(h, g)|], computed over an optimal tree
    decomposition of [h]. *)
val count : Graph.t -> Graph.t -> Wlcq_util.Bigint.t

(** [count_with_decomposition d h g] uses the supplied decomposition
    (which must be valid for [h]).
    @raise Invalid_argument when [d] is not valid for [h]. *)
val count_with_decomposition :
  Wlcq_treewidth.Decomposition.t -> Graph.t -> Graph.t ->
  Wlcq_util.Bigint.t
