(** Homomorphism counting by dynamic programming over a tree
    decomposition of the pattern.

    This is the classical [O(|V(G)|^{w+1})] algorithm (w = width of the
    decomposition of [H]) that makes homomorphism counts from
    bounded-treewidth graphs tractable.  It is the computational engine
    behind the paper's upper bound: Observation 23 computes
    [|Ans((H,X),G)|] from the counts [|Hom(F_ℓ, G)|], and the graphs
    [F_ℓ] have treewidth at most [ew(H,X)] (Lemma 16), so each count is
    produced by this module in polynomial time for fixed width.

    Two engines are provided.  The default one runs on flat sparse
    tables keyed by packed bag assignments ({!Dp_key}), with an
    int63-with-overflow-promotion arithmetic fast path
    ({!Wlcq_util.Count}), arc-consistency candidate pruning, and
    parallel processing of independent decomposition subtrees
    ({!parallel_threshold}).  The original int-list/Bigint engine
    survives as [count_reference]/[count_with_decomposition_reference]
    — the differential-testing oracle, mirroring [Kwl.run_reference].

    All entry points accept [?candidates] restricting the image of each
    pattern vertex (colour-prescribed homomorphisms, Definition 48);
    pins are the singleton special case.

    Counts are returned as {!Wlcq_util.Bigint} values: unlike
    enumeration, the DP multiplies sub-counts and can exceed the native
    integer range. *)

open Wlcq_graph
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome

(** [count h g] is [|Hom(h, g)|], computed over an optimal tree
    decomposition of [h] (memoised in {!Wlcq_treewidth.Exact}).
    [budget] is ticked throughout the DP (workers tick a shared atomic
    trip flag and wind down cooperatively; the decomposition step is
    {e not} budgeted on this raising entry point — use
    {!count_budgeted} for the full ladder).
    @raise Budget.Exhausted when [budget] trips. *)
val count :
  ?budget:Budget.t ->
  ?candidates:(int -> Wlcq_util.Bitset.t) ->
  Graph.t -> Graph.t -> Wlcq_util.Bigint.t

(** [count_with_decomposition d h g] uses the supplied decomposition
    (which must be valid for [h]).
    @raise Invalid_argument when [d] is not valid for [h].
    @raise Budget.Exhausted when [budget] trips. *)
val count_with_decomposition :
  ?budget:Budget.t ->
  ?candidates:(int -> Wlcq_util.Bitset.t) ->
  Wlcq_treewidth.Decomposition.t -> Graph.t -> Graph.t ->
  Wlcq_util.Bigint.t

(** [count_budgeted ~budget h g] is the non-raising ladder: [`Exact]
    when nothing tripped; [`Degraded (v, _)] when the treewidth search
    fell back to a heuristic decomposition — [v] is still the {e exact}
    homomorphism count, only the DP ran over a wider decomposition;
    [`Exhausted r] when the budget tripped inside the DP itself.
    Counters: [robust.fallback.td_heuristic_decomp],
    [robust.fallback.td_exhausted]; a [Fault.Domain_spawn] injection
    demotes parallel strides to the driver
    ([robust.fallback.td_seq_resume]) with byte-identical results. *)
val count_budgeted :
  budget:Budget.t ->
  ?candidates:(int -> Wlcq_util.Bitset.t) ->
  Graph.t -> Graph.t ->
  (Wlcq_util.Bigint.t, Budget.reason) Outcome.t

(** Non-raising variant of {!count_with_decomposition}. *)
val count_with_decomposition_budgeted :
  budget:Budget.t ->
  ?candidates:(int -> Wlcq_util.Bitset.t) ->
  Wlcq_treewidth.Decomposition.t -> Graph.t -> Graph.t ->
  (Wlcq_util.Bigint.t, Budget.reason) Outcome.t

(** [count_many hs g] is [List.map (fun h -> count h g) hs], but
    sharing one decomposition across patterns whenever a pattern is the
    induced prefix of the largest one (the Lemma 22 extension family
    F_1 ⊆ … ⊆ F_L is laid out like that) and one candidate seed
    structure for the whole batch — the batch entry point of the
    interpolation pipeline ([Wl_dimension], [Certificate]).
    @raise Budget.Exhausted when [budget] trips during any pattern's
    DP. *)
val count_many :
  ?budget:Budget.t ->
  ?candidates:(int -> Wlcq_util.Bitset.t) ->
  Graph.t list -> Graph.t -> Wlcq_util.Bigint.t list

(** Work-size threshold below which the DP stays sequential (same
    contract as [Kwl.parallel_threshold]: [0] forces parallel fan-out,
    [max_int] forces sequential).  Test/benchmark hook; set it before a
    run from the driver domain only. *)
val parallel_threshold : int ref

(** The original engine, kept verbatim as a differential-testing
    oracle. *)
val count_reference :
  ?candidates:(int -> Wlcq_util.Bitset.t) ->
  Graph.t -> Graph.t -> Wlcq_util.Bigint.t

(** Oracle variant of {!count_with_decomposition}.  [budget] is polled
    per enumerated bag homomorphism; [Budget.Exhausted] escapes when
    it trips (the budgeted entry catches it).
    @raise Invalid_argument when [d] is not valid for [h]. *)
val count_with_decomposition_reference :
  ?budget:Budget.t ->
  ?candidates:(int -> Wlcq_util.Bitset.t) ->
  Wlcq_treewidth.Decomposition.t -> Graph.t -> Graph.t ->
  Wlcq_util.Bigint.t
