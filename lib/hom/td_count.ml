open Wlcq_graph
open Wlcq_treewidth
module Bitset = Wlcq_util.Bitset
module Bigint = Wlcq_util.Bigint
module Count = Wlcq_util.Count
module Tbl = Wlcq_util.Ordering.Int_list_tbl
module Obs = Wlcq_obs.Obs
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome
module Fault = Wlcq_robust.Fault
module Dispatch = Wlcq_dispatch.Dispatch

let m_runs = Obs.counter "td_count.runs"
let m_entries = Obs.counter "td_count.dp_entries"
let d_bag = Obs.distribution "td_count.bag_size"
let m_packed_keys = Obs.counter "td_count.packed_keys"
let m_hashed_keys = Obs.counter "td_count.hashed_keys"
let m_small_values = Obs.counter "td_count.int63_values"
let m_big_values = Obs.counter "td_count.bigint_promotions"
let m_cand_total = Obs.counter "td_count.candidates_total"
let m_cand_pruned = Obs.counter "td_count.candidates_pruned"
let m_seq_runs = Obs.counter "td_count.seq_runs"
let m_par_runs = Obs.counter "td_count.par_runs"
let m_batch_runs = Obs.counter "td_count.batch_runs"
let m_decomp_shared = Obs.counter "td_count.decomp_shared"
let m_seq_resume = Obs.counter "robust.fallback.td_seq_resume"
let m_heuristic_decomp = Obs.counter "robust.fallback.td_heuristic_decomp"
let m_exhausted = Obs.counter "robust.fallback.td_exhausted"

(* The table at a decomposition node t maps each partial homomorphism
   φ : B_t → V(G) (a hom of H[B_t]) to the number of homomorphisms of
   H[V_t] → G extending φ, where V_t is the union of the bags in the
   subtree rooted at t.  Children are combined by grouping their tables
   by the restriction to the shared bag intersection: any vertex common
   to two children's subtrees lies in B_t by (T2), so the product over
   children counts every subtree vertex exactly once. *)

(* ------------------------------------------------------------------ *)
(* Reference engine: int-list keys, full Bigint arithmetic.            *)
(* Kept verbatim as the differential-testing oracle for the packed     *)
(* engine below (mirroring Kwl.run_reference) — do not optimise.       *)
(* ------------------------------------------------------------------ *)

let count_with_decomposition_reference ?(budget = Budget.unlimited) ?candidates
    d h g =
  if not (Decomposition.is_valid_for d h) then
    invalid_arg "Td_count.count_with_decomposition_reference: decomposition does not match the pattern";
  let nodes = Graph.num_vertices d.Decomposition.tree in
  if Graph.num_vertices h = 0 then Bigint.one
  else if Graph.num_vertices g = 0 then Bigint.zero
  else Obs.span "td_count.run_reference" @@ fun () ->
    let on = Obs.enabled () in
    if on then Obs.incr m_runs;
    (* Root the decomposition tree at node 0 and compute a post-order. *)
    let parent = Array.make nodes (-1) in
    let order = ref [] in
    let seen = Array.make nodes false in
    let queue = Queue.create () in
    seen.(0) <- true;
    Queue.add 0 queue;
    while not (Queue.is_empty queue) do
      let t = Queue.take queue in
      order := t :: !order;
      Graph.iter_neighbours d.Decomposition.tree t (fun s -> (* lint: hot-alloc tree rooting: one closure per decomposition node, before the DP *)
          if not seen.(s) then begin
            seen.(s) <- true;
            parent.(s) <- t;
            Queue.add s queue
          end)
    done;
    let postorder = !order (* reverse BFS order: children before parents *) in
    let bag_vertices t = Bitset.to_list d.Decomposition.bags.(t) in
    (* [positions_in bag_arr sub] maps each H-vertex of [sub] to its
       index in [bag_arr] — restrictions become O(|sub|) array reads
       instead of O(|bag|²) assoc scans. *)
    let inv = Array.make (Graph.num_vertices h) (-1) in
    let positions_in bag_arr sub =
      Array.iteri (fun i v -> inv.(v) <- i) bag_arr;
      let pos = Array.of_list (List.map (fun v -> inv.(v)) sub) in
      Array.iter (fun v -> inv.(v) <- -1) bag_arr;
      pos
    in
    let restrict_images images pos =
      Array.fold_right (fun p acc -> images.(p) :: acc) pos []
    in
    let tables : Bigint.t Tbl.t array =
      Array.init nodes (fun _ -> Tbl.create 64)
    in
    (* keys of a node's table: images of the bag vertices in increasing
       H-vertex order *)
    let children = Array.make nodes [] in
    Array.iteri
      (fun s p -> if p >= 0 then children.(p) <- s :: children.(p))
      parent;
    List.iter
      (fun t ->
         let bag = bag_vertices t in
         let bag_arr = Array.of_list bag in
         (* Per child: group the child table by the restriction to the
            intersection with this bag. *)
         let grouped =
           List.map
             (fun s ->
                let shared =
                  Bitset.to_list
                    (Bitset.inter d.Decomposition.bags.(t)
                       d.Decomposition.bags.(s))
                in
                let sbag_arr = Array.of_list (bag_vertices s) in
                let spos_child = positions_in sbag_arr shared in
                let proj : Bigint.t Tbl.t =
                  Tbl.create 64
                in
                Tbl.iter
                  (fun key v ->
                     let karr = Array.of_list key in
                     let r = restrict_images karr spos_child in
                     let prev =
                       Option.value ~default:Bigint.zero
                         (Tbl.find_opt proj r)
                     in
                     Tbl.replace proj r (Bigint.add prev v))
                  tables.(s);
                (positions_in bag_arr shared, proj))
             children.(t)
         in
         (* Enumerate partial homomorphisms of H[bag] into g via the
            pruned backtracking of Brute on the induced subgraph; the
            hom array is parallel to [bag_arr] because [Ops.induced]
            keeps the ascending vertex order. *)
         let sub, back = Ops.induced h bag in
         let sub_candidates =
           Option.map (fun c i -> c back.(i)) candidates
         in
         Brute.iter ~budget ?candidates:sub_candidates sub g (fun m ->
             (* the per-bag homomorphism enumeration is the unbounded
                dimension of the oracle: poll it (both here and inside
                the backtracking search, which can run long between
                enumerated homomorphisms) so a tripped deadline can
                stop the differential run *)
             Budget.tick_check budget;
             let value =
               List.fold_left
                 (fun acc (spos, proj) ->
                    if Bigint.is_zero acc then acc
                    else
                      match
                        Tbl.find_opt proj (restrict_images m spos)
                      with
                      | None -> Bigint.zero
                      | Some v -> Bigint.mul acc v)
                 Bigint.one grouped
             in
             if not (Bigint.is_zero value) then begin
               let key = Array.to_list m in
               let prev =
                 Option.value ~default:Bigint.zero
                   (Tbl.find_opt tables.(t) key)
               in
               Tbl.replace tables.(t) key (Bigint.add prev value)
             end);
         if on then begin
           Obs.add m_entries (Tbl.length tables.(t));
           Obs.observe d_bag (List.length bag)
         end)
      postorder;
    Tbl.fold (fun _ v acc -> Bigint.add acc v) tables.(0) Bigint.zero

let count_reference ?candidates h g =
  count_with_decomposition_reference ?candidates
    (Exact.optimal_decomposition h) h g

(* ------------------------------------------------------------------ *)
(* Candidate pruning.                                                  *)
(* ------------------------------------------------------------------ *)

(* Target vertices of positive degree: a pattern vertex with an
   incident edge can only map there.  Shared across a count_many batch
   as the common candidate structure. *)
let support g =
  let s = Bitset.create (Graph.num_vertices g) in
  Graph.iter_edges g (fun u v ->
      Bitset.set s u;
      Bitset.set s v);
  s

(* Per-pattern-vertex candidate sets: the caller-supplied restriction
   (full sets by default), intersected with [seed] for vertices of
   positive degree, then refined by arc consistency over the pattern
   edges to a fixpoint: C_u ← C_u ∩ N_g(C_u') for every pattern edge
   (u, u').  Sound for homomorphism counting — only target vertices
   that cannot appear in any (restricted) homomorphism are removed.
   Degree- or cardinality-based filters stronger than this are NOT
   sound for homs (a hom need not be injective), so none are used. *)
let arc_consistent ?candidates ?seed h g =
  let n = Graph.num_vertices h in
  let ng = Graph.num_vertices g in
  let init u =
    let base =
      match candidates with None -> Bitset.full ng | Some c -> c u
    in
    match seed with
    | Some s when Graph.degree h u > 0 -> Bitset.inter base s
    | _ -> base
  in
  let cand = Array.init n init in
  let edges = Graph.edges h in
  let changed = ref true in
  (* hoisted out of the fixpoint: [refine] captures only the stable
     [cand]/[changed], so allocating it per pass was pure churn (R9) *)
  let refine a b =
    let nb = ref (Bitset.create ng) in
    Bitset.iter
      (fun w -> nb := Bitset.union !nb (Graph.neighbours g w))
      cand.(b);
    let next = Bitset.inter cand.(a) !nb in
    if not (Bitset.equal next cand.(a)) then begin
      cand.(a) <- next;
      changed := true
    end
  in
  let refine_edge (u, v) =
    refine u v;
    refine v u
  in
  (* lint: allow R7 monotone fixpoint: each pass either removes a
     candidate from some domain or terminates, so it runs at most
     n * |V(G)| passes *)
  while !changed do
    changed := false;
    List.iter refine_edge edges
  done;
  if Obs.enabled () then begin
    let kept = Array.fold_left (fun a b -> a + Bitset.cardinal b) 0 cand in
    Obs.add m_cand_total (n * ng);
    Obs.add m_cand_pruned ((n * ng) - kept)
  end;
  cand

(* The lean variant: seed intersection only, no fixpoint.  On tiny
   instances the arc-consistency loop costs more than the pruning it
   buys; Dispatch.prune_candidates picks between the two. *)
let seeded_candidates ?candidates ~seed h g =
  let ng = Graph.num_vertices g in
  Array.init (Graph.num_vertices h) (fun u ->
      let base =
        match candidates with None -> Bitset.full ng | Some c -> c u
      in
      if Graph.degree h u > 0 then Bitset.inter base seed else base)

let make_candidates ?candidates ~work h g =
  let seed = support g in
  if Dispatch.prune_candidates ~work then
    arc_consistent ?candidates ~seed h g
  else seeded_candidates ?candidates ~seed h g

(* ------------------------------------------------------------------ *)
(* Packed engine.                                                      *)
(* ------------------------------------------------------------------ *)

(* Work-size threshold below which the DP stays sequential, mirroring
   Kwl.parallel_threshold: 0 forces parallel fan-out, max_int forces
   sequential (the differential tests compare both paths byte for
   byte). *)
(* lint: domain-local written by the test harness / benchmarks before a
   run and read once per run by the driver domain before any worker is
   spawned; worker domains never touch it. *)
let parallel_threshold = ref (1 lsl 15)

(* Saturating Σ_t n^|bag_t|, capped at 2^30 — only compared against the
   threshold, so saturation is harmless. *)
let work_estimate bags ng =
  let cap = 1 lsl 30 in
  let base = max 2 ng in
  let acc = ref 0 in
  Array.iter
    (fun b ->
       let w = ref 1 in
       for _ = 1 to Bitset.cardinal b do
         if !w > cap / base then w := cap else w := !w * base
       done;
       acc := min cap (!acc + !w))
    bags;
  !acc

(* The DP proper, over precomputed candidate sets.  Each node's table
   depends only on its subtree, so disjoint subtrees of the root are
   independent: workers process whole subtrees (strided over the root's
   children), touching only tables of their own subtree, and the driver
   processes the root after joining.  Determinism: a node's table is
   produced by the same sequence of operations whichever domain runs
   it, so results (and even hashtable iteration orders) are identical
   to the sequential run.

   Budget protocol: workers never raise across the spawn boundary —
   they tick the shared budget (atomic trip flag) and wind down when it
   is no longer live; the driver reads the verdict once after joining.
   A spawn-site fault (Fault.Domain_spawn) demotes that worker's stride
   to the driver, which processes it sequentially on the very same
   flat tables — results stay byte-identical, only the schedule
   changes. *)
let run_packed ~budget d h g cand =
  let nodes = Graph.num_vertices d.Decomposition.tree in
  let nh = Graph.num_vertices h in
  let ng = Graph.num_vertices g in
  let bags = d.Decomposition.bags in
  let rooted = Decomposition.rooted d in
  let root = rooted.Decomposition.root in
  let parent = rooted.Decomposition.parent in
  let postorder = rooted.Decomposition.postorder in
  let c = Dp_key.codec ~n:ng in
  let tables =
    Array.init nodes (fun t -> Dp_key.table c ~arity:(Bitset.cardinal bags.(t)))
  in
  (* flattened adjacency of the target graph, shared read-only by all
     nodes (and domains): edge-constrained positions enumerate the
     neighbour array of an already-placed endpoint with membership
     tests — no per-extension set allocation *)
  let adj =
    Array.init ng (fun v -> Array.of_list (Bitset.to_list (Graph.neighbours g v)))
  in
  let process_node t =
    let bag = Bitset.to_list bags.(t) in
    let bag_arr = Array.of_list bag in
    let arity = Array.length bag_arr in
    let inv = Array.make nh (-1) in
    let positions_in arr sub =
      Array.iteri (fun i v -> inv.(v) <- i) arr;
      let pos = Array.of_list (List.map (fun v -> inv.(v)) sub) in
      Array.iter (fun v -> inv.(v) <- -1) arr;
      pos
    in
    let grouped =
      Array.map
        (fun s ->
           let shared = Bitset.to_list (Bitset.inter bags.(t) bags.(s)) in
           let sbag_arr = Array.of_list (Bitset.to_list bags.(s)) in
           let spos_child = positions_in sbag_arr shared in
           let proj = Dp_key.project c tables.(s) spos_child in
           (positions_in bag_arr shared, proj))
        rooted.Decomposition.children.(t)
    in
    let ngroups = Array.length grouped in
    (* intra-bag pattern edges as position pairs: edges_at.(i) lists the
       earlier positions j < i with {bag_arr.(j), bag_arr.(i)} ∈ E(h),
       checked the moment position i is assigned *)
    let edges_at =
      Array.init arity (fun i ->
          let u = bag_arr.(i) in
          let js = ref [] in
          for j = i - 1 downto 0 do
            if Graph.adjacent h bag_arr.(j) u then js := j :: !js
          done;
          Array.of_list !js)
    in
    (* flatten each position's candidate set once; unconstrained
       positions then iterate a plain int array, while edge-constrained
       positions iterate candidates ∩ neighbours of the already-placed
       endpoints — O(deg) instead of O(n) per extension *)
    let cand_arrs =
      Array.map (fun u -> Array.of_list (Bitset.to_list cand.(u))) bag_arr
    in
    let images = Array.make (max 1 arity) 0 in
    let value = ref Count.one in
    let ok = ref true in
    let emit () =
      value := Count.one;
      ok := true;
      for gi = 0 to ngroups - 1 do
        if !ok then begin
          let spos, proj = grouped.(gi) in
          let v = Dp_key.find c proj images spos in
          if Count.is_zero v then ok := false
          else value := Count.mul !value v
        end
      done;
      if !ok then Dp_key.bump c tables.(t) images !value
    in
    (* budget enforcement is amortised through a local fuel counter:
       [Budget.tick]/[Budget.live] are out-of-line calls, and paying
       them at every recursion step costs ~4% on the F4 workload —
       checking every 64 steps keeps the overhead under the 3% bound
       while still winding down within a bounded suffix of the
       enumeration *)
    let fuel = ref 0 in
    let aborted = ref false in
    let rec go i =
      incr fuel;
      if !fuel land 63 = 0 then begin
        Budget.tick budget;
        if not (Budget.live budget) then aborted := true
      end;
      if !aborted then ()
      else if i = arity then emit ()
      else begin
        let es = edges_at.(i) in
        if Array.length es = 0 then begin
          let ca = cand_arrs.(i) in
          for k = 0 to Array.length ca - 1 do
            images.(i) <- ca.(k);
            go (i + 1)
          done
        end
        else begin
          let cs = cand.(bag_arr.(i)) in
          let pivot = adj.(images.(es.(0))) in
          let ne = Array.length es in
          for k = 0 to Array.length pivot - 1 do
            let w = pivot.(k) in
            if Bitset.mem cs w then begin
              let okw = ref true in
              let j = ref 1 in
              while !okw && !j < ne do
                if not (Graph.adjacent g images.(es.(!j)) w) then okw := false;
                incr j
              done;
              if !okw then begin
                images.(i) <- w;
                go (i + 1)
              end
            end
          done
        end
      end
    in
    go 0;
    (* projections are consumed only by this node's emits *)
    Array.iter (fun (_, proj) -> Dp_key.release proj) grouped
  in
  let kids = rooted.Decomposition.children.(root) in
  let nd =
    Dispatch.dp_domains
      ~requested:(Domain.recommended_domain_count ())
      ~subtrees:(Array.length kids)
      ~work:(work_estimate bags ng)
      ~threshold:!parallel_threshold
  in
  let on = Obs.enabled () in
  if nd <= 1 then begin
    if on then Obs.incr m_seq_runs;
    Array.iter
      (fun t -> if Budget.live budget then process_node t)
      postorder
  end
  else begin
    if on then Obs.incr m_par_runs;
    (* kid_slot.(t): index (within kids) of the root child whose
       subtree contains t; worker w owns slots congruent to w mod nd. *)
    let kid_slot = Array.make nodes (-1) in
    Array.iteri (fun i k -> kid_slot.(k) <- i) kids;
    for i = nodes - 1 downto 0 do
      (* reverse postorder = BFS order: parents before children *)
      let t = postorder.(i) in
      let p = parent.(t) in
      if p >= 0 && p <> root then kid_slot.(t) <- kid_slot.(p)
    done;
    let process_stride w =
      Array.iter
        (fun t ->
           if t <> root && kid_slot.(t) mod nd = w && Budget.live budget then
             process_node t)
        postorder
    in
    (* spawn-site fault hook: a stride whose spawn "fails" is demoted
       to the driver and resumed sequentially after its own stride *)
    let rec spawn_from j workers demoted =
      if j >= nd then (List.rev workers, List.rev demoted)
      else if Fault.should_fail Fault.Domain_spawn then
        spawn_from (j + 1) workers (j :: demoted)
      else
        let w =
          Domain.spawn (fun () ->
              try process_stride j
              with Budget.Exhausted r -> Budget.trip budget r)
        in
        spawn_from (j + 1) (w :: workers) demoted
    in
    let workers, demoted = spawn_from 1 [] [] in
    process_stride 0;
    (match demoted with
     | [] -> ()
     | _ :: _ ->
       Obs.incr m_seq_resume;
       Obs.journal ~severity:Obs.Warn
         ~attrs:
           [ ("demoted_strides", string_of_int (List.length demoted)) ]
         "td_count.seq_resume";
       List.iter process_stride demoted);
    List.iter Domain.join workers;
    if Budget.live budget then process_node root
  end;
  if on then begin
    (* one flush per run, not per table or per value: each [Obs.add]
       is an atomic round-trip, and on DP-heavy runs anything finer
       (worst of all an [iter_values] traversal, which boxes dense
       counts) busts the armed-observability overhead bound *)
    let entries = ref 0 and packed = ref 0 and hashed = ref 0 in
    let bigs = ref 0 in
    Array.iteri
      (fun t tbl ->
         let len = Dp_key.length tbl in
         entries := !entries + len;
         Obs.observe d_bag (Bitset.cardinal bags.(t));
         if Dp_key.is_packed tbl then packed := !packed + len
         else hashed := !hashed + len;
         bigs := !bigs + Dp_key.count_big tbl)
      tables;
    Obs.add m_entries !entries;
    Obs.add m_packed_keys !packed;
    Obs.add m_hashed_keys !hashed;
    Obs.add m_small_values (!entries - !bigs);
    Obs.add m_big_values !bigs
  end;
  let result =
    match Budget.tripped budget with
    | None -> Ok (Count.to_bigint (Dp_key.total tables.(root)))
    | Some r -> Error r
  in
  Array.iter Dp_key.release tables;
  result

(* Packed path shared by the entry points: candidate construction
   (full or lean, per the dispatch decision on the DP work estimate)
   followed by the flat-table DP. *)
let run_packed_path ~budget ?candidates d h g =
  Obs.span "td_count.run" @@ fun () ->
    if Obs.enabled () then Obs.incr m_runs;
    let work = work_estimate d.Decomposition.bags (Graph.num_vertices g) in
    let cand = make_candidates ?candidates ~work h g in
    match run_packed ~budget d h g cand with
    | Ok v -> v
    | Error r -> raise (Budget.Exhausted r)

let choose h g =
  Dispatch.choose_hom ~nh:(Graph.num_vertices h) ~ng:(Graph.num_vertices g)
    ~mg:(Graph.num_edges g)

(* ------------------------------------------------------------------ *)
(* Content-addressed count cache                                       *)
(* ------------------------------------------------------------------ *)

module Cache = Wlcq_cache.Cache

let m_cache_hits = Obs.counter "td_count.cache_hits"
let m_cache_misses = Obs.counter "td_count.cache_misses"

let count_store =
  Cache.store ~name:"td_count.count"
    ~words:(fun (v : Bigint.t) -> 8 + (String.length (Bigint.to_string v) / 8))
    ()

(* hom(h, g) is isomorphism-invariant in both arguments, so the DP's
   root aggregate can be keyed on the pair of canonical digests and
   reused verbatim — no per-vertex translation needed for a total.
   The cache only arms itself where (a) the instance is DP-scale by
   the auto cost model — tiny brute instances would pay more in
   canonicalisation than the count costs, (b) the caller did not
   restrict [?candidates] (a restricted count is not hom(h, g)), and
   (c) the engine is not forced — forced runs are differential probes
   and must exercise the engine they name. *)
let count_cacheable ?candidates h g =
  (match candidates with None -> true | Some _ -> false)
  && (match Dispatch.engine () with Dispatch.Auto -> true | _ -> false)
  && Cache.enabled ()
  && Dispatch.brute_cost ~nh:(Graph.num_vertices h)
       ~ng:(Graph.num_vertices g) ~mg:(Graph.num_edges g)
     > (Dispatch.calibration ()).Dispatch.brute_hom_max

(* [compute] raises [Budget.Exhausted] on a trip, so a value reaching
   [add] is exact by construction; degraded outcomes go through
   [count_budgeted], which bypasses this helper's [add]. *)
let count_via_cache ~cacheable ~key compute =
  if not cacheable then compute ()
  else
    match Cache.find count_store (Lazy.force key) with
    | Some v ->
      Obs.incr m_cache_hits;
      v
    | None ->
      Obs.incr m_cache_misses;
      let v = compute () in
      Cache.add count_store (Lazy.force key) v;
      v

let count_key h g =
  lazy
    (let ah, _ = Cache.address h in
     let ag, _ = Cache.address g in
     ah ^ "|" ^ ag)

let count_with_decomposition ?(budget = Budget.unlimited) ?candidates d h g =
  if not (Decomposition.is_valid_for d h) then
    invalid_arg "Td_count.count_with_decomposition: decomposition does not match the pattern";
  if Graph.num_vertices h = 0 then Bigint.one
  else if Graph.num_vertices g = 0 then Bigint.zero
  else
    match choose h g with
    | Dispatch.Hom_brute -> Bigint.of_int (Brute.count ~budget ?candidates h g)
    | Dispatch.Hom_reference ->
      count_with_decomposition_reference ~budget ?candidates d h g
    | Dispatch.Hom_packed -> run_packed_path ~budget ?candidates d h g

let count ?(budget = Budget.unlimited) ?candidates h g =
  if Graph.num_vertices h = 0 then Bigint.one
  else if Graph.num_vertices g = 0 then Bigint.zero
  else
    count_via_cache
      ~cacheable:(count_cacheable ?candidates h g)
      ~key:(count_key h g)
      (fun () ->
         (* dispatch before the decomposition: the point of the brute
            path is that tiny instances skip the treewidth machinery
            entirely *)
         match choose h g with
         | Dispatch.Hom_brute ->
           Bigint.of_int (Brute.count ~budget ?candidates h g)
         | Dispatch.Hom_reference -> count_reference ?candidates h g
         | Dispatch.Hom_packed ->
           run_packed_path ~budget ?candidates
             (Exact.optimal_decomposition h) h g)

(* One exhaustion bookkeeping point for every ladder exit: counter,
   flight-recorder event, outcome. *)
let note_exhausted r =
  Obs.incr m_exhausted;
  Obs.journal ~severity:Obs.Warn
    ~attrs:[ ("reason", Budget.reason_to_string r) ]
    "td_count.exhausted";
  `Exhausted r

(* lint: allow R8 Invalid_argument is engine-selection validation
   reporting a caller bug, deliberately outside the Outcome envelope *)
let count_with_decomposition_budgeted ~budget ?candidates d h g =
  Obs.entry_point "td_count.count_with_decomposition" @@ fun () ->
  match count_with_decomposition ~budget ?candidates d h g with
  | v -> `Exact v
  | exception Budget.Exhausted r -> note_exhausted r

(* The full ladder: the decomposition step degrades to the heuristic
   order before the DP runs (a wider decomposition slows the DP but the
   count it produces is still exact), and only a trip inside the DP
   itself exhausts the run. *)
(* lint: allow R8 Invalid_argument is engine-selection validation
   reporting a caller bug, deliberately outside the Outcome envelope *)
let count_budgeted ~budget ?candidates h g =
  Obs.entry_point "td_count.count" @@ fun () ->
  if Graph.num_vertices h = 0 then `Exact Bigint.one
  else if Graph.num_vertices g = 0 then `Exact Bigint.zero
  else if
    (* tiny instances skip the whole decomposition ladder; a partial
       brute enumeration is still a sound lower bound, but the ladder's
       contract only carries the trip reason, so the partial is dropped *)
    match choose h g with Dispatch.Hom_brute -> true | _ -> false
  then
    match Brute.count_budgeted ~budget ?candidates h g with
    | `Exact n -> `Exact (Bigint.of_int n)
    | `Degraded (n, r) -> `Degraded (Bigint.of_int n, r)
    | `Exhausted (_, r) -> note_exhausted r
  else begin
    (* budgeted runs read the cache too: a memoised total is exact
       whatever budget produced it, and a warm daemon answering
       deadline-bound requests is exactly the reader that profits.
       Only writes are gated — the [`Exact] arm below — so degraded
       values never enter the tier. *)
    let cacheable = count_cacheable ?candidates h g in
    let key = count_key h g in
    let cached =
      if cacheable then Cache.find count_store (Lazy.force key) else None
    in
    match cached with
    | Some v ->
      Obs.incr m_cache_hits;
      `Exact v
    | None ->
      if cacheable then Obs.incr m_cache_misses;
      let outcome =
        match Exact.optimal_decomposition_budgeted ~budget h with
        | exception Budget.Exhausted r -> note_exhausted r
        | od ->
          let d, decomp_degraded =
            match od with
            | `Exact d -> (d, None)
            | `Degraded (d, r) -> (d, Some r)
            | `Exhausted _ -> assert false
          in
          (* the DP rung runs under a fork: the decomposition phase's
             trip latch must not poison an otherwise-completable DP
             (the fork re-trips immediately if the
             deadline/ceiling/token condition still holds) *)
          let dp_budget =
            match decomp_degraded with
            | None -> budget
            | Some _ -> Budget.fork budget
          in
          match count_with_decomposition ~budget:dp_budget ?candidates d h g
          with
          | exception Budget.Exhausted r -> note_exhausted r
          | v ->
            (match decomp_degraded with
             | None -> `Exact v
             | Some r ->
               Obs.incr m_heuristic_decomp;
               Obs.journal ~severity:Obs.Info
                 ~attrs:[ ("cause", Budget.reason_to_string r.Outcome.cause) ]
                 "td_count.heuristic_decomp";
               Outcome.degraded ~cause:r.Outcome.cause
                 ~fallback:"heuristic decomposition (count still exact)" v)
      in
      (* never cache [`Degraded]: only fully-trusted exact totals
         enter the tier *)
      (match outcome with
       | `Exact v when cacheable -> Cache.add count_store (Lazy.force key) v
       | _ -> ());
      outcome
  end

(* ------------------------------------------------------------------ *)
(* Batch API.                                                          *)
(* ------------------------------------------------------------------ *)

(* Is [h] the subgraph of [hmax] induced on its first [num_vertices h]
   vertices?  The extension family F_1 ⊆ F_2 ⊆ … of Lemma 22 is laid
   out exactly like this (free variables first, then one block of
   quantified copies per ℓ), which is what makes sharing the largest
   pattern's decomposition sound. *)
let is_prefix_induced h hmax =
  let n = Graph.num_vertices h in
  n <= Graph.num_vertices hmax
  && begin
    let ok = ref true in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if not (Bool.equal (Graph.adjacent h u v) (Graph.adjacent hmax u v))
        then ok := false
      done
    done;
    !ok
  end

(* Restrict a decomposition of [hmax] to the prefix [0, n_i): same
   tree, bags intersected with the prefix.  For a prefix-induced
   pattern this preserves (T1) (every prefix vertex was covered), (T3)
   (every prefix edge is an hmax edge, so some bag contained it) and
   (T2) (subtree connectivity survives dropping vertices).  The raw
   restriction drags hmax's whole tree along — mostly emptied bags for
   a small prefix — so it is compacted before the DP runs over it. *)
let restrict_decomposition d n_i =
  let bags =
    Array.map
      (fun b ->
         let nb = Bitset.create n_i in
         Bitset.iter (fun v -> if v < n_i then Bitset.set nb v) b;
         nb)
      d.Decomposition.bags
  in
  Decomposition.compact { Decomposition.tree = d.Decomposition.tree; bags }

let count_many ?(budget = Budget.unlimited) ?candidates hs g =
  match hs with
  | [] -> []
  | h0 :: rest ->
    Obs.span "td_count.count_many" @@ fun () ->
      let on = Obs.enabled () in
      if on then Obs.incr m_batch_runs;
      let hmax =
        List.fold_left
          (fun a h ->
             if Graph.num_vertices h > Graph.num_vertices a then h else a)
          h0 rest
      in
      let n_max = Graph.num_vertices hmax in
      let d_max =
        if n_max = 0 then Decomposition.singleton hmax
        else Exact.optimal_decomposition hmax
      in
      (* one candidate structure for the whole batch: the target's
         support seeds every pattern's arc consistency *)
      let seed = support g in
      let ng = Graph.num_vertices g in
      List.map
        (fun h ->
           let n_i = Graph.num_vertices h in
           if n_i = 0 then Bigint.one
           else if ng = 0 then Bigint.zero
           else match choose h g with
           | Dispatch.Hom_brute ->
             Bigint.of_int (Brute.count ~budget ?candidates h g)
           | Dispatch.Hom_reference -> count_reference ?candidates h g
           | Dispatch.Hom_packed ->
             count_via_cache
               ~cacheable:(count_cacheable ?candidates h g)
               ~key:(count_key h g)
               (fun () ->
                  let d =
                    (* a size-n_max "prefix" is full adjacency equality
                       with hmax — same vertex count alone is not
                       enough *)
                    if not (is_prefix_induced h hmax) then
                      Exact.optimal_decomposition h
                    else if n_i = n_max then begin
                      if on then Obs.incr m_decomp_shared;
                      d_max
                    end
                    else begin
                      let d' = restrict_decomposition d_max n_i in
                      if Decomposition.is_valid_for d' h then begin
                        if on then Obs.incr m_decomp_shared;
                        d'
                      end
                      else Exact.optimal_decomposition h
                    end
                  in
                  if on then Obs.incr m_runs;
                  let work = work_estimate d.Decomposition.bags ng in
                  let cand =
                    if Dispatch.prune_candidates ~work then
                      arc_consistent ?candidates ~seed h g
                    else seeded_candidates ?candidates ~seed h g
                  in
                  match run_packed ~budget d h g cand with
                  | Ok v -> v
                  | Error r -> raise (Budget.Exhausted r)))
        hs
