open Wlcq_graph
open Wlcq_treewidth
module Bitset = Wlcq_util.Bitset
module Bigint = Wlcq_util.Bigint

(* The table at a decomposition node t maps each partial homomorphism
   φ : B_t → V(G) (a hom of H[B_t]) to the number of homomorphisms of
   H[V_t] → G extending φ, where V_t is the union of the bags in the
   subtree rooted at t.  Children are combined by grouping their tables
   by the restriction to the shared bag intersection: any vertex common
   to two children's subtrees lies in B_t by (T2), so the product over
   children counts every subtree vertex exactly once. *)

let count_with_decomposition d h g =
  if not (Decomposition.is_valid_for d h) then
    invalid_arg "Td_count: decomposition does not match the pattern";
  let nodes = Graph.num_vertices d.Decomposition.tree in
  if Graph.num_vertices h = 0 then Bigint.one
  else if Graph.num_vertices g = 0 then Bigint.zero
  else begin
    (* Root the decomposition tree at node 0 and compute a post-order. *)
    let parent = Array.make nodes (-1) in
    let order = ref [] in
    let seen = Array.make nodes false in
    let queue = Queue.create () in
    seen.(0) <- true;
    Queue.add 0 queue;
    while not (Queue.is_empty queue) do
      let t = Queue.take queue in
      order := t :: !order;
      Graph.iter_neighbours d.Decomposition.tree t (fun s ->
          if not seen.(s) then begin
            seen.(s) <- true;
            parent.(s) <- t;
            Queue.add s queue
          end)
    done;
    let postorder = !order (* reverse BFS order: children before parents *) in
    let bag_vertices t = Bitset.to_list d.Decomposition.bags.(t) in
    (* Enumerate partial homomorphisms of H[bag] into g via the pruned
       backtracking of Brute on the induced subgraph. *)
    let bag_assignments t =
      let bag = bag_vertices t in
      let sub, back = Ops.induced h bag in
      let acc = ref [] in
      Brute.iter sub g (fun m ->
          (* translate to an association keyed by H-vertices *)
          let assoc = Array.to_list (Array.mapi (fun i v -> (back.(i), v)) m) in
          acc := assoc :: !acc);
      !acc
    in
    let restrict assoc keys =
      List.map (fun k -> List.assoc k assoc) keys
    in
    let tables : (int list, Bigint.t) Hashtbl.t array =
      Array.init nodes (fun _ -> Hashtbl.create 64)
    in
    (* keys of a node's table: images of the bag vertices in increasing
       H-vertex order *)
    let children = Array.make nodes [] in
    Array.iteri
      (fun s p -> if p >= 0 then children.(p) <- s :: children.(p))
      parent;
    List.iter
      (fun t ->
         let bag = bag_vertices t in
         (* Per child: group the child table by the restriction to the
            intersection with this bag. *)
         let grouped =
           List.map
             (fun s ->
                let shared =
                  Bitset.to_list
                    (Bitset.inter d.Decomposition.bags.(t)
                       d.Decomposition.bags.(s))
                in
                let sbag = bag_vertices s in
                let proj : (int list, Bigint.t) Hashtbl.t =
                  Hashtbl.create 64
                in
                Hashtbl.iter
                  (fun key v ->
                     let assoc = List.combine sbag key in
                     let r = restrict assoc shared in
                     let prev =
                       Option.value ~default:Bigint.zero
                         (Hashtbl.find_opt proj r)
                     in
                     Hashtbl.replace proj r (Bigint.add prev v))
                  tables.(s);
                (shared, proj))
             children.(t)
         in
         List.iter
           (fun assoc ->
              let key = restrict assoc bag in
              let value =
                List.fold_left
                  (fun acc (shared, proj) ->
                     if Bigint.is_zero acc then acc
                     else
                       match
                         Hashtbl.find_opt proj (restrict assoc shared)
                       with
                       | None -> Bigint.zero
                       | Some v -> Bigint.mul acc v)
                  Bigint.one grouped
              in
              if not (Bigint.is_zero value) then
                Hashtbl.replace tables.(t) key value)
           (bag_assignments t))
      postorder;
    Hashtbl.fold (fun _ v acc -> Bigint.add acc v) tables.(0) Bigint.zero
  end

let count h g =
  count_with_decomposition (Exact.optimal_decomposition h) h g
