open Wlcq_graph
open Wlcq_treewidth
module Bitset = Wlcq_util.Bitset
module Bigint = Wlcq_util.Bigint
module Tbl = Wlcq_util.Ordering.Int_list_tbl
module Obs = Wlcq_obs.Obs

let m_runs = Obs.counter "td_count.runs"
let m_entries = Obs.counter "td_count.dp_entries"
let d_bag = Obs.distribution "td_count.bag_size"

(* The table at a decomposition node t maps each partial homomorphism
   φ : B_t → V(G) (a hom of H[B_t]) to the number of homomorphisms of
   H[V_t] → G extending φ, where V_t is the union of the bags in the
   subtree rooted at t.  Children are combined by grouping their tables
   by the restriction to the shared bag intersection: any vertex common
   to two children's subtrees lies in B_t by (T2), so the product over
   children counts every subtree vertex exactly once. *)

let count_with_decomposition d h g =
  if not (Decomposition.is_valid_for d h) then
    invalid_arg "Td_count.count_with_decomposition: decomposition does not match the pattern";
  let nodes = Graph.num_vertices d.Decomposition.tree in
  if Graph.num_vertices h = 0 then Bigint.one
  else if Graph.num_vertices g = 0 then Bigint.zero
  else Obs.span "td_count.run" @@ fun () ->
    let on = Obs.enabled () in
    if on then Obs.incr m_runs;
    (* Root the decomposition tree at node 0 and compute a post-order. *)
    let parent = Array.make nodes (-1) in
    let order = ref [] in
    let seen = Array.make nodes false in
    let queue = Queue.create () in
    seen.(0) <- true;
    Queue.add 0 queue;
    while not (Queue.is_empty queue) do
      let t = Queue.take queue in
      order := t :: !order;
      Graph.iter_neighbours d.Decomposition.tree t (fun s ->
          if not seen.(s) then begin
            seen.(s) <- true;
            parent.(s) <- t;
            Queue.add s queue
          end)
    done;
    let postorder = !order (* reverse BFS order: children before parents *) in
    let bag_vertices t = Bitset.to_list d.Decomposition.bags.(t) in
    (* [positions_in bag_arr sub] maps each H-vertex of [sub] to its
       index in [bag_arr] — restrictions become O(|sub|) array reads
       instead of O(|bag|²) assoc scans. *)
    let inv = Array.make (Graph.num_vertices h) (-1) in
    let positions_in bag_arr sub =
      Array.iteri (fun i v -> inv.(v) <- i) bag_arr;
      let pos = Array.of_list (List.map (fun v -> inv.(v)) sub) in
      Array.iter (fun v -> inv.(v) <- -1) bag_arr;
      pos
    in
    let restrict_images images pos =
      Array.fold_right (fun p acc -> images.(p) :: acc) pos []
    in
    let tables : Bigint.t Tbl.t array =
      Array.init nodes (fun _ -> Tbl.create 64)
    in
    (* keys of a node's table: images of the bag vertices in increasing
       H-vertex order *)
    let children = Array.make nodes [] in
    Array.iteri
      (fun s p -> if p >= 0 then children.(p) <- s :: children.(p))
      parent;
    List.iter
      (fun t ->
         let bag = bag_vertices t in
         let bag_arr = Array.of_list bag in
         (* Per child: group the child table by the restriction to the
            intersection with this bag. *)
         let grouped =
           List.map
             (fun s ->
                let shared =
                  Bitset.to_list
                    (Bitset.inter d.Decomposition.bags.(t)
                       d.Decomposition.bags.(s))
                in
                let sbag_arr = Array.of_list (bag_vertices s) in
                let spos_child = positions_in sbag_arr shared in
                let proj : Bigint.t Tbl.t =
                  Tbl.create 64
                in
                Tbl.iter
                  (fun key v ->
                     let karr = Array.of_list key in
                     let r = restrict_images karr spos_child in
                     let prev =
                       Option.value ~default:Bigint.zero
                         (Tbl.find_opt proj r)
                     in
                     Tbl.replace proj r (Bigint.add prev v))
                  tables.(s);
                (positions_in bag_arr shared, proj))
             children.(t)
         in
         (* Enumerate partial homomorphisms of H[bag] into g via the
            pruned backtracking of Brute on the induced subgraph; the
            hom array is parallel to [bag_arr] because [Ops.induced]
            keeps the ascending vertex order. *)
         let sub, _back = Ops.induced h bag in
         Brute.iter sub g (fun m ->
             let value =
               List.fold_left
                 (fun acc (spos, proj) ->
                    if Bigint.is_zero acc then acc
                    else
                      match
                        Tbl.find_opt proj (restrict_images m spos)
                      with
                      | None -> Bigint.zero
                      | Some v -> Bigint.mul acc v)
                 Bigint.one grouped
             in
             if not (Bigint.is_zero value) then begin
               let key = Array.to_list m in
               let prev =
                 Option.value ~default:Bigint.zero
                   (Tbl.find_opt tables.(t) key)
               in
               Tbl.replace tables.(t) key (Bigint.add prev value)
             end);
         if on then begin
           Obs.add m_entries (Tbl.length tables.(t));
           Obs.observe d_bag (List.length bag)
         end)
      postorder;
    Tbl.fold (fun _ v acc -> Bigint.add acc v) tables.(0) Bigint.zero

let count h g =
  count_with_decomposition (Exact.optimal_decomposition h) h g
