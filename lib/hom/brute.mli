(** Backtracking homomorphism search.

    [Hom(H, G)] is the set of edge-preserving maps [V(H) → V(G)]
    (Section 2).  The search assigns the vertices of [H] in a
    connectivity-aware order and prunes each candidate against the
    images of already-assigned neighbours, so it is exponential only in
    the "unconstrained frontier" of [H] — entirely adequate for the
    query-sized pattern graphs of the experiments, and the reference
    implementation that the treewidth DP ({!Td_count}) is validated
    against.

    Two refinements are shared by all entry points:
    - [pins] prescribes images of selected [H]-vertices (used for
      answer counting, where the free variables are pinned);
    - [candidates] restricts the image of each [H]-vertex to a set
      (used for colour-prescribed homomorphisms, Definition 48). *)

open Wlcq_graph
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome

(** [iter ?budget ?pins ?candidates h g f] applies [f] to every
    homomorphism from [h] to [g] (as an array indexed by [V(h)]).  The
    array is reused between calls.  [budget] is ticked once per search
    node.
    @raise Budget.Exhausted when [budget] trips mid-search. *)
val iter :
  ?budget:Budget.t ->
  ?pins:(int * int) list ->
  ?candidates:(int -> Wlcq_util.Bitset.t) ->
  Graph.t -> Graph.t -> (int array -> unit) -> unit

(** [count ?budget ?pins ?candidates h g] is [|Hom(h, g)|] subject to
    the restrictions.  (Counting by enumeration cannot overflow a
    native int in feasible time.)
    @raise Budget.Exhausted when [budget] trips mid-search. *)
val count :
  ?budget:Budget.t ->
  ?pins:(int * int) list ->
  ?candidates:(int -> Wlcq_util.Bitset.t) ->
  Graph.t -> Graph.t -> int

(** [count_budgeted ~budget h g] never raises: on exhaustion it
    returns [`Exhausted (partial, reason)], where [partial] counts the
    homomorphisms enumerated before the trip — a sound lower bound on
    [|Hom(h, g)|].  Bumps [robust.fallback.brute_partial]. *)
val count_budgeted :
  budget:Budget.t ->
  ?pins:(int * int) list ->
  ?candidates:(int -> Wlcq_util.Bitset.t) ->
  Graph.t -> Graph.t -> (int, int * Budget.reason) Outcome.t

(** [exists ?budget ?pins ?candidates h g] tests whether a
    homomorphism exists (early exit).  The backtracking search is
    worst-case exponential: [budget] is polled per assignment and
    {!Budget.Exhausted} escapes when it trips. *)
val exists :
  ?budget:Budget.t ->
  ?pins:(int * int) list ->
  ?candidates:(int -> Wlcq_util.Bitset.t) ->
  Graph.t -> Graph.t -> bool

(** [enumerate ?pins ?candidates h g] lists all homomorphisms. *)
val enumerate :
  ?pins:(int * int) list ->
  ?candidates:(int -> Wlcq_util.Bitset.t) ->
  Graph.t -> Graph.t -> int array list

(** [is_homomorphism h g map] checks that [map] preserves all edges. *)
val is_homomorphism : Graph.t -> Graph.t -> int array -> bool
