(** Homomorphism counting by dynamic programming over a {e nice} tree
    decomposition of the pattern.

    An independent implementation of [|Hom(H, G)|] with one DP rule
    per node kind (leaf / introduce / forget / join), used to
    cross-validate {!Td_count} (which runs on arbitrary
    decompositions).  Same asymptotics: [O(|V(G)|^{w+1})] for
    decomposition width [w]. *)

open Wlcq_graph
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome

(** [count h g] is [|Hom(h, g)|].  Runs on packed-key tables
    ({!Dp_key}) with the {!Wlcq_util.Count} int63 fast path.
    @raise Budget.Exhausted when [budget] trips. *)
val count : ?budget:Budget.t -> Graph.t -> Graph.t -> Wlcq_util.Bigint.t

(** Non-raising ladder, mirroring [Td_count.count_budgeted]:
    [`Degraded] values are exact counts over a heuristic (wider)
    decomposition. *)
val count_budgeted :
  budget:Budget.t -> Graph.t -> Graph.t ->
  (Wlcq_util.Bigint.t, Budget.reason) Outcome.t

(** [count_with_nice nd h g] uses the supplied nice decomposition
    (must be valid for [h]).
    @raise Invalid_argument otherwise.
    @raise Budget.Exhausted when [budget] trips. *)
val count_with_nice :
  ?budget:Budget.t ->
  Wlcq_treewidth.Nice.t -> Graph.t -> Graph.t -> Wlcq_util.Bigint.t

(** The original int-list/Bigint engine, kept verbatim as a
    differential-testing oracle. *)
val count_reference : Graph.t -> Graph.t -> Wlcq_util.Bigint.t

(** Oracle variant of {!count_with_nice}.
    @raise Invalid_argument when [nd] is not valid for [h]. *)
val count_with_nice_reference :
  Wlcq_treewidth.Nice.t -> Graph.t -> Graph.t -> Wlcq_util.Bigint.t
