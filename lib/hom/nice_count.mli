(** Homomorphism counting by dynamic programming over a {e nice} tree
    decomposition of the pattern.

    An independent implementation of [|Hom(H, G)|] with one DP rule
    per node kind (leaf / introduce / forget / join), used to
    cross-validate {!Td_count} (which runs on arbitrary
    decompositions).  Same asymptotics: [O(|V(G)|^{w+1})] for
    decomposition width [w]. *)

open Wlcq_graph

(** [count h g] is [|Hom(h, g)|].  Runs on packed-key tables
    ({!Dp_key}) with the {!Wlcq_util.Count} int63 fast path. *)
val count : Graph.t -> Graph.t -> Wlcq_util.Bigint.t

(** [count_with_nice nd h g] uses the supplied nice decomposition
    (must be valid for [h]).
    @raise Invalid_argument otherwise. *)
val count_with_nice :
  Wlcq_treewidth.Nice.t -> Graph.t -> Graph.t -> Wlcq_util.Bigint.t

(** The original int-list/Bigint engine, kept verbatim as a
    differential-testing oracle. *)
val count_reference : Graph.t -> Graph.t -> Wlcq_util.Bigint.t

(** Oracle variant of {!count_with_nice}.
    @raise Invalid_argument when [nd] is not valid for [h]. *)
val count_with_nice_reference :
  Wlcq_treewidth.Nice.t -> Graph.t -> Graph.t -> Wlcq_util.Bigint.t
