open Wlcq_graph
module Bitset = Wlcq_util.Bitset
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome
module Obs = Wlcq_obs.Obs

let m_partial = Obs.counter "robust.fallback.brute_partial"

(* Assignment order: BFS through each component, seeded by pinned
   vertices first, so that each newly assigned vertex is adjacent to an
   already-assigned one whenever the component allows it. *)
let assignment_order h pins =
  let n = Graph.num_vertices h in
  let seen = Array.make n false in
  let order = ref [] in
  let queue = Queue.create () in
  let push v =
    if not seen.(v) then begin
      seen.(v) <- true;
      Queue.add v queue
    end
  in
  let drain () =
    (* lint: allow R7 BFS over the pattern graph H: each vertex is
       enqueued once, O(|V(H)| + |E(H)|) before the search starts *)
    while not (Queue.is_empty queue) do
      let u = Queue.take queue in
      order := u :: !order;
      Graph.iter_neighbours h u push
    done
  in
  List.iter (fun (u, _) -> push u) pins;
  drain ();
  (* lint: allow R7 pattern-sized ordering pass; the backtracking
     search that follows polls the budget per node *)
  for v = 0 to n - 1 do
    push v;
    drain ()
  done;
  Array.of_list (List.rev !order)

exception Found

let iter ?(budget = Budget.unlimited) ?(pins = []) ?candidates h g f =
  let n = Graph.num_vertices h in
  let ng = Graph.num_vertices g in
  if n = 0 then f [||]
  else if ng = 0 then ()
  else begin
    let pinned = Array.make n (-1) in
    List.iter
      (fun (u, v) ->
         if u < 0 || u >= n || v < 0 || v >= ng then
           invalid_arg "Brute.iter: pin out of range";
         pinned.(u) <- v)
      pins;
    let order = assignment_order h pins in
    let image = Array.make n (-1) in
    (* For position i in the order, precompute the already-assigned
       neighbours of order.(i). *)
    let earlier_neighbours =
      Array.mapi
        (fun i u ->
           let before = Array.sub order 0 i in
           List.filter
             (fun w -> Array.exists (fun x -> x = w) before)
             (Graph.neighbours_list h u))
        order
    in
    let all = Bitset.full ng in
    let rec go i =
      Budget.tick_check budget;
      if i = n then f image
      else begin
        let u = order.(i) in
        let base =
          match candidates with None -> all | Some c -> c u
        in
        (* candidates must be adjacent (in g) to the images of all
           previously assigned neighbours of u *)
        let cand =
          List.fold_left
            (fun acc w -> Bitset.inter acc (Graph.neighbours g image.(w)))
            base earlier_neighbours.(i)
        in
        let try_v v =
          image.(u) <- v;
          go (i + 1);
          image.(u) <- -1
        in
        if pinned.(u) >= 0 then begin
          if Bitset.mem cand pinned.(u) then try_v pinned.(u)
        end
        else Bitset.iter try_v cand
      end
    in
    go 0
  end

let count ?budget ?pins ?candidates h g =
  let c = ref 0 in
  iter ?budget ?pins ?candidates h g (fun _ -> incr c);
  !c

(* lint: allow R8 Invalid_argument is the pin-range validation above,
   reporting a caller bug, deliberately outside the Outcome envelope *)
let count_budgeted ~budget ?pins ?candidates h g =
  Obs.entry_point "brute.count" @@ fun () ->
  let c = ref 0 in
  match iter ~budget ?pins ?candidates h g (fun _ -> incr c) with
  | () -> `Exact !c
  | exception Budget.Exhausted r ->
    (* every enumerated homomorphism is real, so the partial count is
       a sound lower bound *)
    Obs.incr m_partial;
    Obs.journal ~severity:Obs.Warn
      ~attrs:
        [ ("reason", Budget.reason_to_string r);
          ("partial", string_of_int !c) ]
      "brute.partial";
    `Exhausted (!c, r)

let exists ?budget ?pins ?candidates h g =
  try
    iter ?budget ?pins ?candidates h g (fun _ -> raise Found);
    false
  with Found -> true

let enumerate ?pins ?candidates h g =
  let acc = ref [] in
  iter ?pins ?candidates h g (fun m -> acc := Array.copy m :: !acc);
  List.rev !acc

let is_homomorphism h g map =
  Array.length map = Graph.num_vertices h
  && begin
    let ok = ref true in
    Graph.iter_edges h (fun u v ->
        if not (Graph.adjacent g map.(u) map.(v)) then ok := false);
    !ok
  end
