(* Flat sparse DP tables keyed by bag assignments.

   A bag assignment is a map from the (sorted) vertices of a bag to
   vertices of the target graph, represented positionally as an
   [int array] of target vertices.  When every coordinate fits in
   [bits = ceil(log2 n)] bits and [arity * bits <= 62], the whole
   assignment packs little-endian into one immediate int — the same
   base-n encoding the k-WL engine uses for tuples — and restriction
   onto a subset of positions becomes shift-and-mask.  Larger bags fall
   back to [int array] keys in a hashtable whose equality is structural
   per element, so correctness never depends on the hash being
   collision-free.

   Packing is injective by construction (each coordinate gets its own
   [bits]-wide field and target vertices are < 2^bits), so the packed
   mode needs no collision check at all. *)

module Count = Wlcq_util.Count
module Bigint = Wlcq_util.Bigint
module Int_tbl = Wlcq_util.Ordering.Int_tbl
module Arr_tbl = Wlcq_util.Ordering.Int_array_tbl
module Budget = Wlcq_robust.Budget
module Fault = Wlcq_robust.Fault

type codec = { bits : int; mask : int }

let codec ~n =
  let rec go b = if 1 lsl b >= max 2 n then b else go (b + 1) in
  let bits = go 1 in
  { bits; mask = (1 lsl bits) - 1 }

let packs c ~arity = arity * c.bits <= 62

let pack c img =
  let key = ref 0 in
  for i = Array.length img - 1 downto 0 do
    key := (!key lsl c.bits) lor img.(i)
  done;
  !key

let unpack c key ~arity dst =
  let k = ref key in
  for i = 0 to arity - 1 do
    dst.(i) <- !k land c.mask;
    k := !k lsr c.bits
  done

let restrict_packed c key pos =
  let r = ref 0 in
  for j = Array.length pos - 1 downto 0 do
    r := (!r lsl c.bits) lor ((key lsr (c.bits * pos.(j))) land c.mask)
  done;
  !r

(* Dense payload.  [data] is a flat *unboxed* int array indexed by the
   packed key itself: 0 means absent, a positive value is the count on
   the int63 fast path, and [promoted] (-1) marks a slot whose count
   overflowed into the [big] side table.  Keeping the hot array free of
   pointers means the GC never scans it, so the per-run allocation of a
   full keyspace costs only a memset.  [keys] lists the occupied slots
   (reverse insertion order) so iteration and projection cost
   O(entries) rather than O(keyspace). *)
type dense = {
  data : int array;
  (* lint: domain-local a table is built and consumed by one domain;
     parallel DP workers own whole disjoint subtrees *)
  mutable keys : int list;
  (* lint: domain-local same ownership as [keys] *)
  mutable n_keys : int;
  (* lint: domain-local same ownership as [keys] *)
  mutable big : Count.t Int_tbl.t option;
}

type table =
  | Dense of dense
  | Packed of Count.t Int_tbl.t
  | Hashed of Count.t Arr_tbl.t

(* Keyspaces up to 2^dense_bits entries are stored densely: bump and
   find become single array accesses with no hashing at all. *)
let dense_bits = 16

let promoted = -1

(* Dense keyspaces are recycled through a domain-local pool: a fresh
   array is a major-heap allocation whose proportional GC slice work
   dwarfs the DP itself on small instances, while a recycled one costs
   only the O(entries) clearing done at {!release}.  Invariant: every
   pooled array is all-zero.  Each domain owns its pool, so workers of
   a parallel DP never contend; arrays released inside a short-lived
   worker simply die with it. *)
type pool = { free : int array list array; count : int array }

let dense_pool : pool Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { free = Array.make (dense_bits + 1) []; count = Array.make (dense_bits + 1) 0 })

let pool_cap = 32

let alloc_data nbits =
  let p = Domain.DLS.get dense_pool in
  match p.free.(nbits) with
  | x :: rest ->
    p.free.(nbits) <- rest;
    p.count.(nbits) <- p.count.(nbits) - 1;
    x
  | [] -> Array.make (1 lsl nbits) 0

(* The dense/sparse cutoff is a dispatch decision ([dense_key_bits] in
   the calibration table); [dense_bits] above stays the structural cap
   of the arena pool, so a recalibrated cutoff can only shrink it. *)
let create_packed c ~arity =
  if Wlcq_dispatch.Dispatch.dense_fits ~bits:(arity * c.bits) ~cap:dense_bits
  then
    Dense
      { data = alloc_data (arity * c.bits); keys = []; n_keys = 0; big = None }
  else Packed (Int_tbl.create 64)

(* Fault-injection hook: the robustness suite forces allocation
   failures here to prove the DP engines unwind cleanly (tables built
   so far are released, the driver reports `Exhausted). *)
let table c ~arity =
  if Fault.should_fail Fault.Dp_alloc then
    raise (Budget.Exhausted (Budget.Injected "dp_alloc"));
  if packs c ~arity then create_packed c ~arity
  else Hashed (Arr_tbl.create 64)

let is_packed = function Dense _ | Packed _ -> true | Hashed _ -> false

let length = function
  | Dense d -> d.n_keys
  | Packed h -> Int_tbl.length h
  | Hashed h -> Arr_tbl.length h

let dense_big d =
  match d.big with
  | Some h -> h
  | None ->
    let h = Int_tbl.create 8 in
    d.big <- Some h;
    h

let dense_get d key =
  let cur = d.data.(key) in
  if cur >= 0 then Count.Small cur
  else
    match Int_tbl.find_opt (dense_big d) key with
    | Some v -> v
    | None -> assert false (* promoted slots always have a big entry *)

(* Adding zero is dropped up front so that [data.(key) = 0] means
   exactly "never stored" — otherwise a stored zero would be
   indistinguishable from an empty slot and [keys] could collect
   duplicates.  Engines never bump zero anyway (zero factors prune the
   emit path and projections skip absent entries).  The int fast path
   mirrors [Count.add]'s overflow check: non-negative operands whose
   sum wraps negative promote to the big side table. *)
let bump_dense d key v =
  if not (Count.is_zero v) then begin
    let cur = d.data.(key) in
    if cur = 0 then begin
      d.keys <- key :: d.keys;
      d.n_keys <- d.n_keys + 1;
      match v with
      | Count.Small s -> d.data.(key) <- s
      | Count.Big _ ->
        d.data.(key) <- promoted;
        Int_tbl.replace (dense_big d) key v
    end
    else if cur > 0 then begin
      match v with
      | Count.Small s ->
        let sum = cur + s in
        if sum >= 0 then d.data.(key) <- sum
        else begin
          d.data.(key) <- promoted;
          Int_tbl.replace (dense_big d) key
            (Count.Big (Bigint.add (Bigint.of_int cur) (Bigint.of_int s)))
        end
      | Count.Big _ ->
        d.data.(key) <- promoted;
        Int_tbl.replace (dense_big d) key (Count.add (Count.Small cur) v)
    end
    else begin
      let h = dense_big d in
      let old =
        match Int_tbl.find_opt h key with Some v -> v | None -> assert false
      in
      Int_tbl.replace h key (Count.add old v)
    end
  end

let bump_packed h key v =
  match Int_tbl.find_opt h key with
  | Some old -> Int_tbl.replace h key (Count.add old v)
  | None -> Int_tbl.add h key v

let bump_arr h key v =
  match Arr_tbl.find_opt h key with
  | Some old -> Arr_tbl.replace h key (Count.add old v)
  | None -> Arr_tbl.add h (Array.copy key) v

(* Add [v] under an already-packed [key]; only the packed-family
   constructors can reach here. *)
let bump_key tbl key v =
  match tbl with
  | Dense d -> bump_dense d key v
  | Packed h -> bump_packed h key v
  | Hashed _ -> invalid_arg "Dp_key.bump_key: hashed table has no packed keys"

(* [images] may be a scratch array reused by the caller: the hashed
   branch copies it before a fresh insert. *)
let bump c tbl images v =
  match tbl with
  | Dense d -> bump_dense d (pack c images) v
  | Packed h -> bump_packed h (pack c images) v
  | Hashed h -> bump_arr h images v

let find c tbl images pos =
  match tbl with
  | Dense d ->
    let key = ref 0 in
    for j = Array.length pos - 1 downto 0 do
      key := (!key lsl c.bits) lor images.(pos.(j))
    done;
    let cur = d.data.(!key) in
    if cur >= 0 then Count.Small cur else dense_get d !key
  | Packed h ->
    let key = ref 0 in
    for j = Array.length pos - 1 downto 0 do
      key := (!key lsl c.bits) lor images.(pos.(j))
    done;
    (match Int_tbl.find_opt h !key with Some v -> v | None -> Count.zero)
  | Hashed h ->
    let key = Array.map (fun p -> images.(p)) pos in
    (match Arr_tbl.find_opt h key with Some v -> v | None -> Count.zero)

(* Group a child table by restriction onto [pos] (positions within the
   child's bag).  The headline optimisation: for a packed child this is
   one shift-and-mask pass with no per-entry allocation.  A hashed
   child's projection has smaller arity and may itself pack. *)
let project c tbl pos =
  let parity = Array.length pos in
  match tbl with
  | Dense src ->
    let dst = create_packed c ~arity:parity in
    List.iter
      (fun key ->
         bump_key dst (restrict_packed c key pos) (dense_get src key))
      src.keys;
    dst
  | Packed src ->
    let dst = create_packed c ~arity:parity in
    Int_tbl.iter (fun key v -> bump_key dst (restrict_packed c key pos) v) src;
    dst
  | Hashed src ->
    if packs c ~arity:parity then begin
      let dst = create_packed c ~arity:parity in
      Arr_tbl.iter
        (fun key v ->
           let r = ref 0 in
           for j = parity - 1 downto 0 do
             r := (!r lsl c.bits) lor key.(pos.(j))
           done;
           bump_key dst !r v)
        src;
      dst
    end
    else begin
      let dst = Arr_tbl.create (max 16 (Arr_tbl.length src)) in
      let scratch = Array.make parity 0 in
      Arr_tbl.iter
        (fun key v ->
           for j = 0 to parity - 1 do
             scratch.(j) <- key.(pos.(j))
           done;
           bump_arr dst scratch v)
        src;
      Hashed dst
    end

let iter_values f = function
  | Dense d -> List.iter (fun key -> f (dense_get d key)) d.keys
  | Packed h -> Int_tbl.iter (fun _ v -> f v) h
  | Hashed h -> Arr_tbl.iter (fun _ v -> f v) h

(* O(1) on dense tables — promoted slots are exactly the [big] side
   table's population.  The [Count.t]-valued modes pay one traversal,
   but without the per-value [Count.Small] boxing [iter_values] on a
   dense table would force. *)
let count_big = function
  | Dense d -> (match d.big with None -> 0 | Some h -> Int_tbl.length h)
  | Packed h ->
    let n = ref 0 in
    Int_tbl.iter (fun _ v -> if not (Count.is_small v) then incr n) h;
    !n
  | Hashed h ->
    let n = ref 0 in
    Arr_tbl.iter (fun _ v -> if not (Count.is_small v) then incr n) h;
    !n

(* Decode each key into [scratch] (length >= arity) before calling [f];
   [f] must not retain [scratch]. *)
let iter_decoded c tbl ~arity scratch f =
  match tbl with
  | Dense d ->
    List.iter
      (fun key ->
         unpack c key ~arity scratch;
         f scratch (dense_get d key))
      d.keys
  | Packed h ->
    Int_tbl.iter
      (fun key v ->
         unpack c key ~arity scratch;
         f scratch v)
      h
  | Hashed h ->
    Arr_tbl.iter
      (fun key v ->
         Array.blit key 0 scratch 0 arity;
         f scratch v)
      h

let total tbl =
  let acc = ref Count.zero in
  iter_values (fun v -> acc := Count.add !acc v) tbl;
  !acc

(* Zero the occupied slots (restoring the pool invariant) and hand the
   backing array to the current domain's pool.  The table must not be
   used afterwards; releasing the same table twice would alias two
   future tables onto one array. *)
let release = function
  | Dense d ->
    List.iter (fun k -> d.data.(k) <- 0) d.keys;
    d.keys <- [];
    d.n_keys <- 0;
    d.big <- None;
    let len = Array.length d.data in
    let nbits =
      let b = ref 0 in
      while 1 lsl !b < len do
        incr b
      done;
      !b
    in
    let p = Domain.DLS.get dense_pool in
    if p.count.(nbits) < pool_cap then begin
      p.free.(nbits) <- d.data :: p.free.(nbits);
      p.count.(nbits) <- p.count.(nbits) + 1
    end
  | Packed _ | Hashed _ -> ()
