open Wlcq_graph
module Bitset = Wlcq_util.Bitset
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome
module Obs = Wlcq_obs.Obs

let m_partial = Obs.counter "robust.fallback.inj_partial"

(* Injective backtracking: Brute's search with a used-image filter.
   The running count lives in [counter] so budgeted callers can
   salvage it when the search unwinds with Budget.Exhausted. *)
let count_into ~budget h g counter =
  let n = Graph.num_vertices h in
  let ng = Graph.num_vertices g in
  if n = 0 then incr counter
  else if n > ng then ()
  else begin
    let used = Array.make ng false in
    let image = Array.make n (-1) in
    let rec go u =
      Budget.tick_check budget;
      if u = n then incr counter
      else begin
        (* candidates adjacent to all previously assigned neighbours *)
        let cand =
          Graph.fold_neighbours h u
            (fun w acc ->
               if w < u then Bitset.inter acc (Graph.neighbours g image.(w))
               else acc)
            (Bitset.full ng)
        in
        Bitset.iter
          (fun v ->
             if not used.(v) then begin
               used.(v) <- true;
               image.(u) <- v;
               go (u + 1);
               used.(v) <- false;
               image.(u) <- -1
             end)
          cand
      end
    in
    go 0
  end

let count ?(budget = Budget.unlimited) h g =
  let counter = ref 0 in
  count_into ~budget h g counter;
  !counter

(* lint: allow R8 Invalid_argument is Bitset size validation reporting
   a caller bug, deliberately outside the Outcome envelope *)
let count_budgeted ~budget h g =
  Obs.entry_point "inj.count" @@ fun () ->
  let partial = ref 0 in
  match count_into ~budget h g partial with
  | () -> `Exact !partial
  | exception Budget.Exhausted r ->
    Obs.incr m_partial;
    Obs.journal ~severity:Obs.Warn
      ~attrs:
        [ ("reason", Budget.reason_to_string r);
          ("partial", string_of_int !partial) ]
      "inj.partial";
    `Exhausted (!partial, r)

(* Möbius function of the partition lattice between the discrete
   partition and ρ: the product over blocks B of (-1)^(|B|-1)(|B|-1)!. *)
let moebius blocks =
  List.fold_left
    (fun acc block ->
       let b = List.length block in
       let sign = if (b - 1) mod 2 = 0 then 1 else -1 in
       let fact = List.fold_left ( * ) 1 (List.init (max 0 (b - 1)) (fun i -> i + 1)) in
       acc * sign * fact)
    1 blocks

let count_by_quotients h g =
  let n = Graph.num_vertices h in
  let total = ref 0 in
  List.iter
    (fun partition ->
       let cls = Array.make n (-1) in
       List.iteri
         (fun id block -> List.iter (fun v -> cls.(v) <- id) block)
         partition;
       let hom_count =
         match Ops.quotient h cls with
         | q -> Brute.count q g
         | exception Invalid_argument _ -> 0
         (* identifying adjacent vertices creates a self-loop: no
            homomorphisms into a simple graph *)
       in
       total := !total + (moebius partition * hom_count))
    (Wlcq_util.Combinat.partitions (Graph.vertices h));
  !total

let count_subgraph_copies h g =
  let aut = List.length (Iso.automorphisms h) in
  count h g / aut
