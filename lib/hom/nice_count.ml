open Wlcq_graph
open Wlcq_treewidth
module Bitset = Wlcq_util.Bitset
module Bigint = Wlcq_util.Bigint
module Tbl = Wlcq_util.Ordering.Int_list_tbl
module Obs = Wlcq_obs.Obs

let m_runs = Obs.counter "nice_count.runs"
let m_entries = Obs.counter "nice_count.dp_entries"
let d_bag = Obs.distribution "nice_count.bag_size"

(* Tables map the images of the bag vertices (in increasing H-vertex
   order) to the number of homomorphisms of the subtree's part of H
   extending them. *)

let count_with_nice nd h g =
  if not (Nice.is_valid_for nd h) then
    invalid_arg "Nice_count.count_with_nice: decomposition does not match the pattern";
  Obs.span "nice_count.run" @@ fun () ->
  let on = Obs.enabled () in
  if on then Obs.incr m_runs;
  let ng = Graph.num_vertices g in
  let tables =
    Array.make (Nice.num_nodes nd) (Tbl.create 1 : Bigint.t Tbl.t)
  in
  let bump table key v =
    let prev = Option.value ~default:Bigint.zero (Tbl.find_opt table key) in
    Tbl.replace table key (Bigint.add prev v)
  in
  Array.iteri
    (fun i node ->
       let table : Bigint.t Tbl.t = Tbl.create 64 in
       (match node with
        | Nice.Leaf -> Tbl.replace table [] Bigint.one
        | Nice.Introduce (v, c) ->
          let bag = Bitset.to_list nd.Nice.bags.(i) in
          (* neighbours of v inside the bag, with their key positions *)
          let constrained =
            List.filteri (fun _ u -> u <> v && Graph.adjacent h u v) bag
          in
          let positions =
            List.map
              (fun u ->
                 let rec index j = function
                   | [] -> assert false
                   | x :: _ when x = u -> j
                   | _ :: rest -> index (j + 1) rest
                 in
                 index 0 bag)
              constrained
          in
          let vpos =
            let rec index j = function
              | [] -> assert false
              | x :: _ when x = v -> j
              | _ :: rest -> index (j + 1) rest
            in
            index 0 bag
          in
          Tbl.iter
            (fun ckey cnt ->
               for w = 0 to ng - 1 do
                 (* splice w into position vpos *)
                 let rec splice j = function
                   | rest when j = vpos -> w :: rest
                   | [] -> [ w ]
                   | x :: rest -> x :: splice (j + 1) rest
                 in
                 let key = splice 0 ckey in
                 let karr = Array.of_list key in
                 let ok =
                   List.for_all
                     (fun p -> Graph.adjacent g karr.(p) w)
                     positions
                 in
                 if ok then bump table key cnt
               done)
            tables.(c)
        | Nice.Forget (v, c) ->
          let cbag = Bitset.to_list nd.Nice.bags.(c) in
          let vpos =
            let rec index j = function
              | [] -> assert false
              | x :: _ when x = v -> j
              | _ :: rest -> index (j + 1) rest
            in
            index 0 cbag
          in
          Tbl.iter
            (fun ckey cnt ->
               let key = List.filteri (fun j _ -> j <> vpos) ckey in
               bump table key cnt)
            tables.(c)
        | Nice.Join (c1, c2) ->
          Tbl.iter
            (fun key cnt1 ->
               match Tbl.find_opt tables.(c2) key with
               | Some cnt2 -> Tbl.replace table key (Bigint.mul cnt1 cnt2)
               | None -> ())
            tables.(c1));
       tables.(i) <- table;
       if on then begin
         Obs.add m_entries (Tbl.length table);
         Obs.observe d_bag (Bitset.cardinal nd.Nice.bags.(i))
       end)
    nd.Nice.nodes;
  Option.value ~default:Bigint.zero
    (Tbl.find_opt tables.(nd.Nice.root) [])

let count h g =
  let d = Exact.optimal_decomposition h in
  let nd = Nice.of_decomposition d ~universe:(Graph.num_vertices h) in
  count_with_nice nd h g
