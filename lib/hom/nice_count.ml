open Wlcq_graph
open Wlcq_treewidth
module Bitset = Wlcq_util.Bitset
module Bigint = Wlcq_util.Bigint
module Count = Wlcq_util.Count
module Tbl = Wlcq_util.Ordering.Int_list_tbl
module Obs = Wlcq_obs.Obs
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome
module Dispatch = Wlcq_dispatch.Dispatch

let m_runs = Obs.counter "nice_count.runs"
let m_entries = Obs.counter "nice_count.dp_entries"
let d_bag = Obs.distribution "nice_count.bag_size"
let m_packed_keys = Obs.counter "nice_count.packed_keys"
let m_hashed_keys = Obs.counter "nice_count.hashed_keys"
let m_exhausted = Obs.counter "robust.fallback.nice_exhausted"
let m_heuristic_decomp = Obs.counter "robust.fallback.nice_heuristic_decomp"

(* Tables map the images of the bag vertices (in increasing H-vertex
   order) to the number of homomorphisms of the subtree's part of H
   extending them. *)

(* ------------------------------------------------------------------ *)
(* Reference engine: int-list keys, full Bigint arithmetic.            *)
(* Kept verbatim as the differential-testing oracle for the packed     *)
(* engine below — do not optimise.                                     *)
(* ------------------------------------------------------------------ *)

let count_with_nice_reference nd h g =
  if not (Nice.is_valid_for nd h) then
    invalid_arg "Nice_count.count_with_nice_reference: decomposition does not match the pattern";
  Obs.span "nice_count.run_reference" @@ fun () ->
  let on = Obs.enabled () in
  if on then Obs.incr m_runs;
  let ng = Graph.num_vertices g in
  let tables =
    Array.make (Nice.num_nodes nd) (Tbl.create 1 : Bigint.t Tbl.t)
  in
  let bump table key v =
    let prev = Option.value ~default:Bigint.zero (Tbl.find_opt table key) in
    Tbl.replace table key (Bigint.add prev v)
  in
  Array.iteri
    (fun i node ->
       let table : Bigint.t Tbl.t = Tbl.create 64 in
       (match node with
        | Nice.Leaf -> Tbl.replace table [] Bigint.one
        | Nice.Introduce (v, c) ->
          let bag = Bitset.to_list nd.Nice.bags.(i) in
          (* neighbours of v inside the bag, with their key positions *)
          let constrained =
            List.filteri (fun _ u -> u <> v && Graph.adjacent h u v) bag
          in
          let positions =
            List.map
              (fun u ->
                 let rec index j = function
                   | [] -> assert false
                   | x :: _ when x = u -> j
                   | _ :: rest -> index (j + 1) rest
                 in
                 index 0 bag)
              constrained
          in
          let vpos =
            let rec index j = function
              | [] -> assert false
              | x :: _ when x = v -> j
              | _ :: rest -> index (j + 1) rest
            in
            index 0 bag
          in
          Tbl.iter
            (fun ckey cnt ->
               for w = 0 to ng - 1 do
                 (* splice w into position vpos *)
                 (* lint: hot-alloc reference oracle: int-list keys are its
                    definition, kept verbatim for differential testing *)
                 let rec splice j = function
                   | rest when j = vpos -> w :: rest
                   | [] -> [ w ]
                   | x :: rest -> x :: splice (j + 1) rest
                 in
                 let key = splice 0 ckey in
                 (* lint: hot-alloc reference oracle, as above *)
                 let karr = Array.of_list key in
                 let ok =
                   List.for_all
                     (* lint: hot-alloc reference oracle, as above *)
                     (fun p -> Graph.adjacent g karr.(p) w)
                     positions
                 in
                 if ok then bump table key cnt
               done)
            tables.(c)
        | Nice.Forget (v, c) ->
          let cbag = Bitset.to_list nd.Nice.bags.(c) in
          let vpos =
            let rec index j = function
              | [] -> assert false
              | x :: _ when x = v -> j
              | _ :: rest -> index (j + 1) rest
            in
            index 0 cbag
          in
          Tbl.iter
            (fun ckey cnt ->
               let key = List.filteri (fun j _ -> j <> vpos) ckey in
               bump table key cnt)
            tables.(c)
        | Nice.Join (c1, c2) ->
          Tbl.iter
            (fun key cnt1 ->
               match Tbl.find_opt tables.(c2) key with
               | Some cnt2 -> Tbl.replace table key (Bigint.mul cnt1 cnt2)
               | None -> ())
            tables.(c1));
       tables.(i) <- table;
       if on then begin
         Obs.add m_entries (Tbl.length table);
         Obs.observe d_bag (Bitset.cardinal nd.Nice.bags.(i))
       end)
    nd.Nice.nodes;
  Option.value ~default:Bigint.zero
    (Tbl.find_opt tables.(nd.Nice.root) [])

let count_reference h g =
  let d = Exact.optimal_decomposition h in
  let nd = Nice.of_decomposition d ~universe:(Graph.num_vertices h) in
  count_with_nice_reference nd h g

(* ------------------------------------------------------------------ *)
(* Packed engine.                                                      *)
(* ------------------------------------------------------------------ *)

let index_of v lst =
  let rec go j = function
    | [] -> invalid_arg "Nice_count.index_of: vertex not in bag"
    | x :: rest -> if x = v then j else go (j + 1) rest
  in
  go 0 lst

let count_with_nice ?(budget = Budget.unlimited) nd h g =
  if not (Nice.is_valid_for nd h) then
    invalid_arg "Nice_count.count_with_nice: decomposition does not match the pattern";
  Obs.span "nice_count.run" @@ fun () ->
  let on = Obs.enabled () in
  if on then Obs.incr m_runs;
  let ng = Graph.num_vertices g in
  let c = Dp_key.codec ~n:ng in
  let nnodes = Nice.num_nodes nd in
  let tables =
    Array.init nnodes (fun i ->
        Dp_key.table c ~arity:(Bitset.cardinal nd.Nice.bags.(i)))
  in
  (* the DP is sequential (driver domain), so the budget may unwind by
     exception; the pooled tables are released either way *)
  Fun.protect ~finally:(fun () -> Array.iter Dp_key.release tables)
  @@ fun () ->
  Array.iteri
    (fun i node ->
       Budget.check budget;
       let arity = Bitset.cardinal nd.Nice.bags.(i) in
       let table = tables.(i) in
       (match node with
        | Nice.Leaf -> Dp_key.bump c table [||] Count.one
        | Nice.Introduce (v, ci) ->
          let bag = Bitset.to_list nd.Nice.bags.(i) in
          let vpos = index_of v bag in
          (* key positions (in this bag) of the in-bag neighbours of v *)
          let constrained =
            let rec go j = function
              | [] -> []
              | u :: rest ->
                if u <> v && Graph.adjacent h u v then j :: go (j + 1) rest
                else go (j + 1) rest
            in
            go 0 bag
          in
          let carity = arity - 1 in
          let cscratch = Array.make (max 1 carity) 0 in
          let key = Array.make arity 0 in
          Dp_key.iter_decoded c tables.(ci) ~arity:carity cscratch
            (fun ckey cnt ->
               Budget.tick_check budget;
               Array.blit ckey 0 key 0 vpos;
               Array.blit ckey vpos key (vpos + 1) (carity - vpos);
               for w = 0 to ng - 1 do
                 key.(vpos) <- w;
                 if
                   List.for_all
                     (* lint: hot-alloc intra-bag edge probe: |positions| is bag-bounded and the closure captures loop-invariant state only on tiny bags — packed engine keeps list probes here *)
                     (fun p -> Graph.adjacent g key.(p) w)
                     constrained
                 then Dp_key.bump c table key cnt
               done)
        | Nice.Forget (v, ci) ->
          let cbag = Bitset.to_list nd.Nice.bags.(ci) in
          let vpos = index_of v cbag in
          let carity = arity + 1 in
          let cscratch = Array.make carity 0 in
          let key = Array.make (max 1 arity) 0 in
          Dp_key.iter_decoded c tables.(ci) ~arity:carity cscratch
            (fun ckey cnt ->
               Array.blit ckey 0 key 0 vpos;
               Array.blit ckey (vpos + 1) key vpos (arity - vpos);
               Dp_key.bump c table
                 (if arity = 0 then [||] else key)
                 cnt)
        | Nice.Join (c1, c2) ->
          let idpos = Array.init arity (fun j -> j) in
          let scratch = Array.make (max 1 arity) 0 in
          Dp_key.iter_decoded c tables.(c1) ~arity scratch (fun key cnt1 ->
              let cnt2 = Dp_key.find c tables.(c2) key idpos in
              if not (Count.is_zero cnt2) then
                Dp_key.bump c table key (Count.mul cnt1 cnt2)));
       if on then begin
         let len = Dp_key.length table in
         Obs.add m_entries len;
         Obs.observe d_bag arity;
         if Dp_key.is_packed table then Obs.add m_packed_keys len
         else Obs.add m_hashed_keys len
       end)
    nd.Nice.nodes;
  Count.to_bigint (Dp_key.total tables.(nd.Nice.root))

let choose h g =
  Dispatch.choose_hom ~nh:(Graph.num_vertices h) ~ng:(Graph.num_vertices g)
    ~mg:(Graph.num_edges g)

let count ?budget h g =
  if Graph.num_vertices h = 0 then Bigint.one
  else if Graph.num_vertices g = 0 then Bigint.zero
  else
    match choose h g with
    | Dispatch.Hom_brute -> Bigint.of_int (Brute.count ?budget h g)
    | Dispatch.Hom_reference -> count_reference h g
    | Dispatch.Hom_packed ->
      let d = Exact.optimal_decomposition h in
      let nd = Nice.of_decomposition d ~universe:(Graph.num_vertices h) in
      count_with_nice ?budget nd h g

(* lint: allow R8 Invalid_argument is precondition validation reporting
   a caller bug, deliberately outside the Outcome envelope *)
let count_budgeted ~budget h g =
  Obs.entry_point "nice_count.count" @@ fun () ->
  let note_exhausted r =
    Obs.incr m_exhausted;
    Obs.journal ~severity:Obs.Warn
      ~attrs:[ ("reason", Budget.reason_to_string r) ]
      "nice_count.exhausted";
    `Exhausted r
  in
  if
    Graph.num_vertices h > 0
    && Graph.num_vertices g > 0
    && (match choose h g with Dispatch.Hom_brute -> true | _ -> false)
  then
    match Brute.count_budgeted ~budget h g with
    | `Exact n -> `Exact (Bigint.of_int n)
    | `Degraded (n, r) -> `Degraded (Bigint.of_int n, r)
    | `Exhausted (_, r) -> note_exhausted r
  else
  match Exact.optimal_decomposition_budgeted ~budget h with
  | exception Budget.Exhausted r -> note_exhausted r
  | od ->
    let d, decomp_degraded =
      match od with
      | `Exact d -> (d, None)
      | `Degraded (d, r) -> (d, Some r)
      | `Exhausted _ -> assert false
    in
    let nd = Nice.of_decomposition d ~universe:(Graph.num_vertices h) in
    (* DP rung under a fork, as in Td_count.count_budgeted *)
    let dp_budget =
      match decomp_degraded with None -> budget | Some _ -> Budget.fork budget
    in
    match count_with_nice ~budget:dp_budget nd h g with
    | exception Budget.Exhausted r -> note_exhausted r
    | v ->
      (match decomp_degraded with
       | None -> `Exact v
       | Some r ->
         Obs.incr m_heuristic_decomp;
         Obs.journal ~severity:Obs.Info
           ~attrs:[ ("cause", Budget.reason_to_string r.Outcome.cause) ]
           "nice_count.heuristic_decomp";
         Outcome.degraded ~cause:r.Outcome.cause
           ~fallback:"heuristic decomposition (count still exact)" v)
