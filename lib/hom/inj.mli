(** Injective homomorphisms (embeddings) and subgraph counts.

    Corollary 68 relates dominating-set counting to
    [Inj((S_k, X_k), G)]; its proof expands injective answers into a
    quantum query by inclusion–exclusion over identifications of free
    variables.  This module provides the graph-level analogues, both by
    direct search and — as an independent cross-check — by the
    quotient-lattice inclusion–exclusion. *)

open Wlcq_graph
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome

(** [count ?budget h g] is the number of injective homomorphisms from
    [h] to [g].
    @raise Budget.Exhausted when [budget] trips mid-search. *)
val count : ?budget:Budget.t -> Graph.t -> Graph.t -> int

(** [count_budgeted ~budget h g] never raises: [`Exhausted (partial, r)]
    carries the number of embeddings enumerated before the trip — a
    sound lower bound.  Bumps [robust.fallback.inj_partial]. *)
val count_budgeted :
  budget:Budget.t -> Graph.t -> Graph.t -> (int, int * Budget.reason) Outcome.t

(** [count_by_quotients h g] computes the same value as [count] via
    inclusion–exclusion over the partition lattice of [V(h)]:
    [Inj(h,g) = Σ_ρ μ(ρ) · Hom(h/ρ, g)] where quotients that create
    self-loops contribute zero.  Exponential in [|V(h)|]; used for
    cross-validation. *)
val count_by_quotients : Graph.t -> Graph.t -> int

(** [count_subgraph_copies h g] is the number of subgraphs of [g]
    isomorphic to [h], i.e. [count h g / |Aut(h)|]. *)
val count_subgraph_copies : Graph.t -> Graph.t -> int
