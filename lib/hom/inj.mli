(** Injective homomorphisms (embeddings) and subgraph counts.

    Corollary 68 relates dominating-set counting to
    [Inj((S_k, X_k), G)]; its proof expands injective answers into a
    quantum query by inclusion–exclusion over identifications of free
    variables.  This module provides the graph-level analogues, both by
    direct search and — as an independent cross-check — by the
    quotient-lattice inclusion–exclusion. *)

open Wlcq_graph

(** [count h g] is the number of injective homomorphisms from [h] to
    [g]. *)
val count : Graph.t -> Graph.t -> int

(** [count_by_quotients h g] computes the same value as [count] via
    inclusion–exclusion over the partition lattice of [V(h)]:
    [Inj(h,g) = Σ_ρ μ(ρ) · Hom(h/ρ, g)] where quotients that create
    self-loops contribute zero.  Exponential in [|V(h)|]; used for
    cross-validation. *)
val count_by_quotients : Graph.t -> Graph.t -> int

(** [count_subgraph_copies h g] is the number of subgraphs of [g]
    isomorphic to [h], i.e. [count h g / |Aut(h)|]. *)
val count_subgraph_copies : Graph.t -> Graph.t -> int
