open Wlcq_graph
module Bitset = Wlcq_util.Bitset

let is_colouring g f c =
  Array.length c = Graph.num_vertices g
  && Array.for_all (fun x -> x >= 0 && x < Graph.num_vertices f) c
  && begin
    let ok = ref true in
    Graph.iter_edges g (fun u v ->
        if not (Graph.adjacent f c.(u) c.(v)) then ok := false);
    !ok
  end

(* Candidate sets by colour class: vertex u of h may only map into the
   colour class of tau.(u). *)
let class_candidates g ~c ~tau =
  let ng = Graph.num_vertices g in
  let classes = Hashtbl.create 16 in
  Array.iteri
    (fun v colour ->
       let s =
         match Hashtbl.find_opt classes colour with
         | Some s -> s
         | None ->
           let s = Bitset.create ng in
           Hashtbl.replace classes colour s;
           s
       in
       Bitset.set s v)
    c;
  fun u ->
    match Hashtbl.find_opt classes tau.(u) with
    | Some s -> s
    | None -> Bitset.create ng

let iter_hom_tau ~h ~g ~f ~c ~tau fn =
  if not (is_colouring g f c) then
    invalid_arg "Colored.iter_hom_tau: c is not an F-colouring of G";
  if not (Brute.is_homomorphism h f tau) then
    invalid_arg "Colored.iter_hom_tau: tau is not a homomorphism from H to F";
  Brute.iter ~candidates:(class_candidates g ~c ~tau) h g fn

let count_hom_tau ~h ~g ~f ~c ~tau =
  let n = ref 0 in
  iter_hom_tau ~h ~g ~f ~c ~tau (fun _ -> incr n);
  !n

let count_cp_hom ~h ~g ~c =
  let tau = Array.init (Graph.num_vertices h) (fun v -> v) in
  count_hom_tau ~h ~g ~f:h ~c ~tau

let partition_check ~h ~g ~f ~c =
  let sum = ref 0 in
  Brute.iter h f (fun tau ->
      sum := !sum + count_hom_tau ~h ~g ~f ~c ~tau:(Array.copy tau));
  (!sum, Brute.count h g)
