(** Coloured homomorphisms.

    Implements the machinery of Sections 4.2 and 4.4:
    - an [F]-colouring of [G] is a homomorphism [c : G → F]
      (Definition 28);
    - [Hom_τ(H, G, F, c)] is the set of homomorphisms [h : H → G] with
      [c ∘ h = τ] (Definition 30), which partitions [Hom(H, G)] over
      [τ ∈ Hom(H, F)] (Observation 31);
    - [cpHom(H, (G, c))] is the colour-prescribed case [τ = id]
      (Definition 48). *)

open Wlcq_graph

(** [is_colouring g f c] checks that [c] is a homomorphism from [g] to
    [f] given as an array over [V(g)]. *)
val is_colouring : Graph.t -> Graph.t -> int array -> bool

(** [count_hom_tau ~h ~g ~f ~c ~tau] is [|Hom_τ(h, g, f, c)|]: the
    number of homomorphisms [φ : h → g] with [c(φ(v)) = tau.(v)] for
    every [v].  [tau] must be a homomorphism from [h] to [f]. *)
val count_hom_tau :
  h:Graph.t -> g:Graph.t -> f:Graph.t -> c:int array -> tau:int array -> int

(** [iter_hom_tau ~h ~g ~f ~c ~tau fn] iterates over the same set. *)
val iter_hom_tau :
  h:Graph.t -> g:Graph.t -> f:Graph.t -> c:int array -> tau:int array ->
  (int array -> unit) -> unit

(** [count_cp_hom ~h ~g ~c] is [|cpHom(h, (g, c))|]: homomorphisms
    [φ : h → g] with [c(φ(v)) = v] for all [v ∈ V(h)] — here [c] is an
    [h]-colouring of [g] (Definition 48). *)
val count_cp_hom : h:Graph.t -> g:Graph.t -> c:int array -> int

(** [partition_check ~h ~g ~f ~c] verifies Observation 31 by summing
    [|Hom_τ|] over all [τ ∈ Hom(h, f)] and comparing with
    [|Hom(h, g)|]; returns the pair [(sum, total)]. *)
val partition_check :
  h:Graph.t -> g:Graph.t -> f:Graph.t -> c:int array -> int * int
