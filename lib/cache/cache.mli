(** Content-addressed caching tier.

    One shared, domain-safe, size-accounted LRU keyed on string content
    addresses.  Addresses come from canonical labelling
    ({!Wlcq_graph.Iso.canonical_form}): isomorphic inputs hash to the
    same address, so a cached decomposition, colouring or hom count is
    found again even when the caller's graph is a nontrivially
    relabelled copy — the permutation returned by {!address} translates
    the cached artifact back to caller vertex ids.

    Invariants:
    - eviction is live-heap-word accounted (LRU order, per-entry cost
      estimated by the store's [words] function plus key overhead);
    - [`Degraded] results are never stored — callers only [add]
      fully-trusted artifacts;
    - all state is guarded by one mutex, so the tier is safe to use
      from spawned domains.

    Counters: [cache.hit], [cache.miss], [cache.eviction],
    [cache.bytes] (signed deltas; reads as the live byte total) and
    [cache.canon_fallback]. *)

(** A typed namespace inside the tier.  Values of different stores
    share one LRU and one capacity. *)
type 'a store

(** [store ~name ~words ()] registers namespace [name].  [words v]
    estimates the live heap words retained by [v] (used for eviction
    accounting; a rough estimate is fine).  Call once, at module
    initialisation — the name also keys warm-start snapshots. *)
val store : name:string -> words:('a -> int) -> unit -> 'a store

(** [enabled ()] is true when the capacity is positive.  Callers should
    check it before computing addresses so a disabled tier costs
    nothing. *)
val enabled : unit -> bool

(** [find st addr] looks up and refreshes (MRU) an entry. *)
val find : 'a store -> string -> 'a option

(** [add st addr v] inserts [v], evicting LRU entries as needed.  An
    entry larger than the whole capacity is not inserted. *)
val add : 'a store -> string -> 'a -> unit

(** [clear_store st] drops every entry of one namespace (compatibility
    shim support: [Exact.clear_decomposition_memo]). *)
val clear_store : 'a store -> unit

(** [clear ()] drops everything. *)
val clear : unit -> unit

(** [set_capacity_mb mb] sets the capacity (default 256 MB) and evicts
    down to it; [0] disables the tier entirely. *)
val set_capacity_mb : int -> unit

(** [set_capacity_words w] — test hook for eviction-under-pressure
    properties. *)
val set_capacity_words : int -> unit

type stats = { entries : int; words : int; capacity_words : int }

val stats : unit -> stats

(** [address g] is the content address of [g] plus the permutation
    mapping caller vertex [v] to its canonical id.  Canonicalisation is
    fronted by a bounded structural memo, so resubmitting the same
    as-labelled graph is cheap.  When the individualization–refinement
    search exceeds its node budget (CFI-style refinement-homogeneous
    inputs) the address degrades to a structural digest with the
    identity permutation: still correct, but relabelled isomorphic
    copies no longer collide ([cache.canon_fallback] counts these). *)
val address : Wlcq_graph.Graph.t -> string * Wlcq_util.Perm.t

(** [save_file path] writes a warm-start snapshot of every entry whose
    store is registered; returns the number of entries written. *)
val save_file : string -> (int, string) result

(** [load_file path] replays a snapshot through {!add} (so capacity and
    eviction accounting apply); returns the number of entries loaded.
    Entries for unregistered stores are skipped. *)
val load_file : string -> (int, string) result
