(* Content-addressed caching tier.

   One shared, domain-safe, size-accounted LRU over string content
   addresses.  Keys are canonical-form digests (Iso.canonical_form)
   when the bounded search cracks the input, so isomorphic inputs are
   the same key — counting-minimal representatives are unique up to
   isomorphism (Definition 9) and every artifact cached here
   (decompositions, colourings, hom counts) is isomorphism-invariant up
   to the permutation returned alongside the address.  Inputs past the
   size gate or the node budget get a structural as-labelled digest:
   coarser (relabelled copies miss) but equally sound and cheap.

   This module is the single sanctioned home for module-level memo state
   in lib/ (lint rule R10 bans ad-hoc memo tables elsewhere); everything
   below is guarded by [lock]. *)

module Obs = Wlcq_obs.Obs
module Graph = Wlcq_graph.Graph
module Iso = Wlcq_graph.Iso
module Perm = Wlcq_util.Perm

let word_bytes = Sys.word_size / 8
let words_per_mb = 1024 * 1024 / word_bytes

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let m_hit = Obs.counter "cache.hit"
let m_miss = Obs.counter "cache.miss"
let m_eviction = Obs.counter "cache.eviction"

(* gauge in spirit: tracks the live byte total via signed deltas *)
let m_bytes = Obs.counter "cache.bytes"
let m_canon_fallback = Obs.counter "cache.canon_fallback"

(* ------------------------------------------------------------------ *)
(* LRU machinery                                                       *)
(* ------------------------------------------------------------------ *)

type packed = ..
type packed += Nil

(* Intrusive doubly-linked list node; [sentinel.next] is the MRU end,
   [sentinel.prev] the LRU end. *)
type node = {
  nd_key : string;
  nd_value : packed;
  nd_cost : int;  (* estimated live heap words, entry overhead included *)
  (* lint: domain-local list links are only rewired under [lock] *)
  mutable nd_prev : node;
  (* lint: domain-local same ownership as [nd_prev] *)
  mutable nd_next : node;
}

let rec sentinel =
  { nd_key = ""; nd_value = Nil; nd_cost = 0; nd_prev = sentinel;
    nd_next = sentinel }

let lock = Mutex.create ()

(* lint: domain-local guarded by [lock] *)
let table : (string, node) Hashtbl.t = Hashtbl.create 1024

(* lint: domain-local guarded by [lock]; plain int reads cannot tear *)
let total_words = ref 0

(* lint: domain-local guarded by [lock]; plain int reads cannot tear *)
let capacity = ref (256 * words_per_mb)

let with_lock f =
  Mutex.lock lock;
  match f () with
  | v ->
    Mutex.unlock lock;
    v
  | exception e ->
    Mutex.unlock lock;
    raise e

let enabled () = !capacity > 0

let unlink nd =
  nd.nd_prev.nd_next <- nd.nd_next;
  nd.nd_next.nd_prev <- nd.nd_prev

let push_front nd =
  nd.nd_next <- sentinel.nd_next;
  nd.nd_prev <- sentinel;
  sentinel.nd_next.nd_prev <- nd;
  sentinel.nd_next <- nd

(* caller holds [lock] *)
let drop nd =
  unlink nd;
  Hashtbl.remove table nd.nd_key;
  total_words := !total_words - nd.nd_cost;
  Obs.add m_bytes (-(nd.nd_cost * word_bytes))

(* caller holds [lock] *)
let evict_until_fit () =
  while !total_words > !capacity && sentinel.nd_prev != sentinel do
    drop sentinel.nd_prev;
    Obs.incr m_eviction
  done

(* ------------------------------------------------------------------ *)
(* Stores                                                              *)
(* ------------------------------------------------------------------ *)

type 'a store = {
  s_name : string;
  s_words : 'a -> int;
  s_inject : 'a -> packed;
  s_project : packed -> 'a option;
  s_marshal : 'a -> string;
  s_unmarshal : string -> 'a;
}

type any_store = Any : 'a store -> any_store

(* lint: domain-local guarded by [lock]; populated at module init *)
let registry : (string, any_store) Hashtbl.t = Hashtbl.create 16

let store (type a) ~name ~(words : a -> int) () : a store =
  let module M = struct
    type packed += V of a
  end in
  let s =
    {
      s_name = name;
      s_words = words;
      s_inject = (fun v -> M.V v);
      s_project = (function M.V v -> Some v | _ -> None);
      s_marshal = (fun (v : a) -> Marshal.to_string v []);
      s_unmarshal = (fun str -> (Marshal.from_string str 0 : a));
    }
  in
  with_lock (fun () -> Hashtbl.replace registry name (Any s));
  s

let full_key st addr = st.s_name ^ "\x00" ^ addr

(* hashtable slot + node record + key string, in words *)
let entry_overhead key = 16 + ((String.length key + word_bytes - 1) / word_bytes)

let find st addr =
  if not (enabled ()) then None
  else
    with_lock (fun () ->
        match Hashtbl.find_opt table (full_key st addr) with
        | None ->
          Obs.incr m_miss;
          None
        | Some nd ->
          (match st.s_project nd.nd_value with
           | None ->
             Obs.incr m_miss;
             None
           | Some v ->
             Obs.incr m_hit;
             unlink nd;
             push_front nd;
             Some v))

let add st addr v =
  if enabled () then
    with_lock (fun () ->
        let key = full_key st addr in
        (match Hashtbl.find_opt table key with
         | Some old -> drop old
         | None -> ());
        let cost = st.s_words v + entry_overhead key in
        if cost <= !capacity then begin
          let nd =
            { nd_key = key; nd_value = st.s_inject v; nd_cost = cost;
              nd_prev = sentinel; nd_next = sentinel }
          in
          Hashtbl.replace table key nd;
          push_front nd;
          total_words := !total_words + cost;
          Obs.add m_bytes (cost * word_bytes);
          evict_until_fit ()
        end)

module Graph_tbl = Hashtbl.Make (struct
    type t = Graph.t

    let equal = Graph.equal
    let hash = Graph.hash
  end)

(* Structural memo in front of canonicalisation so resubmitting the
   same (as-labelled) graph skips the I-R search entirely; bounded by
   reset-on-full like the pre-tier decomposition memo was. *)
(* lint: domain-local guarded by [lock] *)
let addr_memo : (string * Perm.t) Graph_tbl.t = Graph_tbl.create 256
let addr_memo_cap = 4096

let clear_store st =
  with_lock (fun () ->
      let prefix = st.s_name ^ "\x00" in
      let plen = String.length prefix in
      let doomed = ref [] in
      let nd = ref sentinel.nd_next in
      while !nd != sentinel do
        let k = !nd.nd_key in
        if String.length k >= plen && String.equal (String.sub k 0 plen) prefix
        then doomed := !nd :: !doomed;
        nd := !nd.nd_next
      done;
      List.iter drop !doomed)

let clear () =
  with_lock (fun () ->
      while sentinel.nd_prev != sentinel do
        drop sentinel.nd_prev
      done;
      (* the address memo goes too, so post-clear traffic repays
         canonicalisation — cold benchmarks stay honest *)
      Graph_tbl.reset addr_memo)

let set_capacity_words w =
  with_lock (fun () ->
      capacity := max 0 w;
      evict_until_fit ())

let set_capacity_mb mb = set_capacity_words (mb * words_per_mb)

type stats = { entries : int; words : int; capacity_words : int }

let stats () =
  with_lock (fun () ->
      { entries = Hashtbl.length table; words = !total_words;
        capacity_words = !capacity })

(* ------------------------------------------------------------------ *)
(* Content addresses                                                   *)
(* ------------------------------------------------------------------ *)

(* Node budget for the individualization–refinement search.  Inputs the
   refinement cannot crack within this many nodes (CFI-style gadget
   families, automorphism-rich grids, dense random blocks) fall back to
   a structural as-labelled digest: still a correct key — identical
   graphs collide — it merely stops recognising nontrivially relabelled
   isomorphic copies.  The budget is deliberately small: a fallback
   burns the whole search before giving up, and that burn is pure
   overhead on every first touch of a hard graph, so cheap failure
   matters more than cracking marginal instances (which would only be
   re-recognised after a nontrivial relabelling — a rare event compared
   to first-touch traffic). *)
let canon_limit = 1_500

(* Above this many vertices the search is not attempted at all: per-node
   refinement cost scales with the graph, so even a failed search on a
   large instance costs tens of milliseconds, and relabelled
   resubmission of large hosts is not a workload we optimise for.
   Paper-scale artifacts — query graphs, CFI companions, the instances
   the F8 suite replays — sit well under the gate. *)
let canon_max_vertices = 24

let structural_digest g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "wlcq-struct-v1;";
  Buffer.add_string buf (string_of_int (Graph.num_vertices g));
  Buffer.add_char buf ';';
  Graph.iter_edges g (fun u v ->
      Buffer.add_string buf (string_of_int u);
      Buffer.add_char buf '-';
      Buffer.add_string buf (string_of_int v);
      Buffer.add_char buf ',');
  Digest.to_hex (Digest.string (Buffer.contents buf))

let address g =
  match with_lock (fun () -> Graph_tbl.find_opt addr_memo g) with
  | Some r -> r
  | None ->
    let r =
      if Graph.num_vertices g > canon_max_vertices then begin
        Obs.incr m_canon_fallback;
        ("S:" ^ structural_digest g, Perm.identity (Graph.num_vertices g))
      end
      else
        match Iso.canonical_form ~limit:canon_limit g with
        | c -> ("C:" ^ c.Iso.digest, c.Iso.perm)
        | exception Iso.Canonical_limit ->
          Obs.incr m_canon_fallback;
          ("S:" ^ structural_digest g, Perm.identity (Graph.num_vertices g))
    in
    with_lock (fun () ->
        if Graph_tbl.length addr_memo >= addr_memo_cap then
          Graph_tbl.reset addr_memo;
        Graph_tbl.replace addr_memo g r);
    r

(* ------------------------------------------------------------------ *)
(* Warm-start snapshots                                                *)
(* ------------------------------------------------------------------ *)

let snapshot_magic = "WLCQCACHE1\n"

let save_file path =
  let payload =
    with_lock (fun () ->
        (* walk LRU -> MRU so replaying [add]s on load restores
           recency order *)
        let acc = ref [] in
        let nd = ref sentinel.nd_prev in
        while !nd != sentinel do
          let k = !nd.nd_key in
          (match String.index_opt k '\x00' with
           | None -> ()
           | Some i ->
             let name = String.sub k 0 i in
             let addr = String.sub k (i + 1) (String.length k - i - 1) in
             (match Hashtbl.find_opt registry name with
              | None -> ()
              | Some (Any st) ->
                (match st.s_project !nd.nd_value with
                 | None -> ()
                 | Some v -> acc := (name, addr, st.s_marshal v) :: !acc)));
          nd := !nd.nd_prev
        done;
        List.rev !acc)
  in
  try
    let oc = open_out_bin path in
    output_string oc snapshot_magic;
    Marshal.to_channel oc (payload : (string * string * string) list) [];
    close_out oc;
    Ok (List.length payload)
  with Sys_error msg -> Error msg

let load_file path =
  try
    let ic = open_in_bin path in
    let finally () = close_in_noerr ic in
    (try
       let mlen = String.length snapshot_magic in
       let hdr = really_input_string ic mlen in
       if not (String.equal hdr snapshot_magic) then begin
         finally ();
         Error (path ^ ": not a wlcq cache snapshot")
       end
       else begin
         let payload =
           (Marshal.from_channel ic : (string * string * string) list)
         in
         finally ();
         let loaded = ref 0 in
         List.iter
           (fun (name, addr, bytes) ->
              match with_lock (fun () -> Hashtbl.find_opt registry name) with
              | None -> ()
              | Some (Any st) ->
                add st addr (st.s_unmarshal bytes);
                incr loaded)
           payload;
         Ok !loaded
       end
     with
     | End_of_file | Failure _ ->
       finally ();
       Error (path ^ ": truncated or corrupt cache snapshot"))
  with Sys_error msg -> Error msg
