(** Adaptive engine dispatch: one calibrated cost model for every
    engine-selection decision in the tree.

    The counting engines each face the same choice — pay the setup cost
    of the packed machinery (decomposition, candidate pruning, packed
    key tables, worker domains) or run a direct algorithm whose setup is
    free.  Before this module the cutoffs lived as ad-hoc magic numbers
    inside each engine ([Td_count.parallel_threshold],
    [Kwl.parallel_threshold], [Dp_key.dense_bits], …).  They now live in
    one auditable {!calibration} table, every decision goes through a
    function here, and every decision increments a [dispatch.*] Obs
    counter so mispredictions are observable in production
    (bench's timing-smoke asserts on them).

    Decisions are made from {e cheap} instance features only — vertex
    and edge counts, bag arity sums, packed-keyspace width, free
    variable counts — never from anything that itself costs a traversal
    of the instance.

    Constants are re-derivable: [bench/main.exe calibrate] times the
    candidate engines across an instance ladder and prints the observed
    crossover points in the table's own format (see DESIGN.md,
    "Adaptive engine dispatch"). *)

(** {2 Engine forcing}

    The CLI surfaces this as [--engine auto|brute|reference|packed];
    tests force engines to drive differential comparisons.  [Auto]
    consults the cost model; the forced modes bypass it (and a forced
    [Packed] always runs the {e full} packed machinery, arc consistency
    included, so observability tripwires on the packed counters keep
    firing on tiny instances). *)

type engine = Auto | Brute | Reference | Packed

val set_engine : engine -> unit
val engine : unit -> engine

(** [engine_of_string s] parses ["auto" | "brute" | "reference" |
    "packed"]. *)
val engine_of_string : string -> (engine, string) result

val engine_to_string : engine -> string

(** The accepted [engine_of_string] spellings, for CLI docs. *)
val engine_names : string list

(** {2 The calibration table}

    All constants in one place.  Work units are {e estimated elementary
    DP/search steps} (saturating, see {!sat_pow}); weights follow each
    engine's historical convention so the decisions stay byte-identical
    to the thresholds they replaced. *)

type calibration = {
  brute_hom_max : int;
      (** choose backtracking enumeration over the treewidth DP when the
          estimated brute work {!brute_cost} is at most this *)
  prune_min_work : int;
      (** run the arc-consistency candidate fixpoint only when the
          estimated DP work (Σ_bags ng^arity) is at least this; below
          it the fixpoint costs more than the pruning saves *)
  enum_answers_max : int;
      (** answer counting: use the direct enumeration kernel when both
          ng^|X| and the largest component tabulation ng^(|C|+|δ|) are
          at most this *)
  dp_parallel_min : int;
      (** Σ_bags ng^arity at which the treewidth DP fans independent
          root subtrees out to worker domains *)
  wl_parallel_min : int;
      (** round weight (m · max_n · k) at which k-WL signature
          computation fans out to worker domains *)
  wl_chunk : int;  (** k-WL tuples per parallel chunk *)
  dense_key_bits : int;
      (** packed DP tables switch from the dense flat array to the
          sparse int table above this keyspace width (bits) *)
}

(** The live table.  Mutable as a whole (a single ref holding an
    immutable record): write it from the driver domain before a run,
    never from workers. *)
val calibration : unit -> calibration

val set_calibration : calibration -> unit

(** The compiled-in defaults (what [calibration] holds at start-up). *)
val default_calibration : calibration

val reset_calibration : unit -> unit

(** {2 Features}

    Saturating arithmetic: estimates cap at {!sat_cap} so they can be
    compared against thresholds without overflow anywhere. *)

val sat_cap : int

(** [sat_pow b e] is [b^e] saturating at {!sat_cap}. *)
val sat_pow : int -> int -> int

(** [brute_cost ~nh ~ng ~mg] estimates the backtracking enumeration
    work for [Hom(h, g)]: [ng · nh · d^(nh-1)] with [d] the ceiling
    average degree of [g] — the first pattern vertex ranges over
    [V(G)], each later one over a neighbour list, and every pattern
    vertex costs at least one step per partial map.  The [nh] factor
    keeps sparse targets (where [d] floors to 1) from admitting
    arbitrarily large patterns whose true branching is the target's
    max degree. *)
val brute_cost : nh:int -> ng:int -> mg:int -> int

(** {2 Decisions}

    Each returns what the caller should run and bumps the matching
    [dispatch.chose_*] counter. *)

type hom_choice = Hom_brute | Hom_reference | Hom_packed

(** [choose_hom ~nh ~ng ~mg]: engine for one [Hom(h, g)] count.
    [Auto] picks [Hom_brute] when {!brute_cost} is within
    [brute_hom_max], else [Hom_packed]; [Hom_reference] is only ever
    forced (it is the differential oracle, not a performance
    choice). *)
val choose_hom : nh:int -> ng:int -> mg:int -> hom_choice

(** [prune_candidates ~work]: run the arc-consistency fixpoint before
    the packed DP?  [work] is the Σ_bags ng^arity estimate.  Always
    true under a forced [Packed] engine. *)
val prune_candidates : work:int -> bool

type ans_choice = Ans_enum | Ans_reference | Ans_packed

(** [choose_answers ~nx ~max_comp ~ng]: engine for one [|Ans(q, g)|]
    count.  [nx] is the free-variable count, [max_comp] the largest
    [|C_i| + |δ_i|] over quantified components.  [Auto] picks
    [Ans_enum] when both [ng^nx] and [ng^max_comp] are within
    [enum_answers_max]. *)
val choose_answers : nx:int -> max_comp:int -> ng:int -> ans_choice

(** [dp_domains ~requested ~subtrees ~work ~threshold]: worker-domain
    count for the treewidth DP's root-subtree fan-out.  [threshold]
    is the engine's test hook ([Td_count.parallel_threshold]): [0]
    forces the parallel path, [max_int] forces sequential, anything
    else is the minimum [work] for fan-out.  Returns [1] for a
    sequential run. *)
val dp_domains : requested:int -> subtrees:int -> work:int -> threshold:int -> int

(** [wl_domains ~requested ~jobs ~weight ~threshold]: worker-domain
    count for a k-WL round of [jobs] dirty tuples and round weight
    [weight = jobs · max_n · k].  Same [threshold] contract as
    {!dp_domains} ([Kwl.parallel_threshold]); [0] also bypasses the
    per-domain chunk cap. *)
val wl_domains : requested:int -> jobs:int -> weight:int -> threshold:int -> int

(** [dense_fits ~bits ~cap]: store a packed DP table with a [bits]-wide
    keyspace in the dense flat array?  [cap] is the structural limit of
    the caller's arena pool; the effective width is
    [min cap (calibration ()).dense_key_bits]. *)
val dense_fits : bits:int -> cap:int -> bool
