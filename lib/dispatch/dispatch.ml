(* Adaptive engine dispatch.  See dispatch.mli for the model; this file
   is the one place in the tree where engine-selection cutoffs are
   allowed to live (lint rule R6 bans magic-number size thresholds in
   the engine hot paths outside this module). *)

type engine = Auto | Brute | Reference | Packed

(* Written by the driver (CLI flag / test setup) before a run, read by
   every engine entry point; Atomic so forced runs inside spawned
   benchmark closures stay well-defined. *)
let mode : engine Atomic.t = Atomic.make Auto

let set_engine e = Atomic.set mode e
let engine () = Atomic.get mode

let engine_to_string = function
  | Auto -> "auto"
  | Brute -> "brute"
  | Reference -> "reference"
  | Packed -> "packed"

let engine_names = [ "auto"; "brute"; "reference"; "packed" ]

let engine_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "auto" -> Ok Auto
  | "brute" -> Ok Brute
  | "reference" | "ref" -> Ok Reference
  | "packed" -> Ok Packed
  | other ->
    Error
      (Printf.sprintf "unknown engine %S (expected %s)" other
         (String.concat "|" engine_names))

(* ------------------------------------------------------------------ *)
(* Calibration table                                                   *)
(* ------------------------------------------------------------------ *)

type calibration = {
  brute_hom_max : int;
  prune_min_work : int;
  enum_answers_max : int;
  dp_parallel_min : int;
  wl_parallel_min : int;
  wl_chunk : int;
  dense_key_bits : int;
}

let default_calibration =
  {
    (* crossover points measured by [bench/main.exe calibrate] on the
       reference container (see DESIGN.md); dp/wl parallel minima and
       the dense width carry over the engines' historical values so
       forced-mode decisions stay byte-identical to PR 4/5 *)
    brute_hom_max = 256;
    prune_min_work = 512;
    enum_answers_max = 1 lsl 15;
    dp_parallel_min = 1 lsl 15;
    wl_parallel_min = 1 lsl 15;
    wl_chunk = 256;
    dense_key_bits = 16;
  }

(* lint: domain-local written by the driver before a run, read-only in workers *)
let table = ref default_calibration

let calibration () = !table
let set_calibration c = table := c
let reset_calibration () = table := default_calibration

(* ------------------------------------------------------------------ *)
(* Features                                                            *)
(* ------------------------------------------------------------------ *)

let sat_cap = 1 lsl 30

let sat_pow base e =
  if base <= 0 then if e = 0 then 1 else 0
  else begin
    let acc = ref 1 in
    (try
       for _ = 1 to e do
         if !acc > sat_cap / base then begin
           acc := sat_cap;
           raise Exit
         end
         else acc := !acc * base
       done
     with Exit -> ());
    !acc
  end

let sat_mul a b =
  if a = 0 || b = 0 then 0
  else if a > sat_cap / b then sat_cap
  else a * b

let brute_cost ~nh ~ng ~mg =
  if nh <= 0 then 1
  else if ng <= 0 then 0
  else
    (* ceiling average out-degree over both edge directions; at least 1
       so isolated-vertex graphs still cost ng per pattern vertex *)
    let d = max 1 ((2 * mg + ng - 1) / ng) in
    (* the [nh] factor charges every pattern vertex at least one step
       per partial map.  Without it a sparse target floors [d] to 1 and
       the estimate collapses to [ng] however large the pattern is —
       which routed ~200-vertex extension patterns (Lemma 22's F_ℓ
       family over a near-degree-1 target) into brute backtracking
       whose true branching is the target's *max* degree, i.e. an
       effectively unbounded run *)
    sat_mul (sat_mul ng nh) (sat_pow d (nh - 1))

(* ------------------------------------------------------------------ *)
(* Decision counters                                                   *)
(* ------------------------------------------------------------------ *)

let c_forced = Wlcq_obs.Obs.counter "dispatch.forced"
let c_hom_brute = Wlcq_obs.Obs.counter "dispatch.chose_brute"
let c_hom_reference = Wlcq_obs.Obs.counter "dispatch.chose_reference"
let c_hom_packed = Wlcq_obs.Obs.counter "dispatch.chose_packed"
let c_ans_enum = Wlcq_obs.Obs.counter "dispatch.chose_enum"
let c_prune = Wlcq_obs.Obs.counter "dispatch.chose_prune"
let c_lean = Wlcq_obs.Obs.counter "dispatch.chose_lean"
let c_par = Wlcq_obs.Obs.counter "dispatch.chose_par"
let c_seq = Wlcq_obs.Obs.counter "dispatch.chose_seq"
let c_dense = Wlcq_obs.Obs.counter "dispatch.chose_dense"
let c_sparse = Wlcq_obs.Obs.counter "dispatch.chose_sparse"

(* ------------------------------------------------------------------ *)
(* Decisions                                                           *)
(* ------------------------------------------------------------------ *)

type hom_choice = Hom_brute | Hom_reference | Hom_packed

(* Flight-recorder trail of dispatch decisions.  Guarded here (not just
   inside [Obs.journal]) so the attrs list is never allocated on the
   armed-metrics-but-no-journal path. *)
let note choice attrs =
  if Wlcq_obs.Obs.journal_on () then
    Wlcq_obs.Obs.journal ~severity:Wlcq_obs.Obs.Debug ~attrs
      ("dispatch." ^ choice)

let choose_hom ~nh ~ng ~mg =
  match Atomic.get mode with
  | Brute ->
    Wlcq_obs.Obs.incr c_forced;
    Wlcq_obs.Obs.incr c_hom_brute;
    Hom_brute
  | Reference ->
    Wlcq_obs.Obs.incr c_forced;
    Wlcq_obs.Obs.incr c_hom_reference;
    Hom_reference
  | Packed ->
    Wlcq_obs.Obs.incr c_forced;
    Wlcq_obs.Obs.incr c_hom_packed;
    Hom_packed
  | Auto ->
    let cost = brute_cost ~nh ~ng ~mg in
    if cost <= !table.brute_hom_max then begin
      Wlcq_obs.Obs.incr c_hom_brute;
      note "hom_brute" [ ("cost", string_of_int cost) ];
      Hom_brute
    end
    else begin
      Wlcq_obs.Obs.incr c_hom_packed;
      note "hom_packed" [ ("cost", string_of_int cost) ];
      Hom_packed
    end

let prune_candidates ~work =
  match Atomic.get mode with
  | Auto when work < !table.prune_min_work ->
    Wlcq_obs.Obs.incr c_lean;
    false
  | Auto | Brute | Reference | Packed ->
    Wlcq_obs.Obs.incr c_prune;
    true

type ans_choice = Ans_enum | Ans_reference | Ans_packed

let choose_answers ~nx ~max_comp ~ng =
  match Atomic.get mode with
  | Brute ->
    Wlcq_obs.Obs.incr c_forced;
    Wlcq_obs.Obs.incr c_ans_enum;
    Ans_enum
  | Reference ->
    Wlcq_obs.Obs.incr c_forced;
    Wlcq_obs.Obs.incr c_hom_reference;
    Ans_reference
  | Packed ->
    Wlcq_obs.Obs.incr c_forced;
    Wlcq_obs.Obs.incr c_hom_packed;
    Ans_packed
  | Auto ->
    let lim = !table.enum_answers_max in
    if sat_pow ng nx <= lim && sat_pow ng max_comp <= lim then begin
      Wlcq_obs.Obs.incr c_ans_enum;
      note "ans_enum" [ ("nx", string_of_int nx); ("ng", string_of_int ng) ];
      Ans_enum
    end
    else begin
      Wlcq_obs.Obs.incr c_hom_packed;
      note "ans_packed" [ ("nx", string_of_int nx); ("ng", string_of_int ng) ];
      Ans_packed
    end

(* The parallelism decisions keep the engines' historical test-hook
   contract: threshold 0 forces parallel, max_int forces sequential,
   otherwise it is the minimum work/weight for fan-out.  The formulas
   are byte-identical to the ones they replaced in Td_count/Kwl. *)

let dp_domains ~requested ~subtrees ~work ~threshold =
  let nd =
    if requested <= 1 || subtrees <= 1 then 1
    else if threshold = 0 then min requested subtrees
    else if work < threshold then 1
    else min requested subtrees
  in
  Wlcq_obs.Obs.incr (if nd > 1 then c_par else c_seq);
  note
    (if nd > 1 then "dp_parallel" else "dp_sequential")
    [ ("domains", string_of_int nd); ("work", string_of_int work) ];
  nd

let wl_domains ~requested ~jobs ~weight ~threshold =
  let nd =
    if requested <= 1 || weight < threshold then 1
    else if threshold = 0 then min requested (max 1 jobs)
    else min requested (max 1 (jobs / !table.wl_chunk))
  in
  Wlcq_obs.Obs.incr (if nd > 1 then c_par else c_seq);
  note
    (if nd > 1 then "wl_parallel" else "wl_sequential")
    [ ("domains", string_of_int nd); ("weight", string_of_int weight) ];
  nd

let dense_fits ~bits ~cap =
  let fits = bits <= min cap !table.dense_key_bits in
  Wlcq_obs.Obs.incr (if fits then c_dense else c_sparse);
  fits
