(** Per-client session state, owned by the event loop.

    Every mutable field is single-writer (the loop thread); workers
    only see a session through its cancellation {!Wlcq_robust.Budget}
    token, which is cancelled when the session is reaped so in-flight
    work for a dead client unwinds cooperatively. *)

module Budget = Wlcq_robust.Budget

type t = {
  sid : int;  (** unique per daemon lifetime *)
  fd : Unix.file_descr;
  deframer : Wire.deframer;
  mutable out : string;
  mutable out_pos : int;
  mutable last_activity_ns : int64;
  mutable in_flight : int;
  mutable closing : bool;
  cancel : Budget.token;
}

val create : now_ns:int64 -> Unix.file_descr -> t
val touch : t -> now_ns:int64 -> unit
val idle_ns : t -> now_ns:int64 -> int64

(** [enqueue_output s bytes] appends an encoded frame to the write
    buffer (compacting the already-written prefix). *)
val enqueue_output : t -> string -> unit

(** Bytes queued but not yet written. *)
val pending_output : t -> int

(** [wrote s pos] records that the buffer is consumed up to [pos]. *)
val wrote : t -> int -> unit
