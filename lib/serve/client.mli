(** Blocking client for the wlcq/1 protocol ([wlcq call], the tests
    and the F9 load generator).  Every operation is bounded by the
    connection's timeout; failures are [Error msg], never
    exceptions. *)

type conn

val connect :
  ?timeout_s:float -> socket:string -> unit -> (conn, string) result

val close : conn -> unit
val send : conn -> Wire.request -> (unit, string) result
val receive : conn -> (Wire.response, string) result

(** [request c req] is {!send} then {!receive}. *)
val request : conn -> Wire.request -> (Wire.response, string) result

(** One-shot: connect, exchange one request, close. *)
val call :
  ?timeout_s:float -> socket:string -> Wire.request ->
  (Wire.response, string) result
