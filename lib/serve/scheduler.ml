(* The Domain-pool job scheduler: fair per-client queueing with
   admission control.

   Jobs live in one queue per client, and worker domains pop in
   round-robin order over the clients that currently have work — a
   client flooding the daemon with requests cannot starve the others;
   it only deepens its own queue until admission control sheds it.

   Admission is bounded twice: a total depth cap (protects the daemon)
   and a per-client cap (protects the other clients).  A rejected
   submission carries a retry-after hint derived from the current
   depth and an EWMA of observed service time.

   All state sits behind one mutex; [next] blocks on a condition
   variable (not a Unix call — R11 does not apply) until a job or
   [stop] arrives. *)

type job = {
  j_sid : int;
  j_req : Wire.request;
  j_cancel : Wlcq_robust.Budget.token;
  j_enq_ns : int64;
}

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queues : (int, job Queue.t) Hashtbl.t;
  (* lint: domain-local guarded by [lock] *)
  mutable rotation : int list;  (* sids with pending work, pop order *)
  (* lint: domain-local guarded by [lock] *)
  mutable total : int;
  (* lint: domain-local guarded by [lock] *)
  mutable stopped : bool;
  max_total : int;
  max_per_client : int;
  workers : int;
  (* lint: domain-local guarded by [lock] *)
  mutable ewma_service_ns : float;
}

let create ~max_total ~max_per_client ~workers =
  if max_total < 1 then invalid_arg "Scheduler.create: max_total must be >= 1";
  if max_per_client < 1 then
    invalid_arg "Scheduler.create: max_per_client must be >= 1";
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    queues = Hashtbl.create 64;
    rotation = [];
    total = 0;
    stopped = false;
    max_total;
    max_per_client;
    workers = max 1 workers;
    ewma_service_ns = 1_000_000.0 (* 1ms prior, refined by real jobs *);
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Retry hint: expected time for the backlog ahead of a resubmission
   to clear, given the smoothed service time and the pool width. *)
let retry_after_ms_locked t =
  let est =
    t.ewma_service_ns *. float_of_int (t.total + 1)
    /. float_of_int t.workers /. 1e6
  in
  max 1 (int_of_float (Float.min est 60_000.0))

let submit t job =
  locked t @@ fun () ->
  if t.stopped then `Stopped
  else
    let q =
      match Hashtbl.find_opt t.queues job.j_sid with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.replace t.queues job.j_sid q;
        q
    in
    if t.total >= t.max_total || Queue.length q >= t.max_per_client then
      `Rejected (retry_after_ms_locked t)
    else begin
      if Queue.is_empty q then t.rotation <- t.rotation @ [ job.j_sid ];
      Queue.add job q;
      t.total <- t.total + 1;
      Condition.signal t.nonempty;
      `Accepted
    end

let next t =
  locked t @@ fun () ->
  let rec wait () =
    if t.total > 0 then begin
      match t.rotation with
      | [] -> assert false
      | sid :: rest -> (
        match Hashtbl.find_opt t.queues sid with
        | None ->
          t.rotation <- rest;
          wait ()
        | Some q ->
          let job = Queue.pop q in
          t.total <- t.total - 1;
          (* move the client to the back of the rotation while it
             still has work; drop it otherwise *)
          t.rotation <-
            (if Queue.is_empty q then rest else rest @ [ sid ]);
          Some job)
    end
    else if t.stopped then None
    else begin
      Condition.wait t.nonempty t.lock;
      wait ()
    end
  in
  wait ()

let note_service_ns t ns =
  locked t @@ fun () ->
  t.ewma_service_ns <-
    (0.8 *. t.ewma_service_ns) +. (0.2 *. Int64.to_float ns)

let drop_client t sid =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.queues sid with
  | None -> []
  | Some q ->
    let dropped = List.of_seq (Queue.to_seq q) in
    t.total <- t.total - Queue.length q;
    Queue.clear q;
    Hashtbl.remove t.queues sid;
    t.rotation <- List.filter (fun s -> s <> sid) t.rotation;
    dropped

let depth t = locked t @@ fun () -> t.total

let stop t =
  locked t @@ fun () ->
  t.stopped <- true;
  Condition.broadcast t.nonempty

let stopped t = locked t @@ fun () -> t.stopped
