(* A minimal blocking client for the wlcq/1 protocol, shared by the
   [wlcq call] subcommand, the tests and the F9 load generator.

   One connection carries any number of request/response exchanges;
   responses are matched to requests positionally (the daemon answers
   admission-control rejections immediately but in-order per
   connection, so pipelining stays unambiguous per the protocol's
   one-reply-per-frame rule). *)

type conn = { fd : Unix.file_descr; defr : Wire.deframer; timeout_s : float }

let connect ?(timeout_s = 10.0) ~socket () =
  (* a daemon that drops the connection mid-send must surface as a
     [`Closed] write result, not a fatal SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  match Io.connect ~timeout_s ~path:socket with
  | Ok fd -> Ok { fd; defr = Wire.deframer (); timeout_s }
  | Error _ as e -> e

let close c = Io.close c.fd

let send c req =
  match Io.write_all ~timeout_s:c.timeout_s c.fd (Wire.encode_request req) 0 with
  | `All -> Ok ()
  | `Partial _ -> Error "Client.send: write timed out"
  | `Closed -> Error "Client.send: connection closed"

let receive c =
  let buf = Bytes.create 65536 in
  let rec go () =
    match Wire.next_frame c.defr with
    | `Frame payload -> Wire.decode_response payload
    | `Oversize n ->
      Error (Printf.sprintf "Client.receive: oversize frame (%d bytes)" n)
    | `Await -> (
      match Io.read ~timeout_s:c.timeout_s c.fd buf with
      | Io.Data n ->
        Wire.feed c.defr buf n;
        go ()
      | Io.Timeout -> Error "Client.receive: timed out waiting for a reply"
      | Io.Eof | Io.Closed -> Error "Client.receive: connection closed")
  in
  go ()

let request c req =
  match send c req with Ok () -> receive c | Error _ as e -> e

let call ?timeout_s ~socket req =
  match connect ?timeout_s ~socket () with
  | Error _ as e -> e
  | Ok c ->
    Fun.protect ~finally:(fun () -> close c) (fun () -> request c req)
