(* The daemon: accept loop, session table, worker pool, drain.

   One event-loop thread owns every socket and every session record;
   [workers] extra domains execute requests.  The two sides meet at
   exactly two points — the scheduler (loop submits, workers pop) and
   the completion queue (workers push, loop drains after a self-pipe
   wakeup) — so no session state is ever shared.

   Robustness invariants (exercised by the seeded fault storm):
   - the loop and the workers never let an exception escape: a request
     that raises is answered with a structured [Error] and a
     flight-recorder post-mortem, and the daemon lives on;
   - every blocking operation goes through [Io] with a timeout (lint
     rule R11), so a stalled peer costs a bounded slice of one
     iteration, never the daemon;
   - admission control sheds before queues grow unboundedly, and a
     reaped client's queued jobs are cancelled through its session
     token;
   - SIGTERM drain: stop accepting, answer queued-but-unstarted work,
     finish or [Exhausted]-cancel in-flight work, flush sinks, return
     so the caller can [exit 0]. *)

module Obs = Wlcq_obs.Obs
module Snapshot = Wlcq_obs.Snapshot
module Budget = Wlcq_robust.Budget
module Fault = Wlcq_robust.Fault

type config = {
  socket_path : string;
  workers : int;
  max_sessions : int;
  max_queue : int;
  max_queue_per_client : int;
  max_deadline_ms : float option;
  default_deadline_ms : float option;
  max_live_mb : int option;
  idle_timeout_s : float;
  write_timeout_s : float;
  drain_timeout_s : float;
  flush_interval_s : float;
  metrics_out : string option;
  journal_path : string option;
  journal_rotate_bytes : int;
}

let default_config ~socket_path =
  {
    socket_path;
    workers = 2;
    max_sessions = 128;
    max_queue = 256;
    max_queue_per_client = 32;
    max_deadline_ms = Some 30_000.0;
    default_deadline_ms = Some 5_000.0;
    max_live_mb = None;
    idle_timeout_s = 60.0;
    write_timeout_s = 5.0;
    drain_timeout_s = 5.0;
    flush_interval_s = 10.0;
    metrics_out = None;
    journal_path = None;
    journal_rotate_bytes = 1 lsl 20;
  }

(* metrics *)
let m_conns = Obs.counter "serve.connections"
let m_requests = Obs.counter "serve.requests"
let m_shed = Obs.counter "serve.shed"
let m_draining = Obs.counter "serve.draining_rejects"
let m_malformed = Obs.counter "serve.malformed"
let m_worker_contained = Obs.counter "serve.worker.contained"
let m_orphaned = Obs.counter "serve.orphaned"
let m_reaped_idle = Obs.counter "serve.reaped.idle"
let m_reaped_stall = Obs.counter "serve.reaped.stall"
let m_flushes = Obs.counter "serve.flushes"
let d_latency = Obs.distribution "serve.request_ns"

type completion = { c_sid : int; c_resp : Wire.response; c_service_ns : int64 }

type t = {
  cfg : config;
  stop_flag : bool Atomic.t;
  flush_flag : bool Atomic.t;
  listening : bool Atomic.t;
  sched : Scheduler.t;
  comp_lock : Mutex.t;
  (* lint: domain-local guarded by [comp_lock] *)
  mutable completions : completion list;  (* reversed arrival order *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
}

(* Io.select tops out at FD_SETSIZE descriptors; beyond it the
   multiplexer raises and the loop dies.  Budget for the listen fd,
   the wake pipe and stdio before sizing the session table. *)
let session_cap = Io.max_select_fds - 24

let create cfg =
  if cfg.workers < 1 then invalid_arg "Server.create: workers must be >= 1";
  let cfg =
    if cfg.max_sessions <= session_cap then cfg
    else begin
      Obs.journal ~severity:Obs.Warn
        ~attrs:
          [ ("requested", string_of_int cfg.max_sessions);
            ("clamped", string_of_int session_cap) ]
        "serve.max_sessions.clamped";
      { cfg with max_sessions = session_cap }
    end
  in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_w;
  {
    cfg;
    stop_flag = Atomic.make false;
    flush_flag = Atomic.make false;
    listening = Atomic.make false;
    sched =
      Scheduler.create ~max_total:cfg.max_queue
        ~max_per_client:cfg.max_queue_per_client ~workers:cfg.workers;
    comp_lock = Mutex.create ();
    completions = [];
    wake_r;
    wake_w;
  }

let shutdown t = Atomic.set t.stop_flag true
let request_flush t = Atomic.set t.flush_flag true
let listening t = Atomic.get t.listening

(* ------------------------------------------------------------------ *)
(* Sink flushing (satellite: daemons never reach at_exit)              *)
(* ------------------------------------------------------------------ *)

(* The OpenMetrics snapshot is written to a temp file and renamed so a
   kill -9 mid-flush still leaves the previous parseable snapshot.
   Total: a sink that turns unwritable mid-life (directory removed,
   permissions, full disk) is a journaled warning, not an exception
   loose in the event loop at the next periodic flush. *)
let write_atomic file content =
  let tmp = file ^ ".tmp" in
  let warn msg =
    Obs.journal ~severity:Obs.Warn
      ~attrs:[ ("file", file); ("error", msg) ]
      "serve.flush.sink_failed"
  in
  match open_out tmp with
  | exception Sys_error msg -> warn msg
  | oc -> (
    try
      output_string oc content;
      close_out oc;
      Sys.rename tmp file
    with Sys_error msg ->
      close_out_noerr oc;
      warn msg)

let rotate_journal t =
  match t.cfg.journal_path with
  | None -> ()
  | Some path -> (
    match Unix.stat path with
    | { Unix.st_size; _ } when st_size > t.cfg.journal_rotate_bytes -> (
      try Sys.rename path (path ^ ".1") with Sys_error _ -> ())
    | _ -> ()
    | exception Unix.Unix_error (_, _, _) -> ())

let flush_sinks t ~trigger =
  Obs.incr m_flushes;
  (match t.cfg.metrics_out with
   | None -> ()
   | Some file -> write_atomic file (Snapshot.render (Snapshot.capture ())));
  rotate_journal t;
  Obs.journal_dump ~trigger ()

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

let budget_for cfg (job : Scheduler.job) =
  let clamp cap v =
    match (cap, v) with
    | None, v -> v
    | Some c, None -> Some c
    | Some c, Some v -> Some (Float.min c v)
  in
  let clampi cap v =
    match (cap, v) with
    | None, v -> v
    | Some c, None -> Some c
    | Some c, Some v -> Some (min c v)
  in
  let deadline_ms =
    clamp cfg.max_deadline_ms
      (match job.Scheduler.j_req.Wire.deadline_ms with
       | None -> cfg.default_deadline_ms
       | Some _ as d -> d)
  in
  let max_live_mb = clampi cfg.max_live_mb job.Scheduler.j_req.Wire.max_live_mb in
  Budget.create ?deadline_ms ?max_live_mb ~cancel:job.Scheduler.j_cancel ()

let push_completion t c =
  Mutex.lock t.comp_lock;
  t.completions <- c :: t.completions;
  Mutex.unlock t.comp_lock;
  Io.notify ~timeout_s:0.0 t.wake_w

let take_completions t =
  Mutex.lock t.comp_lock;
  let cs = t.completions in
  t.completions <- [];
  Mutex.unlock t.comp_lock;
  List.rev cs

(* Full containment: whatever a request does — raise, exhaust, get
   cancelled, hit a Worker_raise injection — the worker answers with a
   structured response and survives to pop the next job. *)
let run_job t (job : Scheduler.job) =
  let id = job.Scheduler.j_req.Wire.id in
  let started = Obs.now_ns () in
  let resp =
    match
      if Fault.should_fail Fault.Worker_raise then
        failwith "Server.worker: injected Worker_raise fault";
      let budget = budget_for t.cfg job in
      Exec.execute ~budget job.Scheduler.j_req
    with
    | resp -> resp
    | exception Budget.Exhausted r ->
      {
        Wire.r_id = id;
        r_status = Wire.Exhausted;
        r_value = "";
        r_detail = Budget.reason_to_string r;
        r_retry_after_ms = None;
      }
    | exception (Invalid_argument msg | Failure msg) ->
      Obs.incr m_worker_contained;
      Obs.journal ~severity:Obs.Warn
        ~attrs:[ ("id", id); ("error", msg) ]
        "serve.worker.contained";
      {
        Wire.r_id = id;
        r_status = Wire.Error_;
        r_value = "";
        r_detail = msg;
        r_retry_after_ms = None;
      }
    | exception exn ->
      (* unexpected: contained, but this one gets a post-mortem *)
      Obs.incr m_worker_contained;
      Obs.journal ~severity:Obs.Error
        ~attrs:[ ("id", id); ("exn", Printexc.to_string exn) ]
        "serve.worker.crash";
      Obs.journal_dump ~trigger:"serve.worker.crash" ();
      {
        Wire.r_id = id;
        r_status = Wire.Error_;
        r_value = "";
        r_detail = "internal error (contained)";
        r_retry_after_ms = None;
      }
  in
  let service_ns = Int64.sub (Obs.now_ns ()) started in
  Obs.observe d_latency (Int64.to_int service_ns);
  Scheduler.note_service_ns t.sched service_ns;
  push_completion t
    { c_sid = job.Scheduler.j_sid; c_resp = resp; c_service_ns = service_ns }

let worker t () =
  let rec loop () =
    match Scheduler.next t.sched with
    | None -> ()
    | Some job ->
      run_job t job;
      loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* The event loop                                                      *)
(* ------------------------------------------------------------------ *)

let resp_draining id =
  {
    Wire.r_id = id;
    r_status = Wire.Draining;
    r_value = "";
    r_detail = "daemon is draining";
    r_retry_after_ms = None;
  }

let resp_overloaded id retry_ms =
  {
    Wire.r_id = id;
    r_status = Wire.Overloaded;
    r_value = "";
    r_detail = "queue full";
    r_retry_after_ms = Some retry_ms;
  }

let resp_error id msg =
  {
    Wire.r_id = id;
    r_status = Wire.Error_;
    r_value = "";
    r_detail = msg;
    r_retry_after_ms = None;
  }

type loop_state = {
  srv : t;
  sessions : (int, Session.t) Hashtbl.t;
  by_fd : (Unix.file_descr, int) Hashtbl.t;
  (* lint: domain-local owned by the event-loop thread *)
  mutable draining : bool;
  (* lint: domain-local owned by the event-loop thread *)
  mutable last_flush_ns : int64;
  (* lint: domain-local owned by the event-loop thread *)
  mutable drain_started_ns : int64;
}

let add_session st s =
  Hashtbl.replace st.sessions s.Session.sid s;
  Hashtbl.replace st.by_fd s.Session.fd s.Session.sid

let reap st (s : Session.t) ~why =
  Budget.cancel s.Session.cancel;
  let dropped = Scheduler.drop_client st.srv.sched s.Session.sid in
  Obs.journal ~severity:Obs.Info
    ~attrs:
      [ ("sid", string_of_int s.Session.sid); ("why", why);
        ("dropped", string_of_int (List.length dropped)) ]
    "serve.session.reaped";
  Hashtbl.remove st.sessions s.Session.sid;
  Hashtbl.remove st.by_fd s.Session.fd;
  Io.close s.Session.fd

let send (s : Session.t) resp =
  if not s.Session.closing then
    let bytes =
      (* Wire.encode_response is total, but a raise here would kill
         the event loop: belt and braces, degrade to a stub error *)
      match Wire.encode_response resp with
      | b -> b
      | exception _ ->
        Wire.encode_response (resp_error resp.Wire.r_id "encode failure")
    in
    Session.enqueue_output s bytes

(* a decoded frame: admission control, then the scheduler *)
let handle_request st (s : Session.t) (req : Wire.request) =
  if st.draining then begin
    Obs.incr m_draining;
    send s (resp_draining req.Wire.id)
  end
  else begin
    let job =
      {
        Scheduler.j_sid = s.Session.sid;
        j_req = req;
        j_cancel = s.Session.cancel;
        j_enq_ns = Obs.now_ns ();
      }
    in
    match Scheduler.submit st.srv.sched job with
    | `Accepted ->
      Obs.incr m_requests;
      s.Session.in_flight <- s.Session.in_flight + 1
    | `Rejected retry_ms ->
      Obs.incr m_shed;
      send s (resp_overloaded req.Wire.id retry_ms)
    | `Stopped ->
      Obs.incr m_draining;
      send s (resp_draining req.Wire.id)
  end

let handle_payload st s payload =
  match Wire.decode_request payload with
  | Ok req -> handle_request st s req
  | Error msg ->
    (* malformed frame: structured error, connection stays open *)
    Obs.incr m_malformed;
    send s (resp_error "" msg)

let pump_frames st (s : Session.t) =
  let rec go () =
    if not s.Session.closing then
      match Wire.next_frame s.Session.deframer with
      | `Await -> ()
      | `Frame payload ->
        handle_payload st s payload;
        go ()
      | `Oversize n ->
        (* the stream cannot be resynced past a lying header: answer,
           flush what we can, close *)
        Obs.incr m_malformed;
        send s
          (resp_error ""
             (Printf.sprintf "frame of %d bytes exceeds the %d cap" n
                Wire.max_payload));
        s.Session.closing <- true
  in
  go ()

let read_session st (s : Session.t) ~now_ns ~buf =
  if Fault.should_fail Fault.Read_stall then begin
    Obs.incr m_reaped_stall;
    reap st s ~why:"read_stall (injected)"
  end
  else
    match Io.read ~timeout_s:0.0 s.Session.fd buf with
    | Io.Data n ->
      Session.touch s ~now_ns;
      Wire.feed s.Session.deframer buf n;
      pump_frames st s
    | Io.Timeout -> ()
    | Io.Eof | Io.Closed ->
      reap st s ~why:(if s.Session.in_flight > 0 then "disconnect mid-flight"
                      else "disconnect")

let flush_session st (s : Session.t) ~now_ns =
  if Session.pending_output s > 0 then begin
    if Fault.should_fail Fault.Write_stall then begin
      Obs.incr m_reaped_stall;
      reap st s ~why:"write_stall (injected)"
    end
    else
      match
        Io.write_all ~timeout_s:0.005 s.Session.fd s.Session.out
          s.Session.out_pos
      with
      | `All ->
        Session.wrote s (String.length s.Session.out);
        Session.touch s ~now_ns;
        if s.Session.closing then reap st s ~why:"closed after flush"
      | `Partial pos ->
        let progressed = pos > s.Session.out_pos in
        Session.wrote s pos;
        if progressed then Session.touch s ~now_ns
        else if
          Int64.to_float (Session.idle_ns s ~now_ns)
          > st.srv.cfg.write_timeout_s *. 1e9
        then begin
          Obs.incr m_reaped_stall;
          reap st s ~why:"write_stall"
        end
      | `Closed -> reap st s ~why:"peer closed during write"
  end
  else if s.Session.closing then reap st s ~why:"closed"

let accept_clients st ~now_ns listen_fd =
  let rec go () =
    match Io.accept ~timeout_s:0.0 listen_fd with
    | None -> ()
    | Some fd ->
      (if Fault.should_fail Fault.Accept_fail then
         (* injected accept failure: the connection is dropped on the
            floor, exactly like a transient kernel-level failure *)
         Io.close fd
       else if Hashtbl.length st.sessions >= st.srv.cfg.max_sessions then begin
         Obs.incr m_shed;
         let s = Session.create ~now_ns fd in
         send s (resp_overloaded "" 1000);
         s.Session.closing <- true;
         add_session st s
       end
       else begin
         Obs.incr m_conns;
         add_session st (Session.create ~now_ns fd)
       end);
      go ()
  in
  go ()

let drain_completions st ~now_ns =
  List.iter
    (fun c ->
       match Hashtbl.find_opt st.sessions c.c_sid with
       | Some s ->
         s.Session.in_flight <- max 0 (s.Session.in_flight - 1);
         Session.touch s ~now_ns;
         send s c.c_resp
       | None ->
         (* the client vanished mid-flight: the work is already
            journaled as reaped; record the orphaned response *)
         Obs.incr m_orphaned;
         Obs.journal ~severity:Obs.Info
           ~attrs:[ ("sid", string_of_int c.c_sid) ]
           "serve.response.orphaned")
    (take_completions st.srv)

let reap_idle st ~now_ns =
  let victims =
    Hashtbl.fold
      (fun _ s acc ->
         if
           s.Session.in_flight = 0
           && Session.pending_output s = 0
           && Int64.to_float (Session.idle_ns s ~now_ns)
              > st.srv.cfg.idle_timeout_s *. 1e9
         then s :: acc
         else acc)
      st.sessions []
  in
  List.iter
    (fun s ->
       Obs.incr m_reaped_idle;
       reap st s ~why:"idle")
    victims

let quiesced st =
  Scheduler.depth st.srv.sched = 0
  && Hashtbl.fold
       (fun _ s acc ->
          acc && s.Session.in_flight = 0 && Session.pending_output s = 0)
       st.sessions true

let run ?(on_listening = fun () -> ()) t =
  (* a client that vanishes between select and write must surface as
     EPIPE on the write (reap + journal), not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd =
    Io.listen ~path:t.cfg.socket_path ~backlog:(max 8 t.cfg.max_sessions)
  in
  Atomic.set t.listening true;
  on_listening ();
  let workers =
    List.init t.cfg.workers (fun _ -> Domain.spawn (fun () -> worker t ()))
  in
  let st =
    {
      srv = t;
      sessions = Hashtbl.create 64;
      by_fd = Hashtbl.create 64;
      draining = false;
      last_flush_ns = Obs.now_ns ();
      drain_started_ns = 0L;
    }
  in
  let buf = Bytes.create 65536 in
  let listen_open = ref true in
  let finished = ref false in
  while not !finished do
    let now_ns = Obs.now_ns () in
    (* SIGTERM/SIGINT noticed at most one tick late *)
    if Atomic.get t.stop_flag && not st.draining then begin
      st.draining <- true;
      st.drain_started_ns <- now_ns;
      if !listen_open then begin
        Io.close listen_fd;
        listen_open := false
      end;
      Scheduler.stop t.sched;
      Obs.journal ~severity:Obs.Info "serve.drain.start"
    end;
    (* periodic / SIGHUP-triggered sink flush *)
    let interval_due =
      t.cfg.flush_interval_s > 0.0
      && Int64.to_float (Int64.sub now_ns st.last_flush_ns)
         > t.cfg.flush_interval_s *. 1e9
    in
    if Atomic.exchange t.flush_flag false || interval_due then begin
      st.last_flush_ns <- now_ns;
      flush_sinks t ~trigger:(if interval_due then "interval" else "sighup")
    end;
    let fds =
      (if !listen_open then [ listen_fd ] else [])
      @ (t.wake_r
         :: Hashtbl.fold (fun fd _ acc -> fd :: acc) st.by_fd [])
    in
    let ready = Io.select ~timeout_s:0.05 fds in
    let now_ns = Obs.now_ns () in
    List.iter
      (fun fd ->
         if !listen_open && fd == listen_fd then
           accept_clients st ~now_ns listen_fd
         else if fd == t.wake_r then
           Io.drain_notifications ~timeout_s:0.0 t.wake_r
         else
           match Hashtbl.find_opt st.by_fd fd with
           | Some sid -> (
             match Hashtbl.find_opt st.sessions sid with
             | Some s -> read_session st s ~now_ns ~buf
             | None -> ())
           | None -> ())
      ready;
    drain_completions st ~now_ns;
    Hashtbl.iter (fun _ s -> flush_session st s ~now_ns)
      (Hashtbl.copy st.sessions);
    if not st.draining then reap_idle st ~now_ns
    else begin
      let waited_s =
        Int64.to_float (Int64.sub now_ns st.drain_started_ns) /. 1e9
      in
      if waited_s > t.cfg.drain_timeout_s then
        (* grace expired: cancel every session token so in-flight work
           unwinds as Exhausted/Cancelled *)
        Hashtbl.iter
          (fun _ s -> Budget.cancel s.Session.cancel)
          st.sessions;
      if quiesced st || waited_s > 2.0 *. t.cfg.drain_timeout_s then
        finished := true
    end
  done;
  (* drained: workers exit once the scheduler runs dry *)
  List.iter Domain.join workers;
  drain_completions st ~now_ns:(Obs.now_ns ());
  Hashtbl.iter
    (fun _ s ->
       if Session.pending_output s > 0 then
         ignore
           (Io.write_all ~timeout_s:0.2 s.Session.fd s.Session.out
              s.Session.out_pos);
       Io.close s.Session.fd)
    st.sessions;
  if !listen_open then Io.close listen_fd;
  Io.close t.wake_r;
  Io.close t.wake_w;
  (try Sys.remove t.cfg.socket_path with Sys_error _ -> ());
  flush_sinks t ~trigger:"drain";
  Obs.journal ~severity:Obs.Info "serve.drain.done";
  Atomic.set t.listening false
