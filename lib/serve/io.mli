(** Bounded blocking I/O for the service tier.

    The one module in [lib/serve] allowed to perform blocking [Unix]
    calls (lint rule R11); every operation takes a [~timeout_s] bound
    and reports expiry as a normal result, so no daemon code path can
    block indefinitely on a socket. *)

(** [listen ~path ~backlog] binds and listens on a Unix-domain socket,
    unlinking a stale socket file left by a previous daemon.
    @raise Unix.Unix_error when the bind/listen fails. *)
val listen : path:string -> backlog:int -> Unix.file_descr

(** [accept ~timeout_s fd] waits up to [timeout_s] for a connection;
    [None] on timeout or a transient accept error. *)
val accept : timeout_s:float -> Unix.file_descr -> Unix.file_descr option

(** [Unix.select] cannot watch descriptors at or above [FD_SETSIZE]
    (1024 on Linux): anything sizing a descriptor set — notably the
    server's session cap — must leave headroom below this bound. *)
val max_select_fds : int

(** [select ~timeout_s fds] is the event-loop multiplexer: the subset
    of [fds] readable now; [[]] on timeout or [EINTR]. *)
val select :
  timeout_s:float -> Unix.file_descr list -> Unix.file_descr list

type read_result =
  | Data of int  (** bytes read *)
  | Eof  (** orderly close by the peer *)
  | Timeout
  | Closed  (** read error: treat as a dead peer *)

val read : timeout_s:float -> Unix.file_descr -> bytes -> read_result

(** [write_all ~timeout_s fd s pos] writes [s] from offset [pos]:
    [`All] on completion, [`Partial pos'] when the bound expired with
    [pos'] bytes sent in total, [`Closed] on a dead peer. *)
val write_all :
  timeout_s:float -> Unix.file_descr -> string -> int ->
  [ `All | `Partial of int | `Closed ]

(** [connect ~timeout_s ~path] opens a client connection with a
    non-blocking connect bounded by [timeout_s] — a daemon whose
    accept backlog is full yields [Error "... timed out ..."] at the
    deadline instead of blocking indefinitely. *)
val connect :
  timeout_s:float -> path:string -> (Unix.file_descr, string) result

(** [notify ~timeout_s fd] writes one wakeup byte to the self-pipe
    (best effort: a full pipe already guarantees a pending wakeup). *)
val notify : timeout_s:float -> Unix.file_descr -> unit

(** [drain_notifications ~timeout_s fd] consumes pending wakeup
    bytes. *)
val drain_notifications : timeout_s:float -> Unix.file_descr -> unit

(** [close fd] closes, ignoring errors (double close included). *)
val close : Unix.file_descr -> unit
