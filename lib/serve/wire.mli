(** The wlcq/1 wire protocol: length-delimited frames over a Unix
    socket, each carrying a small line-oriented text payload.

    Frame layout: a 4-byte big-endian payload length, then the
    payload.  Payload grammar (see DESIGN.md "Service tier"):

    {v
    payload  ::= "wlcq/1 " verb ("\n" key "=" value)*
    verb     ::= "ping" | "decide" | "count" | "count-batch"
               | "treewidth" | "reply"
    v}

    Values escape ['\n'] as ["\\n"] and ['\\'] as ["\\\\"] so any
    string round-trips.  Everything in this module is pure: decoding
    never raises and never performs I/O, so a malformed frame can be
    answered with a structured [error] response instead of a
    disconnect. *)

(** Hard cap on a payload, in bytes (1 MiB).  A frame header
    announcing more is unrecoverable (the stream cannot be resynced)
    and closes the connection. *)
val max_payload : int

(** Cap on queries per [count-batch] request. *)
val max_batch : int

type op =
  | Ping
  | Decide of { k : int; g1 : string; g2 : string }
      (** [k]-WL equivalence of two graph specs *)
  | Count of { query : string; graph : string }
      (** answer count of a conjunctive query *)
  | Count_batch of { queries : string list; graph : string }
      (** several queries against one graph under one shared budget *)
  | Treewidth of { graph : string }

type request = {
  id : string;  (** client-chosen correlation id, echoed in the reply *)
  deadline_ms : float option;  (** clamped by the server's cap *)
  max_live_mb : int option;  (** clamped by the server's cap *)
  op : op;
}

type status =
  | Ok_
  | Degraded  (** sound value from a fallback rung; see [detail] *)
  | Exhausted  (** budget tripped before any sound value *)
  | Error_  (** malformed input or contained worker failure *)
  | Overloaded  (** admission control shed the request *)
  | Draining  (** daemon is in SIGTERM drain; no new work accepted *)

val status_to_string : status -> string
val status_of_string : string -> status option

type response = {
  r_id : string;
  r_status : status;
  r_value : string;
  r_detail : string;
  r_retry_after_ms : int option;  (** set on [Overloaded] *)
}

(** [encode_request r] is a complete frame (header + payload), ready
    to write.
    @raise Invalid_argument when the payload exceeds {!max_payload}. *)
val encode_request : request -> string

(** [encode_response r] is total: [r_id] and [r_detail] are clamped to
    a few KiB (decode-error details may echo client-controlled text),
    and a payload that still exceeds {!max_payload} — only possible
    through [r_value] — degrades to a stub [Error_] response instead
    of raising inside the server's event loop. *)
val encode_response : response -> string

(** Payload decoders ([decode_request] is applied by the server to
    each deframed payload, [decode_response] by clients).  Total:
    malformed input is [Error msg], never an exception. *)
val decode_request : string -> (request, string) result

val decode_response : string -> (response, string) result

(** {1 Incremental deframing} *)

type deframer

val deframer : unit -> deframer

(** [feed d bytes len] appends the first [len] bytes just read from
    the socket. *)
val feed : deframer -> bytes -> int -> unit

(** Bytes buffered but not yet consumed by {!next_frame}. *)
val buffered : deframer -> int

(** [`Frame payload] pops one complete payload; [`Await] needs more
    bytes; [`Oversize n] reports a header announcing [n] bytes beyond
    {!max_payload} — the connection must be closed. *)
val next_frame : deframer -> [ `Frame of string | `Await | `Oversize of int ]
