(* The wlcq/1 wire protocol: length-delimited frames carrying a small
   line-oriented text payload.

   A frame is a 4-byte big-endian payload length followed by that many
   payload bytes.  The payload is text: a first line "wlcq/1 <verb>"
   and then "key=value" lines, with '\n' and '\\' escaped inside
   values so any string round-trips.  Everything here is pure —
   decoding never raises and never touches a socket; the incremental
   deframer buffers bytes fed by the event loop and yields complete
   payloads.  Malformed input comes back as [Error msg] so the server
   can answer with a structured error response instead of
   disconnecting. *)

let max_payload = 1 lsl 20
let max_batch = 256

(* Decode errors echo the offending input, and a hostile frame can be
   ~[max_payload] bytes: cap the echoed excerpt so the resulting error
   response is always far below the frame cap itself. *)
let excerpt_bytes = 256

let excerpt s =
  if String.length s <= excerpt_bytes then s
  else
    Printf.sprintf "%s... (%d bytes total)"
      (String.sub s 0 excerpt_bytes)
      (String.length s)

type op =
  | Ping
  | Decide of { k : int; g1 : string; g2 : string }
  | Count of { query : string; graph : string }
  | Count_batch of { queries : string list; graph : string }
  | Treewidth of { graph : string }

type request = {
  id : string;
  deadline_ms : float option;
  max_live_mb : int option;
  op : op;
}

type status = Ok_ | Degraded | Exhausted | Error_ | Overloaded | Draining

let status_to_string = function
  | Ok_ -> "ok"
  | Degraded -> "degraded"
  | Exhausted -> "exhausted"
  | Error_ -> "error"
  | Overloaded -> "overloaded"
  | Draining -> "draining"

let status_of_string = function
  | "ok" -> Some Ok_
  | "degraded" -> Some Degraded
  | "exhausted" -> Some Exhausted
  | "error" -> Some Error_
  | "overloaded" -> Some Overloaded
  | "draining" -> Some Draining
  | _ -> None

type response = {
  r_id : string;
  r_status : status;
  r_value : string;
  r_detail : string;
  r_retry_after_ms : int option;
}

(* ------------------------------------------------------------------ *)
(* Value escaping                                                      *)
(* ------------------------------------------------------------------ *)

let escape s =
  let n = String.length s in
  let b = Buffer.create (n + 8) in
  for i = 0 to n - 1 do
    match s.[i] with
    | '\n' -> Buffer.add_string b "\\n"
    | '\\' -> Buffer.add_string b "\\\\"
    | c -> Buffer.add_char b c
  done;
  Buffer.contents b

(* Total: an unrecognised or trailing escape is kept literally, so
   decoding arbitrary bytes never raises. *)
let unescape s =
  let n = String.length s in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
        | 'n' -> Buffer.add_char b '\n'
        | '\\' -> Buffer.add_char b '\\'
        | c ->
          Buffer.add_char b '\\';
          Buffer.add_char b c);
       incr i
     end
     else Buffer.add_char b s.[!i]);
    incr i
  done;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Payload encode/decode                                               *)
(* ------------------------------------------------------------------ *)

let add_kv b k v =
  Buffer.add_char b '\n';
  Buffer.add_string b k;
  Buffer.add_char b '=';
  Buffer.add_string b (escape v)

let payload_of_request r =
  let b = Buffer.create 128 in
  Buffer.add_string b "wlcq/1 ";
  Buffer.add_string b
    (match r.op with
     | Ping -> "ping"
     | Decide _ -> "decide"
     | Count _ -> "count"
     | Count_batch _ -> "count-batch"
     | Treewidth _ -> "treewidth");
  if not (String.equal r.id "") then add_kv b "id" r.id;
  Option.iter (fun ms -> add_kv b "deadline-ms" (Printf.sprintf "%g" ms))
    r.deadline_ms;
  Option.iter (fun mb -> add_kv b "max-live-mb" (string_of_int mb))
    r.max_live_mb;
  (match r.op with
   | Ping -> ()
   | Decide { k; g1; g2 } ->
     add_kv b "k" (string_of_int k);
     add_kv b "g1" g1;
     add_kv b "g2" g2
   | Count { query; graph } ->
     add_kv b "query" query;
     add_kv b "graph" graph
   | Count_batch { queries; graph } ->
     List.iter (fun q -> add_kv b "query" q) queries;
     add_kv b "graph" graph
   | Treewidth { graph } -> add_kv b "graph" graph);
  Buffer.contents b

(* Responses must always be encodable, whatever the server puts in
   them: [detail] (which may embed client-controlled text from an
   error path) and the echoed [id] are clamped here so only [value]
   can ever push a payload near the frame cap. *)
let max_clamped = 4096

let clamp s =
  if String.length s <= max_clamped then s
  else String.sub s 0 max_clamped ^ "... (truncated)"

let payload_of_response r =
  let b = Buffer.create 128 in
  Buffer.add_string b "wlcq/1 reply";
  if not (String.equal r.r_id "") then add_kv b "id" (clamp r.r_id);
  add_kv b "status" (status_to_string r.r_status);
  if not (String.equal r.r_value "") then add_kv b "value" r.r_value;
  if not (String.equal r.r_detail "") then add_kv b "detail" (clamp r.r_detail);
  Option.iter (fun ms -> add_kv b "retry-after-ms" (string_of_int ms))
    r.r_retry_after_ms;
  Buffer.contents b

(* key=value lines after the first; lines without '=' are malformed *)
let parse_kvs lines =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match String.index_opt line '=' with
      | None ->
        Error
          (Printf.sprintf "Wire.decode: malformed line %S" (excerpt line))
      | Some i ->
        let k = String.sub line 0 i in
        let v = unescape (String.sub line (i + 1) (String.length line - i - 1))
        in
        go ((k, v) :: acc) rest)
  in
  go [] lines

let split_payload payload =
  match String.split_on_char '\n' payload with
  | [] -> Error "Wire.decode: empty payload"
  | first :: rest -> (
    match String.split_on_char ' ' first with
    | [ "wlcq/1"; verb ] -> (
      match parse_kvs rest with
      | Ok kvs -> Ok (verb, kvs)
      | Error _ as e -> e)
    | _ -> Error (Printf.sprintf "Wire.decode: bad header %S" (excerpt first)))

let find kvs k = List.assoc_opt k kvs
let find_all kvs k = List.filter_map (fun (k', v) -> if String.equal k k' then Some v else None) kvs

let require kvs k =
  match find kvs k with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "Wire.decode: missing key %S" k)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let int_field kvs k =
  let* v = require kvs k in
  match int_of_string_opt v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "Wire.decode: key %S is not an integer" k)

let opt_num kvs k of_string what =
  match find kvs k with
  | None -> Ok None
  | Some v -> (
    match of_string v with
    | Some n -> Ok (Some n)
    | None -> Error (Printf.sprintf "Wire.decode: key %S is not %s" k what))

let decode_request payload =
  let* verb, kvs = split_payload payload in
  let id = Option.value ~default:"" (find kvs "id") in
  let* deadline_ms = opt_num kvs "deadline-ms" float_of_string_opt "a number" in
  let* max_live_mb = opt_num kvs "max-live-mb" int_of_string_opt "an integer" in
  let* op =
    match verb with
    | "ping" -> Ok Ping
    | "decide" ->
      let* k = int_field kvs "k" in
      let* g1 = require kvs "g1" in
      let* g2 = require kvs "g2" in
      Ok (Decide { k; g1; g2 })
    | "count" ->
      let* query = require kvs "query" in
      let* graph = require kvs "graph" in
      Ok (Count { query; graph })
    | "count-batch" ->
      let queries = find_all kvs "query" in
      let* graph = require kvs "graph" in
      if List.length queries = 0 then
        Error "Wire.decode: count-batch needs >= 1 query"
      else if List.length queries > max_batch then
        Error
          (Printf.sprintf "Wire.decode: count-batch capped at %d queries"
             max_batch)
      else Ok (Count_batch { queries; graph })
    | "treewidth" ->
      let* graph = require kvs "graph" in
      Ok (Treewidth { graph })
    | v -> Error (Printf.sprintf "Wire.decode: unknown verb %S" (excerpt v))
  in
  Ok { id; deadline_ms; max_live_mb; op }

let decode_response payload =
  let* verb, kvs = split_payload payload in
  if not (String.equal verb "reply") then
    Error (Printf.sprintf "Wire.decode: expected reply, got %S" (excerpt verb))
  else
    let* status_s = require kvs "status" in
    let* r_status =
      match status_of_string status_s with
      | Some s -> Ok s
      | None ->
        Error
          (Printf.sprintf "Wire.decode: unknown status %S" (excerpt status_s))
    in
    let* r_retry_after_ms =
      opt_num kvs "retry-after-ms" int_of_string_opt "an integer"
    in
    Ok
      {
        r_id = Option.value ~default:"" (find kvs "id");
        r_status;
        r_value = Option.value ~default:"" (find kvs "value");
        r_detail = Option.value ~default:"" (find kvs "detail");
        r_retry_after_ms;
      }

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let frame payload =
  let n = String.length payload in
  if n > max_payload then
    invalid_arg
      (Printf.sprintf "Wire.frame: payload of %d bytes exceeds the %d cap" n
         max_payload);
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

let encode_request r = frame (payload_of_request r)

(* Total: [frame] raising inside the server's event loop would kill
   the daemon, so an oversized payload — only possible via [r_value],
   since [r_id]/[r_detail] are clamped — degrades to a stub error. *)
let encode_response r =
  let payload = payload_of_response r in
  if String.length payload <= max_payload then frame payload
  else
    frame
      (payload_of_response
         {
           r with
           r_status = Error_;
           r_value = "";
           r_detail = "response exceeded the frame cap";
         })

type deframer = {
  buf : Buffer.t;  (* fed bytes; [off] is the already-consumed prefix *)
  (* lint: domain-local a deframer belongs to the session that owns it,
     touched only by the event loop *)
  mutable off : int;
}

let deframer () = { buf = Buffer.create 256; off = 0 }

(* Appending into a [Buffer.t] is amortized O(len), so a frame
   trickled in byte-sized reads costs O(n) total, not the O(n^2) of
   repeated string concatenation on the event-loop thread. *)
let feed d bytes len = if len > 0 then Buffer.add_subbytes d.buf bytes 0 len

let buffered d = Buffer.length d.buf - d.off

(* Drop the consumed prefix once it dominates the buffer; rebuilding
   costs O(live bytes), so it amortizes away across frames. *)
let compact d =
  let n = Buffer.length d.buf in
  if d.off = n then begin
    Buffer.clear d.buf;
    d.off <- 0
  end
  else if d.off >= 4096 && 2 * d.off >= n then begin
    let rest = Buffer.sub d.buf d.off (n - d.off) in
    Buffer.clear d.buf;
    Buffer.add_string d.buf rest;
    d.off <- 0
  end

let next_frame d =
  if buffered d < 4 then `Await
  else
    let byte i = Char.code (Buffer.nth d.buf (d.off + i)) in
    let len =
      (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3
    in
    if len > max_payload then `Oversize len
    else if buffered d < 4 + len then `Await
    else begin
      let payload = Buffer.sub d.buf (d.off + 4) len in
      d.off <- d.off + 4 + len;
      compact d;
      `Frame payload
    end
