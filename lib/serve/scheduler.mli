(** Fair per-client job queueing with bounded admission.

    One queue per client, popped round-robin over clients with pending
    work, so a flooding client deepens only its own queue.  Admission
    is capped per client and in total; a rejection carries a
    retry-after hint from an EWMA of observed service times.  [next]
    blocks worker domains on a condition variable until work or
    {!stop} arrives, and keeps handing out queued jobs after [stop]
    until the queues drain (the SIGTERM drain path). *)

type job = {
  j_sid : int;
  j_req : Wire.request;
  j_cancel : Wlcq_robust.Budget.token;
      (** the owning session's token: cancelled when the client is
          reaped, so queued work for a dead client unwinds *)
  j_enq_ns : int64;
}

type t

(** @raise Invalid_argument on non-positive caps. *)
val create : max_total:int -> max_per_client:int -> workers:int -> t

val submit : t -> job -> [ `Accepted | `Rejected of int | `Stopped ]

(** Blocking pop; [None] once stopped and fully drained. *)
val next : t -> job option

(** Feed one completed job's wall time into the EWMA behind the
    retry-after hint. *)
val note_service_ns : t -> int64 -> unit

(** [drop_client t sid] removes and returns the still-queued jobs of a
    reaped client. *)
val drop_client : t -> int -> job list

val depth : t -> int
val stop : t -> unit
val stopped : t -> bool
