(** The wlcq daemon: accept loop, session table, worker pool, drain.

    One event-loop thread owns every socket and session; [workers]
    domains execute requests popped from the {!Scheduler}.  Crash
    containment is total: a request that raises, exhausts its budget,
    or whose client disconnects mid-flight is answered or journaled
    and the daemon lives on.  See DESIGN.md "Service tier" for the
    shed/drain state machine. *)

type config = {
  socket_path : string;
  workers : int;  (** worker domains executing requests *)
  max_sessions : int;
  max_queue : int;  (** total admission cap across clients *)
  max_queue_per_client : int;
  max_deadline_ms : float option;
      (** server cap: client-requested deadlines are clamped to it *)
  default_deadline_ms : float option;
      (** applied when the client requests no deadline *)
  max_live_mb : int option;  (** heap-ceiling cap, clamped likewise *)
  idle_timeout_s : float;  (** quiet sessions are reaped after this *)
  write_timeout_s : float;  (** a client not draining its responses
                                for this long is reaped *)
  drain_timeout_s : float;
      (** SIGTERM grace before in-flight budgets are cancelled *)
  flush_interval_s : float;  (** periodic sink re-render; 0 disables *)
  metrics_out : string option;
      (** OpenMetrics snapshot target, rewritten atomically each flush *)
  journal_path : string option;
      (** the flight-recorder dump path (as armed via Obs), used for
          size-based rotation to [path ^ ".1"] *)
  journal_rotate_bytes : int;
}

val default_config : socket_path:string -> config

type t

(** @raise Invalid_argument on a non-positive worker count. *)
val create : config -> t

(** [run t] binds the socket and serves until {!shutdown}; returns
    after the drain completes (sinks flushed, sockets closed, socket
    file removed).  [on_listening] fires once the socket accepts
    connections.
    @raise Unix.Unix_error when the socket cannot be bound. *)
val run : ?on_listening:(unit -> unit) -> t -> unit

(** Signal-safe: flips an atomic the event loop polls every tick.  The
    drain stops accepting, answers queued work, finishes or
    [Exhausted]-cancels in-flight work, flushes sinks. *)
val shutdown : t -> unit

(** Signal-safe (SIGHUP): request an immediate sink flush. *)
val request_flush : t -> unit

(** Whether the daemon is currently bound and serving. *)
val listening : t -> bool
