(* Request execution: one decoded wire request in, one response out.

   Parsing of the embedded query/graph specs happens here, inside the
   worker, so malformed payloads surface as structured [Error]
   responses.  Engine outcomes map onto wire statuses:
   [`Exact]/[`Degraded]/[`Exhausted] become [Ok_]/[Degraded]/
   [Exhausted], a raised [Budget.Exhausted] (from a raising entry
   point) becomes [Exhausted] too.  Containment of everything else —
   including [Worker_raise] fault injections — lives in the server's
   worker wrapper, not here. *)

module G = Wlcq_graph
module Core = Wlcq_core
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome

let reply ?(value = "") ?(detail = "") ~id status =
  {
    Wire.r_id = id;
    r_status = status;
    r_value = value;
    r_detail = detail;
    r_retry_after_ms = None;
  }

let error ~id msg = reply ~id ~detail:msg Wire.Error_

let degraded_detail (r : Outcome.reason) =
  Printf.sprintf "%s via %s" (Budget.reason_to_string r.Outcome.cause)
    r.Outcome.fallback

let ( let* ) r f =
  match r with Ok v -> f v | Error e -> `Malformed e

let parse_graph s =
  match G.Spec.parse s with
  | Ok g -> Ok g
  | Error e -> Error e

let parse_query s =
  match Core.Parser.parse s with
  | Ok p -> Ok p.Core.Parser.query
  | Error e -> Error e

let run_op ~budget (op : Wire.op) =
  match op with
  | Wire.Ping -> `Value ("pong", "")
  | Wire.Decide { k; g1; g2 } -> (
    let* g1 = parse_graph g1 in
    let* g2 = parse_graph g2 in
    match Wlcq_wl.Equivalence.equivalent_budgeted ~budget k g1 g2 with
    | `Exact eq -> `Value (string_of_bool eq, "")
    | `Degraded (eq, r) -> `Degraded (string_of_bool eq, degraded_detail r)
    | `Exhausted r -> `Exhausted (Budget.reason_to_string r))
  | Wire.Count { query; graph } -> (
    let* q = parse_query query in
    let* g = parse_graph graph in
    match Core.Cq.count_answers_budgeted ~budget q g with
    | `Exact n -> `Value (string_of_int n, "")
    | `Degraded (n, r) -> `Degraded (string_of_int n, degraded_detail r)
    | `Exhausted (partial, r) ->
      `Exhausted
        (Printf.sprintf "%s; sound lower bound %d"
           (Budget.reason_to_string r) partial))
  | Wire.Count_batch { queries; graph } -> (
    let* g = parse_graph graph in
    (* all queries share the request budget (and through it the cache
       tier): the batch degrades or exhausts as a unit, with completed
       counts kept as a sound prefix *)
    let rec go acc worst = function
      | [] ->
        let value = String.concat "," (List.rev acc) in
        (match worst with
         | None -> `Value (value, "")
         | Some detail -> `Degraded (value, detail))
      | q :: rest -> (
        match parse_query q with
        | Error e -> `Malformed e
        | Ok q -> (
          match Core.Cq.count_answers_budgeted ~budget q g with
          | `Exact n -> go (string_of_int n :: acc) worst rest
          | `Degraded (n, r) ->
            go (string_of_int n :: acc) (Some (degraded_detail r)) rest
          | `Exhausted (_, r) ->
            `Exhausted
              (Printf.sprintf "%s after %d of %d queries"
                 (Budget.reason_to_string r) (List.length acc)
                 (List.length queries))))
    in
    go [] None queries)
  | Wire.Treewidth { graph } -> (
    let* g = parse_graph graph in
    match Wlcq_treewidth.Exact.treewidth_budgeted ~budget g with
    | `Exact w -> `Value (string_of_int w, "")
    | `Degraded (w, r) -> `Degraded (string_of_int w, degraded_detail r)
    | `Exhausted _ -> `Exhausted "treewidth exhausted")

let execute ~budget (req : Wire.request) =
  let id = req.Wire.id in
  match run_op ~budget req.Wire.op with
  | `Value (value, detail) -> reply ~id ~value ~detail Wire.Ok_
  | `Degraded (value, detail) -> reply ~id ~value ~detail Wire.Degraded
  | `Exhausted detail -> reply ~id ~detail Wire.Exhausted
  | `Malformed msg -> error ~id msg
  | exception Budget.Exhausted r ->
    reply ~id ~detail:(Budget.reason_to_string r) Wire.Exhausted
