(** Request execution: decoded wire requests onto the budgeted engine
    entry points.

    Spec parsing happens here in the worker, so malformed payloads
    become structured [Error] responses; engine outcomes map onto the
    wire statuses ([`Exact] → [Ok_], [`Degraded] → [Degraded],
    [`Exhausted] and a raised [Budget.Exhausted] → [Exhausted]).
    Other exceptions propagate — the server's worker wrapper owns
    containment and post-mortem journaling. *)

module Budget = Wlcq_robust.Budget

(** [execute ~budget req] never raises [Invalid_argument]/[Failure]
    for malformed payloads (those are [Error] responses) but may let
    unexpected exceptions escape to the caller's containment
    wrapper. *)
val execute : budget:Budget.t -> Wire.request -> Wire.response
