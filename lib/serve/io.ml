(* The designated blocking-I/O module of the service tier.

   Lint rule R11 confines every blocking [Unix] call in lib/serve
   (accept/read/write/select/recv/send) to this file, and inside it to
   functions that carry an explicit [~timeout_s] parameter — so no
   code path in the daemon can block indefinitely on a socket.  Each
   wrapper bounds the wait with a [Unix.select] on the single
   descriptor before performing the operation; a timeout is a normal
   result, never an exception. *)

let wait_readable ~timeout_s fd =
  match Unix.select [ fd ] [] [] timeout_s with
  | [], _, _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let wait_writable ~timeout_s fd =
  match Unix.select [] [ fd ] [] timeout_s with
  | _, [], _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let listen ~path ~backlog =
  (match Unix.lstat path with
   | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
   | _ -> ()
   | exception Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd backlog
   with e ->
     Unix.close fd;
     raise e);
  fd

let accept ~timeout_s fd =
  if not (wait_readable ~timeout_s fd) then None
  else
    match Unix.accept ~cloexec:true fd with
    | cfd, _ -> Some cfd
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _)
      -> None

(* [Unix.select] cannot watch descriptors >= FD_SETSIZE (1024 on
   Linux); callers sizing a descriptor set (the server's session cap)
   must stay below this or the multiplexer itself raises. *)
let max_select_fds = 1024

(* [select ~timeout_s fds] is the event-loop multiplexer: descriptors
   readable now, [] on timeout or EINTR. *)
let select ~timeout_s fds =
  match Unix.select fds [] [] timeout_s with
  | ready, _, _ -> ready
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []

type read_result = Data of int | Eof | Timeout | Closed

let read ~timeout_s fd buf =
  if not (wait_readable ~timeout_s fd) then Timeout
  else
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> Eof
    | n -> Data n
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      -> Timeout
    | exception Unix.Unix_error (_, _, _) -> Closed

(* [write_all ~timeout_s fd s pos] writes [s] from [pos] on; [`All] on
   completion, [`Partial n] with the new offset when the per-call
   timeout expired first, [`Closed] on a dead peer (EPIPE et al.). *)
let write_all ~timeout_s fd s pos =
  let n = String.length s in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go pos =
    if pos >= n then `All
    else
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0.0 then `Partial pos
      else if not (wait_writable ~timeout_s:left fd) then `Partial pos
      else
        match Unix.write_substring fd s pos (n - pos) with
        | written -> go (pos + written)
        | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          -> go pos
        | exception Unix.Unix_error (_, _, _) -> `Closed
  in
  go pos

(* Non-blocking connect so the declared [~timeout_s] really bounds the
   call.  Two asynchronous shapes exist for Unix-domain sockets: a
   connect parked in progress (EINPROGRESS: await writability, then
   check SO_ERROR) and a full accept backlog, which Linux reports as
   an immediate EAGAIN with nothing in flight — retried with a short
   sleep until the deadline. *)
let connect ~timeout_s ~path =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let err msg = Error (Printf.sprintf "Io.connect: %s: %s" path msg) in
  let rec attempt () =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let finish () =
      Unix.clear_nonblock fd;
      Ok fd
    in
    let fail msg =
      Unix.close fd;
      err msg
    in
    Unix.set_nonblock fd;
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> finish ()
    | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) ->
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0.0 || not (wait_writable ~timeout_s:left fd) then
        fail "timed out"
      else (
        match Unix.getsockopt_error fd with
        | None -> finish ()
        | Some e -> fail (Unix.error_message e))
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      Unix.close fd;
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0.0 then err "timed out (backlog full)"
      else begin
        ignore (Unix.select [] [] [] (Float.min 0.01 left));
        attempt ()
      end
    | exception Unix.Unix_error (e, _, _) -> fail (Unix.error_message e)
  in
  attempt ()

(* Self-pipe wakeup: workers poke one byte at the event loop so a
   completed job interrupts the loop's select immediately. *)
let notify ~timeout_s fd =
  if wait_writable ~timeout_s fd then
    match Unix.write_substring fd "!" 0 1 with
    | _ -> ()
    | exception Unix.Unix_error (_, _, _) -> ()

let drain_notifications ~timeout_s fd =
  let buf = Bytes.create 64 in
  let rec go () =
    if wait_readable ~timeout_s fd then
      match Unix.read fd buf 0 64 with
      | 64 -> go ()
      | _ -> ()
      | exception Unix.Unix_error (_, _, _) -> ()
  in
  go ()

let close fd = try Unix.close fd with Unix.Unix_error (_, _, _) -> ()
