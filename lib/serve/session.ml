(* Per-client session state.

   A session is owned by the event loop: every mutable field here is
   read and written from the loop thread only.  Workers interact with
   a session exclusively through its cancellation token (an atomic
   inside Budget) and through the server's completion queue, so no
   field needs a lock. *)

module Budget = Wlcq_robust.Budget

type t = {
  sid : int;
  fd : Unix.file_descr;
  deframer : Wire.deframer;
  (* lint: domain-local single-writer, owned by the event loop *)
  mutable out : string;  (* bytes not yet written to the client *)
  (* lint: domain-local single-writer, owned by the event loop *)
  mutable out_pos : int;  (* prefix of [out] already written *)
  (* lint: domain-local single-writer, owned by the event loop *)
  mutable last_activity_ns : int64;
  (* lint: domain-local single-writer, owned by the event loop *)
  mutable in_flight : int;  (* jobs queued or executing for this client *)
  (* lint: domain-local single-writer, owned by the event loop *)
  mutable closing : bool;  (* flush pending output, then close *)
  cancel : Budget.token;  (* cancelled when the session is reaped *)
}

let next_sid = Atomic.make 1

let create ~now_ns fd =
  {
    sid = Atomic.fetch_and_add next_sid 1;
    fd;
    deframer = Wire.deframer ();
    out = "";
    out_pos = 0;
    last_activity_ns = now_ns;
    in_flight = 0;
    closing = false;
    cancel = Budget.token ();
  }

let touch s ~now_ns = s.last_activity_ns <- now_ns

let idle_ns s ~now_ns = Int64.sub now_ns s.last_activity_ns

let enqueue_output s bytes =
  (* compact the consumed prefix before appending, so the buffer does
     not grow with the total bytes ever sent *)
  if s.out_pos > 0 then begin
    s.out <- String.sub s.out s.out_pos (String.length s.out - s.out_pos);
    s.out_pos <- 0
  end;
  s.out <- s.out ^ bytes

let pending_output s = String.length s.out - s.out_pos

let wrote s pos = s.out_pos <- pos
