(** The folklore k-dimensional Weisfeiler-Leman algorithm.

    For [k >= 2], folklore k-WL colours the k-tuples of vertices:
    initially by their atomic type (the equality and adjacency pattern
    of the tuple), then iteratively by
    [c'(v̄) = (c(v̄), {{ (c(v̄[1/w]), …, c(v̄[k/w])) : w ∈ V }})]
    until stable.  Two graphs have equal stable colour histograms iff
    they agree on homomorphism counts from all graphs of treewidth at
    most k (Dvořák; Dell–Grohe–Rattan) — which is exactly the paper's
    Definition 19 of [≅_k].  The [k = 1] case of Definition 19 is
    colour refinement and is handled by {!Refinement}; this module
    requires [k >= 2].

    Complexity is Θ(n^{k+1}) per round — fine for the experiment
    scale (CFI graphs of a few dozen vertices, k ≤ 3). *)

open Wlcq_graph

type result = {
  colours : int array;  (** stable colour of each of the [n^k] tuples,
                            indexed by the base-[n] encoding of the
                            tuple *)
  num_colours : int;  (** colours in the shared namespace *)
  rounds : int;  (** rounds until stabilisation *)
}

(** [run k g] refines the k-tuples of [g].
    @raise Invalid_argument when [k < 2]. *)
val run : int -> Graph.t -> result

(** [run_pair k g1 g2] refines both graphs in a shared namespace. *)
val run_pair : int -> Graph.t -> Graph.t -> result * result

(** [histogram r] is the sorted [(colour, multiplicity)] list. *)
val histogram : result -> (int * int) list

(** [equivalent k g1 g2] tests folklore-k-WL-equivalence ([k >= 2]). *)
val equivalent : int -> Graph.t -> Graph.t -> bool
