(** The folklore k-dimensional Weisfeiler-Leman algorithm.

    For [k >= 2], folklore k-WL colours the k-tuples of vertices:
    initially by their atomic type (the equality and adjacency pattern
    of the tuple), then iteratively by
    [c'(v̄) = (c(v̄), {{ (c(v̄[1/w]), …, c(v̄[k/w])) : w ∈ V }})]
    until stable.  Two graphs have equal stable colour histograms iff
    they agree on homomorphism counts from all graphs of treewidth at
    most k (Dvořák; Dell–Grohe–Rattan) — which is exactly the paper's
    Definition 19 of [≅_k].  The [k = 1] case of Definition 19 is
    colour refinement and is handled by {!Refinement}; this module
    requires [k >= 2].

    Two engines are provided.  The default one works on flat [int
    array] colour buffers with a precomputed base-[n] decode table,
    packs each round signature into machine words, renumbers through a
    hash table keyed on a 64-bit rolling hash (every lookup is
    verified against the stored packed signature, so correctness never
    depends on hash luck), recolours only the tuples whose
    substitution neighbourhood touched a colour class that split last
    round, and parallelises signature computation across tuple chunks
    with [Domain.spawn] on large rounds.  The [*_reference] functions
    run the original list-based implementation; both produce the same
    stable partition, round count and colour count (the concrete
    colour ids may differ — ids are canonical within one run, not
    across runs or engines; {!renumber} fixes a run-independent id
    scheme, and cached colouring artifacts are always stored in that
    renumbered form so cache equality is well-defined).

    Complexity is Θ(n^{k+1}) per full round, with sub-full rounds once
    refinement localises.  The tuple space [n^k] (and the [k·n^k]
    decode table) must fit [Sys.max_array_length]; the entry points
    raise [Invalid_argument] instead of silently overflowing. *)

open Wlcq_graph
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome

type result = {
  colours : int array;  (** stable colour of each of the [n^k] tuples,
                            indexed by the base-[n] encoding of the
                            tuple *)
  num_colours : int;  (** colours in the shared namespace *)
  rounds : int;  (** rounds until stabilisation *)
}

(** [run k g] refines the k-tuples of [g].  [domains] caps the number
    of domains used for signature computation (default:
    [Domain.recommended_domain_count ()]; small rounds always run
    sequentially; [~domains:1] forces a single-threaded run).
    @raise Invalid_argument when [k < 2] or [n^k] exceeds
    [Sys.max_array_length]. *)
val run : ?domains:int -> int -> Graph.t -> result

(** [run_pair k g1 g2] refines both graphs in a shared namespace. *)
val run_pair : ?domains:int -> int -> Graph.t -> Graph.t -> result * result

(** [run_many k graphs] refines every graph in one shared colour
    namespace (the generalisation behind {!run_pair}). *)
val run_many : ?domains:int -> int -> Graph.t list -> result list

(** [histogram r] is the sorted [(colour, multiplicity)] list. *)
val histogram : result -> (int * int) list

(** [renumber r] maps colour ids to first-occurrence order over the
    tuple indices: same partition, but ids are now a deterministic
    function of the coloured structure rather than of engine history —
    the run-independent form every cached colouring artifact stores. *)
val renumber : result -> result

(** [run_cached k g] is {!run} through the content-addressed cache
    tier ({!Wlcq_cache.Cache}): the stable colouring is stored against
    the canonical form of [g] in {!renumber}ed form and translated
    back through the canonicalising permutation, so an isomorphic
    resubmission of [g] is a cache hit and two calls on isomorphic
    graphs return identically-renumbered colourings of corresponding
    tuples.  Ids are canonical per graph, NOT shared across graphs —
    use {!run_pair}/{!run_many} to compare colours across graphs.
    Counters: [kwl.cache_hits] / [kwl.cache_misses]. *)
val run_cached : ?domains:int -> int -> Graph.t -> result

(** [equivalent k g1 g2] tests folklore-k-WL-equivalence ([k >= 2]).
    Exits early as soon as the joint colour histograms of the two
    graphs diverge (refinement only splits classes, so divergence is
    permanent). *)
val equivalent : ?domains:int -> int -> Graph.t -> Graph.t -> bool

(** {2 Budgeted entry points}

    The budget is ticked per tuple inside signature computation;
    workers never unwind across [Domain.spawn] — they set a shared
    atomic trip flag and wind down, and the driver aborts {e before}
    the sequential renumbering phase, so on [`Degraded] the colour
    buffers hold the last {e completed} round's colouring: a sound
    prefix of the stable colouring (refinement only splits classes).
    A [Fault.Domain_spawn] injection demotes that worker's chunk to
    the driver ([robust.fallback.kwl_seq_compute]) with byte-identical
    results. *)

(** [run_many_budgeted ~budget k graphs]: [`Exact results] when the
    refinement stabilised; [`Degraded (results, _)] with the sound
    stable-colour prefix after the recorded number of completed rounds
    ([robust.fallback.kwl_prefix]); [`Exhausted] only when the budget
    tripped during the initial atomic-type colouring, before any round
    completed ([robust.fallback.kwl_exhausted]).
    @raise Invalid_argument as {!run_many}. *)
val run_many_budgeted :
  ?domains:int -> budget:Budget.t -> int -> Graph.t list ->
  (result list, Budget.reason) Outcome.t

(** Single-graph variant of {!run_many_budgeted}. *)
val run_budgeted :
  ?domains:int -> budget:Budget.t -> int -> Graph.t ->
  (result, Budget.reason) Outcome.t

(** [equivalent_budgeted ~budget k g1 g2]: a histogram divergence seen
    before the trip is permanent, so it yields a definitive
    [`Exact false] even under a tripped budget; only "no divergence
    observed before the stable colouring" degrades to [`Exhausted]
    (this outcome never carries [`Degraded]).
    @raise Invalid_argument as {!equivalent}. *)
val equivalent_budgeted :
  ?domains:int -> budget:Budget.t -> int -> Graph.t -> Graph.t ->
  (bool, Budget.reason) Outcome.t

(** {2 Test hooks} *)

(** Minimum round weight [m * max_n * k] at which the engine fans
    signature computation out to worker domains.  [0] forces the
    [Domain.spawn] path even on tiny instances (the per-domain chunk
    cap is bypassed too); [max_int] forces the sequential fallback.
    Default [1 lsl 15].  Only the differential tests should write it,
    and they must restore the saved value. *)
val parallel_threshold : int ref

(** {2 Reference engine}

    The original list-based implementation, kept as the differential
    oracle for the optimised engine.  Same partitions, same [rounds],
    same [num_colours]; colour ids may differ. *)

val run_reference : int -> Graph.t -> result
val run_pair_reference : int -> Graph.t -> Graph.t -> result * result
val run_many_reference : int -> Graph.t list -> result list
val equivalent_reference : int -> Graph.t -> Graph.t -> bool
