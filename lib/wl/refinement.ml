open Wlcq_graph

type result = { colours : int array; num_colours : int; rounds : int }

(* Joint refinement over a list of graphs sharing one colour
   namespace.  Each round maps every vertex to the pair (old colour,
   sorted multiset of neighbour colours) and canonically renumbers by
   the sorted order of these signatures. *)
let run_many graphs =
  let colourings = List.map (fun g -> Array.make (Graph.num_vertices g) 0) graphs in
  let round colourings =
    let signatures =
      List.map2
        (fun g colours ->
           Array.init (Graph.num_vertices g) (fun v ->
               let neigh =
                 Graph.fold_neighbours g v (fun w acc -> colours.(w) :: acc) []
               in
               (colours.(v), List.sort compare neigh)))
        graphs colourings
    in
    let distinct =
      List.sort_uniq compare (List.concat_map Array.to_list signatures)
    in
    let ids = Hashtbl.create 64 in
    List.iteri (fun i s -> Hashtbl.replace ids s i) distinct;
    ( List.map (Array.map (fun s -> Hashtbl.find ids s)) signatures,
      List.length distinct )
  in
  let rec go colourings num rounds =
    let colourings', num' = round colourings in
    if num' = num then (colourings, num, rounds)
    else go colourings' num' (rounds + 1)
  in
  let colourings, num, rounds = go colourings 1 0 in
  List.map
    (fun colours -> { colours; num_colours = num; rounds })
    colourings

let run g =
  match run_many [ g ] with [ r ] -> r | _ -> assert false

let run_pair g1 g2 =
  match run_many [ g1; g2 ] with
  | [ r1; r2 ] -> (r1, r2)
  | _ -> assert false

let histogram r =
  let counts = Hashtbl.create 16 in
  Array.iter
    (fun c ->
       Hashtbl.replace counts c
         (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)))
    r.colours;
  List.sort compare (Hashtbl.fold (fun c n acc -> (c, n) :: acc) counts [])

let equivalent g1 g2 =
  let r1, r2 = run_pair g1 g2 in
  histogram r1 = histogram r2
