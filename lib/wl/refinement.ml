open Wlcq_graph
module Ordering = Wlcq_util.Ordering
module Obs = Wlcq_obs.Obs
module Budget = Wlcq_robust.Budget

type result = { colours : int array; num_colours : int; rounds : int }

let m_runs = Obs.counter "refinement.runs"
let m_rounds = Obs.counter "refinement.rounds"
let m_collisions = Obs.counter "refinement.hash_collisions"

(* Joint refinement over a list of graphs sharing one colour
   namespace.  Each round maps every vertex to the pair (old colour,
   sorted multiset of neighbour colours) and canonically renumbers.

   The signatures live in a CSR-style int arena (one segment
   [colour; sorted neighbour colours] per vertex, offsets fixed by the
   degrees), are renumbered through a hashtable keyed on a rolling
   hash of the segment, and every probe is verified against the stored
   segment so correctness never depends on hash luck.  Rounds are
   full recomputes — 1-WL signatures cost O(n + m) per round, so a
   worklist would buy little here (contrast {!Kwl}). *)

let hash_mix h x =
  let h = (h lxor x) * 0x9E3779B97F4A7C1 in
  let h = h lxor (h lsr 29) in
  (h * 0xBF58476D1CE4E5B) land max_int

let sort_int_range arr lo len =
  if len <= 48 then
    for i = lo + 1 to lo + len - 1 do
      let x = arr.(i) in
      let j = ref (i - 1) in
      while !j >= lo && arr.(!j) > x do
        arr.(!j + 1) <- arr.(!j);
        decr j
      done;
      arr.(!j + 1) <- x
    done
  else begin
    let tmp = Array.sub arr lo len in
    Array.sort
      (fun (a : int) b -> if a < b then -1 else if a > b then 1 else 0)
      tmp;
    Array.blit tmp 0 arr lo len
  end

(* [on_round num colourings] is called after every renumbering; it may
   raise to stop refinement early (the equivalence oracle's histogram
   check). *)
exception Histograms_diverged

let run_many_with ?(budget = Budget.unlimited) ~on_round graphs =
  let graphs = Array.of_list graphs in
  let num_graphs = Array.length graphs in
  let ns = Array.map Graph.num_vertices graphs in
  let total = Array.fold_left ( + ) 0 ns in
  if total = 0 then
    (* mirror the reference semantics on vertex-free inputs: one
       (vacuous) round, zero colours in use *)
    Array.to_list
      (Array.map
         (fun _ -> { colours = [||]; num_colours = 0; rounds = 1 })
         graphs)
  else begin
    let on = Obs.enabled () in
    if on then Obs.incr m_runs;
    let collisions = ref 0 in
    let colourings = Array.map (fun n -> Array.make n 0) ns in
    (* global vertex id = graph offset + vertex; CSR segment offsets *)
    let goff = Array.make (num_graphs + 1) 0 in
    for j = 0 to num_graphs - 1 do
      goff.(j + 1) <- goff.(j) + ns.(j)
    done;
    let off = Array.make (total + 1) 0 in
    for j = 0 to num_graphs - 1 do (* lint: allow R7 one-shot CSR
       offset setup, linear in total vertices; the round loop polls *)
      for v = 0 to ns.(j) - 1 do
        let gv = goff.(j) + v in
        off.(gv + 1) <- off.(gv) + 1 + Graph.degree graphs.(j) v
      done
    done;
    let arena = Array.make off.(total) 0 in
    let hashes = Array.make total 0 in
    let buckets : (int, (int * int * int) list ref) Hashtbl.t =
      Hashtbl.create 256
    in
    let seg_equal b1 b2 len =
      let rec go i =
        i = len
        (* lint: allow R2 both segments lie inside the arena *)
        || Array.unsafe_get arena (b1 + i) = Array.unsafe_get arena (b2 + i)
           && go (i + 1)
      in
      go 0
    in
    (* hoisted out of the per-vertex loops: the neighbour writer and
       the bucket probe would otherwise allocate a closure per vertex
       per round (R9) *)
    let cursor = ref 0 in
    let cur_colours = ref [||] in
    let write_neighbour w =
      arena.(!cursor) <- !cur_colours.(w);
      incr cursor
    in
    let next = ref 0 in
    let rec find_colour base len bucket = function
      | [] ->
        let c = !next in
        incr next;
        bucket := (base, len, c) :: !bucket;
        c
      | (base', len', c) :: rest ->
        if len = len' && seg_equal base base' len then c
        else begin
          incr collisions;
          find_colour base len bucket rest
        end
    in
    let round () =
      for j = 0 to num_graphs - 1 do
        let colours = colourings.(j) in
        cur_colours := colours;
        for v = 0 to ns.(j) - 1 do
          let gv = goff.(j) + v in
          let base = off.(gv) in
          let len = off.(gv + 1) - base in
          arena.(base) <- colours.(v);
          cursor := base + 1;
          Graph.iter_neighbours graphs.(j) v write_neighbour;
          sort_int_range arena (base + 1) (len - 1);
          let h = ref (hash_mix 0x27220A95 len) in
          for i = base to base + len - 1 do
            (* lint: allow R2 i ranges over [base, base+len) inside the arena *)
            h := hash_mix !h (Array.unsafe_get arena i)
          done;
          hashes.(gv) <- !h
        done
      done;
      Hashtbl.reset buckets;
      next := 0;
      for j = 0 to num_graphs - 1 do
        let colours = colourings.(j) in
        for v = 0 to ns.(j) - 1 do
          let gv = goff.(j) + v in
          let base = off.(gv) in
          let len = off.(gv + 1) - base in
          let h = hashes.(gv) in
          let bucket =
            match Hashtbl.find_opt buckets h with
            | Some b -> b
            | None ->
              let b = ref [] in
              Hashtbl.add buckets h b;
              b
          in
          colours.(v) <- find_colour base len bucket !bucket
        done
      done;
      !next
    in
    let last_round = ref 0 in
    (* flush through the early exit the equivalence oracle takes by
       raising [Histograms_diverged] out of [on_round] *)
    let num, rounds =
      Fun.protect
        ~finally:(fun () ->
          if on then begin
            Obs.add m_rounds !last_round;
            Obs.add m_collisions !collisions
          end)
        (fun () ->
           Obs.span "refinement.run" (fun () ->
               let rec loop num rounds =
                 (* one poll per round keeps a tripped deadline able to
                    stop refinement on large graphs; rounds are the
                    unbounded dimension (each is O(n + m)) *)
                 Budget.tick_check budget;
                 last_round := rounds;
                 let num' = Obs.span "refinement.round" round in
                 if num' = num then (num, rounds)
                 else begin
                   on_round num' colourings;
                   loop num' (rounds + 1)
                 end
               in
               loop 1 0))
    in
    Array.to_list
      (Array.map
         (fun colours -> { colours; num_colours = num; rounds })
         colourings)
  end

let run_many graphs = run_many_with ~on_round:(fun _ _ -> ()) graphs

let run g =
  match run_many [ g ] with [ r ] -> r | _ -> assert false

let run_pair g1 g2 =
  match run_many [ g1; g2 ] with
  | [ r1; r2 ] -> (r1, r2)
  | _ -> assert false

let histogram (r : result) =
  let counts = Hashtbl.create 16 in
  Array.iter
    (fun c ->
       Hashtbl.replace counts c
         (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)))
    r.colours;
  List.sort Ordering.int_pair
    (Hashtbl.fold (fun c n acc -> (c, n) :: acc) counts [])

(* Early exit: refinement only splits classes, so once the joint
   histograms of the two graphs diverge they stay diverged. *)
let equivalent ?budget g1 g2 =
  if Graph.num_vertices g1 <> Graph.num_vertices g2 then false
  else
    try
      let check num (colourings : int array array) =
        let cnt = Array.make (max 1 num) 0 in
        Array.iter (fun c -> cnt.(c) <- cnt.(c) + 1) colourings.(0);
        Array.iter (fun c -> cnt.(c) <- cnt.(c) - 1) colourings.(1);
        if not (Array.for_all (fun d -> d = 0) cnt) then
          raise Histograms_diverged
      in
      match run_many_with ?budget ~on_round:check [ g1; g2 ] with
      | [ r1; r2 ] -> List.equal (Ordering.equal_pair Int.equal Int.equal) (histogram r1) (histogram r2)
      | _ -> assert false
    with Histograms_diverged -> false
