(** Homomorphism-count profiles (Lovász vectors) restricted to
    bounded-treewidth patterns.

    By Definition 19, [G ≅_k G'] iff the two graphs have equal
    profiles over {e all} patterns of treewidth ≤ k; a profile over
    the patterns up to a fixed size is the finite fragment of that
    characterisation.  Profiles are the "features" through which
    Observation 23's readout factors, and they make hom-based
    separations tangible: {!first_difference} exhibits the smallest
    pattern on which two graphs disagree. *)

open Wlcq_graph

(** [patterns ~max_size ~tw_bound] lists one representative per
    isomorphism class of {e connected} graphs with [1 .. max_size]
    vertices and treewidth at most [tw_bound], in order of size.
    Intended for small [max_size] (≤ 6).  Results are memoised per
    [(max_size, tw_bound)]; the returned graphs are immutable and
    shared between calls. *)
val patterns : max_size:int -> tw_bound:int -> Graph.t list

(** [profile ~patterns g] is the vector of [|Hom(F, g)|] over the
    pattern list.
    @raise Wlcq_robust.Budget.Exhausted when [budget] trips. *)
val profile :
  ?budget:Wlcq_robust.Budget.t -> patterns:Graph.t list -> Graph.t ->
  Wlcq_util.Bigint.t list

(** [first_difference ~max_size ~tw_bound g1 g2] is the smallest
    pattern (in the {!patterns} order) with different hom counts into
    [g1] and [g2], together with the two counts; [None] when the
    bounded profiles agree.
    @raise Wlcq_robust.Budget.Exhausted when [budget] trips. *)
val first_difference :
  ?budget:Wlcq_robust.Budget.t -> max_size:int -> tw_bound:int ->
  Graph.t -> Graph.t ->
  (Graph.t * Wlcq_util.Bigint.t * Wlcq_util.Bigint.t) option
