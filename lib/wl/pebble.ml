open Wlcq_graph

(* Kuhn's augmenting-path algorithm for bipartite perfect matching;
   [allowed left right] gives edge admissibility, both sides of size
   [n]. *)
let perfect_matching n allowed =
  let match_of_right = Array.make n (-1) in
  let rec try_augment left visited =
    let rec go right =
      if right >= n then false
      else if allowed left right && not visited.(right) then begin
        visited.(right) <- true;
        if match_of_right.(right) < 0
           || try_augment match_of_right.(right) visited
        then begin
          match_of_right.(right) <- left;
          true
        end
        else go (right + 1)
      end
      else go (right + 1)
    in
    go 0
  in
  let ok = ref true in
  for left = 0 to n - 1 do
    if !ok && not (try_augment left (Array.make n false)) then ok := false
  done;
  !ok

let decode_tuple k n idx =
  let t = Array.make k 0 in
  let r = ref idx in
  for i = k - 1 downto 0 do
    t.(i) <- !r mod n;
    r := !r / n
  done;
  t

let encode_tuple n t =
  Array.fold_left (fun acc v -> (acc * n) + v) 0 t

(* atomic compatibility: identical equality and adjacency patterns *)
let atomically_compatible g1 g2 t1 t2 =
  let k = Array.length t1 in
  let ok = ref true in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      if (t1.(i) = t1.(j)) <> (t2.(i) = t2.(j)) then ok := false;
      if Graph.adjacent g1 t1.(i) t1.(j) <> Graph.adjacent g2 t2.(i) t2.(j)
      then ok := false
    done
  done;
  !ok

(* Greatest fixpoint of the Duplicator-safe positions, as a boolean
   matrix over (tuple of g1, tuple of g2) index pairs.  Requires
   |V(g1)| = |V(g2)|. *)
let safe_positions k g1 g2 =
  let n = Graph.num_vertices g1 in
  assert (Graph.num_vertices g2 = n);
  let count =
    let rec pow acc i = if i = 0 then acc else pow (acc * n) (i - 1) in
    pow 1 k
  in
  let place = Array.make k 1 in
  for i = k - 2 downto 0 do place.(i) <- place.(i + 1) * n done;
  let safe = Array.make_matrix count count false in
  for p = 0 to count - 1 do
    let t1 = decode_tuple k n p in
    for q = 0 to count - 1 do
      let t2 = decode_tuple k n q in
      safe.(p).(q) <- atomically_compatible g1 g2 t1 t2
    done
  done;
  (* deletion rounds: a position survives when there is ONE bijection
     that keeps the continuations safe for EVERY pebble — Duplicator
     announces the bijection before Spoiler chooses the pebble *)
  let changed = ref true in
  while !changed do
    changed := false;
    for p = 0 to count - 1 do
      let t1 = decode_tuple k n p in
      for q = 0 to count - 1 do
        if safe.(p).(q) then begin
          let t2 = decode_tuple k n q in
          let survives =
            (* lint: hot-alloc bisimulation game: the matching predicate captures the per-pair tuples (t1, t2), one closure per surviving pair test *)
            perfect_matching n (fun v w ->
                (* lint: hot-alloc bisimulation game, as above *)
                let rec all_pebbles i =
                  i >= k
                  || (safe.(p + ((v - t1.(i)) * place.(i)))
                        .(q + ((w - t2.(i)) * place.(i)))
                      && all_pebbles (i + 1))
                in
                all_pebbles 0)
          in
          if not survives then begin
            safe.(p).(q) <- false;
            changed := true
          end
        end
      done
    done
  done;
  safe

let duplicator_wins k g1 g2 t1 t2 =
  if k < 2 then invalid_arg "Pebble.duplicator_wins: requires k >= 2";
  if Array.length t1 <> k || Array.length t2 <> k then
    invalid_arg "Pebble.duplicator_wins: tuple arity mismatch";
  let n = Graph.num_vertices g1 in
  if Graph.num_vertices g2 <> n then false
  else begin
    let safe = safe_positions k g1 g2 in
    safe.(encode_tuple n t1).(encode_tuple n t2)
  end

let equivalent k g1 g2 =
  if k < 2 then invalid_arg "Pebble.equivalent: requires k >= 2";
  let n = Graph.num_vertices g1 in
  if Graph.num_vertices g2 <> n then false
  else if n = 0 then true
  else begin
    let safe = safe_positions k g1 g2 in
    let count = Array.length safe in
    (* equal colour multisets <=> perfect matching between the tuple
       sets under the safe relation (Hall) *)
    perfect_matching count (fun p q -> safe.(p).(q))
  end
