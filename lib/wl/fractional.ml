open Wlcq_graph

(* Count-based refinement: the signature of a vertex is its class plus
   the vector of neighbour counts per class.  Stops when the number of
   classes stabilises. *)
let refine_counts graphs =
  let colourings =
    List.map (fun g -> Array.make (Graph.num_vertices g) 0) graphs
  in
  let rec go colourings c =
    let signatures =
      List.map2
        (fun g colours ->
           Array.init (Graph.num_vertices g) (fun v ->
               let counts = Array.make c 0 in
               Graph.iter_neighbours g v (fun w ->
                   counts.(colours.(w)) <- counts.(colours.(w)) + 1);
               (colours.(v), Array.to_list counts)))
        graphs colourings
    in
    let distinct =
      List.sort_uniq
        (Wlcq_util.Ordering.pair Int.compare Wlcq_util.Ordering.int_list)
        (List.concat_map Array.to_list signatures)
    in
    let ids = Hashtbl.create 64 in
    List.iteri (fun i s -> Hashtbl.replace ids s i) distinct;
    let colourings' =
      List.map (Array.map (fun s -> Hashtbl.find ids s)) signatures
    in
    let c' = List.length distinct in
    if c' = c then (colourings, c) else go colourings' c'
  in
  go colourings 1

let coarsest_equitable g =
  match refine_counts [ g ] with
  | [ classes ], c -> (classes, c)
  | _ -> assert false

let coarsest_equitable_pair g1 g2 =
  match refine_counts [ g1; g2 ] with
  | [ c1; c2 ], c -> (c1, c2, c)
  | _ -> assert false

let degree_matrix g classes c =
  let n = Graph.num_vertices g in
  if Array.length classes <> n then
    invalid_arg "Fractional.degree_matrix: partition size mismatch";
  let matrix = Array.make_matrix c c (-1) in
  for v = 0 to n - 1 do
    let counts = Array.make c 0 in
    Graph.iter_neighbours g v (fun w -> (* lint: hot-alloc one counting closure per vertex of a single validation pass *)
        counts.(classes.(w)) <- counts.(classes.(w)) + 1);
    for j = 0 to c - 1 do
      let i = classes.(v) in
      if matrix.(i).(j) < 0 then matrix.(i).(j) <- counts.(j)
      else if matrix.(i).(j) <> counts.(j) then
        invalid_arg "Fractional.degree_matrix: partition is not equitable"
    done
  done;
  matrix

let class_sizes classes c =
  let sizes = Array.make c 0 in
  Array.iter (fun i -> sizes.(i) <- sizes.(i) + 1) classes;
  sizes

let isomorphic g1 g2 =
  Graph.num_vertices g1 = Graph.num_vertices g2
  && begin
    let c1, c2, c = coarsest_equitable_pair g1 g2 in
    class_sizes c1 c = class_sizes c2 c
    && begin
      (* classes inhabited in both graphs get the same degree rows;
         classes inhabited in only one graph already break the size
         comparison above *)
      let m1 = degree_matrix g1 c1 c and m2 = degree_matrix g2 c2 c in
      let ok = ref true in
      for i = 0 to c - 1 do
        for j = 0 to c - 1 do
          if m1.(i).(j) >= 0 && m2.(i).(j) >= 0 && m1.(i).(j) <> m2.(i).(j)
          then ok := false
        done
      done;
      !ok
    end
  end
