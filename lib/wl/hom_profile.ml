open Wlcq_graph
module Bigint = Wlcq_util.Bigint
module Obs = Wlcq_obs.Obs

let m_hits = Obs.counter "hom_profile.cache_hits"
let m_misses = Obs.counter "hom_profile.cache_misses"

(* Pattern enumeration is pure in (max_size, tw_bound) and is
   re-requested by every [first_difference] call (T15 runs one per
   witness pair), so memoise it; the graphs are immutable. *)
(* lint: domain-local memo is read and written by the calling domain only;
   nothing in this module crosses a Domain.spawn boundary *)
let patterns_memo : Graph.t list Wlcq_util.Ordering.Int_pair_tbl.t =
  Wlcq_util.Ordering.Int_pair_tbl.create 8

let patterns_uncached ~max_size ~tw_bound =
  let acc = ref [] in
  for n = 1 to max_size do
    let reps = ref [] in
    let pairs = ref [] in
    for u = 0 to n - 1 do
      (* lint: hot-alloc pattern enumerator: builds each candidate graph it yields *)
      for v = u + 1 to n - 1 do pairs := (u, v) :: !pairs done
    done;
    (* lint: hot-alloc flattened once per size, not per mask *)
    let pairs = Array.of_list !pairs in
    let m = Array.length pairs in
    for mask = 0 to (1 lsl m) - 1 do
      let edges = ref [] in
      Array.iteri
        (* lint: hot-alloc pattern enumerator: builds each candidate graph it yields *)
        (fun i e -> if (mask lsr i) land 1 = 1 then edges := e :: !edges)
        pairs;
      let g = Graph.create n !edges in
      if Traversal.is_connected g
         && Wlcq_treewidth.Exact.treewidth g <= tw_bound
         && not (List.exists (Iso.isomorphic g) !reps)
      then reps := g :: !reps
    done;
    (* lint: hot-alloc once per size class: appends the representatives found *)
    acc := !acc @ List.rev !reps
  done;
  !acc

let patterns ~max_size ~tw_bound =
  match
    Wlcq_util.Ordering.Int_pair_tbl.find_opt patterns_memo
      (max_size, tw_bound)
  with
  | Some ps ->
    Obs.incr m_hits;
    ps
  | None ->
    Obs.incr m_misses;
    let ps = patterns_uncached ~max_size ~tw_bound in
    Wlcq_util.Ordering.Int_pair_tbl.add patterns_memo (max_size, tw_bound) ps;
    ps

let profile ?budget ~patterns g =
  List.map (fun pattern -> Wlcq_hom.Td_count.count ?budget pattern g) patterns

let first_difference ?budget ~max_size ~tw_bound g1 g2 =
  let rec go = function
    | [] -> None
    | pattern :: rest ->
      let c1 = Wlcq_hom.Td_count.count ?budget pattern g1 in
      let c2 = Wlcq_hom.Td_count.count ?budget pattern g2 in
      if Bigint.equal c1 c2 then go rest else Some (pattern, c1, c2)
  in
  go (patterns ~max_size ~tw_bound)
