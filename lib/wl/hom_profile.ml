open Wlcq_graph
module Bigint = Wlcq_util.Bigint
module Obs = Wlcq_obs.Obs

let m_hits = Obs.counter "hom_profile.cache_hits"
let m_misses = Obs.counter "hom_profile.cache_misses"

(* Pattern enumeration is pure in (max_size, tw_bound) and is
   re-requested by every [first_difference] call (T15 runs one per
   witness pair), so memoise it in the shared tier; the parameters
   themselves are the content address. *)
let graph_words g =
  let n = Graph.num_vertices g in
  8 + (n * (4 + ((n + 61) / 62)))

let patterns_store =
  Wlcq_cache.Cache.store ~name:"hom_profile.patterns"
    ~words:(fun ps -> List.fold_left (fun acc g -> acc + graph_words g) 4 ps)
    ()

let patterns_uncached ~max_size ~tw_bound =
  let acc = ref [] in
  for n = 1 to max_size do
    let reps = ref [] in
    let pairs = ref [] in
    for u = 0 to n - 1 do
      (* lint: hot-alloc pattern enumerator: builds each candidate graph it yields *)
      for v = u + 1 to n - 1 do pairs := (u, v) :: !pairs done
    done;
    (* lint: hot-alloc flattened once per size, not per mask *)
    let pairs = Array.of_list !pairs in
    let m = Array.length pairs in
    for mask = 0 to (1 lsl m) - 1 do
      let edges = ref [] in
      Array.iteri
        (* lint: hot-alloc pattern enumerator: builds each candidate graph it yields *)
        (fun i e -> if (mask lsr i) land 1 = 1 then edges := e :: !edges)
        pairs;
      let g = Graph.create n !edges in
      if Traversal.is_connected g
         && Wlcq_treewidth.Exact.treewidth g <= tw_bound
         && not (List.exists (Iso.isomorphic g) !reps)
      then reps := g :: !reps
    done;
    (* lint: hot-alloc once per size class: appends the representatives found *)
    acc := !acc @ List.rev !reps
  done;
  !acc

let patterns ~max_size ~tw_bound =
  let key = string_of_int max_size ^ "," ^ string_of_int tw_bound in
  match Wlcq_cache.Cache.find patterns_store key with
  | Some ps ->
    Obs.incr m_hits;
    ps
  | None ->
    Obs.incr m_misses;
    let ps = patterns_uncached ~max_size ~tw_bound in
    Wlcq_cache.Cache.add patterns_store key ps;
    ps

let profile ?budget ~patterns g =
  List.map (fun pattern -> Wlcq_hom.Td_count.count ?budget pattern g) patterns

let first_difference ?budget ~max_size ~tw_bound g1 g2 =
  let rec go = function
    | [] -> None
    | pattern :: rest ->
      let c1 = Wlcq_hom.Td_count.count ?budget pattern g1 in
      let c2 = Wlcq_hom.Td_count.count ?budget pattern g2 in
      if Bigint.equal c1 c2 then go rest else Some (pattern, c1, c2)
  in
  go (patterns ~max_size ~tw_bound)
