(** The bijective pebble game — an independent oracle for
    [≅_k].

    By Hella's theorem (via Cai–Fürer–Immerman / Immerman–Lander),
    two k-tuples receive the same stable folklore-k-WL colour exactly
    when Duplicator wins the bijective k-pebble game from them: at
    each round Spoiler picks a pebble pair [i], Duplicator answers
    with a bijection [f : V(G) → V(H)], Spoiler places the pebbles on
    some [v / f(v)], and Duplicator survives as long as the pebbled
    maps stay partial isomorphisms.

    This module computes Duplicator's winning positions directly as a
    greatest fixpoint: start from all atomically compatible tuple
    pairs and repeatedly delete a pair when, for some pebble, no
    bijection keeps every continuation inside the surviving set (a
    bipartite perfect-matching test).  Graph equivalence is then a
    perfect matching between the tuple sets under the surviving
    relation — multiset equality of colours, by Hall's theorem.

    The algorithm shares nothing with {!Kwl}'s colour refinement, so
    agreement between the two (checked in the test suite) is a strong
    cross-validation of both.  Cost is Θ(n^{2k}) space; intended for
    the small instances of the experiments. *)

open Wlcq_graph

(** [equivalent k g1 g2] decides folklore-k-WL-equivalence through the
    game ([k >= 2]; use {!Refinement} for [k = 1]).
    @raise Invalid_argument when [k < 2]. *)
val equivalent : int -> Graph.t -> Graph.t -> bool

(** [duplicator_wins k g1 g2 t1 t2] tests whether Duplicator wins from
    the position pebbling the k-tuple [t1] in [g1] against [t2] in
    [g2]. *)
val duplicator_wins : int -> Graph.t -> Graph.t -> int array -> int array -> bool
