open Wlcq_graph
module Bigint = Wlcq_util.Bigint
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome
module Obs = Wlcq_obs.Obs

let equivalent k g1 g2 =
  if k < 1 then invalid_arg "Equivalence.equivalent: k must be positive"
  else if
    (* |Hom(K1, ·)| = n and |Hom(K2, ·)| = 2m are treewidth-1 counts,
       so graphs differing in either are distinguished at every k *)
    Graph.num_vertices g1 <> Graph.num_vertices g2
    || Graph.num_edges g1 <> Graph.num_edges g2
  then false
  else if k = 1 then Refinement.equivalent g1 g2
  else Kwl.equivalent k g1 g2

(* lint: allow R8 Invalid_argument is the k >= 1 arity validation
   reporting a caller bug, deliberately outside the Outcome envelope *)
let equivalent_budgeted ~budget k g1 g2 =
  if k < 1 then invalid_arg "Equivalence.equivalent_budgeted: k must be positive"
  else
  Obs.entry_point "equivalence.equivalent" @@ fun () ->
  if
    Graph.num_vertices g1 <> Graph.num_vertices g2
    || Graph.num_edges g1 <> Graph.num_edges g2
  then `Exact false
  else if k = 1 then (
    (* colour refinement polls the budget once per round, so a tripped
       deadline stops it mid-run; divergence found before the trip is
       permanent and still an exact answer *)
    match Refinement.equivalent ~budget g1 g2 with
    | r -> `Exact r
    | exception Budget.Exhausted reason -> `Exhausted reason)
  else Kwl.equivalent_budgeted ~budget k g1 g2

let iter_patterns max_size f =
  for n = 1 to max_size do
    let pairs = ref [] in
    for u = 0 to n - 1 do
      (* lint: hot-alloc pattern enumerator: builds each candidate graph it yields *)
      for v = u + 1 to n - 1 do pairs := (u, v) :: !pairs done
    done;
    (* lint: hot-alloc flattened once per size, not per mask *)
    let pairs = Array.of_list !pairs in
    let m = Array.length pairs in
    for mask = 0 to (1 lsl m) - 1 do
      let edges = ref [] in
      Array.iteri
        (* lint: hot-alloc pattern enumerator: builds each candidate graph it yields *)
        (fun i e -> if (mask lsr i) land 1 = 1 then edges := e :: !edges)
        pairs;
      f (Graph.create n !edges)
    done
  done

exception Distinguished of Graph.t

let hom_indistinguishable ~tw_bound ~max_pattern_size g1 g2 =
  try
    iter_patterns max_pattern_size (fun pattern ->
        if Wlcq_treewidth.Exact.treewidth pattern <= tw_bound then begin
          let c1 = Wlcq_hom.Td_count.count pattern g1 in
          let c2 = Wlcq_hom.Td_count.count pattern g2 in
          if not (Bigint.equal c1 c2) then raise (Distinguished pattern)
        end);
    None
  with Distinguished pattern -> Some pattern

let wl_dimension_of_pair g1 g2 ~max_k =
  let rec go k =
    if k > max_k then None
    else if not (equivalent k g1 g2) then Some k
    else go (k + 1)
  in
  go 1
