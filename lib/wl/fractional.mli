(** Fractional isomorphism — the paper's characterisation (I):
    [G ≅_1 G'] iff [G] and [G'] are fractionally isomorphic
    (Tinhofer).

    Two graphs are fractionally isomorphic iff they share a {e common
    equitable partition}: partitions of the two vertex sets into
    classes [P_1 … P_c] / [Q_1 … Q_c] with [|P_i| = |Q_i|] such that
    every vertex of [P_i] has exactly [d_{ij}] neighbours in [P_j],
    and likewise in [G'] with the same numbers.  This module computes
    the coarsest equitable partitions by count-based refinement — an
    implementation independent of {!Refinement}'s multiset signatures,
    so the two can cross-validate each other in the test suite. *)

open Wlcq_graph

(** [coarsest_equitable g] is the coarsest equitable partition of [g]
    as [(classes, c)]: class ids in [0 .. c-1]. *)
val coarsest_equitable : Graph.t -> int array * int

(** [coarsest_equitable_pair g1 g2] refines both graphs in a shared
    class namespace. *)
val coarsest_equitable_pair :
  Graph.t -> Graph.t -> int array * int array * int

(** [degree_matrix g classes c] is the [c × c] matrix whose [(i, j)]
    entry is the number of neighbours in class [j] of any vertex in
    class [i].
    @raise Invalid_argument when the partition is not equitable. *)
val degree_matrix : Graph.t -> int array -> int -> int array array

(** [isomorphic g1 g2] decides fractional isomorphism: equal class
    sizes and equal degree matrices under the common coarsest
    equitable partition. *)
val isomorphic : Graph.t -> Graph.t -> bool
