(** WL-equivalence oracles (Definition 19) and distinguishing-pattern
    search.

    [≅_k] is defined via homomorphism indistinguishability over graphs
    of treewidth at most [k].  The default oracle runs the matching WL
    algorithm (colour refinement for [k = 1], folklore k-WL for
    [k >= 2]); an independent brute-force oracle enumerates small
    pattern graphs and compares homomorphism counts directly, and is
    used to cross-validate the algebraic one in the test suite. *)

open Wlcq_graph
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome

(** [equivalent k g1 g2] decides [g1 ≅_k g2].
    @raise Invalid_argument when [k < 1]. *)
val equivalent : int -> Graph.t -> Graph.t -> bool

(** Budgeted oracle.  Inequivalence witnessed before the trip is
    permanent and still reported as [`Exact false]; only an
    inconclusive run degrades to [`Exhausted].  For [k = 1] colour
    refinement runs unbudgeted (it is near-linear) and the budget is
    checked only at the boundary; for [k >= 2] this is
    {!Kwl.equivalent_budgeted}.
    @raise Invalid_argument when [k < 1]. *)
val equivalent_budgeted :
  budget:Budget.t -> int -> Graph.t -> Graph.t ->
  (bool, Budget.reason) Outcome.t

(** [iter_patterns max_size f] applies [f] to every graph with between
    1 and [max_size] vertices (one representative per labelled graph;
    no isomorphism dedup). *)
val iter_patterns : int -> (Graph.t -> unit) -> unit

(** [hom_indistinguishable ~tw_bound ~max_pattern_size g1 g2] compares
    [|Hom(F, g1)|] and [|Hom(F, g2)|] for every pattern [F] with at
    most [max_pattern_size] vertices and treewidth at most [tw_bound];
    returns the first distinguishing pattern, or [None] when the graphs
    agree on all of them. *)
val hom_indistinguishable :
  tw_bound:int -> max_pattern_size:int -> Graph.t -> Graph.t ->
  Graph.t option

(** [wl_dimension_of_pair g1 g2 ~max_k] is the least [k <= max_k] with
    [not (g1 ≅_k g2)], or [None] if the graphs are equivalent up to
    [max_k]. *)
val wl_dimension_of_pair : Graph.t -> Graph.t -> max_k:int -> int option
