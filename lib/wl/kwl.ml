open Wlcq_graph
module Ordering = Wlcq_util.Ordering
module Obs = Wlcq_obs.Obs
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome
module Fault = Wlcq_robust.Fault
module Dispatch = Wlcq_dispatch.Dispatch

type result = { colours : int array; num_colours : int; rounds : int }

(* Engine metrics (see DESIGN.md, "Observability").  Registration is a
   pure function call into an Atomic-backed registry, so these
   top-level bindings carry no lint-visible mutable state. *)
let m_runs = Obs.counter "kwl.runs"
let m_rounds = Obs.counter "kwl.rounds"
let m_dirty = Obs.counter "kwl.dirty_tuples"
let m_collisions = Obs.counter "kwl.hash_collisions"
let m_par_rounds = Obs.counter "kwl.parallel_rounds"
let m_seq_rounds = Obs.counter "kwl.sequential_rounds"
let m_prefix_fallbacks = Obs.counter "robust.fallback.kwl_prefix"
let m_exhausted = Obs.counter "robust.fallback.kwl_exhausted"
let m_spawn_demotions = Obs.counter "robust.fallback.kwl_seq_compute"
let d_round_ns = Obs.distribution "kwl.round_ns"

(* Tuples are encoded in base n: the tuple (v_0, ..., v_{k-1}) has
   index sum_i v_i * n^(k-1-i).  [place] are the per-position place
   values, so substituting coordinate i by w is
   idx + (w - v_i) * place.(i). *)

(* [tuple_count k n] is n^k, with an overflow guard: the colour buffer
   is a flat array over the tuple space, so n^k must fit
   [Sys.max_array_length] (and the k.n^k decode table must fit too). *)
let tuple_count k n =
  let limit = Sys.max_array_length in
  let rec go acc i =
    if i = 0 then acc
    else if n > 0 && acc > limit / n then
      invalid_arg
        (Printf.sprintf
           "Kwl.tuple_count: tuple space n^k = %d^%d exceeds Sys.max_array_length" n k)
    else go (acc * n) (i - 1)
  in
  let c = go 1 k in
  if k > 0 && c > limit / (max k 1) then
    invalid_arg
      (Printf.sprintf
         "Kwl.tuple_count: decode table k * n^k = %d * %d^%d exceeds \
         Sys.max_array_length"
         k n k);
  c

let decode_tuple k n idx =
  let t = Array.make k 0 in
  let r = ref idx in
  for i = k - 1 downto 0 do
    t.(i) <- !r mod n;
    r := !r / n
  done;
  t

(* ------------------------------------------------------------------ *)
(* Reference implementation (the original list-based engine).          *)
(* Kept verbatim so the optimised engine below can be differentially   *)
(* checked against it; do not "optimise" this code.                    *)
(* ------------------------------------------------------------------ *)

let atomic_ref g k idx =
  let n = Graph.num_vertices g in
  let t = decode_tuple k n idx in
  let sig_ = ref [] in
  for i = k - 1 downto 0 do
    for j = k - 1 downto i + 1 do
      let eq = if t.(i) = t.(j) then 1 else 0 in
      let adj = if Graph.adjacent g t.(i) t.(j) then 1 else 0 in
      sig_ := (2 * eq) + adj :: !sig_
    done
  done;
  !sig_

(* Jointly canonicalise labels to 0..c-1 under an explicit order. *)
let canonicalise cmp labelled =
  let distinct =
    List.sort_uniq cmp (List.concat_map Array.to_list labelled)
  in
  let ids = Hashtbl.create 256 in
  List.iteri (fun i s -> Hashtbl.replace ids s i) distinct;
  (List.map (Array.map (Hashtbl.find ids)) labelled, List.length distinct)

let run_many_reference k graphs =
  if k < 2 then
    invalid_arg "Kwl.run_many_reference: requires k >= 2 (use Refinement for k = 1)";
  let sizes = List.map (fun g -> Graph.num_vertices g) graphs in
  let tuple_counts = List.map (fun n -> tuple_count k n) sizes in
  (* initial colouring by atomic type *)
  let init =
    List.map2
      (fun g count -> Array.init count (fun idx -> atomic_ref g k idx))
      graphs tuple_counts
  in
  let colourings, num = canonicalise Ordering.int_list init in
  let round colourings =
    let signatures =
      List.map2
        (fun (g, count) colours ->
           let n = Graph.num_vertices g in
           (* place value of coordinate i in the base-n encoding *)
           let place = Array.make k 1 in
           for i = k - 2 downto 0 do place.(i) <- place.(i + 1) * n done;
           Array.init count (fun idx ->
               let t = decode_tuple k n idx in
               let entries = ref [] in
               for w = 0 to n - 1 do
                 let entry =
                   (* lint: hot-alloc naive k-WL round: the per-tuple signature lists are the round's output (reference oracle) *)
                   Array.init k (fun i ->
                       (* index of t with coordinate i replaced by w *)
                       colours.(idx + ((w - t.(i)) * place.(i))))
                 in
                 (* lint: hot-alloc naive k-WL round, as above *)
                 entries := Array.to_list entry :: !entries
               done;
               (colours.(idx), List.sort Ordering.int_list !entries)))
        (List.combine graphs tuple_counts)
        colourings
    in
    canonicalise
      (Ordering.pair Int.compare (List.compare Ordering.int_list))
      signatures
  in
  let rec go colourings num rounds =
    let colourings', num' = round colourings in
    if num' = num then (colourings, num, rounds)
    else go colourings' num' (rounds + 1)
  in
  let colourings, num, rounds = go colourings num 0 in
  List.map (fun colours -> { colours; num_colours = num; rounds }) colourings

let run_reference k g =
  match run_many_reference k [ g ] with [ r ] -> r | _ -> assert false

let run_pair_reference k g1 g2 =
  match run_many_reference k [ g1; g2 ] with
  | [ r1; r2 ] -> (r1, r2)
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* The optimised engine.                                               *)
(*                                                                     *)
(* Layout: per graph a flat [int array] of tuple colours plus a        *)
(* precomputed decode table (tuples.(idx*k + i) = coordinate i).       *)
(* Colour ids live in one namespace shared by all graphs and are never *)
(* reused: a class that splits keeps its id for one part and fresh ids *)
(* are allocated for the others, so refinement is visible as "some     *)
(* tuple's colour changed to a brand-new id".                          *)
(*                                                                     *)
(* Each round recolours only the dirty tuples: those with a            *)
(* substitution neighbour (a tuple differing in at most one            *)
(* coordinate) whose colour changed last round.  This is sound because *)
(* fresh ids are globally fresh: a dirty tuple's new signature         *)
(* contains an id that existed in no previous signature, so it can     *)
(* never collide with the (unchanged) signature of a clean tuple, and  *)
(* a clean tuple's signature is literally unchanged.                   *)
(*                                                                     *)
(* A signature is [old colour; sorted entries] where entry w packs the *)
(* k colours (c(t[0/w]), ..., c(t[k-1/w])) into one int when they fit  *)
(* (bits-per-colour * k <= 62) and into k ints otherwise.  Signatures  *)
(* are renumbered through a hashtable keyed on a 64-bit rolling hash,  *)
(* with every probe compared against the stored packed signature, so   *)
(* correctness never depends on hash luck.                             *)
(*                                                                     *)
(* The per-round signature computation writes to disjoint slots of a   *)
(* shared arena and is parallelised over chunks of the dirty list with *)
(* Domain.spawn when the round is large enough to pay for the spawns.  *)
(* Renumbering stays sequential and deterministic.                     *)
(* ------------------------------------------------------------------ *)

type graph_state = {
  g : Graph.t;
  n : int;
  count : int;
  tuples : int array;  (* count * k decode table *)
  place : int array;  (* k place values *)
  colours : int array;  (* count tuple colours *)
  dirty : Bytes.t;  (* count dirty flags for the next round *)
}

let hash_mix h x =
  let h = (h lxor x) * 0x9E3779B97F4A7C1 in
  let h = h lxor (h lsr 29) in
  (h * 0xBF58476D1CE4E5B) land max_int

let hash_segment arena base len =
  let h = ref 0x27220A95 in
  for i = base to base + len - 1 do
    (* lint: allow R2 i ranges over [base, base+len) inside the arena *)
    h := hash_mix !h (Array.unsafe_get arena i)
  done;
  !h

let seg_equal arena b1 b2 len =
  let rec go i =
    i = len
    (* lint: allow R2 both segments lie inside the arena by construction *)
    || Array.unsafe_get arena (b1 + i) = Array.unsafe_get arena (b2 + i)
       && go (i + 1)
  in
  go 0

(* In-place ascending sort of arr.[lo, lo+len): insertion sort for the
   short arrays the engine produces, falling back to Array.sort via a
   copy for long ones. *)
let sort_int_range arr lo len =
  if len <= 48 then
    for i = lo + 1 to lo + len - 1 do
      let x = arr.(i) in
      let j = ref (i - 1) in
      while !j >= lo && arr.(!j) > x do
        arr.(!j + 1) <- arr.(!j);
        decr j
      done;
      arr.(!j + 1) <- x
    done
  else begin
    let tmp = Array.sub arr lo len in
    Array.sort (fun (a : int) b -> if a < b then -1 else if a > b then 1 else 0) tmp;
    Array.blit tmp 0 arr lo len
  end

(* Sort the [n] blocks of [k] ints starting at [lo] lexicographically,
   via a permutation of block indices (the unpacked-signature path). *)
let sort_blocks arr lo n k =
  let perm = Array.init n (fun i -> i) in
  let cmp a b =
    let ba = lo + (a * k) and bb = lo + (b * k) in
    let rec go i =
      if i = k then 0
      else
        let x = arr.(ba + i) and y = arr.(bb + i) in
        if x < y then -1 else if x > y then 1 else go (i + 1)
    in
    go 0
  in
  Array.sort cmp perm;
  let tmp = Array.sub arr lo (n * k) in
  Array.iteri
    (fun pos p -> Array.blit tmp (p * k) arr (lo + (pos * k)) k)
    perm

let make_state ?(budget = Budget.unlimited) k g =
  let n = Graph.num_vertices g in
  let count = tuple_count k n in
  let tuples = Array.make (max 1 (count * k)) 0 in
  for idx = 0 to count - 1 do
    (* materialising the n^k tuple table is already engine-scale work:
       poll so a tripped deadline stops the run before the first round *)
    Budget.tick_check budget;
    let r = ref idx in
    for i = k - 1 downto 0 do
      tuples.((idx * k) + i) <- !r mod n;
      r := !r / n
    done
  done;
  let place = Array.make k 1 in
  for i = k - 2 downto 0 do
    place.(i) <- place.(i + 1) * n
  done;
  {
    g;
    n;
    count;
    tuples;
    place;
    colours = Array.make (max 1 count) (-1);
    dirty = Bytes.make (max 1 count) '\000';
  }

(* Atomic type of tuple [idx]: the (equality, adjacency) pattern over
   ordered pairs i < j, packed into one int when k(k-1) <= 62 bits. *)
let atomic_packed st k idx =
  let tb = idx * k in
  let p = ref 0 in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let u = st.tuples.(tb + i) and v = st.tuples.(tb + j) in
      let eq = if u = v then 1 else 0 in
      let adj = if Graph.adjacent st.g u v then 1 else 0 in
      p := (!p lsl 2) lor ((2 * eq) + adj)
    done
  done;
  !p

exception Histograms_diverged

(* The engine proper.  [on_round] is called after the initial
   colouring and after every completed round with the number of
   colours in use; it may raise to stop refinement early (used by the
   equivalence oracle's histogram check). *)
(* Test-only: the minimum round weight (m * max_n * k) at which
   [compute_all] fans out to worker domains.  [0] forces the
   [Domain.spawn] path even on tiny instances (the per-domain chunk cap
   is bypassed too); [max_int] forces the sequential fallback.  The
   differential tests flip it to drive both code paths over identical
   inputs. *)
(* lint: domain-local written by the test harness before a run and read
   once per round by the driver domain; worker domains never touch it *)
let parallel_threshold = ref (1 lsl 15)

(* Budget protocol (mirrors Td_count.run_packed): the driver raises
   [Budget.Exhausted] only during the sequential initial colouring —
   before any round state exists.  Inside rounds, workers tick the
   shared atomic trip flag and wind down; the driver inspects the
   verdict after the parallel phase and aborts {e before} renumbering,
   so [st.colours] still holds the last {e completed} round's
   colouring — a sound stable-colour prefix (refinement only splits
   classes, so tuples the prefix separates stay separated by the full
   run). *)
let run_engine_inner ?domains ~budget ~on_round k states =
  (* hoisted once per run: the hot loops below branch on a local bool,
     not on the atomic flag *)
  let on = Obs.enabled () in
  if on then Obs.incr m_runs;
  (* signature-bucket probes that hashed alike but compared unequal;
     accumulated in a run-local cell and flushed once at the end *)
  let collisions = ref 0 in
  let total = Array.fold_left (fun acc st -> acc + st.count) 0 states in
  let max_n = Array.fold_left (fun acc st -> max acc st.n) 0 states in
  (* bits per colour id; ids are < total, the number of tuples *)
  let bits =
    let rec go b = if 1 lsl b >= max 2 total then b else go (b + 1) in
    go 1
  in
  let packed = bits * k <= 62 in
  let entry_words = if packed then 1 else k in
  let sigw = 1 + (max_n * entry_words) in
  let next_colour = ref 0 in
  (* hoisted miss continuation for the initial-colouring probe: an
     anonymous one allocates a closure per tuple (R9) *)
  let fresh_colour () =
    let c = !next_colour in
    incr next_colour;
    c
  in
  (* open-addressing probe table shared by the initial colouring and
     the per-round renumbering.  The previous representation — a
     Hashtbl of boxed (base, colour) bucket lists — allocated a list
     cell per insertion in the hottest loop of the engine; the probe
     arrays allocate nothing per tuple.  A slot holds the arena base of
     a signature group's first member, its hash and its colour; linear
     probing at load factor <= 1/2.  Groups get fresh colours in the
     same (slot-index) order as before, so colour numberings stay
     byte-identical to the bucketed implementation. *)
  let probe_cap =
    let rec go c = if c >= 2 * max 1 total then c else go (c * 2) in
    go 64
  in
  let probe_mask = probe_cap - 1 in
  let probe_base = Array.make probe_cap (-1) in
  let probe_hash = Array.make probe_cap 0 in
  let probe_colour = Array.make probe_cap 0 in
  (* find-or-insert for the width-[width] segment at [base] of [arena'];
     on a miss [fresh ()] names the new group's colour.  [collisions]
     keeps its historical meaning: probes that hashed alike but
     compared unequal. *)
  let probe_find arena' width h base fresh =
    let slot = ref (h land probe_mask) in
    let res = ref (-1) in
    while !res < 0 do
      let b = probe_base.(!slot) in
      if b < 0 then begin
        probe_base.(!slot) <- base;
        probe_hash.(!slot) <- h;
        let c = fresh () in
        probe_colour.(!slot) <- c;
        res := c
      end
      else if probe_hash.(!slot) = h then begin
        if seg_equal arena' b base width then res := probe_colour.(!slot)
        else begin
          incr collisions;
          slot := (!slot + 1) land probe_mask
        end
      end
      else slot := (!slot + 1) land probe_mask
    done;
    !res
  in
  (* ---------------- initial colouring by atomic type ---------------- *)
  let atomic_fits = k * (k - 1) <= 62 in
  (* arena of atomic signatures, one slot of width aw per tuple *)
  let aw = if atomic_fits then 1 else k * (k - 1) / 2 in
  let init_arena = Array.make (max 1 (total * aw)) 0 in
  let slot0 = ref 0 in
  Array.iter
    (fun st ->
       for idx = 0 to st.count - 1 do
         Budget.tick_check budget;
         let base = !slot0 * aw in
         if atomic_fits then init_arena.(base) <- atomic_packed st k idx
         else begin
           let tb = idx * k in
           let o = ref base in
           for i = 0 to k - 1 do
             for j = i + 1 to k - 1 do
               let u = st.tuples.(tb + i) and v = st.tuples.(tb + j) in
               let eq = if u = v then 1 else 0 in
               let adj = if Graph.adjacent st.g u v then 1 else 0 in
               init_arena.(!o) <- (2 * eq) + adj;
               incr o
             done
           done
         end;
         let h = hash_segment init_arena base aw in
         let colour = probe_find init_arena aw h base fresh_colour in
         st.colours.(idx) <- colour;
         incr slot0
       done)
    states;
  on_round !next_colour;
  (* ------------------------- refinement rounds ---------------------- *)
  (* per-round job list: graph index + tuple index, slot = position *)
  let jobs_g = Array.make (max 1 total) 0 in
  let jobs_t = Array.make (max 1 total) 0 in
  let hashes = Array.make (max 1 total) 0 in
  let arena = Array.make (max 1 (total * sigw)) 0 in
  let changed_g = Array.make (max 1 total) 0 in
  let changed_t = Array.make (max 1 total) 0 in
  (* class bookkeeping, sized by the id ceiling [total] *)
  let class_size = Array.make (max 1 total) 0 in
  Array.iter
    (fun st ->
       for idx = 0 to st.count - 1 do
         class_size.(st.colours.(idx)) <- class_size.(st.colours.(idx)) + 1
       done)
    states;
  let dirty_in_class = Array.make (max 1 total) 0 in
  let claimed = Bytes.make (max 1 total) '\000' in
  (* signature computation for jobs in [lo, hi) — the parallel part;
     writes only to disjoint arena / hashes slots.  A tripped budget
     abandons the rest of the chunk (the driver discards the whole
     round, so partially filled slots are never read). *)
  let compute_range lo hi =
    let entry = Array.make (max 1 (max_n * entry_words)) 0 in
    try
      for s = lo to hi - 1 do
        Budget.tick budget;
        if not (Budget.live budget) then raise_notrace Stdlib.Exit;
        let st = states.(jobs_g.(s)) in
      let idx = jobs_t.(s) in
      let n = st.n in
      let colours = st.colours and tuples = st.tuples and place = st.place in
      let tb = idx * k in
      if packed then begin
        for w = 0 to n - 1 do
          let p = ref 0 in
          for i = 0 to k - 1 do
            (* lint: allow R2 the decode table has k entries per tuple *)
            let ti = Array.unsafe_get tuples (tb + i) in
            (* lint: allow R2 i < k = |place| *)
            let pl = Array.unsafe_get place i in
            (* lint: allow R2 substituting coordinate i by w stays inside
               this graph's segment of the colour buffer *)
            let c = Array.unsafe_get colours (idx + ((w - ti) * pl)) in
            p := (!p lsl bits) lor c
          done;
          (* lint: allow R2 w < n <= |entry| by construction *)
          Array.unsafe_set entry w !p
        done;
        (* pad so joint runs over graphs of different sizes compare
           fixed-width signatures; -1 sorts before any packed entry *)
        for w = n to max_n - 1 do entry.(w) <- -1 done;
        sort_int_range entry 0 max_n
      end
      else begin
        for w = 0 to n - 1 do
          for i = 0 to k - 1 do
            entry.((w * k) + i) <-
              colours.(idx + ((w - tuples.(tb + i)) * place.(i)))
          done
        done;
        for j = n * k to (max_n * k) - 1 do entry.(j) <- -1 done;
        sort_blocks entry 0 max_n k
      end;
      let base = s * sigw in
      arena.(base) <- colours.(idx);
      Array.blit entry 0 arena (base + 1) (max_n * entry_words);
      hashes.(s) <- hash_segment arena base sigw
      done
    with Stdlib.Exit -> ()
  in
  let requested_domains =
    match domains with
    | Some d -> max 1 d
    | None -> Domain.recommended_domain_count ()
  in
  let compute_all m =
    (* only fan out when the round is big enough to amortise spawns *)
    let nd =
      Dispatch.wl_domains ~requested:requested_domains ~jobs:m
        ~weight:(m * max_n * k) ~threshold:!parallel_threshold
    in
    if on then Obs.incr (if nd <= 1 then m_seq_rounds else m_par_rounds);
    if nd <= 1 then compute_range 0 m
    else begin
      let chunk = (m + nd - 1) / nd in
      (* spawn-site fault hook: a chunk whose spawn "fails" is demoted
         to the driver, which computes it itself after its own chunk —
         the arena slots written are the same either way, so results
         stay byte-identical *)
      let rec spawn_from d workers demoted =
        if d >= nd - 1 then (List.rev workers, List.rev demoted)
        else begin
          let lo = (d + 1) * chunk in
          let hi = min m (lo + chunk) in
          if Fault.should_fail Fault.Domain_spawn then
            spawn_from (d + 1) workers ((lo, hi) :: demoted)
          else
            let w = Domain.spawn (fun () -> if lo < hi then compute_range lo hi) in
            spawn_from (d + 1) (w :: workers) demoted
        end
      in
      let workers, demoted = spawn_from 0 [] [] in
      compute_range 0 (min chunk m);
      (match demoted with
       | [] -> ()
       | _ :: _ ->
         Obs.incr m_spawn_demotions;
         Obs.journal ~severity:Obs.Warn
           ~attrs:[ ("demoted_chunks", string_of_int (List.length demoted)) ]
           "kwl.spawn_demotion";
         List.iter (fun (lo, hi) -> if lo < hi then compute_range lo hi) demoted);
      List.iter Domain.join workers
    end
  in
  let rounds = ref 0 in
  (* round 1 recolours everything *)
  let num_jobs = ref 0 in
  Array.iteri
    (fun j st ->
       for idx = 0 to st.count - 1 do
         jobs_g.(!num_jobs) <- j;
         jobs_t.(!num_jobs) <- idx;
         incr num_jobs
       done)
    states;
  let continue = ref (total > 0) in
  let aborted = ref None in
  let do_round () =
    let m = !num_jobs in
    if on then Obs.add m_dirty m;
    compute_all m;
    match Budget.tripped budget with
    | Some r ->
      (* abort before renumbering: the colour buffers still hold the
         last completed round's colouring — a sound prefix *)
      aborted := Some r;
      continue := false
    | None ->
    (* which classes are fully dirty (may keep their id for one part) *)
    for s = 0 to m - 1 do
      let old = arena.(s * sigw) in
      dirty_in_class.(old) <- dirty_in_class.(old) + 1
    done;
    (* sequential, deterministic renumbering *)
    Array.fill probe_base 0 probe_cap (-1);
    let num_changed = ref 0 in
    for s = 0 to m - 1 do
      let st = states.(jobs_g.(s)) in
      let idx = jobs_t.(s) in
      let base = s * sigw in
      let old = arena.(base) in
      let h = hashes.(s) in
      let colour =
        (* a new signature group keeps the old id iff the whole class
           was recoloured this round and no earlier group claimed the
           id (clean classmates own it otherwise) *)
        probe_find arena sigw h base (fun () -> (* lint: hot-alloc renumbering miss continuation: runs once per fresh colour, captures the per-group old/claimed state so it cannot be hoisted *)
            if
              dirty_in_class.(old) = class_size.(old)
              && Bytes.get claimed old = '\000'
            then begin
              Bytes.set claimed old '\001';
              old
            end
            else begin
              let c = !next_colour in
              incr next_colour;
              c
            end)
      in
      if colour <> old then begin
        st.colours.(idx) <- colour;
        changed_g.(!num_changed) <- jobs_g.(s);
        changed_t.(!num_changed) <- idx;
        incr num_changed
      end
    done;
    (* reset per-round class bookkeeping (only the touched entries) *)
    for s = 0 to m - 1 do
      let old = arena.(s * sigw) in
      dirty_in_class.(old) <- 0;
      Bytes.set claimed old '\000'
    done;
    if !num_changed = 0 then continue := false
    else begin
      incr rounds;
      (* update class sizes: the old colour of a moved tuple is still
         in the arena, its new colour is in the colour buffer *)
      for s = 0 to m - 1 do
        let st = states.(jobs_g.(s)) in
        let idx = jobs_t.(s) in
        let old = arena.(s * sigw) in
        let nc = st.colours.(idx) in
        if nc <> old then begin
          class_size.(old) <- class_size.(old) - 1;
          class_size.(nc) <- class_size.(nc) + 1
        end
      done;
      on_round !next_colour;
      (* mark the substitution neighbourhoods of changed tuples dirty *)
      for c = 0 to !num_changed - 1 do
        let st = states.(changed_g.(c)) in
        let idx = changed_t.(c) in
        let tb = idx * k in
        for i = 0 to k - 1 do
          let base = idx - (st.tuples.(tb + i) * st.place.(i)) in
          for w = 0 to st.n - 1 do
            Bytes.set st.dirty (base + (w * st.place.(i))) '\001'
          done
        done
      done;
      (* collect the next round's jobs in deterministic order *)
      num_jobs := 0;
      Array.iteri
        (fun j st ->
           for idx = 0 to st.count - 1 do
             if Bytes.get st.dirty idx = '\001' then begin
               Bytes.set st.dirty idx '\000';
               jobs_g.(!num_jobs) <- j;
               jobs_t.(!num_jobs) <- idx;
               incr num_jobs
             end
           done)
        states
    end
  in
  (* flush even when the equivalence oracle aborts the run by raising
     [Histograms_diverged] out of [on_round] *)
  Fun.protect
    ~finally:(fun () ->
      if on then begin
        Obs.add m_rounds !rounds;
        Obs.add m_collisions !collisions
      end)
    (fun () ->
       while !continue do
         if on then begin
           let t0 = Obs.now_ns () in
           Obs.span "kwl.round" do_round;
           Obs.observe d_round_ns
             (Int64.to_int (Int64.sub (Obs.now_ns ()) t0))
         end
         else Obs.span "kwl.round" do_round
       done);
  (!next_colour, !rounds, !aborted)

(* All entry points funnel through here, so the span covers [run],
   [run_many] and [equivalent] alike; [Histograms_diverged] unwinds
   through the span cleanly ([Fun.protect] closes it). *)
let run_engine ?domains ?(budget = Budget.unlimited) ~on_round k states =
  Obs.span "kwl.run"
    ~attrs:[ ("k", string_of_int k) ]
    (fun () -> run_engine_inner ?domains ~budget ~on_round k states)

let results_of_states states num rounds =
  Array.to_list
    (Array.map
       (fun st ->
          let colours =
            if st.count = Array.length st.colours then st.colours
            else Array.sub st.colours 0 st.count
          in
          { colours; num_colours = num; rounds })
       states)

let run_many ?domains k graphs =
  if k < 2 then
    invalid_arg "Kwl.run_many: requires k >= 2 (use Refinement for k = 1)";
  Obs.entry_point "kwl.run_many" @@ fun () ->
  let states = Array.of_list (List.map (make_state k) graphs) in
  let num, rounds, _ = run_engine ?domains ~on_round:(fun _ -> ()) k states in
  results_of_states states num rounds

let run ?domains k g =
  match run_many ?domains k [ g ] with [ r ] -> r | _ -> assert false

let run_pair ?domains k g1 g2 =
  match run_many ?domains k [ g1; g2 ] with
  | [ r1; r2 ] -> (r1, r2)
  | _ -> assert false

(* lint: allow R8 Invalid_argument is the k >= 2 arity validation
   reporting a caller bug, deliberately outside the Outcome envelope *)
let run_many_budgeted ?domains ~budget k graphs =
  if k < 2 then
    invalid_arg "Kwl.run_many_budgeted: requires k >= 2 (use Refinement for k = 1)";
  Obs.entry_point "kwl.run_many" @@ fun () ->
  match
    let states = Array.of_list (List.map (make_state ~budget k) graphs) in
    (states, run_engine ?domains ~budget ~on_round:(fun _ -> ()) k states)
  with
  | exception Budget.Exhausted r ->
    (* tripped during state construction or the initial colouring: no
       complete prefix exists *)
    Obs.incr m_exhausted;
    Obs.journal ~severity:Obs.Warn
      ~attrs:[ ("reason", Budget.reason_to_string r) ]
      "kwl.exhausted";
    `Exhausted r
  | states, (num, rounds, None) -> `Exact (results_of_states states num rounds)
  | states, (num, rounds, Some cause) ->
    Obs.incr m_prefix_fallbacks;
    Obs.journal ~severity:Obs.Warn
      ~attrs:
        [ ("cause", Budget.reason_to_string cause);
          ("rounds", string_of_int rounds) ]
      "kwl.prefix_fallback";
    Outcome.degraded ~cause
      ~fallback:
        (Printf.sprintf "stable colour prefix after %d completed rounds" rounds)
      (results_of_states states num rounds)

(* lint: allow R8 Invalid_argument is the k >= 2 arity validation
   reporting a caller bug, deliberately outside the Outcome envelope *)
let run_budgeted ?domains ~budget k g =
  match run_many_budgeted ?domains ~budget k [ g ] with
  | `Exact [ r ] -> `Exact r
  | `Degraded ([ r ], reason) -> `Degraded (r, reason)
  | `Exhausted r -> `Exhausted r
  | `Exact _ | `Degraded _ -> assert false

let histogram (r : result) =
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun c ->
       Hashtbl.replace counts c
         (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)))
    r.colours;
  List.sort Ordering.int_pair
    (Hashtbl.fold (fun c n acc -> (c, n) :: acc) counts [])

(* Early-exit equivalence: refinement only splits classes, so once the
   two graphs' joint colour histograms diverge they stay diverged; the
   oracle stops at the first diverging round.  A divergence observed
   under a budget is therefore still a definitive [`Exact false] — only
   the "no divergence seen yet" verdict degrades to [`Exhausted]. *)
let equivalent_core ?domains ~budget k g1 g2 =
  if Graph.num_vertices g1 <> Graph.num_vertices g2 then `Exact false
  else begin
    let histograms_equal states num =
      let cnt = Array.make (max 1 num) 0 in
      for idx = 0 to states.(0).count - 1 do
        let c = states.(0).colours.(idx) in
        cnt.(c) <- cnt.(c) + 1
      done;
      for idx = 0 to states.(1).count - 1 do
        let c = states.(1).colours.(idx) in
        cnt.(c) <- cnt.(c) - 1
      done;
      Array.for_all (fun d -> d = 0) cnt
    in
    match
      let states = [| make_state ~budget k g1; make_state ~budget k g2 |] in
      run_engine ?domains ~budget
        ~on_round:(fun num ->
          if not (histograms_equal states num) then raise Histograms_diverged)
        k states
    with
    | exception Histograms_diverged -> `Exact false
    | exception Budget.Exhausted r ->
      Obs.incr m_exhausted;
      Obs.journal ~severity:Obs.Warn
        ~attrs:[ ("reason", Budget.reason_to_string r) ]
        "kwl.exhausted";
      `Exhausted r
    | _, _, Some r ->
      (* no divergence seen, but the run did not reach the stable
         colouring: equivalence is undecided *)
      Obs.incr m_exhausted;
      Obs.journal ~severity:Obs.Warn
        ~attrs:[ ("reason", Budget.reason_to_string r) ]
        "kwl.exhausted";
      `Exhausted r
    | _, _, None -> `Exact true
  end

let equivalent ?domains k g1 g2 =
  if k < 2 then
    invalid_arg "Kwl.equivalent: requires k >= 2 (use Refinement for k = 1)";
  match equivalent_core ?domains ~budget:Budget.unlimited k g1 g2 with
  | `Exact b -> b
  | `Exhausted _ -> assert false

(* lint: allow R8 Invalid_argument is the k >= 1 arity validation
   reporting a caller bug, deliberately outside the Outcome envelope *)
let equivalent_budgeted ?domains ~budget k g1 g2 =
  if k < 2 then
    invalid_arg
      "Kwl.equivalent_budgeted: requires k >= 2 (use Refinement for k = 1)";
  Obs.entry_point "kwl.equivalent" @@ fun () ->
  equivalent_core ?domains ~budget k g1 g2

let equivalent_reference k g1 g2 =
  let r1, r2 = run_pair_reference k g1 g2 in
  List.equal (Ordering.equal_pair Int.equal Int.equal) (histogram r1) (histogram r2)

(* ------------------------------------------------------------------ *)
(* Run-independent colourings and the content-addressed cache          *)
(* ------------------------------------------------------------------ *)

let renumber (r : result) =
  let map = Hashtbl.create 64 in
  let next = ref 0 in
  let colours =
    Array.map
      (fun c ->
         match Hashtbl.find_opt map c with
         | Some i -> i
         | None ->
           let i = !next in
           incr next;
           Hashtbl.replace map c i;
           i)
      r.colours
  in
  { colours; num_colours = !next; rounds = r.rounds }

let m_cache_hits = Obs.counter "kwl.cache_hits"
let m_cache_misses = Obs.counter "kwl.cache_misses"

let colours_store =
  Wlcq_cache.Cache.store ~name:"kwl.stable"
    ~words:(fun (r : result) -> 8 + Array.length r.colours)
    ()

(* Reindex a stable colouring through a vertex permutation: tuple
   [t] of the output takes the colour of tuple [map p t] of the
   input.  With [p] the caller->canonical permutation this translates
   a cached canonical-graph colouring back to caller tuple indices,
   and with [p] its inverse it does the reverse. *)
let translate_result k n (r : result) p =
  let count = Array.length r.colours in
  let colours = Array.make count 0 in
  let t = Array.make (max 1 k) 0 in
  for idx = 0 to count - 1 do
    let x = ref idx in
    for i = k - 1 downto 0 do
      t.(i) <- !x mod n;
      x := !x / n
    done;
    let cidx = ref 0 in
    for i = 0 to k - 1 do
      cidx := (!cidx * n) + p.(t.(i))
    done;
    colours.(idx) <- r.colours.(!cidx)
  done;
  { r with colours }

let run_cached ?domains k g =
  if not (Wlcq_cache.Cache.enabled ()) then renumber (run ?domains k g)
  else begin
    let addr, perm = Wlcq_cache.Cache.address g in
    let key = string_of_int k ^ "|" ^ addr in
    let n = Graph.num_vertices g in
    match Wlcq_cache.Cache.find colours_store key with
    | Some rc ->
      Obs.incr m_cache_hits;
      translate_result k n rc perm
    | None ->
      Obs.incr m_cache_misses;
      let r = run ?domains k g in
      (* store the canonical graph's renumbered colouring: colour ids
         become a function of the isomorphism class alone, independent
         of run order and of the caller's vertex labelling, so cache
         equality is well-defined across runs *)
      let rc = renumber (translate_result k n r (Wlcq_util.Perm.inverse perm)) in
      Wlcq_cache.Cache.add colours_store key rc;
      translate_result k n rc perm
  end
