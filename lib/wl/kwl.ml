open Wlcq_graph

type result = { colours : int array; num_colours : int; rounds : int }

(* Tuples are encoded in base n: the tuple (v_0, ..., v_{k-1}) has
   index sum_i v_i * n^(k-1-i).  [weights] are the per-position place
   values, so substituting coordinate i by w is
   idx + (w - v_i) * weights.(i). *)

let decode_tuple k n idx =
  let t = Array.make k 0 in
  let r = ref idx in
  for i = k - 1 downto 0 do
    t.(i) <- !r mod n;
    r := !r / n
  done;
  t

let atomic g k idx =
  let n = Graph.num_vertices g in
  let t = decode_tuple k n idx in
  (* equality pattern and adjacency pattern over ordered pairs i < j *)
  let sig_ = ref [] in
  for i = k - 1 downto 0 do
    for j = k - 1 downto i + 1 do
      let eq = if t.(i) = t.(j) then 1 else 0 in
      let adj = if Graph.adjacent g t.(i) t.(j) then 1 else 0 in
      sig_ := (2 * eq) + adj :: !sig_
    done
  done;
  !sig_

(* Jointly canonicalise arbitrary comparable labels to 0..c-1. *)
let canonicalise labelled =
  let distinct =
    List.sort_uniq compare (List.concat_map Array.to_list labelled)
  in
  let ids = Hashtbl.create 256 in
  List.iteri (fun i s -> Hashtbl.replace ids s i) distinct;
  (List.map (Array.map (Hashtbl.find ids)) labelled, List.length distinct)

let run_many k graphs =
  if k < 2 then invalid_arg "Kwl: requires k >= 2 (use Refinement for k = 1)";
  let sizes = List.map (fun g -> Graph.num_vertices g) graphs in
  let tuple_counts =
    List.map
      (fun n ->
         let rec pow acc i = if i = 0 then acc else pow (acc * n) (i - 1) in
         pow 1 k)
      sizes
  in
  (* initial colouring by atomic type *)
  let init =
    List.map2
      (fun g count -> Array.init count (fun idx -> atomic g k idx))
      graphs tuple_counts
  in
  let colourings, num = canonicalise init in
  let round colourings =
    let signatures =
      List.map2
        (fun (g, count) colours ->
           let n = Graph.num_vertices g in
           (* place value of coordinate i in the base-n encoding *)
           let place = Array.make k 1 in
           for i = k - 2 downto 0 do place.(i) <- place.(i + 1) * n done;
           Array.init count (fun idx ->
               let t = decode_tuple k n idx in
               let entries = ref [] in
               for w = 0 to n - 1 do
                 let entry =
                   Array.init k (fun i ->
                       (* index of t with coordinate i replaced by w *)
                       colours.(idx + ((w - t.(i)) * place.(i))))
                 in
                 entries := Array.to_list entry :: !entries
               done;
               (colours.(idx), List.sort compare !entries)))
        (List.combine graphs tuple_counts)
        colourings
    in
    canonicalise signatures
  in
  let rec go colourings num rounds =
    let colourings', num' = round colourings in
    if num' = num then (colourings, num, rounds)
    else go colourings' num' (rounds + 1)
  in
  let colourings, num, rounds = go colourings num 0 in
  List.map (fun colours -> { colours; num_colours = num; rounds }) colourings

let run k g =
  match run_many k [ g ] with [ r ] -> r | _ -> assert false

let run_pair k g1 g2 =
  match run_many k [ g1; g2 ] with
  | [ r1; r2 ] -> (r1, r2)
  | _ -> assert false

let histogram r =
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun c ->
       Hashtbl.replace counts c
         (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)))
    r.colours;
  List.sort compare (Hashtbl.fold (fun c n acc -> (c, n) :: acc) counts [])

let equivalent k g1 g2 =
  let r1, r2 = run_pair k g1 g2 in
  histogram r1 = histogram r2
