(** One-dimensional Weisfeiler-Leman: colour refinement.

    Two graphs are 1-WL-equivalent in the sense of Definition 19
    (equal homomorphism counts from all trees) exactly when colour
    refinement run on both graphs jointly produces equal stable colour
    histograms (Dvořák).

    The implementation works on flat [int array] colour buffers with a
    CSR signature arena and hashed (collision-checked) renumbering;
    {!equivalent} exits early as soon as the joint histograms of the
    two graphs diverge, which is permanent under refinement. *)

open Wlcq_graph

type result = {
  colours : int array;  (** stable colour of each vertex *)
  num_colours : int;  (** number of distinct colours (shared namespace) *)
  rounds : int;  (** refinement rounds until stabilisation *)
}

(** [run g] refines [g] from the uniform initial colouring. *)
val run : Graph.t -> result

(** [run_pair g1 g2] refines both graphs in a shared colour namespace
    (colours are comparable across the two results). *)
val run_pair : Graph.t -> Graph.t -> result * result

(** [histogram r] is the multiset of stable colours as a sorted
    [(colour, multiplicity)] list. *)
val histogram : result -> (int * int) list

(** [equivalent ?budget g1 g2] tests 1-WL-equivalence (equal stable
    histograms under joint refinement).  [budget] is polled once per
    refinement round; when it trips, [Wlcq_robust.Budget.Exhausted]
    escapes (the [*_budgeted] wrappers in {!Equivalence} catch it). *)
val equivalent : ?budget:Wlcq_robust.Budget.t -> Graph.t -> Graph.t -> bool
