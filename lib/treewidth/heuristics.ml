open Wlcq_graph
module Bitset = Wlcq_util.Bitset

(* Greedy elimination with a scoring function over the current (filled)
   adjacency. *)
let greedy_order score g =
  let n = Graph.num_vertices g in
  let adj = Array.init n (Graph.neighbours g) in
  let alive = Array.make n true in
  let order = ref [] in
  (* lint: allow R7 polynomial O(n^2) greedy heuristic on the pattern
     graph: one vertex eliminated per iteration *)
  for _ = 1 to n do
    let best = ref (-1) in
    let best_score = ref max_int in
    for v = 0 to n - 1 do
      if alive.(v) then begin
        let s = score adj alive v in
        if s < !best_score then begin
          best := v;
          best_score := s
        end
      end
    done;
    let v = !best in
    let neigh =
      Bitset.fold (fun w acc -> if alive.(w) then w :: acc else acc) adj.(v) []
    in
    List.iter
      (fun a ->
         List.iter
           (fun b ->
              if a <> b then begin
                Bitset.set adj.(a) b;
                Bitset.set adj.(b) a
              end)
           neigh)
      neigh;
    alive.(v) <- false;
    order := v :: !order
  done;
  List.rev !order

let live_degree adj alive v =
  Bitset.fold (fun w acc -> if alive.(w) then acc + 1 else acc) adj.(v) 0

let min_degree_order g = greedy_order live_degree g

let fill_count adj alive v =
  let neigh =
    Bitset.fold (fun w acc -> if alive.(w) then w :: acc else acc) adj.(v) []
  in
  let missing = ref 0 in
  (* lint: allow R7 quadratic pair walk over one live neighbourhood *)
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
      List.iter (fun b -> if not (Bitset.mem adj.(a) b) then incr missing) rest;
      pairs rest
  in
  pairs neigh;
  !missing

let min_fill_order g = greedy_order fill_count g

let upper_bound g =
  if Graph.num_vertices g = 0 then -1
  else
    min
      (Elimination.width_of_order g (min_degree_order g))
      (Elimination.width_of_order g (min_fill_order g))

(* MMD+ lower bound: repeatedly contract a minimum-degree vertex into
   its lowest-degree neighbour; the running maximum of minimum degrees
   lower-bounds the treewidth (minors do not increase treewidth, and
   min-degree lower-bounds the treewidth of each minor). *)
let lower_bound g =
  let n = Graph.num_vertices g in
  if n = 0 then -1
  else begin
    let adj = Array.init n (Graph.neighbours g) in
    let alive = Array.make n true in
    let alive_count = ref n in
    let bound = ref 0 in
    (* lint: allow R7 each iteration removes one live vertex, so at
       most n iterations of polynomial work *)
    while !alive_count > 1 do
      (* minimum-degree live vertex *)
      let v = ref (-1) in
      let vd = ref max_int in
      (* lint: allow R7 linear minimum-degree scan *)
      for u = 0 to n - 1 do
        if alive.(u) then begin
          let d = live_degree adj alive u in
          if d < !vd then (v := u; vd := d)
        end
      done;
      bound := max !bound !vd;
      if !vd = 0 then begin
        alive.(!v) <- false;
        decr alive_count
      end
      else begin
        (* contract v into its minimum-degree live neighbour *)
        let w = ref (-1) in
        let wd = ref max_int in
        Bitset.iter
          (fun u ->
             if alive.(u) then begin
               let d = live_degree adj alive u in
               if d < !wd then (w := u; wd := d)
             end)
          adj.(!v);
        let w = !w in
        Bitset.iter
          (fun u ->
             if alive.(u) && u <> w then begin
               Bitset.set adj.(w) u;
               Bitset.set adj.(u) w
             end)
          adj.(!v);
        Bitset.clear adj.(w) !v;
        alive.(!v) <- false;
        decr alive_count
      end
    done;
    !bound
  end
