(** Exact treewidth.

    The default solver is a branch-and-bound search over elimination
    orders (QuickBB-style) with memoisation on the eliminated set —
    sound because the filled graph after eliminating a set of vertices
    is independent of the elimination order within the set.  It is
    bracketed by the greedy upper bounds and the contraction lower
    bound of {!Heuristics}.

    A Held–Karp-style subset dynamic program ({!treewidth_dp}) is
    provided as an independent implementation for cross-validation
    (see the ablation notes in DESIGN.md). *)

open Wlcq_graph
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome

(** [treewidth g] is the exact treewidth of [g] ([-1] for the empty
    graph, [0] for edgeless graphs). *)
val treewidth : Graph.t -> int

(** [treewidth_budgeted ~budget g] is the budgeted variant: [`Exact w]
    when the branch and bound finished, [`Degraded (ub, _)] with the
    {!Heuristics} upper bound (min-degree / min-fill bracket, computed
    before the search starts) when [budget] tripped mid-search.  Never
    [`Exhausted]: the heuristic rung is polynomial and always
    available.  Bumps the [robust.fallback.tw_heuristic] counter on
    degradation. *)
val treewidth_budgeted : budget:Budget.t -> Graph.t -> (int, 'p) Outcome.t

(** [optimal_decomposition_budgeted ~budget g] is {!optimal_decomposition}
    under a budget: [`Degraded] carries a valid (but possibly
    wider-than-optimal) decomposition from the heuristic order.
    Degraded decompositions never enter the memo. *)
val optimal_decomposition_budgeted :
  budget:Budget.t -> Graph.t -> (Decomposition.t, 'p) Outcome.t

(** [optimal_order g] is an elimination order witnessing
    [treewidth g]. *)
val optimal_order : Graph.t -> int list

(** [optimal_decomposition g] is a minimum-width tree decomposition.
    Memoised per pattern graph (keyed by [Graph.equal]-checked hash and
    bounded in size), since the interpolation pipeline re-decomposes
    the same small patterns many times. *)
val optimal_decomposition : Graph.t -> Decomposition.t

(** [clear_decomposition_memo ()] empties the {!optimal_decomposition}
    cache — used by benchmarks that need cold-cache comparisons. *)
val clear_decomposition_memo : unit -> unit

(** [is_at_most g k] decides [treewidth g <= k]. *)
val is_at_most : Graph.t -> int -> bool

(** [treewidth_dp g] computes the treewidth by the O(2^n · n²) subset
    dynamic program.
    @raise Invalid_argument when [g] has more than 22 vertices. *)
val treewidth_dp : Graph.t -> int
