open Wlcq_graph
module Bitset = Wlcq_util.Bitset

type node =
  | Leaf
  | Introduce of int * int
  | Forget of int * int
  | Join of int * int

type t = { nodes : node array; bags : Bitset.t array; root : int }

let of_decomposition d ~universe =
  let tree = d.Decomposition.tree in
  let obags = d.Decomposition.bags in
  let count = Graph.num_vertices tree in
  let nodes = ref [] in
  let bags = ref [] in
  let next = ref 0 in
  let add node bag =
    nodes := node :: !nodes;
    bags := bag :: !bags;
    let id = !next in
    incr next;
    id
  in
  (* ramp from [from_id] (with bag [from_bag]) to bag [target]: forget
     the extras, then introduce the missing vertices *)
  let ramp from_id from_bag target =
    let id = ref from_id in
    let bag = ref from_bag in
    Bitset.iter
      (fun v ->
         if not (Bitset.mem target v) then begin
           bag := Bitset.remove !bag v;
           id := add (Forget (v, !id)) !bag
         end)
      from_bag;
    Bitset.iter
      (fun v ->
         if not (Bitset.mem !bag v) then begin
           bag := Bitset.add !bag v;
           id := add (Introduce (v, !id)) !bag
         end)
      target;
    !id
  in
  let leaf_ramp target =
    ramp (add Leaf (Bitset.create universe)) (Bitset.create universe) target
  in
  if count = 0 then begin
    let root = add Leaf (Bitset.create universe) in
    { nodes = Array.of_list (List.rev !nodes);
      bags = Array.of_list (List.rev !bags);
      root }
  end
  else begin
    let rooted = Decomposition.rooted d in
    (* lint: allow R7 structural recursion over the rooted
       decomposition tree: each node is built exactly once *)
    let rec build t =
      let target = obags.(t) in
      match Array.to_list rooted.Decomposition.children.(t) with
      | [] -> leaf_ramp target
      | first :: rest ->
        let first_id = ramp (build first) obags.(first) target in
        List.fold_left
          (fun acc s ->
             let sid = ramp (build s) obags.(s) target in
             add (Join (acc, sid)) target)
          first_id rest
    in
    let top = build rooted.Decomposition.root in
    (* forget everything to reach an empty root bag *)
    let root = ramp top obags.(rooted.Decomposition.root) (Bitset.create universe) in
    { nodes = Array.of_list (List.rev !nodes);
      bags = Array.of_list (List.rev !bags);
      root }
  end

let width t =
  Array.fold_left (fun acc b -> max acc (Bitset.cardinal b)) 0 t.bags - 1

let num_nodes t = Array.length t.nodes

let is_valid_for t h =
  let n = Array.length t.nodes in
  n > 0
  && t.root = n - 1
  && Bitset.is_empty t.bags.(t.root)
  && begin
    (* structural rules per node *)
    let structural = ref true in
    Array.iteri
      (fun i node ->
         let ok =
           match node with
           | Leaf -> Bitset.is_empty t.bags.(i)
           | Introduce (v, c) ->
             c < i
             && Bitset.mem t.bags.(i) v
             && Bitset.equal t.bags.(c) (Bitset.remove t.bags.(i) v)
           | Forget (v, c) ->
             c < i
             && (not (Bitset.mem t.bags.(i) v))
             && Bitset.equal t.bags.(i) (Bitset.remove t.bags.(c) v)
           | Join (c1, c2) ->
             c1 < i && c2 < i
             && Bitset.equal t.bags.(c1) t.bags.(i)
             && Bitset.equal t.bags.(c2) t.bags.(i)
         in
         if not ok then structural := false)
      t.nodes;
    !structural
  end
  && begin
    (* as an ordinary tree decomposition of h *)
    let edges = ref [] in
    Array.iteri
      (fun i node ->
         match node with
         | Leaf -> ()
         | Introduce (_, c) | Forget (_, c) -> edges := (i, c) :: !edges
         | Join (c1, c2) -> edges := (i, c1) :: (i, c2) :: !edges)
      t.nodes;
    let tree = Graph.create n !edges in
    Decomposition.is_valid_for (Decomposition.make tree t.bags) h
  end
