open Wlcq_graph
module Bitset = Wlcq_util.Bitset

type t = { tree : Graph.t; bags : Bitset.t array }

let make tree bags =
  if Graph.num_vertices tree <> Array.length bags then
    invalid_arg "Decomposition.make: one bag per tree node required";
  if Graph.num_vertices tree > 0 && not (Traversal.is_tree tree) then
    invalid_arg "Decomposition.make: underlying graph is not a tree";
  { tree; bags }

let width d =
  Array.fold_left (fun acc b -> max acc (Bitset.cardinal b)) 0 d.bags - 1

let singleton h =
  let n = Graph.num_vertices h in
  { tree = Graph.empty 1; bags = [| Bitset.full n |] }

let is_valid_for d h =
  let n = Graph.num_vertices h in
  let nodes = Graph.num_vertices d.tree in
  let bag_capacity_ok =
    Array.for_all (fun b -> Bitset.capacity b = n) d.bags
  in
  bag_capacity_ok
  && begin
    (* (T1): every vertex is covered *)
    let covered = Array.make n false in
    Array.iter (Bitset.iter (fun v -> covered.(v) <- true)) d.bags;
    Array.for_all (fun b -> b) covered
  end
  && begin
    (* (T3): every edge lies in some bag *)
    let ok = ref true in
    Graph.iter_edges h (fun u v ->
        if not
            (Array.exists (fun b -> Bitset.mem b u && Bitset.mem b v) d.bags)
        then ok := false);
    !ok
  end
  && begin
    (* (T2): for each vertex, the nodes whose bag contains it induce a
       connected subtree *)
    let ok = ref true in
    for v = 0 to n - 1 do
      let holders =
        List.filter (fun t -> Bitset.mem d.bags.(t) v)
          (List.init nodes (fun i -> i))
      in
      match holders with
      | [] -> ok := false
      | first :: _ ->
        let member = Array.make nodes false in
        List.iter (fun t -> member.(t) <- true) holders;
        (* BFS within holders *)
        let seen = Array.make nodes false in
        let queue = Queue.create () in
        seen.(first) <- true;
        Queue.add first queue;
        while not (Queue.is_empty queue) do
          let t = Queue.take queue in
          Graph.iter_neighbours d.tree t (fun s ->
              if member.(s) && not seen.(s) then begin
                seen.(s) <- true;
                Queue.add s queue
              end)
        done;
        if not (List.for_all (fun t -> seen.(t)) holders) then ok := false
    done;
    !ok
  end

let pp ppf d =
  Format.fprintf ppf "decomposition(width=%d)@." (width d);
  Array.iteri
    (fun i b -> Format.fprintf ppf "  bag %d: %a@." i Bitset.pp b)
    d.bags;
  Format.fprintf ppf "  tree: %a" Graph.pp d.tree
