open Wlcq_graph
module Bitset = Wlcq_util.Bitset

type t = { tree : Graph.t; bags : Bitset.t array }

let make tree bags =
  if Graph.num_vertices tree <> Array.length bags then
    invalid_arg "Decomposition.make: one bag per tree node required";
  if Graph.num_vertices tree > 0 && not (Traversal.is_tree tree) then
    invalid_arg "Decomposition.make: underlying graph is not a tree";
  { tree; bags }

let width d =
  Array.fold_left (fun acc b -> max acc (Bitset.cardinal b)) 0 d.bags - 1

let singleton h =
  let n = Graph.num_vertices h in
  { tree = Graph.empty 1; bags = [| Bitset.full n |] }

let relabel d p =
  let bags =
    Array.map
      (fun b ->
         let nb = Bitset.create (Bitset.capacity b) in
         Bitset.iter (fun v -> Bitset.set nb p.(v)) b;
         nb)
      d.bags
  in
  { d with bags }

let is_valid_for d h =
  let n = Graph.num_vertices h in
  let nodes = Graph.num_vertices d.tree in
  let bag_capacity_ok =
    Array.for_all (fun b -> Bitset.capacity b = n) d.bags
  in
  bag_capacity_ok
  && begin
    (* (T1): every vertex is covered *)
    let covered = Array.make n false in
    Array.iter (Bitset.iter (fun v -> covered.(v) <- true)) d.bags;
    Array.for_all (fun b -> b) covered
  end
  && begin
    (* (T3): every edge lies in some bag *)
    let ok = ref true in
    Graph.iter_edges h (fun u v ->
        if not
            (Array.exists (fun b -> Bitset.mem b u && Bitset.mem b v) d.bags)
        then ok := false);
    !ok
  end
  && begin
    (* (T2): for each vertex, the nodes whose bag contains it induce a
       connected subtree *)
    let ok = ref true in
    (* lint: allow R7 one-shot validation pass over the
       decomposition-sized structure, O(n * nodes) *)
    for v = 0 to n - 1 do
      let holders =
        List.filter (fun t -> Bitset.mem d.bags.(t) v)
          (List.init nodes (fun i -> i))
      in
      match holders with
      | [] -> ok := false
      | first :: _ ->
        let member = Array.make nodes false in
        List.iter (fun t -> member.(t) <- true) holders;
        (* BFS within holders *)
        let seen = Array.make nodes false in
        let queue = Queue.create () in
        seen.(first) <- true;
        Queue.add first queue;
        (* lint: allow R7 BFS within the holder set, each node enqueued
           at most once *)
        while not (Queue.is_empty queue) do
          let t = Queue.take queue in
          Graph.iter_neighbours d.tree t (fun s ->
              if member.(s) && not seen.(s) then begin
                seen.(s) <- true;
                Queue.add s queue
              end)
        done;
        if not (List.for_all (fun t -> seen.(t)) holders) then ok := false
    done;
    !ok
  end

(* Contract away redundant nodes: a tree edge (u, v) with B_u ⊆ B_v
   merges u into v, v inheriting u's other neighbours.  Contraction of
   such an edge preserves (T1)–(T3), and every step removes a node, so
   the fixpoint terminates with at least one node left.  Restricting a
   shared decomposition onto a prefix pattern (Td_count.count_many)
   leaves long chains of empty or duplicated bags; compaction shrinks
   the tree back to the small pattern's scale before the DP runs. *)
let compact d =
  let nodes = Graph.num_vertices d.tree in
  if nodes <= 1 then d
  else begin
    let alive = Array.make nodes true in
    let adj = Array.init nodes (fun _ -> Bitset.create nodes) in
    Graph.iter_edges d.tree (fun u v ->
        Bitset.set adj.(u) v;
        Bitset.set adj.(v) u);
    let changed = ref true in
    while !changed do
      changed := false;
      for u = 0 to nodes - 1 do
        if alive.(u) then begin
          let target = ref (-1) in
          Bitset.iter
            (fun v ->
               if !target < 0 && alive.(v)
                  && Bitset.subset d.bags.(u) d.bags.(v)
               then target := v)
            adj.(u);
          let v = !target in
          if v >= 0 then begin
            alive.(u) <- false;
            Bitset.clear adj.(v) u;
            Bitset.iter
              (fun w ->
                 if w <> v then begin
                   Bitset.clear adj.(w) u;
                   Bitset.set adj.(w) v;
                   Bitset.set adj.(v) w
                 end)
              adj.(u);
            changed := true
          end
        end
      done
    done;
    let index = Array.make nodes (-1) in
    let count = ref 0 in
    for u = 0 to nodes - 1 do
      if alive.(u) then begin
        index.(u) <- !count;
        incr count
      end
    done;
    let edges = ref [] in
    for u = 0 to nodes - 1 do
      if alive.(u) then
        Bitset.iter
          (fun v -> if u < v then edges := (index.(u), index.(v)) :: !edges)
          adj.(u)
    done;
    let bags = Array.make !count (Bitset.create 0) in
    for u = 0 to nodes - 1 do
      if alive.(u) then bags.(index.(u)) <- d.bags.(u)
    done;
    make (Graph.create !count !edges) bags
  end

type rooted = {
  root : int;
  parent : int array;
  postorder : int array;
  children : int array array;
}

(* BFS from the root over the decomposition tree.  Reversing a BFS
   order gives a valid postorder (every node appears after all its
   children), which is exactly what the bottom-up counting DPs need.
   Children arrays are in ascending node order, so any consumer that
   folds over them is deterministic regardless of how the tree edges
   were produced. *)
let rooted ?(root = 0) d =
  let nodes = Graph.num_vertices d.tree in
  if nodes = 0 then invalid_arg "Decomposition.rooted: empty decomposition";
  if root < 0 || root >= nodes then
    invalid_arg "Decomposition.rooted: root out of range";
  let parent = Array.make nodes (-1) in
  let bfs = Array.make nodes root in
  let seen = Array.make nodes false in
  seen.(root) <- true;
  let tail = ref 1 in
  let head = ref 0 in
  (* lint: allow R7 re-rooting BFS: each decomposition node is visited
     exactly once *)
  while !head < !tail do
    let t = bfs.(!head) in
    incr head;
    Graph.iter_neighbours d.tree t (fun s ->
        if not seen.(s) then begin
          seen.(s) <- true;
          parent.(s) <- t;
          bfs.(!tail) <- s;
          incr tail
        end)
  done;
  if !tail <> nodes then
    invalid_arg "Decomposition.rooted: decomposition tree is disconnected";
  let postorder = Array.init nodes (fun i -> bfs.(nodes - 1 - i)) in
  let counts = Array.make nodes 0 in
  for t = 0 to nodes - 1 do
    let p = parent.(t) in
    if p >= 0 then counts.(p) <- counts.(p) + 1
  done;
  let children = Array.map (fun c -> Array.make c (-1)) counts in
  let fill = Array.make nodes 0 in
  (* ascending t ⇒ ascending child order within each slot *)
  for t = 0 to nodes - 1 do
    let p = parent.(t) in
    if p >= 0 then begin
      children.(p).(fill.(p)) <- t;
      fill.(p) <- fill.(p) + 1
    end
  done;
  { root; parent; postorder; children }

let pp ppf d =
  Format.fprintf ppf "decomposition(width=%d)@." (width d);
  Array.iteri
    (fun i b -> Format.fprintf ppf "  bag %d: %a@." i Bitset.pp b)
    d.bags;
  Format.fprintf ppf "  tree: %a" Graph.pp d.tree
