(** Nice tree decompositions.

    A nice decomposition is a rooted binary-shaped normal form where
    every node is one of: a {e leaf} with an empty bag, an
    {e introduce} node adding one vertex to its child's bag, a
    {e forget} node removing one vertex, or a {e join} of two children
    with identical bags.  Dynamic programs become one-rule-per-node
    (see {!Wlcq_hom.Nice_count} for homomorphism counting); converting
    through this normal form also cross-validates the plain
    bag-DP used elsewhere. *)

open Wlcq_graph
module Bitset = Wlcq_util.Bitset

type node =
  | Leaf  (** empty bag *)
  | Introduce of int * int  (** [(v, child)]: bag = child's bag + v *)
  | Forget of int * int  (** [(v, child)]: bag = child's bag - v *)
  | Join of int * int  (** two children with bags equal to this bag *)

type t = {
  nodes : node array;
  bags : Bitset.t array;  (** bag of each node, over [V(H)] *)
  root : int;  (** the root has an empty bag *)
}

(** [of_decomposition d ~universe] converts an ordinary tree
    decomposition into a nice one over a graph with [universe]
    vertices.  The result's width equals the input width (leaf/root
    ramps only shrink bags).  Handles the empty tree. *)
val of_decomposition : Decomposition.t -> universe:int -> t

(** [width t] is the maximum bag size minus one. *)
val width : t -> int

(** [is_valid_for t h] checks the structural rules and that [t] is a
    tree decomposition of [h]: every vertex introduced and forgotten
    consistently, every edge covered by some bag, connectivity of the
    occurrences of each vertex (implied by single-forget), and bags
    matching the node kinds. *)
val is_valid_for : t -> Graph.t -> bool

(** [num_nodes t] is the number of nodes. *)
val num_nodes : t -> int
