open Wlcq_graph
module Bitset = Wlcq_util.Bitset

(* Simulate elimination: returns, for each position i in the order, the
   set of neighbours of the i-th vertex among vertices eliminated later
   (in the progressively filled graph). *)
let higher_neighbour_sets g order =
  let n = Graph.num_vertices g in
  let order = Array.of_list order in
  if Array.length order <> n
     || not (Wlcq_util.Perm.is_permutation order) then
    invalid_arg "Elimination.higher_neighbour_sets: order must be a permutation of the vertices";
  let adj = Array.init n (Graph.neighbours g) in
  let eliminated = Array.make n false in
  let sets = Array.make n (Bitset.create n) in
  (* lint: allow R7 one elimination step per vertex of the pattern
     graph, polynomial one-shot *)
  for i = 0 to n - 1 do
    let v = order.(i) in
    let remaining = Bitset.fold
        (fun w acc -> if eliminated.(w) then acc else w :: acc)
        adj.(v) []
    in
    sets.(i) <- Bitset.of_list n remaining;
    (* connect remaining neighbours into a clique (fill-in) *)
    List.iter
      (fun a ->
         List.iter
           (fun b ->
              if a <> b then begin
                Bitset.set adj.(a) b;
                Bitset.set adj.(b) a
              end)
           remaining)
      remaining;
    eliminated.(v) <- true
  done;
  (order, sets)

let width_of_order g order =
  let _, sets = higher_neighbour_sets g order in
  Array.fold_left (fun acc s -> max acc (Bitset.cardinal s)) 0 sets

let fill_graph g order =
  let n = Graph.num_vertices g in
  let order_arr, sets = higher_neighbour_sets g order in
  let edges = ref (Graph.edges g) in
  Array.iteri
    (fun i s -> Bitset.iter (fun w -> edges := (order_arr.(i), w) :: !edges) s)
    sets;
  Graph.create n !edges

let decomposition_of_order g order =
  let n = Graph.num_vertices g in
  if n = 0 then
    Decomposition.make (Graph.empty 1) [| Bitset.create 0 |]
  else begin
    let order_arr, sets = higher_neighbour_sets g order in
    let position = Array.make n 0 in
    Array.iteri (fun i v -> position.(v) <- i) order_arr;
    let bags =
      Array.init n (fun i -> Bitset.add sets.(i) order_arr.(i))
    in
    (* Parent of node i: the node of the earliest-eliminated higher
       neighbour; nodes without higher neighbours are component roots,
       chained together afterwards (their bags share no vertices with
       other components, so (T2) is unaffected). *)
    let tree_edges = ref [] in
    let roots = ref [] in
    (* lint: allow R7 single pass over the n decomposition nodes *)
    for i = 0 to n - 1 do
      if Bitset.is_empty sets.(i) then roots := i :: !roots
      else begin
        let parent =
          Bitset.fold (fun w acc -> min acc position.(w)) sets.(i) max_int
        in
        tree_edges := (i, parent) :: !tree_edges
      end
    done;
    (match !roots with
     | [] -> assert false
     | r0 :: rest ->
       ignore (List.fold_left
                 (fun prev r -> tree_edges := (prev, r) :: !tree_edges; r)
                 r0 rest));
    Decomposition.make (Graph.create n !tree_edges) bags
  end
