(** Elimination orders and their tree decompositions.

    Eliminating a vertex connects its remaining neighbours into a
    clique; the width of an order is the maximum degree at elimination
    time, and the minimum over all orders equals the treewidth.  Both
    the heuristics and the exact branch-and-bound search work in this
    order space, and this module converts a winning order back into an
    explicit tree decomposition. *)

open Wlcq_graph

(** [width_of_order g order] is the width achieved by eliminating the
    vertices of [g] in the given order (a permutation of the vertex
    set). *)
val width_of_order : Graph.t -> int list -> int

(** [decomposition_of_order g order] builds a tree decomposition of [g]
    whose width equals [width_of_order g order]; bag [i] holds the
    [i]-th eliminated vertex together with its higher (not yet
    eliminated) neighbours in the fill-in graph.  For the empty graph
    the result is the trivial single-empty-bag decomposition. *)
val decomposition_of_order : Graph.t -> int list -> Decomposition.t

(** [fill_graph g order] is [g] plus all fill-in edges created when
    eliminating in [order] (a chordal supergraph of [g]). *)
val fill_graph : Graph.t -> int list -> Graph.t
