(** Treewidth heuristics: upper bounds from greedy elimination orders
    and lower bounds from degeneracy / contraction.  These bracket the
    exact branch-and-bound search in {!Exact}. *)

open Wlcq_graph

(** [min_degree_order g] is the greedy order that always eliminates a
    vertex of minimum current degree. *)
val min_degree_order : Graph.t -> int list

(** [min_fill_order g] is the greedy order that always eliminates a
    vertex whose elimination creates the fewest fill edges. *)
val min_fill_order : Graph.t -> int list

(** [upper_bound g] is the best width over the greedy orders. *)
val upper_bound : Graph.t -> int

(** [lower_bound g] is a treewidth lower bound: the maximum, over the
    minor-monotone contraction sequence (MMD+), of the minimum degree —
    at least the degeneracy of [g]. *)
val lower_bound : Graph.t -> int
