open Wlcq_graph
module Bitset = Wlcq_util.Bitset
module Obs = Wlcq_obs.Obs
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome

let m_solves = Obs.counter "tw.solves"
let m_nodes = Obs.counter "tw.search_nodes"
let m_pruned = Obs.counter "tw.pruned"
let m_heuristic_fallbacks = Obs.counter "robust.fallback.tw_heuristic"

module Bitset_tbl = Hashtbl.Make (struct
    type t = Bitset.t

    let equal = Bitset.equal
    let hash = Bitset.hash
  end)

(* ------------------------------------------------------------------ *)
(* Branch and bound over elimination orders.                           *)
(* ------------------------------------------------------------------ *)

let live_neighbours adj alive v =
  Bitset.fold (fun w acc -> if alive.(w) then w :: acc else acc) adj.(v) []

let is_simplicial adj alive v =
  let neigh = live_neighbours adj alive v in
  let rec all_pairs = function
    | [] -> true
    | a :: rest ->
      List.for_all (fun b -> Bitset.mem adj.(a) b) rest && all_pairs rest
  in
  all_pairs neigh

(* Search for an order of width < best.  State is copied per branch;
   the memo table maps the eliminated set to the smallest running
   maximum with which it has been reached. *)
let branch_and_bound ~budget g initial_ub initial_order =
  let n = Graph.num_vertices g in
  let best = ref initial_ub in
  let best_order = ref initial_order in
  let memo : int Bitset_tbl.t = Bitset_tbl.create 1024 in
  (* search statistics, accumulated locally and flushed once *)
  let nodes_visited = ref 0 in
  let pruned = ref 0 in
  let rec go adj alive eliminated prefix current_max remaining =
    Budget.tick_check budget;
    incr nodes_visited;
    if current_max >= !best then incr pruned
    else if remaining = 0 then begin
      best := current_max;
      best_order := List.rev prefix
    end
    else if remaining - 1 <= current_max then begin
      (* finishing in any order costs at most remaining-1 <= current *)
      let rest = List.filter (fun v -> alive.(v)) (Graph.vertices g) in
      best := current_max;
      best_order := List.rev_append prefix rest
    end
    else begin
      match Bitset_tbl.find_opt memo eliminated with
      | Some m when m <= current_max -> incr pruned
      | _ ->
        Bitset_tbl.replace memo eliminated current_max;
        (* Simplicial vertices of low degree are always safe to
           eliminate first. *)
        let simplicial =
          List.find_opt
            (fun v ->
               alive.(v)
               && Bitset.cardinal
                    (Bitset.of_list n (live_neighbours adj alive v))
                  < !best
               && is_simplicial adj alive v)
            (Graph.vertices g)
        in
        let candidates =
          match simplicial with
          | Some v -> [ v ]
          | None ->
            let live = List.filter (fun v -> alive.(v)) (Graph.vertices g) in
            List.sort
              (fun a b ->
                 Int.compare
                   (List.length (live_neighbours adj alive a))
                   (List.length (live_neighbours adj alive b)))
              live
        in
        List.iter
          (fun v ->
             let neigh = live_neighbours adj alive v in
             let cost = List.length neigh in
             if max current_max cost < !best then begin
               let adj' = Array.map Bitset.copy adj in
               List.iter
                 (fun a ->
                    List.iter
                      (fun b ->
                         if a <> b then begin
                           Bitset.set adj'.(a) b;
                           Bitset.set adj'.(b) a
                         end)
                      neigh)
                 neigh;
               let alive' = Array.copy alive in
               alive'.(v) <- false;
               go adj' alive' (Bitset.add eliminated v) (v :: prefix)
                 (max current_max cost) (remaining - 1)
             end)
          candidates
    end
  in
  let adj = Array.init n (Graph.neighbours g) in
  let alive = Array.make n true in
  let flush () =
    if Obs.enabled () then begin
      Obs.add m_nodes !nodes_visited;
      Obs.add m_pruned !pruned
    end
  in
  (* flush the search statistics even when the budget unwinds the
     search with Budget.Exhausted *)
  Fun.protect ~finally:flush (fun () -> go adj alive (Bitset.create n) [] 0 n);
  (!best, !best_order)

(* Shared solver core: returns the best width/order found plus, when
   the budget tripped mid-search, the trip reason.  On a trip the
   returned pair is the heuristic bracket (a sound upper bound), which
   was computed before the branch and bound started — the degradation
   ladder's first rung is free. *)
let solve_with ~budget g =
  let n = Graph.num_vertices g in
  if n = 0 then (-1, [], None)
  else Obs.span "tw.solve" @@ fun () ->
    if Obs.enabled () then Obs.incr m_solves;
    let order_md = Heuristics.min_degree_order g in
    let order_mf = Heuristics.min_fill_order g in
    let w_md = Elimination.width_of_order g order_md in
    let w_mf = Elimination.width_of_order g order_mf in
    let ub, ub_order =
      if w_mf <= w_md then (w_mf, order_mf) else (w_md, order_md)
    in
    let lb = Heuristics.lower_bound g in
    if lb >= ub then (ub, ub_order, None)
    else begin
      (* the BB improves on ub+1 (i.e., finds width <= ub) or keeps it *)
      match branch_and_bound ~budget g (ub + 1) ub_order with
      | w, order when w <= ub -> (w, order, None)
      | _ -> (ub, ub_order, None)
      | exception Budget.Exhausted r ->
        Obs.incr m_heuristic_fallbacks;
        Obs.journal ~severity:Obs.Warn
          ~attrs:
            [ ("reason", Budget.reason_to_string r);
              ("upper_bound", string_of_int ub) ]
          "tw.heuristic_fallback";
        (ub, ub_order, Some r)
    end

let solve g =
  let w, order, _ = solve_with ~budget:Budget.unlimited g in
  (w, order)

let treewidth g = fst (solve g)
let optimal_order g = snd (solve g)

(* lint: allow R8 Invalid_argument is permutation validation on an
   internally built order — an invariant check, not a budget outcome *)
let treewidth_budgeted ~budget g =
  Obs.entry_point "tw.treewidth" @@ fun () ->
  match solve_with ~budget g with
  | w, _, None -> `Exact w
  | w, _, Some cause ->
    Outcome.degraded ~cause ~fallback:"Heuristics.upper_bound" w

module Cache = Wlcq_cache.Cache

let m_memo_hits = Obs.counter "tw.decomp_memo_hits"
let m_memo_misses = Obs.counter "tw.decomp_memo_misses"

(* one bitset block per bag plus the tree's adjacency, in words *)
let decomposition_words (d : Decomposition.t) =
  let bag_words b = 4 + ((Bitset.capacity b + 61) / 62) in
  let bags =
    Array.fold_left (fun acc b -> acc + bag_words b) 0 d.Decomposition.bags
  in
  16 + bags + (4 * Graph.num_vertices d.Decomposition.tree)

(* Pattern graphs are tiny and recur heavily (every interpolation step
   re-counts against the same extension family), so decompositions are
   worth caching.  Entries live in the shared content-addressed tier:
   the key is the canonical-form digest, so isomorphic resubmissions
   hit even when relabelled, and the stored decomposition is the
   canonical graph's — translated to and from caller vertex ids via
   the canonicalising permutation. *)
let decomposition_store =
  Cache.store ~name:"tw.decomposition" ~words:decomposition_words ()

(* Compatibility shim over the pre-tier memo API. *)
let clear_decomposition_memo () = Cache.clear_store decomposition_store

(* lint: allow R8 Invalid_argument is Graph.create size validation on
   an internally built tree — an invariant check, not a budget outcome *)
let optimal_decomposition_budgeted ~budget g =
  Obs.entry_point "tw.decomposition" @@ fun () ->
  let solve_plain () =
    let _, order, tripped = solve_with ~budget g in
    let d = Elimination.decomposition_of_order g order in
    (d, tripped)
  in
  (* budgeted runs may READ the tier: a warm daemon answering a
     deadline-bound request should profit from results an unlimited
     (or earlier budgeted) run proved exact.  Only writes stay
     exact-only — the [d, None] arm below — so a degraded decomposition
     never enters the tier. *)
  if not (Cache.enabled ()) then begin
    match solve_plain () with
    | d, None -> `Exact d
    | d, Some cause -> Outcome.degraded ~cause ~fallback:"Heuristics order" d
  end
  else begin
    let addr, perm = Cache.address g in
    match Cache.find decomposition_store addr with
    | Some dc ->
      if Obs.enabled () then Obs.incr m_memo_hits;
      `Exact (Decomposition.relabel dc (Wlcq_util.Perm.inverse perm))
    | None ->
      if Obs.enabled () then Obs.incr m_memo_misses;
      (match solve_plain () with
       | d, None ->
         (* only proven-optimal decompositions may enter the tier *)
         Cache.add decomposition_store addr (Decomposition.relabel d perm);
         `Exact d
       | d, Some cause ->
         Outcome.degraded ~cause ~fallback:"Heuristics order" d)
  end

let optimal_decomposition g =
  match optimal_decomposition_budgeted ~budget:Budget.unlimited g with
  | `Exact d | `Degraded (d, _) -> d
  | `Exhausted _ -> assert false

let is_at_most g k = treewidth g <= k

(* ------------------------------------------------------------------ *)
(* Subset dynamic program (Bodlaender et al.), for cross-validation.   *)
(* ------------------------------------------------------------------ *)

let treewidth_dp g =
  let n = Graph.num_vertices g in
  if n > 22 then invalid_arg "Exact.treewidth_dp: too many vertices";
  if n = 0 then -1
  else begin
    (* q s v: the degree of v once the vertices in the mask s have been
       eliminated = number of w outside s (and <> v) reachable from v
       through s. *)
    let adj = Array.init n (fun v -> Graph.neighbours_list g v) in
    let q s v =
      let seen = Array.make n false in
      let queue = Queue.create () in
      let count = ref 0 in
      seen.(v) <- true;
      Queue.add v queue;
      while not (Queue.is_empty queue) do
        let u = Queue.take queue in
        List.iter
          (fun w ->
             if not seen.(w) then begin
               seen.(w) <- true;
               if (s lsr w) land 1 = 1 then Queue.add w queue
               else incr count
             end)
          adj.(u)
      done;
      !count
    in
    let size = 1 lsl n in
    let tw = Array.make size max_int in
    tw.(0) <- -1;
    (* iterate masks in increasing order; every proper submask of s is
       numerically smaller, so a plain loop respects dependencies *)
    for s = 1 to size - 1 do
      let best = ref max_int in
      for v = 0 to n - 1 do
        if (s lsr v) land 1 = 1 then begin
          let s' = s land lnot (1 lsl v) in
          let cost = max tw.(s') (q s' v) in
          if cost < !best then best := cost
        end
      done;
      tw.(s) <- !best
    done;
    tw.(size - 1)
  end
