(** Tree decompositions (Definition 10).

    A decomposition of a graph [H] is a tree whose nodes carry bags of
    vertices of [H], satisfying (T1) every vertex occurs in a bag,
    (T2) the bags containing any fixed vertex induce a connected
    subtree, and (T3) every edge is contained in some bag.  The width
    is the maximum bag size minus one. *)

open Wlcq_graph

type t = {
  tree : Graph.t;  (** the decomposition tree, nodes are bag indices *)
  bags : Wlcq_util.Bitset.t array;  (** bag contents, over [V(H)] *)
}

(** [make tree bags] checks that [tree] is a tree (a single node is
    allowed) with one bag per node.
    @raise Invalid_argument otherwise. *)
val make : Graph.t -> Wlcq_util.Bitset.t array -> t

(** [width d] is [max |bag| - 1]; the empty decomposition has width
    [-1]. *)
val width : t -> int

(** [is_valid_for d h] checks (T1), (T2), (T3) against [h]. *)
val is_valid_for : t -> Graph.t -> bool

(** [singleton h] is the trivial decomposition with one bag containing
    all of [V(h)]. *)
val singleton : Graph.t -> t

(** [pp] prints bags and tree edges. *)
val pp : Format.formatter -> t -> unit
