(** Tree decompositions (Definition 10).

    A decomposition of a graph [H] is a tree whose nodes carry bags of
    vertices of [H], satisfying (T1) every vertex occurs in a bag,
    (T2) the bags containing any fixed vertex induce a connected
    subtree, and (T3) every edge is contained in some bag.  The width
    is the maximum bag size minus one. *)

open Wlcq_graph

type t = {
  tree : Graph.t;  (** the decomposition tree, nodes are bag indices *)
  bags : Wlcq_util.Bitset.t array;  (** bag contents, over [V(H)] *)
}

(** [make tree bags] checks that [tree] is a tree (a single node is
    allowed) with one bag per node.
    @raise Invalid_argument otherwise. *)
val make : Graph.t -> Wlcq_util.Bitset.t array -> t

(** [width d] is [max |bag| - 1]; the empty decomposition has width
    [-1]. *)
val width : t -> int

(** [is_valid_for d h] checks (T1), (T2), (T3) against [h]. *)
val is_valid_for : t -> Graph.t -> bool

(** [relabel d p] maps every bag through the vertex permutation [p]
    (vertex [v] becomes [p.(v)]); the tree is unchanged.  If [d] is
    valid for [h] then [relabel d p] is valid for [Ops.relabel h p] —
    this is how content-addressed cache entries stored against a
    canonical graph are translated back to caller vertex ids. *)
val relabel : t -> Wlcq_util.Perm.t -> t

(** [singleton h] is the trivial decomposition with one bag containing
    all of [V(h)]. *)
val singleton : Graph.t -> t

(** [compact d] contracts every tree edge [(u, v)] whose bag [B_u] is
    contained in [B_v] until none remains, reindexing the surviving
    nodes.  Contraction of such an edge preserves (T1)–(T3), so the
    result decomposes the same graphs [d] does, with the same or
    smaller width and at most as many nodes.  Used to shrink restricted
    shared decompositions back to the small pattern's scale. *)
val compact : t -> t

(** A decomposition tree rooted for bottom-up dynamic programming. *)
type rooted = {
  root : int;
  parent : int array;  (** [parent.(root) = -1] *)
  postorder : int array;
      (** every node appears after all of its children; the root is
          last *)
  children : int array array;  (** ascending node order *)
}

(** [rooted ?root d] roots the decomposition tree at [root] (default
    node [0]) and returns parent links, a postorder, and per-node child
    lists.  Deterministic: the same decomposition always yields the
    same arrays.
    @raise Invalid_argument
      on an empty or disconnected decomposition, or an out-of-range
      root. *)
val rooted : ?root:int -> t -> rooted

(** [pp] prints bags and tree edges. *)
val pp : Format.formatter -> t -> unit
