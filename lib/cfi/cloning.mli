(** Colour-block cloning [𝒢(G, F, c, v̄, z̄)] (Definition 33).

    Given a graph [G], a connected graph [F], an [F]-colouring
    [c : G → F], distinct vertices [v̄ = (v_1, …, v_k)] of [F] and
    multiplicities [z̄ = (z_1, …, z_k)], the cloned graph replaces each
    colour class [c⁻¹(v_i)] by [z_i] copies; clones inherit all
    adjacencies of their originals (clones of one vertex are never
    adjacent to each other, since [G] has no self-loops).

    The companion colouring [𝒞] maps every clone to the colour of its
    original, and Lemma 34 / Lemma 38 relate (coloured) homomorphism
    and answer counts before and after cloning by monomial factors
    [Π z_i^{d_i}] — this is the interpolation engine of Lemma 40. *)

open Wlcq_graph
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome

type t = {
  graph : Graph.t;  (** the cloned graph [𝒢] *)
  colouring : int array;  (** [𝒞]: cloned vertex → V(F) *)
  back : int array;  (** ρ: cloned vertex → original vertex of [G] *)
}

(** [clone ~g ~f ~c spec] builds [𝒢(g, f, c, v̄, z̄)] where [spec]
    lists the pairs [(v_i, z_i)] (colours of [f] not listed keep
    multiplicity 1).
    [budget] is ticked in the edge-expansion loop.
    @raise Invalid_argument when [c] is not a colouring array over
    [V(g)], a listed vertex is repeated, or a multiplicity is < 1.
    @raise Budget.Exhausted when [budget] trips. *)
val clone :
  ?budget:Budget.t ->
  g:Graph.t -> f:Graph.t -> c:int array -> (int * int) list -> t

(** Non-raising variant; all-or-nothing like {!Cfi.build_budgeted}
    ([robust.fallback.clone_abandoned] on [`Exhausted]). *)
val clone_budgeted :
  budget:Budget.t ->
  g:Graph.t -> f:Graph.t -> c:int array -> (int * int) list ->
  (t, Budget.reason) Outcome.t

(** [rho_is_homomorphism t g] checks that the clone-collapsing map ρ is
    a homomorphism back to [g]. *)
val rho_is_homomorphism : t -> Graph.t -> bool
