(** The CFI construction [χ(G, W)] (Definition 25).

    Given a base graph [G] and a twist set [W ⊆ V(G)], the CFI graph
    has vertices [(w, S)] for every [w ∈ V(G)] and [S ⊆ N_G(w)] with
    [|S| ≡ |{w} ∩ W| (mod 2)], and edges between [(w, S)] and
    [(w', S')] whenever [{w, w'} ∈ E(G)] and [w' ∈ S ⟺ w ∈ S'].

    Key facts implemented/exercised here:
    - the first projection [π₁] is a homomorphism onto the base
      (Observation 29);
    - for connected [G], [χ(G, W) ≅ χ(G, W')] iff
      [|W| ≡ |W'| (mod 2)] (Lemma 26, checked experimentally in T4);
    - if [tw(G) = t] then [χ(G, ∅) ≅_{t-1} χ(G, {w})] (Lemma 27,
      checked in T5). *)

open Wlcq_graph
module Bitset = Wlcq_util.Bitset
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome

type t = {
  graph : Graph.t;  (** the CFI graph *)
  base : Graph.t;  (** the base graph [G] *)
  twist : Bitset.t;  (** the twist set [W] *)
  projection : int array;  (** [π₁]: CFI vertex index → base vertex *)
  subset : Bitset.t array;  (** CFI vertex index → its set [S] over [V(G)] *)
}

(** [build base twist] constructs [χ(base, twist)].  The number of CFI
    vertices is [Σ_w 2^(deg w - 1)] (for vertices of positive degree),
    so keep base degrees moderate.  [budget] is ticked in the gadget
    and edge enumeration loops.
    @raise Invalid_argument when the twist set is not over [V(base)].
    @raise Budget.Exhausted when [budget] trips. *)
val build : ?budget:Budget.t -> Graph.t -> Bitset.t -> t

(** Non-raising variant.  A half-built CFI graph has no sound partial
    interpretation, so this is all-or-nothing — never [`Degraded]
    ([robust.fallback.cfi_abandoned] on [`Exhausted]). *)
val build_budgeted :
  budget:Budget.t -> Graph.t -> Bitset.t ->
  (t, Budget.reason) Outcome.t

(** [even base] is [χ(base, ∅)]. *)
val even : Graph.t -> t

(** [odd base] is [χ(base, {0})] — a representative of the odd
    isomorphism class (Lemma 26). *)
val odd : Graph.t -> t

(** [vertex t w s] is the index of the CFI vertex [(w, s)], if present. *)
val vertex : t -> int -> Bitset.t -> int option

(** [num_vertices t] is the CFI graph's vertex count. *)
val num_vertices : t -> int

(** [projection_is_homomorphism t] checks Observation 29. *)
val projection_is_homomorphism : t -> bool
