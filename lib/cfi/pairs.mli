(** Twisted CFI pairs — the standard source of k-WL-equivalent but
    non-isomorphic graphs.

    For a connected base graph [F] of treewidth [t], the pair
    [(χ(F, ∅), χ(F, {w}))] is non-isomorphic (Lemma 26) yet
    [(t−1)]-WL-equivalent (Lemma 27).  These pairs drive the lower
    bound of Theorem 24 and experiments T4/T5. *)

open Wlcq_graph

(** [twisted_pair base] is [(χ(base, ∅), χ(base, {0}))].
    @raise Invalid_argument when [base] is empty.
    @raise Cfi.Budget.Exhausted when [budget] trips. *)
val twisted_pair : ?budget:Cfi.Budget.t -> Graph.t -> Cfi.t * Cfi.t

(** [same_parity_isomorphic base w w'] checks Lemma 26 on a concrete
    instance: builds [χ(base, {w})] and [χ(base, {w'})] and tests
    isomorphism (expected: isomorphic, both twists odd). *)
val same_parity_isomorphic : Graph.t -> int -> int -> bool

(** [parity_classes_differ base] checks that [χ(base, ∅)] and
    [χ(base, {0})] are NOT isomorphic (the other half of Lemma 26,
    for connected [base] with at least one edge). *)
val parity_classes_differ : Graph.t -> bool
