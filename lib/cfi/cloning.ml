open Wlcq_graph
module Obs = Wlcq_obs.Obs
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome

let m_abandoned = Obs.counter "robust.fallback.clone_abandoned"

type t = { graph : Graph.t; colouring : int array; back : int array }

let clone ?(budget = Budget.unlimited) ~g ~f ~c spec =
  let n = Graph.num_vertices g in
  if Array.length c <> n then
    invalid_arg "Cloning.clone: colouring array size mismatch";
  Array.iter
    (fun x ->
       if x < 0 || x >= Graph.num_vertices f then
         invalid_arg "Cloning.clone: colour out of range")
    c;
  let mult = Array.make (Graph.num_vertices f) 1 in
  let listed = Array.make (Graph.num_vertices f) false in
  List.iter
    (fun (v, z) ->
       if v < 0 || v >= Graph.num_vertices f then
         invalid_arg "Cloning.clone: cloned vertex out of range";
       if listed.(v) then invalid_arg "Cloning.clone: repeated cloned vertex";
       if z < 1 then invalid_arg "Cloning.clone: multiplicity must be >= 1";
       listed.(v) <- true;
       mult.(v) <- z)
    spec;
  (* new vertex list: for each original u, mult.(c.(u)) copies *)
  let back = ref [] in
  for u = n - 1 downto 0 do
    for _ = 1 to mult.(c.(u)) do back := u :: !back done
  done;
  let back = Array.of_list !back in
  let count = Array.length back in
  let colouring = Array.map (fun u -> c.(u)) back in
  (* adjacency: clones inherit the originals' adjacency *)
  let copies = Array.make n [] in
  Array.iteri (fun i u -> copies.(u) <- i :: copies.(u)) back;
  let edges = ref [] in
  Graph.iter_edges g (fun u v ->
      List.iter
        (fun i ->
           Budget.tick_check budget;
           List.iter (fun j -> edges := (i, j) :: !edges) copies.(v))
        copies.(u));
  { graph = Graph.create count !edges; colouring; back }

(* like [Cfi.build_budgeted]: a half-cloned graph is meaningless, so
   all-or-nothing *)
(* lint: allow R8 Invalid_argument is precondition validation reporting
   a caller bug, deliberately outside the Outcome envelope *)
let clone_budgeted ~budget ~g ~f ~c spec =
  Obs.entry_point "cloning.clone" @@ fun () ->
  match clone ~budget ~g ~f ~c spec with
  | t -> `Exact t
  | exception Budget.Exhausted r ->
    Obs.incr m_abandoned;
    Obs.journal ~severity:Obs.Warn
      ~attrs:[ ("reason", Budget.reason_to_string r) ]
      "cloning.abandoned";
    `Exhausted r

let rho_is_homomorphism t g =
  let ok = ref true in
  Graph.iter_edges t.graph (fun i j ->
      if not (Graph.adjacent g t.back.(i) t.back.(j)) then ok := false);
  !ok
