open Wlcq_graph
module Bitset = Wlcq_util.Bitset

let twisted_pair base = (Cfi.even base, Cfi.odd base)

let same_parity_isomorphic base w w' =
  let n = Graph.num_vertices base in
  let a = Cfi.build base (Bitset.singleton n w) in
  let b = Cfi.build base (Bitset.singleton n w') in
  Iso.isomorphic a.Cfi.graph b.Cfi.graph

let parity_classes_differ base =
  let a, b = twisted_pair base in
  not (Iso.isomorphic a.Cfi.graph b.Cfi.graph)
