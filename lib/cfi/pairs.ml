open Wlcq_graph
module Bitset = Wlcq_util.Bitset

let twisted_pair ?budget base =
  let n = Graph.num_vertices base in
  if n = 0 then invalid_arg "Pairs.twisted_pair: base graph is empty";
  ( Cfi.build ?budget base (Bitset.create n),
    Cfi.build ?budget base (Bitset.singleton n 0) )

let same_parity_isomorphic base w w' =
  let n = Graph.num_vertices base in
  let a = Cfi.build base (Bitset.singleton n w) in
  let b = Cfi.build base (Bitset.singleton n w') in
  Iso.isomorphic a.Cfi.graph b.Cfi.graph

let parity_classes_differ base =
  let a, b = twisted_pair base in
  not (Iso.isomorphic a.Cfi.graph b.Cfi.graph)
