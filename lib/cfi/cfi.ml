open Wlcq_graph
module Bitset = Wlcq_util.Bitset
module Obs = Wlcq_obs.Obs
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome

let m_builds = Obs.counter "cfi.builds"
let d_vertices = Obs.distribution "cfi.gadget_vertices"
let m_abandoned = Obs.counter "robust.fallback.cfi_abandoned"

type t = {
  graph : Graph.t;
  base : Graph.t;
  twist : Bitset.t;
  projection : int array;
  subset : Bitset.t array;
}

let build ?(budget = Budget.unlimited) base twist =
  let n = Graph.num_vertices base in
  if Bitset.capacity twist <> n then
    invalid_arg "Cfi.build: twist set universe must be V(base)";
  Obs.span "cfi.build" @@ fun () ->
  (* enumerate vertices (w, S): S over the neighbour list of w with the
     parity prescribed by the twist *)
  let vertices = ref [] in
  for w = n - 1 downto 0 do
    let neigh = Array.of_list (Graph.neighbours_list base w) in
    let d = Array.length neigh in
    let want_odd = Bitset.mem twist w in
    for mask = (1 lsl d) - 1 downto 0 do
      Budget.tick_check budget;
      let parity_odd =
        let rec pop m acc = if m = 0 then acc else pop (m land (m - 1)) (acc + 1) in
        pop mask 0 mod 2 = 1
      in
      if parity_odd = want_odd then begin
        let s = Bitset.create n in
        Array.iteri
          (fun i v -> if (mask lsr i) land 1 = 1 then Bitset.set s v)
          neigh;
        vertices := (w, s) :: !vertices
      end
    done
  done;
  let vertices = Array.of_list !vertices in
  let count = Array.length vertices in
  let projection = Array.map fst vertices in
  let subset = Array.map snd vertices in
  (* index vertices per base vertex for fast edge generation *)
  let by_base = Array.make n [] in
  Array.iteri
    (fun i (w, _) -> by_base.(w) <- i :: by_base.(w))
    vertices;
  let edges = ref [] in
  Graph.iter_edges base (fun w w' ->
      List.iter
        (fun i ->
           Budget.tick_check budget;
           List.iter
             (fun j ->
                if Bitset.mem subset.(i) w' = Bitset.mem subset.(j) w then
                  edges := (i, j) :: !edges)
             by_base.(w'))
        by_base.(w));
  if Obs.enabled () then begin
    Obs.incr m_builds;
    Obs.observe d_vertices count
  end;
  { graph = Graph.create count !edges; base; twist; projection; subset }

(* a half-built CFI graph has no sound partial interpretation, so the
   budgeted wrapper is all-or-nothing: no [`Degraded] outcome *)
(* lint: allow R8 Invalid_argument is precondition validation reporting
   a caller bug, deliberately outside the Outcome envelope *)
let build_budgeted ~budget base twist =
  Obs.entry_point "cfi.build" @@ fun () ->
  match build ~budget base twist with
  | t -> `Exact t
  | exception Budget.Exhausted r ->
    Obs.incr m_abandoned;
    Obs.journal ~severity:Obs.Warn
      ~attrs:[ ("reason", Budget.reason_to_string r) ]
      "cfi.abandoned";
    `Exhausted r

let even base = build base (Bitset.create (Graph.num_vertices base))

let odd base =
  if Graph.num_vertices base = 0 then
    invalid_arg "Cfi.odd: base graph is empty";
  build base (Bitset.singleton (Graph.num_vertices base) 0)

let vertex t w s =
  let found = ref None in
  Array.iteri
    (fun i w' ->
       if Option.is_none !found && w' = w && Bitset.equal t.subset.(i) s then
         found := Some i)
    t.projection;
  !found

let num_vertices t = Graph.num_vertices t.graph

let projection_is_homomorphism t =
  let ok = ref true in
  Graph.iter_edges t.graph (fun i j ->
      if not (Graph.adjacent t.base t.projection.(i) t.projection.(j)) then
        ok := false);
  !ok
