(** First-order logic with counting quantifiers — the logic [C^k]
    behind the paper's characterisation (II) of WL-equivalence:
    [G ≅_k G'] iff no [C^{k+1}] sentence (first-order with counting
    quantifiers, at most [k+1] variables) distinguishes [G] from [G']
    (Immerman–Lander; Cai–Fürer–Immerman).

    Variables are indexed [0, 1, 2, …]; the {e variable width} of a
    formula is the number of distinct indices it mentions (reusing an
    index after quantifying it again does not increase the width,
    exactly as in the finite-variable logics literature).  The
    evaluator is a direct model checker, exponential in the quantifier
    depth — ample for certifying the characterisation on the
    experiment-scale graphs. *)

open Wlcq_graph

type formula =
  | True
  | Edge of int * int  (** [E(x_i, x_j)] *)
  | Eq of int * int  (** [x_i = x_j] *)
  | Not of formula
  | And of formula list
  | Or of formula list
  | Count_geq of int * int * formula
      (** [Count_geq (n, i, phi)] is [∃^{≥n} x_i . phi] *)

(** [exists i phi] is [∃ x_i . phi] ([∃^{≥1}]). *)
val exists : int -> formula -> formula

(** [forall i phi] is [∀ x_i . phi] ([¬∃ ¬]). *)
val forall : int -> formula -> formula

(** [count_eq n i phi] is [∃^{=n} x_i . phi]. *)
val count_eq : int -> int -> formula -> formula

(** [variable_width phi] is the number of distinct variable indices in
    [phi]. *)
val variable_width : formula -> int

(** [free_variables phi] lists the free variable indices, sorted. *)
val free_variables : formula -> int list

(** [eval phi g env] model-checks [phi] in [g]; [env] maps variable
    indices to vertices (only free indices are read).
    @raise Invalid_argument when a free variable is unbound (mapped to
    [-1]) or out of range. *)
val eval : formula -> Graph.t -> int array -> bool

(** [holds phi g] evaluates a sentence (no free variables). *)
val holds : formula -> Graph.t -> bool

(** [distinguishes phi g1 g2] tests whether the sentence [phi] holds
    in exactly one of the two graphs. *)
val distinguishes : formula -> Graph.t -> Graph.t -> bool

(** Canned sentences used in the experiments. *)

(** [has_triangle] — a 3-variable sentence: some triangle exists. *)
val has_triangle : formula

(** [min_degree_geq d] — a 2-variable [C^2] sentence:
    [∀x ∃^{≥d} y . E(x,y)]. *)
val min_degree_geq : int -> formula

(** [regular d] — a 2-variable [C^2] sentence: every vertex has degree
    exactly [d]. *)
val regular : int -> formula

(** [num_vertices_geq n] — a 1-variable sentence: [∃^{≥n} x . true]. *)
val num_vertices_geq : int -> formula

(** [has_path3] — a 3-variable sentence: a path on 3 distinct
    vertices exists. *)
val has_path3 : formula

(** [vertex_on_triangle_count_geq n] — a 3-variable [C^3] sentence:
    at least [n] vertices lie on a triangle. *)
val vertex_on_triangle_count_geq : int -> formula
