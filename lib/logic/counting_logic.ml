open Wlcq_graph

type formula =
  | True
  | Edge of int * int
  | Eq of int * int
  | Not of formula
  | And of formula list
  | Or of formula list
  | Count_geq of int * int * formula

let exists i phi = Count_geq (1, i, phi)
let forall i phi = Not (Count_geq (1, i, Not phi))

let count_eq n i phi =
  And [ Count_geq (n, i, phi); Not (Count_geq (n + 1, i, phi)) ]

let rec variables = function
  | True -> []
  | Edge (i, j) | Eq (i, j) -> [ i; j ]
  | Not phi -> variables phi
  | And phis | Or phis -> List.concat_map variables phis
  | Count_geq (_, i, phi) -> i :: variables phi

let variable_width phi = List.length (List.sort_uniq Int.compare (variables phi))

let rec free = function
  | True -> []
  | Edge (i, j) | Eq (i, j) -> [ i; j ]
  | Not phi -> free phi
  | And phis | Or phis -> List.concat_map free phis
  | Count_geq (_, i, phi) -> List.filter (fun j -> j <> i) (free phi)

let free_variables phi = List.sort_uniq Int.compare (free phi)

let rec eval phi g env =
  match phi with
  | True -> true
  | Edge (i, j) ->
    let u = env.(i) and v = env.(j) in
    if u < 0 || v < 0 then invalid_arg "Counting_logic.eval: unbound variable";
    Graph.adjacent g u v
  | Eq (i, j) ->
    let u = env.(i) and v = env.(j) in
    if u < 0 || v < 0 then invalid_arg "Counting_logic.eval: unbound variable";
    u = v
  | Not phi -> not (eval phi g env)
  | And phis -> List.for_all (fun p -> eval p g env) phis
  | Or phis -> List.exists (fun p -> eval p g env) phis
  | Count_geq (n, i, body) ->
    let saved = env.(i) in
    let count = ref 0 in
    let nv = Graph.num_vertices g in
    let v = ref 0 in
    while !count < n && !v < nv do
      env.(i) <- !v;
      if eval body g env then incr count;
      incr v
    done;
    env.(i) <- saved;
    !count >= n

let holds phi g =
  (match free_variables phi with
   | [] -> ()
   | _ -> invalid_arg "Counting_logic.holds: sentence expected");
  let width = 1 + List.fold_left max (-1) (variables phi) in
  eval phi g (Array.make (max 1 width) (-1))

let distinguishes phi g1 g2 = holds phi g1 <> holds phi g2

(* ------------------------------------------------------------------ *)
(* Canned sentences                                                    *)
(* ------------------------------------------------------------------ *)

let triangle_at_0 =
  exists 1 (And [ Edge (0, 1); exists 2 (And [ Edge (0, 2); Edge (1, 2) ]) ])

let has_triangle = exists 0 triangle_at_0

let min_degree_geq d = forall 0 (Count_geq (d, 1, Edge (0, 1)))

let regular d = forall 0 (count_eq d 1 (Edge (0, 1)))

let num_vertices_geq n = Count_geq (n, 0, True)

let has_path3 =
  exists 0
    (exists 1
       (And
          [ Edge (0, 1);
            exists 2
              (And [ Edge (1, 2); Not (Eq (0, 2)) ]) ]))

let vertex_on_triangle_count_geq n = Count_geq (n, 0, triangle_at_0)
