(* Monomorphic comparison and hashing combinators.

   The lint pass (tools/lint, rule R1) bans polymorphic [=], [compare]
   and [Hashtbl.hash] on structured values; this module supplies the
   sanctioned building blocks.  Everything here is total and
   allocation-free except where the underlying structure forces it. *)

let pair ca cb (a1, b1) (a2, b2) =
  let c = ca a1 a2 in
  if c <> 0 then c else cb b1 b2

let triple ca cb cc (a1, b1, c1) (a2, b2, c2) =
  let c = ca a1 a2 in
  if c <> 0 then c
  else
    let c = cb b1 b2 in
    if c <> 0 then c else cc c1 c2

let array cmp a1 a2 =
  let n1 = Array.length a1 and n2 = Array.length a2 in
  let c = Int.compare n1 n2 in
  if c <> 0 then c
  else
    (* lint: allow R7 one bounded pass over two equal-length arrays;
       budgeted callers only reach it through the canonicaliser's
       node-budgeted search *)
    let rec go i =
      if i = n1 then 0
      else
        let c = cmp a1.(i) a2.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let int_pair p1 p2 = pair Int.compare Int.compare p1 p2
let int_triple t1 t2 = triple Int.compare Int.compare Int.compare t1 t2
let int_list l1 l2 = List.compare Int.compare l1 l2
let int_array a1 a2 = array Int.compare a1 a2

let equal_pair ea eb (a1, b1) (a2, b2) = ea a1 a2 && eb b1 b2

let equal_array eq a1 a2 =
  Array.length a1 = Array.length a2 && Array.for_all2 eq a1 a2

(* SplitMix-style mixer, same constants as the WL signature hashing in
   [Wlcq_wl.Kwl]; results stay non-negative for Hashtbl use. *)
let hash_mix h x =
  let h = (h lxor x) * 0x9E3779B97F4A7C1 in
  let h = h lxor (h lsr 29) in
  (h * 0xBF58476D1CE4E5B) land max_int

let hash_int x = hash_mix 0x27220A95 x
let hash_int_pair (a, b) = hash_mix (hash_mix 0x27220A95 a) b

let hash_int_list l =
  List.fold_left (fun h x -> hash_mix h x) (hash_mix 0x27220A95 7) l

let hash_int_array a =
  Array.fold_left (fun h x -> hash_mix h x) (hash_mix 0x27220A95 11) a

let hash_fold = hash_mix

module Int_pair_tbl = Hashtbl.Make (struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = Int.equal a1 a2 && Int.equal b1 b2
  let hash = hash_int_pair
end)

module Int_list_tbl = Hashtbl.Make (struct
  type t = int list

  let equal l1 l2 = List.equal Int.equal l1 l2
  let hash = hash_int_list
end)

module Int_tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = hash_int
end)

module Int_array_tbl = Hashtbl.Make (struct
  type t = int array

  let equal a b = equal_array Int.equal a b
  let hash = hash_int_array
end)
