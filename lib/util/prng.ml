(* SplitMix64 (Steele, Lea, Flood 2014): tiny state, good statistical
   quality, and trivially splittable — ideal for reproducible
   experiments. *)

type t = {
  (* lint: domain-local a generator belongs to the domain that created
     it; parallel code splits via [copy]/[create] instead of sharing *)
  mutable state : int64;
}

let gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state gamma;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: non-positive bound";
  (* rejection-free for our purposes: 62 random bits mod bound; the
     bias is < bound / 2^62, negligible for experiment sizes. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let bool t = Int64.logand (next t) 1L = 1L

let float t =
  let v = Int64.to_int (Int64.shift_right_logical (next t) 11) in
  float_of_int v /. 9007199254740992.0 (* 2^53 *)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = { state = mix (next t) }
