(** Exact linear algebra over {!Rat}.

    Drives the interpolation arguments of the paper: Lemma 22 and
    Observation 23 recover conjunctive-query answer counts from
    homomorphism counts by solving (Vandermonde-shaped) linear systems,
    and Lemma 40 uses multivariate polynomial interpolation.  All
    solves here are exact — no floating point. *)

type matrix = Rat.t array array

(** [solve a b] solves [a x = b] for a square, invertible [a] using
    Gaussian elimination with exact pivoting.
    @raise Failure when [a] is singular or dimensions mismatch. *)
val solve : matrix -> Rat.t array -> Rat.t array

(** [rank a] is the rank of [a]. *)
val rank : matrix -> int

(** [determinant a] is the determinant of the square matrix [a]. *)
val determinant : matrix -> Rat.t

(** [vandermonde_solve xs b] solves for coefficients [c] such that for
    every row [i], [sum_j c.(j) * xs.(j) ^ (i+1) = b.(i)].  This is
    exactly the system of Lemma 22 (equations indexed by the copy
    count [ℓ = i+1], unknowns indexed by extension-class sizes
    [xs.(j)]).  The [xs] must be pairwise distinct and non-zero.
    @raise Failure on repeated or zero nodes. *)
val vandermonde_solve : Bigint.t array -> Bigint.t array -> Rat.t array

(** [mat_vec a x] is the matrix-vector product. *)
val mat_vec : matrix -> Rat.t array -> Rat.t array
