type matrix = Rat.t array array

let dims a =
  let m = Array.length a in
  let n = if m = 0 then 0 else Array.length a.(0) in
  Array.iter
    (fun row ->
       if Array.length row <> n then failwith "Linalg.dims: ragged matrix")
    a;
  (m, n)

let copy_matrix a = Array.map Array.copy a

(* Forward elimination with partial (first non-zero) pivoting; returns
   the echelon form, the permutation sign, and the pivot columns. *)
let echelon a =
  let a = copy_matrix a in
  let m, n = dims a in
  let sign = ref 1 in
  let pivots = ref [] in
  let row = ref 0 in
  let col = ref 0 in
  while !row < m && !col < n do
    (* find pivot in column !col at or below !row *)
    let p = ref (-1) in
    (try
       for i = !row to m - 1 do
         if not (Rat.is_zero a.(i).(!col)) then (p := i; raise Exit)
       done
     with Exit -> ());
    if !p < 0 then incr col
    else begin
      if !p <> !row then begin
        let tmp = a.(!p) in
        a.(!p) <- a.(!row);
        a.(!row) <- tmp;
        sign := - !sign
      end;
      pivots := (!row, !col) :: !pivots;
      for i = !row + 1 to m - 1 do
        if not (Rat.is_zero a.(i).(!col)) then begin
          let f = Rat.div a.(i).(!col) a.(!row).(!col) in
          for j = !col to n - 1 do
            a.(i).(j) <- Rat.sub a.(i).(j) (Rat.mul f a.(!row).(j))
          done
        end
      done;
      incr row;
      incr col
    end
  done;
  (a, !sign, List.rev !pivots)

let rank a =
  let _, _, pivots = echelon a in
  List.length pivots

let determinant a =
  let m, n = dims a in
  if m <> n then failwith "Linalg.determinant: non-square matrix";
  let e, sign, pivots = echelon a in
  if List.length pivots < n then Rat.zero
  else begin
    let d = ref (Rat.of_int sign) in
    for i = 0 to n - 1 do d := Rat.mul !d e.(i).(i) done;
    !d
  end

let solve a b =
  let m, n = dims a in
  if m <> n then failwith "Linalg.solve: non-square matrix";
  if Array.length b <> m then failwith "Linalg.solve: dimension mismatch";
  (* Augment, eliminate, back-substitute. *)
  let aug = Array.init m (fun i -> Array.append (Array.copy a.(i)) [| b.(i) |]) in
  let e, _, pivots = echelon aug in
  if List.length pivots < n
     || List.exists (fun (_, c) -> c >= n) pivots then
    failwith "Linalg.solve: singular matrix";
  let x = Array.make n Rat.zero in
  for i = n - 1 downto 0 do
    let s = ref e.(i).(n) in
    for j = i + 1 to n - 1 do
      s := Rat.sub !s (Rat.mul e.(i).(j) x.(j))
    done;
    x.(i) <- Rat.div !s e.(i).(i)
  done;
  x

let mat_vec a x =
  Array.map
    (fun row ->
       let s = ref Rat.zero in
       Array.iteri (fun j v -> s := Rat.add !s (Rat.mul v x.(j))) row;
       !s)
    a

let vandermonde_solve xs b =
  let n = Array.length xs in
  if Array.length b <> n then
    failwith "Linalg.vandermonde_solve: dimension mismatch";
  Array.iteri
    (fun i x ->
       if Bigint.is_zero x then
         failwith "Linalg.vandermonde_solve: zero node";
       for j = 0 to i - 1 do
         if Bigint.equal x xs.(j) then
           failwith "Linalg.vandermonde_solve: repeated node"
       done)
    xs;
  (* Row i corresponds to exponent ℓ = i+1: a.(i).(j) = xs.(j)^(i+1). *)
  let a =
    Array.init n (fun i ->
        Array.init n (fun j -> Rat.of_bigint (Bigint.pow xs.(j) (i + 1))))
  in
  solve a (Array.map Rat.of_bigint b)
