type t = int array

let identity n = Array.init n (fun i -> i)

let is_permutation a =
  let n = Array.length a in
  let seen = Array.make n false in
  let ok = ref true in
  Array.iter
    (fun x ->
       if x < 0 || x >= n || seen.(x) then ok := false else seen.(x) <- true)
    a;
  !ok

let compose p q =
  if Array.length p <> Array.length q then
    invalid_arg "Perm.compose: size mismatch";
  Array.map (fun i -> p.(i)) q

let inverse p =
  let n = Array.length p in
  let inv = Array.make n 0 in
  Array.iteri (fun i x -> inv.(x) <- i) p;
  inv

let apply p i =
  if i < 0 || i >= Array.length p then invalid_arg "Perm.apply: out of range";
  p.(i)

(* Heap's algorithm, iterative over a working copy. *)
let iter_all n f =
  let a = Array.init n (fun i -> i) in
  let c = Array.make n 0 in
  f a;
  let i = ref 0 in
  while !i < n do
    if c.(!i) < !i then begin
      let j = if !i mod 2 = 0 then 0 else c.(!i) in
      let tmp = a.(j) in
      a.(j) <- a.(!i);
      a.(!i) <- tmp;
      f a;
      c.(!i) <- c.(!i) + 1;
      i := 0
    end
    else begin
      c.(!i) <- 0;
      incr i
    end
  done

let all n =
  let acc = ref [] in
  iter_all n (fun p -> acc := Array.copy p :: !acc);
  List.rev !acc

let equal (a : t) (b : t) = a = b

let pp ppf p =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       Format.pp_print_int)
    (Array.to_list p)
