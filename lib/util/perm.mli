(** Permutations of [0 .. n-1], represented as arrays mapping index to
    image.  Used for query automorphisms (Definition 42), the
    [Bij(X)] sums of Section 4.3, and isomorphism search. *)

type t = int array

(** [identity n] is the identity permutation on [0 .. n-1]. *)
val identity : int -> t

(** [is_permutation a] checks that [a] is a bijection of its index set. *)
val is_permutation : t -> bool

(** [compose p q] is the permutation [i ↦ p.(q.(i))]. *)
val compose : t -> t -> t

(** [inverse p] is the inverse permutation. *)
val inverse : t -> t

(** [apply p i] is [p.(i)] with a bounds check. *)
val apply : t -> int -> int

(** [all n] enumerates all [n!] permutations of [0 .. n-1] (intended
    for small [n]). *)
val all : int -> t list

(** [iter_all n f] applies [f] to each permutation of [0 .. n-1]; the
    array passed to [f] is reused and must not be stashed. *)
val iter_all : int -> (t -> unit) -> unit

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
