(* Packed bitsets: 62 bits per word keeps all shifts well inside the
   63-bit native int range on 64-bit platforms. *)

let bits_per_word = 62

type t = { n : int; words : int array }

let nwords n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { n; words = Array.make (max 1 (nwords n)) 0 }

let capacity s = s.n

let copy s = { n = s.n; words = Array.copy s.words }

let check s i =
  if i < 0 || i >= s.n then invalid_arg "Bitset.check: index out of range"

let mem s i =
  check s i;
  s.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let set s i =
  check s i;
  let w = i / bits_per_word in
  s.words.(w) <- s.words.(w) lor (1 lsl (i mod bits_per_word))

let clear s i =
  check s i;
  let w = i / bits_per_word in
  s.words.(w) <- s.words.(w) land lnot (1 lsl (i mod bits_per_word))

let add s i = let s' = copy s in set s' i; s'
let remove s i = let s' = copy s in clear s' i; s'

let singleton n i = let s = create n in set s i; s

(* Mask of valid bits in the last word, so [complement] and [full] never
   set bits beyond the universe. *)
let last_mask n =
  let r = n mod bits_per_word in
  if r = 0 && n > 0 then -1 lsr (63 - bits_per_word)
  else (1 lsl r) - 1

let full n =
  let s = create n in
  if n > 0 then begin
    let k = nwords n in
    for w = 0 to k - 2 do s.words.(w) <- -1 lsr (63 - bits_per_word) done;
    s.words.(k - 1) <- last_mask n
  end;
  s

let of_list n xs = let s = create n in List.iter (set s) xs; s

let same_capacity a b =
  if a.n <> b.n then invalid_arg "Bitset.same_capacity: capacity mismatch"

let map2 f a b =
  same_capacity a b;
  let words = Array.init (Array.length a.words)
      (fun i -> f a.words.(i) b.words.(i)) in
  { n = a.n; words }

let union a b = map2 (lor) a b
let inter a b = map2 (land) a b
let diff a b = map2 (fun x y -> x land lnot y) a b
let symdiff a b = map2 (lxor) a b

let complement s =
  let s' = full s.n in
  { n = s.n;
    words = Array.init (Array.length s.words)
        (fun i -> s'.words.(i) land lnot s.words.(i)) }

let subset a b =
  same_capacity a b;
  let ok = ref true in
  Array.iteri (fun i w -> if w land lnot b.words.(i) <> 0 then ok := false)
    a.words;
  !ok

let disjoint a b =
  same_capacity a b;
  let ok = ref true in
  Array.iteri (fun i w -> if w land b.words.(i) <> 0 then ok := false) a.words;
  !ok

let equal a b = a.n = b.n && a.words = b.words

(* lint: allow R7 a single bounded comparison of two word arrays;
   budgeted callers only reach it through the canonicaliser's
   node-budgeted search *)
let compare a b =
  let c = Stdlib.compare a.n b.n in
  if c <> 0 then c else Stdlib.compare a.words b.words

let popcount w =
  (* lint: allow R7 at most one iteration per set bit of one word *)
  let rec go acc w = if w = 0 then acc else go (acc + 1) (w land (w - 1)) in
  go 0 w

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words

let is_empty s = Array.for_all (fun w -> w = 0) s.words

let iter f s =
  (* lint: allow R7 one iteration per word of the set *)
  for w = 0 to Array.length s.words - 1 do
    let word = ref s.words.(w) in
    (* lint: allow R7 clears one set bit per iteration, so at most
       word-size iterations *)
    while !word <> 0 do
      (* lowest set bit *)
      let b = !word land (- !word) in
      (* lint: allow R7 halves the word each step, at most word-size *)
      let rec log2 b i = if b = 1 then i else log2 (b lsr 1) (i + 1) in
      f ((w * bits_per_word) + log2 b 0);
      word := !word land lnot b
    done
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let to_list s = List.rev (fold (fun i acc -> i :: acc) s [])

exception Early_exit

let for_all p s =
  try iter (fun i -> if not (p i) then raise Early_exit) s; true
  with Early_exit -> false

let exists p s =
  try iter (fun i -> if p i then raise Early_exit) s; false
  with Early_exit -> true

let choose s =
  let r = ref (-1) in
  (try iter (fun i -> r := i; raise Early_exit) s with Early_exit -> ());
  if !r < 0 then raise Not_found else !r

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (to_list s)

let hash s = Array.fold_left Ordering.hash_mix (Ordering.hash_int s.n) s.words
