(** Arbitrary-precision signed integers.

    The sealed build environment has no [zarith]; answer counts and the
    Vandermonde systems of Lemma 22 overflow native integers, so this
    module provides a from-scratch implementation.  Magnitudes are
    little-endian limb arrays in base 10^9 (which makes decimal
    printing trivial and keeps products of limbs inside the native
    63-bit range). *)

type t

val zero : t
val one : t
val two : t
val minus_one : t

val of_int : int -> t

(** [of_string s] parses an optionally ['-']-prefixed decimal numeral.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

val to_string : t -> string

(** [to_int_opt x] is [Some n] when [x] fits in a native [int]. *)
val to_int_opt : t -> int option

(** [sign x] is [-1], [0] or [1]. *)
val sign : t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [divmod a b] is [(q, r)] with [a = q*b + r], [0 <= |r| < |b|], and
    [r] carrying the sign of [a] (truncated division, as [Stdlib.(/)]).
    @raise Division_by_zero when [b] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [pow x k] is [x] raised to the non-negative power [k].
    @raise Invalid_argument when [k < 0]. *)
val pow : t -> int -> t

(** [gcd a b] is the non-negative greatest common divisor. *)
val gcd : t -> t -> t

(** [factorial k] is [k!].
    @raise Invalid_argument when [k < 0]. *)
val factorial : int -> t

(** [binomial n k] is the binomial coefficient [C(n, k)] ([zero] when
    [k < 0] or [k > n]). *)
val binomial : int -> int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val min : t -> t -> t
val max : t -> t -> t

val succ : t -> t
val pred : t -> t

val pp : Format.formatter -> t -> unit
val hash : t -> int

(** Infix aliases: [a + b], [a - b], [a * b], [a / b]. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
