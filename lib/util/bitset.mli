(** Packed bitsets over the universe [0 .. capacity-1].

    A bitset is backed by an [int array] with 62 usable bits per word.
    Mutating operations ([set], [clear]) are provided for construction;
    all set-algebra operations ([union], [inter], [diff], ...) are
    functional and return fresh bitsets.  Two bitsets may only be
    combined when they have the same capacity. *)

type t

(** [create n] is the empty set over universe [0 .. n-1]. *)
val create : int -> t

(** [capacity s] is the size of the universe of [s]. *)
val capacity : t -> int

(** [copy s] is a fresh bitset equal to [s]. *)
val copy : t -> t

(** [mem s i] tests membership.  Raises [Invalid_argument] when [i] is
    outside the universe. *)
val mem : t -> int -> bool

(** [set s i] adds [i] to [s] in place. *)
val set : t -> int -> unit

(** [clear s i] removes [i] from [s] in place. *)
val clear : t -> int -> unit

(** [add s i] is a fresh copy of [s] with [i] added. *)
val add : t -> int -> t

(** [remove s i] is a fresh copy of [s] with [i] removed. *)
val remove : t -> int -> t

(** [singleton n i] is [{i}] over universe [0 .. n-1]. *)
val singleton : int -> int -> t

(** [full n] is the whole universe [0 .. n-1]. *)
val full : int -> t

(** [of_list n xs] is the set of elements of [xs] over [0 .. n-1]. *)
val of_list : int -> int list -> t

(** [to_list s] lists the members of [s] in increasing order. *)
val to_list : t -> int list

(** [cardinal s] is the number of members of [s]. *)
val cardinal : t -> int

(** [is_empty s] tests emptiness. *)
val is_empty : t -> bool

val union : t -> t -> t
val inter : t -> t -> t

(** [diff a b] is [a \ b]. *)
val diff : t -> t -> t

(** [symdiff a b] is the symmetric difference [a ⊕ b]. *)
val symdiff : t -> t -> t

(** [complement s] is the universe minus [s]. *)
val complement : t -> t

(** [subset a b] tests [a ⊆ b]. *)
val subset : t -> t -> bool

(** [disjoint a b] tests [a ∩ b = ∅]. *)
val disjoint : t -> t -> bool

val equal : t -> t -> bool

(** Total order compatible with [equal]; lexicographic on words. *)
val compare : t -> t -> int

(** [iter f s] applies [f] to every member in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [fold f s init] folds over members in increasing order. *)
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [for_all p s] tests whether all members satisfy [p]. *)
val for_all : (int -> bool) -> t -> bool

(** [exists p s] tests whether some member satisfies [p]. *)
val exists : (int -> bool) -> t -> bool

(** [choose s] is the smallest member of [s].
    @raise Not_found when [s] is empty. *)
val choose : t -> int

(** [pp] prints as [{1, 4, 7}]. *)
val pp : Format.formatter -> t -> unit

(** [hash s] is a hash compatible with [equal]. *)
val hash : t -> int
