(** Monomorphic comparison and hashing combinators.

    The static-analysis pass ([tools/lint], rule R1) bans polymorphic
    [=], [compare] and [Hashtbl.hash] on structured values; this module
    supplies the sanctioned replacements: explicit comparators built
    from [Int.compare]/[String.compare] and friends, mixers for writing
    [equal]-compatible hash functions, and keyed hashtables for the two
    structured key shapes the codebase uses most. *)

(** [pair ca cb] compares pairs lexicographically. *)
val pair : ('a -> 'a -> int) -> ('b -> 'b -> int) -> 'a * 'b -> 'a * 'b -> int

(** [triple ca cb cc] compares triples lexicographically. *)
val triple :
  ('a -> 'a -> int) ->
  ('b -> 'b -> int) ->
  ('c -> 'c -> int) ->
  'a * 'b * 'c ->
  'a * 'b * 'c ->
  int

(** [array cmp] orders arrays by length, then lexicographically. *)
val array : ('a -> 'a -> int) -> 'a array -> 'a array -> int

val int_pair : int * int -> int * int -> int
val int_triple : int * int * int -> int * int * int -> int
val int_list : int list -> int list -> int
val int_array : int array -> int array -> int
val equal_pair : ('a -> 'a -> bool) -> ('b -> 'b -> bool) -> 'a * 'b -> 'a * 'b -> bool
val equal_array : ('a -> 'a -> bool) -> 'a array -> 'a array -> bool

(** [hash_mix h x] folds [x] into the running hash [h] (SplitMix-style
    finaliser; the result is non-negative). *)
val hash_mix : int -> int -> int

(** [hash_fold] is {!hash_mix}, named for folding idioms. *)
val hash_fold : int -> int -> int

val hash_int : int -> int
val hash_int_pair : int * int -> int
val hash_int_list : int list -> int
val hash_int_array : int array -> int

(** Hashtables keyed on [int * int] with monomorphic equality/hashing. *)
module Int_pair_tbl : Hashtbl.S with type key = int * int

(** Hashtables keyed on [int list] with monomorphic equality/hashing. *)
module Int_list_tbl : Hashtbl.S with type key = int list

(** Hashtables keyed on [int] with the mixed (avalanching) {!hash_int},
    for keys that are themselves hash-like (e.g. packed DP keys). *)
module Int_tbl : Hashtbl.S with type key = int

(** Hashtables keyed on [int array] with monomorphic equality/hashing.
    Equality is structural per element, so lookups never depend on the
    hash being collision-free. *)
module Int_array_tbl : Hashtbl.S with type key = int array
