(** Exact rational arithmetic over {!Bigint}.

    Values are kept normalised: the denominator is positive and the
    numerator and denominator are coprime.  Used by {!Linalg} for the
    exact Vandermonde / Gaussian-elimination solves of Lemma 22 and
    Observation 23. *)

type t = private { num : Bigint.t; den : Bigint.t }

val zero : t
val one : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is the normalised rational [num/den].
    @raise Division_by_zero when [den] is zero. *)

val of_int : int -> t
val of_bigint : Bigint.t -> t

val of_ints : int -> int -> t
(** [of_ints a b] is [a/b]. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val inv : t -> t
val abs : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val sign : t -> int

val is_integer : t -> bool

val to_bigint_opt : t -> Bigint.t option
(** [to_bigint_opt q] is [Some n] when [q] is the integer [n]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
end
