(** Combinatorial enumeration helpers.

    Used throughout: subsets for CFI vertices (Definition 25), set
    partitions for the injective-answer inclusion–exclusion of
    Corollary 68, k-subsets for dominating sets, and tuple spaces for
    the k-WL algorithm. *)

(** [subsets xs] is all subsets of [xs] as lists, in binary-counter
    order (the first is [[]]). *)
val subsets : 'a list -> 'a list list

(** [subsets_of_size k xs] is all k-element subsets of [xs]. *)
val subsets_of_size : int -> 'a list -> 'a list list

(** [iter_subsets_of_size k n f] calls [f] on every sorted k-subset of
    [0 .. n-1]; the array is reused between calls. *)
val iter_subsets_of_size : int -> int -> (int array -> unit) -> unit

(** [partitions xs] is all set partitions of [xs] (Bell-number many;
    intended for small inputs). *)
val partitions : 'a list -> 'a list list list

(** [iter_tuples n k f] calls [f] on every length-[k] tuple over
    [0 .. n-1] (n^k of them); the array is reused between calls. *)
val iter_tuples : int -> int -> (int array -> unit) -> unit

(** [iter_functions dom_size cod_size f] is [iter_tuples cod_size
    dom_size f] — every function from a [dom_size]-element domain to a
    [cod_size]-element codomain, as an array indexed by the domain. *)
val iter_functions : int -> int -> (int array -> unit) -> unit

(** [range n] is [[0; 1; ...; n-1]]. *)
val range : int -> int list

(** [cartesian xss] is the cartesian product of a list of lists. *)
val cartesian : 'a list list -> 'a list list
