(** Deterministic pseudo-random numbers (SplitMix64).

    All randomised experiments and property tests in this repository
    seed their own generator so that every table in [bench/main.ml] and
    every qcheck counterexample is reproducible. *)

type t

(** [create seed] is a fresh generator. *)
val create : int -> t

(** [copy t] duplicates the generator state. *)
val copy : t -> t

(** [next t] is the next raw 64-bit value (as an [int64]). *)
val next : t -> int64

(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument when [bound <= 0]. *)
val int : t -> int -> int

(** [bool t] is a uniform boolean. *)
val bool : t -> bool

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [split t] derives an independent generator. *)
val split : t -> t
