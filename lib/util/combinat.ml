let range n = List.init n (fun i -> i)

let subsets xs =
  List.fold_left
    (fun acc x -> acc @ List.map (fun s -> s @ [ x ]) acc)
    [ [] ] xs

let rec subsets_of_size k xs =
  if k = 0 then [ [] ]
  else
    match xs with
    | [] -> []
    | x :: rest ->
      List.map (fun s -> x :: s) (subsets_of_size (k - 1) rest)
      @ subsets_of_size k rest

let iter_subsets_of_size k n f =
  if k = 0 then f [||]
  else if k <= n then begin
    let a = Array.init k (fun i -> i) in
    let rec next () =
      f a;
      (* advance the rightmost index that can move *)
      let i = ref (k - 1) in
      while !i >= 0 && a.(!i) = n - k + !i do decr i done;
      if !i >= 0 then begin
        a.(!i) <- a.(!i) + 1;
        for j = !i + 1 to k - 1 do a.(j) <- a.(j - 1) + 1 done;
        next ()
      end
    in
    next ()
  end

let rec partitions = function
  | [] -> [ [] ]
  | x :: rest ->
    let sub = partitions rest in
    List.concat_map
      (fun part ->
         (* x as its own block, or added to each existing block *)
         ([ x ] :: part)
         :: List.mapi
           (fun i block ->
              List.mapi (fun j b -> if i = j then x :: block else b) part)
           part)
      sub

let iter_tuples n k f =
  if k = 0 then f [||]
  else if n > 0 then begin
    let a = Array.make k 0 in
    let rec go pos =
      if pos = k then f a
      else
        for v = 0 to n - 1 do
          a.(pos) <- v;
          go (pos + 1)
        done
    in
    go 0
  end

let iter_functions dom_size cod_size f = iter_tuples cod_size dom_size f

let cartesian xss =
  List.fold_right
    (fun xs acc ->
       List.concat_map (fun x -> List.map (fun rest -> x :: rest) acc) xs)
    xss [ [] ]
