(** Overflow-checked counter arithmetic — the int63 fast path of the
    counting DPs.

    A value is either an immediate native int ([Small]) or an
    arbitrary-precision {!Bigint} ([Big]).  [add] and [mul] stay on the
    native representation as long as an explicit overflow check passes
    and promote to [Big] otherwise, so DP tables pay the Bigint
    allocation cost only on the (rare) entries that actually need it.

    The representation is exposed so the engines can count promotions
    for their metrics; construct values with {!of_int}/{!of_bigint}
    rather than the constructors. *)

type t = Small of int | Big of Bigint.t

val zero : t
val one : t
val of_int : int -> t

(** [of_bigint b] normalises: values that fit a native int come back
    as [Small]. *)
val of_bigint : Bigint.t -> t

val to_bigint : t -> Bigint.t
val is_zero : t -> bool

(** [is_small c] is true on the unpromoted representation — the
    engines' int63-vs-Bigint promotion metrics are derived from it. *)
val is_small : t -> bool

(** [add a b] / [mul a b]: exact; native-int fast path with an
    overflow check, Bigint otherwise. *)
val add : t -> t -> t

val mul : t -> t -> t
val equal : t -> t -> bool

(** Total order compatible with {!equal} (numeric order). *)
val compare : t -> t -> int

val to_string : t -> string
val pp : Format.formatter -> t -> unit
