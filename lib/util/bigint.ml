(* Sign/magnitude representation; magnitude is a little-endian array of
   base-10^9 limbs with no trailing zero limb.  Zero is [{ sign = 0;
   mag = [||] }]. *)

let base = 1_000_000_000
let base_digits = 9

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let len = ref (Array.length mag) in
  while !len > 0 && mag.(!len - 1) = 0 do decr len done;
  if !len = 0 then zero
  else if !len = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !len }

(* Single-limb values below this bound are shared from a preallocated
   table: the counting DPs promote small ints to Bigint at every table
   boundary, and the per-call list+array allocation of the general path
   dominates tiny-instance runs. *)
let small_cache_limit = 1024

(* lint: domain-local immutable Bigint values built at module load and
   only ever read afterwards *)
let small_cache =
  Array.init small_cache_limit (fun n ->
      if n = 0 then zero else { sign = 1; mag = [| n |] })

let of_int n =
  if n >= 0 && n < small_cache_limit then small_cache.(n)
  else begin
    let sign = if n > 0 then 1 else -1 in
    (* min_int negation is safe limb-by-limb via mod on the running
       value, using the absolute value of each remainder. *)
    (* lint: allow R7 bounded by the limb count of a native int *)
    let rec limbs n acc =
      if n = 0 then List.rev acc
      else limbs (n / base) (Stdlib.abs (n mod base) :: acc)
    in
    { sign; mag = Array.of_list (limbs n []) }
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let sign x = x.sign
let is_zero x = x.sign = 0

let neg x = if x.sign = 0 then x else { x with sign = - x.sign }
let abs x = if x.sign < 0 then neg x else x

(* Magnitude comparison: -1, 0, 1. *)
let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then cmp_mag a.mag b.mag
  else cmp_mag b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let l = Stdlib.max la lb in
  let r = Array.make (l + 1) 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let s = (if i < la then a.(i) else 0)
            + (if i < lb then b.(i) else 0) + !carry in
    if s >= base then (r.(i) <- s - base; carry := 1)
    else (r.(i) <- s; carry := 0)
  done;
  r.(l) <- !carry;
  r

(* Requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then (r.(i) <- s + base; borrow := 1)
    else (r.(i) <- s; borrow := 0)
  done;
  assert (!borrow = 0);
  r

let rec add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else
    match cmp_mag a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> normalize a.sign (sub_mag a.mag b.mag)
    | _ -> normalize b.sign (sub_mag b.mag a.mag)

and sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else begin
    let la = Array.length a.mag and lb = Array.length b.mag in
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.mag.(i) in
      for j = 0 to lb - 1 do
        let cur = r.(i + j) + (ai * b.mag.(j)) + !carry in
        r.(i + j) <- cur mod base;
        carry := cur / base
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let cur = r.(!k) + !carry in
        r.(!k) <- cur mod base;
        carry := cur / base;
        incr k
      done
    done;
    normalize (a.sign * b.sign) r
  end

(* Multiply a magnitude by a small non-negative int (< base). *)
let mul_mag_small a d =
  if d = 0 then [||]
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let cur = (a.(i) * d) + !carry in
      r.(i) <- cur mod base;
      carry := cur / base
    done;
    r.(la) <- !carry;
    r
  end

(* Long division of magnitudes: processes limbs of [a] from most
   significant, maintaining the running remainder as a magnitude and
   finding each quotient limb by binary search over [0, base).  The
   numbers in this code base stay within a few hundred limbs, for which
   this O(limbs^2 log base) schoolbook scheme is ample. *)
let divmod_mag a b =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref [||] in
  let shift_in rem d =
    (* rem * base + d *)
    let lr = Array.length rem in
    if lr = 0 && d = 0 then [||]
    else begin
      let out = Array.make (lr + 1) 0 in
      out.(0) <- d;
      Array.blit rem 0 out 1 lr;
      (* strip possible leading zero *)
      let len = ref (lr + 1) in
      while !len > 0 && out.(!len - 1) = 0 do decr len done;
      Array.sub out 0 !len
    end
  in
  for i = la - 1 downto 0 do
    r := shift_in !r a.(i);
    (* binary search for the largest d with d*b <= r *)
    let lo = ref 0 and hi = ref (base - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      let prod = mul_mag_small b mid in
      if cmp_mag (normalize 1 prod).mag !r <= 0 then lo := mid
      else hi := mid - 1
    done;
    q.(i) <- !lo;
    if !lo > 0 then
      r := (normalize 1 (sub_mag !r (normalize 1 (mul_mag_small b !lo)).mag)).mag
  done;
  (q, !r)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else if cmp_mag a.mag b.mag < 0 then (zero, a)
  else begin
    let q_mag, r_mag = divmod_mag a.mag b.mag in
    let q = normalize (a.sign * b.sign) q_mag in
    let r = normalize a.sign r_mag in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec pow x k =
  if k < 0 then invalid_arg "Bigint.pow: negative exponent"
  else if k = 0 then one
  else begin
    let h = pow x (k / 2) in
    let h2 = mul h h in
    if k mod 2 = 0 then h2 else mul h2 x
  end

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

let factorial k =
  if k < 0 then invalid_arg "Bigint.factorial: negative argument";
  let acc = ref one in
  for i = 2 to k do acc := mul !acc (of_int i) done;
  !acc

let binomial n k =
  if k < 0 || k > n then zero
  else begin
    let k = Stdlib.min k (n - k) in
    let acc = ref one in
    for i = 0 to k - 1 do
      acc := div (mul !acc (of_int (n - i))) (of_int (i + 1))
    done;
    !acc
  end

let succ x = add x one
let pred x = sub x one

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    if x.sign < 0 then Buffer.add_char buf '-';
    let l = Array.length x.mag in
    Buffer.add_string buf (string_of_int x.mag.(l - 1));
    for i = l - 2 downto 0 do
      Buffer.add_string buf (Printf.sprintf "%0*d" base_digits x.mag.(i))
    done;
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign, start =
    match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | _ -> (1, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  String.iteri
    (fun i c ->
       if i >= start && not (c >= '0' && c <= '9') then
         invalid_arg "Bigint.of_string: invalid character")
    s;
  let ndigits = len - start in
  let nlimbs = (ndigits + base_digits - 1) / base_digits in
  let mag = Array.make nlimbs 0 in
  (* Consume 9-digit chunks from the right. *)
  let pos = ref len in
  for limb = 0 to nlimbs - 1 do
    let lo = Stdlib.max start (!pos - base_digits) in
    mag.(limb) <- int_of_string (String.sub s lo (!pos - lo));
    pos := lo
  done;
  normalize sign mag

let to_int_opt x =
  (* max_int has 19 decimal digits; accept up to 3 limbs and check by
     reconstruction. *)
  if Array.length x.mag > 3 then None
  else begin
    let v = Array.fold_right (fun limb acc -> (acc * base) + limb) x.mag 0 in
    let v = if x.sign < 0 then -v else v in
    if equal (of_int v) x then Some v else None
  end

let pp ppf x = Format.pp_print_string ppf (to_string x)
let hash x = Array.fold_left Ordering.hash_mix (Ordering.hash_int x.sign) x.mag

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
