(* Overflow-checked counter arithmetic: native ints until a sum or
   product would overflow, then arbitrary precision.

   The counting DPs (Td_count / Nice_count / Fast_count) multiply and
   add sub-counts; almost every intermediate fits comfortably in 63
   bits, but the final counts (and adversarial instances) do not.
   Running the whole DP on Bigint costs a limb-array allocation per
   table operation.  This module keeps values as immediate ints on the
   fast path and promotes to Bigint only when an overflow check fails.

   Counts are non-negative throughout the codebase; the fast paths
   below assume it and route any negative operand through the exact
   Bigint arithmetic, so results are correct for arbitrary signs —
   negatives just never see the fast path. *)

type t = Small of int | Big of Bigint.t

let zero = Small 0
let one = Small 1
let of_int n = Small n

let of_bigint b =
  match Bigint.to_int_opt b with Some n -> Small n | None -> Big b

let to_bigint = function Small n -> Bigint.of_int n | Big b -> b
let is_zero = function Small n -> n = 0 | Big b -> Bigint.is_zero b

(* True exactly on the unpromoted representation; the promotion-rate
   metrics of the counting engines are computed from this. *)
let is_small = function Small _ -> true | Big _ -> false

let add a b =
  match (a, b) with
  | Small 0, c | c, Small 0 -> c
  | Small x, Small y when x >= 0 && y >= 0 ->
    let s = x + y in
    if s >= 0 then Small s
    else Big (Bigint.add (Bigint.of_int x) (Bigint.of_int y))
  | _ -> of_bigint (Bigint.add (to_bigint a) (to_bigint b))

let mul a b =
  match (a, b) with
  | Small 0, _ | _, Small 0 -> Small 0
  | Small 1, c | c, Small 1 -> c
  | Small x, Small y when x > 0 && y > 0 ->
    if x <= max_int / y then Small (x * y)
    else Big (Bigint.mul (Bigint.of_int x) (Bigint.of_int y))
  | _ -> of_bigint (Bigint.mul (to_bigint a) (to_bigint b))

let equal a b =
  match (a, b) with
  | Small x, Small y -> Int.equal x y
  | _ -> Bigint.equal (to_bigint a) (to_bigint b)

let compare a b =
  match (a, b) with
  | Small x, Small y -> Int.compare x y
  | _ -> Bigint.compare (to_bigint a) (to_bigint b)

let to_string = function
  | Small n -> string_of_int n
  | Big b -> Bigint.to_string b

let pp ppf c = Format.pp_print_string ppf (to_string c)
