type t = { num : Bigint.t; den : Bigint.t }

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let num, den =
      if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den)
      else (num, den)
    in
    let g = Bigint.gcd num den in
    { num = Bigint.div num g; den = Bigint.div den g }
  end

let zero = { num = Bigint.zero; den = Bigint.one }
let one = { num = Bigint.one; den = Bigint.one }

let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints a b = make (Bigint.of_int a) (Bigint.of_int b)

let add a b =
  make
    (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
    (Bigint.mul a.den b.den)

let neg a = { a with num = Bigint.neg a.num }
let sub a b = add a (neg b)
let mul a b = make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)

let inv a =
  if Bigint.is_zero a.num then raise Division_by_zero;
  make a.den a.num

let div a b = mul a (inv b)
let abs a = { a with num = Bigint.abs a.num }

let compare a b =
  Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let equal a b = compare a b = 0
let is_zero a = Bigint.is_zero a.num
let sign a = Bigint.sign a.num

let is_integer a = Bigint.equal a.den Bigint.one

let to_bigint_opt a = if is_integer a then Some a.num else None

let to_string a =
  if is_integer a then Bigint.to_string a.num
  else Bigint.to_string a.num ^ "/" ^ Bigint.to_string a.den

let pp ppf a = Format.pp_print_string ppf (to_string a)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
end
