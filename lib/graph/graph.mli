(** Undirected simple graphs on vertex set [0 .. n-1].

    All graphs in the paper are undirected, without self-loops and
    without parallel edges (Section 2); the constructors here enforce
    both invariants.  The representation is an immutable bitset
    adjacency array, so adjacency tests are O(1) and neighbourhood
    iteration is cache-friendly — k-WL and CFI construction iterate
    neighbourhoods heavily. *)

type t

(** [create n edges] builds a graph with [n] vertices.  Edges are given
    as pairs; duplicates and orientation are normalised away.
    @raise Invalid_argument on self-loops or out-of-range endpoints. *)
val create : int -> (int * int) list -> t

(** [empty n] has [n] vertices and no edges. *)
val empty : int -> t

(** [num_vertices g] is [n]. *)
val num_vertices : t -> int

(** [num_edges g] is the number of edges. *)
val num_edges : t -> int

(** [adjacent g u v] tests whether [{u,v}] is an edge. *)
val adjacent : t -> int -> int -> bool

(** [degree g v] is the degree of [v]. *)
val degree : t -> int -> int

(** [neighbours g v] is a fresh bitset of the neighbours of [v]. *)
val neighbours : t -> int -> Wlcq_util.Bitset.t

(** [neighbours_list g v] lists the neighbours of [v] in increasing
    order. *)
val neighbours_list : t -> int -> int list

(** [iter_neighbours g v f] applies [f] to each neighbour of [v] in
    increasing order, without allocating. *)
val iter_neighbours : t -> int -> (int -> unit) -> unit

(** [fold_neighbours g v f init] folds over the neighbours of [v]. *)
val fold_neighbours : t -> int -> (int -> 'a -> 'a) -> 'a -> 'a

(** [edges g] lists edges as pairs [(u, v)] with [u < v], sorted. *)
val edges : t -> (int * int) list

(** [iter_edges g f] applies [f u v] to every edge with [u < v]. *)
val iter_edges : t -> (int -> int -> unit) -> unit

(** [vertices g] is [[0; ...; n-1]]. *)
val vertices : t -> int list

(** [equal g1 g2] is equality of labelled graphs (same [n], same edge
    set) — not isomorphism; see {!Iso.isomorphic} for that. *)
val equal : t -> t -> bool

(** [compare] is a total order compatible with {!equal} (vertex count,
    then adjacency rows lexicographically).  Use this — never the
    polymorphic [Stdlib.compare] — when graphs key ordered
    collections. *)
val compare : t -> t -> int

(** [hash] is compatible with {!equal}; use it (with {!equal}) to build
    [Hashtbl.Make]-style keyed tables on graphs. *)
val hash : t -> int

(** [degree_sequence g] is the sorted (descending) degree sequence. *)
val degree_sequence : t -> int list

(** [max_degree g] is the maximum degree ([0] for the empty graph). *)
val max_degree : t -> int

(** [pp] prints as [graph(n=4, edges=[(0,1); (1,2)])]. *)
val pp : Format.formatter -> t -> unit

(** [to_string g] is [Format.asprintf "%a" pp g]. *)
val to_string : t -> string
