(** Textual graph specifications for the command-line tools.

    Accepted forms:
    - named families: [path:6], [cycle:5], [clique:4], [star:3],
      [bipartite:3,4], [grid:3,3], [hypercube:3], [wheel:5],
      [matching:3], [petersen], [twotriangles];
    - random graphs: [gnp:n,p,seed] (deterministic in the seed);
    - explicit edge lists: ["6; 0-1 1-2 2-3"] — vertex count, then
      space-separated edges [u-v]. *)

(** A parsed specification.  Specs are plain data: they can be compared,
    hashed, printed back to their concrete syntax, and built into graphs
    — which makes them usable as cache keys for memoising expensive
    per-family work. *)
type t =
  | Path of int
  | Cycle of int
  | Clique of int
  | Star of int
  | Bipartite of int * int
  | Grid of int * int
  | Hypercube of int
  | Wheel of int
  | Matching of int
  | Petersen
  | Two_triangles
  | Gnp of { n : int; p : float; seed : int }
  | Graph6 of string
  | Edges of { n : int; edges : (int * int) list }

(** [parse_spec s] parses the concrete syntax without building the
    graph.  Arity and small side-conditions (e.g. [cycle:N] needs
    [N >= 3]) are checked here; graph-level validation (edge ranges,
    self-loops, graph6 wellformedness) happens in {!build}. *)
val parse_spec : string -> (t, string) result

(** [build spec] constructs the graph.
    @raise Invalid_argument when the spec's payload is invalid (bad
    edge list, malformed graph6 string). *)
val build : t -> Graph.t

(** [parse s] is [parse_spec] followed by {!build}, with build-time
    [Invalid_argument] turned into [Error]. *)
val parse : string -> (Graph.t, string) result

(** [parse_exn s] raises [Invalid_argument] on malformed specs. *)
val parse_exn : string -> Graph.t

(** Structural equality of specs — NOT equality of the built graphs:
    [clique:3] and [cycle:3] build equal graphs but are distinct
    specs. *)
val equal : t -> t -> bool

(** Total order compatible with {!equal}. *)
val compare : t -> t -> int

(** [hash] is compatible with {!equal}. *)
val hash : t -> int

(** [pp] prints the concrete syntax accepted by {!parse_spec}. *)
val pp : Format.formatter -> t -> unit

(** [to_string s] is the concrete syntax, roundtripping through
    {!parse_spec}. *)
val to_string : t -> string

(** [describe] is a human-readable summary of the accepted forms (for
    [--help] texts). *)
val describe : string
