(** Textual graph specifications for the command-line tools.

    Accepted forms:
    - named families: [path:6], [cycle:5], [clique:4], [star:3],
      [bipartite:3,4], [grid:3,3], [hypercube:3], [wheel:5],
      [matching:3], [petersen], [twotriangles];
    - random graphs: [gnp:n,p,seed] (deterministic in the seed);
    - explicit edge lists: ["6; 0-1 1-2 2-3"] — vertex count, then
      space-separated edges [u-v]. *)

(** [parse s] builds the specified graph. *)
val parse : string -> (Graph.t, string) result

(** [parse_exn s] raises [Invalid_argument] on malformed specs. *)
val parse_exn : string -> Graph.t

(** [describe] is a human-readable summary of the accepted forms (for
    [--help] texts). *)
val describe : string
