(** Seeded random graph generation.

    Data graphs for cross-validation experiments (e.g. checking that
    counting-minimisation preserves answer counts, Definition 9, or
    that the Lemma 22 interpolation matches direct counting) are drawn
    from these generators.  Everything is driven by {!Wlcq_util.Prng},
    so experiments are reproducible from their seeds. *)

(** [gnp rng n p] is an Erdős–Rényi graph: each of the [n choose 2]
    edges is present independently with probability [p]. *)
val gnp : Wlcq_util.Prng.t -> int -> float -> Graph.t

(** [random_tree rng n] is a uniform-ish random tree built by attaching
    each vertex to a uniformly random predecessor. *)
val random_tree : Wlcq_util.Prng.t -> int -> Graph.t

(** [random_connected rng n p] is [gnp] conditioned on connectivity by
    adding a random spanning tree first. *)
val random_connected : Wlcq_util.Prng.t -> int -> float -> Graph.t

(** [random_regular_ish rng n d] is a graph with all degrees ≤ [d]
    built by a simple pairing heuristic (not exactly uniform; adequate
    for workload generation). *)
val random_regular_ish : Wlcq_util.Prng.t -> int -> int -> Graph.t

(** [random_bipartite rng a b p] draws each of the [a*b] cross edges
    independently with probability [p]. *)
val random_bipartite : Wlcq_util.Prng.t -> int -> int -> float -> Graph.t
