let connected_components g =
  let n = Graph.num_vertices g in
  let labels = Array.make n (-1) in
  let count = ref 0 in
  let queue = Queue.create () in
  (* lint: allow R7 one-shot BFS sweep: every vertex is enqueued at
     most once, so the whole walk is O(n + m) on the pattern graph *)
  for v = 0 to n - 1 do
    if labels.(v) < 0 then begin
      let id = !count in
      incr count;
      labels.(v) <- id;
      Queue.add v queue;
      (* lint: allow R7 BFS drain, bounded by the label-marking above *)
      while not (Queue.is_empty queue) do
        let u = Queue.take queue in
        Graph.iter_neighbours g u (fun w ->
            if labels.(w) < 0 then begin
              labels.(w) <- id;
              Queue.add w queue
            end)
      done
    end
  done;
  (labels, !count)

let component_members g =
  let labels, c = connected_components g in
  let buckets = Array.make c [] in
  for v = Graph.num_vertices g - 1 downto 0 do
    buckets.(labels.(v)) <- v :: buckets.(labels.(v))
  done;
  Array.to_list buckets

let is_connected g =
  let _, c = connected_components g in
  c <= 1

let bfs_distances g src =
  let n = Graph.num_vertices g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    Graph.iter_neighbours g u (fun w ->
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(u) + 1;
          Queue.add w queue
        end)
  done;
  dist

let distance g u v = (bfs_distances g u).(v)

let shortest_path g u v =
  let n = Graph.num_vertices g in
  let parent = Array.make n (-1) in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(u) <- 0;
  Queue.add u queue;
  while not (Queue.is_empty queue) do
    let x = Queue.take queue in
    Graph.iter_neighbours g x (fun w ->
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(x) + 1;
          parent.(w) <- x;
          Queue.add w queue
        end)
  done;
  if dist.(v) < 0 then None
  else begin
    let rec build w acc = if w = u then u :: acc else build parent.(w) (w :: acc) in
    Some (build v [])
  end

let is_forest g =
  let labels, c = connected_components g in
  ignore labels;
  (* a graph is a forest iff m = n - (number of components) *)
  Graph.num_edges g = Graph.num_vertices g - c

let is_tree g = is_connected g && is_forest g

let bipartition g =
  let n = Graph.num_vertices g in
  let side = Array.make n (-1) in
  let ok = ref true in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if side.(v) < 0 then begin
      side.(v) <- 0;
      Queue.add v queue;
      while not (Queue.is_empty queue) do
        let u = Queue.take queue in
        Graph.iter_neighbours g u (fun w ->
            if side.(w) < 0 then begin
              side.(w) <- 1 - side.(u);
              Queue.add w queue
            end
            else if side.(w) = side.(u) then ok := false)
      done
    end
  done;
  if !ok then Some side else None

let girth g =
  (* BFS from every vertex; a non-tree edge at depths (d, d') closes a
     cycle of length d + d' + 1. *)
  let n = Graph.num_vertices g in
  let best = ref max_int in
  for src = 0 to n - 1 do
    let dist = Array.make n (-1) in
    let parent = Array.make n (-1) in
    let queue = Queue.create () in
    dist.(src) <- 0;
    Queue.add src queue;
    while not (Queue.is_empty queue) do
      let u = Queue.take queue in
      Graph.iter_neighbours g u (fun w ->
          if dist.(w) < 0 then begin
            dist.(w) <- dist.(u) + 1;
            parent.(w) <- u;
            Queue.add w queue
          end
          else if parent.(u) <> w && parent.(w) <> u then
            best := min !best (dist.(u) + dist.(w) + 1))
    done
  done;
  if !best = max_int then None else Some !best

let degeneracy_order g =
  let n = Graph.num_vertices g in
  let deg = Array.init n (Graph.degree g) in
  let removed = Array.make n false in
  let order = ref [] in
  let degeneracy = ref 0 in
  for _ = 1 to n do
    (* smallest remaining degree *)
    let v = ref (-1) in
    for u = 0 to n - 1 do
      if not removed.(u) && (!v < 0 || deg.(u) < deg.(!v)) then v := u
    done;
    degeneracy := max !degeneracy deg.(!v);
    removed.(!v) <- true;
    order := !v :: !order;
    Graph.iter_neighbours g !v (fun w ->
        if not removed.(w) then deg.(w) <- deg.(w) - 1)
  done;
  (List.rev !order, !degeneracy)
