(* Colour refinement over a shared colour namespace, plus
   refinement-pruned backtracking search for isomorphisms. *)

module Ordering = Wlcq_util.Ordering

(* One refinement round over several graphs at once.  Signatures pair
   the old colour with the sorted multiset of neighbour colours; new
   ids are assigned in the sorted order of signatures, which makes the
   renaming canonical and comparable across graphs. *)
let refine_round graphs colourings =
  let signatures =
    List.map2
      (fun g colours ->
         Array.init (Graph.num_vertices g) (fun v ->
             let neigh =
               Graph.fold_neighbours g v (fun w acc -> colours.(w) :: acc) []
             in
             (colours.(v), List.sort Int.compare neigh)))
      graphs colourings
  in
  let all = List.concat_map Array.to_list signatures in
  let distinct =
    List.sort_uniq (Ordering.pair Int.compare Ordering.int_list) all
  in
  let ids = Hashtbl.create 64 in
  List.iteri (fun i s -> Hashtbl.replace ids s i) distinct;
  let colourings' =
    List.map (Array.map (fun s -> Hashtbl.find ids s)) signatures
  in
  (colourings', List.length distinct)

(* Normalise arbitrary int labels to 0..c-1 canonically (sorted label
   order), shared across the list of colourings. *)
let normalise colourings =
  let all = List.concat_map Array.to_list colourings in
  let distinct = List.sort_uniq Int.compare all in
  let ids = Hashtbl.create 64 in
  List.iteri (fun i c -> Hashtbl.replace ids c i) distinct;
  (List.map (Array.map (Hashtbl.find ids)) colourings, List.length distinct)

let refine_many graphs inits =
  let colourings, c = normalise inits in
  (* lint: allow R7 refinement stabilises in at most n rounds; budgeted
     callers only reach it through the canonicaliser, whose own node
     budget (Canonical_limit) bounds the whole search *)
  let rec go colourings c =
    let colourings', c' = refine_round graphs colourings in
    if c' = c then (colourings, c) else go colourings' c'
  in
  go colourings c

let refine g init =
  match refine_many [ g ] [ init ] with
  | [ colours ], c -> (colours, c)
  | _ -> assert false

let refine_pair g1 init1 g2 init2 =
  match refine_many [ g1; g2 ] [ init1; init2 ] with
  | [ c1; c2 ], c -> (c1, c2, c)
  | _ -> assert false

let histogram colours c =
  let h = Array.make c 0 in
  Array.iter (fun col -> h.(col) <- h.(col) + 1) colours;
  h

(* Backtracking search for an isomorphism g1 -> g2 refining the given
   pins and respecting the given initial colourings.  Vertices of g1
   are processed in a static order that prefers small colour classes;
   each candidate must share the stable colour and be
   adjacency-consistent with everything already mapped. *)
let search ?init1 ?init2 g1 g2 pins =
  let n = Graph.num_vertices g1 in
  if n <> Graph.num_vertices g2 || Graph.num_edges g1 <> Graph.num_edges g2
  then None
  else begin
    (* Seed the refinement with the initial colourings and the pins:
       pinned vertices get unique matching colours so the refinement
       respects them.  Stable colours refine the initial ones, so the
       colour check inside the search enforces both. *)
    let base1 = Option.value ~default:(Array.make n 0) init1 in
    let base2 = Option.value ~default:(Array.make n 0) init2 in
    let npins = List.length pins in
    let init1 = Array.map (fun c -> ((c + 1) * (npins + 1))) base1 in
    let init2 = Array.map (fun c -> ((c + 1) * (npins + 1))) base2 in
    List.iteri
      (fun i (u, v) ->
         init1.(u) <- i + 1 - (npins + 1);
         init2.(v) <- i + 1 - (npins + 1))
      pins;
    let c1, c2, c = refine_pair g1 init1 g2 init2 in
    if histogram c1 c <> histogram c2 c then None
    else begin
      let class_size = histogram c1 c in
      let order =
        List.sort
          (fun u v ->
             Ordering.int_pair
               (class_size.(c1.(u)), u)
               (class_size.(c1.(v)), v))
          (Graph.vertices g1)
      in
      let order = Array.of_list order in
      let image = Array.make n (-1) in
      let used = Array.make n false in
      let consistent u v =
        c1.(u) = c2.(v)
        && (not used.(v))
        && Array.for_all
          (fun u' ->
             image.(u') < 0
             || Graph.adjacent g1 u u' = Graph.adjacent g2 v image.(u'))
          order
      in
      let pinned = Hashtbl.create 8 in
      List.iter (fun (u, v) -> Hashtbl.replace pinned u v) pins;
      let rec go i =
        if i = n then true
        else begin
          let u = order.(i) in
          let candidates =
            match Hashtbl.find_opt pinned u with
            | Some v -> [ v ]
            | None -> Graph.vertices g2
          in
          List.exists
            (fun v ->
               consistent u v
               && begin
                 image.(u) <- v;
                 used.(v) <- true;
                 if go (i + 1) then true
                 else begin
                   image.(u) <- -1;
                   used.(v) <- false;
                   false
                 end
               end)
            candidates
        end
      in
      if go 0 then Some (Array.copy image) else None
    end
  end

let find_isomorphism_fixing g1 g2 pins = search g1 g2 pins

let find_isomorphism g1 g2 = search g1 g2 []

let find_isomorphism_respecting g1 init1 g2 init2 =
  if Array.length init1 <> Graph.num_vertices g1
     || Array.length init2 <> Graph.num_vertices g2 then
    invalid_arg "Iso.find_isomorphism_respecting: colouring size mismatch";
  search ~init1 ~init2 g1 g2 []

let isomorphic g1 g2 = Option.is_some (find_isomorphism g1 g2)

(* ------------------------------------------------------------------ *)
(* Canonical labelling (individualization–refinement)                  *)
(* ------------------------------------------------------------------ *)

exception Canonical_limit

type canonical = {
  canon : Graph.t;
  perm : Wlcq_util.Perm.t;
  digest : string;
}

(* Encode the canonical form byte-stably: vertex count, the canonical
   initial colouring, then the sorted edge list of the canonical graph.
   Isomorphic inputs (with corresponding initial colourings) reach the
   same canonical graph and the same canonical colouring, hence the
   same digest. *)
let digest_of_canonical canon init_canon =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "wlcq-canon-v1;";
  Buffer.add_string buf (string_of_int (Graph.num_vertices canon));
  Buffer.add_char buf ';';
  Array.iter
    (fun c ->
       Buffer.add_string buf (string_of_int c);
       Buffer.add_char buf ',')
    init_canon;
  Buffer.add_char buf ';';
  Graph.iter_edges canon (fun u v ->
      Buffer.add_string buf (string_of_int u);
      Buffer.add_char buf '-';
      Buffer.add_string buf (string_of_int v);
      Buffer.add_char buf ',');
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Canonical form by individualization–refinement backtracking on top
   of [refine].  Key structural facts that make the simple scheme
   sound:

   - [refine_round] assigns new colour ids in sorted signature order
     with the old colour as the leading component, so the stable
     colour order (a) is canonical across isomorphic inputs and
     (b) refines the initial colour order.
   - The target cell — the smallest colour id of size >= 2 — is
     therefore an isomorphism-invariant choice, and individualizing
     each of its members in turn explores corresponding branches on
     corresponding inputs.
   - At a discrete leaf the stable colouring IS a permutation; the
     candidate minimising [Graph.compare] on the relabelled graph is
     compared over an input-independent candidate set, so the minimum
     is canonical.

   Each visited search node costs one full refinement.  [limit] bounds
   the node count: refinement-homogeneous inputs (CFI gadgets) can
   force an exponential tree, and callers that only need a correct —
   not isomorphism-complete — address catch [Canonical_limit] and fall
   back to a structural digest. *)
let canonical_form ?init ?(limit = max_int) g =
  let n = Graph.num_vertices g in
  let base =
    match init with
    | None -> Array.make n 0
    | Some a ->
      if Array.length a <> n then
        invalid_arg "Iso.canonical_form: colouring size mismatch";
      a
  in
  let init_norm =
    match normalise [ base ] with [ a ], _ -> a | _ -> assert false
  in
  if n = 0 then
    { canon = g; perm = [||]; digest = digest_of_canonical g [||] }
  else begin
    let nodes = ref 0 in
    let best = ref None in
    let consider colours =
      let p = Array.copy colours in
      let h = Ops.relabel g p in
      match !best with
      | Some (bh, _) when Graph.compare bh h <= 0 -> ()
      | _ -> best := Some (h, p)
    in
    (* lint: allow R7 the I-R search runs under its own node budget:
       every node increments [nodes] and trips [Canonical_limit], and
       the cache address falls back to a structural digest on the trip
       — threading the caller's Budget here would make content
       addresses depend on how much budget was left *)
    let rec go colours c =
      incr nodes;
      if !nodes > limit then raise Canonical_limit;
      if c = n then consider colours
      else begin
        (* smallest colour id with a non-singleton class: canonical
           because colour ids are ordered by refinement history *)
        let hist = histogram colours c in
        let target = ref 0 in
        while hist.(!target) < 2 do incr target done;
        let t = !target in
        (* lint: allow R7 one pass over the target cell per search
           node; bounded by the same Canonical_limit node budget *)
        for v = 0 to n - 1 do
          if colours.(v) = t then begin
            (* split v below its classmates, preserving the relative
               order of all other classes *)
            let init' = Array.map (fun col -> (2 * col) + 1) colours in
            init'.(v) <- 2 * t;
            let colours', c' = refine g init' in
            go colours' c'
          end
        done
      end
    in
    let colours0, c0 = refine g init_norm in
    go colours0 c0;
    match !best with
    | None -> assert false
    | Some (h, p) ->
      let init_canon = Array.make n 0 in
      Array.iteri (fun v c -> init_canon.(p.(v)) <- c) init_norm;
      { canon = h; perm = p; digest = digest_of_canonical h init_canon }
  end

(* Enumerate all automorphisms by exhaustive colour-pruned
   backtracking.  Meant for query graphs (small), not data graphs. *)
let automorphisms g =
  let n = Graph.num_vertices g in
  let colours, _c = refine g (Array.make n 0) in
  let image = Array.make n (-1) in
  let used = Array.make n false in
  let acc = ref [] in
  let consistent u v =
    colours.(u) = colours.(v)
    && (not used.(v))
    && (let ok = ref true in
        for u' = 0 to n - 1 do
          if image.(u') >= 0
             && Graph.adjacent g u u' <> Graph.adjacent g v image.(u')
          then ok := false
        done;
        !ok)
  in
  let rec go u =
    if u = n then acc := Array.copy image :: !acc
    else
      for v = 0 to n - 1 do
        if consistent u v then begin
          image.(u) <- v;
          used.(v) <- true;
          go (u + 1);
          image.(u) <- -1;
          used.(v) <- false
        end
      done
  in
  go 0;
  List.rev !acc
