(** Graph traversal and structural predicates.

    Connectivity matters throughout the paper: Theorem 1 is stated for
    connected queries, [H[Y]]'s connected components define the
    extension graph Γ(H,X), and Lemma 58's edge-parity assignment works
    per connected component. *)

(** [connected_components g] labels every vertex with a component id in
    [0 .. c-1] and returns [(labels, c)].  Component ids are assigned
    in order of smallest contained vertex. *)
val connected_components : Graph.t -> int array * int

(** [component_members g] is the list of components, each as a sorted
    vertex list, ordered by smallest member. *)
val component_members : Graph.t -> int list list

(** [is_connected g] tests connectivity; the empty graph counts as
    connected. *)
val is_connected : Graph.t -> bool

(** [bfs_distances g src] is the array of BFS distances from [src];
    unreachable vertices get [-1]. *)
val bfs_distances : Graph.t -> int -> int array

(** [distance g u v] is the length of a shortest [u]-[v] path, or [-1]
    when none exists. *)
val distance : Graph.t -> int -> int -> int

(** [shortest_path g u v] is a shortest path as a vertex list
    [u; ...; v], or [None] when unreachable. *)
val shortest_path : Graph.t -> int -> int -> int list option

(** [is_forest g] tests acyclicity. *)
val is_forest : Graph.t -> bool

(** [is_tree g] tests connected + acyclic. *)
val is_tree : Graph.t -> bool

(** [bipartition g] is [Some sides] with [sides.(v) ∈ {0,1}] when [g]
    is bipartite, [None] otherwise. *)
val bipartition : Graph.t -> int array option

(** [girth g] is the length of a shortest cycle, or [None] for forests. *)
val girth : Graph.t -> int option

(** [degeneracy_order g] is [(order, d)] where [order] lists the
    vertices in a smallest-last elimination order witnessing
    degeneracy [d]. *)
val degeneracy_order : Graph.t -> int list * int
