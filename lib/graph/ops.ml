let complement g =
  let n = Graph.num_vertices g in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if not (Graph.adjacent g u v) then edges := (u, v) :: !edges
    done
  done;
  Graph.create n !edges

let disjoint_union g1 g2 =
  let n1 = Graph.num_vertices g1 in
  let shifted =
    List.map (fun (u, v) -> (u + n1, v + n1)) (Graph.edges g2)
  in
  Graph.create (n1 + Graph.num_vertices g2) (Graph.edges g1 @ shifted)

let tensor_product g1 g2 =
  let n1 = Graph.num_vertices g1 and n2 = Graph.num_vertices g2 in
  let idx u v = (u * n2) + v in
  let edges = ref [] in
  Graph.iter_edges g1 (fun u1 u2 ->
      Graph.iter_edges g2 (fun v1 v2 ->
          (* both orientations of the g2 edge pair with the g1 edge *)
          edges := (idx u1 v1, idx u2 v2) :: (idx u1 v2, idx u2 v1) :: !edges));
  Graph.create (n1 * n2) !edges

let induced g vs =
  let vs = Array.of_list vs in
  let k = Array.length vs in
  let pos = Hashtbl.create k in
  Array.iteri
    (fun i v ->
       if Hashtbl.mem pos v then invalid_arg "Ops.induced: duplicate vertex";
       Hashtbl.add pos v i)
    vs;
  let edges = ref [] in
  Array.iteri
    (fun i v ->
       Graph.iter_neighbours g v (fun w ->
           match Hashtbl.find_opt pos w with
           | Some j when i < j -> edges := (i, j) :: !edges
           | _ -> ()))
    vs;
  (Graph.create k !edges, vs)

let relabel g p =
  if not (Wlcq_util.Perm.is_permutation p)
     || Array.length p <> Graph.num_vertices g then
    invalid_arg "Ops.relabel: not a permutation of the vertex set";
  Graph.create (Graph.num_vertices g)
    (List.map (fun (u, v) -> (p.(u), p.(v))) (Graph.edges g))

let add_edges g es = Graph.create (Graph.num_vertices g) (Graph.edges g @ es)

let remove_vertex g v =
  let n = Graph.num_vertices g in
  if v < 0 || v >= n then invalid_arg "Ops.remove_vertex: out of range";
  let shift u = if u > v then u - 1 else u in
  let edges =
    List.filter_map
      (fun (a, b) ->
         if a = v || b = v then None else Some (shift a, shift b))
      (Graph.edges g)
  in
  Graph.create (n - 1) edges

let quotient g cls =
  let n = Graph.num_vertices g in
  if Array.length cls <> n then invalid_arg "Ops.quotient: class array size";
  let c = 1 + Array.fold_left max (-1) cls in
  Array.iter
    (fun id -> if id < 0 then invalid_arg "Ops.quotient: negative class id")
    cls;
  let inhabited = Array.make c false in
  Array.iter (fun id -> inhabited.(id) <- true) cls;
  if not (Array.for_all (fun b -> b) inhabited) then
    invalid_arg "Ops.quotient: uninhabited class id";
  let edges = ref [] in
  Graph.iter_edges g (fun u v ->
      if cls.(u) = cls.(v) then
        invalid_arg "Ops.quotient: identification creates a self-loop"
      else edges := (cls.(u), cls.(v)) :: !edges);
  Graph.create c !edges

let join g1 g2 =
  let n1 = Graph.num_vertices g1 and n2 = Graph.num_vertices g2 in
  let cross = ref [] in
  for u = 0 to n1 - 1 do
    for v = n1 to n1 + n2 - 1 do cross := (u, v) :: !cross done
  done;
  add_edges (disjoint_union g1 g2) !cross
