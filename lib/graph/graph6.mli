(** The graph6 interchange format (McKay).

    graph6 is the de-facto standard ASCII format for undirected simple
    graphs (used by nauty, geng, the House of Graphs, …).  Supporting
    it lets the library exchange instances with the wider ecosystem.
    This implementation covers graphs with up to 258047 vertices (the
    1- and 4-byte size headers; the 8-byte long form is rejected). *)

(** [encode g] is the graph6 string for [g]. *)
val encode : Graph.t -> string

(** [decode s] parses a graph6 string.
    @raise Invalid_argument on malformed input. *)
val decode : string -> Graph.t
