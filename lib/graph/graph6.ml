(* graph6: the vertex count is encoded as one char (n <= 62) or as
   '~' followed by three chars (n <= 258047); then the upper triangle
   of the adjacency matrix, in column order (x_{0,1}, x_{0,2},
   x_{1,2}, x_{0,3}, ...), packed big-endian six bits per char, each
   offset by 63. *)

let encode g =
  let n = Graph.num_vertices g in
  let buf = Buffer.create (8 + (n * n / 12)) in
  if n <= 62 then Buffer.add_char buf (Char.chr (n + 63))
  else if n <= 258047 then begin
    Buffer.add_char buf '~';
    Buffer.add_char buf (Char.chr (((n lsr 12) land 63) + 63));
    Buffer.add_char buf (Char.chr (((n lsr 6) land 63) + 63));
    Buffer.add_char buf (Char.chr ((n land 63) + 63))
  end
  else invalid_arg "Graph6.encode: graph too large";
  let bits = ref 0 in
  let count = ref 0 in
  let flush_partial () =
    if !count > 0 then begin
      Buffer.add_char buf (Char.chr ((!bits lsl (6 - !count)) + 63));
      bits := 0;
      count := 0
    end
  in
  for j = 1 to n - 1 do
    for i = 0 to j - 1 do
      bits := (!bits lsl 1) lor (if Graph.adjacent g i j then 1 else 0);
      incr count;
      if !count = 6 then begin
        Buffer.add_char buf (Char.chr (!bits + 63));
        bits := 0;
        count := 0
      end
    done
  done;
  flush_partial ();
  Buffer.contents buf

let decode s =
  let len = String.length s in
  if len = 0 then invalid_arg "Graph6.decode: empty string";
  let byte i =
    if i >= len then invalid_arg "Graph6.decode: truncated input";
    let c = Char.code s.[i] in
    if c < 63 || c > 126 then invalid_arg "Graph6.decode: invalid character";
    c - 63
  in
  let n, start =
    if s.[0] = '~' then begin
      if len >= 2 && s.[1] = '~' then
        invalid_arg "Graph6.decode: 8-byte sizes not supported"
      else ((byte 1 lsl 12) lor (byte 2 lsl 6) lor byte 3, 4)
    end
    else (byte 0, 1)
  in
  let needed = (n * (n - 1) / 2 + 5) / 6 in
  if len - start <> needed then
    invalid_arg "Graph6.decode: wrong payload length";
  let edges = ref [] in
  let pos = ref 0 in
  let bit () =
    let c = byte (start + (!pos / 6)) in
    let b = (c lsr (5 - (!pos mod 6))) land 1 in
    incr pos;
    b
  in
  for j = 1 to n - 1 do
    for i = 0 to j - 1 do
      if bit () = 1 then edges := (i, j) :: !edges
    done
  done;
  Graph.create n !edges
