(** Standard graph families.

    These are the base graphs of the paper's examples and proofs:
    stars (Section 1.1, Section 5.4), cliques (Γ of the star query is
    [K_{k+1}]), triangles and 6-cycles (Observation 62), paths and
    cycles for width examples, and grids as canonical
    treewidth-[min(a,b)] bases for CFI constructions. *)

(** [path n] is the path on [n] vertices [0 - 1 - ... - n-1]. *)
val path : int -> Graph.t

(** [cycle n] is the cycle on [n >= 3] vertices. *)
val cycle : int -> Graph.t

(** [clique n] is the complete graph [K_n]. *)
val clique : int -> Graph.t

(** [star k] is the star with centre [0] and leaves [1 .. k]. *)
val star : int -> Graph.t

(** [complete_bipartite a b] is [K_{a,b}] with parts [0..a-1] and
    [a..a+b-1]. *)
val complete_bipartite : int -> int -> Graph.t

(** [grid a b] is the [a × b] grid; vertex [(i,j)] is [i*b + j]. *)
val grid : int -> int -> Graph.t

(** [petersen ()] is the Petersen graph (10 vertices, treewidth 4). *)
val petersen : unit -> Graph.t

(** [hypercube d] is the [d]-dimensional hypercube [Q_d]. *)
val hypercube : int -> Graph.t

(** [matching k] is [k] disjoint edges on [2k] vertices. *)
val matching : int -> Graph.t

(** [two_triangles ()] is [2K₃] — two disjoint triangles, the standard
    1-WL-equivalent partner of [C₆] (Observation 62). *)
val two_triangles : unit -> Graph.t

(** [wheel n] is a cycle on [n] vertices [1..n] plus a hub [0]. *)
val wheel : int -> Graph.t

(** [tree_of_parents parents] builds a tree from a parent array:
    [parents.(0) = -1] for the root, and [parents.(i) < i].
    @raise Invalid_argument on malformed input. *)
val tree_of_parents : int array -> Graph.t

(** [rook ()] is the 4×4 rook's graph: vertices [(i,j)] of a 4×4 board
    (encoded [4i + j]), adjacent when they share a row or column.
    Strongly regular with parameters (16, 6, 2, 2). *)
val rook : unit -> Graph.t

(** [shrikhande ()] is the Shrikhande graph: vertices [Z₄ × Z₄],
    adjacent when the difference is [±(1,0)], [±(0,1)] or [±(1,1)].
    Strongly regular with the same parameters (16, 6, 2, 2) as the
    rook's graph but not isomorphic to it — the canonical pair that
    2-WL cannot distinguish and 3-WL can. *)
val shrikhande : unit -> Graph.t
