(** Graph isomorphism and automorphisms.

    The paper needs isomorphism in several places: Lemma 26's parity
    criterion ([χ(G,W) ≅ χ(G,W')] iff [|W| ≡ |W'| mod 2]), query
    isomorphism (Definition 9's counting-minimal representatives are
    unique up to isomorphism), and the partial automorphisms
    [Aut(H,X)] of Definition 42.

    The search is plain backtracking pruned by stable colour-refinement
    colours, which handles the CFI-scale graphs used in the experiments
    comfortably. *)

(** [find_isomorphism g1 g2] is [Some p] with [p] mapping vertices of
    [g1] to vertices of [g2] such that [p] is an isomorphism, or
    [None]. *)
val find_isomorphism : Graph.t -> Graph.t -> Wlcq_util.Perm.t option

(** [isomorphic g1 g2] tests isomorphism. *)
val isomorphic : Graph.t -> Graph.t -> bool

(** [automorphisms g] lists all automorphisms of [g] (intended for
    small graphs — query graphs, not data graphs). *)
val automorphisms : Graph.t -> Wlcq_util.Perm.t list

(** [find_isomorphism_fixing g1 g2 pins] finds an isomorphism subject
    to prescribed images: each pair [(u, v)] in [pins] forces
    [p.(u) = v]. *)
val find_isomorphism_fixing :
  Graph.t -> Graph.t -> (int * int) list -> Wlcq_util.Perm.t option

(** [find_isomorphism_respecting g1 init1 g2 init2] finds an
    isomorphism [p] that maps colour classes onto colour classes:
    [init2.(p.(v)) = init1.(v)] for every [v].  Used for
    conjunctive-query isomorphism (free variables must map to free
    variables, Definition 9). *)
val find_isomorphism_respecting :
  Graph.t -> int array -> Graph.t -> int array -> Wlcq_util.Perm.t option

(** [refine g init] runs colour refinement (1-WL) on [g] starting from
    the initial colouring [init] (any int labels) and returns the
    stable colouring with colours normalised to [0 .. c-1] in a
    canonical order (by refinement history), together with [c].  Two
    graphs refined with matching initial colourings get comparable
    colour ids, so histograms can be compared across graphs when run
    through {!refine_pair}. *)
val refine : Graph.t -> int array -> int array * int

(** [refine_pair g1 init1 g2 init2] refines both graphs in the same
    colour namespace and returns [(colours1, colours2, c)]. *)
val refine_pair :
  Graph.t -> int array -> Graph.t -> int array -> int array * int array * int

(** A canonical labelling of a graph: the canonically relabelled graph
    itself, the renaming permutation (original vertex [v] has canonical
    id [perm.(v)]), and a stable hex digest of the canonical encoding.
    Two isomorphic graphs (refined with corresponding initial
    colourings) produce [Graph.equal] canonical graphs and identical
    digests — the foundation of content-addressed caching: isomorphic
    inputs are the same key (Definition 9's counting-minimal
    representatives are unique up to isomorphism). *)
type canonical = {
  canon : Graph.t;
  perm : Wlcq_util.Perm.t;
  digest : string;
}

(** Raised by {!canonical_form} when the individualization–refinement
    search exceeds its node budget (refinement-homogeneous inputs such
    as CFI gadgets can force an exponential tree). *)
exception Canonical_limit

(** [canonical_form ?init ?limit g] computes a canonical labelling by
    individualization–refinement backtracking on top of {!refine}.
    [init] seeds the refinement (default: uniform), and the canonical
    form respects it: isomorphic inputs with corresponding colourings
    get identical digests, inputs with different colourings do not
    collide.  [limit] (default: unbounded) caps the number of visited
    search nodes; @raise Canonical_limit when exceeded. *)
val canonical_form : ?init:int array -> ?limit:int -> Graph.t -> canonical
