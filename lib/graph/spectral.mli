(** Exact adjacency spectra.

    The characteristic polynomial of the adjacency matrix is a graph
    parameter in the paper's sense, and a neat showcase for the
    WL-dimension framework: its coefficients are determined by closed
    walk counts — homomorphism counts from cycles, which have
    treewidth 2 — so the parameter is 2-WL-invariant; and it is {e
    not} 1-WL-invariant ([2K₃] and [C₆] are 1-WL-equivalent but not
    cospectral).  Hence its WL-dimension is exactly 2, which
    experiment T12 certifies.

    Computation is the Faddeev–LeVerrier recurrence over exact
    integers (all divisions are exact). *)

(** [characteristic_polynomial g] is the coefficient array
    [c] of [det(λI − A) = Σ c.(i) λ^i], with [c.(n) = 1]. *)
val characteristic_polynomial : Graph.t -> Wlcq_util.Bigint.t array

(** [cospectral g1 g2] tests equality of characteristic polynomials. *)
val cospectral : Graph.t -> Graph.t -> bool

(** [closed_walks g k] is [tr(A^k)], the number of closed walks of
    length [k].
    @raise Invalid_argument when [k < 0]. *)
val closed_walks : Graph.t -> int -> Wlcq_util.Bigint.t
