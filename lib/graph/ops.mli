(** Graph operations.

    These implement the constructions the paper composes: complement
    (Corollary 68 relates dominating sets of [G] to star answers in the
    complement), tensor product (Corollary 5's lower bound multiplies
    hom counts), disjoint union (Observation 62's [2K₃]), induced
    subgraphs ([H[Y]] throughout), vertex identification (the quotient
    queries [(S_k, X_k)/J] of Corollary 68), and edge additions (the
    extension graph [Γ(H,X)] of Definition 11). *)

(** [complement g] is the self-loop-free complement of [g]. *)
val complement : Graph.t -> Graph.t

(** [disjoint_union g1 g2] places [g2] after [g1]; vertex [v] of [g2]
    becomes [num_vertices g1 + v]. *)
val disjoint_union : Graph.t -> Graph.t -> Graph.t

(** [tensor_product g1 g2] is the categorical product: vertex [(u,v)]
    is encoded as [u * num_vertices g2 + v], and [(u1,v1) ~ (u2,v2)]
    iff [u1 ~ u2] and [v1 ~ v2].  Satisfies
    [|Hom(H, g1 ⊗ g2)| = |Hom(H,g1)| · |Hom(H,g2)|]. *)
val tensor_product : Graph.t -> Graph.t -> Graph.t

(** [induced g vs] is the subgraph induced by the distinct vertices
    [vs], together with the array mapping new indices to old ones (in
    the order given by [vs]). *)
val induced : Graph.t -> int list -> Graph.t * int array

(** [relabel g p] renames vertex [v] to [p.(v)]; [p] must be a
    permutation of [0 .. n-1]. *)
val relabel : Graph.t -> Wlcq_util.Perm.t -> Graph.t

(** [add_edges g es] is [g] with the edges [es] added. *)
val add_edges : Graph.t -> (int * int) list -> Graph.t

(** [remove_vertex g v] deletes [v]; vertices above [v] shift down by
    one. *)
val remove_vertex : Graph.t -> int -> Graph.t

(** [quotient g cls] identifies vertices with equal class ids.
    [cls.(v)] must be in [0 .. c-1] where [c] is the returned graph's
    vertex count; every class id in that range must be inhabited.
    @raise Invalid_argument when identification would create a
    self-loop (an edge inside a class) or on malformed class ids. *)
val quotient : Graph.t -> int array -> Graph.t

(** [join g1 g2] is the complete join: disjoint union plus all edges
    between the two sides. *)
val join : Graph.t -> Graph.t -> Graph.t
