let path n =
  Graph.create n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Builders.cycle: need at least 3 vertices";
  Graph.create n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let clique n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do edges := (u, v) :: !edges done
  done;
  Graph.create n !edges

let star k =
  if k < 0 then invalid_arg "Builders.star: negative leaf count";
  Graph.create (k + 1) (List.init k (fun i -> (0, i + 1)))

let complete_bipartite a b =
  let edges = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do edges := (u, v) :: !edges done
  done;
  Graph.create (a + b) !edges

let grid a b =
  let idx i j = (i * b) + j in
  let edges = ref [] in
  for i = 0 to a - 1 do
    for j = 0 to b - 1 do
      if i + 1 < a then edges := (idx i j, idx (i + 1) j) :: !edges;
      if j + 1 < b then edges := (idx i j, idx i (j + 1)) :: !edges
    done
  done;
  Graph.create (a * b) !edges

let petersen () =
  (* outer 5-cycle 0..4, inner pentagram 5..9, spokes i - i+5 *)
  let outer = List.init 5 (fun i -> (i, (i + 1) mod 5)) in
  let inner = List.init 5 (fun i -> (5 + i, 5 + ((i + 2) mod 5))) in
  let spokes = List.init 5 (fun i -> (i, i + 5)) in
  Graph.create 10 (outer @ inner @ spokes)

let hypercube d =
  if d < 0 then invalid_arg "Builders.hypercube: negative dimension";
  let n = 1 lsl d in
  let edges = ref [] in
  for v = 0 to n - 1 do
    for bit = 0 to d - 1 do
      let w = v lxor (1 lsl bit) in
      if v < w then edges := (v, w) :: !edges
    done
  done;
  Graph.create n !edges

let matching k = Graph.create (2 * k) (List.init k (fun i -> (2 * i, (2 * i) + 1)))

let two_triangles () =
  Graph.create 6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ]

let wheel n =
  if n < 3 then invalid_arg "Builders.wheel: need a cycle of length >= 3";
  let rim = (n, 1) :: List.init (n - 1) (fun i -> (i + 1, i + 2)) in
  let spokes = List.init n (fun i -> (0, i + 1)) in
  Graph.create (n + 1) (rim @ spokes)

let rook () =
  let idx i j = (4 * i) + j in
  let edges = ref [] in
  for i = 0 to 3 do
    for j = 0 to 3 do
      for i' = 0 to 3 do
        for j' = 0 to 3 do
          let same_row = i = i' && j <> j' in
          let same_col = j = j' && i <> i' in
          if (same_row || same_col) && idx i j < idx i' j' then
            edges := (idx i j, idx i' j') :: !edges
        done
      done
    done
  done;
  Graph.create 16 !edges

let shrikhande () =
  let idx i j = (4 * i) + j in
  let diffs = [ (1, 0); (3, 0); (0, 1); (0, 3); (1, 1); (3, 3) ] in
  let edges = ref [] in
  for i = 0 to 3 do
    for j = 0 to 3 do
      List.iter
        (fun (di, dj) ->
           let i' = (i + di) mod 4 and j' = (j + dj) mod 4 in
           if idx i j < idx i' j' then edges := (idx i j, idx i' j') :: !edges)
        diffs
    done
  done;
  Graph.create 16 !edges

let tree_of_parents parents =
  let n = Array.length parents in
  let edges = ref [] in
  Array.iteri
    (fun i p ->
       if i = 0 then begin
         if p <> -1 then
           invalid_arg "Builders.tree_of_parents: root parent must be -1"
       end
       else if p < 0 || p >= i then
         invalid_arg "Builders.tree_of_parents: parent must precede child"
       else edges := (p, i) :: !edges)
    parents;
  Graph.create n !edges
