module Ordering = Wlcq_util.Ordering

type t =
  | Path of int
  | Cycle of int
  | Clique of int
  | Star of int
  | Bipartite of int * int
  | Grid of int * int
  | Hypercube of int
  | Wheel of int
  | Matching of int
  | Petersen
  | Two_triangles
  | Gnp of { n : int; p : float; seed : int }
  | Graph6 of string
  | Edges of { n : int; edges : (int * int) list }

let describe =
  "graph specs: path:N | cycle:N | clique:N | star:N | bipartite:A,B | \
   grid:A,B | hypercube:D | wheel:N | matching:K | petersen | twotriangles \
   | gnp:N,P,SEED | g6:STRING (graph6) | \"N; u-v u-v ...\" (explicit edge \
   list)"

let int_of s = int_of_string_opt (String.trim s)

let parse_named name args =
  let ints () = List.filter_map int_of (String.split_on_char ',' args) in
  match (name, ints ()) with
  | "path", [ n ] -> Ok (Path n)
  | "cycle", [ n ] when n >= 3 -> Ok (Cycle n)
  | "clique", [ n ] -> Ok (Clique n)
  | "star", [ n ] -> Ok (Star n)
  | "bipartite", [ a; b ] -> Ok (Bipartite (a, b))
  | "grid", [ a; b ] -> Ok (Grid (a, b))
  | "hypercube", [ d ] -> Ok (Hypercube d)
  | "wheel", [ n ] when n >= 3 -> Ok (Wheel n)
  | "matching", [ k ] -> Ok (Matching k)
  | "gnp", _ ->
    (match String.split_on_char ',' args with
     | [ n; p; seed ] ->
       (match (int_of n, float_of_string_opt (String.trim p), int_of seed)
        with
        | Some n, Some p, Some seed -> Ok (Gnp { n; p; seed })
        | _ -> Error "gnp expects gnp:N,P,SEED")
     | _ -> Error "gnp expects gnp:N,P,SEED")
  | _ -> Error (Printf.sprintf "unknown graph family %S or bad arguments" name)

let parse_edge_list s =
  match String.index_opt s ';' with
  | None -> Error "edge list form is \"N; u-v u-v ...\""
  | Some i ->
    let n = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of n with
     | None -> Error "edge list must start with the vertex count"
     | Some n ->
       let tokens =
         List.filter
           (fun t -> not (String.equal t ""))
           (String.split_on_char ' ' (String.trim rest))
       in
       let parse_edge t =
         match String.split_on_char '-' t with
         | [ u; v ] ->
           (match (int_of u, int_of v) with
            | Some u, Some v -> Ok (u, v)
            | _ -> Error (Printf.sprintf "bad edge %S" t))
         | _ -> Error (Printf.sprintf "bad edge %S" t)
       in
       let rec collect acc = function
         | [] -> Ok (List.rev acc)
         | t :: rest ->
           (match parse_edge t with
            | Ok e -> collect (e :: acc) rest
            | Error e -> Error e)
       in
       (match collect [] tokens with
        | Error e -> Error e
        | Ok edges -> Ok (Edges { n; edges })))

let parse_spec s =
  let s = String.trim s in
  if String.equal s "" then Error "empty graph spec"
  else if String.contains s ';' then parse_edge_list s
  else
    match String.index_opt s ':' with
    | None ->
      (match s with
       | "petersen" -> Ok Petersen
       | "twotriangles" -> Ok Two_triangles
       | _ -> Error (Printf.sprintf "unknown graph %S (%s)" s describe))
    | Some i ->
      let name = String.sub s 0 i in
      let args = String.sub s (i + 1) (String.length s - i - 1) in
      if String.equal name "g6" then Ok (Graph6 args)
      else parse_named name args

let build = function
  | Path n -> Builders.path n
  | Cycle n -> Builders.cycle n
  | Clique n -> Builders.clique n
  | Star n -> Builders.star n
  | Bipartite (a, b) -> Builders.complete_bipartite a b
  | Grid (a, b) -> Builders.grid a b
  | Hypercube d -> Builders.hypercube d
  | Wheel n -> Builders.wheel n
  | Matching k -> Builders.matching k
  | Petersen -> Builders.petersen ()
  | Two_triangles -> Builders.two_triangles ()
  | Gnp { n; p; seed } -> Gen.gnp (Wlcq_util.Prng.create seed) n p
  | Graph6 s -> Graph6.decode s
  | Edges { n; edges } -> Graph.create n edges

let parse s =
  match parse_spec s with
  | Error e -> Error e
  | Ok spec ->
    (try Ok (build spec) with Invalid_argument msg -> Error msg)

let parse_exn s =
  match parse s with
  | Ok g -> g
  | Error e -> invalid_arg ("Spec.parse_exn: " ^ e)

(* Constructor tag for the total order; keep in sync with [t]. *)
let tag = function
  | Path _ -> 0
  | Cycle _ -> 1
  | Clique _ -> 2
  | Star _ -> 3
  | Bipartite _ -> 4
  | Grid _ -> 5
  | Hypercube _ -> 6
  | Wheel _ -> 7
  | Matching _ -> 8
  | Petersen -> 9
  | Two_triangles -> 10
  | Gnp _ -> 11
  | Graph6 _ -> 12
  | Edges _ -> 13

let compare s1 s2 =
  match (s1, s2) with
  | Path a, Path b
  | Cycle a, Cycle b
  | Clique a, Clique b
  | Star a, Star b
  | Hypercube a, Hypercube b
  | Wheel a, Wheel b
  | Matching a, Matching b -> Int.compare a b
  | Bipartite (a1, b1), Bipartite (a2, b2) | Grid (a1, b1), Grid (a2, b2) ->
    Ordering.int_pair (a1, b1) (a2, b2)
  | Petersen, Petersen | Two_triangles, Two_triangles -> 0
  | Gnp g1, Gnp g2 ->
    let c = Int.compare g1.n g2.n in
    if c <> 0 then c
    else
      let c = Float.compare g1.p g2.p in
      if c <> 0 then c else Int.compare g1.seed g2.seed
  | Graph6 a, Graph6 b -> String.compare a b
  | Edges e1, Edges e2 ->
    let c = Int.compare e1.n e2.n in
    if c <> 0 then c else List.compare Ordering.int_pair e1.edges e2.edges
  | _ -> Int.compare (tag s1) (tag s2)

let equal s1 s2 = compare s1 s2 = 0

let hash s =
  let open Ordering in
  let h = hash_int (tag s) in
  match s with
  | Path a | Cycle a | Clique a | Star a | Hypercube a | Wheel a | Matching a
    -> hash_mix h a
  | Bipartite (a, b) | Grid (a, b) -> hash_mix (hash_mix h a) b
  | Petersen | Two_triangles -> h
  | Gnp { n; p; seed } ->
    hash_mix (hash_mix (hash_mix h n) (Float.hash p)) seed
  | Graph6 s -> hash_mix h (String.hash s)
  | Edges { n; edges } ->
    List.fold_left
      (fun h (u, v) -> hash_mix (hash_mix h u) v)
      (hash_mix h n) edges

let pp ppf s =
  let f fmt = Format.fprintf ppf fmt in
  match s with
  | Path n -> f "path:%d" n
  | Cycle n -> f "cycle:%d" n
  | Clique n -> f "clique:%d" n
  | Star n -> f "star:%d" n
  | Bipartite (a, b) -> f "bipartite:%d,%d" a b
  | Grid (a, b) -> f "grid:%d,%d" a b
  | Hypercube d -> f "hypercube:%d" d
  | Wheel n -> f "wheel:%d" n
  | Matching k -> f "matching:%d" k
  | Petersen -> f "petersen"
  | Two_triangles -> f "twotriangles"
  | Gnp { n; p; seed } -> f "gnp:%d,%g,%d" n p seed
  | Graph6 s -> f "g6:%s" s
  | Edges { n; edges } ->
    f "%d;" n;
    List.iter (fun (u, v) -> f " %d-%d" u v) edges

let to_string s = Format.asprintf "%a" pp s
