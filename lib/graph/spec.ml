let describe =
  "graph specs: path:N | cycle:N | clique:N | star:N | bipartite:A,B | \
   grid:A,B | hypercube:D | wheel:N | matching:K | petersen | twotriangles \
   | gnp:N,P,SEED | g6:STRING (graph6) | \"N; u-v u-v ...\" (explicit edge \
   list)"

let int_of s = int_of_string_opt (String.trim s)

let parse_named name args =
  let ints () = List.filter_map int_of (String.split_on_char ',' args) in
  match (name, ints ()) with
  | "path", [ n ] -> Ok (Builders.path n)
  | "cycle", [ n ] when n >= 3 -> Ok (Builders.cycle n)
  | "clique", [ n ] -> Ok (Builders.clique n)
  | "star", [ n ] -> Ok (Builders.star n)
  | "bipartite", [ a; b ] -> Ok (Builders.complete_bipartite a b)
  | "grid", [ a; b ] -> Ok (Builders.grid a b)
  | "hypercube", [ d ] -> Ok (Builders.hypercube d)
  | "wheel", [ n ] when n >= 3 -> Ok (Builders.wheel n)
  | "matching", [ k ] -> Ok (Builders.matching k)
  | "gnp", _ ->
    (match String.split_on_char ',' args with
     | [ n; p; seed ] ->
       (match (int_of n, float_of_string_opt (String.trim p), int_of seed)
        with
        | Some n, Some p, Some seed ->
          Ok (Gen.gnp (Wlcq_util.Prng.create seed) n p)
        | _ -> Error "gnp expects gnp:N,P,SEED")
     | _ -> Error "gnp expects gnp:N,P,SEED")
  | _ -> Error (Printf.sprintf "unknown graph family %S or bad arguments" name)

let parse_edge_list s =
  match String.index_opt s ';' with
  | None -> Error "edge list form is \"N; u-v u-v ...\""
  | Some i ->
    let n = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of n with
     | None -> Error "edge list must start with the vertex count"
     | Some n ->
       let tokens =
         List.filter (fun t -> t <> "")
           (String.split_on_char ' ' (String.trim rest))
       in
       let parse_edge t =
         match String.split_on_char '-' t with
         | [ u; v ] ->
           (match (int_of u, int_of v) with
            | Some u, Some v -> Ok (u, v)
            | _ -> Error (Printf.sprintf "bad edge %S" t))
         | _ -> Error (Printf.sprintf "bad edge %S" t)
       in
       let rec collect acc = function
         | [] -> Ok (List.rev acc)
         | t :: rest ->
           (match parse_edge t with
            | Ok e -> collect (e :: acc) rest
            | Error e -> Error e)
       in
       (match collect [] tokens with
        | Error e -> Error e
        | Ok edges ->
          (try Ok (Graph.create n edges)
           with Invalid_argument msg -> Error msg)))

let parse s =
  let s = String.trim s in
  if s = "" then Error "empty graph spec"
  else if String.contains s ';' then parse_edge_list s
  else
    match String.index_opt s ':' with
    | None ->
      (match s with
       | "petersen" -> Ok (Builders.petersen ())
       | "twotriangles" -> Ok (Builders.two_triangles ())
       | _ -> Error (Printf.sprintf "unknown graph %S (%s)" s describe))
    | Some i ->
      let name = String.sub s 0 i in
      let args = String.sub s (i + 1) (String.length s - i - 1) in
      if name = "g6" then
        try Ok (Graph6.decode args)
        with Invalid_argument msg -> Error msg
      else parse_named name args

let parse_exn s =
  match parse s with
  | Ok g -> g
  | Error e -> invalid_arg ("Spec.parse: " ^ e)
