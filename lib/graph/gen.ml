module Prng = Wlcq_util.Prng

let gnp rng n p =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.float rng < p then edges := (u, v) :: !edges
    done
  done;
  Graph.create n !edges

let random_tree rng n =
  if n <= 0 then Graph.empty 0
  else begin
    let parents = Array.make n (-1) in
    for v = 1 to n - 1 do parents.(v) <- Prng.int rng v done;
    Builders.tree_of_parents parents
  end

let random_connected rng n p =
  let tree = random_tree rng n in
  let extra = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.float rng < p then extra := (u, v) :: !extra
    done
  done;
  Ops.add_edges tree !extra

let random_regular_ish rng n d =
  let deg = Array.make n 0 in
  let edges = ref [] in
  let adjacent u v = List.mem (min u v, max u v) !edges in
  let attempts = n * d * 10 in
  let count = ref 0 in
  let i = ref 0 in
  let target = (n * d) / 2 in
  while !i < attempts && !count < target do
    incr i;
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v && deg.(u) < d && deg.(v) < d && not (adjacent u v) then begin
      edges := (min u v, max u v) :: !edges;
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1;
      incr count
    end
  done;
  Graph.create n !edges

let random_bipartite rng a b p =
  let edges = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      if Prng.float rng < p then edges := (u, v) :: !edges
    done
  done;
  Graph.create (a + b) !edges
