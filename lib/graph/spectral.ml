module Bigint = Wlcq_util.Bigint

let adjacency g =
  let n = Graph.num_vertices g in
  Array.init n (fun u ->
      Array.init n (fun v ->
          if Graph.adjacent g u v then Bigint.one else Bigint.zero))

let mat_mul a b =
  let n = Array.length a in
  Array.init n (fun i ->
      Array.init n (fun j ->
          let s = ref Bigint.zero in
          for k = 0 to n - 1 do
            s := Bigint.add !s (Bigint.mul a.(i).(k) b.(k).(j))
          done;
          !s))

let trace a =
  let n = Array.length a in
  let s = ref Bigint.zero in
  for i = 0 to n - 1 do s := Bigint.add !s a.(i).(i) done;
  !s

(* Faddeev–LeVerrier: M_1 = A, c_{n-1} = -tr(M_1);
   M_{k+1} = A (M_k + c_{n-k} I), c_{n-k-1} = -tr(M_{k+1})/(k+1).
   All divisions are exact over the integers. *)
let characteristic_polynomial g =
  let n = Graph.num_vertices g in
  let c = Array.make (n + 1) Bigint.zero in
  c.(n) <- Bigint.one;
  if n > 0 then begin
    let a = adjacency g in
    let m = ref a in
    for k = 1 to n do
      if k > 1 then begin
        (* M_k = A (M_{k-1} + c_{n-k+1} I) *)
        let adjusted =
          Array.mapi
            (fun i row ->
               Array.mapi
                 (fun j x ->
                    if i = j then Bigint.add x c.(n - k + 1) else x)
                 row)
            !m
        in
        m := mat_mul a adjusted
      end;
      let t = trace !m in
      let q, r = Bigint.divmod (Bigint.neg t) (Bigint.of_int k) in
      assert (Bigint.is_zero r);
      c.(n - k) <- q
    done
  end;
  c

let cospectral g1 g2 =
  let c1 = characteristic_polynomial g1 in
  let c2 = characteristic_polynomial g2 in
  Array.length c1 = Array.length c2 && Array.for_all2 Bigint.equal c1 c2

let closed_walks g k =
  if k < 0 then invalid_arg "Spectral.closed_walks: negative length";
  let n = Graph.num_vertices g in
  if n = 0 then Bigint.zero
  else if k = 0 then Bigint.of_int n
  else begin
    let a = adjacency g in
    let p = ref a in
    for _ = 2 to k do p := mat_mul a !p done;
    trace !p
  end
