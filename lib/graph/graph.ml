module Bitset = Wlcq_util.Bitset
module Ordering = Wlcq_util.Ordering

type t = { n : int; adj : Bitset.t array; m : int }

let empty n =
  if n < 0 then invalid_arg "Graph.empty: negative vertex count";
  { n; adj = Array.init n (fun _ -> Bitset.create n); m = 0 }

let create n edge_list =
  let g = empty n in
  List.iter
    (fun (u, v) ->
       if u < 0 || u >= n || v < 0 || v >= n then
         invalid_arg "Graph.create: endpoint out of range";
       if u = v then invalid_arg "Graph.create: self-loop";
       Bitset.set g.adj.(u) v;
       Bitset.set g.adj.(v) u)
    edge_list;
  let m = ref 0 in
  Array.iter (fun s -> m := !m + Bitset.cardinal s) g.adj;
  { g with m = !m / 2 }

let num_vertices g = g.n
let num_edges g = g.m

let adjacent g u v = Bitset.mem g.adj.(u) v
let degree g v = Bitset.cardinal g.adj.(v)
let neighbours g v = Bitset.copy g.adj.(v)
let neighbours_list g v = Bitset.to_list g.adj.(v)
let iter_neighbours g v f = Bitset.iter f g.adj.(v)
let fold_neighbours g v f init = Bitset.fold f g.adj.(v) init

let iter_edges g f =
  (* lint: allow R7 single O(n + m) pass; budgeted callers poll around
     whole-graph sweeps, not inside them *)
  for u = 0 to g.n - 1 do
    Bitset.iter (fun v -> if u < v then f u v) g.adj.(u)
  done

let edges g =
  let acc = ref [] in
  iter_edges g (fun u v -> acc := (u, v) :: !acc);
  List.rev !acc

let vertices g = List.init g.n (fun i -> i)

let equal g1 g2 =
  g1.n = g2.n && Array.for_all2 Bitset.equal g1.adj g2.adj

let compare g1 g2 =
  let c = Int.compare g1.n g2.n in
  if c <> 0 then c else Ordering.array Bitset.compare g1.adj g2.adj

let hash g =
  Array.fold_left
    (fun h s -> Ordering.hash_mix h (Bitset.hash s))
    (Ordering.hash_int g.n) g.adj

let degree_sequence g =
  List.sort (fun a b -> Int.compare b a) (List.init g.n (degree g))

let max_degree g = List.fold_left max 0 (List.init g.n (degree g))

let pp ppf g =
  Format.fprintf ppf "graph(n=%d, edges=[%a])" g.n
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf (u, v) -> Format.fprintf ppf "(%d,%d)" u v))
    (edges g)

let to_string g = Format.asprintf "%a" pp g
