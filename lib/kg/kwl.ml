module Ordering = Wlcq_util.Ordering
module Obs = Wlcq_obs.Obs
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome

type result = { colours : int array; num_colours : int; rounds : int }

let m_refine_runs = Obs.counter "kg.refine.runs"
let m_refine_rounds = Obs.counter "kg.refine.rounds"
let m_kwl_runs = Obs.counter "kg.kwl.runs"
let m_kwl_rounds = Obs.counter "kg.kwl.rounds"
let m_prefix = Obs.counter "robust.fallback.kg_prefix"
let m_exhausted = Obs.counter "robust.fallback.kg_exhausted"

let canonicalise cmp labelled =
  let distinct =
    List.sort_uniq cmp (List.concat_map Array.to_list labelled)
  in
  let ids = Hashtbl.create 256 in
  List.iteri (fun i s -> Hashtbl.replace ids s i) distinct;
  let id_of s =
    (* total: [distinct] enumerates every signature in [labelled] *)
    match Hashtbl.find_opt ids s with Some i -> i | None -> assert false
  in
  (List.map (Array.map id_of) labelled, List.length distinct)

(* ------------------------------------------------------------------ *)
(* Colour refinement                                                   *)
(* ------------------------------------------------------------------ *)

let refine_many ?(budget = Budget.unlimited) graphs =
  let init =
    List.map
      (fun g ->
         Array.init (Kgraph.num_vertices g) (fun v ->
             [ Kgraph.vertex_label g v ]))
      graphs
  in
  let colourings, num = canonicalise Ordering.int_list init in
  let round colourings =
    let signatures =
      List.map2
        (fun g colours ->
           Array.init (Kgraph.num_vertices g) (fun v ->
               let outs =
                 List.map (fun (w, l) -> (0, l, colours.(w)))
                   (Kgraph.out_edges g v)
               in
               let ins =
                 List.map (fun (w, l) -> (1, l, colours.(w)))
                   (Kgraph.in_edges g v)
               in
               (colours.(v), List.sort Ordering.int_triple (outs @ ins))))
        graphs colourings
    in
    canonicalise
      (Ordering.pair Int.compare (List.compare Ordering.int_triple))
      signatures
  in
  let rec go colourings num rounds =
    (* one poll per round: rounds are the unbounded dimension of
       refinement on labelled directed graphs *)
    Budget.tick_check budget;
    let colourings', num' = Obs.span "kg.refine.round" (fun () -> round colourings) in
    if num' = num then (colourings, num, rounds)
    else go colourings' num' (rounds + 1)
  in
  let colourings, num, rounds =
    Obs.span "kg.refine.run" (fun () -> go colourings num 0)
  in
  if Obs.enabled () then begin
    Obs.incr m_refine_runs;
    Obs.add m_refine_rounds rounds
  end;
  List.map (fun colours -> { colours; num_colours = num; rounds }) colourings

let refine g = match refine_many [ g ] with [ r ] -> r | _ -> assert false

let refine_pair g1 g2 =
  match refine_many [ g1; g2 ] with
  | [ r1; r2 ] -> (r1, r2)
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Folklore k-WL on k-tuples                                           *)
(* ------------------------------------------------------------------ *)

let decode_tuple k n idx =
  let t = Array.make k 0 in
  let r = ref idx in
  for i = k - 1 downto 0 do
    t.(i) <- !r mod n;
    r := !r / n
  done;
  t

(* atomic type: vertex labels plus, for each ordered pair (i, j) with
   i <> j, the sorted list of labels of edges t_i -> t_j, plus the
   equality pattern *)
let atomic g k idx =
  let n = Kgraph.num_vertices g in
  let t = decode_tuple k n idx in
  let labels = Array.to_list (Array.map (Kgraph.vertex_label g) t) in
  let rels = ref [] in
  for i = k - 1 downto 0 do
    for j = k - 1 downto 0 do
      if i <> j then begin
        let ls =
          List.filter_map (* lint: hot-alloc atomic-type constructor: the signature lists are the output, built once per tuple at initialisation *)
            (fun (w, l) -> if w = t.(j) then Some l else None)
            (Kgraph.out_edges g t.(i))
        in
        (* lint: hot-alloc atomic-type constructor, as above *)
        rels := (i, j, t.(i) = t.(j), List.sort Int.compare ls) :: !rels
      end
    done
  done;
  (labels, !rels)

let atomic_order =
  let rel (i1, j1, eq1, ls1) (i2, j2, eq2, ls2) =
    let c = Int.compare i1 i2 in
    if c <> 0 then c
    else
      let c = Int.compare j1 j2 in
      if c <> 0 then c
      else
        let c = Bool.compare eq1 eq2 in
        if c <> 0 then c else Ordering.int_list ls1 ls2
  in
  Ordering.pair Ordering.int_list (List.compare rel)

(* The rounds are functional (each builds a fresh colouring list), so
   budget enforcement is between-round: a trip observed by [Budget.poll]
   abandons the round about to start and keeps the previous round's
   colourings — a sound stable-colour prefix.  Only a trip during the
   initial atomic typing (ticked per tuple) aborts with no prefix. *)
let run_many_core ~budget k graphs =
  if k < 2 then invalid_arg "Kwl.run: requires k >= 2 (use refine for k = 1)";
  let tuple_counts =
    List.map
      (fun g ->
         let n = Kgraph.num_vertices g in
         let rec pow acc i = if i = 0 then acc else pow (acc * n) (i - 1) in
         pow 1 k)
      graphs
  in
  let init =
    List.map2
      (fun g count ->
         Array.init count (fun idx ->
             Budget.tick_check budget;
             atomic g k idx))
      graphs tuple_counts
  in
  let colourings, num = canonicalise atomic_order init in
  let round colourings =
    let signatures =
      List.map2
        (fun (g, count) colours ->
           let n = Kgraph.num_vertices g in
           let place = Array.make k 1 in
           for i = k - 2 downto 0 do place.(i) <- place.(i + 1) * n done;
           Array.init count (fun idx ->
               let t = decode_tuple k n idx in
               let entries = ref [] in
               for w = 0 to n - 1 do
                 let entry =
                   (* lint: hot-alloc naive k-WL round: the per-tuple signature lists are the round's output *)
                   Array.init k (fun i ->
                       colours.(idx + ((w - t.(i)) * place.(i))))
                 in
                 (* lint: hot-alloc naive k-WL round, as above *)
                 entries := Array.to_list entry :: !entries
               done;
               (colours.(idx), List.sort Ordering.int_list !entries)))
        (List.combine graphs tuple_counts)
        colourings
    in
    canonicalise
      (Ordering.pair Int.compare (List.compare Ordering.int_list))
      signatures
  in
  let rec go colourings num rounds =
    if Budget.poll budget then (colourings, num, rounds, Budget.tripped budget)
    else
      let colourings', num' =
        Obs.span "kg.kwl.round" (fun () -> round colourings)
      in
      if num' = num then (colourings, num, rounds, None)
      else go colourings' num' (rounds + 1)
  in
  let colourings, num, rounds, aborted =
    Obs.span "kg.kwl.run"
      ~attrs:[ ("k", string_of_int k) ]
      (fun () -> go colourings num 0)
  in
  if Obs.enabled () then begin
    Obs.incr m_kwl_runs;
    Obs.add m_kwl_rounds rounds
  end;
  ( List.map (fun colours -> { colours; num_colours = num; rounds }) colourings,
    aborted )

let run_many k graphs =
  fst (run_many_core ~budget:Budget.unlimited k graphs)

let run k g = match run_many k [ g ] with [ r ] -> r | _ -> assert false

let run_pair k g1 g2 =
  match run_many k [ g1; g2 ] with
  | [ r1; r2 ] -> (r1, r2)
  | _ -> assert false

(* lint: allow R8 Invalid_argument is the k >= 2 arity validation
   reporting a caller bug, deliberately outside the Outcome envelope *)
let run_many_budgeted ~budget k graphs =
  Obs.entry_point "kg_kwl.run_many" @@ fun () ->
  match run_many_core ~budget k graphs with
  | exception Budget.Exhausted r ->
    (* tripped during the initial atomic typing: no prefix exists *)
    Obs.incr m_exhausted;
    Obs.journal ~severity:Obs.Warn
      ~attrs:[ ("reason", Budget.reason_to_string r) ]
      "kg_kwl.exhausted";
    `Exhausted r
  | results, None -> `Exact results
  | results, Some cause ->
    Obs.incr m_prefix;
    Obs.journal ~severity:Obs.Warn
      ~attrs:[ ("cause", Budget.reason_to_string cause) ]
      "kg_kwl.prefix_fallback";
    Outcome.degraded ~cause
      ~fallback:
        (Printf.sprintf "stable colour prefix after %d completed rounds"
           (match results with r :: _ -> r.rounds | [] -> 0))
      results

(* lint: allow R8 Invalid_argument is the k >= 2 arity validation
   reporting a caller bug, deliberately outside the Outcome envelope *)
let run_budgeted ~budget k g =
  match run_many_budgeted ~budget k [ g ] with
  | `Exact [ r ] -> `Exact r
  | `Degraded ([ r ], reason) -> `Degraded (r, reason)
  | `Exhausted r -> `Exhausted r
  | `Exact _ | `Degraded _ -> assert false

let histogram r =
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun c ->
       Hashtbl.replace counts c
         (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)))
    r.colours;
  List.sort Ordering.int_pair
    (Hashtbl.fold (fun c n acc -> (c, n) :: acc) counts [])

let equivalent k g1 g2 =
  if k < 1 then invalid_arg "Kwl.equivalent: k must be positive"
  else if k = 1 then begin
    let r1, r2 = refine_pair g1 g2 in
    List.equal (Ordering.equal_pair Int.equal Int.equal) (histogram r1) (histogram r2)
  end
  else begin
    let r1, r2 = run_pair k g1 g2 in
    List.equal (Ordering.equal_pair Int.equal Int.equal) (histogram r1) (histogram r2)
  end

(* lint: allow R8 Invalid_argument is the k >= 1 arity validation
   reporting a caller bug, deliberately outside the Outcome envelope *)
let equivalent_budgeted ~budget k g1 g2 =
  if k < 1 then invalid_arg "Kwl.equivalent_budgeted: k must be positive"
  else
  Obs.entry_point "kg_kwl.equivalent" @@ fun () ->
  if k = 1 then (
    (* refinement polls the budget once per round, so a tripped
       deadline stops it mid-run *)
    match refine_many ~budget [ g1; g2 ] with
    | [ r1; r2 ] ->
      `Exact
        (List.equal
           (Ordering.equal_pair Int.equal Int.equal)
           (histogram r1) (histogram r2))
    | _ -> assert false
    | exception Budget.Exhausted reason -> `Exhausted reason)
  else
    let verdict r1 r2 =
      List.equal (Ordering.equal_pair Int.equal Int.equal) (histogram r1)
        (histogram r2)
    in
    match run_many_budgeted ~budget k [ g1; g2 ] with
    | `Exact [ r1; r2 ] -> `Exact (verdict r1 r2)
    | `Degraded ([ r1; r2 ], reason) ->
      (* the prefix colourings refine only further: a histogram
         divergence at any completed round is permanent *)
      if verdict r1 r2 then `Exhausted reason.Outcome.cause else `Exact false
    | `Exhausted r -> `Exhausted r
    | `Exact _ | `Degraded _ -> assert false
