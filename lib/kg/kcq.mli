(** Conjunctive queries over knowledge graphs (Section 1.3, item C).

    A query is a knowledge graph [H] (variables, with labelled
    directed atoms between them and vertex-label atoms on them)
    together with the free-variable set [X].  Answers, counting
    equivalence, the extension graph [Γ], extension width, and the
    semantic extension width all lift verbatim, with treewidth taken
    over the {e underlying} Gaifman graph.  The paper's Theorem 1
    extends to this setting; the test suite checks consistency with
    the plain-graph machinery under the {!Kgraph.of_graph} encoding. *)

module Bitset = Wlcq_util.Bitset
module Budget = Wlcq_robust.Budget

type t = private { graph : Kgraph.t; free : Bitset.t }

(** [make h xs] is the query [(h, xs)].
    @raise Invalid_argument on duplicates or out-of-range variables. *)
val make : Kgraph.t -> int list -> t

val free_vars : t -> int array
val quantified_vars : t -> int array
val num_free : t -> int
val is_connected : t -> bool
(** Connectivity of the underlying Gaifman graph. *)

(** [is_answer q g a] tests extendability of the assignment [a]
    (parallel to [free_vars q]) to a knowledge-graph homomorphism. *)
val is_answer : t -> Kgraph.t -> int array -> bool

(** [count_answers q g] is [|Ans(q, g)|].  [budget] is ticked once per
    candidate assignment.
    @raise Budget.Exhausted when [budget] trips. *)
val count_answers : ?budget:Budget.t -> t -> Kgraph.t -> int

(** [gamma_graph q] is [Γ(H, X)] over the underlying graph: [H]'s
    Gaifman graph plus an edge between free variables sharing an
    adjacent quantified component. *)
val gamma_graph : t -> Wlcq_graph.Graph.t

(** [extension_width q] is [tw(Γ(H, X))]. *)
val extension_width : t -> int

(** [counting_core q] is the counting-minimal representative, computed
    by shrinking with label- and direction-preserving endomorphisms
    that fix [X] pointwise (the Lemma 44 machinery lifted to knowledge
    graphs). *)
val counting_core : t -> t

(** [is_counting_minimal q] holds when no shrinking endomorphism
    exists. *)
val is_counting_minimal : t -> bool

(** [semantic_extension_width q] is the extension width of the
    counting core. *)
val semantic_extension_width : t -> int

(** [wl_dimension q] is the WL-dimension over knowledge graphs: the
    semantic extension width (Theorem 1 as extended by Section 1.3
    (C)); connected queries with [X ≠ ∅] only. *)
val wl_dimension : t -> int

(** [of_cq q] encodes a plain-graph query via {!Kgraph.of_graph}
    (vertex label 0, edge label 0). *)
val of_cq : Wlcq_core.Cq.t -> t
