let describe =
  "kgraph spec: \"N ; labels l0 l1 ... ; edges u-l>v u-l>v ...\" (labels \
   section optional, defaults to 0)"

let ( let* ) = Result.bind

let words s =
  List.filter
    (fun t -> not (String.equal t ""))
    (String.split_on_char ' ' (String.trim s))

let parse_edge t =
  (* u-l>v *)
  match String.index_opt t '-' with
  | None -> Error (Printf.sprintf "bad edge %S (expected u-l>v)" t)
  | Some i ->
    (match String.index_opt t '>' with
     | None -> Error (Printf.sprintf "bad edge %S (expected u-l>v)" t)
     | Some j when j > i ->
       let u = String.sub t 0 i in
       let l = String.sub t (i + 1) (j - i - 1) in
       let v = String.sub t (j + 1) (String.length t - j - 1) in
       (match (int_of_string_opt u, int_of_string_opt l, int_of_string_opt v)
        with
        | Some u, Some l, Some v -> Ok (u, v, l)
        | _ -> Error (Printf.sprintf "bad edge %S" t))
     | Some _ -> Error (Printf.sprintf "bad edge %S" t))

let parse s =
  let sections = List.map String.trim (String.split_on_char ';' s) in
  match sections with
  | [] -> Error "empty spec"
  | count :: rest ->
    (match int_of_string_opt (String.trim count) with
     | None -> Error "spec must start with the vertex count"
     | Some n when n < 0 -> Error "vertex count must be non-negative"
     | Some n ->
       let labels = ref (Array.make n 0) in
       let edges = ref [] in
       let* () =
         List.fold_left
           (fun acc section ->
              let* () = acc in
              match words section with
              | [] -> Ok ()
              | "labels" :: ls ->
                if List.length ls <> n then
                  Error "labels section must list one label per vertex"
                else begin
                  (match
                     List.map
                       (fun t ->
                          match int_of_string_opt t with
                          | Some v -> v
                          | None -> -1)
                       ls
                   with
                   | parsed when List.for_all (fun v -> v >= 0) parsed ->
                     labels := Array.of_list parsed;
                     Ok ()
                   | _ -> Error "bad label value")
                end
              | "edges" :: es ->
                List.fold_left
                  (fun acc t ->
                     let* () = acc in
                     let* e = parse_edge t in
                     edges := e :: !edges;
                     Ok ())
                  (Ok ()) es
              | w :: _ -> Error (Printf.sprintf "unknown section %S" w))
           (Ok ()) rest
       in
       (try Ok (Kgraph.create ~n ~vertex_labels:!labels ~edges:!edges)
        with Invalid_argument msg -> Error msg))

let parse_exn s =
  match parse s with
  | Ok g -> g
  | Error e -> invalid_arg ("Kspec.parse: " ^ e)
