type parsed = {
  query : Kcq.t;
  names : string array;
  relations : string array;
  labels : string array;
}

type token = Ident of string | Lparen | Rparen | Comma | Dot | Amp | Define

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) (Lparen :: acc)
      | ')' -> go (i + 1) (Rparen :: acc)
      | ',' -> go (i + 1) (Comma :: acc)
      | '.' -> go (i + 1) (Dot :: acc)
      | '&' -> go (i + 1) (Amp :: acc)
      | ':' ->
        if i + 1 < n && s.[i + 1] = '=' then go (i + 2) (Define :: acc)
        else Error (Printf.sprintf "unexpected ':' at position %d" i)
      | c when (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' ->
        let j = ref i in
        while
          !j < n
          && (let c = s.[!j] in
              (c >= 'a' && c <= 'z')
              || (c >= 'A' && c <= 'Z')
              || (c >= '0' && c <= '9')
              || c = '_' || c = '\'')
        do
          incr j
        done;
        go !j (Ident (String.sub s i (!j - i)) :: acc)
      | c -> Error (Printf.sprintf "unexpected character %C at position %d" c i)
  in
  go 0 []

let ( let* ) = Result.bind

let parse_head tokens =
  match tokens with
  | Lparen :: Rparen :: Define :: rest -> Ok ([], rest)
  | Lparen :: rest ->
    let rec idents acc = function
      | Ident x :: Comma :: rest -> idents (x :: acc) rest
      | Ident x :: Rparen :: Define :: rest -> Ok (List.rev (x :: acc), rest)
      | _ -> Error "malformed head: expected '(x1, ..., xk) :='"
    in
    idents [] rest
  | _ -> Error "query must start with a head '(x1, ..., xk) :='"

let parse_exists tokens =
  match tokens with
  | Ident "exists" :: rest ->
    let rec idents acc = function
      | Dot :: rest -> Ok (List.rev acc, rest)
      | Ident x :: rest -> idents (x :: acc) rest
      | _ -> Error "malformed quantifier: expected 'exists y1 y2 ... .'"
    in
    (match rest with
     | Ident _ :: _ -> idents [] rest
     | _ -> Error "'exists' must be followed by at least one variable")
  | _ -> Ok ([], tokens)

type atom = Unary of string * string | Binary of string * string * string

let parse_atoms tokens =
  let atom = function
    | Ident r :: Lparen :: Ident a :: Comma :: Ident b :: Rparen :: rest ->
      Ok (Binary (r, a, b), rest)
    | Ident l :: Lparen :: Ident a :: Rparen :: rest -> Ok (Unary (l, a), rest)
    | _ -> Error "malformed atom: expected 'R(u, v)' or 'L(u)'"
  in
  let* first, rest = atom tokens in
  let rec more acc = function
    | Amp :: rest ->
      let* a, rest = atom rest in
      more (a :: acc) rest
    | [] -> Ok (List.rev acc)
    | _ -> Error "trailing tokens after atoms"
  in
  more [ first ] rest

let parse ?(relations = [||]) ?(labels = [| "_" |]) s =
  let* tokens = tokenize s in
  let* free_names, rest = parse_head tokens in
  let* exist_names, rest = parse_exists rest in
  let* atoms = parse_atoms rest in
  let names = free_names @ exist_names in
  let var_ids = Hashtbl.create 16 in
  let* () =
    List.fold_left
      (fun acc name ->
         let* () = acc in
         if Hashtbl.mem var_ids name then
           Error (Printf.sprintf "variable %s declared twice" name)
         else begin
           Hashtbl.replace var_ids name (Hashtbl.length var_ids);
           Ok ()
         end)
      (Ok ()) names
  in
  let var_of name =
    match Hashtbl.find_opt var_ids name with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "undeclared variable %s" name)
  in
  let relation_ids = Hashtbl.create 8 in
  let relation_names = ref [] in
  Array.iteri
    (fun i name ->
       Hashtbl.replace relation_ids name i;
       relation_names := name :: !relation_names)
    relations;
  let relation_of name =
    match Hashtbl.find_opt relation_ids name with
    | Some id -> id
    | None ->
      let id = Hashtbl.length relation_ids in
      Hashtbl.replace relation_ids name id;
      relation_names := name :: !relation_names;
      id
  in
  let label_ids = Hashtbl.create 8 in
  let label_names = ref [] in
  let labels = if Array.length labels = 0 then [| "_" |] else labels in
  Array.iteri
    (fun i name ->
       Hashtbl.replace label_ids name i;
       label_names := name :: !label_names)
    labels;
  let label_of name =
    match Hashtbl.find_opt label_ids name with
    | Some id -> id
    | None ->
      let id = Hashtbl.length label_ids in
      Hashtbl.replace label_ids name id;
      label_names := name :: !label_names;
      id
  in
  let n = List.length names in
  let vertex_labels = Array.make n 0 in
  let* edges =
    List.fold_left
      (fun acc atom ->
         let* edges = acc in
         match atom with
         | Binary (r, a, b) ->
           let* u = var_of a in
           let* v = var_of b in
           if u = v then
             Error (Printf.sprintf "atom %s(%s, %s) is a self-loop" r a b)
           else Ok ((u, v, relation_of r) :: edges)
         | Unary (l, a) ->
           let* u = var_of a in
           let id = label_of l in
           if vertex_labels.(u) <> 0 && vertex_labels.(u) <> id then
             Error (Printf.sprintf "variable %s has two distinct labels" a)
           else begin
             vertex_labels.(u) <- id;
             Ok edges
           end)
      (Ok []) atoms
  in
  let graph = Kgraph.create ~n ~vertex_labels ~edges in
  let free = List.init (List.length free_names) (fun i -> i) in
  Ok
    {
      query = Kcq.make graph free;
      names = Array.of_list names;
      relations = Array.of_list (List.rev !relation_names);
      labels = Array.of_list (List.rev !label_names);
    }

let parse_exn ?relations ?labels s =
  match parse ?relations ?labels s with
  | Ok p -> p
  | Error msg -> invalid_arg ("Kparser.parse: " ^ msg)

let to_formula p =
  let q = p.query in
  let buf = Buffer.create 64 in
  let xs = Kcq.free_vars q and ys = Kcq.quantified_vars q in
  Buffer.add_char buf '(';
  Array.iteri
    (fun i x ->
       if i > 0 then Buffer.add_string buf ", ";
       Buffer.add_string buf p.names.(x))
    xs;
  Buffer.add_string buf ") := ";
  if Array.length ys > 0 then begin
    Buffer.add_string buf "exists";
    Array.iter
      (fun y ->
         Buffer.add_char buf ' ';
         Buffer.add_string buf p.names.(y))
      ys;
    Buffer.add_string buf " . "
  end;
  let atoms = ref [] in
  Array.iteri
    (fun v l ->
       if l <> 0 then
         atoms := Printf.sprintf "%s(%s)" p.labels.(l) p.names.(v) :: !atoms)
    (Array.init (Kgraph.num_vertices q.Kcq.graph)
       (Kgraph.vertex_label q.Kcq.graph));
  List.iter
    (fun (u, v, l) ->
       atoms :=
         Printf.sprintf "%s(%s, %s)" p.relations.(l) p.names.(u) p.names.(v)
         :: !atoms)
    (Kgraph.edges q.Kcq.graph);
  Buffer.add_string buf (String.concat " & " (List.rev !atoms));
  Buffer.contents buf
