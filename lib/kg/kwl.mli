(** The Weisfeiler-Leman algorithm on knowledge graphs
    (Section 1.3 (C), following Barceló et al.).

    Colour refinement starts from the vertex labels and folds the
    multiset of (edge label, direction, neighbour colour) triples per
    round; folklore k-WL starts from atomic types that record the
    vertex labels, equalities, and the labelled directed edges inside
    each k-tuple.  On a plain graph encoded via {!Kgraph.of_graph}
    both coincide with the plain-graph algorithms — the test suite
    checks this compatibility. *)

module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome

type result = { colours : int array; num_colours : int; rounds : int }

(** [refine g] is colour refinement (1-WL) on the knowledge graph. *)
val refine : Kgraph.t -> result

(** [refine_pair g1 g2] refines jointly (comparable colours). *)
val refine_pair : Kgraph.t -> Kgraph.t -> result * result

(** [run k g] is folklore k-WL on k-tuples ([k >= 2]). *)
val run : int -> Kgraph.t -> result

(** [run_pair k g1 g2] refines jointly. *)
val run_pair : int -> Kgraph.t -> Kgraph.t -> result * result

(** [equivalent k g1 g2] decides [g1 ≅_k g2] over knowledge graphs
    ([k = 1] is colour refinement).
    @raise Invalid_argument when [k < 1]. *)
val equivalent : int -> Kgraph.t -> Kgraph.t -> bool

(** {2 Budgeted entry points}

    The rounds are functional, so budget enforcement is between-round
    ([Budget.poll]): a trip keeps the previous round's colourings — a
    sound stable-colour prefix ([`Degraded],
    [robust.fallback.kg_prefix]).  Only a trip during the initial
    atomic typing aborts with no prefix ([`Exhausted],
    [robust.fallback.kg_exhausted]). *)

val run_many_budgeted :
  budget:Budget.t -> int -> Kgraph.t list ->
  (result list, Budget.reason) Outcome.t

val run_budgeted :
  budget:Budget.t -> int -> Kgraph.t ->
  (result, Budget.reason) Outcome.t

(** A histogram divergence at a completed round is permanent, so it
    yields [`Exact false] even under a tripped budget; an inconclusive
    prefix yields [`Exhausted].  For [k = 1], refinement runs
    unbudgeted (it is cheap) with a boundary check.
    @raise Invalid_argument when [k < 1]. *)
val equivalent_budgeted :
  budget:Budget.t -> int -> Kgraph.t -> Kgraph.t ->
  (bool, Budget.reason) Outcome.t

(** [histogram r] is the sorted [(colour, multiplicity)] list. *)
val histogram : result -> (int * int) list
