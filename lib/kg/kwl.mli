(** The Weisfeiler-Leman algorithm on knowledge graphs
    (Section 1.3 (C), following Barceló et al.).

    Colour refinement starts from the vertex labels and folds the
    multiset of (edge label, direction, neighbour colour) triples per
    round; folklore k-WL starts from atomic types that record the
    vertex labels, equalities, and the labelled directed edges inside
    each k-tuple.  On a plain graph encoded via {!Kgraph.of_graph}
    both coincide with the plain-graph algorithms — the test suite
    checks this compatibility. *)

type result = { colours : int array; num_colours : int; rounds : int }

(** [refine g] is colour refinement (1-WL) on the knowledge graph. *)
val refine : Kgraph.t -> result

(** [refine_pair g1 g2] refines jointly (comparable colours). *)
val refine_pair : Kgraph.t -> Kgraph.t -> result * result

(** [run k g] is folklore k-WL on k-tuples ([k >= 2]). *)
val run : int -> Kgraph.t -> result

(** [run_pair k g1 g2] refines jointly. *)
val run_pair : int -> Kgraph.t -> Kgraph.t -> result * result

(** [equivalent k g1 g2] decides [g1 ≅_k g2] over knowledge graphs
    ([k = 1] is colour refinement).
    @raise Invalid_argument when [k < 1]. *)
val equivalent : int -> Kgraph.t -> Kgraph.t -> bool

(** [histogram r] is the sorted [(colour, multiplicity)] list. *)
val histogram : result -> (int * int) list
