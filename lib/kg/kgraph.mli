(** Knowledge graphs (Section 1.3, item C).

    The paper notes that its analysis extends from plain graphs to
    {e knowledge graphs}: directed graphs with vertex labels and edge
    labels, where parallel edges with distinct labels are allowed but
    self-loops are not.  This module provides that data model; the
    rest of [wlcq_kg] lifts homomorphisms, the WL algorithm, and
    conjunctive queries to it.

    Vertices are [0 .. n-1]; vertex labels and edge labels are small
    integers (use {!Kparser}'s tables to attach names). *)

type t

(** [create ~n ~vertex_labels ~edges] builds a knowledge graph.
    [vertex_labels] has length [n]; [edges] lists directed labelled
    edges [(source, target, label)].  Duplicate edges are merged;
    parallel edges with distinct labels are kept.
    @raise Invalid_argument on self-loops, out-of-range endpoints,
    negative labels, or a mis-sized label array. *)
val create :
  n:int -> vertex_labels:int array -> edges:(int * int * int) list -> t

(** [num_vertices g] is [n]. *)
val num_vertices : t -> int

(** [num_edges g] is the number of distinct labelled directed edges. *)
val num_edges : t -> int

(** [vertex_label g v] is the label of [v]. *)
val vertex_label : t -> int -> int

(** [has_edge g u v label] tests for the directed edge [u -> v] with
    the given label. *)
val has_edge : t -> int -> int -> int -> bool

(** [out_edges g u] lists [(target, label)] pairs, sorted. *)
val out_edges : t -> int -> (int * int) list

(** [in_edges g v] lists [(source, label)] pairs, sorted. *)
val in_edges : t -> int -> (int * int) list

(** [edges g] lists all [(source, target, label)] triples, sorted. *)
val edges : t -> (int * int * int) list

(** [edge_labels g] is the sorted list of edge labels in use. *)
val edge_labels : t -> int list

(** [underlying g] is the undirected simple Gaifman graph: [{u,v}] is
    an edge iff some labelled directed edge connects [u] and [v] in
    either direction.  Treewidth and the extension graph of
    knowledge-graph queries are defined over this graph. *)
val underlying : t -> Wlcq_graph.Graph.t

(** [of_graph g ~vertex_label ~edge_label] encodes an undirected
    simple graph as a knowledge graph: every undirected edge becomes
    the two directed edges with [edge_label], every vertex gets
    [vertex_label].  Plain-graph results must be invariant under this
    encoding, which the tests exploit. *)
val of_graph : Wlcq_graph.Graph.t -> vertex_label:int -> edge_label:int -> t

(** [equal g1 g2] is labelled equality (same vertices, labels and
    edges). *)
val equal : t -> t -> bool

(** [compare] is a total order compatible with {!equal} (vertex count,
    vertex labels, then adjacency).  Use this — never polymorphic
    [Stdlib.compare] — when knowledge graphs key ordered
    collections. *)
val compare : t -> t -> int

(** [hash] is compatible with {!equal}, for [Hashtbl.Make]-style keyed
    tables. *)
val hash : t -> int

val pp : Format.formatter -> t -> unit
