(** Textual knowledge-graph specifications for the command line.

    Format: semicolon-separated sections,
    {v N [; labels l0 l1 ... lN-1] [; edges u-l>v u-l>v ...] v}
    e.g. ["3; labels 1 1 2; edges 0-0>1 1-1>2"] — three vertices with
    labels 1,1,2, an edge [0 → 1] with edge label 0 and an edge
    [1 → 2] with edge label 1.  Omitted labels default to 0. *)

val parse : string -> (Kgraph.t, string) result
val parse_exn : string -> Kgraph.t
val describe : string
