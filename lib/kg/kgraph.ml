module Ordering = Wlcq_util.Ordering

type t = {
  n : int;
  vertex_labels : int array;
  out : (int * int) list array;  (* out.(u) = sorted (target, label) *)
  inc : (int * int) list array;  (* inc.(v) = sorted (source, label) *)
  m : int;
}

let create ~n ~vertex_labels ~edges =
  if n < 0 then invalid_arg "Kgraph.create: negative vertex count";
  if Array.length vertex_labels <> n then
    invalid_arg "Kgraph.create: vertex label array size mismatch";
  Array.iter
    (fun l -> if l < 0 then invalid_arg "Kgraph.create: negative vertex label")
    vertex_labels;
  List.iter
    (fun (u, v, l) ->
       if u < 0 || u >= n || v < 0 || v >= n then
         invalid_arg "Kgraph.create: endpoint out of range";
       if u = v then invalid_arg "Kgraph.create: self-loop";
       if l < 0 then invalid_arg "Kgraph.create: negative edge label")
    edges;
  let edges = List.sort_uniq Ordering.int_triple edges in
  let out = Array.make n [] and inc = Array.make n [] in
  List.iter
    (fun (u, v, l) ->
       out.(u) <- (v, l) :: out.(u);
       inc.(v) <- (u, l) :: inc.(v))
    edges;
  Array.iteri (fun i l -> out.(i) <- List.sort Ordering.int_pair l) out;
  Array.iteri (fun i l -> inc.(i) <- List.sort Ordering.int_pair l) inc;
  { n; vertex_labels = Array.copy vertex_labels; out; inc;
    m = List.length edges }

let num_vertices g = g.n
let num_edges g = g.m
let vertex_label g v = g.vertex_labels.(v)
let has_edge g u v label =
  List.exists (fun (v', l') -> v' = v && l' = label) g.out.(u)
let out_edges g u = g.out.(u)
let in_edges g v = g.inc.(v)

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    (* lint: hot-alloc accessor: materialises the edge list it returns *)
    List.iter (fun (v, l) -> acc := (u, v, l) :: !acc) (List.rev g.out.(u))
  done;
  !acc

let edge_labels g =
  List.sort_uniq Int.compare (List.map (fun (_, _, l) -> l) (edges g))

let underlying g =
  Wlcq_graph.Graph.create g.n
    (List.map (fun (u, v, _) -> (u, v)) (edges g))

let of_graph g ~vertex_label ~edge_label =
  let n = Wlcq_graph.Graph.num_vertices g in
  let edges =
    List.concat_map
      (fun (u, v) -> [ (u, v, edge_label); (v, u, edge_label) ])
      (Wlcq_graph.Graph.edges g)
  in
  create ~n ~vertex_labels:(Array.make n vertex_label) ~edges

let equal g1 g2 =
  g1.n = g2.n
  && Ordering.equal_array Int.equal g1.vertex_labels g2.vertex_labels
  && Ordering.equal_array
       (List.equal (Ordering.equal_pair Int.equal Int.equal))
       g1.out g2.out

let compare g1 g2 =
  let c = Int.compare g1.n g2.n in
  if c <> 0 then c
  else
    let c = Ordering.int_array g1.vertex_labels g2.vertex_labels in
    if c <> 0 then c
    else Ordering.array (List.compare Ordering.int_pair) g1.out g2.out

let hash g =
  let h = Ordering.hash_mix (Ordering.hash_int g.n) (Ordering.hash_int_array g.vertex_labels) in
  Array.fold_left
    (fun h es ->
       List.fold_left (fun h (v, l) -> Ordering.hash_mix (Ordering.hash_mix h v) l) h es)
    h g.out

let pp ppf g =
  Format.fprintf ppf "kgraph(n=%d, labels=[%a], edges=[%a])" g.n
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Format.pp_print_int)
    (Array.to_list g.vertex_labels)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf (u, v, l) -> Format.fprintf ppf "%d-%d>%d" u l v))
    (edges g)
