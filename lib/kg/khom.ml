(* Backtracking over the vertices of h in an order that follows the
   underlying connectivity, pruning candidates by vertex label and by
   labelled-edge consistency with already-assigned neighbours. *)

let assignment_order h pins =
  let under = Kgraph.underlying h in
  let n = Kgraph.num_vertices h in
  let seen = Array.make n false in
  let order = ref [] in
  let queue = Queue.create () in
  let push v =
    if not seen.(v) then begin
      seen.(v) <- true;
      Queue.add v queue
    end
  in
  let drain () =
    while not (Queue.is_empty queue) do
      let u = Queue.take queue in
      order := u :: !order;
      Wlcq_graph.Graph.iter_neighbours under u push
    done
  in
  List.iter (fun (u, _) -> push u) pins;
  drain ();
  for v = 0 to n - 1 do
    push v;
    drain ()
  done;
  Array.of_list (List.rev !order)

let iter ?(pins = []) h g f =
  let n = Kgraph.num_vertices h in
  let ng = Kgraph.num_vertices g in
  if n = 0 then f [||]
  else if ng = 0 then ()
  else begin
    let pinned = Array.make n (-1) in
    List.iter
      (fun (u, v) ->
         if u < 0 || u >= n || v < 0 || v >= ng then
           invalid_arg "Khom.iter: pin out of range";
         pinned.(u) <- v)
      pins;
    let order = assignment_order h pins in
    let position = Array.make n (-1) in
    Array.iteri (fun i u -> position.(u) <- i) order;
    let image = Array.make n (-1) in
    (* labelled constraints of u against earlier-assigned vertices:
       (earlier vertex, label, outgoing?) where outgoing means the h
       edge is u -l-> earlier *)
    let constraints =
      Array.map
        (fun u ->
           let earlier w = position.(w) < position.(u) in
           List.filter_map
             (fun (w, l) -> if earlier w then Some (w, l, true) else None)
             (Kgraph.out_edges h u)
           @ List.filter_map
             (fun (w, l) -> if earlier w then Some (w, l, false) else None)
             (Kgraph.in_edges h u))
        (Array.init n (fun i -> order.(i)))
    in
    let rec go i =
      if i = n then f image
      else begin
        let u = order.(i) in
        let try_v v =
          let wanted = Kgraph.vertex_label h u in
          if (wanted = 0 || Kgraph.vertex_label g v = wanted)
             && List.for_all
               (fun (w, l, outgoing) ->
                  if outgoing then Kgraph.has_edge g v image.(w) l
                  else Kgraph.has_edge g image.(w) v l)
               constraints.(i)
          then begin
            image.(u) <- v;
            go (i + 1);
            image.(u) <- -1
          end
        in
        if pinned.(u) >= 0 then try_v pinned.(u)
        else
          for v = 0 to ng - 1 do
            try_v v
          done
      end
    in
    go 0
  end

let count ?pins h g =
  let c = ref 0 in
  iter ?pins h g (fun _ -> incr c);
  !c

exception Found

let exists ?pins h g =
  try
    iter ?pins h g (fun _ -> raise Found);
    false
  with Found -> true

let is_homomorphism h g map =
  Array.length map = Kgraph.num_vertices h
  && begin
    let ok = ref true in
    Array.iteri
      (fun v img ->
         let wanted = Kgraph.vertex_label h v in
         if wanted <> 0 && Kgraph.vertex_label g img <> wanted then
           ok := false)
      map;
    List.iter
      (fun (u, v, l) ->
         if not (Kgraph.has_edge g map.(u) map.(v) l) then ok := false)
      (Kgraph.edges h);
    !ok
  end
