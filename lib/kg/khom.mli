(** Homomorphisms between knowledge graphs.

    A homomorphism must preserve every labelled directed edge
    ([u -l-> v] implies [h(u) -l-> h(v)]) and respect vertex labels in
    the {e label-refining} sense: a source vertex with the default
    label [0] is a wildcard (a query variable without a unary atom is
    unconstrained), while any other label must be matched exactly.
    This composes: the counting-core retractions of {!Kcq} rely on
    [g ∘ φ] being a homomorphism whenever [φ] and [g] are.  Mirrors
    {!Wlcq_hom.Brute} (pins included). *)

(** [iter ?pins h g f] applies [f] to every homomorphism from [h] to
    [g]; the array is reused between calls. *)
val iter :
  ?pins:(int * int) list -> Kgraph.t -> Kgraph.t -> (int array -> unit) -> unit

val count : ?pins:(int * int) list -> Kgraph.t -> Kgraph.t -> int
val exists : ?pins:(int * int) list -> Kgraph.t -> Kgraph.t -> bool

(** [is_homomorphism h g map] checks labels and labelled edges. *)
val is_homomorphism : Kgraph.t -> Kgraph.t -> int array -> bool
