module Bitset = Wlcq_util.Bitset
module Budget = Wlcq_robust.Budget
module Graph = Wlcq_graph.Graph
module Ops = Wlcq_graph.Ops
module Traversal = Wlcq_graph.Traversal

type t = { graph : Kgraph.t; free : Bitset.t }

let make h xs =
  let n = Kgraph.num_vertices h in
  let free = Bitset.create n in
  List.iter
    (fun x ->
       if x < 0 || x >= n then
         invalid_arg "Kcq.make: free variable out of range";
       if Bitset.mem free x then
         invalid_arg "Kcq.make: duplicate free variable";
       Bitset.set free x)
    xs;
  { graph = h; free }

let free_vars q = Array.of_list (Bitset.to_list q.free)
let quantified_vars q =
  Array.of_list (Bitset.to_list (Bitset.complement q.free))
let num_free q = Bitset.cardinal q.free
let is_connected q = Traversal.is_connected (Kgraph.underlying q.graph)

let pins_of q a =
  let xs = free_vars q in
  Array.to_list (Array.mapi (fun i x -> (x, a.(i))) xs)

let is_answer q g a = Khom.exists ~pins:(pins_of q a) q.graph g

let count_answers ?(budget = Budget.unlimited) q g =
  let k = num_free q in
  let n = Kgraph.num_vertices g in
  if k = 0 then begin
    Budget.check budget;
    if Khom.exists q.graph g then 1 else 0
  end
  else begin
    let count = ref 0 in
    Wlcq_util.Combinat.iter_tuples n k (fun a ->
        (* one tick per candidate assignment, as in Cq.iter_answers *)
        Budget.tick_check budget;
        if is_answer q g a then incr count);
    !count
  end

(* Γ over the underlying Gaifman graph *)
let quantified_components q =
  let under = Kgraph.underlying q.graph in
  let ys = Array.to_list (quantified_vars q) in
  if List.is_empty ys then []
  else begin
    let sub, back = Ops.induced under ys in
    List.map
      (fun comp ->
         let members = List.map (fun v -> back.(v)) comp in
         let attached =
           List.sort_uniq Int.compare
             (List.concat_map
                (fun y ->
                   List.filter
                     (fun w -> Bitset.mem q.free w)
                     (Graph.neighbours_list under y))
                members)
         in
         (members, attached))
      (Traversal.component_members sub)
  end

let gamma_graph q =
  let under = Kgraph.underlying q.graph in
  let extra =
    List.concat_map
      (fun (_, attached) ->
         let rec pairs = function
           | [] -> []
           | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
         in
         pairs attached)
      (quantified_components q)
  in
  Ops.add_edges under extra

let extension_width q = Wlcq_treewidth.Exact.treewidth (gamma_graph q)

(* counting-core machinery, mirroring Wlcq_core.Minimize over
   label-preserving knowledge-graph endomorphisms *)

exception Found of int array

let shrinking_raw q =
  let h = q.graph in
  let n = Kgraph.num_vertices h in
  try
    Khom.iter h h (fun endo ->
        let image = Bitset.create n in
        Array.iter (fun v -> Bitset.set image v) endo;
        if Bitset.cardinal image < n then begin
          let ximg = Bitset.create n in
          let bijective = ref true in
          Bitset.iter
            (fun x ->
               if Bitset.mem ximg endo.(x) then bijective := false
               else Bitset.set ximg endo.(x))
            q.free;
          if !bijective && Bitset.equal ximg q.free then
            raise (Found (Array.copy endo))
        end);
    None
  with Found endo -> Some endo

let fix_free_pointwise q endo =
  let compose f g = Array.init (Array.length g) (fun v -> f.(g.(v))) in
  let identity_on_free h = Bitset.for_all (fun x -> h.(x) = x) q.free in
  let rec go h = if identity_on_free h then h else go (compose endo h) in
  go endo

let is_counting_minimal q = Option.is_none (shrinking_raw q)

let induced_kgraph h members =
  let members = Array.of_list members in
  let pos = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace pos v i) members;
  let edges =
    List.filter_map
      (fun (u, v, l) ->
         match (Hashtbl.find_opt pos u, Hashtbl.find_opt pos v) with
         | Some i, Some j -> Some (i, j, l)
         | _ -> None)
      (Kgraph.edges h)
  in
  let vertex_labels =
    Array.map (fun v -> Kgraph.vertex_label h v) members
  in
  (Kgraph.create ~n:(Array.length members) ~vertex_labels ~edges, members)

let rec counting_core q =
  match Option.map (fix_free_pointwise q) (shrinking_raw q) with
  | None -> q
  | Some endo ->
    let n = Kgraph.num_vertices q.graph in
    let image = Bitset.create n in
    Array.iter (fun v -> Bitset.set image v) endo;
    let sub, back = induced_kgraph q.graph (Bitset.to_list image) in
    let new_of_old = Hashtbl.create n in
    Array.iteri (fun i v -> Hashtbl.replace new_of_old v i) back;
    let new_free =
      List.map (Hashtbl.find new_of_old) (Bitset.to_list q.free)
    in
    counting_core (make sub new_free)

let semantic_extension_width q = extension_width (counting_core q)

let wl_dimension q =
  if not (is_connected q) then
    invalid_arg "Kcq.wl_dimension: query must be connected";
  if num_free q = 0 then
    invalid_arg "Kcq.wl_dimension: query must have a free variable";
  semantic_extension_width q

let of_cq q =
  let h = Kgraph.of_graph q.Wlcq_core.Cq.graph ~vertex_label:0 ~edge_label:0 in
  make h (Bitset.to_list q.Wlcq_core.Cq.free)
