(** Surface syntax for knowledge-graph conjunctive queries.

    Binary atoms are directed labelled edges, unary atoms assign
    vertex labels:

    {v (x, y) := exists z . knows(x, z) & worksAt(z, y) & Person(x) v}

    Grammar (whitespace-insensitive):
    {v
    query ::= '(' [idents] ')' ':=' [ 'exists' ident+ '.' ] atoms
    atom  ::= ident '(' ident ',' ident ')'    (directed edge atom)
            | ident '(' ident ')'              (vertex label atom)
    v}

    Relation and label names get integer ids in order of first use;
    unlabelled variables get the reserved vertex label [0] (named
    labels start at [1]).  At most one label atom per variable;
    self-loop atoms are rejected. *)

type parsed = {
  query : Kcq.t;
  names : string array;  (** variable names by vertex *)
  relations : string array;  (** edge-label names by id *)
  labels : string array;  (** vertex-label names by id; id [0] is the
                              default label and prints as ["_"] *)
}

(** [parse ?relations ?labels s] parses a query.  When querying a
    fixed knowledge graph, pass its relation- and label-name tables so
    the query's atom ids line up with the data's: [relations.(i)] /
    [labels.(i)] pre-bind name → id [i] ([labels] must start with the
    default label at index 0).  Names not in the tables are assigned
    fresh ids after them. *)
val parse :
  ?relations:string array -> ?labels:string array -> string ->
  (parsed, string) result

val parse_exn :
  ?relations:string array -> ?labels:string array -> string -> parsed

(** [to_formula p] renders the parsed query back to the surface
    syntax. *)
val to_formula : parsed -> string
