(* One strict recursive-descent acceptor for one JSON value, plus the
   escaping helpers every wlcq JSON exporter goes through.  Exact
   RFC 8259 grammar, no extensions: this module is the single source
   of truth for "is this output machine-parseable", used by the Obs
   trace/journal exporters, the bench BENCH_*.json writer and
   wlcq-lint's --json mode alike. *)

let parseable s =
  let n = String.length s in
  let exception Bad in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = Stdlib.incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when Char.equal c c' -> advance ()
    | _ -> raise Bad
  in
  let literal word =
    String.iter (fun c -> expect c) word
  in
  let rec value () =
    skip_ws ();
    (match peek () with
     | Some '{' -> obj ()
     | Some '[' -> arr ()
     | Some '"' -> string_lit ()
     | Some 't' -> literal "true"
     | Some 'f' -> literal "false"
     | Some 'n' -> literal "null"
     | Some ('-' | '0' .. '9') -> number ()
     | _ -> raise Bad);
    skip_ws ()
  and obj () =
    expect '{';
    skip_ws ();
    (match peek () with
     | Some '}' -> advance ()
     | _ ->
       let rec members () =
         skip_ws ();
         string_lit ();
         skip_ws ();
         expect ':';
         value ();
         match peek () with
         | Some ',' -> advance (); members ()
         | _ -> expect '}'
       in
       members ())
  and arr () =
    expect '[';
    skip_ws ();
    (match peek () with
     | Some ']' -> advance ()
     | _ ->
       let rec elements () =
         value ();
         match peek () with
         | Some ',' -> advance (); elements ()
         | _ -> expect ']'
       in
       elements ())
  and string_lit () =
    expect '"';
    let rec go () =
      if !pos >= n then raise Bad
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
           | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
             advance ()
           | Some 'u' ->
             advance ();
             for _ = 1 to 4 do
               (match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> raise Bad)
             done
           | _ -> raise Bad);
          go ()
        | c when Char.code c < 0x20 -> raise Bad
        | _ -> advance (); go ()
    in
    go ()
  and number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let seen = ref false in
      while
        match peek () with
        | Some '0' .. '9' -> true
        | _ -> false
      do
        seen := true;
        advance ()
      done;
      if not !seen then raise Bad
    in
    digits ();
    (match peek () with
     | Some '.' -> advance (); digits ()
     | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  match value () with
  | () -> !pos = n || (skip_ws (); !pos = n)
  | exception Bad -> false

let escape_into buf s =
  String.iter
    (fun ch ->
       match ch with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s

let add_string buf s =
  Buffer.add_char buf '"';
  escape_into buf s;
  Buffer.add_char buf '"'
