(** A strict RFC 8259 JSON acceptor, shared by the observability
    layer ([Obs.json_parseable], which gates the Chrome trace and the
    flight-recorder JSONL exporters) and by wlcq-lint (which guards
    its own [--json] output with the same grammar).  Kept as its own
    dependency-free library so both sides validate against one
    implementation instead of two drifting copies.

    The acceptor favours simplicity over diagnostics: it answers
    yes/no for exactly one JSON value spanning the whole string, with
    no extensions (no trailing commas, no comments, no bare NaN). *)

(** [parseable s] is [true] iff [s] is one syntactically valid JSON
    value (the whole string, modulo surrounding whitespace). *)
val parseable : string -> bool

(** {1 Escaping}

    The string-escaping half of the contract: exporters build their
    output with {!escape_into}/{!add_string} so everything they emit
    stays inside the grammar {!parseable} accepts. *)

(** [escape_into buf s] appends [s] to [buf] with the JSON string
    escapes applied (quote, backslash, control characters); no
    surrounding quotes. *)
val escape_into : Buffer.t -> string -> unit

(** [add_string buf s] appends [s] as a complete JSON string literal:
    opening quote, escaped body, closing quote. *)
val add_string : Buffer.t -> string -> unit
