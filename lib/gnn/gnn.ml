open Wlcq_graph
module Core = Wlcq_core

type t = {
  order : int;
  graph : Graph.t;
  features : int array;
  num_classes : int;
  layers : int;
}

let make ~order g =
  if order < 1 then invalid_arg "Gnn.make: order must be positive";
  if order = 1 then begin
    let r = Wlcq_wl.Refinement.run g in
    {
      order;
      graph = g;
      features = r.Wlcq_wl.Refinement.colours;
      num_classes = r.Wlcq_wl.Refinement.num_colours;
      layers = r.Wlcq_wl.Refinement.rounds;
    }
  end
  else begin
    let r = Wlcq_wl.Kwl.run order g in
    {
      order;
      graph = g;
      features = r.Wlcq_wl.Kwl.colours;
      num_classes = r.Wlcq_wl.Kwl.num_colours;
      layers = r.Wlcq_wl.Kwl.rounds;
    }
  end

let feature_histogram n =
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun c ->
       Hashtbl.replace counts c
         (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)))
    n.features;
  List.sort Wlcq_util.Ordering.int_pair
    (Hashtbl.fold (fun c k acc -> (c, k) :: acc) counts [])

let indistinguishable ~order g1 g2 =
  Wlcq_wl.Equivalence.equivalent order g1 g2

let sufficient_order q = Core.Extension.semantic_extension_width q

let answer_count_readout q n =
  if n.order >= sufficient_order q then
    (* the Observation 23 readout: |Ans| from hom counts of the F_ℓ
       graphs, each determined by the order-k partition; for data
       graphs where the interpolation system would be huge, fall back
       to the equivalent tractable counter (Fast_count) *)
    match Core.Wl_dimension.answers_via_interpolation q n.graph with
    | v -> Some v
    | exception Invalid_argument _ ->
      Some (Core.Fast_count.count_answers q n.graph)
  else None

let inexpressibility_witness q =
  match Core.Wl_dimension.separating_pair ~max_z:2 q with
  | exception Invalid_argument _ -> None
  | pair -> pair
