(** Higher-order Graph Neural Networks and conjunctive-query counting
    (Section 1.2).

    By Proposition 3 (Morris et al.), the feature partition [P_N(G)]
    of a {e fully refined} order-k GNN equals the partition computed
    by the k-dimensional WL algorithm on k-tuples.  This module
    represents fully refined GNNs by exactly that object — the stable
    partition — and packages the paper's two-sided expressiveness
    result:

    - if [order ≥ sew(H,X)], the number of answers is computable from
      the partition: Observation 23 writes [|Ans|] as a rational
      combination of counts [|Hom(F_ℓ, G)|] from graphs of treewidth
      [≤ sew], each of which is determined by the order-[sew] partition
      (Dvořák; Lanzinger–Barceló);
    - if [order < sew(H,X)], no readout whatsoever computes [|Ans|]:
      Theorem 1's witness pair has equal order-[(sew−1)] features but
      different answer counts.

    "Features" here are partition classes, exactly as in the paper
    ("issues of dimension are beyond the scope"). *)

open Wlcq_graph

type t = {
  order : int;  (** k: features live on k-tuples of vertices *)
  graph : Graph.t;  (** the underlying graph *)
  features : int array;  (** stable feature class of each k-tuple
                             (base-n encoding; for order 1, of each
                             vertex) *)
  num_classes : int;
  layers : int;  (** rounds until the GNN is fully refined *)
}

(** [make ~order g] is the fully refined order-k GNN on [g]
    (Proposition 3: its partition is the stable k-WL colouring). *)
val make : order:int -> Graph.t -> t

(** [feature_histogram n] is the multiset of feature classes. *)
val feature_histogram : t -> (int * int) list

(** [indistinguishable n1 n2] holds when the two GNNs produce the same
    feature multiset — the precondition under which any readout must
    return equal values on both graphs.  The two GNNs must have the
    same order and be built in a shared feature namespace, so this
    function rebuilds them jointly from their graphs. *)
val indistinguishable : order:int -> Graph.t -> Graph.t -> bool

(** [sufficient_order q] is the least GNN order able to count the
    answers of [q]: [sew q] (Theorem 1 both ways). *)
val sufficient_order : Wlcq_core.Cq.t -> int

(** [answer_count_readout q n] is [Some |Ans(q, n.graph)|] when
    [n.order ≥ sew q] — the readout the upper bound promises — and
    [None] otherwise (Theorem 1 shows no correct readout exists). *)
val answer_count_readout :
  Wlcq_core.Cq.t -> t -> Wlcq_util.Bigint.t option

(** [inexpressibility_witness q] is a pair of graphs on which every
    order-[(sew q − 1)] GNN computes identical features yet the
    answer counts differ; [None] if the search is not applicable
    (e.g. full-query cores) or the bounded cloning search fails. *)
val inexpressibility_witness :
  Wlcq_core.Cq.t -> (Graph.t * Graph.t) option
