(* wlcq — command-line frontend for the WL-dimension library.

   Subcommands mirror the paper's objects: widths of a query, answer
   counting, WL-equivalence of graphs, CFI constructions, lower-bound
   witnesses, and dominating sets.

   Exit codes:
     0  success (for verdict commands: positive verdict)
     1  negative verdict / no distinguishing pattern / invalid certificate
     2  malformed input (query, graph or flag); the diagnostic is a
        single "error: <Module.fn: message>" line on stderr
     3  the --deadline-ms / --max-live-mb budget tripped; whatever was
        printed is a sound partial or degraded result *)

open Cmdliner
module G = Wlcq_graph
module Core = Wlcq_core
module Bigint = Wlcq_util.Bigint
module Budget = Wlcq_robust.Budget
module Outcome = Wlcq_robust.Outcome

let exit_malformed = 2
let exit_degraded = 3

let fail_malformed msg : 'a =
  Printf.eprintf "error: %s\n" msg;
  exit exit_malformed

let query_arg =
  let doc =
    "Conjunctive query, e.g. \"(x1, x2) := exists y . E(x1, y) & E(x2, y)\"."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)

(* Graphs are taken as plain strings and parsed inside the command
   body so a malformed spec exits 2 with a structured "error:" line
   (cmdliner's own conversion errors exit 124). *)
let graph_opt name doc =
  Arg.(required & opt (some string) None & info [ name ] ~docv:"GRAPH" ~doc)

let parse_query s =
  match Core.Parser.parse s with Ok p -> p | Error e -> fail_malformed e

let parse_graph s =
  match G.Spec.parse s with Ok g -> g | Error e -> fail_malformed e

(* Engines report malformed input as [Invalid_argument]/[Failure] with
   "Module.fn: message" payloads (see DESIGN.md); a tripped budget
   escaping one of the raising [?budget] entry points is a degraded
   run.  Every subcommand body runs under this wrapper so neither
   surfaces as an uncaught exception. *)
let guarded f =
  try f () with
  | Invalid_argument msg | Failure msg -> fail_malformed msg
  | Budget.Exhausted r ->
    Printf.eprintf "exhausted: %s\n" (Budget.reason_to_string r);
    exit exit_degraded

(* ------------------------------------------------------------------ *)
(* Observability flags, shared by every subcommand                     *)
(* ------------------------------------------------------------------ *)

module Obs = Wlcq_obs.Obs
module Snapshot = Wlcq_obs.Snapshot
module Dispatch = Wlcq_dispatch.Dispatch

(* What [obs_setup] hands back to the few subcommands that keep
   running after setup ([wlcq serve] re-renders the snapshot and
   rotates the journal periodically instead of only at exit). *)
type obs_paths = {
  o_metrics_out : string option;
  o_journal : string option;
}

(* Reporting runs from [at_exit] so the subcommands' own [exit] calls
   (success/failure encodings, including the malformed-input exit 2 and
   the degraded exit 3) still flush metrics, snapshots, traces and the
   flight-recorder journal. *)
let obs_setup engine metrics trace metrics_out folded journal cache_size_mb
    cache_load cache_save =
  (match Dispatch.engine_of_string engine with
  | Ok e -> Dispatch.set_engine e
  | Error msg -> fail_malformed msg);
  (match cache_size_mb with
  | None -> ()
  | Some mb ->
    if mb < 0 then fail_malformed "--cache-size-mb must be >= 0";
    Wlcq_cache.Cache.set_capacity_mb mb);
  (match cache_load with
  | None -> ()
  | Some file -> (
    match Wlcq_cache.Cache.load_file file with
    | Ok _ -> ()
    | Error msg -> fail_malformed msg));
  (match cache_save with
  | None -> ()
  | Some file ->
    (* saved from [at_exit] for the same reason the metrics are: the
       subcommands encode success/degradation in their exit codes *)
    at_exit (fun () -> ignore (Wlcq_cache.Cache.save_file file)));
  if
    metrics || Option.is_some metrics_out || Option.is_some trace
    || Option.is_some folded
  then begin
    Obs.set_enabled true;
    if Option.is_some trace then Obs.set_tracing true;
    (* span allocation attribution rides along whenever the folded
       profile was requested: it is the exporter that consumes it *)
    if Option.is_some folded then Obs.set_alloc_profiling true;
    at_exit (fun () ->
        if metrics then prerr_string (Obs.metrics_table ());
        (match metrics_out with
         | None -> ()
         | Some file ->
           let oc = open_out file in
           output_string oc (Snapshot.render (Snapshot.capture ()));
           close_out oc);
        (match folded with
         | None -> ()
         | Some file ->
           let oc = open_out file in
           output_string oc (Obs.folded ());
           close_out oc);
        match trace with
        | None -> ()
        | Some file ->
          let oc = open_out file in
          output_string oc (Obs.trace_json ());
          close_out oc)
  end;
  (match journal with
   | None -> ()
   | Some file ->
     Obs.set_journal true;
     Obs.set_journal_dump (Some file);
     (* budget trips and fault injections dump eagerly; this final dump
        covers clean runs and leaves the trip's trail untouched (it only
        appends the closing exit event) *)
     at_exit (fun () -> Obs.journal_dump ~trigger:"exit" ()));
  { o_metrics_out = metrics_out; o_journal = journal }

let obs_term =
  let engine =
    let names = String.concat "|" Dispatch.engine_names in
    Arg.(value & opt string "auto"
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:
               (Printf.sprintf
                  "Counting/WL engine selection: one of %s. $(b,auto) (the \
                   default) picks per call from the calibrated cost model; \
                   the others force that engine everywhere, bypassing the \
                   model." names))
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Record engine metrics (rounds, DP table sizes, cache hit \
                   rates, span timings) and print the table to stderr on \
                   exit.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace_event JSON file of the engine spans \
                   to $(docv) on exit (load in chrome://tracing or \
                   Perfetto).")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write an OpenMetrics text snapshot of all counters and \
                   histograms to $(docv) on exit (any exit code); compare \
                   two snapshots with $(b,wlcq obs-diff).")
  in
  let folded =
    Arg.(value & opt (some string) None
         & info [ "folded" ] ~docv:"FILE"
             ~doc:"Write the span profile in collapsed-stack (folded) format \
                   to $(docv) on exit, with per-span allocation attribution \
                   enabled; feed it to flamegraph.pl, inferno or speedscope.")
  in
  let journal =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:"Arm the flight recorder and dump its JSONL event journal \
                   to $(docv) on exit; budget trips and injected faults \
                   rewrite the dump eagerly at the moment they fire.")
  in
  let cache_size_mb =
    Arg.(value & opt (some int) None
         & info [ "cache-size-mb" ] ~docv:"MB"
             ~doc:"Capacity of the content-addressed result cache \
                   (decompositions, k-WL verdicts and colourings, hom \
                   counts), in megabytes of live heap; default 256. \
                   $(b,0) disables the cache entirely.")
  in
  let cache_load =
    Arg.(value & opt (some string) None
         & info [ "cache-load" ] ~docv:"FILE"
             ~doc:"Warm-start the result cache from a snapshot written by \
                   $(b,--cache-save) before the run.")
  in
  let cache_save =
    Arg.(value & opt (some string) None
         & info [ "cache-save" ] ~docv:"FILE"
             ~doc:"Write the result cache to $(docv) on exit (any exit \
                   code), for $(b,--cache-load) warm starts.")
  in
  Term.(
    const obs_setup $ engine $ metrics $ trace $ metrics_out $ folded
    $ journal $ cache_size_mb $ cache_load $ cache_save)

(* ------------------------------------------------------------------ *)
(* Budget flags, shared by every subcommand                            *)
(* ------------------------------------------------------------------ *)

let budget_setup deadline_ms max_live_mb =
  match (deadline_ms, max_live_mb) with
  | None, None -> Budget.unlimited
  | _ -> (
    try Budget.create ?deadline_ms ?max_live_mb ()
    with Invalid_argument msg -> fail_malformed msg)

let budget_term =
  let deadline_ms =
    Arg.(value & opt (some float) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Wall-clock budget in milliseconds (monotonic clock).  \
                   When it trips, the command prints the best sound \
                   degraded or partial result it has and exits with \
                   code 3.")
  in
  let max_live_mb =
    Arg.(value & opt (some int) None
         & info [ "max-live-mb" ] ~docv:"MB"
             ~doc:"Live major-heap ceiling in MiB; exceeding it behaves \
                   like a missed deadline (exit code 3).")
  in
  Term.(const budget_setup $ deadline_ms $ max_live_mb)

(* ------------------------------------------------------------------ *)
(* wlcq widths                                                         *)
(* ------------------------------------------------------------------ *)

let widths_cmd =
  let run _ budget query_str =
    guarded @@ fun () ->
    let p = parse_query query_str in
    let q = p.Core.Parser.query in
    let degraded = ref false in
    let show to_string f =
      match f () with
      | v -> to_string v
      | exception Budget.Exhausted r ->
        degraded := true;
        Printf.sprintf "exhausted (%s)" (Budget.reason_to_string r)
    in
    Printf.printf "query:               %s\n"
      (Core.Parser.to_formula ~names:p.Core.Parser.names q);
    Printf.printf "variables:           %d free, %d quantified\n"
      (Core.Cq.num_free q)
      (Array.length (Core.Cq.quantified_vars q));
    Printf.printf "connected:           %b\n" (Core.Cq.is_connected q);
    (match Core.Minimize.counting_core ~budget q with
     | core ->
       let minimal =
         G.Graph.num_vertices core.Core.Cq.graph
         = G.Graph.num_vertices q.Core.Cq.graph
       in
       Printf.printf "counting minimal:    %b\n" minimal;
       if not minimal then
         Printf.printf "counting core:       %s\n" (Core.Parser.to_formula core)
     | exception Budget.Exhausted r ->
       degraded := true;
       Printf.printf "counting minimal:    exhausted (%s)\n"
         (Budget.reason_to_string r));
    (match Wlcq_treewidth.Exact.treewidth_budgeted ~budget q.Core.Cq.graph with
     | `Exact w -> Printf.printf "treewidth:           %d\n" w
     | `Degraded (w, r) ->
       degraded := true;
       Printf.printf "treewidth:           <= %d   (degraded: %s)\n" w
         (Outcome.reason_to_string r)
     | `Exhausted _ -> assert false (* treewidth_budgeted never exhausts *));
    Printf.printf "quantified star size:%d\n"
      (Core.Extension.quantified_star_size q);
    Printf.printf "extension width:     %s\n"
      (show string_of_int (fun () -> Core.Extension.extension_width ~budget q));
    Printf.printf "semantic ext. width: %s\n"
      (show string_of_int (fun () ->
           Core.Extension.semantic_extension_width ~budget q));
    (match Core.Wl_dimension.dimension_budgeted ~budget q with
     | `Exact d -> Printf.printf "WL-dimension:        %d   (Theorem 1)\n" d
     | `Degraded _ -> assert false (* dimension_budgeted never degrades *)
     | `Exhausted ((lo, hi), r) ->
       degraded := true;
       Printf.printf "WL-dimension:        in [%d, %d]   (exhausted: %s)\n" lo
         hi
         (Budget.reason_to_string r));
    if !degraded then exit exit_degraded
  in
  let doc = "Compute the width measures and WL-dimension of a query." in
  Cmd.v (Cmd.info "widths" ~doc)
    Term.(const run $ obs_term $ budget_term $ query_arg)

(* ------------------------------------------------------------------ *)
(* wlcq ans                                                            *)
(* ------------------------------------------------------------------ *)

let ans_cmd =
  let run _ budget query_str graph_str interpolate injective =
    guarded @@ fun () ->
    let p = parse_query query_str in
    let q = p.Core.Parser.query in
    let graph = parse_graph graph_str in
    if injective then
      Printf.printf "%d\n" (Core.Cq.count_answers_injective ~budget q graph)
    else if interpolate then
      Printf.printf "%s\n"
        (Bigint.to_string
           (Core.Wl_dimension.answers_via_interpolation ~budget q graph))
    else
      match Core.Cq.count_answers_budgeted ~budget q graph with
      | `Exact n -> Printf.printf "%d\n" n
      | `Degraded (n, r) ->
        Printf.printf "%d   (degraded: %s)\n" n (Outcome.reason_to_string r);
        exit exit_degraded
      | `Exhausted (partial, r) ->
        Printf.printf ">= %d   (exhausted: %s)\n" partial
          (Budget.reason_to_string r);
        exit exit_degraded
  in
  let interpolate =
    Arg.(value & flag
         & info [ "interpolate" ]
             ~doc:"Compute via the Lemma 22 / Observation 23 Vandermonde \
                   interpolation from homomorphism counts.")
  in
  let injective =
    Arg.(value & flag
         & info [ "injective" ] ~doc:"Count injective answers only.")
  in
  let doc = "Count the answers of a query in a graph." in
  Cmd.v (Cmd.info "ans" ~doc)
    Term.(const run $ obs_term $ budget_term $ query_arg
          $ graph_opt "graph" ("Data graph. " ^ G.Spec.describe)
          $ interpolate $ injective)

(* ------------------------------------------------------------------ *)
(* wlcq tw                                                             *)
(* ------------------------------------------------------------------ *)

let tw_cmd =
  let run _ budget graph_str =
    guarded @@ fun () ->
    let graph = parse_graph graph_str in
    match Wlcq_treewidth.Exact.treewidth_budgeted ~budget graph with
    | `Exact w -> Printf.printf "%d\n" w
    | `Degraded (w, r) ->
      Printf.printf "<= %d   (degraded: %s)\n" w (Outcome.reason_to_string r);
      exit exit_degraded
    | `Exhausted _ -> assert false (* treewidth_budgeted never exhausts *)
  in
  let doc = "Compute the exact treewidth of a graph." in
  Cmd.v (Cmd.info "tw" ~doc)
    Term.(const run $ obs_term $ budget_term
          $ graph_opt "graph" ("Graph. " ^ G.Spec.describe))

(* ------------------------------------------------------------------ *)
(* wlcq wl                                                             *)
(* ------------------------------------------------------------------ *)

let wl_cmd =
  let run _ budget k g1 g2 =
    guarded @@ fun () ->
    let g1 = parse_graph g1 and g2 = parse_graph g2 in
    match Wlcq_wl.Equivalence.equivalent_budgeted ~budget k g1 g2 with
    | `Exact eq ->
      Printf.printf "%d-WL-equivalent: %b\n" k eq;
      if eq then exit 0 else exit 1
    | `Degraded (eq, r) ->
      Printf.printf "%d-WL-equivalent: %b   (degraded: %s)\n" k eq
        (Outcome.reason_to_string r);
      exit exit_degraded
    | `Exhausted r ->
      Printf.printf "%d-WL-equivalent: undecided   (exhausted: %s)\n" k
        (Budget.reason_to_string r);
      exit exit_degraded
  in
  let k = Arg.(value & opt int 1 & info [ "k" ] ~doc:"WL dimension (>= 1).") in
  let doc = "Test k-WL-equivalence of two graphs (Definition 19)." in
  Cmd.v (Cmd.info "wl" ~doc)
    Term.(const run $ obs_term $ budget_term $ k
          $ graph_opt "g1" ("First graph. " ^ G.Spec.describe)
          $ graph_opt "g2" "Second graph.")

(* ------------------------------------------------------------------ *)
(* wlcq cfi                                                            *)
(* ------------------------------------------------------------------ *)

let cfi_cmd =
  let run _ budget base_str check_k =
    guarded @@ fun () ->
    let base = parse_graph base_str in
    let degraded = ref false in
    let even, odd = Wlcq_cfi.Pairs.twisted_pair ~budget base in
    (match Wlcq_treewidth.Exact.treewidth_budgeted ~budget base with
     | `Exact w ->
       Printf.printf "base:  %d vertices, %d edges, treewidth %d\n"
         (G.Graph.num_vertices base) (G.Graph.num_edges base) w
     | `Degraded (w, r) ->
       degraded := true;
       Printf.printf "base:  %d vertices, %d edges, treewidth <= %d   (%s)\n"
         (G.Graph.num_vertices base) (G.Graph.num_edges base) w
         (Outcome.reason_to_string r)
     | `Exhausted _ -> assert false (* treewidth_budgeted never exhausts *));
    Printf.printf "chi(F, {}):  %d vertices, %d edges\n"
      (Wlcq_cfi.Cfi.num_vertices even)
      (G.Graph.num_edges even.Wlcq_cfi.Cfi.graph);
    Printf.printf "chi(F, {0}): %d vertices, %d edges\n"
      (Wlcq_cfi.Cfi.num_vertices odd)
      (G.Graph.num_edges odd.Wlcq_cfi.Cfi.graph);
    Printf.printf "isomorphic:  %b   (Lemma 26 predicts false)\n"
      (G.Iso.isomorphic even.Wlcq_cfi.Cfi.graph odd.Wlcq_cfi.Cfi.graph);
    (match check_k with
     | None -> ()
     | Some k -> (
       match
         Wlcq_wl.Equivalence.equivalent_budgeted ~budget k
           even.Wlcq_cfi.Cfi.graph odd.Wlcq_cfi.Cfi.graph
       with
       | `Exact eq -> Printf.printf "%d-WL-equivalent: %b\n" k eq
       | `Degraded (eq, r) ->
         degraded := true;
         Printf.printf "%d-WL-equivalent: %b   (degraded: %s)\n" k eq
           (Outcome.reason_to_string r)
       | `Exhausted r ->
         degraded := true;
         Printf.printf "%d-WL-equivalent: undecided   (exhausted: %s)\n" k
           (Budget.reason_to_string r)));
    if !degraded then exit exit_degraded
  in
  let check_k =
    Arg.(value & opt (some int) None
         & info [ "check-wl" ]
             ~doc:"Also test k-WL-equivalence of the twisted pair.")
  in
  let doc = "Build the twisted CFI pair over a base graph (Definition 25)." in
  Cmd.v (Cmd.info "cfi" ~doc)
    Term.(const run $ obs_term $ budget_term
          $ graph_opt "base" ("Base graph. " ^ G.Spec.describe)
          $ check_k)

(* ------------------------------------------------------------------ *)
(* wlcq witness                                                        *)
(* ------------------------------------------------------------------ *)

let witness_cmd =
  let run _ budget query_str check_wl emit =
    guarded @@ fun () ->
    let p = parse_query query_str in
    let q = p.Core.Parser.query in
    let w = Core.Wl_dimension.lower_bound_witness ~budget q in
    let k =
      Wlcq_treewidth.Exact.treewidth w.Core.Wl_dimension.f.Core.Extension.graph
    in
    Printf.printf "core:        %s\n"
      (Core.Parser.to_formula w.Core.Wl_dimension.core);
    Printf.printf "ew = tw(F):  %d  (ell = %d)\n" k
      w.Core.Wl_dimension.f.Core.Extension.ell;
    Printf.printf "chi sizes:   %d / %d vertices\n"
      (Wlcq_cfi.Cfi.num_vertices w.Core.Wl_dimension.even)
      (Wlcq_cfi.Cfi.num_vertices w.Core.Wl_dimension.odd);
    let e, o = Core.Wl_dimension.ans_id_counts w in
    Printf.printf "Ans^id:      %d vs %d  (Lemma 57 predicts >)\n" e o;
    if check_wl && k >= 2 then
      Printf.printf "(k-1)-WL-equivalent: %b  (Lemma 35 predicts true)\n"
        (Core.Wl_dimension.witness_pair_equivalent w (k - 1));
    if emit then begin
      match Core.Wl_dimension.separating_pair ~max_z:2 q with
      | None -> Printf.printf "no separating pair found within the z-bound\n"
      | Some (g1, g2) ->
        Printf.printf "separating pair (graph6, |Ans| = %d vs %d):\n"
          (Core.Cq.count_answers q g1)
          (Core.Cq.count_answers q g2);
        Printf.printf "  %s\n  %s\n" (G.Graph6.encode g1) (G.Graph6.encode g2)
    end
  in
  let check_wl =
    Arg.(value & flag
         & info [ "check-wl" ]
             ~doc:"Verify the (k-1)-WL-equivalence of the witness pair.")
  in
  let emit =
    Arg.(value & flag
         & info [ "emit-g6" ]
             ~doc:"Print a plain-answer separating pair in graph6 format \
                   (Lemma 40 cloning).")
  in
  let doc =
    "Build and check the Section-4 lower-bound witness for a query."
  in
  Cmd.v (Cmd.info "witness" ~doc)
    Term.(const run $ obs_term $ budget_term $ query_arg $ check_wl $ emit)

(* ------------------------------------------------------------------ *)
(* wlcq domsets                                                        *)
(* ------------------------------------------------------------------ *)

let domsets_cmd =
  let run _ budget k graph_str via =
    guarded @@ fun () ->
    let graph = parse_graph graph_str in
    let count =
      match via with
      | "direct" -> Core.Domset.count_direct ~budget k graph
      | "stars" -> Core.Domset.count_via_stars ~budget k graph
      | "quantum" -> Core.Domset.count_via_quantum k graph
      | other ->
        fail_malformed
          (Printf.sprintf "unknown method %S (direct|stars|quantum)" other)
    in
    Printf.printf "%s\n" (Bigint.to_string count)
  in
  let k = Arg.(value & opt int 2 & info [ "k" ] ~doc:"Dominating-set size.") in
  let via =
    Arg.(value & opt string "direct"
         & info [ "via" ]
             ~doc:"Counting method: direct, stars (complement/star \
                   reduction), or quantum (Corollary 68 expansion).")
  in
  let doc = "Count size-k dominating sets (Corollary 6)." in
  Cmd.v (Cmd.info "domsets" ~doc)
    Term.(const run $ obs_term $ budget_term $ k
          $ graph_opt "graph" ("Graph. " ^ G.Spec.describe)
          $ via)

(* ------------------------------------------------------------------ *)
(* wlcq union                                                          *)
(* ------------------------------------------------------------------ *)

let union_cmd =
  let run _ _budget union_str graph_str =
    guarded @@ fun () ->
    match Core.Ucq.of_string union_str with
    | Error e -> fail_malformed e
    | Ok u ->
      Printf.printf "disjuncts:     %d\n" (List.length (Core.Ucq.disjuncts u));
      List.iter
        (fun q -> Printf.printf "  %s\n" (Core.Parser.to_formula q))
        (Core.Ucq.disjuncts u);
      let quantum = Core.Ucq.to_quantum u in
      Printf.printf "quantum terms: %d\n"
        (List.length (Core.Quantum.terms quantum));
      Printf.printf "WL-dimension:  %d   (hsew, Corollary 5)\n"
        (Core.Ucq.wl_dimension u);
      (match graph_str with
       | None -> ()
       | Some s ->
         let g = parse_graph s in
         Printf.printf "answers:       %d\n" (Core.Ucq.count_answers u g))
  in
  let graph =
    Arg.(value & opt (some string) None
         & info [ "graph" ] ~docv:"GRAPH"
             ~doc:("Optionally count the union's answers in this graph. "
                   ^ G.Spec.describe))
  in
  let doc =
    "Analyse a union of conjunctive queries, e.g. \"(x1, x2) := E(x1, x2) | \
     exists y . E(x1, y) & E(y, x2)\"."
  in
  Cmd.v (Cmd.info "union" ~doc)
    Term.(const run $ obs_term $ budget_term $ query_arg $ graph)

(* ------------------------------------------------------------------ *)
(* wlcq kg-widths / kg-ans                                             *)
(* ------------------------------------------------------------------ *)

let parse_kg_query s =
  match Wlcq_kg.Kparser.parse s with Ok p -> p | Error e -> fail_malformed e

let kg_widths_cmd =
  let run _ _budget query_str =
    guarded @@ fun () ->
    let p = parse_kg_query query_str in
    let q = p.Wlcq_kg.Kparser.query in
    Printf.printf "query:               %s\n" (Wlcq_kg.Kparser.to_formula p);
    Printf.printf "connected:           %b\n" (Wlcq_kg.Kcq.is_connected q);
    Printf.printf "counting minimal:    %b\n"
      (Wlcq_kg.Kcq.is_counting_minimal q);
    Printf.printf "extension width:     %d\n" (Wlcq_kg.Kcq.extension_width q);
    Printf.printf "semantic ext. width: %d\n"
      (Wlcq_kg.Kcq.semantic_extension_width q);
    Printf.printf "WL-dimension:        %d\n" (Wlcq_kg.Kcq.wl_dimension q)
  in
  let doc =
    "Width measures of a knowledge-graph query, e.g. \"(x, y) := exists z . \
     knows(x, z) & worksAt(z, y) & Person(x)\"."
  in
  Cmd.v (Cmd.info "kg-widths" ~doc)
    Term.(const run $ obs_term $ budget_term $ query_arg)

let kg_ans_cmd =
  let run _ budget query_str graph_str =
    guarded @@ fun () ->
    let p = parse_kg_query query_str in
    match Wlcq_kg.Kspec.parse graph_str with
    | Error e -> fail_malformed e
    | Ok g ->
      Printf.printf "%d\n"
        (Wlcq_kg.Kcq.count_answers ~budget p.Wlcq_kg.Kparser.query g)
  in
  let graph =
    Arg.(required & opt (some string) None
         & info [ "graph" ] ~docv:"KGRAPH"
             ~doc:("Data knowledge graph. " ^ Wlcq_kg.Kspec.describe))
  in
  let doc =
    "Count the answers of a knowledge-graph query.  Relation/label ids in \
     the query are assigned in order of first use; make the data spec use \
     the same ids."
  in
  Cmd.v (Cmd.info "kg-ans" ~doc)
    Term.(const run $ obs_term $ budget_term $ query_arg $ graph)

(* ------------------------------------------------------------------ *)
(* wlcq certify                                                        *)
(* ------------------------------------------------------------------ *)

let certify_cmd =
  let run _ _budget query_str sample_str =
    guarded @@ fun () ->
    let p = parse_query query_str in
    let sample = Option.map parse_graph sample_str in
    let c = Core.Certificate.certify ?sample p.Core.Parser.query in
    Format.printf "%a@." Core.Certificate.pp c;
    if Core.Certificate.is_valid c then begin
      Format.printf "@.certificate re-checked: VALID@.";
      exit 0
    end
    else begin
      Format.printf "@.certificate re-checked: INVALID@.";
      exit 1
    end
  in
  let sample =
    Arg.(value & opt (some string) None
         & info [ "sample" ] ~docv:"GRAPH"
             ~doc:("Sample graph for the upper-bound demonstration \
                    (default: C5). " ^ G.Spec.describe))
  in
  let doc =
    "Produce and re-check a full Theorem 1 certificate for a query: upper \
     bound by interpolation, lower bound by the Section-4 CFI witness."
  in
  Cmd.v (Cmd.info "certify" ~doc)
    Term.(const run $ obs_term $ budget_term $ query_arg $ sample)

(* ------------------------------------------------------------------ *)
(* wlcq invariants                                                     *)
(* ------------------------------------------------------------------ *)

let invariants_cmd =
  let run _ _budget () =
    guarded @@ fun () ->
    Printf.printf "%-16s %-22s %s\n" "parameter" "dimension lower bound"
      "witness pair";
    List.iter
      (fun p ->
         match Core.Invariant.dimension_lower_bound p with
         | None ->
           Printf.printf "%-16s %-22s %s\n" p.Core.Invariant.name
             ">= 1 (no separation)" "-"
         | Some (k, pair) ->
           Printf.printf "%-16s %-22s %s\n" p.Core.Invariant.name
             (Printf.sprintf ">= %d" k) pair)
      (Core.Invariant.standard_library ())
  in
  let doc =
    "Survey WL-dimension lower bounds of standard graph parameters against \
     the built-in witness-pair library."
  in
  Cmd.v (Cmd.info "invariants" ~doc)
    Term.(const run $ obs_term $ budget_term $ const ())

(* ------------------------------------------------------------------ *)
(* wlcq profile                                                        *)
(* ------------------------------------------------------------------ *)

let profile_cmd =
  let run _ budget g1 g2 max_size tw_bound =
    guarded @@ fun () ->
    let g1 = parse_graph g1 and g2 = parse_graph g2 in
    match
      Wlcq_wl.Hom_profile.first_difference ~budget ~max_size ~tw_bound g1 g2
    with
    | None ->
      Printf.printf
        "no distinguishing pattern with <= %d vertices and treewidth <= %d\n"
        max_size tw_bound;
      exit 1
    | Some (pattern, c1, c2) ->
      Printf.printf "smallest distinguishing pattern: %s  (graph6: %s)\n"
        (G.Graph.to_string pattern)
        (G.Graph6.encode pattern);
      Printf.printf "hom counts: %s vs %s\n" (Bigint.to_string c1)
        (Bigint.to_string c2)
  in
  let max_size =
    Arg.(value & opt int 5
         & info [ "max-size" ] ~doc:"Largest pattern size to try.")
  in
  let tw_bound =
    Arg.(value & opt int 3
         & info [ "tw" ] ~doc:"Treewidth bound on the patterns.")
  in
  let doc =
    "Find the smallest connected pattern whose homomorphism counts \
     distinguish two graphs (Definition 19 made concrete)."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run $ obs_term $ budget_term
          $ graph_opt "g1" ("First graph. " ^ G.Spec.describe)
          $ graph_opt "g2" "Second graph."
          $ max_size $ tw_bound)

(* ------------------------------------------------------------------ *)
(* wlcq serve                                                          *)
(* ------------------------------------------------------------------ *)

module Server = Wlcq_serve.Server
module Client = Wlcq_serve.Client
module Wire = Wlcq_serve.Wire
module Fault = Wlcq_robust.Fault

let socket_arg =
  Arg.(required & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket path the daemon binds (serve) or \
                 connects to (call).")

let serve_cmd =
  let run obs socket workers max_sessions max_queue max_queue_per_client
      max_deadline_ms default_deadline_ms max_live_mb idle_timeout_s
      write_timeout_s drain_timeout_s flush_interval_s fault_seed fault_rate
      fault_sites =
    guarded @@ fun () ->
    (* a zero cap on either deadline flag means "no cap at all" *)
    let opt_ms v = if v > 0.0 then Some v else None in
    (match fault_seed with
     | None -> ()
     | Some seed ->
       let sites =
         match fault_sites with
         | [] -> None
         | names ->
           Some
             (List.map
                (fun n ->
                   match Fault.site_of_string n with
                   | Some s -> s
                   | None ->
                     fail_malformed
                       (Printf.sprintf "serve: unknown fault site %S" n))
                names)
       in
       Fault.arm ~seed ?rate:fault_rate ?sites ());
    let cfg =
      { (Server.default_config ~socket_path:socket) with
        Server.workers; max_sessions; max_queue; max_queue_per_client;
        max_deadline_ms = opt_ms max_deadline_ms;
        default_deadline_ms = opt_ms default_deadline_ms;
        max_live_mb; idle_timeout_s; write_timeout_s; drain_timeout_s;
        flush_interval_s;
        metrics_out = obs.o_metrics_out;
        journal_path = obs.o_journal }
    in
    let t = Server.create cfg in
    let stop _ = Server.shutdown t in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    (try
       Sys.set_signal Sys.sighup
         (Sys.Signal_handle (fun _ -> Server.request_flush t))
     with Invalid_argument _ -> ());
    Server.run t;
    exit 0
  in
  let pos_int ~default name doc =
    Arg.(value & opt int default & info [ name ] ~docv:"N" ~doc)
  in
  let pos_float ~default name doc =
    Arg.(value & opt float default & info [ name ] ~docv:"S" ~doc)
  in
  let workers = pos_int ~default:2 "workers" "Worker domains executing requests." in
  let max_sessions =
    pos_int ~default:128 "max-sessions"
      "Concurrent client connections; over it, new connections get an \
       immediate $(b,overloaded) reply."
  in
  let max_queue =
    pos_int ~default:256 "max-queue"
      "Total queued-request admission cap; over it, requests are shed \
       with $(b,overloaded) and a retry-after hint."
  in
  let max_queue_per_client =
    pos_int ~default:32 "max-queue-per-client"
      "Queued-request cap per connection (fairness against one chatty \
       client)."
  in
  let max_deadline_ms =
    pos_float ~default:30000.0 "max-deadline-ms"
      "Server-side cap in milliseconds: client deadlines are clamped \
       to it.  $(b,0) removes the cap."
  in
  let default_deadline_ms =
    pos_float ~default:5000.0 "default-deadline-ms"
      "Deadline applied when a request carries none.  $(b,0) means \
       unlimited."
  in
  let max_live_mb =
    Arg.(value & opt (some int) None
         & info [ "max-live-mb" ] ~docv:"MB"
             ~doc:"Live-heap ceiling cap per request, clamping client \
                   requests (shared with the one-shot commands' flag).")
  in
  let idle_timeout_s =
    pos_float ~default:60.0 "idle-timeout-s"
      "Sessions quiet for this long are reaped."
  in
  let write_timeout_s =
    pos_float ~default:5.0 "write-timeout-s"
      "A client not draining its responses for this long is reaped."
  in
  let drain_timeout_s =
    pos_float ~default:5.0 "drain-timeout-s"
      "SIGTERM grace period before in-flight budgets are cancelled."
  in
  let flush_interval_s =
    pos_float ~default:10.0 "flush-interval-s"
      "Seconds between periodic sink flushes (snapshot re-render, \
       journal rotation); $(b,0) disables them.  SIGHUP forces one."
  in
  let fault_seed =
    Arg.(value & opt (some int) None
         & info [ "fault-seed" ] ~docv:"SEED"
             ~doc:"Test only: arm deterministic fault injection with \
                   this seed before serving.")
  in
  let fault_rate =
    Arg.(value & opt (some float) None
         & info [ "fault-rate" ] ~docv:"P"
             ~doc:"Test only: per-draw failure probability in [0,1] \
                   (default 1 when --fault-seed is given).")
  in
  let fault_sites =
    Arg.(value & opt (list string) []
         & info [ "fault-sites" ] ~docv:"SITES"
             ~doc:"Test only: comma-separated fault sites to arm \
                   (accept_fail, read_stall, write_stall, worker_raise, \
                   deadline_check, domain_spawn, dp_alloc); default all.")
  in
  let doc =
    "Serve decide/count/treewidth requests over a Unix-domain socket: a \
     fault-contained, backpressured multi-client daemon.  SIGTERM or \
     SIGINT starts a graceful drain (stop accepting, answer queued \
     work, flush sinks, exit 0); SIGHUP forces a sink flush."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ obs_term $ socket_arg $ workers $ max_sessions
          $ max_queue $ max_queue_per_client $ max_deadline_ms
          $ default_deadline_ms $ max_live_mb $ idle_timeout_s
          $ write_timeout_s $ drain_timeout_s $ flush_interval_s
          $ fault_seed $ fault_rate $ fault_sites)

(* ------------------------------------------------------------------ *)
(* wlcq call                                                           *)
(* ------------------------------------------------------------------ *)

let exit_unavailable = 4

let call_cmd =
  let run _obs deadline_ms max_live_mb socket timeout_s id verb k g1 g2
      queries graph =
    guarded @@ fun () ->
    let need flag = function
      | Some v -> v
      | None ->
        fail_malformed (Printf.sprintf "call: %s requires %s" verb flag)
    in
    let op =
      match verb with
      | "ping" -> Wire.Ping
      | "decide" ->
        Wire.Decide { k; g1 = need "--g1" g1; g2 = need "--g2" g2 }
      | "count" -> (
        match queries with
        | [ query ] -> Wire.Count { query; graph = need "--graph" graph }
        | _ -> fail_malformed "call: count takes exactly one --query")
      | "count-batch" ->
        if List.length queries = 0 then
          fail_malformed "call: count-batch needs at least one --query";
        Wire.Count_batch { queries; graph = need "--graph" graph }
      | "treewidth" -> Wire.Treewidth { graph = need "--graph" graph }
      | v -> fail_malformed (Printf.sprintf "call: unknown verb %S" v)
    in
    let req = { Wire.id; deadline_ms; max_live_mb; op } in
    match Client.call ~timeout_s ~socket req with
    | Error msg -> fail_malformed ("call: " ^ msg)
    | Ok resp -> (
      (match resp.Wire.r_status with
       | Wire.Ok_ -> Printf.printf "%s\n" resp.Wire.r_value
       | Wire.Degraded ->
         Printf.printf "%s   (degraded: %s)\n" resp.Wire.r_value
           resp.Wire.r_detail
       | Wire.Exhausted ->
         Printf.eprintf "exhausted: %s\n" resp.Wire.r_detail
       | Wire.Error_ -> Printf.eprintf "error: %s\n" resp.Wire.r_detail
       | Wire.Overloaded ->
         Printf.eprintf "overloaded%s\n"
           (match resp.Wire.r_retry_after_ms with
            | Some ms -> Printf.sprintf ": retry after %dms" ms
            | None -> "")
       | Wire.Draining -> Printf.eprintf "draining: daemon is shutting down\n");
      match resp.Wire.r_status with
      | Wire.Ok_ -> exit 0
      | Wire.Degraded | Wire.Exhausted -> exit exit_degraded
      | Wire.Error_ -> exit exit_malformed
      | Wire.Overloaded | Wire.Draining -> exit exit_unavailable)
  in
  (* the familiar budget flags, but forwarded on the wire: the daemon
     clamps them against its own caps and enforces them server-side *)
  let deadline_ms =
    Arg.(value & opt (some float) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Request deadline, clamped by the daemon's \
                   --max-deadline-ms cap.")
  in
  let max_live_mb =
    Arg.(value & opt (some int) None
         & info [ "max-live-mb" ] ~docv:"MB"
             ~doc:"Request heap ceiling, clamped by the daemon's cap.")
  in
  let timeout_s =
    Arg.(value & opt float 10.0
         & info [ "timeout-s" ] ~docv:"S"
             ~doc:"Client-side timeout for connect/send/receive.")
  in
  let id =
    Arg.(value & opt string ""
         & info [ "id" ] ~docv:"ID"
             ~doc:"Correlation id echoed in the reply.")
  in
  let verb =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"VERB"
             ~doc:"One of $(b,ping), $(b,decide), $(b,count), \
                   $(b,count-batch), $(b,treewidth).")
  in
  let k =
    Arg.(value & opt int 1
         & info [ "k" ] ~docv:"K" ~doc:"WL dimension for $(b,decide).")
  in
  let g1 =
    Arg.(value & opt (some string) None
         & info [ "g1" ] ~docv:"GRAPH" ~doc:"First graph for $(b,decide).")
  in
  let g2 =
    Arg.(value & opt (some string) None
         & info [ "g2" ] ~docv:"GRAPH" ~doc:"Second graph for $(b,decide).")
  in
  let queries =
    Arg.(value & opt_all string []
         & info [ "query" ] ~docv:"QUERY"
             ~doc:"Conjunctive query; repeatable for $(b,count-batch).")
  in
  let graph =
    Arg.(value & opt (some string) None
         & info [ "graph" ] ~docv:"GRAPH"
             ~doc:"Graph for $(b,count)/$(b,count-batch)/$(b,treewidth).")
  in
  let doc =
    "Send one request to a running $(b,wlcq serve) daemon.  Exit codes: \
     0 ok, 3 degraded/exhausted, 2 error, 4 overloaded or draining."
  in
  Cmd.v (Cmd.info "call" ~doc)
    Term.(const run $ obs_term $ deadline_ms $ max_live_mb $ socket_arg
          $ timeout_s $ id $ verb $ k $ g1 $ g2 $ queries $ graph)

(* ------------------------------------------------------------------ *)
(* wlcq obs-diff                                                       *)
(* ------------------------------------------------------------------ *)

let obs_diff_cmd =
  let load file =
    let text =
      try In_channel.with_open_bin file In_channel.input_all
      with Sys_error msg -> fail_malformed ("obs-diff: " ^ msg)
    in
    match Snapshot.parse text with
    | Ok snap -> snap
    | Error msg -> fail_malformed (Printf.sprintf "obs-diff: %s: %s" file msg)
  in
  let run before after threshold rate =
    if not (threshold > 1.0) then
      fail_malformed "obs-diff: --threshold must be > 1";
    let report, regressions =
      Snapshot.diff ~threshold ~rate (load before) (load after)
    in
    print_string report;
    match regressions with
    | [] ->
      print_string "no regressions\n";
      exit 0
    | _ :: _ ->
      Printf.printf "%d regression(s) at threshold x%.2f\n"
        (List.length regressions) threshold;
      exit 1
  in
  let before =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"BEFORE"
             ~doc:"Baseline OpenMetrics snapshot (from --metrics-out).")
  in
  let after =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"AFTER" ~doc:"Candidate OpenMetrics snapshot.")
  in
  let threshold =
    Arg.(value & opt float 2.0
         & info [ "threshold" ] ~docv:"RATIO"
             ~doc:"Regression ratio: a counter delta or histogram \
                   p50/p99 growing by at least this factor (above the \
                   built-in noise floors) is a regression.  Exit code 1 \
                   when any is found, 0 otherwise.")
  in
  let rate =
    Arg.(value & flag
         & info [ "rate" ]
             ~doc:"Compare counters as events per second (each divided \
                   by its snapshot's wlcq_process_uptime_ns), so two \
                   snapshots taken from two still-running daemons with \
                   different uptimes diff meaningfully.")
  in
  let doc =
    "Diff two OpenMetrics snapshots written by --metrics-out and flag \
     thresholded counter/latency regressions."
  in
  Cmd.v (Cmd.info "obs-diff" ~doc)
    Term.(const run $ before $ after $ threshold $ rate)

let main =
  let doc =
    "The Weisfeiler-Leman dimension of conjunctive queries (PODS 2024)"
  in
  Cmd.group (Cmd.info "wlcq" ~version:"1.0.0" ~doc)
    [ widths_cmd; ans_cmd; tw_cmd; wl_cmd; cfi_cmd; witness_cmd; domsets_cmd;
      union_cmd; kg_widths_cmd; kg_ans_cmd; invariants_cmd; profile_cmd;
      certify_cmd; obs_diff_cmd; serve_cmd; call_cmd ]

let () = exit (Cmd.eval main)
