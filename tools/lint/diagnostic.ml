type rule = R0 | R1 | R2 | R3 | R4 | R5 | R6

let rule_id = function
  | R0 -> "R0"
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"

let rule_of_id = function
  | "R0" -> Some R0
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | "R6" -> Some R6
  | _ -> None

let rule_summary = function
  | R0 -> "lint integrity (parse errors, malformed or unused pragmas)"
  | R1 -> "polymorphic compare/hash on structured values"
  | R2 -> "partial/unsafe functions and error-message convention"
  | R3 -> "top-level mutable state visible to Domain.spawn code"
  | R4 -> "hygiene (missing .mli, printing from lib/)"
  | R5 -> "budgeted engine called in a lib/ loop without threading a budget"
  | R6 -> "hard-coded size threshold in an engine hot path (use Wlcq_dispatch)"

let all_rules = [ R0; R1; R2; R3; R4; R5; R6 ]

type t = { file : string; line : int; col : int; rule : rule; message : string }

let make ~file ~line ~col ~rule message = { file; line; col; rule; message }

let of_location ~file ~rule (loc : Location.t) message =
  {
    file;
    line = loc.loc_start.pos_lnum;
    col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
    rule;
    message;
  }

let compare d1 d2 =
  let c = String.compare d1.file d2.file in
  if c <> 0 then c
  else
    let c = Int.compare d1.line d2.line in
    if c <> 0 then c else Int.compare d1.col d2.col

let to_string d =
  Printf.sprintf "%s:%d:%d %s %s" d.file d.line d.col (rule_id d.rule) d.message
