type rule = R0 | R1 | R2 | R3 | R4 | R6 | R7 | R8 | R9 | R10 | R11

let rule_id = function
  | R0 -> "R0"
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R6 -> "R6"
  | R7 -> "R7"
  | R8 -> "R8"
  | R9 -> "R9"
  | R10 -> "R10"
  | R11 -> "R11"

let rule_of_id = function
  | "R0" -> Some R0
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R6" -> Some R6
  | "R7" -> Some R7
  | "R8" -> Some R8
  | "R9" -> Some R9
  | "R10" -> Some R10
  | "R11" -> Some R11
  | _ -> None

(* Rules that once existed and were replaced: naming one in a pragma is
   an R0 finding pointing at the successor, not a silent no-op. *)
let retired_rules = [ ("R5", "R7") ]

let retired_successor id =
  List.find_opt (fun (r, _) -> String.equal r id) retired_rules
  |> Option.map snd

let rule_summary = function
  | R0 -> "lint integrity (parse errors, malformed or unused pragmas)"
  | R1 -> "polymorphic compare/hash on structured values"
  | R2 -> "partial/unsafe functions and error-message convention"
  | R3 -> "top-level mutable state visible to Domain.spawn code"
  | R4 -> "hygiene (missing .mli, printing from lib/)"
  | R6 -> "hard-coded size threshold in an engine hot path (use Wlcq_dispatch)"
  | R7 -> "loop or recursion reachable from a *_budgeted entry without a budget poll"
  | R8 -> "exception escaping a *_budgeted entry instead of an Outcome"
  | R9 -> "per-iteration allocation in an engine hot loop"
  | R10 ->
    "module-level memo table in lib/ outside the shared cache tier \
     (use Wlcq_cache.Cache.store)"
  | R11 ->
    "blocking Unix call in the service tier outside the designated I/O \
     module (or without a timeout bound)"

let all_rules = [ R0; R1; R2; R3; R4; R6; R7; R8; R9; R10; R11 ]

type t = { file : string; line : int; col : int; rule : rule; message : string }

let make ~file ~line ~col ~rule message = { file; line; col; rule; message }

let of_location ~file ~rule (loc : Location.t) message =
  {
    file;
    line = loc.loc_start.pos_lnum;
    col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
    rule;
    message;
  }

let compare d1 d2 =
  let c = String.compare d1.file d2.file in
  if c <> 0 then c
  else
    let c = Int.compare d1.line d2.line in
    if c <> 0 then c else Int.compare d1.col d2.col

let to_string d =
  Printf.sprintf "%s:%d:%d %s %s" d.file d.line d.col (rule_id d.rule) d.message

(* JSON rendering for `wlcq_lint --json`, mirroring the escaping rules
   of the Obs trace exporter (whose strict acceptor gates the output in
   the tests). *)
let json_escape buf s =
  String.iter
    (fun ch ->
       match ch with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s

let add_json buf ~suppressed d =
  Buffer.add_string buf "{\"file\":\"";
  json_escape buf d.file;
  Buffer.add_string buf (Printf.sprintf "\",\"line\":%d,\"col\":%d" d.line d.col);
  Buffer.add_string buf ",\"rule\":\"";
  Buffer.add_string buf (rule_id d.rule);
  Buffer.add_string buf "\",\"message\":\"";
  json_escape buf d.message;
  Buffer.add_string buf
    (if suppressed then "\",\"suppressed\":true}" else "\",\"suppressed\":false}")
