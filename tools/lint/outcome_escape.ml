(* Rule R8: Outcome exception containment.

   A [*_budgeted] entry point is the engine's contracted boundary: it
   returns an [Outcome.t] ([`Exact] / [`Degraded] / [`Exhausted]) and
   must not let exceptions escape to the caller — not
   [Budget.Exhausted] (to be caught and mapped to [`Exhausted]), and
   not [Failure]/[Invalid_argument]/[Not_found] from partial functions
   or validation raises buried several calls deep.

   The may-raise analysis ([Callgraph.may_raise]) propagates exception
   classes bottom-up through resolved calls, filtered at every
   [try]/[match ... with exception] the value unwinds through, and
   keeps one witness chain per class.  Each class that survives to a
   budgeted entry is one finding, reported at the entry's definition
   with the chain in the message.

   Known false negatives (documented in DESIGN.md): unknown callees
   are assumed not to raise (the curated raising stdlib entry points
   are folded in as direct raise sites), and a [Fun.protect]-style
   re-raise of a bound exception value is treated as pass-through. *)

let check (g : Callgraph.t) ~report =
  let escapes = Callgraph.may_raise g in
  List.iter
    (fun (entry : Callgraph.node) ->
       let classes =
         escapes entry.Callgraph.key
         |> List.map fst
         |> List.sort_uniq (fun a b ->
                String.compare (Summaries.exn_class_name a)
                  (Summaries.exn_class_name b))
       in
       List.iter
         (fun cls ->
            report
              (Diagnostic.of_location ~file:entry.Callgraph.nfile
                 ~rule:Diagnostic.R8 entry.Callgraph.nfn.Summaries.fn_loc
                 (Printf.sprintf
                    "exception %s can escape budgeted entry '%s' (%s): catch \
                     it at the entry and return an Outcome (`Degraded or \
                     `Exhausted) instead"
                    (Summaries.exn_class_name cls)
                    entry.Callgraph.nfn.Summaries.fn_path
                    (Callgraph.witness_chain g escapes entry.Callgraph.key cls))))
         classes)
    (Callgraph.budgeted_entries g)
