(* wlcq-lint: static correctness invariants for the wlcq tree.

   Usage: wlcq_lint.exe [--stats] [--json] [--strict]
                        [--census FILE] [--include-fixtures] [ROOT...]

   Rules (see DESIGN.md, "Static analysis"):
   - R1  no polymorphic =/<>/compare/Hashtbl.hash on structured values
   - R2  no partial/unsafe functions; failwith/invalid_arg messages are
         'Module.fn: detail'
   - R3  no unaudited top-level mutable state visible to Domain.spawn
   - R4  every lib/ module has a .mli; no printing from lib/
   - R6  no hard-coded size thresholds in engine hot paths: cutoffs
         live in Wlcq_dispatch's calibration table
   - R7  every loop/recursion cycle reachable from a *_budgeted entry
         reaches a Budget poll (interprocedural; subsumes retired R5)
   - R8  no exception escapes a *_budgeted entry: catch and return an
         Outcome (interprocedural)
   - R9  no per-iteration allocation in engine hot loops

   [--strict] additionally fails on suppressions with no recorded
   reason.  [--json] prints one machine-readable JSON object instead
   of one line per finding.  [--census FILE] additionally fails when
   the per-rule suppression counts drift from the census table
   recorded in FILE (DESIGN.md): adding or removing a pragma must
   update the census in the same change.

   Exit status: 0 when clean, 1 when any finding survives the in-source
   allow pragmas (or, under --strict, any reasonless suppression
   exists), 2 on usage errors. *)

open Lint_engine

let default_roots = [ "lib"; "bin"; "bench"; "test"; "tools" ]

let usage () =
  prerr_endline
    "usage: wlcq_lint [--stats] [--json] [--strict] [--census FILE] \
     [--include-fixtures] [ROOT...]\n\
     default roots: lib bin bench test tools";
  exit 2

let () =
  let stats = ref false in
  let json = ref false in
  let strict = ref false in
  let include_fixtures = ref false in
  let census_file = ref None in
  let expect_census = ref false in
  let roots = ref [] in
  Array.iteri
    (fun i arg ->
       if i > 0 then
         if !expect_census then begin
           census_file := Some arg;
           expect_census := false
         end
         else
           match arg with
           | "--stats" -> stats := true
           | "--json" -> json := true
           | "--strict" -> strict := true
           | "--census" -> expect_census := true
           | "--include-fixtures" -> include_fixtures := true
           | "--help" | "-help" -> usage ()
           | _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
           | root -> roots := root :: !roots)
    Sys.argv;
  if !expect_census then usage ();
  let roots =
    match !roots with [] -> default_roots | rs -> List.rev rs
  in
  let result = Engine.run ~include_fixtures:!include_fixtures ~roots () in
  let strict_failures =
    match !strict with true -> result.Engine.reasonless | false -> []
  in
  if !json then begin
    let out = Engine.to_json result in
    (* self-check against the shared strict acceptor before printing:
       a malformed report must fail loudly here, not downstream in
       whatever consumes it *)
    if not (Wlcq_strictjson.Strict_json.parseable out) then begin
      prerr_endline "wlcq_lint: internal error: --json output is not valid JSON";
      exit 2
    end;
    print_endline out
  end
  else if !stats then begin
    Printf.printf "wlcq-lint --stats (files scanned: %d)\n"
      result.Engine.files_scanned;
    Printf.printf "%-4s %9s %12s  %s\n" "rule" "findings" "suppressions"
      "description";
    List.iter
      (fun { Engine.rule; findings; suppressions } ->
         Printf.printf "%-4s %9d %12d  %s\n" (Diagnostic.rule_id rule) findings
           suppressions
           (Diagnostic.rule_summary rule))
      result.Engine.by_rule;
    Printf.printf "total-suppressions: %d\n" result.Engine.total_suppressions;
    Printf.printf "total-findings: %d\n" (List.length result.Engine.findings)
  end
  else begin
    List.iter
      (fun d -> print_endline (Diagnostic.to_string d))
      result.Engine.findings;
    List.iter
      (fun d -> print_endline (Diagnostic.to_string d))
      strict_failures
  end;
  let census_drift =
    match !census_file with
    | None -> []
    | Some file ->
      let text =
        match In_channel.with_open_text file In_channel.input_all with
        | text -> text
        | exception Sys_error msg ->
          Printf.eprintf "wlcq-lint: cannot read census file: %s\n" msg;
          exit 2
      in
      Engine.census_drift ~census:(Engine.parse_census text) result
  in
  List.iter
    (fun (rule, recorded, actual) ->
       Printf.eprintf
         "wlcq-lint: suppression census drift for %s: DESIGN.md records %d, \
          the tree has %d — update the census table in the same change\n"
         (Diagnostic.rule_id rule) recorded actual)
    census_drift;
  let failed =
    not (List.is_empty result.Engine.findings)
    || not (List.is_empty strict_failures)
    || not (List.is_empty census_drift)
  in
  if failed then exit 1
