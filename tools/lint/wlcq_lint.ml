(* wlcq-lint: static correctness invariants for the wlcq tree.

   Usage: wlcq_lint.exe [--stats] [--include-fixtures] [ROOT...]

   Rules (see DESIGN.md, "Static analysis"):
   - R1  no polymorphic =/<>/compare/Hashtbl.hash on structured values
   - R2  no partial/unsafe functions; failwith/invalid_arg messages are
         'Module.fn: detail'
   - R3  no unaudited top-level mutable state visible to Domain.spawn
   - R4  every lib/ module has a .mli; no printing from lib/
   - R5  budgeted engines called from lib/ loops must thread a budget
   - R6  no hard-coded size thresholds in engine hot paths: cutoffs
         live in Wlcq_dispatch's calibration table

   Exit status: 0 when clean, 1 when any finding survives the in-source
   allow pragmas, 2 on usage errors. *)

open Lint_engine

let default_roots = [ "lib"; "bin"; "bench"; "test" ]

let usage () =
  prerr_endline
    "usage: wlcq_lint [--stats] [--include-fixtures] [ROOT...]\n\
     default roots: lib bin bench test";
  exit 2

let () =
  let stats = ref false in
  let include_fixtures = ref false in
  let roots = ref [] in
  Array.iteri
    (fun i arg ->
       if i > 0 then
         match arg with
         | "--stats" -> stats := true
         | "--include-fixtures" -> include_fixtures := true
         | "--help" | "-help" -> usage ()
         | _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
         | root -> roots := root :: !roots)
    Sys.argv;
  let roots = if !roots = [] then default_roots else List.rev !roots in
  let result = Engine.run ~include_fixtures:!include_fixtures ~roots () in
  if !stats then begin
    Printf.printf "wlcq-lint --stats (files scanned: %d)\n"
      result.Engine.files_scanned;
    Printf.printf "%-4s %9s %12s  %s\n" "rule" "findings" "suppressions"
      "description";
    List.iter
      (fun { Engine.rule; findings; suppressions } ->
         Printf.printf "%-4s %9d %12d  %s\n" (Diagnostic.rule_id rule) findings
           suppressions
           (Diagnostic.rule_summary rule))
      result.Engine.by_rule;
    Printf.printf "total-suppressions: %d\n" result.Engine.total_suppressions;
    Printf.printf "total-findings: %d\n" (List.length result.Engine.findings)
  end
  else
    List.iter
      (fun d -> print_endline (Diagnostic.to_string d))
      result.Engine.findings;
  if result.Engine.findings <> [] then exit 1
