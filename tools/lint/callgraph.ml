(* Whole-project call graph over the function summaries.

   Nodes are (file, function-path) pairs from [Summaries]; edges are
   the call sites whose callee resolves syntactically.  Resolution
   follows the same conventions as the R3 pass in [Domain_safety]:

   - within the calling function, bare and dotted names resolve
     through the scope chain ([count.go] sees [count.go.*], [count.*]
     and the file's top level);
   - [Wlcq_x.M.f] maps to function [f] of [lib/x/m.ml];
   - a leading [M] maps to [m.ml] in the caller's own directory, else
     to the unique [m.ml] in the project;
   - file-local [module B = ...] aliases are expanded first.

   Anything else is an unknown callee.  Unknown callees are assumed
   neither to poll nor to raise — the same documented false-negative
   class as R3's alias blind spot; the curated raising stdlib entry
   points are already folded into the summaries as direct raise
   sites, so [Hashtbl.find] & co. are not lost to this assumption.

   On top of the graph: Tarjan SCCs (recursion cycles), a
   transitive-poll fixpoint (R7), a transitive "can loop forever"
   fixpoint (R7's noise filter) and a bottom-up may-raise analysis
   with per-call-site handler filtering and witness chains (R8). *)

module SS = Set.Make (String)

type node = {
  key : string;  (* file ^ "#" ^ fn_path *)
  nfile : string;
  nfn : Summaries.fn;
  nin_lib : bool;
}

type edge = { ecall : Summaries.call; etarget : string }

type witness =
  | W_direct of Summaries.raise_site
  | W_via of Summaries.call * string  (* call site, callee key *)

type t = {
  nodes : (string, node) Hashtbl.t;
  node_list : node list;  (* stable order: files, then definition order *)
  edges : (string, edge list) Hashtbl.t;
}

let node_key file fn_path = file ^ "#" ^ fn_path

(* --- file-level naming, as in Domain_safety ----------------------- *)

let dirname path =
  match String.rindex_opt path '/' with
  | None -> "."
  | Some i -> String.sub path 0 i

let module_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let wrapper_of_dir dir =
  (* component-based so relative roots (e.g. the bench smoke run
     linting "../lib") resolve the same wrappers as "lib" itself *)
  match List.rev (String.split_on_char '/' dir) with
  | d :: "lib" :: _ -> Some (String.capitalize_ascii ("wlcq_" ^ d))
  | _ -> None

(* --- construction ------------------------------------------------- *)

let build (sums : Summaries.file_summary list) =
  let nodes : (string, node) Hashtbl.t = Hashtbl.create 512 in
  let node_list =
    List.concat_map
      (fun (s : Summaries.file_summary) ->
         List.map
           (fun (f : Summaries.fn) ->
              let n =
                { key = node_key s.sum_file f.Summaries.fn_path;
                  nfile = s.sum_file; nfn = f; nin_lib = s.sum_in_lib }
              in
              (* duplicate paths (shadowed bindings) keep the last
                 definition, matching OCaml's own shadowing *)
              Hashtbl.replace nodes n.key n;
              n)
           s.sum_fns)
      sums
  in
  let node_list =
    List.filter
      (fun n ->
         match Hashtbl.find_opt nodes n.key with
         | Some n' -> n' == n
         | None -> false)
      node_list
  in
  (* file-name indexes *)
  let by_dir_mod = Hashtbl.create 64 in
  let by_mod = Hashtbl.create 64 in
  let dir_of_wrapper = Hashtbl.create 16 in
  List.iter
    (fun (s : Summaries.file_summary) ->
       let dir = dirname s.sum_file in
       let m = module_of_path s.sum_file in
       Hashtbl.replace by_dir_mod (dir ^ "#" ^ m) s.sum_file;
       Hashtbl.add by_mod m s.sum_file;
       match wrapper_of_dir dir with
       | Some w -> Hashtbl.replace dir_of_wrapper w dir
       | None -> ())
    sums;
  let unique_mod m =
    match Hashtbl.find_all by_mod m with [ p ] -> Some p | _ -> None
  in
  let fn_in_file file fn_path =
    let key = node_key file fn_path in
    if Hashtbl.mem nodes key then Some key else None
  in
  let alias_expand (s : Summaries.file_summary) parts =
    match parts with
    | head :: rest -> (
      match
        List.find_opt (fun (a, _) -> String.equal a head) s.sum_aliases
      with
      | Some (_, target) -> target @ rest
      | None -> parts)
    | [] -> parts
  in
  (* enclosing scopes of a function path, innermost first, ending with
     the file's top level ("") *)
  let scopes_of fn_path =
    let rec up acc p =
      match String.rindex_opt p '.' with
      | Some i -> up (String.sub p 0 i :: acc) (String.sub p 0 i)
      | None -> "" :: acc
    in
    List.rev (up [ fn_path ] fn_path)
  in
  let resolve (s : Summaries.file_summary) (caller : Summaries.fn) callee =
    let parts = alias_expand s callee in
    match parts with
    | [] -> None
    | head :: rest -> (
      let dotted = String.concat "." parts in
      let in_scope scope =
        fn_in_file s.sum_file
          (if String.equal scope "" then dotted else scope ^ "." ^ dotted)
      in
      match
        List.find_map in_scope (scopes_of caller.Summaries.fn_path)
      with
      | Some key -> Some key
      | None -> (
        let fn_of_rest file =
          match rest with
          | [] -> None
          | _ -> fn_in_file file (String.concat "." rest)
        in
        match Hashtbl.find_opt dir_of_wrapper head with
        | Some dir -> (
          match rest with
          | sub :: fnparts -> (
            match Hashtbl.find_opt by_dir_mod (dir ^ "#" ^ sub) with
            | Some file when not (List.is_empty fnparts) ->
              fn_in_file file (String.concat "." fnparts)
            | _ -> None)
          | [] -> None)
        | None -> (
          match
            Hashtbl.find_opt by_dir_mod (dirname s.sum_file ^ "#" ^ head)
          with
          | Some file -> fn_of_rest file
          | None -> (
            match unique_mod head with
            | Some file -> fn_of_rest file
            | None -> None))))
  in
  let edges = Hashtbl.create 512 in
  List.iter
    (fun (s : Summaries.file_summary) ->
       List.iter
         (fun (f : Summaries.fn) ->
            let key = node_key s.sum_file f.Summaries.fn_path in
            if Hashtbl.mem nodes key then begin
              let es =
                List.filter_map
                  (fun (c : Summaries.call) ->
                     match resolve s f c.Summaries.callee with
                     | Some target -> Some { ecall = c; etarget = target }
                     | None -> None)
                  f.Summaries.fn_calls
              in
              Hashtbl.replace edges key es
            end)
         s.sum_fns)
    sums;
  { nodes; node_list; edges }

let out_edges g key = Option.value ~default:[] (Hashtbl.find_opt g.edges key)
let find_node g key = Hashtbl.find_opt g.nodes key

(* --- loop containment helper -------------------------------------- *)

(* Is loop index [inner] equal to or nested (transitively) inside
   [outer] within [fn]? *)
let loop_within (fn : Summaries.fn) ~inner ~outer =
  let rec up i =
    i >= 0
    && (i = outer
        ||
        match List.nth_opt fn.Summaries.fn_loops i with
        | Some l -> up l.Summaries.enclosing
        | None -> false)
  in
  up inner

(* --- Tarjan strongly connected components -------------------------- *)

let sccs g =
  let index = Hashtbl.create 256 in
  let lowlink = Hashtbl.create 256 in
  let on_stack = Hashtbl.create 256 in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun e ->
         let w = e.etarget in
         if not (Hashtbl.mem index w) then begin
           strongconnect w;
           Hashtbl.replace lowlink v
             (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
         end
         else if Hashtbl.mem on_stack w then
           Hashtbl.replace lowlink v
             (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (out_edges g v);
    if Int.equal (Hashtbl.find lowlink v) (Hashtbl.find index v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if String.equal w v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      out := pop [] :: !out
    end
  in
  List.iter
    (fun n -> if not (Hashtbl.mem index n.key) then strongconnect n.key)
    g.node_list;
  !out

(* A cycle in the graph: an SCC of size > 1, or a single node with a
   self edge (direct recursion). *)
let recursive_components g =
  List.filter
    (fun comp ->
       match comp with
       | [ v ] -> List.exists (fun e -> String.equal e.etarget v) (out_edges g v)
       | _ :: _ :: _ -> true
       | [] -> false)
    (sccs g)

(* --- transitive fixpoints ------------------------------------------ *)

(* Generic: the least set containing [base] and closed under "has an
   edge into the set". *)
let backward_fixpoint g base =
  let set = ref base in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
         if
           (not (SS.mem n.key !set))
           && List.exists (fun e -> SS.mem e.etarget !set) (out_edges g n.key)
         then begin
           set := SS.add n.key !set;
           changed := true
         end)
      g.node_list
  done;
  !set

(* Budgets are passed explicitly in this codebase, not ambient: a
   callee that polls its own (defaulted, unlimited) budget does not
   make the caller's loop killable.  A call therefore propagates
   polling only when the budget plausibly flows into it: the callee
   lives in the same file (local helpers capture the budget or the
   fuel counter lexically) or the call passes a [~budget]/[?budget]
   argument.  This is exactly the retired R5 rule's concern, decided
   by reachability instead of a curated entry-point list. *)
let budget_edge g n e =
  (match find_node g e.etarget with
   | Some t -> String.equal t.nfile n.nfile
   | None -> false)
  || List.exists (String.equal "budget") e.ecall.Summaries.labels

(* Nodes from which a Budget poll is reachable through budget-carrying
   calls. *)
let polls_transitive g =
  let set =
    ref
      (List.fold_left
         (fun acc n ->
            if n.nfn.Summaries.fn_polls then SS.add n.key acc else acc)
         SS.empty g.node_list)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
         if
           (not (SS.mem n.key !set))
           && List.exists
                (fun e -> budget_edge g n e && SS.mem e.etarget !set)
                (out_edges g n.key)
         then begin
           set := SS.add n.key !set;
           changed := true
         end)
      g.node_list
  done;
  !set

(* Nodes whose call can run for an unbounded number of steps: they
   contain a for/while loop, sit on a recursion cycle, or call such a
   node.  R7 uses this to separate loops that do real work from flat
   initialisation loops. *)
let loopy_transitive g =
  let in_cycle =
    List.fold_left
      (fun acc comp -> List.fold_left (fun a v -> SS.add v a) acc comp)
      SS.empty (recursive_components g)
  in
  let base =
    List.fold_left
      (fun acc n ->
         if
           (not (List.is_empty n.nfn.Summaries.fn_loops))
           || SS.mem n.key in_cycle
         then SS.add n.key acc
         else acc)
      SS.empty g.node_list
  in
  backward_fixpoint g base

(* --- reachability --------------------------------------------------- *)

(* Multi-source forward closure; [origin] remembers which entry first
   reached each node, for diagnostics.

   The closure stops at the polling frontier: a budget-carrying call
   ([budget_edge]) into a function that polls directly is not
   traversed — the callee polls the budget that flows into it, so the
   work beneath that call runs between polls of the right budget and
   its internal poll placement is that function's own concern (checked
   when it is reachable without crossing a poll).  A cross-file call
   with no [~budget] still traverses: whatever the callee polls is not
   the entry's budget.  Residual blind spot, documented in DESIGN.md:
   a non-terminating callee *between* two polls of a trusted polling
   function is not flagged. *)
let reachable g ~entries =
  let origin = Hashtbl.create 256 in
  let polled_budget_edge n e =
    budget_edge g n e
    &&
    match find_node g e.etarget with
    | Some t -> t.nfn.Summaries.fn_polls
    | None -> false
  in
  let rec bfs = function
    | [] -> ()
    | (key, from) :: todo ->
      if Hashtbl.mem origin key then bfs todo
      else begin
        Hashtbl.replace origin key from;
        let next =
          match find_node g key with
          | None -> []
          | Some n ->
            List.filter (fun e -> not (polled_budget_edge n e))
              (out_edges g key)
        in
        bfs
          (List.fold_left (fun acc e -> (e.etarget, from) :: acc) todo next)
      end
  in
  bfs (List.map (fun e -> (e, e)) entries);
  origin

(* --- may-raise ------------------------------------------------------ *)

(* Bottom-up per-function escape sets: exception classes that can
   escape each function, with one witness per class for messages.
   Handler context filters at both the raise site and every call site
   the exception unwinds through. *)
let may_raise g =
  let escapes : (string, (Summaries.exn_class * witness) list) Hashtbl.t =
    Hashtbl.create 256
  in
  let get key = Option.value ~default:[] (Hashtbl.find_opt escapes key) in
  let known key c =
    List.exists (fun (c', _) -> Summaries.exn_class_equal c c') (get key)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
         let add c w =
           if not (known n.key c) then begin
             Hashtbl.replace escapes n.key ((c, w) :: get n.key);
             changed := true
           end
         in
         List.iter
           (fun (r : Summaries.raise_site) ->
              if not (Summaries.caught r.Summaries.raise_handlers r.Summaries.exn)
              then add r.Summaries.exn (W_direct r))
           n.nfn.Summaries.fn_raises;
         List.iter
           (fun e ->
              List.iter
                (fun (c, _) ->
                   if
                     not
                       (Summaries.caught e.ecall.Summaries.call_handlers c)
                   then add c (W_via (e.ecall, e.etarget)))
                (get e.etarget))
           (out_edges g n.key))
      g.node_list
  done;
  fun key -> get key

(* Render the raise chain behind [cls] escaping [key], outermost call
   first, e.g.
   "via count_flat (lib/hom/hom_count.ml:42) raised by failwith
    (lib/hom/brute.ml:17)". *)
let witness_chain g escapes key cls =
  let b = Buffer.create 128 in
  let rec go key guard =
    if SS.mem key guard then Buffer.add_string b " ... (recursive)"
    else
      match
        List.find_opt
          (fun (c, _) -> Summaries.exn_class_equal c cls)
          (escapes key)
      with
      | None -> ()
      | Some (_, W_direct r) ->
        Buffer.add_string b
          (Printf.sprintf "raised by %s (%s:%d)" r.Summaries.via
             (match find_node g key with Some n -> n.nfile | None -> "?")
             r.Summaries.raise_loc.Location.loc_start.Lexing.pos_lnum)
      | Some (_, W_via (call, target)) ->
        (match find_node g target with
         | Some t ->
           Buffer.add_string b
             (Printf.sprintf "via %s (%s:%d) " t.nfn.Summaries.fn_path
                (match find_node g key with Some n -> n.nfile | None -> "?")
                call.Summaries.call_loc.Location.loc_start.Lexing.pos_lnum)
         | None -> ());
        go target (SS.add key guard)
  in
  go key SS.empty;
  Buffer.contents b

(* --- entry points --------------------------------------------------- *)

let last_component path =
  match String.rindex_opt path '.' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

let is_budgeted_name name =
  let suffix = "_budgeted" in
  let nl = String.length name and sl = String.length suffix in
  nl >= sl && String.equal (String.sub name (nl - sl) sl) suffix

(* The contract entry points: [*_budgeted] functions in [lib/]. *)
let budgeted_entries g =
  List.filter
    (fun n -> n.nin_lib && is_budgeted_name (last_component n.nfn.Summaries.fn_path))
    g.node_list
