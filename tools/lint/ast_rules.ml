open Parsetree

(* Facts about one file that the whole-project domain-safety pass (R3)
   consumes after every file has been walked. *)
type facts = {
  (* lint: domain-local facts are built per file inside one scan call and
     only read after the scan returns *)
  mutable spawns : Location.t list;
      (* Domain.spawn occurrences *)
  (* lint: domain-local facts are built per file inside one scan call and
     only read after the scan returns *)
  mutable module_refs : string list;
      (* dotted module paths referenced anywhere in the file *)
  (* lint: domain-local facts are built per file inside one scan call and
     only read after the scan returns *)
  mutable top_mutable : (Location.t * string) list;
      (* top-level mutable bindings: location + description *)
  (* lint: domain-local facts are built per file inside one scan call and
     only read after the scan returns *)
  mutable top_tables : (Location.t * string) list;
      (* the Hashtbl-shaped subset of [top_mutable]: location + binding
         name, consumed by the R10 memo-table ban *)
}

let empty_facts () =
  { spawns = []; module_refs = []; top_mutable = []; top_tables = [] }

(* ------------------------------------------------------------------ *)
(* Longident helpers                                                   *)
(* ------------------------------------------------------------------ *)

let flatten li = try Longident.flatten li with _ -> []

(* Strip a leading Stdlib so [Stdlib.compare] and [compare] agree. *)
let strip_stdlib = function "Stdlib" :: rest -> rest | parts -> parts

(* Module-path prefixes of a longident: for the value ident [A.B.c]
   this is ["A"; "A.B"]; for a module ident [A.B] it is ["A"; "A.B"]. *)
let module_prefixes ~value parts =
  let parts = if value then List.filteri (fun i _ -> i < List.length parts - 1) parts else parts in
  let rec go acc = function
    | [] -> List.rev acc
    | p :: rest ->
      let path = match acc with [] -> p | prev :: _ -> prev ^ "." ^ p in
      go (path :: acc) rest
  in
  go [] parts

(* ------------------------------------------------------------------ *)
(* Expression classification                                           *)
(* ------------------------------------------------------------------ *)

let rec strip_constraint e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> strip_constraint e
  | _ -> e

(* Syntactically structured operands: values that polymorphic [=] or
   [compare] would traverse structurally.  Scalars (int/char/bool
   literals and anything of unknown type) are not flagged — unknown
   operands are the documented false-negative class of R1. *)
let is_structured e =
  match (strip_constraint e).pexp_desc with
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_construct ({ txt = Longident.Lident ("true" | "false" | "()"); _ }, None)
    -> false
  | Pexp_construct _ -> true
  | Pexp_variant _ -> true
  | Pexp_constant (Pconst_string _ | Pconst_float _) -> true
  | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ -> true
  | _ -> false

let describe_structured e =
  match (strip_constraint e).pexp_desc with
  | Pexp_tuple _ -> "a tuple"
  | Pexp_record _ -> "a record"
  | Pexp_array _ -> "an array literal"
  | Pexp_construct ({ txt = Longident.Lident "[]"; _ }, None) -> "a list"
  | Pexp_construct ({ txt = Longident.Lident "::"; _ }, _) -> "a list"
  | Pexp_construct ({ txt = Longident.Lident "None"; _ }, None) -> "an option"
  | Pexp_construct ({ txt = Longident.Lident "Some"; _ }, _) -> "an option"
  | Pexp_construct _ -> "a constructor"
  | Pexp_variant _ -> "a polymorphic variant"
  | Pexp_constant (Pconst_string _) -> "a string"
  | Pexp_constant (Pconst_float _) -> "a float"
  | Pexp_fun _ | Pexp_function _ -> "a function"
  | Pexp_lazy _ -> "a lazy value"
  | _ -> "a structured value"

(* Scalar key types for the polymorphic-Hashtbl check: hashing these
   with the default hash function is exact and cheap. *)
let scalar_type (t : core_type) =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, []) ->
    (match strip_stdlib (flatten txt) with
     | [ ("int" | "char" | "bool" | "string" | "unit") ]
     | [ ("Int" | "Char" | "Bool" | "String"); "t" ] -> true
     | _ -> false)
  | _ -> false

let type_to_string (t : core_type) =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, []) -> String.concat "." (flatten txt)
  | Ptyp_constr ({ txt; _ }, _ :: _) ->
    "... " ^ String.concat "." (flatten txt)
  | Ptyp_tuple _ -> "a tuple type"
  | Ptyp_var v -> "'" ^ v
  | _ -> "this type"

(* ------------------------------------------------------------------ *)
(* R2: the partial/unsafe-function ban list                            *)
(* ------------------------------------------------------------------ *)

let banned_partial parts =
  match strip_stdlib parts with
  | [ "List"; "hd" ] -> Some "List.hd (match on the list instead)"
  | [ "List"; "tl" ] -> Some "List.tl (match on the list instead)"
  | [ "List"; "nth" ] -> Some "List.nth (use arrays or List.nth_opt)"
  | [ "List"; "assoc" ] -> Some "List.assoc (use List.assoc_opt)"
  | [ "List"; "find" ] -> Some "List.find (use List.find_opt)"
  | [ "Option"; "get" ] -> Some "Option.get (match on the option instead)"
  | [ "Array"; "unsafe_get" ] -> Some "Array.unsafe_get (bounds-unchecked)"
  | [ "Array"; "unsafe_set" ] -> Some "Array.unsafe_set (bounds-unchecked)"
  | [ "Bytes"; "unsafe_get" ] -> Some "Bytes.unsafe_get (bounds-unchecked)"
  | [ "Bytes"; "unsafe_set" ] -> Some "Bytes.unsafe_set (bounds-unchecked)"
  | "Obj" :: _ -> Some "Obj.* (unsound by construction)"
  | _ -> None

(* Printing entry points that must not appear in lib/ (rule R4): library
   code reports through return values or formatters supplied by the
   caller; stdout belongs to bin/ and bench/. *)
let banned_printing parts =
  match strip_stdlib parts with
  | [ ( "print_endline" | "print_string" | "print_newline" | "print_int"
      | "print_char" | "print_float" | "prerr_endline" | "prerr_string"
      | "prerr_newline" ) as f ] -> Some f
  | [ ("Printf" | "Format"); ("printf" | "eprintf") ] ->
    Some (String.concat "." (strip_stdlib parts))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* R6: hard-coded size thresholds in engine hot paths                  *)
(* ------------------------------------------------------------------ *)

(* The engine directories whose hot paths must route size cutoffs
   through Wlcq_dispatch.  lib/util, lib/graph etc. stay exempt: their
   constants (limb bases, buffer sizes) are representation facts, not
   engine-choice thresholds. *)
let engine_dirs = [ "hom"; "wl"; "core"; "kg" ]

let hot_engine_file ~in_lib file =
  in_lib
  && List.exists
       (fun c -> List.exists (String.equal c) engine_dirs)
       (String.split_on_char '/' (Filename.dirname file))
  && not (String.equal (Filename.basename file) "dispatch.ml")

(* Constant-int shapes that read as a size threshold: a plain literal
   or [lit lsl lit].  Only constants >= 64 are flagged — small bounds
   (arities, bit widths, word sizes) are not dispatch decisions. *)
let threshold_min = 64

let rec const_int e =
  match (strip_constraint e).pexp_desc with
  | Pexp_constant (Pconst_integer (s, (None | Some 'l' | Some 'L' | Some 'n')))
    -> int_of_string_opt s
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Longident.Lident "lsl"; _ }; _ },
       [ (_, a); (_, b) ]) ->
    (match (const_int a, const_int b) with
     | Some x, Some y when y >= 0 && y < 62 -> Some (x lsl y)
     | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* R2: the Module.fn: message convention                               *)
(* ------------------------------------------------------------------ *)

let valid_message_prefix s =
  match String.index_opt s ':' with
  | None -> false
  | Some i ->
    let ident_from ~upper p =
      String.length p > 0
      &&
      (match p.[0] with
       | 'A' .. 'Z' -> upper
       | 'a' .. 'z' | '_' -> not upper
       | _ -> false)
    in
    let parts = String.split_on_char '.' (String.sub s 0 i) in
    let rec check = function
      | [] | [ _ ] -> false
      | [ m; f ] -> ident_from ~upper:true m && ident_from ~upper:false f
      | m :: rest -> ident_from ~upper:true m && check rest
    in
    List.length parts >= 2 && check parts
    && i + 1 < String.length s
    && s.[i + 1] = ' '

(* The leftmost string literal of a message expression: through
   constraints, [^] concatenations and sprintf-style formatting. *)
let rec message_literal e =
  match (strip_constraint e).pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Longident.Lident "^"; _ }; _ },
       (_, l) :: _) -> message_literal l
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, fmt) :: _) ->
    (match strip_stdlib (flatten txt) with
     | [ "Printf"; "sprintf" ] | [ "Format"; "sprintf" ]
     | [ "Format"; "asprintf" ] -> message_literal fmt
     | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Top-level mutable state (facts for R3)                              *)
(* ------------------------------------------------------------------ *)

(* The repo names modules produced by [Hashtbl.Make] with a [_tbl] /
   [Tbl] suffix (Ordering.Int_pair_tbl, a local [module Tbl = ...]);
   their [create] builds mutable state just like [Hashtbl.create]. *)
let table_module m =
  let n = String.length m in
  String.equal m "Tbl"
  || (n >= 4 && String.equal (String.sub m (n - 4) 4) "_tbl")
  || (n >= 3 && String.equal (String.sub m (n - 3) 3) "Tbl")

let mutable_constructor parts =
  match strip_stdlib parts with
  | [ "ref" ] -> Some "a ref cell"
  | [ "Hashtbl"; "create" ] -> Some "a Hashtbl.t"
  | [ "Buffer"; "create" ] -> Some "a Buffer.t"
  | [ "Bytes"; ("create" | "make") ] -> Some "a Bytes.t"
  | [ "Array"; ("make" | "init" | "create_float" | "copy") ] ->
    Some "an array"
  | [ "Queue"; "create" ] -> Some "a Queue.t"
  | [ "Stack"; "create" ] -> Some "a Stack.t"
  | parts ->
    (match List.rev parts with
     | "create" :: m :: _ when table_module m -> Some "a hash table"
     | _ -> None)

let binding_name pat =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> txt
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> txt
  | _ -> "_"

let rec collect_top_mutable (facts : facts) (str : structure) =
  List.iter
    (fun item ->
       match item.pstr_desc with
       | Pstr_value (_, bindings) ->
         List.iter
           (fun vb ->
              match (strip_constraint vb.pvb_expr).pexp_desc with
              | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
                (match mutable_constructor (flatten txt) with
                 | Some what ->
                   facts.top_mutable <-
                     (vb.pvb_loc,
                      Printf.sprintf "top-level binding '%s' holds %s"
                        (binding_name vb.pvb_pat) what)
                     :: facts.top_mutable;
                   (match what with
                    | "a Hashtbl.t" | "a hash table" ->
                      facts.top_tables <-
                        (vb.pvb_loc, binding_name vb.pvb_pat)
                        :: facts.top_tables
                    | _ -> ())
                 | None -> ())
              | _ -> ())
           bindings
       | Pstr_type (_, decls) ->
         List.iter
           (fun decl ->
              match decl.ptype_kind with
              | Ptype_record labels ->
                List.iter
                  (fun ld ->
                     match ld.pld_mutable with
                     | Asttypes.Mutable ->
                       facts.top_mutable <-
                         (ld.pld_loc,
                          Printf.sprintf
                            "mutable record field '%s' in type '%s'"
                            ld.pld_name.txt decl.ptype_name.txt)
                         :: facts.top_mutable
                     | Asttypes.Immutable -> ())
                  labels
              | _ -> ())
           decls
       | Pstr_module { pmb_expr; _ } -> collect_top_mutable_mod facts pmb_expr
       | Pstr_recmodule bindings ->
         List.iter (fun mb -> collect_top_mutable_mod facts mb.pmb_expr) bindings
       | Pstr_include { pincl_mod; _ } -> collect_top_mutable_mod facts pincl_mod
       | _ -> ())
    str

and collect_top_mutable_mod facts me =
  match me.pmod_desc with
  | Pmod_structure str -> collect_top_mutable facts str
  | Pmod_constraint (me, _) -> collect_top_mutable_mod facts me
  | Pmod_functor (_, _) ->
    (* state inside a functor body is per-application, not global *)
    ()
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* The per-file walk                                                   *)
(* ------------------------------------------------------------------ *)

(* Does the file define its own [compare] (e.g. Bigint, Rat)?  Bare
   [compare] then refers to the local monomorphic function and R1 must
   not fire.  A per-file approximation of scoping: good enough because
   the codebase never locally rebinds [compare] below top level. *)
let defines_local_compare str =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun self vb ->
          (match vb.pvb_pat.ppat_desc with
           | Ppat_var { txt = "compare"; _ } -> found := true
           | _ -> ());
          Ast_iterator.default_iterator.value_binding self vb);
    }
  in
  it.structure it str;
  !found

let check ~file ~in_lib ~report (str : structure) =
  let facts = empty_facts () in
  collect_top_mutable facts str;
  let local_compare = defines_local_compare str in
  let report rule loc msg = report (Diagnostic.of_location ~file ~rule loc msg) in
  let seen_ref parts =
    facts.module_refs <-
      List.rev_append (module_prefixes ~value:true parts) facts.module_refs
  in
  let handle_ident loc txt =
    let parts = flatten txt in
    seen_ref parts;
    (match strip_stdlib parts with
     | [ "compare" ] when not local_compare ->
       report R1 loc
         "polymorphic 'compare': use Int.compare / String.compare / the \
          type's dedicated compare (see Wlcq_util.Ordering)"
     | [ "Hashtbl"; ("hash" | "seeded_hash") ] ->
       report R1 loc
         "polymorphic Hashtbl.hash: use the type's dedicated hash (see \
          Wlcq_util.Ordering's hash combinators)"
     | [ "Domain"; "spawn" ] -> facts.spawns <- loc :: facts.spawns
     | _ -> ());
    (match banned_partial parts with
     | Some what -> report R2 loc ("partial/unsafe function " ^ what)
     | None -> ());
    if in_lib then
      match banned_printing parts with
      | Some what ->
        report R4 loc
          (Printf.sprintf
             "'%s' in lib/: printing belongs to bin/ or bench/; return data \
              or take a formatter"
             what)
      | None -> ()
  in
  let check_message kind loc arg =
    match message_literal arg with
    | Some s ->
      if not (valid_message_prefix s) then
        report R2 loc
          (Printf.sprintf
             "%s message %S must be prefixed 'Module.fn: detail'" kind s)
    | None ->
      report R2 loc
        (Printf.sprintf
           "%s message is not statically checkable: start it with a literal \
            'Module.fn: ' prefix (string literal, ^ or sprintf)"
           kind)
  in
  let expr_hook (self : Ast_iterator.iterator) e =
    (match e.pexp_desc with
     | Pexp_ident { txt; loc } -> handle_ident loc txt
     | Pexp_construct ({ txt; _ }, _) ->
       seen_ref (flatten txt)
     | Pexp_apply
         ({ pexp_desc = Pexp_ident { txt; loc }; _ }, (_, a) :: rest)
       ->
       (match (strip_stdlib (flatten txt), rest) with
        | [ (("=" | "<>") as eq_op) ], [ (_, b) ] ->
          let operand =
            if is_structured a then Some a
            else if is_structured b then Some b
            else None
          in
          (match operand with
           | Some op ->
             report R1 loc
               (Printf.sprintf
                  "polymorphic %s on %s: use the element type's dedicated \
                   equality (String.equal, Option.is_none, List.equal, a \
                   pattern match, ...)"
                  eq_op (describe_structured op))
           | None -> ())
        | [ (("<" | "<=" | ">" | ">=") as rel_op) ], [ (_, b) ]
          when hot_engine_file ~in_lib file ->
          let flag operand =
            match const_int operand with
            | Some n when n >= threshold_min ->
              report R6 loc
                (Printf.sprintf
                   "hard-coded size threshold ('%s' against %d) in an engine \
                    hot path: route the cutoff through Wlcq_dispatch's \
                    calibration table"
                   rel_op n)
            | _ -> ()
          in
          flag a;
          flag b
        | [ ("failwith" | "invalid_arg") ], _ ->
          check_message (String.concat "." (strip_stdlib (flatten txt))) loc a
        | [ "raise" ], _ ->
          (match (strip_constraint a).pexp_desc with
           | Pexp_construct
               ({ txt = payload_txt; _ }, Some payload) ->
             (match strip_stdlib (flatten payload_txt) with
              | [ ("Failure" | "Invalid_argument") as exn ] ->
                check_message ("raise " ^ exn) loc payload
              | _ -> ())
           | _ -> ())
        | _ -> ())
     | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let value_binding_hook (self : Ast_iterator.iterator) vb =
    (* 5.x keeps [let x : t = e] annotations in [pvb_constraint]; the
       pattern/expression forms still appear under nested lets. *)
    let annot =
      match vb.pvb_constraint with
      | Some (Pvc_constraint { typ; _ }) -> Some typ
      | Some (Pvc_coercion { coercion; _ }) -> Some coercion
      | None ->
        (match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
         | Ppat_constraint (_, t), _ -> Some t
         | _, Pexp_constraint (_, t) -> Some t
         | _ -> None)
    in
    (match (annot, (strip_constraint vb.pvb_expr).pexp_desc) with
     | Some t, Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
       when (match strip_stdlib (flatten txt) with
             | [ "Hashtbl"; "create" ] -> true
             | _ -> false) ->
       (match t.ptyp_desc with
        | Ptyp_constr ({ txt = tc; _ }, [ key; _ ])
          when (match strip_stdlib (flatten tc) with
                | [ "Hashtbl"; "t" ] -> true
                | _ -> false) ->
          if not (scalar_type key) then
            report R1 vb.pvb_loc
              (Printf.sprintf
                 "polymorphic Hashtbl keyed on %s: use Hashtbl.Make with the \
                  key type's equal/hash (Graph.hash, Bitset.hash, \
                  Wlcq_util.Ordering.Int_pair_tbl, ...)"
                 (type_to_string key))
        | _ -> ())
     | _ -> ());
    Ast_iterator.default_iterator.value_binding self vb
  in
  let typ_hook (self : Ast_iterator.iterator) t =
    (match t.ptyp_desc with
     | Ptyp_constr ({ txt; _ }, _) ->
       facts.module_refs <-
         List.rev_append
           (module_prefixes ~value:true (flatten txt))
           facts.module_refs
     | _ -> ());
    Ast_iterator.default_iterator.typ self t
  in
  let module_expr_hook (self : Ast_iterator.iterator) me =
    (match me.pmod_desc with
     | Pmod_ident { txt; _ } ->
       facts.module_refs <-
         List.rev_append (module_prefixes ~value:false (flatten txt))
           facts.module_refs
     | _ -> ());
    Ast_iterator.default_iterator.module_expr self me
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr = expr_hook;
      value_binding = value_binding_hook;
      typ = typ_hook;
      module_expr = module_expr_hook;
    }
  in
  it.structure it str;
  facts
