(** Whole-project domain-safety pass (rule R3).

    Flags top-level mutable state in every module whose code may be
    visible to more than one domain: files calling [Domain.spawn],
    files (transitively) referenced from them, their library siblings,
    and files that transitively call into them.  The reachability
    approximation and its false-negative classes are documented in
    DESIGN.md. *)

type file_info = {
  path : string;
  dir : string;
  modname : string;
  facts : Ast_rules.facts;
}

(** [make_info path facts] derives [dir] and [modname] from [path]. *)
val make_info : string -> Ast_rules.facts -> file_info

(** [check infos ~report] resolves the file-level module-reference
    graph and reports one R3 finding per top-level mutable binding (or
    mutable record field) in scope.  No-op when nothing spawns. *)
val check : file_info list -> report:(Diagnostic.t -> unit) -> unit
