type rule_count = { rule : Diagnostic.rule; findings : int; suppressions : int }

type result = {
  files_scanned : int;
  findings : Diagnostic.t list;
  by_rule : rule_count list;
  total_suppressions : int;
}

(* ------------------------------------------------------------------ *)
(* File collection                                                     *)
(* ------------------------------------------------------------------ *)

let skip_dir name =
  String.equal name "_build"
  || String.equal name "lint_fixtures"
  || (String.length name > 0 && name.[0] = '.')

let rec collect_ml ~include_fixtures acc path =
  if Sys.is_directory path then
    if skip_dir (Filename.basename path) && not include_fixtures then acc
    else
      Array.fold_left
        (fun acc entry ->
           collect_ml ~include_fixtures acc (Filename.concat path entry))
        acc
        (let entries = Sys.readdir path in
         Array.sort String.compare entries;
         entries)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let normalize path =
  if String.length path > 2 && String.equal (String.sub path 0 2) "./" then
    String.sub path 2 (String.length path - 2)
  else path

(* ------------------------------------------------------------------ *)
(* Per-file pipeline                                                   *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_structure ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  Parse.implementation lexbuf

type scanned = {
  file : string;
  pragmas : Pragmas.t;
  raw : Diagnostic.t list;  (* pre-suppression findings, reverse order *)
  info : Domain_safety.file_info option;  (* None when the parse failed *)
}

(* "lib" as a path component, so the fixture tree under
   test/lint_fixtures/lib/ exercises the lib-only rules too *)
let in_lib file =
  List.exists (String.equal "lib")
    (String.split_on_char '/' (Filename.dirname file))

let scan_file file =
  let in_lib = in_lib file in
  match read_file file with
  | exception Sys_error msg ->
    {
      file;
      pragmas = { Pragmas.pragmas = []; malformed = [] };
      raw = [ Diagnostic.make ~file ~line:1 ~col:0 ~rule:Diagnostic.R0
                ("cannot read file: " ^ msg) ];
      info = None;
    }
  | source ->
    let pragmas = Pragmas.scan ~file source in
    let raw = ref (List.map (fun d -> { d with Diagnostic.file }) pragmas.malformed) in
    let report d = raw := d :: !raw in
    let info =
      match parse_structure ~file source with
      | exception exn ->
        report
          (Diagnostic.make ~file ~line:1 ~col:0 ~rule:Diagnostic.R0
             ("parse error: " ^ Printexc.to_string exn));
        None
      | str ->
        let facts = Ast_rules.check ~file ~in_lib ~report str in
        Some (Domain_safety.make_info file facts)
    in
    if in_lib then begin
      let mli = Filename.remove_extension file ^ ".mli" in
      if not (Sys.file_exists mli) then
        report
          (Diagnostic.make ~file ~line:1 ~col:0 ~rule:Diagnostic.R4
             (Printf.sprintf
                "missing interface %s: every module under lib/ declares its \
                 API in a .mli"
                mli))
    end;
    { file; pragmas; raw = !raw; info }

(* ------------------------------------------------------------------ *)
(* The run                                                             *)
(* ------------------------------------------------------------------ *)

let count_rule rule list =
  List.length
    (List.filter
       (fun r -> String.equal (Diagnostic.rule_id r) (Diagnostic.rule_id rule))
       list)

let run ?(include_fixtures = false) ~roots () =
  let files =
    List.sort_uniq String.compare
      (List.concat_map
         (fun root ->
            if Sys.file_exists root then
              List.map normalize (collect_ml ~include_fixtures [] root)
            else [])
         roots)
  in
  let scanned = List.map scan_file files in
  (* whole-project R3 pass over the files that parsed *)
  let domain_findings = ref [] in
  Domain_safety.check
    (List.filter_map (fun s -> s.info) scanned)
    ~report:(fun d -> domain_findings := d :: !domain_findings);
  let by_file =
    List.map
      (fun s ->
         let extra =
           List.filter
             (fun (d : Diagnostic.t) -> String.equal d.file s.file)
             !domain_findings
         in
         (s, List.rev_append s.raw extra))
      scanned
  in
  let active, suppressed_rules =
    List.fold_left
      (fun (active, rules) (s, findings) ->
         let kept =
           List.filter (fun d -> not (Pragmas.suppresses s.pragmas d)) findings
         in
         let unused =
           List.map
             (fun (d : Diagnostic.t) -> { d with Diagnostic.file = s.file })
             (Pragmas.unused s.pragmas)
         in
         ( List.rev_append unused (List.rev_append kept active),
           List.rev_append (Pragmas.used_by_rule s.pragmas) rules ))
      ([], []) by_file
  in
  let findings = List.sort Diagnostic.compare active in
  let by_rule =
    List.map
      (fun rule ->
         {
           rule;
           findings = count_rule rule (List.map (fun d -> d.Diagnostic.rule) findings);
           suppressions = count_rule rule suppressed_rules;
         })
      Diagnostic.all_rules
  in
  {
    files_scanned = List.length files;
    findings;
    by_rule;
    total_suppressions = List.length suppressed_rules;
  }
