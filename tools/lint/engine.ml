(* The lint driver.

   Per-file work (read, comment scan, parse, per-file rules, function
   summaries) runs on a domain pool — one task per file off an atomic
   counter.  [Parse.implementation] keeps lexer state in compiler-libs
   globals, so the parse itself is serialised behind a mutex; the
   comment scanner and the AST walks are pure and run concurrently.
   Whole-project passes (R3 domain safety, the R7/R8 call-graph rules)
   then run sequentially on the merged results, and pragma application
   stays per file. *)

type rule_count = { rule : Diagnostic.rule; findings : int; suppressions : int }

type result = {
  files_scanned : int;
  findings : Diagnostic.t list;
  suppressed : Diagnostic.t list;
  reasonless : Diagnostic.t list;
  by_rule : rule_count list;
  total_suppressions : int;
}

(* ------------------------------------------------------------------ *)
(* File collection                                                     *)
(* ------------------------------------------------------------------ *)

let skip_dir name =
  String.equal name "_build"
  || String.equal name "lint_fixtures"
  || (String.length name > 0 && name.[0] = '.')

let rec collect_ml ~include_fixtures acc path =
  if Sys.is_directory path then
    if skip_dir (Filename.basename path) && not include_fixtures then acc
    else
      Array.fold_left
        (fun acc entry ->
           collect_ml ~include_fixtures acc (Filename.concat path entry))
        acc
        (let entries = Sys.readdir path in
         Array.sort String.compare entries;
         entries)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let normalize path =
  if String.length path > 2 && String.equal (String.sub path 0 2) "./" then
    String.sub path 2 (String.length path - 2)
  else path

(* ------------------------------------------------------------------ *)
(* Per-file pipeline                                                   *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type scanned = {
  file : string;
  pragmas : Pragmas.t;
  raw : Diagnostic.t list;  (* pre-suppression findings, reverse order *)
  info : Domain_safety.file_info option;  (* None when the parse failed *)
  summary : Summaries.file_summary option;
}

(* "lib" as a path component, so the fixture tree under
   test/lint_fixtures/lib/ exercises the lib-only rules too *)
let in_lib file =
  List.exists (String.equal "lib")
    (String.split_on_char '/' (Filename.dirname file))

(* lib/cache is the one sanctioned home for module-level memo state
   (R10); matched as the path component pair so the fixture tree under
   test/lint_fixtures/lib/cache/ is exempt too *)
let in_cache_tier file =
  let rec scan = function
    | "lib" :: "cache" :: _ -> true
    | _ :: rest -> scan rest
    | [] -> false
  in
  scan (String.split_on_char '/' (Filename.dirname file))

let scan_file ~parse_mutex file =
  let in_lib = in_lib file in
  match read_file file with
  | exception Sys_error msg ->
    {
      file;
      pragmas = { Pragmas.pragmas = []; malformed = [] };
      raw = [ Diagnostic.make ~file ~line:1 ~col:0 ~rule:Diagnostic.R0
                ("cannot read file: " ^ msg) ];
      info = None;
      summary = None;
    }
  | source ->
    let pragmas = Pragmas.scan ~file source in
    let raw =
      ref (List.map (fun d -> { d with Diagnostic.file }) pragmas.malformed)
    in
    let report d = raw := d :: !raw in
    let parsed =
      (* compiler-libs keeps lexer state in globals: serialise the
         parse, run everything downstream of the Parsetree in
         parallel *)
      Mutex.lock parse_mutex;
      let r =
        match
          let lexbuf = Lexing.from_string source in
          Location.init lexbuf file;
          Parse.implementation lexbuf
        with
        | str -> Some str
        | exception exn ->
          report
            (Diagnostic.make ~file ~line:1 ~col:0 ~rule:Diagnostic.R0
               ("parse error: " ^ Printexc.to_string exn));
          None
      in
      Mutex.unlock parse_mutex;
      r
    in
    let info, summary =
      match parsed with
      | None -> (None, None)
      | Some str ->
        let facts = Ast_rules.check ~file ~in_lib ~report str in
        if in_lib && not (in_cache_tier file) then
          List.iter
            (fun (loc, name) ->
               report
                 (Diagnostic.of_location ~file ~rule:Diagnostic.R10 loc
                    (Printf.sprintf
                       "module-level table '%s' is an ad-hoc memo outside \
                        the shared cache tier: it is unbounded and invisible \
                        to size accounting — route the artifact through \
                        Wlcq_cache.Cache.store, or justify with (* lint: \
                        allow R10 <reason> *)"
                       name)))
            (List.rev facts.Ast_rules.top_tables);
        let hot = Ast_rules.hot_engine_file ~in_lib file in
        let summary = Summaries.scan ~file ~in_lib ~hot ~report str in
        (Some (Domain_safety.make_info file facts), Some summary)
    in
    if in_lib then begin
      let mli = Filename.remove_extension file ^ ".mli" in
      if not (Sys.file_exists mli) then
        report
          (Diagnostic.make ~file ~line:1 ~col:0 ~rule:Diagnostic.R4
             (Printf.sprintf
                "missing interface %s: every module under lib/ declares its \
                 API in a .mli"
                mli))
    end;
    { file; pragmas; raw = !raw; info; summary }

(* ------------------------------------------------------------------ *)
(* The domain pool                                                     *)
(* ------------------------------------------------------------------ *)

let scan_parallel files =
  let files = Array.of_list files in
  let n = Array.length files in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let parse_mutex = Mutex.create () in
  let worker () =
    let continue_ = ref true in
    while !continue_ do
      let i = Atomic.fetch_and_add next 1 in
      if i >= n then continue_ := false
      else results.(i) <- Some (scan_file ~parse_mutex files.(i))
    done
  in
  let workers = max 1 (min 8 (Domain.recommended_domain_count ())) in
  let extra = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join extra;
  (* every slot is written exactly once before the joins *)
  Array.to_list results
  |> List.filter_map (fun s -> s)

(* ------------------------------------------------------------------ *)
(* The run                                                             *)
(* ------------------------------------------------------------------ *)

let count_rule rule list =
  List.length
    (List.filter
       (fun r -> String.equal (Diagnostic.rule_id r) (Diagnostic.rule_id rule))
       list)

let run ?(include_fixtures = false) ~roots () =
  let files =
    List.sort_uniq String.compare
      (List.concat_map
         (fun root ->
            if Sys.file_exists root then
              List.map normalize (collect_ml ~include_fixtures [] root)
            else [])
         roots)
  in
  let scanned = scan_parallel files in
  (* whole-project passes, sequential: R3 over the per-file facts,
     then the call-graph rules R7/R8 over the function summaries *)
  let project = ref [] in
  let preport d = project := d :: !project in
  Domain_safety.check
    (List.filter_map (fun s -> s.info) scanned)
    ~report:preport;
  let graph =
    Callgraph.build (List.filter_map (fun s -> s.summary) scanned)
  in
  Budget_reach.check graph ~report:preport;
  Outcome_escape.check graph ~report:preport;
  Serve_io.check
    (List.filter_map (fun s -> s.summary) scanned)
    ~report:preport;
  let by_file =
    List.map
      (fun s ->
         let extra =
           List.filter
             (fun (d : Diagnostic.t) -> String.equal d.file s.file)
             !project
         in
         (s, List.rev_append s.raw extra))
      scanned
  in
  let active = ref [] in
  let suppressed = ref [] in
  let used_rules = ref [] in
  let reasonless = ref [] in
  let n_used = ref 0 in
  List.iter
    (fun (s, findings) ->
       let used = ref [] in
       List.iter
         (fun d ->
            match Pragmas.find_suppressor s.pragmas d with
            | Some p ->
              if not (List.memq p !used) then used := p :: !used;
              suppressed := d :: !suppressed
            | None -> active := d :: !active)
         findings;
       let unused =
         List.map
           (fun (d : Diagnostic.t) -> { d with Diagnostic.file = s.file })
           (Pragmas.unused s.pragmas ~used:!used)
       in
       active := List.rev_append unused !active;
       n_used := !n_used + List.length !used;
       used_rules :=
         List.rev_append
           (List.map (fun (p : Pragmas.pragma) -> p.Pragmas.rule) !used)
           !used_rules;
       reasonless :=
         List.rev_append
           (List.map
              (fun (p : Pragmas.pragma) ->
                 Diagnostic.make ~file:s.file ~line:p.Pragmas.line ~col:0
                   ~rule:Diagnostic.R0
                   (Printf.sprintf
                      "suppression for %s without a recorded reason: justify \
                       it in the pragma text (reported by --strict)"
                      (Diagnostic.rule_id p.Pragmas.rule)))
              (Pragmas.reasonless s.pragmas))
           !reasonless)
    by_file;
  let findings = List.sort Diagnostic.compare !active in
  let suppressed = List.sort Diagnostic.compare !suppressed in
  let by_rule =
    List.map
      (fun rule ->
         {
           rule;
           findings =
             count_rule rule (List.map (fun d -> d.Diagnostic.rule) findings);
           suppressions = count_rule rule !used_rules;
         })
      Diagnostic.all_rules
  in
  {
    files_scanned = List.length files;
    findings;
    suppressed;
    reasonless = List.sort Diagnostic.compare !reasonless;
    by_rule;
    total_suppressions = !n_used;
  }

(* ------------------------------------------------------------------ *)
(* Machine-readable output                                             *)
(* ------------------------------------------------------------------ *)

(* One JSON object for the whole run; the diagnostics reuse the Obs
   trace exporter's escaping and are gated by the same strict acceptor
   in the tests. *)
let to_json result =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\"files_scanned\":%d,\"diagnostics\":["
       result.files_scanned);
  let first = ref true in
  let emit ~suppressed d =
    if !first then first := false else Buffer.add_char b ',';
    Diagnostic.add_json b ~suppressed d
  in
  List.iter (emit ~suppressed:false) result.findings;
  List.iter (emit ~suppressed:true) result.suppressed;
  Buffer.add_string b
    (Printf.sprintf "],\"total_findings\":%d,\"total_suppressions\":%d}"
       (List.length result.findings)
       result.total_suppressions);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Suppression census                                                  *)
(* ------------------------------------------------------------------ *)

(* DESIGN.md carries a per-rule census of deliberate suppressions (the
   markdown table rows look like [| R7 | 28 | ... |]).  The census
   check compares those recorded counts against the live run, so any
   pragma added or removed forces a conscious DESIGN.md update in the
   same change. *)

let parse_census text =
  let rows = ref [] in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
      match String.split_on_char '|' line with
      | "" :: rule_cell :: count_cell :: _ -> (
        let rule_word = String.trim rule_cell in
        match
          (Diagnostic.rule_of_id rule_word,
           int_of_string_opt (String.trim count_cell))
        with
        | Some rule, Some count -> rows := (rule, count) :: !rows
        | _ -> ())
      | _ -> ());
  List.rev !rows

let census_drift ~census result =
  List.filter_map
    (fun { rule; suppressions; _ } ->
       let recorded =
         List.fold_left
           (fun acc (r, c) -> if r = rule then acc + c else acc)
           0 census
       in
       if recorded = suppressions then None
       else Some (rule, recorded, suppressions))
    result.by_rule
