(* R11: blocking-call discipline in the service tier.

   The wlcq daemon's event loop is a single thread multiplexing every
   client socket; one unbounded [Unix.read] against a stalled client
   freezes the whole daemon.  The architectural answer in [lib/serve]
   is a designated I/O module ([io.ml]) whose wrappers all take an
   explicit [~timeout_s] bound and implement it with [select] before
   every blocking operation.  This rule pins that architecture:

   - any blocking Unix call ([accept]/[read]/[write]/[select]/...)
     in a [lib/serve] file other than [io.ml] is a finding — route it
     through [Io];
   - inside [io.ml], a blocking call in a function whose parameters
     carry no [timeout]-ish label is a finding — even the designated
     module may not block without a bound.

   The callee match resolves per-file module aliases ([module U =
   Unix]) through the summary's alias table, the same way the
   call-graph rules do. *)

(* Unix primitives that can block indefinitely on a socket.  [connect]
   is included: a wedged daemon must not hang its clients either. *)
let blocking_calls =
  [ "accept"; "read"; "write"; "write_substring"; "single_write";
    "single_write_substring"; "select"; "recv"; "recvfrom"; "send";
    "send_substring"; "sendto"; "connect" ]

let in_serve file =
  let rec scan = function
    | "lib" :: "serve" :: _ -> true
    | _ :: rest -> scan rest
    | [] -> false
  in
  scan (String.split_on_char '/' (Filename.dirname file))

let is_io_module file = String.equal (Filename.basename file) "io.ml"

(* the head module of a callee path, with per-file aliases resolved:
   [U.read] under [module U = Unix] is a [Unix] call *)
let resolve_head aliases = function
  | [] -> []
  | head :: rest -> (
    match List.find_opt (fun (a, _) -> String.equal a head) aliases with
    | Some (_, target) -> target @ rest
    | None -> head :: rest)

let blocking_unix aliases (c : Summaries.call) =
  match resolve_head aliases c.Summaries.callee with
  | [ "Unix"; f ] -> List.exists (String.equal f) blocking_calls
  | _ -> false

(* [timeout_s], [timeout], [timeout_ms]... — the bound the wrapper is
   contractually required to enforce *)
let timeoutish label =
  String.length label >= 7 && String.equal (String.sub label 0 7) "timeout"

(* A function is timeout-bounded if it, or any lexically enclosing
   function (a dotted [fn_path] prefix, e.g. [write_all] for
   [write_all.go]), takes a timeout parameter: a local helper closes
   over the wrapper's bound. *)
let has_timeout_param fns (f : Summaries.fn) =
  let owns (g : Summaries.fn) = List.exists timeoutish g.Summaries.fn_params in
  owns f
  || begin
    let parts = String.split_on_char '.' f.Summaries.fn_path in
    let rec prefixes acc = function
      | [] | [ _ ] -> acc
      | p :: rest ->
        let acc =
          match acc with
          | [] -> [ p ]
          | longest :: _ -> (longest ^ "." ^ p) :: acc
        in
        prefixes acc rest
    in
    let ancestor_paths = prefixes [] parts in
    List.exists
      (fun (g : Summaries.fn) ->
         List.exists (String.equal g.Summaries.fn_path) ancestor_paths
         && owns g)
      fns
  end

let check summaries ~report =
  List.iter
    (fun (s : Summaries.file_summary) ->
       if in_serve s.Summaries.sum_file then begin
         let io = is_io_module s.Summaries.sum_file in
         List.iter
           (fun (f : Summaries.fn) ->
              List.iter
                (fun (c : Summaries.call) ->
                   if blocking_unix s.Summaries.sum_aliases c then begin
                     let callee =
                       String.concat "." c.Summaries.callee
                     in
                     if not io then
                       report
                         (Diagnostic.of_location ~file:s.Summaries.sum_file
                            ~rule:Diagnostic.R11 c.Summaries.call_loc
                            (Printf.sprintf
                               "blocking call %s outside the designated I/O \
                                module: one stalled client would freeze the \
                                event loop — route it through a \
                                timeout-bounded Io wrapper"
                               callee))
                     else if not (has_timeout_param s.Summaries.sum_fns f) then
                       report
                         (Diagnostic.of_location ~file:s.Summaries.sum_file
                            ~rule:Diagnostic.R11 c.Summaries.call_loc
                            (Printf.sprintf
                               "blocking call %s in '%s', which takes no \
                                ~timeout_s bound: even io.ml may not block \
                                without a caller-supplied timeout"
                               callee f.Summaries.fn_path))
                   end)
                f.Summaries.fn_calls)
           s.Summaries.sum_fns
       end)
    summaries
