(** Lint findings: a rule id plus a [file:line:col] position and a
    human-readable message. *)

type rule =
  | R0  (** lint integrity: parse errors, malformed/unused/retired pragmas *)
  | R1  (** polymorphic compare/hash on structured values *)
  | R2  (** partial/unsafe functions; error-message convention *)
  | R3  (** top-level mutable state visible to [Domain.spawn] code *)
  | R4  (** hygiene: missing [.mli], printing from [lib/] *)
  | R6
      (** hard-coded size threshold (relational comparison against a
          large integer constant) in an engine hot path under
          [lib/hom], [lib/wl], [lib/core] or [lib/kg]: engine-choice
          and parallelism cutoffs belong in [Wlcq_dispatch]'s
          calibration table *)
  | R7
      (** interprocedural budget-poll reachability: a [for]/[while]
          loop or recursive cycle reachable from a [*_budgeted] entry
          point whose body never reaches a [Budget] poll — under a
          deadline this is the unkillable region of the engine *)
  | R8
      (** interprocedural Outcome containment: an exception
          ([raise]/[failwith]/partial function, possibly raised several
          calls deep) that can escape a [*_budgeted] entry point
          instead of being mapped to an [Outcome] *)
  | R9
      (** per-iteration allocation (closures, boxed tuples, options,
          [List.map]-family combinators) inside a [for]/[while] loop of
          an engine hot path; escape hatch: [(* lint: hot-alloc ... *)] *)
  | R10
      (** module-level memo table ([Hashtbl.create] or a [*_tbl]/[Tbl]
          functor application at top level) in [lib/] outside
          [lib/cache]: ad-hoc memos are unbounded and invisible to the
          shared tier's size accounting — route the artifact through
          [Wlcq_cache.Cache.store] instead *)
  | R11
      (** blocking Unix call discipline in the service tier: inside
          [lib/serve], every blocking socket call
          ([Unix.accept]/[read]/[write]/[select]/…) must live in the
          designated I/O module ([io.ml]), and there only inside
          functions that take an explicit [~timeout_s]-style bound —
          an unbounded blocking call anywhere else can stall the
          daemon's event loop behind one slow client *)

val rule_id : rule -> string
val rule_of_id : string -> rule option

(** [retired_successor "R5"] is [Some "R7"]: rule ids that once
    existed; pragmas naming them are R0 findings, not silent no-ops. *)
val retired_successor : string -> string option

val rule_summary : rule -> string
val all_rules : rule list

type t = { file : string; line : int; col : int; rule : rule; message : string }

val make : file:string -> line:int -> col:int -> rule:rule -> string -> t

(** [of_location ~file ~rule loc msg] positions the finding at the start
    of [loc]. *)
val of_location : file:string -> rule:rule -> Location.t -> string -> t

(** Order by file, then line, then column. *)
val compare : t -> t -> int

(** [to_string d] is ["file:line:col RULE message"] — the diagnostic
    format the dune [@lint] alias surfaces. *)
val to_string : t -> string

(** [add_json buf ~suppressed d] appends one JSON object
    [{"file":…,"line":…,"col":…,"rule":…,"message":…,"suppressed":…}]
    with the same string escaping as the Obs trace exporter. *)
val add_json : Buffer.t -> suppressed:bool -> t -> unit
