(** Lint findings: a rule id plus a [file:line:col] position and a
    human-readable message. *)

type rule =
  | R0  (** lint integrity: parse errors, malformed/unused pragmas *)
  | R1  (** polymorphic compare/hash on structured values *)
  | R2  (** partial/unsafe functions; error-message convention *)
  | R3  (** top-level mutable state visible to [Domain.spawn] code *)
  | R4  (** hygiene: missing [.mli], printing from [lib/] *)
  | R5
      (** budgeted engine called inside a [for]/[while] loop in [lib/]
          without a [~budget]/[?budget] argument *)
  | R6
      (** hard-coded size threshold (relational comparison against a
          large integer constant) in an engine hot path under
          [lib/hom], [lib/wl], [lib/core] or [lib/kg]: engine-choice
          and parallelism cutoffs belong in [Wlcq_dispatch]'s
          calibration table *)

val rule_id : rule -> string
val rule_of_id : string -> rule option
val rule_summary : rule -> string
val all_rules : rule list

type t = { file : string; line : int; col : int; rule : rule; message : string }

val make : file:string -> line:int -> col:int -> rule:rule -> string -> t

(** [of_location ~file ~rule loc msg] positions the finding at the start
    of [loc]. *)
val of_location : file:string -> rule:rule -> Location.t -> string -> t

(** Order by file, then line, then column. *)
val compare : t -> t -> int

(** [to_string d] is ["file:line:col RULE message"] — the diagnostic
    format the dune [@lint] alias surfaces. *)
val to_string : t -> string
