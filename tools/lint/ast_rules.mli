(** Per-file AST rules: R1 (polymorphic compare/hash), R2
    (partial/unsafe functions, error-message convention), the printing
    half of R4 and R6 (hard-coded engine thresholds), plus fact
    collection for the whole-project domain-safety pass (R3).

    The walk is purely syntactic — no type information.  Known
    false-negative classes (operands of unknown type, unannotated
    polymorphic hashtables) are documented in DESIGN.md. *)

(** Facts handed to {!Domain_safety} once every file has been walked. *)
type facts = {
  (* lint: domain-local facts are built per file inside one scan call and
     only read after the scan returns *)
  mutable spawns : Location.t list;
  (* lint: domain-local facts are built per file inside one scan call and
     only read after the scan returns *)
  mutable module_refs : string list;
      (** dotted module paths referenced anywhere in the file *)
  (* lint: domain-local facts are built per file inside one scan call and
     only read after the scan returns *)
  mutable top_mutable : (Location.t * string) list;
      (** top-level mutable bindings and mutable record fields *)
  (* lint: domain-local facts are built per file inside one scan call and
     only read after the scan returns *)
  mutable top_tables : (Location.t * string) list;
      (** the Hashtbl-shaped subset of {!top_mutable} — location plus
          binding name — consumed by the R10 memo-table ban *)
}

(** [hot_engine_file ~in_lib file] — is [file] an engine hot path
    (under [lib/hom], [lib/wl], [lib/core] or [lib/kg], excluding
    [dispatch.ml])?  Shared by R6 and R9. *)
val hot_engine_file : in_lib:bool -> string -> bool

(** [check ~file ~in_lib ~report str] walks one parsed implementation,
    calling [report] for every R1/R2/R4/R6 finding, and returns the
    file's R3 facts.  [in_lib] enables the lib-only printing ban. *)
val check :
  file:string ->
  in_lib:bool ->
  report:(Diagnostic.t -> unit) ->
  Parsetree.structure ->
  facts
