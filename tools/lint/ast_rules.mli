(** Per-file AST rules: R1 (polymorphic compare/hash), R2
    (partial/unsafe functions, error-message convention), the printing
    half of R4 and R5 (budgeted engines called from lib/ loops without
    a [~budget] argument), plus fact collection for the whole-project
    domain-safety pass (R3).

    The walk is purely syntactic — no type information.  Known
    false-negative classes (operands of unknown type, unannotated
    polymorphic hashtables) are documented in DESIGN.md. *)

(** Facts handed to {!Domain_safety} once every file has been walked. *)
type facts = {
  mutable spawns : Location.t list;
  mutable module_refs : string list;
      (** dotted module paths referenced anywhere in the file *)
  mutable top_mutable : (Location.t * string) list;
      (** top-level mutable bindings and mutable record fields *)
}

(** [check ~file ~in_lib ~report str] walks one parsed implementation,
    calling [report] for every R1/R2/R4/R5 finding, and returns the
    file's R3 facts.  [in_lib] enables the lib-only printing ban and
    the R5 budget-threading rule. *)
val check :
  file:string ->
  in_lib:bool ->
  report:(Diagnostic.t -> unit) ->
  Parsetree.structure ->
  facts
