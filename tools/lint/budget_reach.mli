(** Rule R7: every loop or recursion cycle reachable from a
    [*_budgeted] entry point in [lib/] must reach a [Budget] poll on
    its iteration path.  See DESIGN.md, "Static analysis". *)

val check : Callgraph.t -> report:(Diagnostic.t -> unit) -> unit
