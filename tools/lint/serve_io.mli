(** Rule R11: blocking Unix calls in the service tier ([lib/serve])
    must live in the designated I/O module ([io.ml]), and there only
    inside functions taking an explicit [~timeout_s]-style parameter.
    An unbounded blocking call anywhere else can stall the daemon's
    single event-loop thread behind one slow client. *)

val check :
  Summaries.file_summary list -> report:(Diagnostic.t -> unit) -> unit
