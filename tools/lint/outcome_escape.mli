(** Rule R8: no exception may escape a [*_budgeted] entry point in
    [lib/] — the entry catches and maps to an [Outcome.t].  See
    DESIGN.md, "Static analysis". *)

val check : Callgraph.t -> report:(Diagnostic.t -> unit) -> unit
