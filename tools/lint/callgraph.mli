(** Whole-project call graph over {!Summaries}, with the fixpoints the
    interprocedural rules consume.

    Resolution is syntactic and follows the R3 conventions: scope
    chain within the file, [Wlcq_x.M.f] to [lib/x/m.ml], bare [M.f] to
    the caller's directory else the unique [m.ml] project-wide, with
    file-local module aliases expanded.  Unknown callees are assumed
    neither to poll nor to raise — a documented false-negative class;
    the curated raising stdlib entry points are already folded into
    the summaries as direct raise sites. *)

type node = {
  key : string;  (** [file ^ "#" ^ fn_path] *)
  nfile : string;
  nfn : Summaries.fn;
  nin_lib : bool;
}

type edge = { ecall : Summaries.call; etarget : string }

type witness =
  | W_direct of Summaries.raise_site
  | W_via of Summaries.call * string  (** call site, callee key *)

type t = {
  nodes : (string, node) Hashtbl.t;
  node_list : node list;  (** stable order: files, then definition order *)
  edges : (string, edge list) Hashtbl.t;
}

val node_key : string -> string -> string
val build : Summaries.file_summary list -> t
val out_edges : t -> string -> edge list
val find_node : t -> string -> node option

(** [loop_within fn ~inner ~outer] — is loop index [inner] equal to or
    (transitively) nested inside [outer]? *)
val loop_within : Summaries.fn -> inner:int -> outer:int -> bool

(** Strongly connected components (Tarjan), as lists of node keys. *)
val sccs : t -> string list list

(** The components that are actual cycles: size > 1, or a single node
    with a self edge (direct recursion). *)
val recursive_components : t -> string list list

(** [budget_edge g n e] — does the budget plausibly flow through call
    [e] out of [n] (same-file callee, or a [~budget]/[?budget]
    argument at the call site)? *)
val budget_edge : t -> node -> edge -> bool

(** Node keys from which a [Budget] poll is reachable through
    budget-carrying calls ({!budget_edge}). *)
val polls_transitive : t -> Set.Make(String).t

(** Node keys whose call can run an unbounded number of steps: they
    contain a [for]/[while] loop, sit on a recursion cycle, or call
    such a node. *)
val loopy_transitive : t -> Set.Make(String).t

(** [reachable g ~entries] — forward closure from [entries]; maps each
    reached key to the entry that first reached it.  Traversal stops at
    the polling frontier: a budget-carrying call into a function that
    polls directly is not followed (the callee demonstrably polls the
    budget that flows into it). *)
val reachable : t -> entries:string list -> (string, string) Hashtbl.t

(** [may_raise g] — per-function escape sets: the classes that can
    escape each function, computed bottom-up with per-call-site
    handler filtering.  The returned function is a total lookup. *)
val may_raise : t -> string -> (Summaries.exn_class * witness) list

(** [witness_chain g escapes key cls] renders the call/raise chain
    behind [cls] escaping [key], for diagnostics. *)
val witness_chain :
  t ->
  (string -> (Summaries.exn_class * witness) list) ->
  string ->
  Summaries.exn_class ->
  string

val last_component : string -> string
val is_budgeted_name : string -> bool

(** The contract entry points: [*_budgeted] functions in [lib/]. *)
val budgeted_entries : t -> node list
