(** In-source allow pragmas, captured from the comment stream of a file.

    Grammar (inside an ordinary comment):
    - [lint: allow RULE reason...] — suppress findings of [RULE] on
      every line the comment spans and the line immediately below;
    - [lint: domain-local reason...] — shorthand for allowing R3;
    - [lint: hot-alloc reason...] — shorthand for allowing R9 (the
      reason is optional here, but [--strict] reports the bare form).

    Reasons are otherwise mandatory: a suppression without a recorded
    justification is itself reported (rule R0), as is any comment
    starting with [lint:] that does not parse, and any pragma naming a
    retired rule id (e.g. R5, subsumed by R7).

    Comment extraction is a self-contained scanner (no compiler-libs
    [Lexer] global state), so per-file scans can run concurrently on a
    domain pool; it understands nested comments, string/char literals,
    CRLF line endings and a final line without a trailing newline. *)

type pragma = {
  rule : Diagnostic.rule;
  line : int;  (* first line of the comment *)
  last_line : int;  (* last line of the comment *)
  reason : string;  (* "" only for the reason-optional [hot-alloc] form *)
}

type t = { pragmas : pragma list; malformed : Diagnostic.t list }

(** [scan ~file source] extracts pragmas from the comments of
    [source].  Pure; safe to call from several domains at once. *)
val scan : file:string -> string -> t

(** [find_suppressor t d] is the first pragma covering finding [d]
    (same rule, [d] within the comment's line span or on the line just
    below it), if any.  The caller accumulates the returned pragmas to
    feed {!unused}. *)
val find_suppressor : t -> Diagnostic.t -> pragma option

(** [unused t ~used] is the pragmas of [t] not in [used] (physical
    membership), as R0 findings (the [file] field is left empty for
    the caller to fill). *)
val unused : t -> used:pragma list -> Diagnostic.t list

(** Pragmas whose reason is empty — reported by [--strict]. *)
val reasonless : t -> pragma list
