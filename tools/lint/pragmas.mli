(** In-source allow pragmas, captured from the comment stream of a file.

    Grammar (inside an ordinary comment):
    - [lint: allow RULE reason...] — suppress findings of [RULE] on
      every line the comment spans and the line immediately below;
    - [lint: domain-local reason...] — shorthand for allowing R3.

    Reasons are mandatory: a suppression without a recorded
    justification is itself reported (rule R0), as is any comment
    starting with [lint:] that does not parse. *)

type pragma = {
  rule : Diagnostic.rule;
  line : int;  (* first line of the comment *)
  last_line : int;  (* last line of the comment *)
  reason : string;
  mutable used : bool;
}

type t = { pragmas : pragma list; malformed : Diagnostic.t list }

(** [scan ~file source] lexes [source] and extracts pragmas from its
    comments.  Uses the global compiler-libs lexer state; not
    re-entrant. *)
val scan : file:string -> string -> t

(** [suppresses t d] tests whether a pragma covers finding [d] (same
    rule, [d] within the comment's line span or on the line just below
    it) and marks the first matching pragma used. *)
val suppresses : t -> Diagnostic.t -> bool

(** Unused pragmas as R0 findings (the [file] field is left empty for
    the caller to fill). *)
val unused : t -> Diagnostic.t list

(** Rules of pragmas that suppressed at least one finding, one entry
    per pragma — the per-file suppression census behind [--stats]. *)
val used_by_rule : t -> Diagnostic.rule list
