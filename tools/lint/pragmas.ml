(* Allow pragmas are ordinary comments:

     (* lint: allow R2 reason for this exact site *)
     (* lint: domain-local reason *)
     (* lint: hot-alloc reason *)

   A pragma suppresses findings of its rule on every line the comment
   spans and on the line immediately below it, so it can sit at the end
   of the offending line or just above it (wrapping onto several lines
   when the reason needs them).  [domain-local] is shorthand for
   allowing R3 (the domain-safety rule) and [hot-alloc] for R9 (the
   hot-loop allocation rule); [hot-alloc]'s reason is optional in
   ordinary runs and mandatory under [--strict].

   Comments are collected by a self-contained scanner rather than
   compiler-libs' [Lexer]: the compiler lexer keeps its comment buffer
   in global state, which would serialise the per-file scans the engine
   runs on a domain pool.  The scanner tracks strings, quoted strings
   and character literals so a ["(*"] inside a literal never opens a
   comment, handles nested comments, and is byte-oriented, so CRLF
   line endings and a final line without a trailing newline are
   scanned like any other. *)

type pragma = {
  rule : Diagnostic.rule;
  line : int;  (* first line of the comment *)
  last_line : int;  (* last line of the comment *)
  reason : string;  (* "" only for the reason-optional [hot-alloc] form *)
}

type t = { pragmas : pragma list; malformed : Diagnostic.t list }

(* ------------------------------------------------------------------ *)
(* Comment extraction                                                  *)
(* ------------------------------------------------------------------ *)

let comments_of_source source =
  let n = String.length source in
  let acc = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let bump c = if Char.equal c '\n' then incr line in
  (* skip a string literal body starting after the opening quote *)
  let skip_string () =
    let closed = ref false in
    while not !closed && !i < n do
      (match source.[!i] with
       | '\\' when !i + 1 < n ->
         bump source.[!i + 1];
         incr i
       | '"' -> closed := true
       | c -> bump c);
      incr i
    done
  in
  (* at '{': if this opens a quoted string {tag|...|tag}, skip it and
     return true *)
  let skip_quoted_string () =
    let j = ref (!i + 1) in
    while
      !j < n
      && (match source.[!j] with 'a' .. 'z' | '_' -> true | _ -> false)
    do
      incr j
    done;
    if !j < n && Char.equal source.[!j] '|' then begin
      let tag = String.sub source (!i + 1) (!j - !i - 1) in
      let closing = "|" ^ tag ^ "}" in
      let cl = String.length closing in
      i := !j + 1;
      let closed = ref false in
      while not !closed && !i < n do
        if
          !i + cl <= n
          && String.equal (String.sub source !i cl) closing
        then begin
          i := !i + cl;
          closed := true
        end
        else begin
          bump source.[!i];
          incr i
        end
      done;
      true
    end
    else false
  in
  (* at '\'': a character literal ('x', '\n', '\123', '\xFF') or a type
     variable; skip the literal so '"' or "(*" inside one stays inert *)
  let skip_char_or_tyvar () =
    if !i + 1 < n && Char.equal source.[!i + 1] '\\' then begin
      let j = ref (!i + 2) in
      while !j < n && not (Char.equal source.[!j] '\'') && !j - !i < 6 do
        incr j
      done;
      i := if !j < n && Char.equal source.[!j] '\'' then !j + 1 else !i + 1
    end
    else if !i + 2 < n && Char.equal source.[!i + 2] '\'' then i := !i + 3
    else incr i
  in
  while !i < n do
    match source.[!i] with
    | '"' ->
      incr i;
      skip_string ()
    | '{' -> if not (skip_quoted_string ()) then incr i
    | '\'' -> skip_char_or_tyvar ()
    | '(' when !i + 1 < n && Char.equal source.[!i + 1] '*' ->
      (* a comment: collect its text, tracking nesting and strings *)
      let start_line = !line in
      let buf = Buffer.create 64 in
      i := !i + 2;
      let depth = ref 1 in
      while !depth > 0 && !i < n do
        if !i + 1 < n && Char.equal source.[!i] '(' && Char.equal source.[!i + 1] '*'
        then begin
          incr depth;
          Buffer.add_string buf "(*";
          i := !i + 2
        end
        else if
          !i + 1 < n && Char.equal source.[!i] '*' && Char.equal source.[!i + 1] ')'
        then begin
          decr depth;
          if !depth > 0 then Buffer.add_string buf "*)";
          i := !i + 2
        end
        else if Char.equal source.[!i] '"' then begin
          Buffer.add_char buf '"';
          incr i;
          let closed = ref false in
          while not !closed && !i < n do
            (match source.[!i] with
             | '\\' when !i + 1 < n ->
               Buffer.add_char buf '\\';
               Buffer.add_char buf source.[!i + 1];
               bump source.[!i + 1];
               incr i
             | '"' ->
               Buffer.add_char buf '"';
               closed := true
             | c ->
               Buffer.add_char buf c;
               bump c);
            incr i
          done
        end
        else begin
          bump source.[!i];
          Buffer.add_char buf source.[!i];
          incr i
        end
      done;
      (* an unterminated comment is a parse error the parser reports *)
      if !depth = 0 then
        acc := (Buffer.contents buf, start_line, !line) :: !acc
    | c ->
      bump c;
      incr i
  done;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Pragma parsing                                                      *)
(* ------------------------------------------------------------------ *)

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\n')
  |> List.concat_map (String.split_on_char '\r')
  |> List.filter (fun w -> not (String.equal w ""))

let parse_comment ~file (text, line, last_line) =
  let text = String.trim text in
  let prefix = "lint:" in
  if
    String.length text < String.length prefix
    || not (String.equal (String.sub text 0 (String.length prefix)) prefix)
  then None
  else
    let body =
      String.trim
        (String.sub text (String.length prefix)
           (String.length text - String.length prefix))
    in
    let malformed msg =
      Some (Error (Diagnostic.make ~file ~line ~col:0 ~rule:Diagnostic.R0 msg))
    in
    match split_words body with
    | "allow" :: rule_word :: reason_words -> (
      match Diagnostic.rule_of_id rule_word with
      | Some rule -> (
        match reason_words with
        | _ :: _ ->
          Some
            (Ok { rule; line; last_line; reason = String.concat " " reason_words })
        | [] ->
          malformed
            "malformed pragma: 'lint: allow RULE reason' needs a non-empty \
             reason")
      | None -> (
        match Diagnostic.retired_successor rule_word with
        | Some succ ->
          malformed
            (Printf.sprintf
               "pragma names retired rule %s (subsumed by %s): migrate the \
                suppression to %s or delete it"
               rule_word succ succ)
        | None ->
          malformed
            (Printf.sprintf
               "malformed pragma: unknown rule %S (expected R1..R10)" rule_word)))
    | "domain-local" :: (_ :: _ as reason_words) ->
      Some
        (Ok { rule = Diagnostic.R3; line; last_line;
              reason = String.concat " " reason_words })
    | [ "domain-local" ] ->
      malformed
        "malformed pragma: 'lint: domain-local reason' needs a non-empty \
         reason"
    | "hot-alloc" :: reason_words ->
      (* reason optional here; [--strict] reports the empty form *)
      Some
        (Ok { rule = Diagnostic.R9; line; last_line;
              reason = String.concat " " reason_words })
    | _ ->
      malformed
        "malformed pragma: expected 'lint: allow RULE reason', 'lint: \
         domain-local reason' or 'lint: hot-alloc reason'"

let scan ~file source =
  let comments = comments_of_source source in
  let pragmas, malformed =
    List.fold_left
      (fun (ps, ms) c ->
         match parse_comment ~file c with
         | None -> (ps, ms)
         | Some (Ok p) -> (p :: ps, ms)
         | Some (Error m) -> (ps, m :: ms))
      ([], []) comments
  in
  { pragmas = List.rev pragmas; malformed = List.rev malformed }

let find_suppressor t (d : Diagnostic.t) =
  List.find_opt
    (fun p ->
       String.equal (Diagnostic.rule_id p.rule) (Diagnostic.rule_id d.rule)
       && d.line >= p.line
       && d.line <= p.last_line + 1)
    t.pragmas

let unused t ~used =
  List.filter_map
    (fun p ->
       if List.memq p used then None
       else
         Some
           (Diagnostic.make ~file:"" ~line:p.line ~col:0 ~rule:Diagnostic.R0
              (Printf.sprintf
                 "unused suppression for %s (%s): remove the pragma or \
                  restore the violation it covered"
                 (Diagnostic.rule_id p.rule)
                 (match p.reason with "" -> "no reason given" | r -> r))))
    t.pragmas

let reasonless t =
  List.filter (fun p -> String.equal p.reason "") t.pragmas
