(* Allow pragmas are ordinary comments captured from the token stream:

     (* lint: allow R2 reason for this exact site *)
     (* lint: domain-local reason *)

   A pragma suppresses findings of its rule on every line the comment
   spans and on the line immediately below it, so it can sit at the end
   of the offending line or just above it (wrapping onto several lines
   when the reason needs them).  [domain-local] is shorthand for
   allowing R3 (the domain-safety rule). *)

type pragma = {
  rule : Diagnostic.rule;
  line : int;  (* first line of the comment *)
  last_line : int;  (* last line of the comment *)
  reason : string;
  mutable used : bool;
}

type t = { pragmas : pragma list; malformed : Diagnostic.t list }

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\n')
  |> List.filter (fun w -> not (String.equal w ""))

(* Comments on the token stream of [source].  The lexer state is
   global, so this must not be re-entered concurrently. *)
let comments_of_source ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  Lexer.init ();
  let rec drain () =
    match Lexer.token lexbuf with
    | Parser.EOF -> ()
    | _ -> drain ()
    | exception _ ->
      (* lexical error: the parser will report it; stop collecting *)
      ()
  in
  drain ();
  Lexer.comments ()

let parse_comment ~file (text, (loc : Location.t)) =
  let line = loc.Location.loc_start.pos_lnum in
  let last_line = loc.Location.loc_end.pos_lnum in
  let text = String.trim text in
  let prefix = "lint:" in
  if
    String.length text < String.length prefix
    || not (String.equal (String.sub text 0 (String.length prefix)) prefix)
  then None
  else
    let body =
      String.trim
        (String.sub text (String.length prefix)
           (String.length text - String.length prefix))
    in
    let malformed msg =
      Some (Error (Diagnostic.make ~file ~line ~col:0 ~rule:Diagnostic.R0 msg))
    in
    match split_words body with
    | "allow" :: rule_word :: (_ :: _ as reason_words) ->
      (match Diagnostic.rule_of_id rule_word with
       | Some rule ->
         Some
           (Ok { rule; line; last_line;
                 reason = String.concat " " reason_words; used = false })
       | None ->
         malformed
           (Printf.sprintf
              "malformed pragma: unknown rule %S (expected R1..R6)" rule_word))
    | [ "allow" ] | [ "allow"; _ ] ->
      malformed
        "malformed pragma: 'lint: allow RULE reason' needs a rule id and a \
         non-empty reason"
    | "domain-local" :: (_ :: _ as reason_words) ->
      Some
        (Ok { rule = Diagnostic.R3; line; last_line;
              reason = String.concat " " reason_words; used = false })
    | [ "domain-local" ] ->
      malformed
        "malformed pragma: 'lint: domain-local reason' needs a non-empty \
         reason"
    | _ ->
      malformed
        "malformed pragma: expected 'lint: allow RULE reason' or 'lint: \
         domain-local reason'"

let scan ~file source =
  let comments = comments_of_source ~file source in
  let pragmas, malformed =
    List.fold_left
      (fun (ps, ms) c ->
         match parse_comment ~file c with
         | None -> (ps, ms)
         | Some (Ok p) -> (p :: ps, ms)
         | Some (Error m) -> (ps, m :: ms))
      ([], []) comments
  in
  { pragmas = List.rev pragmas; malformed = List.rev malformed }

let suppresses t (d : Diagnostic.t) =
  match
    List.find_opt
      (fun p ->
         (match (p.rule, d.rule) with
          | Diagnostic.R1, Diagnostic.R1
          | Diagnostic.R2, Diagnostic.R2
          | Diagnostic.R3, Diagnostic.R3
          | Diagnostic.R4, Diagnostic.R4
          | Diagnostic.R5, Diagnostic.R5
          | Diagnostic.R6, Diagnostic.R6 -> true
          | _ -> false)
         && d.line >= p.line
         && d.line <= p.last_line + 1)
      t.pragmas
  with
  | Some p ->
    p.used <- true;
    true
  | None -> false

let unused t =
  List.filter_map
    (fun p ->
       if p.used then None
       else
         Some
           (Diagnostic.make ~file:"" ~line:p.line ~col:0 ~rule:Diagnostic.R0
              (Printf.sprintf
                 "unused suppression for %s (%s): remove the pragma or \
                  restore the violation it covered"
                 (Diagnostic.rule_id p.rule) p.reason)))
    t.pragmas

let used_by_rule t =
  List.fold_left
    (fun acc p -> if p.used then p.rule :: acc else acc)
    [] t.pragmas
