(* Whole-project domain-safety pass (R3).

   Roots are the files that call [Domain.spawn].  A file is in scope —
   meaning its top-level mutable state may be touched by more than one
   domain — when it

   - contains a spawn itself,
   - is referenced (transitively, at file granularity) from a spawn
     file: an over-approximation of "reachable from the spawned
     closure",
   - lives in the same directory (dune library) as a spawn file: engine
     siblings share calling conventions and are routinely called from
     the engine's callbacks, or
   - transitively references a spawn file: its own global state is one
     [Domain.spawn] away from being shared when callers parallelise.

   Module references are resolved syntactically: [Wlcq_x.M] maps to
   [lib/x/m.ml]; a bare [M] maps to [m.ml] in the referencing file's
   own directory, else to the unique [m.ml] in the project.  Ambiguous
   bare references and references through module aliases other than
   the [Wlcq_*] wrappers are skipped — a known false-negative class,
   documented in DESIGN.md. *)

type file_info = {
  path : string;
  dir : string;
  modname : string;
  facts : Ast_rules.facts;
}

module SM = Map.Make (String)
module SS = Set.Make (String)

let dirname path =
  match String.rindex_opt path '/' with
  | None -> "."
  | Some i -> String.sub path 0 i

let module_of_path path =
  let base = Filename.remove_extension (Filename.basename path) in
  String.capitalize_ascii base

let make_info path facts =
  { path; dir = dirname path; modname = module_of_path path; facts }

(* "lib/wl" -> "Wlcq_wl"; the repo convention maps each lib dir to a
   dune library named wlcq_<dir>. *)
let wrapper_of_dir dir =
  (* component-based so relative roots (e.g. the bench smoke run
     linting "../lib") resolve the same wrappers as "lib" itself *)
  match List.rev (String.split_on_char '/' dir) with
  | d :: "lib" :: _ -> Some (String.capitalize_ascii ("wlcq_" ^ d))
  | _ -> None

let resolve infos =
  let by_dir_mod =
    List.fold_left
      (fun m fi -> SM.add (fi.dir ^ "#" ^ fi.modname) fi.path m)
      SM.empty infos
  in
  let by_mod =
    List.fold_left
      (fun m fi ->
         SM.update fi.modname
           (fun ps -> Some (fi.path :: Option.value ~default:[] ps))
           m)
      SM.empty infos
  in
  let dir_of_wrapper =
    List.fold_left
      (fun m fi ->
         match wrapper_of_dir fi.dir with
         | Some w -> SM.add w fi.dir m
         | None -> m)
      SM.empty infos
  in
  fun (fi : file_info) (ref_path : string) ->
    match String.split_on_char '.' ref_path with
    | head :: rest when SM.mem head dir_of_wrapper ->
      (match rest with
       | sub :: _ ->
         SM.find_opt (SM.find head dir_of_wrapper ^ "#" ^ sub) by_dir_mod
       | [] -> None)
    | head :: _ ->
      (match SM.find_opt (fi.dir ^ "#" ^ head) by_dir_mod with
       | Some p -> Some p
       | None ->
         (match SM.find_opt head by_mod with
          | Some [ p ] -> Some p
          | _ -> None))
    | [] -> None

let closure adj seeds =
  let rec go visited = function
    | [] -> visited
    | p :: todo ->
      if SS.mem p visited then go visited todo
      else
        let next = try SM.find p adj with Not_found -> [] in
        go (SS.add p visited) (List.rev_append next todo)
  in
  go SS.empty (SS.elements seeds)

type scope_reason =
  | Spawner
  | Closure_reachable
  | Same_library
  | Depends_on_spawner

let reason_text = function
  | Spawner -> "this file calls Domain.spawn"
  | Closure_reachable ->
    "this module is referenced from a file that calls Domain.spawn"
  | Same_library -> "this module shares a library with a Domain.spawn caller"
  | Depends_on_spawner ->
    "this module (transitively) calls into the Domain.spawn engine"

let check infos ~report =
  let resolve = resolve infos in
  let forward, reverse =
    List.fold_left
      (fun (fwd, rev) fi ->
         let targets =
           SS.elements
             (List.fold_left
                (fun acc r ->
                   match resolve fi r with
                   | Some p when not (String.equal p fi.path) -> SS.add p acc
                   | _ -> acc)
                SS.empty fi.facts.Ast_rules.module_refs)
         in
         ( SM.add fi.path targets fwd,
           List.fold_left
             (fun rev t ->
                SM.update t
                  (fun ps -> Some (fi.path :: Option.value ~default:[] ps))
                  rev)
             rev targets ))
      (SM.empty, SM.empty) infos
  in
  let spawners =
    List.fold_left
      (fun acc fi ->
         match fi.facts.Ast_rules.spawns with
         | [] -> acc
         | _ :: _ -> SS.add fi.path acc)
      SS.empty infos
  in
  if SS.is_empty spawners then ()
  else begin
    let fwd_scope = closure forward spawners in
    let rev_scope = closure reverse spawners in
    let spawn_dirs =
      SS.fold (fun p acc -> SS.add (dirname p) acc) spawners SS.empty
    in
    let reason_for fi =
      if SS.mem fi.path spawners then Some Spawner
      else if SS.mem fi.path fwd_scope then Some Closure_reachable
      else if SS.mem fi.dir spawn_dirs then Some Same_library
      else if SS.mem fi.path rev_scope then Some Depends_on_spawner
      else None
    in
    List.iter
      (fun fi ->
         match reason_for fi with
         | None -> ()
         | Some reason ->
           List.iter
             (fun (loc, desc) ->
                report
                  (Diagnostic.of_location ~file:fi.path ~rule:Diagnostic.R3 loc
                     (Printf.sprintf
                        "%s, and %s: audit for cross-domain use and mark \
                         '(* lint: domain-local reason *)', or create the \
                         state per call"
                        desc (reason_text reason))))
             (List.rev fi.facts.Ast_rules.top_mutable))
      infos
  end
